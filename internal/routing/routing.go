// Package routing implements dimension-ordered (XY) routing with lookahead
// route computation. Table 1 fixes the routing algorithm to DOR; §3.1.1
// notes all routers use lookahead route computation (NRC, Galles' SGI
// Spider scheme) so route computation never appears on the critical path —
// in the simulator a flit's output port at a router is computed the moment
// the flit arrives there.
//
// Routing generalizes to concentrated systems: a route is computed from
// the current router to the destination core's router, ejecting through
// the core's local port on arrival.
package routing

import (
	"sync"

	"repro/internal/noc"
)

// XY returns the output port a packet at cur takes toward dst under
// dimension-ordered routing: correct X first, then Y, then eject via Local.
// XY routing on a mesh is deadlock-free because the X-then-Y discipline
// admits no cyclic channel dependencies.
func XY(t noc.Topology, cur, dst noc.NodeID) noc.Port {
	cc, dc := t.Coord(cur), t.Coord(dst)
	switch {
	case dc.X > cc.X:
		return noc.East
	case dc.X < cc.X:
		return noc.West
	case dc.Y > cc.Y:
		return noc.South
	case dc.Y < cc.Y:
		return noc.North
	default:
		return noc.Local
	}
}

// Table is a precomputed route table: Port(currentRouter, destinationCore)
// in O(1), shared by all routers of a network.
type Table struct {
	sys   noc.System
	ports []noc.Port // [router*cores + core]
	// hops caches path lengths for fault tables, where routes are no longer
	// minimal and a pair may be unreachable (-1). nil on XY tables: there
	// every destination is reachable and PathLength is the Manhattan walk.
	hops []int32 // [router*cores + core], routers visited inclusive
}

// NewTable precomputes XY routes for a plain (concentration-1) mesh, where
// router and core identifiers coincide.
func NewTable(t noc.Topology) *Table {
	return NewSystemTable(noc.MeshSystem(t))
}

// NewSystemTable precomputes XY routes for every (router, destination
// core) pair of a possibly concentrated system.
func NewSystemTable(sys noc.System) *Table {
	sys.Validate()
	routers, cores := sys.Routers(), sys.Cores()
	tbl := &Table{sys: sys, ports: make([]noc.Port, routers*cores)}
	for r := 0; r < routers; r++ {
		for c := 0; c < cores; c++ {
			dstRouter := sys.RouterOf(noc.NodeID(c))
			var p noc.Port
			if noc.NodeID(r) == dstRouter {
				p = sys.LocalPort(noc.NodeID(c))
			} else {
				p = XY(sys.Grid, noc.NodeID(r), dstRouter)
			}
			tbl.ports[r*cores+c] = p
		}
	}
	return tbl
}

// tableCache memoizes route tables by system. A Table is immutable after
// construction, so every network of the same system — an experiment sweep
// builds hundreds — can share one instance instead of recomputing the
// O(routers x cores) XY walk, which dominated network construction.
var tableCache sync.Map // noc.System -> *Table

// SharedSystemTable returns the memoized route table for sys, building it on
// first use. Safe for concurrent callers; the returned table must be treated
// as read-only (as all Tables are).
func SharedSystemTable(sys noc.System) *Table {
	if t, ok := tableCache.Load(sys); ok {
		return t.(*Table)
	}
	t, _ := tableCache.LoadOrStore(sys, NewSystemTable(sys))
	return t.(*Table)
}

// Topology returns the router grid the table was built for.
func (t *Table) Topology() noc.Topology { return t.sys.Grid }

// System returns the system the table was built for.
func (t *Table) System() noc.System { return t.sys }

// Port returns the XY output port at router cur for a packet headed to
// destination core dst.
func (t *Table) Port(cur, dst noc.NodeID) noc.Port {
	return t.ports[int(cur)*t.sys.Cores()+int(dst)]
}

// Row returns router cur's precomputed route row, indexed by destination
// core: Row(cur)[dst] == Port(cur, dst). The row aliases the table —
// read-only, O(1), no per-lookup multiply — and is what each router's input
// ports hold for lookahead route computation on the hot path.
func (t *Table) Row(cur noc.NodeID) []noc.Port {
	c := t.sys.Cores()
	return t.ports[int(cur)*c : (int(cur)+1)*c : (int(cur)+1)*c]
}

// PathLength returns the number of routers a packet visits from core src
// to core dst inclusive (router hops + 1). On a fault table the walk follows
// the (possibly non-minimal) up*/down* route; -1 if dst is unreachable.
func (t *Table) PathLength(src, dst noc.NodeID) int {
	if t.hops == nil {
		return t.sys.CoreHops(src, dst) + 1
	}
	return int(t.hops[int(t.sys.RouterOf(src))*t.sys.Cores()+int(dst)])
}

// Reachable reports whether a packet injected at core src can reach core dst
// under this table. Always true on XY tables; on a fault table it is false
// exactly when the two cores' routers sit in different components of the
// damaged mesh (or either router is dead).
func (t *Table) Reachable(src, dst noc.NodeID) bool {
	if t.hops == nil {
		return true
	}
	return t.hops[int(t.sys.RouterOf(src))*t.sys.Cores()+int(dst)] >= 0
}
