package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/noc"
)

// walk follows XY routes from src to dst and returns the port sequence.
func walk(t *testing.T, tbl *Table, src, dst noc.NodeID) []noc.Port {
	t.Helper()
	topo := tbl.Topology()
	cur := src
	var ports []noc.Port
	for steps := 0; ; steps++ {
		if steps > topo.Nodes() {
			t.Fatalf("route %d->%d does not terminate", src, dst)
		}
		p := tbl.Port(cur, dst)
		ports = append(ports, p)
		if p == noc.Local {
			if cur != dst {
				t.Fatalf("route %d->%d ejected at %d", src, dst, cur)
			}
			return ports
		}
		nb, ok := topo.Neighbor(cur, p)
		if !ok {
			t.Fatalf("route %d->%d walks off the mesh at %d via %v", src, dst, cur, p)
		}
		cur = nb
	}
}

// TestXYMinimal verifies every route is minimal: exactly Hops(src,dst) link
// traversals before ejection.
func TestXYMinimal(t *testing.T) {
	topo := noc.Topology{Width: 8, Height: 8}
	tbl := NewTable(topo)
	for src := 0; src < topo.Nodes(); src++ {
		for dst := 0; dst < topo.Nodes(); dst++ {
			ports := walk(t, tbl, noc.NodeID(src), noc.NodeID(dst))
			if got, want := len(ports)-1, topo.Hops(noc.NodeID(src), noc.NodeID(dst)); got != want {
				t.Fatalf("route %d->%d length %d, want %d", src, dst, got, want)
			}
		}
	}
}

// TestXYDimensionOrder verifies the deadlock-freedom discipline: once a
// route turns into the Y dimension it never returns to X.
func TestXYDimensionOrder(t *testing.T) {
	topo := noc.Topology{Width: 8, Height: 8}
	tbl := NewTable(topo)
	isX := func(p noc.Port) bool { return p == noc.East || p == noc.West }
	isY := func(p noc.Port) bool { return p == noc.North || p == noc.South }
	f := func(a, b uint8) bool {
		src := noc.NodeID(int(a) % topo.Nodes())
		dst := noc.NodeID(int(b) % topo.Nodes())
		ports := walk(t, tbl, src, dst)
		seenY := false
		for _, p := range ports {
			if isY(p) {
				seenY = true
			}
			if isX(p) && seenY {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestTableMatchesFunction verifies the precomputed table agrees with the
// direct XY computation everywhere.
func TestTableMatchesFunction(t *testing.T) {
	topo := noc.Topology{Width: 6, Height: 4}
	tbl := NewTable(topo)
	for src := 0; src < topo.Nodes(); src++ {
		for dst := 0; dst < topo.Nodes(); dst++ {
			if tbl.Port(noc.NodeID(src), noc.NodeID(dst)) != XY(topo, noc.NodeID(src), noc.NodeID(dst)) {
				t.Fatalf("table/function mismatch at %d->%d", src, dst)
			}
		}
	}
}

func TestXYCases(t *testing.T) {
	topo := noc.Topology{Width: 8, Height: 8}
	cases := []struct {
		src, dst noc.NodeID
		want     noc.Port
	}{
		{0, 0, noc.Local},
		{0, 1, noc.East},
		{1, 0, noc.West},
		{0, 8, noc.South},
		{8, 0, noc.North},
		{0, 9, noc.East},  // X corrected before Y
		{9, 0, noc.West},  // X first on the way back too
		{7, 56, noc.West}, // corner to corner
	}
	for _, c := range cases {
		if got := XY(topo, c.src, c.dst); got != c.want {
			t.Errorf("XY(%d->%d) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestPathLength(t *testing.T) {
	tbl := NewTable(noc.Topology{Width: 8, Height: 8})
	if got := tbl.PathLength(0, 63); got != 15 {
		t.Errorf("PathLength corner-to-corner = %d, want 15 routers", got)
	}
	if got := tbl.PathLength(5, 5); got != 1 {
		t.Errorf("PathLength self = %d, want 1", got)
	}
}

// TestSystemTableConcentrated checks routes on a concentrated system:
// same-router cores eject through their own local ports; cross-router
// traffic follows XY between routers.
func TestSystemTableConcentrated(t *testing.T) {
	sys := noc.System{Grid: noc.Topology{Width: 4, Height: 4}, Concentration: 4}
	tbl := NewSystemTable(sys)
	// Core 2 lives on router 0 at local port 6.
	if got := tbl.Port(0, 2); got != noc.Port(6) {
		t.Errorf("Port(router0, core2) = %v, want local port 6", got)
	}
	// Core 4 lives on router 1, east of router 0.
	if got := tbl.Port(0, 4); got != noc.East {
		t.Errorf("Port(router0, core4) = %v, want East", got)
	}
	// From router 5 (coord 1,1) to core 0 (router 0): X first -> West.
	if got := tbl.Port(5, 0); got != noc.West {
		t.Errorf("Port(router5, core0) = %v, want West", got)
	}
	if got := tbl.PathLength(0, 3); got != 1 {
		t.Errorf("same-router path length = %d, want 1", got)
	}
	if got := tbl.PathLength(0, 63); got != 7 {
		t.Errorf("corner-to-corner path length = %d, want 7 routers", got)
	}
}

// TestSystemTableWalks verifies every concentrated route terminates at the
// destination core's router in minimal hops.
func TestSystemTableWalks(t *testing.T) {
	sys := noc.System{Grid: noc.Topology{Width: 4, Height: 4}, Concentration: 4}
	tbl := NewSystemTable(sys)
	for r := 0; r < sys.Routers(); r++ {
		for c := 0; c < sys.Cores(); c++ {
			cur := noc.NodeID(r)
			steps := 0
			for {
				p := tbl.Port(cur, noc.NodeID(c))
				if p >= 4 { // a local port: must be at the right router
					if cur != sys.RouterOf(noc.NodeID(c)) || p != sys.LocalPort(noc.NodeID(c)) {
						t.Fatalf("route %d->core%d ejects wrongly at router %d port %v", r, c, cur, p)
					}
					break
				}
				nb, ok := sys.Grid.Neighbor(cur, p)
				if !ok {
					t.Fatalf("route %d->core%d walks off grid", r, c)
				}
				cur = nb
				steps++
				if steps > sys.Routers() {
					t.Fatalf("route %d->core%d does not terminate", r, c)
				}
			}
			if want := sys.Grid.Hops(noc.NodeID(r), sys.RouterOf(noc.NodeID(c))); steps != want {
				t.Fatalf("route %d->core%d took %d hops, want %d", r, c, steps, want)
			}
		}
	}
}
