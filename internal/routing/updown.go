// Up*/down* routing over the live remnant of a damaged mesh.
//
// When permanent faults remove links or whole routers, XY routing is no
// longer usable: the minimal X-then-Y path may cross a dead link, and ad-hoc
// detours reintroduce the cyclic channel dependencies XY's turn discipline
// ruled out. Up*/down* (Autonet; Schroeder et al. 1991) restores a provable
// deadlock-freedom argument on an arbitrary connected remnant: orient every
// live link "up" toward the root of a BFS spanning tree (ties broken by node
// id), and constrain every route to zero or more up-channels followed by
// zero or more down-channels. Up-channel dependencies strictly decrease the
// (level, id) key and down-channel dependencies strictly increase it, and a
// legal path never takes an up-channel after a down-channel, so the channel
// dependency graph is acyclic — no routed configuration can deadlock.
//
// The construction here picks, for every (router, destination) pair, a
// single next hop: go down whenever a pure-down path to the destination
// exists (even a non-minimal one), otherwise go up along a shortest
// up-prefix toward the set of routers that can. Because a suffix of an
// up*down* path is itself up*down*, per-hop table lookups compose into legal
// paths without any per-packet state.
package routing

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/noc"
)

// Unreachable is the route-table entry for a (router, destination) pair with
// no live path: the destination sits in a different component of the damaged
// mesh (or on a dead router). Callers must consult Table.Reachable before
// injecting rather than route into a black hole.
const Unreachable noc.Port = -1

// FaultSet is a canonicalized set of permanently dead routers and links. A
// dead link kills both directions of the channel pair (the physical failure
// model: a severed link neither carries flits nor returns credits), which
// keeps reachability symmetric — it coincides with undirected BFS component
// membership. Construct with NewFaultSet; the zero value is the empty set.
type FaultSet struct {
	routers []noc.NodeID
	links   [][2]noc.NodeID
	key     string
}

// NewFaultSet canonicalizes dead routers and dead inter-router links:
// links are normalized to (low, high) endpoint order, both lists are sorted
// and deduplicated. The inputs are copied, never retained.
func NewFaultSet(routers []noc.NodeID, links [][2]noc.NodeID) FaultSet {
	rs := append([]noc.NodeID(nil), routers...)
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	rs = dedupIDs(rs)
	ls := make([][2]noc.NodeID, 0, len(links))
	for _, l := range links {
		if l[0] > l[1] {
			l[0], l[1] = l[1], l[0]
		}
		ls = append(ls, l)
	}
	sort.Slice(ls, func(i, j int) bool {
		if ls[i][0] != ls[j][0] {
			return ls[i][0] < ls[j][0]
		}
		return ls[i][1] < ls[j][1]
	})
	ls = dedupLinks(ls)
	fs := FaultSet{routers: rs, links: ls}
	fs.key = fs.buildKey()
	return fs
}

func dedupIDs(s []noc.NodeID) []noc.NodeID {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupLinks(s [][2]noc.NodeID) [][2]noc.NodeID {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func (fs FaultSet) buildKey() string {
	var b strings.Builder
	b.WriteByte('R')
	for _, r := range fs.routers {
		fmt.Fprintf(&b, ":%d", int(r))
	}
	b.WriteByte('L')
	for _, l := range fs.links {
		fmt.Fprintf(&b, ":%d-%d", int(l[0]), int(l[1]))
	}
	return b.String()
}

// Empty reports whether the set contains no faults.
func (fs FaultSet) Empty() bool { return len(fs.routers) == 0 && len(fs.links) == 0 }

// Key returns a canonical string identity for memoization: equal sets have
// equal keys.
func (fs FaultSet) Key() string {
	if fs.key == "" && !fs.Empty() {
		// Hand-rolled (non-constructor) values still get a stable key.
		return fs.buildKey()
	}
	return fs.key
}

// Routers returns the sorted dead-router list (read-only).
func (fs FaultSet) Routers() []noc.NodeID { return fs.routers }

// Links returns the sorted, normalized dead-link list (read-only).
func (fs FaultSet) Links() [][2]noc.NodeID { return fs.links }

// String renders the set for reports: "3 dead (R5 L2-3 L7-11)".
func (fs FaultSet) String() string {
	if fs.Empty() {
		return "none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d dead (", len(fs.routers)+len(fs.links))
	first := true
	for _, r := range fs.routers {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "R%d", int(r))
	}
	for _, l := range fs.links {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "L%d-%d", int(l[0]), int(l[1]))
	}
	b.WriteByte(')')
	return b.String()
}

// NewFaultTable builds an up*/down* route table for the remnant of sys after
// removing the routers and links in fs. Entries whose destination is
// unreachable from the source router hold Unreachable / path length -1; use
// Table.Reachable to query. Panics on a fault set naming routers outside the
// grid or links that are not mesh-adjacent router pairs.
func NewFaultTable(sys noc.System, fs FaultSet) *Table {
	sys.Validate()
	topo := sys.Grid
	nr, nc := sys.Routers(), sys.Cores()

	dead := make([]bool, nr)
	for _, r := range fs.routers {
		if int(r) < 0 || int(r) >= nr {
			panic(fmt.Sprintf("routing: dead router %d outside %dx%d grid", int(r), topo.Width, topo.Height))
		}
		dead[r] = true
	}
	deadEdge := make(map[[2]noc.NodeID]bool, len(fs.links))
	for _, l := range fs.links {
		if int(l[0]) < 0 || int(l[1]) >= nr || topo.Hops(l[0], l[1]) != 1 {
			panic(fmt.Sprintf("routing: dead link %d-%d is not an adjacent router pair", int(l[0]), int(l[1])))
		}
		deadEdge[l] = true
	}
	edgeAlive := func(a, b noc.NodeID) bool {
		if dead[a] || dead[b] {
			return false
		}
		if a > b {
			a, b = b, a
		}
		return !deadEdge[[2]noc.NodeID{a, b}]
	}

	// BFS levels per connected component; the root of each component is its
	// lowest-id live router. The (level, id) key totally orders each
	// component: an edge's up direction points at the smaller key.
	level := make([]int32, nr)
	comp := make([]int32, nr)
	for i := range level {
		level[i], comp[i] = -1, -1
	}
	queue := make([]noc.NodeID, 0, nr)
	ncomp := int32(0)
	for root := 0; root < nr; root++ {
		if dead[root] || level[root] >= 0 {
			continue
		}
		level[root], comp[root] = 0, ncomp
		queue = append(queue[:0], noc.NodeID(root))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for p := noc.North; p <= noc.West; p++ {
				w, ok := topo.Neighbor(v, p)
				if !ok || !edgeAlive(v, w) || level[w] >= 0 {
					continue
				}
				level[w], comp[w] = level[v]+1, ncomp
				queue = append(queue, w)
			}
		}
		ncomp++
	}
	// less reports key(a) < key(b): a is strictly "upper" than b.
	less := func(a, b noc.NodeID) bool {
		if level[a] != level[b] {
			return level[a] < level[b]
		}
		return a < b
	}

	// Live routers in increasing key order, for the up-cost DP (every
	// up-neighbor of a vertex precedes it in this order).
	byKey := make([]noc.NodeID, 0, nr)
	for r := 0; r < nr; r++ {
		if !dead[r] {
			byKey = append(byKey, noc.NodeID(r))
		}
	}
	sort.Slice(byKey, func(i, j int) bool { return less(byKey[i], byKey[j]) })

	tbl := &Table{sys: sys, ports: make([]noc.Port, nr*nc), hops: make([]int32, nr*nc)}
	for i := range tbl.ports {
		tbl.ports[i], tbl.hops[i] = Unreachable, -1
	}

	downDist := make([]int32, nr) // min pure-down steps to the destination, -1 if none
	upCost := make([]int32, nr)   // min up steps to reach the pure-down set, -1 if none
	next := make([]noc.Port, nr)
	visits := make([]int32, nr) // routers visited from here to destination, inclusive

	for d := 0; d < nr; d++ {
		if dead[d] {
			continue
		}
		dst := noc.NodeID(d)

		// downDist: backward BFS from d. An edge u->w with key(u) < key(w)
		// is a down-channel; if w can continue down to d, u can start there.
		for i := range downDist {
			downDist[i] = -1
		}
		downDist[d] = 0
		queue = append(queue[:0], dst)
		for len(queue) > 0 {
			w := queue[0]
			queue = queue[1:]
			for p := noc.North; p <= noc.West; p++ {
				u, ok := topo.Neighbor(w, p)
				if !ok || !edgeAlive(w, u) || downDist[u] >= 0 || !less(u, w) {
					continue
				}
				downDist[u] = downDist[w] + 1
				queue = append(queue, u)
			}
		}

		// upCost: processed in increasing key order so every up-neighbor is
		// final. Complete within the component: climbing BFS-tree parent
		// edges reaches the root, and the tree path root->d is pure down.
		for i := range upCost {
			upCost[i] = -1
		}
		for _, v := range byKey {
			if comp[v] != comp[dst] {
				continue
			}
			if downDist[v] >= 0 {
				upCost[v] = 0
				continue
			}
			best := int32(-1)
			for p := noc.North; p <= noc.West; p++ {
				u, ok := topo.Neighbor(v, p)
				if !ok || !edgeAlive(v, u) || !less(u, v) || upCost[u] < 0 {
					continue
				}
				if best < 0 || upCost[u]+1 < best {
					best = upCost[u] + 1
				}
			}
			upCost[v] = best
		}

		// Next hop: prefer the down phase the moment any pure-down path
		// exists; otherwise climb toward the down set. Fixed N,E,S,W tie
		// order keeps the table a pure function of (sys, fs).
		for i := range next {
			next[i], visits[i] = Unreachable, -1
		}
		visits[d] = 1
		for _, v := range byKey {
			if v == dst || comp[v] != comp[dst] {
				continue
			}
			for p := noc.North; p <= noc.West; p++ {
				w, ok := topo.Neighbor(v, p)
				if !ok || !edgeAlive(v, w) {
					continue
				}
				if downDist[v] > 0 {
					if less(v, w) && downDist[w] == downDist[v]-1 {
						next[v] = p
						break
					}
				} else if less(w, v) && upCost[w] >= 0 && upCost[w] == upCost[v]-1 {
					next[v] = p
					break
				}
			}
			if next[v] == Unreachable {
				panic("routing: up*/down* found no next hop inside a connected component")
			}
		}
		var chain func(v noc.NodeID) int32
		chain = func(v noc.NodeID) int32 {
			if visits[v] >= 0 {
				return visits[v]
			}
			w, _ := topo.Neighbor(v, next[v])
			visits[v] = chain(w) + 1
			return visits[v]
		}
		for _, v := range byKey {
			if comp[v] == comp[dst] {
				chain(v)
			}
		}

		// Fill the rows for every core concentrated on router d.
		for k := 0; k < sys.Concentration; k++ {
			c := int(sys.CoreID(dst, k))
			for r := 0; r < nr; r++ {
				if dead[r] || comp[r] != comp[dst] {
					continue
				}
				if r == d {
					tbl.ports[r*nc+c] = sys.LocalPort(noc.NodeID(c))
					tbl.hops[r*nc+c] = 1
					continue
				}
				tbl.ports[r*nc+c] = next[r]
				tbl.hops[r*nc+c] = visits[r]
			}
		}
	}
	return tbl
}

type faultTableKey struct {
	sys noc.System
	key string
}

// faultCache memoizes fault tables by (system, canonical fault-set key):
// a degradation sweep re-runs the same fault set across four architectures
// and three execution modes, and a reconfiguration epoch must not pay the
// O(routers^2) rebuild when replaying a snapshot.
var faultCache sync.Map // faultTableKey -> *Table

// SharedFaultTable returns the memoized up*/down* table for sys under fs,
// building it on first use. The empty fault set returns the plain XY table —
// the zero-overhead degenerate case. Safe for concurrent callers; returned
// tables are read-only.
func SharedFaultTable(sys noc.System, fs FaultSet) *Table {
	if fs.Empty() {
		return SharedSystemTable(sys)
	}
	k := faultTableKey{sys: sys, key: fs.Key()}
	if t, ok := faultCache.Load(k); ok {
		return t.(*Table)
	}
	t, _ := faultCache.LoadOrStore(k, NewFaultTable(sys, fs))
	return t.(*Table)
}
