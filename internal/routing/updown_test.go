package routing

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/noc"
)

// remnant computes the undirected live adjacency of sys under fs and the
// BFS component id of every router (-1 for dead), independently of the
// table construction — the reference the fault table is checked against.
func remnant(sys noc.System, fs FaultSet) (alive func(a, b noc.NodeID) bool, comp []int) {
	topo := sys.Grid
	nr := sys.Routers()
	dead := make([]bool, nr)
	for _, r := range fs.Routers() {
		dead[r] = true
	}
	deadEdge := make(map[[2]noc.NodeID]bool)
	for _, l := range fs.Links() {
		deadEdge[l] = true
	}
	alive = func(a, b noc.NodeID) bool {
		if dead[a] || dead[b] {
			return false
		}
		if a > b {
			a, b = b, a
		}
		return !deadEdge[[2]noc.NodeID{a, b}]
	}
	comp = make([]int, nr)
	for i := range comp {
		comp[i] = -1
	}
	nc := 0
	for root := 0; root < nr; root++ {
		if dead[root] || comp[root] >= 0 {
			continue
		}
		comp[root] = nc
		queue := []noc.NodeID{noc.NodeID(root)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for p := noc.North; p <= noc.West; p++ {
				w, ok := topo.Neighbor(v, p)
				if ok && alive(v, w) && comp[w] < 0 {
					comp[w] = nc
					queue = append(queue, w)
				}
			}
		}
		nc++
	}
	return alive, comp
}

// randomFaultSet draws a fault set over sys: each router dead with
// probability pr, each mesh link dead with probability pl.
func randomFaultSet(rng *rand.Rand, sys noc.System, pr, pl float64) FaultSet {
	topo := sys.Grid
	var routers []noc.NodeID
	var links [][2]noc.NodeID
	for r := 0; r < sys.Routers(); r++ {
		if rng.Float64() < pr {
			routers = append(routers, noc.NodeID(r))
		}
	}
	for r := 0; r < sys.Routers(); r++ {
		for _, p := range []noc.Port{noc.East, noc.South} {
			if nb, ok := topo.Neighbor(noc.NodeID(r), p); ok && rng.Float64() < pl {
				links = append(links, [2]noc.NodeID{noc.NodeID(r), nb})
			}
		}
	}
	return NewFaultSet(routers, links)
}

// checkFaultTable runs the full battery of structural checks on one
// (system, fault set) pair, reporting the first failure.
func checkFaultTable(t *testing.T, sys noc.System, fs FaultSet) {
	t.Helper()
	tbl := NewFaultTable(sys, fs)
	alive, comp := remnant(sys, fs)
	nr, nc := sys.Routers(), sys.Cores()
	topo := sys.Grid

	// 1. Reachability must coincide with BFS component membership, for
	// every (source core, destination core) pair.
	for s := 0; s < nc; s++ {
		sr := sys.RouterOf(noc.NodeID(s))
		for d := 0; d < nc; d++ {
			dr := sys.RouterOf(noc.NodeID(d))
			want := comp[sr] >= 0 && comp[sr] == comp[dr]
			if got := tbl.Reachable(noc.NodeID(s), noc.NodeID(d)); got != want {
				t.Fatalf("fs=%s: Reachable(core %d, core %d)=%v, BFS says %v", fs, s, d, got, want)
			}
		}
	}

	// 2. Every reachable route, followed hop by hop, must arrive at the
	// destination router over live links only, within the router count,
	// matching the table's own PathLength.
	for r := 0; r < nr; r++ {
		for d := 0; d < nc; d++ {
			p := tbl.Port(noc.NodeID(r), noc.NodeID(d))
			dr := sys.RouterOf(noc.NodeID(d))
			if comp[r] < 0 || comp[r] != comp[dr] {
				if p != Unreachable {
					t.Fatalf("fs=%s: router %d has port %v for unreachable core %d", fs, r, p, d)
				}
				continue
			}
			cur, steps := noc.NodeID(r), 1
			for cur != dr {
				hop := tbl.Port(cur, noc.NodeID(d))
				if hop == Unreachable || hop == noc.Local || hop >= noc.Local {
					t.Fatalf("fs=%s: route %d->core %d escaped at router %d via %v", fs, r, d, cur, hop)
				}
				nb, ok := topo.Neighbor(cur, hop)
				if !ok || !alive(cur, nb) {
					t.Fatalf("fs=%s: route %d->core %d crosses dead link %d-%v", fs, r, d, cur, hop)
				}
				cur = nb
				steps++
				if steps > nr+1 {
					t.Fatalf("fs=%s: route %d->core %d loops", fs, r, d)
				}
			}
			if lp := tbl.Port(dr, noc.NodeID(d)); lp != sys.LocalPort(noc.NodeID(d)) {
				t.Fatalf("fs=%s: router %d ejects core %d via %v", fs, int(dr), d, lp)
			}
			if got := tbl.PathLength(sys.CoreID(noc.NodeID(r), 0), noc.NodeID(d)); got != steps {
				t.Fatalf("fs=%s: PathLength(router %d, core %d)=%d, walked %d", fs, r, d, got, steps)
			}
		}
	}

	// 3. Deadlock freedom: the channel dependency graph over all
	// destinations must be acyclic. A channel is a directed live link
	// (a,b); routing core d's traffic from router v onward creates the
	// dependency (u,v) -> (v,w) for every predecessor u of v on d's route
	// DAG. Union over every destination, then cycle-check.
	chID := func(a, b noc.NodeID) int { return int(a)*nr + int(b) }
	deps := make(map[int]map[int]bool)
	addDep := func(from, to int) {
		m := deps[from]
		if m == nil {
			m = make(map[int]bool)
			deps[from] = m
		}
		m[to] = true
	}
	for d := 0; d < nc; d++ {
		dr := sys.RouterOf(noc.NodeID(d))
		for v := 0; v < nr; v++ {
			if comp[v] < 0 || comp[v] != comp[dr] || noc.NodeID(v) == dr {
				continue
			}
			hop := tbl.Port(noc.NodeID(v), noc.NodeID(d))
			w, _ := topo.Neighbor(noc.NodeID(v), hop)
			for p := noc.North; p <= noc.West; p++ {
				u, ok := topo.Neighbor(noc.NodeID(v), p)
				if !ok || !alive(noc.NodeID(v), u) {
					continue
				}
				// Does u route toward v for destination d?
				if uh := tbl.Port(u, noc.NodeID(d)); uh != Unreachable && uh < noc.Local {
					if un, _ := topo.Neighbor(u, uh); un == noc.NodeID(v) {
						addDep(chID(u, noc.NodeID(v)), chID(noc.NodeID(v), w))
					}
				}
			}
		}
	}
	const white, gray, black = 0, 1, 2
	color := make(map[int]int)
	var visit func(c int) bool
	visit = func(c int) bool {
		color[c] = gray
		for nxt := range deps[c] {
			switch color[nxt] {
			case gray:
				return false
			case white:
				if !visit(nxt) {
					return false
				}
			}
		}
		color[c] = black
		return true
	}
	for c := range deps {
		if color[c] == white && !visit(c) {
			t.Fatalf("fs=%s: channel dependency graph has a cycle", fs)
		}
	}
}

// TestFaultTableProperty is the randomized deadlock-freedom and
// reachability property test over mesh and concentrated-mesh systems.
func TestFaultTableProperty(t *testing.T) {
	systems := []noc.System{
		{Grid: noc.Topology{Width: 4, Height: 4}, Concentration: 1},
		{Grid: noc.Topology{Width: 8, Height: 8}, Concentration: 1},
		{Grid: noc.Topology{Width: 4, Height: 4}, Concentration: 4},
		{Grid: noc.Topology{Width: 5, Height: 3}, Concentration: 2},
	}
	for _, sys := range systems {
		sys := sys
		cfg := &quick.Config{
			MaxCount: 40,
			Values: func(args []reflect.Value, rng *rand.Rand) {
				args[0] = reflect.ValueOf(randomFaultSet(rng, sys, 0.08, 0.15))
			},
		}
		f := func(fs FaultSet) bool {
			checkFaultTable(t, sys, fs)
			return !t.Failed()
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("sys=%+v: %v", sys, err)
		}
		if t.Failed() {
			return
		}
	}
}

// TestFaultTableTargeted pins known-tricky shapes: the empty set, a single
// dead link, a dead corner router, a cut that partitions the mesh, and
// everything dead.
func TestFaultTableTargeted(t *testing.T) {
	sys := noc.System{Grid: noc.Topology{Width: 4, Height: 4}, Concentration: 1}
	cases := []FaultSet{
		NewFaultSet(nil, nil),
		NewFaultSet(nil, [][2]noc.NodeID{{5, 6}}),
		NewFaultSet([]noc.NodeID{0}, nil),
		NewFaultSet([]noc.NodeID{15}, nil),
		// Vertical cut between columns 1 and 2: partitions the mesh.
		NewFaultSet(nil, [][2]noc.NodeID{{1, 2}, {5, 6}, {9, 10}, {13, 14}}),
		// Isolate router 5 by links alone.
		NewFaultSet(nil, [][2]noc.NodeID{{1, 5}, {4, 5}, {5, 6}, {5, 9}}),
		NewFaultSet([]noc.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, nil),
	}
	for _, fs := range cases {
		checkFaultTable(t, sys, fs)
	}
}

// TestSharedFaultTable checks memoization identity: same fault set, same
// pointer; the empty set degrades to the plain XY table.
func TestSharedFaultTable(t *testing.T) {
	sys := noc.System{Grid: noc.Topology{Width: 4, Height: 4}, Concentration: 2}
	empty := SharedFaultTable(sys, NewFaultSet(nil, nil))
	if empty != SharedSystemTable(sys) {
		t.Fatal("empty fault set must share the XY table")
	}
	fs1 := NewFaultSet([]noc.NodeID{3}, [][2]noc.NodeID{{5, 6}})
	fs2 := NewFaultSet([]noc.NodeID{3, 3}, [][2]noc.NodeID{{6, 5}, {5, 6}})
	if fs1.Key() != fs2.Key() {
		t.Fatalf("canonicalization: %q vs %q", fs1.Key(), fs2.Key())
	}
	a, b := SharedFaultTable(sys, fs1), SharedFaultTable(sys, fs2)
	if a != b {
		t.Fatal("equal fault sets must share one table")
	}
	if a == SharedSystemTable(sys) {
		t.Fatal("non-empty fault set must not alias the XY table")
	}
	if a.Reachable(0, 1) != true {
		t.Fatal("cores on router 0 must stay mutually reachable")
	}
}
