package routing

import (
	"testing"

	"repro/internal/noc"
)

// TestTableExhaustive checks the precomputed route table — and the Row
// aliasing view the routers' input ports hold on the hot path — against
// on-the-fly XY route computation for every (current router, destination
// core) pair on the systems the experiments actually run: the paper's 8x8
// mesh, a 16x16 mesh, and the concentrated 4x4x4 configuration.
func TestTableExhaustive(t *testing.T) {
	systems := []struct {
		name string
		sys  noc.System
	}{
		{"mesh8x8", noc.MeshSystem(noc.Topology{Width: 8, Height: 8})},
		{"mesh16x16", noc.MeshSystem(noc.Topology{Width: 16, Height: 16})},
		{"cmesh4x4x4", noc.System{Grid: noc.Topology{Width: 4, Height: 4}, Concentration: 4}},
	}
	for _, tc := range systems {
		t.Run(tc.name, func(t *testing.T) {
			tbl := NewSystemTable(tc.sys)
			routers, cores := tc.sys.Routers(), tc.sys.Cores()
			for r := 0; r < routers; r++ {
				row := tbl.Row(noc.NodeID(r))
				if len(row) != cores {
					t.Fatalf("router %d: Row length %d, want %d", r, len(row), cores)
				}
				for c := 0; c < cores; c++ {
					cur, dst := noc.NodeID(r), noc.NodeID(c)
					var want noc.Port
					if dstRouter := tc.sys.RouterOf(dst); cur == dstRouter {
						want = tc.sys.LocalPort(dst)
					} else {
						want = XY(tc.sys.Grid, cur, dstRouter)
					}
					if got := tbl.Port(cur, dst); got != want {
						t.Errorf("Port(%d, %d) = %v, want %v", r, c, got, want)
					}
					if got := row[c]; got != want {
						t.Errorf("Row(%d)[%d] = %v, want %v", r, c, got, want)
					}
				}
			}
		})
	}
}

// TestRowIsReadOnlyView confirms Row aliases the table storage with no
// append room: the full-slice expression must make appends reallocate
// instead of clobbering the next router's row.
func TestRowIsReadOnlyView(t *testing.T) {
	tbl := NewTable(noc.Topology{Width: 4, Height: 4})
	row0 := tbl.Row(0)
	if cap(row0) != len(row0) {
		t.Fatalf("Row cap %d exceeds len %d: appends would clobber the table", cap(row0), len(row0))
	}
	_ = append(row0, noc.Local)
	if got, want := tbl.Row(1)[0], tbl.Port(1, 0); got != want {
		t.Fatalf("append through Row corrupted neighbor row: got %v want %v", got, want)
	}
}
