// Package traffic implements the synthetic workloads of §5.1: the standard
// single-flit traffic patterns of Dally & Towles plus the self-similar
// Pareto ON/OFF source (alpha = 1.4, b = 8, T_off varied to set the
// injection rate) used for bursty traffic.
package traffic

import (
	"fmt"
	"math/bits"

	"repro/internal/noc"
	"repro/internal/sim"
)

// Pattern maps a source node to a destination for each generated packet.
// Deterministic permutation patterns ignore the RNG. A pattern may return
// dst == src (e.g., fixed points of a permutation); such packets are not
// injected, which is the standard convention.
type Pattern interface {
	// Name identifies the pattern in reports.
	Name() string
	// Dest picks the destination for a packet from src.
	Dest(src noc.NodeID, rng *sim.RNG) noc.NodeID
}

// nodeBits returns log2(nodes) and validates power-of-two node counts for
// the bit-permutation patterns.
func nodeBits(t noc.Topology) int {
	n := t.Nodes()
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("traffic: bit-permutation patterns need power-of-two node count, got %d", n))
	}
	return bits.Len(uint(n)) - 1
}

// Uniform sends each packet to a destination chosen uniformly at random.
type Uniform struct{ Topo noc.Topology }

// Name implements Pattern.
func (u Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (u Uniform) Dest(src noc.NodeID, rng *sim.RNG) noc.NodeID {
	for {
		d := noc.NodeID(rng.Intn(u.Topo.Nodes()))
		if d != src {
			return d
		}
	}
}

// Transpose sends (x, y) to (y, x); it stresses one diagonal of a mesh
// under dimension-ordered routing.
type Transpose struct{ Topo noc.Topology }

// Name implements Pattern.
func (p Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (p Transpose) Dest(src noc.NodeID, rng *sim.RNG) noc.NodeID {
	c := p.Topo.Coord(src)
	return p.Topo.ID(noc.Coord{X: c.Y % p.Topo.Width, Y: c.X % p.Topo.Height})
}

// BitComplement sends node b_{n-1}...b_0 to ~b, the longest-distance
// permutation.
type BitComplement struct{ Topo noc.Topology }

// Name implements Pattern.
func (p BitComplement) Name() string { return "bitcomp" }

// Dest implements Pattern.
func (p BitComplement) Dest(src noc.NodeID, rng *sim.RNG) noc.NodeID {
	b := nodeBits(p.Topo)
	return noc.NodeID((^int(src)) & ((1 << b) - 1))
}

// BitReverse sends b_{n-1}...b_0 to b_0...b_{n-1}.
type BitReverse struct{ Topo noc.Topology }

// Name implements Pattern.
func (p BitReverse) Name() string { return "bitrev" }

// Dest implements Pattern.
func (p BitReverse) Dest(src noc.NodeID, rng *sim.RNG) noc.NodeID {
	b := nodeBits(p.Topo)
	v := int(src)
	r := 0
	for i := 0; i < b; i++ {
		r = (r << 1) | (v & 1)
		v >>= 1
	}
	return noc.NodeID(r)
}

// Shuffle sends b_{n-1}...b_0 to b_{n-2}...b_0 b_{n-1} (rotate left).
type Shuffle struct{ Topo noc.Topology }

// Name implements Pattern.
func (p Shuffle) Name() string { return "shuffle" }

// Dest implements Pattern.
func (p Shuffle) Dest(src noc.NodeID, rng *sim.RNG) noc.NodeID {
	b := nodeBits(p.Topo)
	v := int(src)
	return noc.NodeID(((v << 1) | (v >> (b - 1))) & ((1 << b) - 1))
}

// Tornado sends each node roughly halfway around each dimension, the
// adversarial pattern for minimal routing.
type Tornado struct{ Topo noc.Topology }

// Name implements Pattern.
func (p Tornado) Name() string { return "tornado" }

// Dest implements Pattern.
func (p Tornado) Dest(src noc.NodeID, rng *sim.RNG) noc.NodeID {
	c := p.Topo.Coord(src)
	dx := (c.X + (p.Topo.Width+1)/2 - 1) % p.Topo.Width
	dy := (c.Y + (p.Topo.Height+1)/2 - 1) % p.Topo.Height
	return p.Topo.ID(noc.Coord{X: dx, Y: dy})
}

// Neighbor sends each node to its +1 neighbor in X (dimension-local
// traffic with minimal path variation).
type Neighbor struct{ Topo noc.Topology }

// Name implements Pattern.
func (p Neighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (p Neighbor) Dest(src noc.NodeID, rng *sim.RNG) noc.NodeID {
	c := p.Topo.Coord(src)
	return p.Topo.ID(noc.Coord{X: (c.X + 1) % p.Topo.Width, Y: c.Y})
}

// Hotspot sends a fraction of traffic to one hot node and the rest
// uniformly.
type Hotspot struct {
	Topo noc.Topology
	Hot  noc.NodeID
	// Frac is the probability a packet targets the hot node (default 0.2
	// when zero).
	Frac float64
}

// Name implements Pattern.
func (p Hotspot) Name() string { return "hotspot" }

// Dest implements Pattern.
func (p Hotspot) Dest(src noc.NodeID, rng *sim.RNG) noc.NodeID {
	frac := p.Frac
	if frac == 0 {
		frac = 0.2
	}
	if src != p.Hot && rng.Bernoulli(frac) {
		return p.Hot
	}
	return Uniform{p.Topo}.Dest(src, rng)
}

// ByName returns the named pattern for the topology. Valid names: uniform,
// transpose, bitcomp, bitrev, shuffle, tornado, neighbor, hotspot.
func ByName(name string, topo noc.Topology) (Pattern, error) {
	switch name {
	case "uniform":
		return Uniform{topo}, nil
	case "transpose":
		return Transpose{topo}, nil
	case "bitcomp":
		return BitComplement{topo}, nil
	case "bitrev":
		return BitReverse{topo}, nil
	case "shuffle":
		return Shuffle{topo}, nil
	case "tornado":
		return Tornado{topo}, nil
	case "neighbor":
		return Neighbor{topo}, nil
	case "hotspot":
		return Hotspot{Topo: topo, Hot: topo.ID(noc.Coord{X: topo.Width / 2, Y: topo.Height / 2})}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

// PatternNames lists the synthetic patterns evaluated in Figures 8 and 9.
var PatternNames = []string{"uniform", "transpose", "bitcomp", "bitrev", "shuffle", "tornado", "neighbor", "hotspot", "selfsimilar"}
