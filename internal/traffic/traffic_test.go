package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/noc"
	"repro/internal/sim"
)

var topo8 = noc.Topology{Width: 8, Height: 8}

// TestPatternsInRange property-checks every pattern returns an on-mesh
// destination for every source.
func TestPatternsInRange(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, name := range []string{"uniform", "transpose", "bitcomp", "bitrev", "shuffle", "tornado", "neighbor", "hotspot"} {
		p, err := ByName(name, topo8)
		if err != nil {
			t.Fatal(err)
		}
		f := func(srcRaw uint8) bool {
			src := noc.NodeID(int(srcRaw) % topo8.Nodes())
			d := p.Dest(src, rng)
			return d >= 0 && int(d) < topo8.Nodes()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestPermutationPatternsAreDeterministic verifies the deterministic
// patterns ignore the RNG.
func TestPermutationPatternsAreDeterministic(t *testing.T) {
	for _, name := range []string{"transpose", "bitcomp", "bitrev", "shuffle", "tornado", "neighbor"} {
		p, _ := ByName(name, topo8)
		r1, r2 := sim.NewRNG(1), sim.NewRNG(999)
		for src := 0; src < topo8.Nodes(); src++ {
			if p.Dest(noc.NodeID(src), r1) != p.Dest(noc.NodeID(src), r2) {
				t.Errorf("%s: destination depends on RNG", name)
			}
		}
	}
}

// TestKnownMappings pins down specific destinations from the standard
// definitions.
func TestKnownMappings(t *testing.T) {
	rng := sim.NewRNG(1)
	cases := []struct {
		pattern string
		src     noc.NodeID
		want    noc.NodeID
	}{
		{"transpose", 1, 8}, // (1,0) -> (0,1)
		{"transpose", 8, 1}, // (0,1) -> (1,0)
		{"bitcomp", 0, 63},  // 000000 -> 111111
		{"bitcomp", 21, 42}, // 010101 -> 101010
		{"bitrev", 1, 32},   // 000001 -> 100000
		{"shuffle", 33, 3},  // 100001 -> 000011
		{"tornado", 0, 27},  // (0,0) -> (3,3) for k=8
		{"neighbor", 0, 1},  // (0,0) -> (1,0)
		{"neighbor", 7, 0},  // wraps in X
	}
	for _, c := range cases {
		p, _ := ByName(c.pattern, topo8)
		if got := p.Dest(c.src, rng); got != c.want {
			t.Errorf("%s(%d) = %d, want %d", c.pattern, c.src, got, c.want)
		}
	}
}

// TestUniformExcludesSelf verifies uniform never picks the source.
func TestUniformExcludesSelf(t *testing.T) {
	rng := sim.NewRNG(3)
	u := Uniform{topo8}
	for i := 0; i < 5000; i++ {
		if u.Dest(5, rng) == 5 {
			t.Fatal("uniform picked the source")
		}
	}
}

// TestHotspotBias verifies roughly the configured fraction of packets hit
// the hot node.
func TestHotspotBias(t *testing.T) {
	rng := sim.NewRNG(4)
	h := Hotspot{Topo: topo8, Hot: 27, Frac: 0.25}
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if h.Dest(0, rng) == 27 {
			hits++
		}
	}
	// Hot node also receives its share of the uniform remainder.
	wantLow, wantHigh := 0.25, 0.25+1.5/64.0+0.02
	frac := float64(hits) / n
	if frac < wantLow-0.02 || frac > wantHigh {
		t.Errorf("hotspot fraction %.3f outside [%.3f, %.3f]", frac, wantLow-0.02, wantHigh)
	}
}

// TestBernoulliRate checks the memoryless process hits its configured rate.
func TestBernoulliRate(t *testing.T) {
	b := &Bernoulli{P: 0.2, RNG: sim.NewRNG(5)}
	count := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if b.Tick() {
			count++
		}
	}
	if got := float64(count) / n; math.Abs(got-0.2) > 0.01 {
		t.Errorf("Bernoulli rate %.4f, want 0.2", got)
	}
	if b.Rate() != 0.2 {
		t.Errorf("Rate() = %v", b.Rate())
	}
}

// TestSelfSimilarRate checks T_off is solved correctly: the long-run rate
// approaches the target. Heavy tails converge slowly, so the tolerance is
// loose but the run is long.
func TestSelfSimilarRate(t *testing.T) {
	for _, target := range []float64{0.05, 0.15, 0.3} {
		s := NewSelfSimilar(target, sim.NewRNG(6))
		if math.Abs(s.Rate()-target) > 1e-9 {
			t.Errorf("analytic rate %v, want %v", s.Rate(), target)
		}
		count := 0
		const n = 2_000_000
		for i := 0; i < n; i++ {
			if s.Tick() {
				count++
			}
		}
		got := float64(count) / n
		if math.Abs(got-target)/target > 0.25 {
			t.Errorf("empirical rate %.4f, want ~%.2f", got, target)
		}
	}
}

// TestSelfSimilarBurstiness verifies the source is actually bursty: the
// lag-1 autocorrelation of the injection indicator far exceeds the
// memoryless process's (which is ~0).
func TestSelfSimilarBurstiness(t *testing.T) {
	autocorr := func(tick func() bool, n int) float64 {
		xs := make([]float64, n)
		mean := 0.0
		for i := range xs {
			if tick() {
				xs[i] = 1
			}
			mean += xs[i]
		}
		mean /= float64(n)
		var num, den float64
		for i := 0; i+1 < n; i++ {
			num += (xs[i] - mean) * (xs[i+1] - mean)
		}
		for i := 0; i < n; i++ {
			den += (xs[i] - mean) * (xs[i] - mean)
		}
		return num / den
	}
	const n = 200000
	ss := NewSelfSimilar(0.2, sim.NewRNG(7))
	be := &Bernoulli{P: 0.2, RNG: sim.NewRNG(8)}
	acSS := autocorr(ss.Tick, n)
	acBe := autocorr(be.Tick, n)
	if acSS < 0.5 {
		t.Errorf("self-similar lag-1 autocorrelation %.3f, want strongly positive", acSS)
	}
	if math.Abs(acBe) > 0.05 {
		t.Errorf("Bernoulli lag-1 autocorrelation %.3f, want ~0", acBe)
	}
}

// TestByNameUnknown checks the error path.
func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope", topo8); err == nil {
		t.Error("unknown pattern accepted")
	}
}

// TestBitPatternsRejectNonPowerOfTwo verifies the guard on bit-permutation
// patterns.
func TestBitPatternsRejectNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bitcomp on 3x3 should panic")
		}
	}()
	p, _ := ByName("bitcomp", noc.Topology{Width: 3, Height: 3})
	p.Dest(0, sim.NewRNG(1))
}
