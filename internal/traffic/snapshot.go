package traffic

import (
	"fmt"

	"repro/internal/snapshot/codec"
)

// Retargetable is implemented by injection processes whose long-run rate can
// be changed in place mid-run, preserving the RNG stream and any burst
// state. Warm-start sweeps use it to warm every rate point's network at one
// common rate and then switch each fork to its own measurement rate.
type Retargetable interface {
	// Retarget sets the process's long-run packets-per-cycle rate.
	Retarget(pktRate float64)
}

// Retarget implements Retargetable: the per-cycle injection probability is
// the rate itself.
func (b *Bernoulli) Retarget(pktRate float64) { b.P = pktRate }

// Retarget implements Retargetable: alpha and b stay fixed (the paper's
// shape parameters) and T_off is re-solved for the new rate, exactly as
// NewSelfSimilar does. An in-progress burst or OFF period continues under
// the old draw — only future Pareto draws see the new T_off.
func (s *SelfSimilar) Retarget(pktRate float64) {
	if pktRate <= 0 || pktRate >= 1 {
		panic("traffic: self-similar rate must be in (0,1)")
	}
	meanOn := s.BOn * s.AlphaOn / (s.AlphaOn - 1)
	meanOff := meanOn * (1 - pktRate) / pktRate
	s.TOff = meanOff * (s.AlphaOff - 1) / s.AlphaOff
}

// Process wire tags.
const (
	procBernoulli = 0
	procSelfSim   = 1
)

// SaveProcess serializes an injection process: its parameters, burst state,
// and RNG position. Custom Process implementations are not serializable and
// fail with codec.ErrUnsupported.
func SaveProcess(e *codec.Encoder, p Process) error {
	switch p := p.(type) {
	case *Bernoulli:
		e.Int(procBernoulli)
		e.F64(p.P)
		e.U64(p.RNG.State())
	case *SelfSimilar:
		e.Int(procSelfSim)
		e.F64(p.AlphaOn)
		e.F64(p.BOn)
		e.F64(p.AlphaOff)
		e.F64(p.TOff)
		e.U64(p.RNG.State())
		e.Int(p.burstLeft)
		e.Int(p.offLeft)
	default:
		return fmt.Errorf("%w: traffic process %T", codec.ErrUnsupported, p)
	}
	return nil
}

// RestoreProcess loads state saved by SaveProcess into p, which must be of
// the same concrete type (the caller rebuilds the process roster from its
// run configuration; restore overwrites parameters and stream position).
func RestoreProcess(d *codec.Decoder, p Process) error {
	tag := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	switch p := p.(type) {
	case *Bernoulli:
		if tag != procBernoulli {
			return fmt.Errorf("%w: process tag %d, want Bernoulli", codec.ErrCorrupt, tag)
		}
		p.P = d.F64()
		p.RNG.SetState(d.U64())
	case *SelfSimilar:
		if tag != procSelfSim {
			return fmt.Errorf("%w: process tag %d, want SelfSimilar", codec.ErrCorrupt, tag)
		}
		p.AlphaOn = d.F64()
		p.BOn = d.F64()
		p.AlphaOff = d.F64()
		p.TOff = d.F64()
		p.RNG.SetState(d.U64())
		p.burstLeft = d.Int()
		p.offLeft = d.Int()
	default:
		return fmt.Errorf("%w: traffic process %T", codec.ErrUnsupported, p)
	}
	return d.Err()
}
