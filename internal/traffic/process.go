package traffic

import "repro/internal/sim"

// Process decides, per node and cycle, whether a packet is generated.
// Implementations are per-node (each node owns one instance with a private
// RNG) so bursts are independent across sources.
type Process interface {
	// Tick reports whether the node generates a packet this cycle.
	Tick() bool
	// Rate returns the long-run packets-per-cycle rate the process targets.
	Rate() float64
}

// Bernoulli injects independently each cycle with fixed probability — the
// standard memoryless injection process for latency-throughput sweeps.
type Bernoulli struct {
	P   float64
	RNG *sim.RNG
}

// Tick implements Process.
func (b *Bernoulli) Tick() bool { return b.RNG.Bernoulli(b.P) }

// Rate implements Process.
func (b *Bernoulli) Rate() float64 { return b.P }

// SelfSimilar is the Pareto ON/OFF source of §5.1 (after Kramer's
// pseudo-Pareto generator): during an ON burst whose length in packets is
// Pareto(AlphaOn, BOn) the node injects back-to-back, then idles for
// Pareto(AlphaOff, TOff) cycles. Aggregating many such sources yields
// self-similar, long-range-dependent traffic. The paper fixes alpha = 1.4
// and b = 8 and varies T_off to set the injection rate.
type SelfSimilar struct {
	AlphaOn, BOn   float64
	AlphaOff, TOff float64
	RNG            *sim.RNG

	burstLeft int
	offLeft   int
}

// NewSelfSimilar builds a source with the paper's parameters (alpha = 1.4,
// b = 8 for both phases) whose T_off is solved so the long-run rate is
// packets-per-cycle rate:
//
//	E[on] = b*alpha/(alpha-1), rate = E[on] / (E[on] + E[off])
//	=> E[off] = E[on]*(1-rate)/rate, T_off = E[off]*(alpha-1)/alpha.
func NewSelfSimilar(rate float64, rng *sim.RNG) *SelfSimilar {
	const alpha, b = 1.4, 8.0
	if rate <= 0 || rate >= 1 {
		panic("traffic: self-similar rate must be in (0,1)")
	}
	meanOn := b * alpha / (alpha - 1)
	meanOff := meanOn * (1 - rate) / rate
	return &SelfSimilar{
		AlphaOn: alpha, BOn: b,
		AlphaOff: alpha, TOff: meanOff * (alpha - 1) / alpha,
		RNG: rng,
	}
}

// Tick implements Process.
func (s *SelfSimilar) Tick() bool {
	if s.offLeft > 0 {
		s.offLeft--
		return false
	}
	if s.burstLeft == 0 {
		s.burstLeft = int(s.RNG.Pareto(s.AlphaOn, s.BOn) + 0.5)
		if s.burstLeft < 1 {
			s.burstLeft = 1
		}
	}
	s.burstLeft--
	if s.burstLeft == 0 {
		s.offLeft = int(s.RNG.Pareto(s.AlphaOff, s.TOff) + 0.5)
	}
	return true
}

// Rate implements Process.
func (s *SelfSimilar) Rate() float64 {
	meanOn := s.BOn * s.AlphaOn / (s.AlphaOn - 1)
	meanOff := s.TOff * s.AlphaOff / (s.AlphaOff - 1)
	return meanOn / (meanOn + meanOff)
}
