// Package trace synthesizes the application traffic of §5.2.
//
// The paper replays captured SPLASH-2/SPEC/TPC traces from a 64-core
// cache-coherent CMP onto two 64-bit physical wormhole networks (request
// and reply classes isolated for protocol deadlock freedom, Table 1), with
// packet events injected open-loop at their CPU-domain timestamps. Those
// traces are proprietary captures; as documented in DESIGN.md, this package
// substitutes a synthetic coherence-trace generator parameterized by
// published workload characteristics. Replay remains open-loop and
// identical in the time domain across router architectures — the property
// the paper's Figures 10 and 11 rely on ("keeping CPU injection bandwidth
// constant across all interconnection networks").
//
// The generated protocol events follow a directory-based MSI-style flow on
// Table 1's packet sizes (8 B control = 1 flit, 72 B data = 9 flits):
//
//	read miss:   core -> home REQ (1 flit, net 0); home -> core DATA
//	             (9 flits, net 1) after the memory latency
//	write miss:  as read; when the line is shared, the home first sends
//	             INV (1 flit, net 0) to each sharer, which acks
//	             (1 flit, net 1)
//	upgrade:     write hit on a shared line: control REQ, sharer
//	             invalidations/acks, control GRANT — no data transfer
//	writeback:   core -> home WB (9 flits, net 0); home -> core ACK
//	             (1 flit, net 1)
//
// Upgrades and invalidation chatter keep single-flit control packets the
// majority of packets, as §2.7 observes for cache-coherent systems.
package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/noc"
	"repro/internal/sim"
)

// CPU-domain timing constants (Table 1: 3 GHz in-order cores, 100-cycle
// memory latency).
const (
	// CPUCyclePs is the processor clock period (3 GHz).
	CPUCyclePs = 333
	// MemLatencyCycles is the memory/L2 service latency in CPU cycles.
	MemLatencyCycles = 100
	// DirLatencyCycles is the directory lookup latency before
	// invalidations issue.
	DirLatencyCycles = 30
	// InvAckCycles is the sharer's turnaround for an invalidation ack.
	InvAckCycles = 15
)

// Packet lengths in flits (Table 1: 8 B control, 72 B data on 64 b flits).
const (
	ControlFlits = 1
	DataFlits    = 9
)

// Network classes (Table 1: separate request and reply physical networks).
const (
	ClassRequest = 0
	ClassReply   = 1
	NumClasses   = 2
)

// Workload is a per-benchmark traffic profile. The numbers are set from
// published characterizations of the SPLASH-2 scientific codes and
// commercial (SPECjbb/TPC-C class) workloads: misses per kilo-cycle,
// read/write mix, sharing behavior, and home-node locality.
type Workload struct {
	Name string
	// TransPerKCycle is the mean coherence transactions initiated per 1000
	// CPU cycles per core.
	TransPerKCycle float64
	// ReadFrac is the fraction of misses that are reads.
	ReadFrac float64
	// WritebackFrac is the fraction of transactions that are dirty
	// writebacks (9-flit requests).
	WritebackFrac float64
	// UpgradeFrac is the fraction of transactions that are upgrades
	// (write permission on a cached shared line): control-only exchanges.
	UpgradeFrac float64
	// ShareFrac is the fraction of write misses hitting shared lines
	// (triggering invalidations).
	ShareFrac float64
	// MeanSharers is the mean number of sharers invalidated.
	MeanSharers float64
	// LocalityLambda shapes home-node selection: P(home at distance d) is
	// proportional to exp(-d/lambda). Zero selects uniformly random homes
	// (address-interleaved, typical for commercial workloads).
	LocalityLambda float64
	// HotEventsPerKCycle is the rate of lock/barrier contention events per
	// 1000 CPU cycles: a handful of cores miss on the same contended line
	// almost simultaneously, converging on one home node. Lock-heavy
	// scientific codes and transactional commercial workloads rank high.
	HotEventsPerKCycle float64
	// BurstMean is the mean Pareto burst length in transactions.
	BurstMean float64
}

// Workloads is the evaluated application mix: six SPLASH-2-class scientific
// codes and two commercial workloads, mirroring the paper's "multiple
// scientific and commercial application traces".
var Workloads = []Workload{
	{Name: "barnes", TransPerKCycle: 7.5, ReadFrac: 0.71, WritebackFrac: 0.07, UpgradeFrac: 0.46, ShareFrac: 0.50, MeanSharers: 3.5, LocalityLambda: 3.0, BurstMean: 3, HotEventsPerKCycle: 2.4},
	{Name: "fft", TransPerKCycle: 10.4, ReadFrac: 0.64, WritebackFrac: 0.12, UpgradeFrac: 0.30, ShareFrac: 0.30, MeanSharers: 2.6, LocalityLambda: 4.5, BurstMean: 5, HotEventsPerKCycle: 0.6},
	{Name: "lu", TransPerKCycle: 7.0, ReadFrac: 0.76, WritebackFrac: 0.09, UpgradeFrac: 0.36, ShareFrac: 0.38, MeanSharers: 2.8, LocalityLambda: 2.5, BurstMean: 4, HotEventsPerKCycle: 1.2},
	{Name: "ocean", TransPerKCycle: 12.1, ReadFrac: 0.68, WritebackFrac: 0.14, UpgradeFrac: 0.32, ShareFrac: 0.35, MeanSharers: 2.6, LocalityLambda: 2.0, BurstMean: 6, HotEventsPerKCycle: 1},
	{Name: "radix", TransPerKCycle: 10.4, ReadFrac: 0.58, WritebackFrac: 0.16, UpgradeFrac: 0.28, ShareFrac: 0.22, MeanSharers: 2.2, LocalityLambda: 0, BurstMean: 7, HotEventsPerKCycle: 0.4},
	{Name: "water", TransPerKCycle: 5.6, ReadFrac: 0.78, WritebackFrac: 0.06, UpgradeFrac: 0.42, ShareFrac: 0.46, MeanSharers: 3.2, LocalityLambda: 3.5, BurstMean: 3, HotEventsPerKCycle: 2},
	{Name: "specjbb", TransPerKCycle: 14.5, ReadFrac: 0.66, WritebackFrac: 0.11, UpgradeFrac: 0.42, ShareFrac: 0.50, MeanSharers: 4.2, LocalityLambda: 0, BurstMean: 8, HotEventsPerKCycle: 3},
	{Name: "tpcc", TransPerKCycle: 15.2, ReadFrac: 0.62, WritebackFrac: 0.12, UpgradeFrac: 0.46, ShareFrac: 0.50, MeanSharers: 4.0, LocalityLambda: 0, BurstMean: 9, HotEventsPerKCycle: 3.6},
}

// WorkloadByName returns the named profile.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range Workloads {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("trace: unknown workload %q", name)
}

// Event is one packet injection in the CPU time domain.
type Event struct {
	TimePs int64
	Src    noc.NodeID
	Dst    noc.NodeID
	Flits  int
	Class  int
}

// Trace is a complete, time-sorted application trace.
type Trace struct {
	Workload   Workload
	Topo       noc.Topology
	DurationPs int64
	Events     []Event
}

// TotalFlits returns the flit volume of the trace.
func (t *Trace) TotalFlits() int64 {
	var n int64
	for _, e := range t.Events {
		n += int64(e.Flits)
	}
	return n
}

// MeanInjectionMBps returns the trace's average offered bandwidth per node
// in MB/s.
func (t *Trace) MeanInjectionMBps() float64 {
	bytes := float64(t.TotalFlits() * noc.FlitBytes)
	seconds := float64(t.DurationPs) * 1e-12
	return bytes / seconds / float64(t.Topo.Nodes()) / 1e6
}

// Generate synthesizes a deterministic trace of the workload over
// cpuCycles processor cycles on the topology.
func Generate(w Workload, topo noc.Topology, cpuCycles int64, seed uint64) *Trace {
	base := sim.NewRNG(seed ^ hashName(w.Name))
	gen := &generator{w: w, topo: topo, homes: newHomePicker(w, topo, base.Fork(1))}

	rngs := make([]*sim.RNG, topo.Nodes())
	for i := range rngs {
		rngs[i] = base.Fork(uint64(100 + i))
	}

	var events []Event
	for core := 0; core < topo.Nodes(); core++ {
		events = append(events, gen.coreEvents(noc.NodeID(core), cpuCycles, rngs[core])...)
	}
	events = append(events, gen.contentionEvents(cpuCycles, base.Fork(7))...)
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.TimePs != b.TimePs {
			return a.TimePs < b.TimePs
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
	return &Trace{Workload: w, Topo: topo, DurationPs: cpuCycles * CPUCyclePs, Events: events}
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

type generator struct {
	w     Workload
	topo  noc.Topology
	homes *homePicker
}

// coreEvents generates one core's transactions as Pareto bursts whose
// spacing is solved to meet the profile's transaction rate.
func (g *generator) coreEvents(core noc.NodeID, cpuCycles int64, rng *sim.RNG) []Event {
	w := g.w
	var events []Event
	// Mean gap between transactions to achieve TransPerKCycle.
	meanGap := 1000 / w.TransPerKCycle
	// Within a burst transactions are spaced a few CPU cycles apart; the
	// idle gap between bursts absorbs the rest of the budget. Burst length
	// is Pareto-distributed but capped by the MSHR limit: an in-order core
	// cannot have unboundedly many outstanding misses.
	const intraBurstGap = 3
	const mshrLimit = 12
	burstMean := math.Max(w.BurstMean, 1)
	interBurstGap := burstMean * (meanGap - intraBurstGap)

	t := int64(rng.Exp(interBurstGap)) // desynchronize cores
	for t < cpuCycles {
		burst := int(rng.Pareto(1.4, burstMean*0.4/1.4) + 0.5)
		if burst < 1 {
			burst = 1
		}
		if burst > mshrLimit {
			burst = mshrLimit
		}
		for i := 0; i < burst && t < cpuCycles; i++ {
			events = append(events, g.transaction(core, t, rng)...)
			t += intraBurstGap
		}
		t += int64(rng.Exp(interBurstGap)) + 1
	}
	return events
}

// transaction emits the protocol events of one coherence transaction
// starting at CPU cycle tc.
func (g *generator) transaction(core noc.NodeID, tc int64, rng *sim.RNG) []Event {
	w := g.w
	home := g.homes.pick(core, rng)
	ps := func(cycles int64) int64 { return cycles * CPUCyclePs }
	var ev []Event

	if rng.Bernoulli(w.WritebackFrac) {
		// Dirty writeback: data out, control ack back.
		ev = append(ev,
			Event{ps(tc), core, home, DataFlits, ClassRequest},
			Event{ps(tc + MemLatencyCycles), home, core, ControlFlits, ClassReply},
		)
		return ev
	}

	upgrade := rng.Bernoulli(w.UpgradeFrac)

	// Miss / upgrade request.
	ev = append(ev, Event{ps(tc), core, home, ControlFlits, ClassRequest})
	if (upgrade || !rng.Bernoulli(w.ReadFrac)) && rng.Bernoulli(w.ShareFrac) {
		// Write permission on a shared line: invalidate sharers first.
		n := 1 + int(rng.Exp(math.Max(w.MeanSharers-1, 0.01))+0.5)
		if n > 8 {
			n = 8
		}
		for i := 0; i < n; i++ {
			sharer := noc.NodeID(rng.Intn(g.topo.Nodes()))
			if sharer == home || sharer == core {
				continue
			}
			ev = append(ev,
				Event{ps(tc + DirLatencyCycles), home, sharer, ControlFlits, ClassRequest},
				Event{ps(tc + DirLatencyCycles + InvAckCycles), sharer, home, ControlFlits, ClassReply},
			)
		}
	}
	if upgrade {
		// Upgrade grant: control only, directory turnaround.
		ev = append(ev, Event{ps(tc + DirLatencyCycles + InvAckCycles + DirLatencyCycles), home, core, ControlFlits, ClassReply})
		return ev
	}
	// Data reply.
	ev = append(ev, Event{ps(tc + MemLatencyCycles), home, core, DataFlits, ClassReply})
	return ev
}

// contentionEvents emits lock/barrier storms: at each event several cores
// send control requests to one contended home within a few cycles and each
// receives a control reply. The convergent single-flit fan-in these create
// is the contention signature that distinguishes the router architectures
// (§3.2): NoX superimposes the colliders productively while the speculative
// designs burn cycles and channel energy resolving them.
func (g *generator) contentionEvents(cpuCycles int64, rng *sim.RNG) []Event {
	w := g.w
	if w.HotEventsPerKCycle <= 0 {
		return nil
	}
	nodes := g.topo.Nodes()
	count := int(float64(cpuCycles) / 1000 * w.HotEventsPerKCycle)
	var ev []Event
	for e := 0; e < count; e++ {
		t := int64(rng.Intn(int(cpuCycles)))
		home := noc.NodeID(rng.Intn(nodes))
		k := 4 + rng.Intn(5)
		seen := map[noc.NodeID]bool{home: true}
		for i := 0; i < k; i++ {
			core := noc.NodeID(rng.Intn(nodes))
			if seen[core] {
				continue
			}
			seen[core] = true
			jitter := int64(rng.Intn(3))
			ev = append(ev,
				Event{(t + jitter) * CPUCyclePs, core, home, ControlFlits, ClassRequest},
				Event{(t + DirLatencyCycles + int64(2*i)) * CPUCyclePs, home, core, ControlFlits, ClassReply},
			)
		}
	}
	return ev
}

// homePicker selects L2 home nodes with optional distance-decayed locality.
type homePicker struct {
	topo noc.Topology
	// cdf[src] is the cumulative weight distribution over destinations;
	// nil for uniform selection.
	cdf [][]float64
}

func newHomePicker(w Workload, topo noc.Topology, rng *sim.RNG) *homePicker {
	hp := &homePicker{topo: topo}
	if w.LocalityLambda <= 0 {
		return hp
	}
	n := topo.Nodes()
	hp.cdf = make([][]float64, n)
	for src := 0; src < n; src++ {
		cum := make([]float64, n)
		total := 0.0
		for dst := 0; dst < n; dst++ {
			if dst != src {
				d := float64(topo.Hops(noc.NodeID(src), noc.NodeID(dst)))
				total += math.Exp(-d / w.LocalityLambda)
			}
			cum[dst] = total
		}
		for i := range cum {
			cum[i] /= total
		}
		hp.cdf[src] = cum
	}
	return hp
}

func (hp *homePicker) pick(src noc.NodeID, rng *sim.RNG) noc.NodeID {
	if hp.cdf == nil {
		for {
			d := noc.NodeID(rng.Intn(hp.topo.Nodes()))
			if d != src {
				return d
			}
		}
	}
	u := rng.Float64()
	cum := hp.cdf[src]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if noc.NodeID(lo) == src { // boundary quirk: src carries zero mass
		lo = (lo + 1) % len(cum)
	}
	return noc.NodeID(lo)
}
