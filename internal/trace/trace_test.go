package trace

import (
	"math"
	"sort"
	"testing"

	"repro/internal/noc"
	"repro/internal/sim"
)

var topo = noc.Topology{Width: 8, Height: 8}

func TestGenerateDeterministic(t *testing.T) {
	w := Workloads[0]
	a := Generate(w, topo, 3000, 42)
	b := Generate(w, topo, 3000, 42)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	c := Generate(w, topo, 3000, 43)
	if len(c.Events) == len(a.Events) {
		same := true
		for i := range c.Events {
			if c.Events[i] != a.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestEventsSortedAndValid(t *testing.T) {
	for _, w := range Workloads {
		tr := Generate(w, topo, 2000, 7)
		if len(tr.Events) == 0 {
			t.Fatalf("%s: empty trace", w.Name)
		}
		if !sort.SliceIsSorted(tr.Events, func(i, j int) bool {
			return tr.Events[i].TimePs < tr.Events[j].TimePs
		}) {
			t.Errorf("%s: events not time-sorted", w.Name)
		}
		for _, e := range tr.Events {
			if e.Src == e.Dst {
				t.Fatalf("%s: self-addressed event %+v", w.Name, e)
			}
			if int(e.Src) >= topo.Nodes() || int(e.Dst) >= topo.Nodes() || e.Src < 0 || e.Dst < 0 {
				t.Fatalf("%s: endpoints off mesh: %+v", w.Name, e)
			}
			if e.Flits != ControlFlits && e.Flits != DataFlits {
				t.Fatalf("%s: packet size %d not in Table 1", w.Name, e.Flits)
			}
			if e.Class != ClassRequest && e.Class != ClassReply {
				t.Fatalf("%s: bad class %d", w.Name, e.Class)
			}
			if e.TimePs < 0 {
				t.Fatalf("%s: negative time %+v", w.Name, e)
			}
		}
	}
}

// TestTransactionRate verifies the generator hits each profile's
// transaction rate within tolerance (requests on the request network from
// cores approximate TransPerKCycle).
func TestTransactionRate(t *testing.T) {
	const cycles = 30000
	for _, w := range Workloads {
		tr := Generate(w, topo, cycles, 11)
		// Count core-initiated request-network events (misses+writebacks);
		// invalidations also ride network 0 but originate at homes, so
		// count only 1-flit req + 9-flit wb... both originate at cores, but
		// invalidations are home->sharer. Approximate by counting all
		// class-0 events minus invalidations is hard without labels; use
		// reply-network data events (one per miss) plus writeback acks
		// instead: every transaction produces exactly one reply to the
		// initiating core.
		perCore := make(map[noc.NodeID]int)
		for _, e := range tr.Events {
			if e.Class == ClassReply && (e.Flits == DataFlits || e.Flits == ControlFlits) {
				perCore[e.Dst]++
			}
		}
		// Reply class also contains inv acks (dst = home); they inflate the
		// count modestly, so allow generous tolerance.
		total := 0
		for _, n := range perCore {
			total += n
		}
		gotRate := float64(total) / float64(topo.Nodes()) / float64(cycles) * 1000
		if gotRate < w.TransPerKCycle*0.7 || gotRate > w.TransPerKCycle*1.6 {
			t.Errorf("%s: measured %.2f transactions/kcycle, profile %.2f", w.Name, gotRate, w.TransPerKCycle)
		}
	}
}

// TestBothNetworksUsed verifies traffic is split across the two physical
// networks (deadlock isolation, Table 1).
func TestBothNetworksUsed(t *testing.T) {
	tr := Generate(Workloads[1], topo, 5000, 3)
	var req, rep int
	for _, e := range tr.Events {
		if e.Class == ClassRequest {
			req++
		} else {
			rep++
		}
	}
	if req == 0 || rep == 0 {
		t.Fatalf("networks unused: req=%d rep=%d", req, rep)
	}
}

// TestLocalityBiasesHomes verifies scientific profiles pick nearer homes
// than uniform ones.
func TestLocalityBiasesHomes(t *testing.T) {
	meanReqDistance := func(w Workload) float64 {
		tr := Generate(w, topo, 10000, 5)
		var sum, n float64
		for _, e := range tr.Events {
			if e.Class == ClassRequest && e.Flits == ControlFlits {
				sum += float64(topo.Hops(e.Src, e.Dst))
				n++
			}
		}
		return sum / n
	}
	local, _ := WorkloadByName("lu")      // lambda 2.5
	uniform, _ := WorkloadByName("radix") // lambda 0
	dl, du := meanReqDistance(local), meanReqDistance(uniform)
	if dl >= du-0.5 {
		t.Errorf("locality ineffective: lu mean distance %.2f, radix %.2f", dl, du)
	}
}

// TestCommercialLoadsHigher verifies the commercial workloads offer more
// bandwidth than the lightest scientific one, mirroring the motivation for
// Figure 10's spread.
func TestCommercialLoadsHigher(t *testing.T) {
	bw := func(name string) float64 {
		w, err := WorkloadByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return Generate(w, topo, 20000, 9).MeanInjectionMBps()
	}
	if bw("tpcc") <= bw("water") {
		t.Error("tpcc should offer more bandwidth than water")
	}
	if bw("specjbb") <= bw("lu") {
		t.Error("specjbb should offer more bandwidth than lu")
	}
}

func TestWorkloadByNameErrors(t *testing.T) {
	if _, err := WorkloadByName("doom3"); err == nil {
		t.Error("unknown workload accepted")
	}
	if w, err := WorkloadByName("ocean"); err != nil || w.Name != "ocean" {
		t.Errorf("lookup failed: %v %v", w, err)
	}
}

// TestHomePickerDistribution sanity-checks the locality CDF sampler: all
// picks are valid nodes, never the source, and nearer nodes dominate.
func TestHomePickerDistribution(t *testing.T) {
	w := Workload{Name: "x", LocalityLambda: 2.0}
	hp := newHomePicker(w, topo, sim.NewRNG(1))
	rng := sim.NewRNG(2)
	src := noc.NodeID(27)   // central node
	counts := map[int]int{} // distance -> picks
	for i := 0; i < 20000; i++ {
		d := hp.pick(src, rng)
		if d == src {
			t.Fatal("picked source as home")
		}
		counts[topo.Hops(src, d)]++
	}
	if counts[1] <= counts[7] {
		t.Errorf("distance-1 picks (%d) should dominate distance-7 (%d)", counts[1], counts[7])
	}
}

// TestMeanInjectionMBps sanity-checks bandwidth computation.
func TestMeanInjectionMBps(t *testing.T) {
	tr := &Trace{
		Topo:       noc.Topology{Width: 2, Height: 2},
		DurationPs: 1_000_000, // 1 us
		Events:     []Event{{0, 0, 1, 9, 0}, {5, 1, 2, 1, 1}},
	}
	// 10 flits * 8 B / 1e-6 s / 4 nodes = 20 MB/s/node.
	if got := tr.MeanInjectionMBps(); math.Abs(got-20) > 1e-9 {
		t.Errorf("MeanInjectionMBps = %v, want 20", got)
	}
}
