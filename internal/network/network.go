package network

import (
	"fmt"
	"runtime"

	"repro/internal/arbiter"
	"repro/internal/buffer"
	"repro/internal/check"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/snapshot/codec"
)

// Config parameterizes one physical network.
type Config struct {
	// Topo is the router-grid shape; the paper evaluates 8x8 (Table 1).
	Topo noc.Topology
	// Concentration is the number of cores per router (default 1, the
	// paper's mesh; 4 builds the radix-8 concentrated mesh of the
	// future-work study).
	Concentration int
	// Arch selects the router microarchitecture for every node.
	Arch router.Arch
	// BufferDepth is the per-input FIFO depth in flits (default 4, Table 1).
	BufferDepth int
	// SinkDepth is the ejection interface buffer depth (default 16; the
	// sink drains a flit per cycle so it never fills in practice).
	SinkDepth int
	// NewArbiter overrides the per-output arbiter (default round-robin).
	NewArbiter func(n int) arbiter.Arbiter
	// AlwaysActive disables the kernel's quiescence fast path so every
	// component is evaluated every cycle — the reference mode that
	// equivalence tests and benchmarks compare the fast path against.
	AlwaysActive bool
	// Probe, when non-nil, records flit-level trace events and per-router
	// metrics for this network. Nil disables all instrumentation at zero
	// cost on the simulation hot path.
	Probe *probe.Probe
	// Shards selects the execution mode: 0 picks automatically (see
	// AutoShards), 1 forces the serial kernel, and N >= 2 partitions the
	// mesh into N spatial shards stepped by a persistent worker pool.
	// Results are bit-identical at every shard count; call Close on the
	// network when done so the workers are released.
	Shards int
	// DisableLanes turns off typed-lane dispatch on the serial path, driving
	// every component through the generic interface walk instead — the
	// reference mode the lane-equivalence tests compare against. Behavior is
	// identical either way; only dispatch mechanics differ. No effect when
	// sharded (lanes are serial-only).
	DisableLanes bool
	// Check, when non-nil, arms the runtime invariant layer on this network:
	// the delivery oracle validates every packet at its interface, protocol
	// violations (which injected faults make legitimately reachable) are
	// recorded instead of panicking, and CheckInvariants runs the post-drain
	// conservation checks. Nil costs nothing on the hot path.
	Check *check.Checker
	// Fault, when non-nil, injects channel-level faults
	// (internal/fault.Injector); it is bound to this network's link sites at
	// construction. Requires Check — running faults without the lenient
	// checker paths would panic sharded worker goroutines. When the injector
	// also implements HardFaulter and declares permanent faults, the network
	// arms fault-aware rerouting with reconfiguration epochs (see
	// hardfault.go).
	Fault FaultInjector
	// Retransmit, when non-nil, arms end-to-end retransmission at the
	// network interfaces: unacknowledged packets are re-sent from their
	// sources with bounded retries and cycle-domain exponential backoff,
	// and packets that exhaust the budget are retired as undeliverable.
	// Nil costs a single pointer test on the hot path.
	Retransmit *RetransmitConfig
	// Slabs, when non-nil, is a shared construction allocator: a batched
	// cohort threads one through every member so N same-shape networks carve
	// their router state from common chunks (see internal/batch). Nil builds
	// a private allocator — identical layout, one skeleton per network.
	// Construction-time, single-goroutine use only.
	Slabs *router.Slabs
	// FlitBlocks, when non-nil, is a shared backing store for the network's
	// flit arenas, so a cohort's members draw blocks from common slabs.
	// Serial execution only: sharded networks grow their shard arenas on
	// worker goroutines and ignore this field.
	FlitBlocks *noc.BlockPool
	// Oracle arms the kernel's event-horizon contract oracle: every component
	// is evaluated eagerly every cycle, and any component the quiescence or
	// horizon rules would have parked is state-hashed around its evaluation —
	// a hash change means the component lied about being parkable (its Quiet
	// or Horizon broke the purity contract) and the step panics with the
	// offender. Debug/contract-test mode: serial execution only, and far
	// slower than either the eager or the parked walk (a full state
	// serialization per parked component per cycle).
	Oracle bool
	// Observer, when non-nil, is installed as an additional kernel observer
	// (after the probe's sampler): it fires at the end of every stepped or
	// fast-forwarded cycle with the active-component count. The telemetry
	// sampler (internal/telemetry) hangs its live cycles/s and activity
	// gauges here. Same contract as sim.Kernel.AddObserver.
	Observer func(cycle int64, active int)
}

// FaultInjector is the contract between a network and a fault-injection
// backend. internal/fault.Injector implements it; the indirection keeps the
// dependency arrow pointing from fault to network's peers rather than into
// this package's construction path.
type FaultInjector interface {
	noc.Tamperer
	// BindSites is called once at construction with the network's channel
	// count; site indices passed to the Tamperer methods are [0, n).
	BindSites(n int)
	// CreditDelta returns the net credit change faults applied at a site,
	// offsetting the post-drain credit conservation check.
	CreditDelta(site int) int
	// Impacted reports whether a fault fired that may corrupt or prevent
	// delivery of the packet; the delivery oracle treats missing impacted
	// packets as accounted-for rather than lost.
	Impacted(id uint64) bool
	// Leaky reports whether a fired fault may have leaked pooled flit
	// objects, disabling the arena-exactness check.
	Leaky() bool
}

func (c *Config) fill() {
	if c.Topo.Width <= 0 || c.Topo.Height <= 0 {
		c.Topo = noc.Topology{Width: 8, Height: 8}
	}
	if c.Concentration <= 0 {
		c.Concentration = 1
	}
	if c.BufferDepth <= 0 {
		c.BufferDepth = 4
	}
	if c.SinkDepth <= 0 {
		c.SinkDepth = 16
	}
}

// AutoShards picks the worker-shard count for a mesh with the given router
// count: the crossover heuristic behind Config.Shards == 0. Small meshes
// (fewer than 256 routers) and single-CPU hosts stay serial — per-cycle
// work there is too small to amortize three barriers — larger meshes get
// roughly one shard per 64 routers, capped at GOMAXPROCS.
func AutoShards(routers int) int {
	procs := runtime.GOMAXPROCS(0)
	if routers < 256 || procs == 1 {
		return 1
	}
	s := routers / 64
	if s < 2 {
		s = 2
	}
	if s > procs {
		s = procs
	}
	return s
}

// delivery is one completed packet staged by a shard worker for the step
// epilogue, which replays deliveries in interface order — the order the
// serial kernel's NI walk would have completed them in.
type delivery struct {
	p  *noc.Packet
	ni int32
}

// Network is a complete mesh NoC: routers, inter-router links, and network
// interfaces, advanced in lockstep cycles.
type Network struct {
	cfg      Config
	sys      noc.System
	kernel   *sim.Kernel
	routes   *routing.Table
	routers  []router.Router
	nis      []*NI
	niHandle []sim.Handle
	counters *power.Counters
	probe    *probe.Probe

	// Sharded-mode state. shardOfNode maps router nodes to contiguous
	// spatial shards; every component is assigned to the shard of the node
	// that RECEIVES from it (routers and NIs to their own node, each link
	// to its sink's node), which keeps every commit-phase write except Wake
	// inside one shard. shardCounters splits the power accounting per shard
	// (folded on Counters calls); mailboxes stage completed deliveries per
	// shard until the epilogue merges them. All nil/zero on the serial path.
	shards        int
	shardOfNode   []int32
	shardCounters []power.Counters
	aggCounters   power.Counters
	mailboxes     [][]delivery
	mailHeads     []int

	// arenas pool every flit the simulation materializes, one per shard so
	// all allocation and recycling is worker-local (serial runs use a single
	// arena). Flits migrate between arenas — only the summed Outstanding is
	// meaningful; see ArenaOutstanding.
	arenas []noc.Arena

	ejectLinks []*noc.Link
	// links is every channel in site order (the fault-injection site
	// numbering and the credit conservation walk).
	links []*noc.Link

	check *check.Checker
	fault FaultInjector

	// Permanent-fault state (see hardfault.go). hard is non-nil only when
	// the injector declares hard faults; sites mirrors links in site order.
	// faultKey/curFaults identify the fault set the active route table was
	// built for; killCursor and lastEscGen are the epoch observer's dirty
	// cursors. All untouched on fault-free runs.
	hard           HardFaulter
	sites          []noc.LinkSite
	faultKey       string
	curFaults      routing.FaultSet
	killCursor     int
	lastEscGen     int64
	epochs         int64
	lastEpochCycle int64
	undeliverable  int64

	// rel is the end-to-end retransmission state, nil when disarmed (see
	// reliability.go).
	rel *relState

	nextPacketID uint64
	injected     int64
	delivered    int64

	// OnDeliver, when set, observes every completed packet at its delivery
	// cycle (after DeliverCycle is stamped). Sharded runs invoke it from
	// the step epilogue on the stepping goroutine, in the same
	// interface-order sequence as serial runs.
	OnDeliver func(p *noc.Packet, cycle int64)
	// OnReconfigure, when set, observes every reconfiguration epoch with
	// the cycle it ran at and the permanent-fault set it rerouted around.
	// Runs on the stepping goroutine; the flight recorder's reconfiguration
	// trigger hangs here.
	OnReconfigure func(cycle int64, fs routing.FaultSet)
}

// New builds and wires a network, panicking on an invalid configuration.
// Build is the error-returning form for configurations from user input.
func New(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	cfg.fill()
	sys := noc.System{Grid: cfg.Topo, Concentration: cfg.Concentration}
	sys.Validate()
	routers := sys.Routers()
	cores := sys.Cores()

	shards := cfg.Shards
	if shards == 0 {
		shards = AutoShards(routers)
	}
	if shards > routers {
		shards = routers
	}
	sharded := shards > 1

	n := &Network{
		cfg:            cfg,
		sys:            sys,
		kernel:         sim.NewKernel(),
		probe:          cfg.Probe,
		shards:         shards,
		lastEpochCycle: -1,
	}

	// Fault binding happens before any router is built: a campaign with
	// permanent faults may declare sites dead from cycle 0, and the routers
	// must be constructed against the route table for the surviving
	// topology, not rerouted after the fact.
	n.sites = buildSites(sys)
	n.check = cfg.Check
	n.fault = cfg.Fault
	if n.fault != nil {
		n.fault.BindSites(len(n.sites))
		if hf, ok := n.fault.(HardFaulter); ok && hf.HardArmed() {
			hf.BindTopology(sys, n.sites)
			n.hard = hf
			n.lastEscGen = hf.EscalationGen()
		}
	}
	n.routes = routing.SharedSystemTable(sys)
	if n.hard != nil {
		fs := n.hard.FaultSet(0)
		n.faultKey = fs.Key()
		n.curFaults = fs
		if !fs.Empty() {
			n.routes = routing.SharedFaultTable(sys, fs)
		}
	}
	if cfg.Retransmit != nil {
		n.rel = newRelState(*cfg.Retransmit)
	}

	if n.probe != nil {
		n.probe.Attach(cfg.Topo.Width, cfg.Topo.Height, sys.Ports(), cores, cfg.BufferDepth)
	}

	// countersFor/probeFor resolve the instrumentation sinks for a component
	// co-located with the given router node. Serial: one shared counter
	// block and the probe itself. Sharded: the node's shard gets its own
	// counter block and probe child, so workers never write shared state.
	n.arenas = make([]noc.Arena, shards)
	var countersFor func(node int) *power.Counters
	var probeFor func(node int) *probe.Probe
	var probeChildren []*probe.Probe
	if sharded {
		n.shardOfNode = make([]int32, routers)
		for id := range n.shardOfNode {
			// Contiguous row-major node ranges: spatially coherent tiles with
			// balanced sizes at any shard count.
			n.shardOfNode[id] = int32(id * shards / routers)
		}
		n.shardCounters = make([]power.Counters, shards)
		n.mailboxes = make([][]delivery, shards)
		n.mailHeads = make([]int, shards)
		countersFor = func(node int) *power.Counters { return &n.shardCounters[n.shardOfNode[node]] }
		if n.probe != nil {
			probeChildren = n.probe.ShardChildren(shards)
			probeFor = func(node int) *probe.Probe { return probeChildren[n.shardOfNode[node]] }
		} else {
			probeFor = func(int) *probe.Probe { return nil }
		}
	} else {
		n.counters = &power.Counters{}
		countersFor = func(int) *power.Counters { return n.counters }
		probeFor = func(int) *probe.Probe { return n.probe }
	}
	arenaFor := func(node int) *noc.Arena {
		if sharded {
			return &n.arenas[n.shardOfNode[node]]
		}
		return &n.arenas[0]
	}

	n.routers = make([]router.Router, routers)
	n.nis = make([]*NI, cores)
	n.ejectLinks = make([]*noc.Link, cores)

	// One batch allocator for every router: their ports, FIFOs, scratch
	// vectors, and arbiters are carved from shared chunks (one allocator per
	// network, or one per cohort when the caller shares it via cfg.Slabs).
	slabs := cfg.Slabs
	if slabs == nil {
		slabs = router.NewSlabs()
	}
	if cfg.FlitBlocks != nil && !sharded {
		n.arenas[0].SetBlocks(cfg.FlitBlocks)
	}
	for id := 0; id < routers; id++ {
		n.routers[id] = router.New(router.Config{
			Arch:        cfg.Arch,
			Node:        noc.NodeID(id),
			Routes:      n.routes,
			BufferDepth: cfg.BufferDepth,
			Counters:    countersFor(id),
			Ports:       sys.Ports(),
			NewArbiter:  cfg.NewArbiter,
			Probe:       probeFor(id),
			Arena:       arenaFor(id),
			Slabs:       slabs,
			Check:       cfg.Check,
		})
	}
	// Network interfaces come from one slab, their sink rings from another,
	// and all share one all-Local route row (every flit reaching a sink
	// ejects locally).
	niSlab := make([]NI, cores)
	localRow := make([]noc.Port, cores)
	for c := range localRow {
		localRow[c] = noc.Local
	}
	sinkSl := buffer.SlotsFor(cfg.SinkDepth)
	sinkSlots := make([]*noc.Flit, cores*sinkSl)
	for c := 0; c < cores; c++ {
		home := int(sys.RouterOf(noc.NodeID(c)))
		ni := &niSlab[c]
		ni.init(noc.NodeID(c), n, cfg.SinkDepth, sinkSlots[c*sinkSl:(c+1)*sinkSl:(c+1)*sinkSl], localRow, arenaFor(home))
		ni.counters = countersFor(home)
		ni.probe = probeFor(home)
		if cfg.Check != nil {
			// Armed: ejection-side decode corruption becomes a reported
			// violation instead of a panic.
			ni.sink.SetLenient(true)
		}
		if sharded {
			ni.shard = n.shardOfNode[home]
		}
		n.nis[c] = ni
	}

	// Components compute/commit in registration order: routers and NIs
	// first, links last, so credits returned during a commit become visible
	// to senders exactly one cycle later. The order also serves the
	// quiescence machinery: a compute-phase Send or a commit-phase
	// ReturnCredit always wakes a link whose commit slot is still ahead in
	// the same cycle. The sharded executor preserves exactly this ordering
	// through the kernel's early/late commit classes (links register via
	// AddLate), and shardOf co-locates every component with the node it
	// delivers into, so all commit-phase writes except Wake stay
	// shard-local.
	// Every channel of the mesh comes from one value slab: 2 directed links
	// per grid adjacency plus an injection and an ejection channel per core.
	linkCount := 2*(cfg.Topo.Width*(cfg.Topo.Height-1)+cfg.Topo.Height*(cfg.Topo.Width-1)) + 2*cores
	linkSlab := make([]noc.Link, linkCount)
	linksUsed := 0
	newLink := func(sink noc.Receiver, credits int) *noc.Link {
		l := &linkSlab[linksUsed]
		linksUsed++
		l.Init(sink, credits)
		return l
	}
	n.kernel.Reserve(routers + cores + linkCount)

	var shardOf []int
	routerHandle := make([]sim.Handle, routers)
	for id := 0; id < routers; id++ {
		routerHandle[id] = n.kernel.Add(n.routers[id])
		if sharded {
			shardOf = append(shardOf, int(n.shardOfNode[id]))
		}
	}
	n.niHandle = make([]sim.Handle, cores)
	for c := 0; c < cores; c++ {
		n.niHandle[c] = n.kernel.Add(n.nis[c])
		if sharded {
			shardOf = append(shardOf, int(n.nis[c].shard))
		}
	}

	// Each link is registered together with the handle of the component its
	// sink belongs to, so a delivery re-activates the consumer, and the
	// handle of its sender, so a credit count lifting off zero re-activates
	// a producer parked on backpressure; the link also inherits the sink
	// owner's shard (receiver-side assignment).
	links := make([]*noc.Link, 0, linkCount)
	sinkOwner := make([]sim.Handle, 0, linkCount)
	srcOwner := make([]sim.Handle, 0, linkCount)
	// linkArena tracks each channel's sink-side arena (needed by fault
	// injection: a flit dropped at commit is released on the sink's shard).
	linkArena := make([]*noc.Arena, 0, linkCount)
	for id := 0; id < routers; id++ {
		r := n.routers[id]
		// Inter-router channels.
		for _, p := range []noc.Port{noc.North, noc.East, noc.South, noc.West} {
			nb, ok := cfg.Topo.Neighbor(noc.NodeID(id), p)
			if !ok {
				continue
			}
			dst := n.routers[nb]
			l := newLink(dst.InputReceiver(p.Opposite()), cfg.BufferDepth)
			r.SetOutputLink(p, l)
			dst.SetInputLink(p.Opposite(), l)
			if n.probe != nil {
				l.SetProbe(probeFor(int(nb)), id, int(p))
			}
			links = append(links, l)
			sinkOwner = append(sinkOwner, routerHandle[nb])
			srcOwner = append(srcOwner, routerHandle[id])
			linkArena = append(linkArena, arenaFor(int(nb)))
		}
		// Local ports: one injection and one ejection link per core.
		for k := 0; k < sys.Concentration; k++ {
			coreID := sys.CoreID(noc.NodeID(id), k)
			port := sys.LocalPort(coreID)
			inj := newLink(r.InputReceiver(port), cfg.BufferDepth)
			n.nis[coreID].injectLink = inj
			r.SetInputLink(port, inj)
			if n.probe != nil {
				inj.SetProbe(probeFor(id), int(coreID), -1)
			}
			links = append(links, inj)
			sinkOwner = append(sinkOwner, routerHandle[id])
			srcOwner = append(srcOwner, n.niHandle[coreID])
			linkArena = append(linkArena, arenaFor(id))
			ej := newLink(n.nis[coreID].SinkReceiver(), cfg.SinkDepth)
			r.SetOutputLink(port, ej)
			if n.probe != nil {
				ej.SetProbe(probeFor(id), id, int(port))
			}
			n.ejectLinks[coreID] = ej
			links = append(links, ej)
			sinkOwner = append(sinkOwner, n.niHandle[coreID])
			srcOwner = append(srcOwner, routerHandle[id])
			linkArena = append(linkArena, arenaFor(id))
		}
	}
	n.links = links
	if n.fault != nil {
		for i, l := range links {
			l.SetTamper(n.fault, i, linkArena[i])
		}
	}
	if linksUsed != linkCount {
		panic(fmt.Sprintf("network: wired %d links, slab sized for %d", linksUsed, linkCount))
	}
	if len(n.sites) != len(links) {
		panic(fmt.Sprintf("network: site table built %d sites for %d links", len(n.sites), len(links)))
	}
	for i, l := range links {
		lh := n.kernel.AddLate(l)
		l.SetWake(n.kernel, int(lh), int(sinkOwner[i]), int(srcOwner[i]))
		if sharded {
			shardOf = append(shardOf, shardOf[sinkOwner[i]])
		}
	}
	if !sharded && !cfg.DisableLanes {
		// Typed dense lanes devirtualize the serial step's dispatch. The
		// three component classes occupy contiguous handle ranges by
		// construction: routers at [0, R), interfaces at [R, R+C), channels
		// after that.
		n.kernel.BindLane(0, router.NewLane(n.routers))
		n.kernel.BindLane(sim.Handle(routers), niLane(n.nis))
		n.kernel.BindLane(sim.Handle(routers+cores), noc.LinkLane(links))
	}
	n.kernel.SetAlwaysActive(cfg.AlwaysActive)
	if cfg.Oracle {
		if sharded {
			panic("network: Config.Oracle requires serial execution (Shards <= 1)")
		}
		n.kernel.SetOracle(n.oracleHash)
	}
	if sharded {
		n.kernel.SetSharding(shards, shardOf)
		n.kernel.SetEpilogue(n.drainShardMail)
		if n.probe != nil {
			n.kernel.SetEvalHook(func(shard, phase, comp int) {
				probeChildren[shard].SetShardContext(phase, comp)
			})
		}
	}
	// Recovery observers run first: the reconfiguration epoch rebuilds
	// routes before the probe samples the cycle, and the retransmission
	// observer after it sees the post-epoch table.
	if n.hard != nil {
		n.kernel.AddObserver(n.epochTick)
	}
	if n.rel != nil {
		n.kernel.AddObserver(n.relTick)
	}
	if n.probe != nil {
		n.kernel.AddObserver(n.probe.Tick)
	}
	if cfg.Observer != nil {
		n.kernel.AddObserver(cfg.Observer)
	}
	return n
}

// oracleHash serializes one component's committed state and folds it to a
// 64-bit FNV-1a digest — the state fingerprint the kernel's debug oracle
// compares around the evaluation of notionally parked components. Handles
// map to components by construction order: routers, then interfaces, then
// channels (the same ranges the typed lanes bind).
func (n *Network) oracleHash(h sim.Handle) uint64 {
	e := codec.NewEncoder()
	i, r, c := int(h), len(n.routers), len(n.nis)
	switch {
	case i < r:
		if err := n.routers[i].SaveState(e); err != nil {
			panic(fmt.Sprintf("network: oracle hash of router %d: %v", i, err))
		}
	case i < r+c:
		n.nis[i-r].SaveState(e)
	default:
		// Links have no SaveState (their only between-step state is the
		// credit count); staged returns are included for completeness even
		// though a parked link always holds zero.
		l := n.links[i-r-c]
		e.Int(l.Credits())
		e.Int(l.PendingReturns())
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	hash := uint64(offset64)
	for _, b := range e.Bytes() {
		hash ^= uint64(b)
		hash *= prime64
	}
	return hash
}

// drainShardMail is the sharded step epilogue: it replays the deliveries
// the shards staged this cycle in interface order (the order the serial NI
// walk completes them in) and merges per-shard probe event buffers back
// into the parent ring. Runs on the stepping goroutine after the cycle's
// last barrier.
func (n *Network) drainShardMail(cycle int64) {
	total := 0
	for s := range n.mailboxes {
		n.mailHeads[s] = 0
		total += len(n.mailboxes[s])
	}
	if total > 0 {
		// Each shard's mailbox is already in ascending interface order (its
		// worker walks NIs in registration order, one delivery per NI per
		// cycle), so a k-way min pick reproduces the global order.
		for ; total > 0; total-- {
			best := -1
			var bestNI int32
			for s := range n.mailboxes {
				h := n.mailHeads[s]
				if h >= len(n.mailboxes[s]) {
					continue
				}
				if ni := n.mailboxes[s][h].ni; best < 0 || ni < bestNI {
					best, bestNI = s, ni
				}
			}
			d := n.mailboxes[best][n.mailHeads[best]]
			n.mailHeads[best]++
			n.deliver(d.p, cycle)
		}
		for s := range n.mailboxes {
			n.mailboxes[s] = n.mailboxes[s][:0]
		}
	}
	if n.probe != nil {
		n.probe.MergeShards()
	}
}

// Probe returns the attached observability probe, nil when disabled.
func (n *Network) Probe() *probe.Probe { return n.probe }

// Topology returns the router-grid shape.
func (n *Network) Topology() noc.Topology { return n.cfg.Topo }

// System returns the (possibly concentrated) system description.
func (n *Network) System() noc.System { return n.sys }

// Cores returns the number of network endpoints.
func (n *Network) Cores() int { return n.sys.Cores() }

// Arch returns the router architecture.
func (n *Network) Arch() router.Arch { return n.cfg.Arch }

// Counters returns the network's event counters. On the serial path this
// is the live shared block; on the sharded path each call folds the
// per-shard blocks into a snapshot (callers already dereference
// immediately to window counters, so both behave identically). Only call
// between steps.
func (n *Network) Counters() *power.Counters {
	if n.shardCounters == nil {
		return n.counters
	}
	n.aggCounters = power.Counters{}
	for i := range n.shardCounters {
		n.aggCounters.Add(n.shardCounters[i])
	}
	return &n.aggCounters
}

// Shards returns the resolved worker-shard count (1 = serial execution).
func (n *Network) Shards() int { return n.shards }

// Close releases the sharded worker pool; stepping after Close panics.
// A no-op on the serial path (and safe to call repeatedly).
func (n *Network) Close() { n.kernel.Close() }

// FullyIdle reports that every component is quiescent, so cycles advance
// without any evaluation until the next injection.
func (n *Network) FullyIdle() bool { return n.kernel.FullyIdle() }

// FastForwardIdle advances the clock up to limit cycles in bulk while the
// network is fully quiescent, returning the cycles advanced (0 if busy).
// Probe sampling still observes every skipped cycle, so probed output is
// identical to stepping. With hard faults or retransmission armed, cycles
// on which a scheduled kill boundary or retransmission event lands are
// stepped rather than skipped (their observers may wake components), and
// the advance stops early if such a step re-activates the network.
func (n *Network) FastForwardIdle(limit int64) int64 {
	if n.hard == nil && n.rel == nil {
		return n.kernel.FastForward(limit)
	}
	return n.fastForward(limit)
}

// Routes returns the network's route table.
func (n *Network) Routes() *routing.Table { return n.routes }

// Cycle returns the current cycle number.
func (n *Network) Cycle() int64 { return n.kernel.Cycle() }

// Kernel exposes the network's simulation kernel for lockstep adoption by
// internal/batch (sim.NewLockstepGroup takes the member kernels). Treat it
// as opaque everywhere else: stepping or mutating it directly bypasses the
// network's own sequencing.
func (n *Network) Kernel() *sim.Kernel { return n.kernel }

// Step advances the network one cycle.
func (n *Network) Step() { n.kernel.Step() }

// Inject creates a packet from src to dst with the given flit count and
// queues it at src's interface in the current cycle. It returns the packet
// for the caller's bookkeeping. Invalid packets panic; InjectChecked is the
// error-returning form for endpoints from user input.
func (n *Network) Inject(src, dst noc.NodeID, length int, class int) *noc.Packet {
	p, err := n.InjectChecked(src, dst, length, class)
	if err != nil {
		panic(err.Error())
	}
	return p
}

// InjectPacket queues a pre-built packet (trace replay) at its source.
// The packet's CreateCycle must be the current cycle or earlier. A packet
// whose destination is currently partitioned away by permanent faults is
// refused at the source — counted injected and undeliverable, so
// offered-traffic accounting stays comparable across fault sets.
func (n *Network) InjectPacket(p *noc.Packet) {
	if int(p.Src) >= len(n.nis) || int(p.Dst) >= len(n.nis) {
		panic(fmt.Sprintf("network: packet endpoints %d->%d outside topology", p.Src, p.Dst))
	}
	n.injected++
	n.check.OnInject(n.Cycle(), p.ID)
	if n.hard != nil && !n.routes.Reachable(p.Src, p.Dst) {
		n.markUndeliverable(p, n.Cycle())
		return
	}
	if n.rel != nil {
		n.relArm(p, n.Cycle())
	}
	n.nis[p.Src].enqueue(p)
	// The interface may have gone quiescent; new work re-activates it.
	n.kernel.Wake(n.niHandle[p.Src])
}

func (n *Network) deliver(p *noc.Packet, cycle int64) {
	n.delivered++
	n.check.OnDeliver(cycle, p.ID)
	if n.rel != nil {
		n.relDelivered(p, cycle)
	}
	if n.OnDeliver != nil {
		n.OnDeliver(p, cycle)
	}
}

// Outstanding returns the number of injected packets neither delivered nor
// retired as undeliverable — the count a drain must bring to zero.
func (n *Network) Outstanding() int64 { return n.injected - n.delivered - n.undeliverable }

// ArenaOutstanding returns the number of pooled flits currently live inside
// the simulation, summed over every shard arena (individual arenas can go
// negative as flits migrate between shards). After a successful Drain it must
// be zero — the leak invariant the network tests assert: every flit the
// datapath materializes is recycled exactly once. Only call between steps.
func (n *Network) ArenaOutstanding() int {
	total := 0
	for i := range n.arenas {
		total += n.arenas[i].Outstanding()
	}
	return total
}

// Injected returns the total packets accepted by Inject so far.
func (n *Network) Injected() int64 { return n.injected }

// Delivered returns the total packets delivered so far.
func (n *Network) Delivered() int64 { return n.delivered }

// QueueLen returns the source-queue depth at a node.
func (n *Network) QueueLen(node noc.NodeID) int { return n.nis[node].QueueLen() }

// Drain runs the network without new traffic until every injected packet is
// delivered or limit additional cycles elapse; it reports whether the
// network fully drained. A fully quiescent network with packets still
// outstanding is wedged (no evaluation can ever deliver them), so Drain
// jumps the clock to the deadline instead of stepping empty cycles.
func (n *Network) Drain(limit int64) bool {
	deadline := n.Cycle() + limit
	for n.Outstanding() > 0 && n.Cycle() < deadline {
		if n.kernel.FullyIdle() {
			if n.FastForwardIdle(deadline-n.Cycle()) == 0 {
				break
			}
			continue
		}
		n.Step()
	}
	return n.Outstanding() == 0
}
