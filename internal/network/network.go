package network

import (
	"fmt"

	"repro/internal/arbiter"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/sim"
)

// Config parameterizes one physical network.
type Config struct {
	// Topo is the router-grid shape; the paper evaluates 8x8 (Table 1).
	Topo noc.Topology
	// Concentration is the number of cores per router (default 1, the
	// paper's mesh; 4 builds the radix-8 concentrated mesh of the
	// future-work study).
	Concentration int
	// Arch selects the router microarchitecture for every node.
	Arch router.Arch
	// BufferDepth is the per-input FIFO depth in flits (default 4, Table 1).
	BufferDepth int
	// SinkDepth is the ejection interface buffer depth (default 16; the
	// sink drains a flit per cycle so it never fills in practice).
	SinkDepth int
	// NewArbiter overrides the per-output arbiter (default round-robin).
	NewArbiter func(n int) arbiter.Arbiter
	// AlwaysActive disables the kernel's quiescence fast path so every
	// component is evaluated every cycle — the reference mode that
	// equivalence tests and benchmarks compare the fast path against.
	AlwaysActive bool
	// Probe, when non-nil, records flit-level trace events and per-router
	// metrics for this network. Nil disables all instrumentation at zero
	// cost on the simulation hot path.
	Probe *probe.Probe
}

func (c *Config) fill() {
	if c.Topo.Width <= 0 || c.Topo.Height <= 0 {
		c.Topo = noc.Topology{Width: 8, Height: 8}
	}
	if c.Concentration <= 0 {
		c.Concentration = 1
	}
	if c.BufferDepth <= 0 {
		c.BufferDepth = 4
	}
	if c.SinkDepth <= 0 {
		c.SinkDepth = 16
	}
}

// Network is a complete mesh NoC: routers, inter-router links, and network
// interfaces, advanced in lockstep cycles.
type Network struct {
	cfg      Config
	sys      noc.System
	kernel   *sim.Kernel
	routes   *routing.Table
	routers  []router.Router
	nis      []*NI
	niHandle []sim.Handle
	counters *power.Counters
	probe    *probe.Probe

	ejectLinks []*noc.Link

	nextPacketID uint64
	injected     int64
	delivered    int64

	// OnDeliver, when set, observes every completed packet at its delivery
	// cycle (after DeliverCycle is stamped).
	OnDeliver func(p *noc.Packet, cycle int64)
}

// New builds and wires a network.
func New(cfg Config) *Network {
	cfg.fill()
	sys := noc.System{Grid: cfg.Topo, Concentration: cfg.Concentration}
	sys.Validate()
	n := &Network{
		cfg:      cfg,
		sys:      sys,
		kernel:   sim.NewKernel(),
		routes:   routing.NewSystemTable(sys),
		counters: &power.Counters{},
		probe:    cfg.Probe,
	}

	routers := sys.Routers()
	cores := sys.Cores()
	if n.probe != nil {
		n.probe.Attach(cfg.Topo.Width, cfg.Topo.Height, sys.Ports(), cores, cfg.BufferDepth)
	}
	n.routers = make([]router.Router, routers)
	n.nis = make([]*NI, cores)
	n.ejectLinks = make([]*noc.Link, cores)

	for id := 0; id < routers; id++ {
		n.routers[id] = router.New(router.Config{
			Arch:        cfg.Arch,
			Node:        noc.NodeID(id),
			Routes:      n.routes,
			BufferDepth: cfg.BufferDepth,
			Counters:    n.counters,
			Ports:       sys.Ports(),
			NewArbiter:  cfg.NewArbiter,
			Probe:       n.probe,
		})
	}
	for c := 0; c < cores; c++ {
		n.nis[c] = newNI(noc.NodeID(c), n, cfg.SinkDepth)
	}

	// Components compute/commit in registration order: routers and NIs
	// first, links last, so credits returned during a commit become visible
	// to senders exactly one cycle later. The order also serves the
	// quiescence machinery: a compute-phase Send or a commit-phase
	// ReturnCredit always wakes a link whose commit slot is still ahead in
	// the same cycle.
	routerHandle := make([]sim.Handle, routers)
	for id := 0; id < routers; id++ {
		routerHandle[id] = n.kernel.Add(n.routers[id])
	}
	n.niHandle = make([]sim.Handle, cores)
	for c := 0; c < cores; c++ {
		n.niHandle[c] = n.kernel.Add(n.nis[c])
	}

	// Each link is registered together with the handle of the component its
	// sink belongs to, so a delivery re-activates the consumer.
	var links []*noc.Link
	var sinkOwner []sim.Handle
	for id := 0; id < routers; id++ {
		r := n.routers[id]
		// Inter-router channels.
		for _, p := range []noc.Port{noc.North, noc.East, noc.South, noc.West} {
			nb, ok := cfg.Topo.Neighbor(noc.NodeID(id), p)
			if !ok {
				continue
			}
			dst := n.routers[nb]
			l := noc.NewLink(dst.InputReceiver(p.Opposite()), cfg.BufferDepth)
			r.SetOutputLink(p, l)
			dst.SetInputLink(p.Opposite(), l)
			if n.probe != nil {
				l.SetProbe(n.probe, id, int(p))
			}
			links = append(links, l)
			sinkOwner = append(sinkOwner, routerHandle[nb])
		}
		// Local ports: one injection and one ejection link per core.
		for k := 0; k < sys.Concentration; k++ {
			coreID := sys.CoreID(noc.NodeID(id), k)
			port := sys.LocalPort(coreID)
			inj := noc.NewLink(r.InputReceiver(port), cfg.BufferDepth)
			n.nis[coreID].injectLink = inj
			r.SetInputLink(port, inj)
			if n.probe != nil {
				inj.SetProbe(n.probe, int(coreID), -1)
			}
			links = append(links, inj)
			sinkOwner = append(sinkOwner, routerHandle[id])
			ej := noc.NewLink(n.nis[coreID].SinkReceiver(), cfg.SinkDepth)
			r.SetOutputLink(port, ej)
			if n.probe != nil {
				ej.SetProbe(n.probe, id, int(port))
			}
			n.ejectLinks[coreID] = ej
			links = append(links, ej)
			sinkOwner = append(sinkOwner, n.niHandle[coreID])
		}
	}
	for i, l := range links {
		lh := n.kernel.Add(l)
		l.SetWake(n.kernel.Waker(lh), n.kernel.Waker(sinkOwner[i]))
	}
	n.kernel.SetAlwaysActive(cfg.AlwaysActive)
	if n.probe != nil {
		n.kernel.SetObserver(n.probe.Tick)
	}
	return n
}

// Probe returns the attached observability probe, nil when disabled.
func (n *Network) Probe() *probe.Probe { return n.probe }

// Topology returns the router-grid shape.
func (n *Network) Topology() noc.Topology { return n.cfg.Topo }

// System returns the (possibly concentrated) system description.
func (n *Network) System() noc.System { return n.sys }

// Cores returns the number of network endpoints.
func (n *Network) Cores() int { return n.sys.Cores() }

// Arch returns the router architecture.
func (n *Network) Arch() router.Arch { return n.cfg.Arch }

// Counters returns the shared event counters (live; snapshot to window).
func (n *Network) Counters() *power.Counters { return n.counters }

// Routes returns the network's route table.
func (n *Network) Routes() *routing.Table { return n.routes }

// Cycle returns the current cycle number.
func (n *Network) Cycle() int64 { return n.kernel.Cycle() }

// Step advances the network one cycle.
func (n *Network) Step() { n.kernel.Step() }

// Inject creates a packet from src to dst with the given flit count and
// queues it at src's interface in the current cycle. It returns the packet
// for the caller's bookkeeping.
func (n *Network) Inject(src, dst noc.NodeID, length int, class int) *noc.Packet {
	if src == dst {
		panic("network: self-addressed packet")
	}
	if length <= 0 {
		panic("network: packet needs at least one flit")
	}
	n.nextPacketID++
	p := noc.NewPacket(n.nextPacketID, src, dst, length, class, n.Cycle())
	n.InjectPacket(p)
	return p
}

// InjectPacket queues a pre-built packet (trace replay) at its source.
// The packet's CreateCycle must be the current cycle or earlier.
func (n *Network) InjectPacket(p *noc.Packet) {
	if int(p.Src) >= len(n.nis) || int(p.Dst) >= len(n.nis) {
		panic(fmt.Sprintf("network: packet endpoints %d->%d outside topology", p.Src, p.Dst))
	}
	n.injected++
	n.nis[p.Src].enqueue(p)
	// The interface may have gone quiescent; new work re-activates it.
	n.kernel.Wake(n.niHandle[p.Src])
}

func (n *Network) deliver(p *noc.Packet, cycle int64) {
	n.delivered++
	if n.OnDeliver != nil {
		n.OnDeliver(p, cycle)
	}
}

// Outstanding returns the number of injected packets not yet delivered.
func (n *Network) Outstanding() int64 { return n.injected - n.delivered }

// Injected returns the total packets accepted by Inject so far.
func (n *Network) Injected() int64 { return n.injected }

// Delivered returns the total packets delivered so far.
func (n *Network) Delivered() int64 { return n.delivered }

// QueueLen returns the source-queue depth at a node.
func (n *Network) QueueLen(node noc.NodeID) int { return n.nis[node].QueueLen() }

// Drain runs the network without new traffic until every injected packet is
// delivered or limit additional cycles elapse; it reports whether the
// network fully drained.
func (n *Network) Drain(limit int64) bool {
	deadline := n.Cycle() + limit
	for n.Outstanding() > 0 && n.Cycle() < deadline {
		n.Step()
	}
	return n.Outstanding() == 0
}
