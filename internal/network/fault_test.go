package network

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/sim"
)

// testTamper is a deliberately broken FaultInjector used by the negative
// tests: its hooks are function fields, and Impacted answers from a fixed
// policy so the delivery oracle's lost-packet scan can be steered.
type testTamper struct {
	flit     func(site int32, cycle int64, f *noc.Flit) bool
	stalled  func(site int32, cycle int64) bool
	impacted bool
	leaky    bool
}

func (tt *testTamper) TamperFlit(site int32, cycle int64, f *noc.Flit) bool {
	if tt.flit == nil {
		return false
	}
	return tt.flit(site, cycle, f)
}
func (tt *testTamper) TamperCredits(site int32, cycle int64, n int) int { return n }
func (tt *testTamper) LinkStalled(site int32, cycle int64) bool {
	if tt.stalled == nil {
		return false
	}
	return tt.stalled(site, cycle)
}
func (tt *testTamper) BindSites(n int)          {}
func (tt *testTamper) CreditDelta(site int) int { return 0 }
func (tt *testTamper) Impacted(id uint64) bool  { return tt.impacted }
func (tt *testTamper) Leaky() bool              { return tt.leaky }

// TestCheckerCatchesXORMaskingBug plants a bug the delivery oracle must
// catch: a tamper that XORs a bit into every *encoded* flit on the wire,
// corrupting NoX superpositions so the downstream decode's bit-exactness
// identity breaks. The armed network must convert that into decode
// violations (and lost packets, since the tamper refuses to account for
// them) rather than panicking.
func TestCheckerCatchesXORMaskingBug(t *testing.T) {
	ck := check.New(check.All())
	bug := &testTamper{
		flit: func(site int32, cycle int64, f *noc.Flit) bool {
			if f.Encoded {
				f.Raw ^= 1 << 17
			}
			return false
		},
		leaky: true, // corrupted chains strand constituents in flight
	}
	topo := noc.Topology{Width: 4, Height: 4}
	n := New(Config{Topo: topo, Arch: router.NoX, Check: ck, Fault: bug})
	defer n.Close()

	// Hotspot contention manufactures encoded flits (every node fires at
	// node 0), so the bug has superpositions to corrupt.
	for round := 0; round < 10; round++ {
		for id := 1; id < topo.Nodes(); id++ {
			n.Inject(noc.NodeID(id), 0, 1, 0)
		}
		n.Step()
	}
	err := n.DrainChecked(5000, 1000)
	n.CheckInvariants()

	counts := ck.Counts()
	if counts[check.KindDecode] == 0 {
		t.Error("no decode violations recorded — the corrupted XOR chains went unnoticed")
	}
	if n.Outstanding() > 0 {
		if err == nil {
			t.Error("packets missing but DrainChecked reported success")
		}
		if counts[check.KindLost] == 0 {
			t.Error("unaccounted missing packets produced no lost-packet violations")
		}
	}
	if counts[check.KindPayload] > 0 {
		t.Errorf("bit-flips on encoded flits should surface as decode failures, got %d payload violations", counts[check.KindPayload])
	}
}

// TestWatchdogLivelock stalls every channel forever: traffic is accepted
// into source queues but nothing ever traverses, so the network never
// quiesces (interfaces hold undelivered work) and the livelock watchdog
// must trip with a diagnostic dump.
func TestWatchdogLivelock(t *testing.T) {
	ck := check.New(check.All())
	wedge := &testTamper{
		stalled:  func(int32, int64) bool { return true },
		impacted: true,
	}
	n := New(Config{Topo: noc.Topology{Width: 2, Height: 2}, Arch: router.NonSpec, Check: ck, Fault: wedge})
	defer n.Close()
	n.Inject(0, 3, 2, 0)
	n.Step()

	err := n.DrainChecked(3000, 200)
	if err == nil {
		t.Fatal("DrainChecked succeeded on a fully stalled network")
	}
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("wedge error does not wrap ErrNoProgress: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "livelock") {
		t.Errorf("expected a livelock headline, got: %.120s", msg)
	}
	if !strings.Contains(msg, "network diagnostic") {
		t.Error("wedge error carries no diagnostic dump")
	}
	if !strings.Contains(msg, "ni 0:") {
		t.Errorf("diagnostic dump does not show the stuck interface:\n%s", msg)
	}
	if ck.Counts()[check.KindWatchdog] == 0 {
		t.Error("watchdog trip not recorded as a violation")
	}
}

// TestWatchdogDeadlock drops every flit on the wire: a single-flit packet
// vanishes in transit, everything goes quiescent with the packet still
// outstanding, and DrainChecked must report the deadlock immediately
// instead of burning the cycle budget. The tamper accounts for the packet,
// so the oracle classifies it impacted rather than lost.
func TestWatchdogDeadlock(t *testing.T) {
	ck := check.New(check.All())
	hole := &testTamper{
		flit:     func(int32, int64, *noc.Flit) bool { return true },
		impacted: true,
		leaky:    true,
	}
	n := New(Config{Topo: noc.Topology{Width: 2, Height: 2}, Arch: router.NonSpec, Check: ck, Fault: hole})
	defer n.Close()
	n.Inject(0, 3, 1, 0)

	start := n.Cycle()
	err := n.DrainChecked(100000, 0)
	if err == nil {
		t.Fatal("DrainChecked succeeded though the packet was dropped")
	}
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("wedge error does not wrap ErrNoProgress: %v", err)
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected a deadlock headline, got: %.120s", err.Error())
	}
	if burned := n.Cycle() - start; burned > 1000 {
		t.Errorf("deadlock detection stepped %d cycles instead of stopping at quiescence", burned)
	}
	n.CheckInvariants()
	if got := ck.Counts()[check.KindLost]; got != 0 {
		t.Errorf("impacted packet misclassified as lost (%d lost violations)", got)
	}
}

// driveCampaign runs one seeded fault campaign and returns a fingerprint of
// everything deterministic about it: fault totals per kind, checker counts,
// and the sorted violation list.
func driveCampaign(t *testing.T, arch router.Arch, shards int, spec fault.Spec) string {
	t.Helper()
	ck := check.New(check.All())
	inj := fault.NewInjector(spec)
	topo := noc.Topology{Width: 4, Height: 4}
	n := New(Config{Topo: topo, Arch: arch, Shards: shards, Check: ck, Fault: inj})
	defer n.Close()

	rng := sim.NewRNG(spec.Seed ^ 0xD1CE)
	for cyc := 0; cyc < 600; cyc++ {
		for id := 0; id < topo.Nodes(); id++ {
			if rng.Float64() >= 0.05 {
				continue
			}
			dst := rng.Intn(topo.Nodes() - 1)
			if dst >= id {
				dst++
			}
			length := 1
			if rng.Intn(4) == 0 {
				length = 4
			}
			n.Inject(noc.NodeID(id), noc.NodeID(dst), length, 0)
		}
		n.Step()
	}
	drainErr := n.DrainChecked(8000, 2000)
	n.CheckInvariants()

	var sb strings.Builder
	fmt.Fprintf(&sb, "faults=%v impacted=%d injected=%d delivered=%d wedged=%v counts=%v\n",
		inj.Totals(), inj.ImpactedCount(), ck.Injected(), ck.Delivered(), drainErr != nil, ck.Counts())
	for _, v := range ck.Violations() {
		fmt.Fprintf(&sb, "%s\n", v)
	}
	return sb.String()
}

// TestFaultCampaignShardInvariance is the tentpole determinism guarantee:
// an identical seeded campaign — faults and all their downstream
// consequences included — produces byte-identical results at every shard
// count, on every architecture.
func TestFaultCampaignShardInvariance(t *testing.T) {
	spec := fault.Spec{Seed: 0xCAFE, BitFlip: 0.002, Drop: 0.0005, Stall: 0.0005, CreditLoss: 0.0002, CreditDup: 0.0002}
	for _, arch := range router.Archs {
		t.Run(arch.String(), func(t *testing.T) {
			want := driveCampaign(t, arch, 1, spec)
			if strings.Contains(want, "faults=[0 0 0 0 0]") {
				t.Fatal("campaign fired no faults — the invariance check would be vacuous")
			}
			for _, shards := range []int{2, 4} {
				if got := driveCampaign(t, arch, shards, spec); got != want {
					t.Errorf("shards=%d diverged from serial\nserial: %.400s\nshards: %.400s", shards, want, got)
				}
			}
		})
	}
}

// TestFaultCampaignReplay: the same spec replayed twice is bit-identical.
func TestFaultCampaignReplay(t *testing.T) {
	spec := fault.Spec{Seed: 0xBEE5, BitFlip: 0.003, Drop: 0.001}
	a := driveCampaign(t, router.NoX, 1, spec)
	b := driveCampaign(t, router.NoX, 1, spec)
	if a != b {
		t.Errorf("replay diverged:\n%s\nvs\n%s", a, b)
	}
}
