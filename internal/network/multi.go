package network

import (
	"fmt"
	"strings"

	"repro/internal/check"
	"repro/internal/noc"
	"repro/internal/power"
)

// Multi bundles several physical networks stepped in lockstep — the
// paper's deployment for application traffic, where a second physical
// network isolates reply-class coherence traffic from requests for
// protocol deadlock freedom (Table 1: "64-bit request, 64-bit reply
// network"; §2.8 argues multiple physical channels over virtual channels).
// A packet's Class field selects its network.
type Multi struct {
	nets []*Network
}

// NewMulti builds classes identical networks from the configuration.
func NewMulti(classes int, cfg Config) *Multi {
	if classes <= 0 {
		panic("network: Multi needs at least one class")
	}
	m := &Multi{nets: make([]*Network, classes)}
	for i := range m.nets {
		m.nets[i] = New(cfg)
	}
	return m
}

// BuildMulti is the error-returning form of NewMulti for configurations
// from user input. Fault injection is rejected here: an Injector binds to
// exactly one network's channel sites, and a Multi builds the configuration
// once per class.
func BuildMulti(classes int, cfg Config) (*Multi, error) {
	if classes <= 0 {
		return nil, fmt.Errorf("%w: Multi needs at least one class, got %d", ErrBadConfig, classes)
	}
	if cfg.Fault != nil {
		return nil, fmt.Errorf("%w: fault injection is per-network (the injector binds to one network's channel sites); inject on a single-class network", ErrBadConfig)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return NewMulti(classes, cfg), nil
}

// Classes returns the number of physical networks.
func (m *Multi) Classes() int { return len(m.nets) }

// Net returns the class's network (for wiring delivery hooks).
func (m *Multi) Net(class int) *Network { return m.nets[class] }

// InjectPacket queues a packet on the physical network its Class selects.
func (m *Multi) InjectPacket(p *noc.Packet) {
	m.nets[p.Class].InjectPacket(p)
}

// Step advances every network one cycle.
func (m *Multi) Step() {
	for _, n := range m.nets {
		n.Step()
	}
}

// Cycle returns the common cycle count.
func (m *Multi) Cycle() int64 { return m.nets[0].Cycle() }

// Outstanding returns undelivered packets across all classes.
func (m *Multi) Outstanding() int64 {
	var n int64
	for _, nw := range m.nets {
		n += nw.Outstanding()
	}
	return n
}

// Counters returns the summed event counters across classes.
func (m *Multi) Counters() power.Counters {
	var c power.Counters
	for _, nw := range m.nets {
		c.Add(*nw.Counters())
	}
	return c
}

// OnDeliver installs one delivery observer across every class.
func (m *Multi) OnDeliver(fn func(p *noc.Packet, cycle int64)) {
	for _, nw := range m.nets {
		nw.OnDeliver = fn
	}
}

// Close releases every class network's sharded worker pool.
func (m *Multi) Close() {
	for _, nw := range m.nets {
		nw.Close()
	}
}

// FullyIdle reports that every class network is fully quiescent.
func (m *Multi) FullyIdle() bool {
	for _, nw := range m.nets {
		if !nw.FullyIdle() {
			return false
		}
	}
	return true
}

// FastForwardIdle advances every class network's clock by up to limit
// cycles in bulk, keeping them in lockstep; legal only while all classes
// are fully quiescent (returns 0 otherwise).
func (m *Multi) FastForwardIdle(limit int64) int64 {
	if limit <= 0 || !m.FullyIdle() {
		return 0
	}
	for _, nw := range m.nets {
		nw.FastForwardIdle(limit)
	}
	return limit
}

// Drain steps without new traffic until everything is delivered or limit
// cycles elapse. Like Network.Drain, a fully quiescent system with packets
// outstanding is wedged, so the clock jumps to the deadline.
func (m *Multi) Drain(limit int64) bool {
	deadline := m.Cycle() + limit
	for m.Outstanding() > 0 && m.Cycle() < deadline {
		if m.FullyIdle() {
			m.FastForwardIdle(deadline - m.Cycle())
			break
		}
		m.Step()
	}
	return m.Outstanding() == 0
}

// DrainChecked is the watchdog-supervised drain across every class, with
// the same semantics and defaults as Network.DrainChecked. The diagnostic
// dump on a wedge covers every class network.
func (m *Multi) DrainChecked(limit, window int64) error {
	if limit <= 0 {
		limit = 30000
	}
	if window <= 0 {
		window = limit
		if window > 4096 {
			window = 4096
		}
	}
	deadline := m.Cycle() + limit
	wd := check.Watchdog{Window: window}
	wd.Reset(m.Cycle(), m.delivered())
	for m.Outstanding() > 0 {
		if m.FullyIdle() {
			return m.wedged(fmt.Sprintf("deadlock: fully quiescent with %d packets outstanding", m.Outstanding()))
		}
		if m.Cycle() >= deadline {
			return m.wedged(fmt.Sprintf("drain limit: %d packets outstanding after %d cycles", m.Outstanding(), limit))
		}
		m.Step()
		if stalled, tripped := wd.Observe(m.Cycle(), m.delivered()); tripped {
			return m.wedged(fmt.Sprintf("livelock: no packet delivered for %d cycles, %d outstanding", stalled, m.Outstanding()))
		}
	}
	return nil
}

func (m *Multi) delivered() int64 {
	var n int64
	for _, nw := range m.nets {
		n += nw.Delivered()
	}
	return n
}

// wedged records the trip on every class's checker (they typically share
// one) and packages the per-class diagnostics into the returned error.
func (m *Multi) wedged(msg string) error {
	var sb strings.Builder
	for class, nw := range m.nets {
		if nw.Outstanding() > 0 {
			nw.check.Watchdog(nw.Cycle(), fmt.Sprintf("class %d: %s", class, msg))
		}
		fmt.Fprintf(&sb, "class %d ", class)
		nw.WriteDiagnostic(&sb)
	}
	return fmt.Errorf("%s: %w\n%s", msg, ErrNoProgress, sb.String())
}

// CheckInvariants runs the post-drain sweep on every class network. The
// classes usually share one Checker — its Finalize is idempotent, so the
// lost-packet scan runs exactly once over the shared oracle.
func (m *Multi) CheckInvariants() {
	for _, nw := range m.nets {
		nw.CheckInvariants()
	}
}
