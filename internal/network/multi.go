package network

import (
	"repro/internal/noc"
	"repro/internal/power"
)

// Multi bundles several physical networks stepped in lockstep — the
// paper's deployment for application traffic, where a second physical
// network isolates reply-class coherence traffic from requests for
// protocol deadlock freedom (Table 1: "64-bit request, 64-bit reply
// network"; §2.8 argues multiple physical channels over virtual channels).
// A packet's Class field selects its network.
type Multi struct {
	nets []*Network
}

// NewMulti builds classes identical networks from the configuration.
func NewMulti(classes int, cfg Config) *Multi {
	if classes <= 0 {
		panic("network: Multi needs at least one class")
	}
	m := &Multi{nets: make([]*Network, classes)}
	for i := range m.nets {
		m.nets[i] = New(cfg)
	}
	return m
}

// Classes returns the number of physical networks.
func (m *Multi) Classes() int { return len(m.nets) }

// Net returns the class's network (for wiring delivery hooks).
func (m *Multi) Net(class int) *Network { return m.nets[class] }

// InjectPacket queues a packet on the physical network its Class selects.
func (m *Multi) InjectPacket(p *noc.Packet) {
	m.nets[p.Class].InjectPacket(p)
}

// Step advances every network one cycle.
func (m *Multi) Step() {
	for _, n := range m.nets {
		n.Step()
	}
}

// Cycle returns the common cycle count.
func (m *Multi) Cycle() int64 { return m.nets[0].Cycle() }

// Outstanding returns undelivered packets across all classes.
func (m *Multi) Outstanding() int64 {
	var n int64
	for _, nw := range m.nets {
		n += nw.Outstanding()
	}
	return n
}

// Counters returns the summed event counters across classes.
func (m *Multi) Counters() power.Counters {
	var c power.Counters
	for _, nw := range m.nets {
		c.Add(*nw.Counters())
	}
	return c
}

// OnDeliver installs one delivery observer across every class.
func (m *Multi) OnDeliver(fn func(p *noc.Packet, cycle int64)) {
	for _, nw := range m.nets {
		nw.OnDeliver = fn
	}
}

// Drain steps without new traffic until everything is delivered or limit
// cycles elapse.
func (m *Multi) Drain(limit int64) bool {
	deadline := m.Cycle() + limit
	for m.Outstanding() > 0 && m.Cycle() < deadline {
		m.Step()
	}
	return m.Outstanding() == 0
}
