package network

import (
	"repro/internal/noc"
	"repro/internal/power"
)

// Multi bundles several physical networks stepped in lockstep — the
// paper's deployment for application traffic, where a second physical
// network isolates reply-class coherence traffic from requests for
// protocol deadlock freedom (Table 1: "64-bit request, 64-bit reply
// network"; §2.8 argues multiple physical channels over virtual channels).
// A packet's Class field selects its network.
type Multi struct {
	nets []*Network
}

// NewMulti builds classes identical networks from the configuration.
func NewMulti(classes int, cfg Config) *Multi {
	if classes <= 0 {
		panic("network: Multi needs at least one class")
	}
	m := &Multi{nets: make([]*Network, classes)}
	for i := range m.nets {
		m.nets[i] = New(cfg)
	}
	return m
}

// Classes returns the number of physical networks.
func (m *Multi) Classes() int { return len(m.nets) }

// Net returns the class's network (for wiring delivery hooks).
func (m *Multi) Net(class int) *Network { return m.nets[class] }

// InjectPacket queues a packet on the physical network its Class selects.
func (m *Multi) InjectPacket(p *noc.Packet) {
	m.nets[p.Class].InjectPacket(p)
}

// Step advances every network one cycle.
func (m *Multi) Step() {
	for _, n := range m.nets {
		n.Step()
	}
}

// Cycle returns the common cycle count.
func (m *Multi) Cycle() int64 { return m.nets[0].Cycle() }

// Outstanding returns undelivered packets across all classes.
func (m *Multi) Outstanding() int64 {
	var n int64
	for _, nw := range m.nets {
		n += nw.Outstanding()
	}
	return n
}

// Counters returns the summed event counters across classes.
func (m *Multi) Counters() power.Counters {
	var c power.Counters
	for _, nw := range m.nets {
		c.Add(*nw.Counters())
	}
	return c
}

// OnDeliver installs one delivery observer across every class.
func (m *Multi) OnDeliver(fn func(p *noc.Packet, cycle int64)) {
	for _, nw := range m.nets {
		nw.OnDeliver = fn
	}
}

// Close releases every class network's sharded worker pool.
func (m *Multi) Close() {
	for _, nw := range m.nets {
		nw.Close()
	}
}

// FullyIdle reports that every class network is fully quiescent.
func (m *Multi) FullyIdle() bool {
	for _, nw := range m.nets {
		if !nw.FullyIdle() {
			return false
		}
	}
	return true
}

// FastForwardIdle advances every class network's clock by up to limit
// cycles in bulk, keeping them in lockstep; legal only while all classes
// are fully quiescent (returns 0 otherwise).
func (m *Multi) FastForwardIdle(limit int64) int64 {
	if limit <= 0 || !m.FullyIdle() {
		return 0
	}
	for _, nw := range m.nets {
		nw.FastForwardIdle(limit)
	}
	return limit
}

// Drain steps without new traffic until everything is delivered or limit
// cycles elapse. Like Network.Drain, a fully quiescent system with packets
// outstanding is wedged, so the clock jumps to the deadline.
func (m *Multi) Drain(limit int64) bool {
	deadline := m.Cycle() + limit
	for m.Outstanding() > 0 && m.Cycle() < deadline {
		if m.FullyIdle() {
			m.FastForwardIdle(deadline - m.Cycle())
			break
		}
		m.Step()
	}
	return m.Outstanding() == 0
}
