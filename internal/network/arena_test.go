package network

import (
	"fmt"
	"testing"

	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/sim"
)

// TestArenaLeakInvariant is the flit-pool leak invariant: once all traffic
// has drained, every pooled flit the network materialized — injection flits,
// XOR superpositions, decode-path copies, register recoveries — must have
// been returned to an arena. A nonzero outstanding count after Drain means
// some lifetime rule in core.InputPort or the NI release path is wrong.
// Checked serial and sharded (flits migrate between shard arenas, so only
// the sum is meaningful) on every architecture.
func TestArenaLeakInvariant(t *testing.T) {
	topo := noc.Topology{Width: 4, Height: 4}
	for _, arch := range router.Archs {
		for _, shards := range []int{0, 4} {
			t.Run(fmt.Sprintf("%v/shards%d", arch, shards), func(t *testing.T) {
				n := New(Config{Topo: topo, Arch: arch, Shards: shards})
				defer n.Close()
				rng := sim.NewRNG(uint64(arch)*13 + uint64(shards) + 5)
				for round := 0; round < 250; round++ {
					for id := 0; id < topo.Nodes(); id++ {
						if rng.Bernoulli(0.25) {
							dst := noc.NodeID(rng.Intn(topo.Nodes()))
							if dst == noc.NodeID(id) {
								continue
							}
							length := []int{1, 1, 1, 4, 9}[rng.Intn(5)]
							n.Inject(noc.NodeID(id), dst, length, 0)
						}
					}
					n.Step()
				}
				if !n.Drain(30000) {
					t.Fatalf("not drained: %d outstanding packets", n.Outstanding())
				}
				if got := n.ArenaOutstanding(); got != 0 {
					t.Errorf("%d pooled flits leaked after drain", got)
				}
			})
		}
	}
}

// TestArenaLeakConcentrated repeats the leak invariant on the radix-8
// concentrated mesh, where up to seven colliders meet at a local port and
// the superposition constituent sets are largest.
func TestArenaLeakConcentrated(t *testing.T) {
	n := New(Config{Topo: noc.Topology{Width: 4, Height: 4}, Concentration: 4, Arch: router.NoX})
	defer n.Close()
	for round := 0; round < 10; round++ {
		for c := 0; c < 8; c++ {
			n.Inject(noc.NodeID(c), 32, 2, 0)
		}
		n.Step()
	}
	if !n.Drain(20000) {
		t.Fatalf("not drained: %d", n.Outstanding())
	}
	if got := n.ArenaOutstanding(); got != 0 {
		t.Errorf("%d pooled flits leaked after drain", got)
	}
}

// TestLaneEquivalence pins the devirtualized dispatch lanes to the generic
// interface walk: the typed-lane serial step must be observably identical —
// same deliveries at the same cycles, same event counters, same final cycle
// — to the reference path that dispatches every component through the
// sim.Clocked interface, for every architecture.
func TestLaneEquivalence(t *testing.T) {
	topo := noc.Topology{Width: 4, Height: 4}
	for _, arch := range router.Archs {
		t.Run(arch.String(), func(t *testing.T) {
			lanesFP, lanesC := driveBursty(t, Config{Topo: topo, Arch: arch}, 0xD15)
			refFP, refC := driveBursty(t, Config{Topo: topo, Arch: arch, DisableLanes: true}, 0xD15)
			if lanesFP != refFP {
				t.Errorf("lane dispatch diverged from interface dispatch:\nlanes: %s\nref:   %s", lanesFP, refFP)
			}
			if lanesC != refC {
				t.Errorf("counters diverged:\nlanes: %+v\nref:   %+v", lanesC, refC)
			}
		})
	}
}
