package network

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/router"
	"repro/internal/sim"
)

// driveBursty drives a deterministic bursty workload — alternating loaded
// and idle stretches, mixed single- and multi-flit packets — and returns a
// fingerprint of everything observable: per-packet delivery records, event
// counters, and final cycle. Idle stretches are long enough for the whole
// network to quiesce, so the fast path's sleep/wake transitions are
// exercised on every burst boundary.
func driveBursty(t *testing.T, cfg Config, seed uint64) (string, power.Counters) {
	t.Helper()
	// Every burst run doubles as an invariant audit: a fresh fully-armed
	// checker rides along (unless the caller supplied one) and the run must
	// finish with zero violations — the delivery oracle, protocol
	// assertions, and conservation sweep all stay silent on a fault-free
	// network at every arch, shard count, and dispatch mode.
	if cfg.Check == nil {
		cfg.Check = check.New(check.All())
	}
	net := New(cfg)
	defer net.Close()
	var log []string
	net.OnDeliver = func(p *noc.Packet, cycle int64) {
		log = append(log, fmt.Sprintf("%d:%d->%d@%d", p.ID, p.Src, p.Dst, cycle))
	}
	rng := sim.NewRNG(seed)
	cores := net.Cores()
	for burst := 0; burst < 8; burst++ {
		for cyc := 0; cyc < 40; cyc++ {
			for inj := 0; inj < 3; inj++ {
				src := noc.NodeID(rng.Intn(cores))
				dst := noc.NodeID(rng.Intn(cores))
				if src == dst {
					continue
				}
				length := 1
				if rng.Intn(4) == 0 {
					length = 3
				}
				net.Inject(src, dst, length, 0)
			}
			net.Step()
		}
		// Idle stretch: everything drains and goes quiescent.
		for cyc := 0; cyc < 120; cyc++ {
			net.Step()
		}
	}
	if !net.Drain(2000) {
		t.Fatalf("network did not drain (outstanding %d)", net.Outstanding())
	}
	net.CheckInvariants()
	if total := cfg.Check.Total(); total != 0 {
		for _, v := range cfg.Check.Violations() {
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("checker recorded %d violations on a fault-free run", total)
	}
	fp := fmt.Sprintf("cycle=%d delivered=%d log=%v", net.Cycle(), net.Delivered(), log)
	return fp, *net.Counters()
}

// TestQuiescenceEquivalence is the safety net for the kernel's activity
// list: the quiescence fast path must be bit-exact against the
// always-evaluate reference — same deliveries at the same cycles, same
// energy event counts — for every router architecture.
func TestQuiescenceEquivalence(t *testing.T) {
	for _, arch := range router.Archs {
		t.Run(arch.String(), func(t *testing.T) {
			cfg := Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: arch}
			ref := cfg
			ref.AlwaysActive = true
			gotFP, gotC := driveBursty(t, cfg, 0xBEEF)
			wantFP, wantC := driveBursty(t, ref, 0xBEEF)
			if gotFP != wantFP {
				t.Errorf("delivery fingerprint diverged\nfast: %.200s\nref:  %.200s", gotFP, wantFP)
			}
			if gotC != wantC {
				t.Errorf("event counters diverged\nfast: %+v\nref:  %+v", gotC, wantC)
			}
		})
	}
}

// TestQuiescenceEquivalenceConcentrated repeats the equivalence check on
// the radix-8 concentrated mesh (4 cores per router), whose local-port
// fanout exercises the NI wake paths hardest.
func TestQuiescenceEquivalenceConcentrated(t *testing.T) {
	for _, arch := range []router.Arch{router.NonSpec, router.NoX} {
		t.Run(arch.String(), func(t *testing.T) {
			cfg := Config{Topo: noc.Topology{Width: 2, Height: 2}, Concentration: 4, Arch: arch}
			ref := cfg
			ref.AlwaysActive = true
			gotFP, gotC := driveBursty(t, cfg, 0xC0FE)
			wantFP, wantC := driveBursty(t, ref, 0xC0FE)
			if gotFP != wantFP {
				t.Errorf("delivery fingerprint diverged\nfast: %.200s\nref:  %.200s", gotFP, wantFP)
			}
			if gotC != wantC {
				t.Errorf("event counters diverged\nfast: %+v\nref:  %+v", gotC, wantC)
			}
		})
	}
}

// TestNetworkGoesQuiescent checks the fast path actually engages: after a
// drain and the mask re-arm cycles, no component should remain active.
func TestNetworkGoesQuiescent(t *testing.T) {
	for _, arch := range router.Archs {
		net := New(Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: arch})
		net.Inject(0, 15, 3, 0)
		net.Inject(5, 10, 1, 0)
		if !net.Drain(500) {
			t.Fatalf("%v: did not drain", arch)
		}
		// A couple of settle cycles let output controls re-arm and links
		// finish their last credit returns.
		for i := 0; i < 4; i++ {
			net.Step()
		}
		if n := net.kernel.ActiveComponents(); n != 0 {
			t.Errorf("%v: %d components still active after drain", arch, n)
		}
		// And the network must come back to life on new work.
		p := net.Inject(3, 12, 1, 0)
		if !net.Drain(500) {
			t.Fatalf("%v: post-quiescence injection never delivered", arch)
		}
		if p.DeliverCycle < 0 {
			t.Errorf("%v: packet not delivered after wake", arch)
		}
	}
}
