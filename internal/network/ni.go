// Package network assembles routers, links, and network interfaces into a
// complete mesh NoC and drives it cycle by cycle. It owns packet injection
// (source queues feeding the routers' local ports) and ejection (sinks that
// decode NoX chains, reassemble wormhole packets, and verify payloads
// bit-exactly against what was injected).
package network

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/probe"
	"repro/internal/sim"
)

// NI is a tile's network interface. The injection side holds an unbounded
// source queue (source queueing time counts toward packet latency, as
// usual) and feeds the router's local input port through a credited link at
// one flit per cycle. The ejection side receives from the router's local
// output through an input-port structure identical to the router's own —
// including the NoX decode register, since encoded chains reach the
// destination interface too — and delivers one flit per cycle.
type NI struct {
	node noc.NodeID
	net  *Network

	// counters and probe are this interface's instrumentation sinks: the
	// network-wide blocks on the serial path, the home shard's blocks when
	// sharded (so workers never write shared state). shard is the home
	// shard index, 0 when serial.
	counters *power.Counters
	probe    *probe.Probe
	shard    int32

	injectLink *noc.Link
	queue      []*noc.Packet
	queueHead  int
	cur        *noc.Packet
	curSeq     int

	// arena pools the flits this interface materializes on injection; the
	// flit of every delivered presentation returns to the home arena in
	// Commit (see released).
	arena *noc.Arena

	sink core.InputPort
	// released is the flit delivered this cycle, staged in Compute and
	// returned to the arena in Commit once the sink port has retired its
	// own references (at most one delivery per cycle).
	released *noc.Flit
	// assembling is the multi-flit packet currently being reassembled.
	assembling  *noc.Packet
	expectSeq   int
	injectedPkt int64

	// dupes counts flits swallowed by the retransmission layer's duplicate
	// suppression at this interface (shard-local; summed by DupSuppressed).
	dupes int64
}

// init wires a slab-allocated NI: slots backs the sink port's FIFO ring,
// localRow is the shared all-Local route row (every flit reaching a sink
// ejects), and arena is the home shard's flit pool.
func (ni *NI) init(node noc.NodeID, net *Network, sinkDepth int, slots []*noc.Flit, localRow []noc.Port, arena *noc.Arena) {
	ni.node, ni.net, ni.arena = node, net, arena
	ni.sink.Init(sinkDepth, slots, localRow, arena)
}

// Node returns the tile this interface serves.
func (ni *NI) Node() noc.NodeID { return ni.node }

// QueueLen returns the number of packets waiting in the source queue
// (including the one mid-injection).
func (ni *NI) QueueLen() int {
	n := len(ni.queue) - ni.queueHead
	if ni.cur != nil {
		n++
	}
	return n
}

// enqueue appends a packet to the source queue.
func (ni *NI) enqueue(p *noc.Packet) {
	// Compact the slice-backed queue occasionally so long runs do not leak.
	if ni.queueHead > 1024 && ni.queueHead*2 > len(ni.queue) {
		ni.queue = append([]*noc.Packet(nil), ni.queue[ni.queueHead:]...)
		ni.queueHead = 0
	}
	ni.queue = append(ni.queue, p)
}

// SinkReceiver returns the receiver wired to the router's local output.
func (ni *NI) SinkReceiver() noc.Receiver { return niReceiver{ni} }

type niReceiver struct{ ni *NI }

// Receive buffers a flit arriving from the router's local output port.
func (r niReceiver) Receive(f *noc.Flit, cycle int64) {
	ni := r.ni
	if ni.sink.Free() == 0 && ni.net.check != nil {
		// Only an injected credit-duplication fault can overrun the sink
		// (the credit protocol otherwise forbids it): report and swallow.
		var pkt uint64
		if !f.Encoded && f.Packet != nil {
			pkt = f.Packet.ID
		}
		ni.net.check.Overflow(cycle, int(ni.node), -1, pkt)
		ni.arena.Release(f)
		return
	}
	r.ni.sink.Receive(f)
	r.ni.counters.BufWrite++
	if pr := r.ni.probe; pr != nil {
		if f.Encoded {
			pr.NIBufWrite(cycle, int(r.ni.node), f.Raw, -1)
		} else {
			pr.NIBufWrite(cycle, int(r.ni.node), f.Packet.ID, f.Seq)
		}
	}
}

// Compute injects the next flit of the packet under transmission and ejects
// (decoding if necessary) one delivered flit.
func (ni *NI) Compute(cycle int64) {
	// Injection side.
	if ni.cur == nil && ni.queueHead < len(ni.queue) {
		ni.cur = ni.queue[ni.queueHead]
		ni.queue[ni.queueHead] = nil
		ni.queueHead++
		ni.curSeq = 0
	}
	if ni.cur != nil && ni.injectLink.Ready(cycle) {
		if ni.curSeq == 0 {
			ni.cur.InjectCycle = cycle
			if pr := ni.probe; pr != nil {
				pr.Inject(cycle, int(ni.node), ni.cur.ID, ni.cur.Length)
			}
		}
		ni.injectLink.Send(ni.arena.NewFlit(ni.cur, ni.curSeq))
		ni.curSeq++
		if ni.curSeq == ni.cur.Length {
			ni.cur = nil
		}
	}

	// Ejection side: at most one flit per cycle leaves the sink port.
	if f, decoded, ok := ni.sink.Offer(); ok {
		if decoded {
			if pr := ni.probe; pr != nil {
				pr.NIDecode(cycle, int(ni.node), f.Packet.ID)
			}
		}
		ni.sink.Service()
		ni.deliver(f, cycle)
	}
}

// Quiet implements sim.Quiescable: nothing queued or mid-injection on the
// source side and nothing buffered (FIFO or decode register) on the sink
// side. A partially reassembled packet with an empty sink is quiet — its
// remaining flits wake the interface on arrival. Re-activation paths:
// Network.InjectPacket wakes the interface directly, and the ejection
// link's delivery wake covers the sink side.
func (ni *NI) Quiet() bool {
	return ni.cur == nil && ni.queueHead >= len(ni.queue) &&
		ni.sink.Buffered() == 0 && !ni.sink.RegisterBusy()
}

// Horizon implements sim.Horizoned: a non-quiet interface whose only pending
// work is a mid-transmission packet stalled on a creditless injection channel
// is in a state evaluation cannot change — Compute finds Ready false and an
// empty sink, Commit has nothing staged — so it parks until an external wake
// (the injection link's src wake when returned credits lift the count off
// zero, or Network.InjectPacket). Every other non-quiet state must be
// evaluated next cycle: a queued packet still needs its pop into cur (a state
// change), a positive credit count may be gated by a time-varying stall
// fault, and pending sink work drains one flit per cycle. The binary
// Never/now+1 range keeps the interface lane-compatible (see sim.Lane): an
// NI never files a timed wheel entry.
func (ni *NI) Horizon(now int64) int64 {
	if ni.cur != nil && ni.injectLink.Credits() == 0 &&
		ni.sink.Buffered() == 0 && !ni.sink.RegisterBusy() && ni.released == nil {
		return sim.Never
	}
	return now + 1
}

// Commit applies the sink port's staged actions and returns its credits.
func (ni *NI) Commit(cycle int64) {
	ev := ni.sink.Commit()
	c := ni.counters
	if ev.DecodeErr != nil {
		// The lenient sink port discarded a corrupt decode register
		// (ejection-side XOR chain broken by an injected fault).
		ck := ni.net.check
		ck.Decode(cycle, int(ni.node), -1, ev.DecodeErr)
		ck.MarkLeaky()
	}
	c.BufRead += int64(ev.Reads)
	if ev.Latched {
		c.RegWrite++
	}
	if ev.Decoded {
		c.Decode++
	}
	if pr := ni.probe; pr != nil && ev.Reads > 0 {
		pr.NIBufRead(cycle, int(ni.node), ev.Reads)
	}
	eject := ni.net.ejectLinks[ni.node]
	for i := 0; i < ev.FreedSlots; i++ {
		eject.ReturnCredit()
	}
	if f := ni.released; f != nil {
		// The flit delivered this cycle is now unreachable: the sink commit
		// above retired the port's own references, and delivery consumed the
		// payload. It returns to this interface's arena regardless of which
		// arena allocated it (pooled flits migrate across shards).
		ni.released = nil
		ni.arena.Release(f)
	}
}

// deliver consumes one decoded flit, verifies it bit-exactly, reassembles
// wormhole packets, and completes packet delivery at the tail.
//
// With a checker armed, the delivery-oracle assertions record violations
// instead of panicking (injected faults make every one reachable): a
// corrupt payload is still delivered (the corruption is the finding, the
// packet is not lost), while misrouted, orphan, gapped, or interleaved
// flits are swallowed and recycled — their packets surface through the
// lost-packet scan in Checker.Finalize.
func (ni *NI) deliver(f *noc.Flit, cycle int64) {
	ck := ni.net.check
	p := f.Packet
	if ni.net.rel != nil && p.DeliverCycle != -1 {
		// Duplicate of an already-delivered packet (a spurious
		// retransmission overtaken by the original) or a straggler of one
		// the network retired: suppressed by sequence identity, the
		// receiver-side half of end-to-end retransmission.
		ni.dupes++
		ni.released = f
		return
	}
	if p.Dst != ni.node {
		if ck == nil {
			panic(fmt.Sprintf("network: flit %v misrouted to node %d", f, ni.node))
		}
		ck.Misroute(cycle, int(ni.node), p.ID, int(p.Dst))
		ni.released = f
		return
	}
	if want := noc.PayloadWord(p.ID, p.Src, p.Dst, f.Seq); f.Raw != want {
		if ck == nil {
			panic(fmt.Sprintf("network: payload corruption on %v: got %#x want %#x", f, f.Raw, want))
		}
		ck.Payload(cycle, int(ni.node), p.ID, f.Seq, f.Raw, want)
	}
	if ni.assembling == nil {
		if f.Seq != 0 {
			if ck == nil {
				panic(fmt.Sprintf("network: body flit %v without head", f))
			}
			ck.Sequence(cycle, int(ni.node), p.ID, fmt.Sprintf("body flit seq=%d with no head in reassembly", f.Seq))
			ni.released = f
			return
		}
		ni.assembling = p
		ni.expectSeq = 0
	} else if ni.net.rel != nil && p == ni.assembling && f.Seq == 0 && ni.expectSeq > 0 {
		// A fresh head of the very packet mid-reassembly: an end-to-end
		// retransmission restarted it after the earlier attempt's remaining
		// flits were lost in a reconfiguration flush. Restart from the head
		// — the retransmitted sequence is complete and self-consistent.
		ni.expectSeq = 0
	} else if ck != nil && p != ni.assembling && f.Seq == 0 {
		// A fresh head while another packet is mid-reassembly: the previous
		// packet's tail was lost. Abandon it (it can never complete) so one
		// fault does not poison every later delivery at this interface.
		ck.Sequence(cycle, int(ni.node), ni.assembling.ID,
			fmt.Sprintf("reassembly abandoned at seq %d, preempted by pkt %d", ni.expectSeq, p.ID))
		ni.assembling = p
		ni.expectSeq = 0
	}
	if p != ni.assembling || f.Seq != ni.expectSeq {
		if ck == nil {
			panic(fmt.Sprintf("network: interleaved wormhole delivery: got %v want pkt%d.%d", f, ni.assembling.ID, ni.expectSeq))
		}
		if p == ni.assembling {
			ck.Sequence(cycle, int(ni.node), p.ID, fmt.Sprintf("sequence gap: got seq %d want %d", f.Seq, ni.expectSeq))
			// A gapped packet can never complete; stop expecting it.
			ni.assembling = nil
		} else {
			ck.Sequence(cycle, int(ni.node), p.ID,
				fmt.Sprintf("body flit seq=%d interleaved into reassembly of pkt %d", f.Seq, ni.assembling.ID))
		}
		ni.released = f
		return
	}
	ni.expectSeq++
	ni.released = f
	if f.Seq == p.Length-1 {
		ni.assembling = nil
		p.DeliverCycle = cycle
		if pr := ni.probe; pr != nil {
			pr.Deliver(cycle, int(ni.node), p.ID, cycle-p.CreateCycle)
		}
		if n := ni.net; n.mailboxes != nil {
			// Sharded: stage the completed packet for the step epilogue,
			// which replays deliveries in interface order on the stepping
			// goroutine — the network's delivered count and OnDeliver
			// observers are shared state a worker must not touch.
			n.mailboxes[ni.shard] = append(n.mailboxes[ni.shard], delivery{p: p, ni: int32(ni.node)})
		} else {
			n.deliver(p, cycle)
		}
	}
}
