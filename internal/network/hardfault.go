package network

import (
	"sort"

	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/routing"
	"repro/internal/snapshot/codec"
)

// Permanent-fault support: when the fault injector declares hard faults
// (dead links, dead routers, or transient-to-permanent escalation), the
// network arms a reconfiguration-epoch observer. At the end of the cycle
// before a kill takes effect — or the cycle an escalation promotes a site —
// the observer rebuilds the route table over the surviving topology
// (deadlock-free up*/down*, see internal/routing), flushes every in-flight
// flit (accounted to the delivery oracle, recovered by end-to-end
// retransmission when armed), restores all channel credits, and retires
// packets whose destinations the damage partitioned away as undeliverable.
// The whole epoch runs atomically between two cycles on the stepping
// goroutine, so serial, sharded, and batched execution see byte-identical
// degradation.

// HardFaulter extends FaultInjector with the permanent-fault surface the
// reconfiguration machinery needs. internal/fault.Injector implements it;
// the network detects the capability by type assertion and arms the epoch
// observer only when HardArmed reports the campaign actually declares
// permanent faults.
type HardFaulter interface {
	FaultInjector
	// HardArmed reports whether the campaign declares any permanent-fault
	// machinery at all; false keeps the network on the transient-only path.
	HardArmed() bool
	// BindTopology is called once at construction, after BindSites, with the
	// system and the per-site topology attachments in site order.
	BindTopology(sys noc.System, sites []noc.LinkSite)
	// FaultSet returns the canonical dead-router/dead-link set in force at
	// cycle — the key route tables are rebuilt from.
	FaultSet(cycle int64) routing.FaultSet
	// ScheduledKillCycles returns the sorted cycles (> 0) at which
	// spec-scheduled kills take effect.
	ScheduledKillCycles() []int64
	// EscalationGen returns a monotonic count of escalation promotions, the
	// epoch observer's dirty signal for runtime-promoted permanent faults.
	EscalationGen() int64
	// EscalatedLinks returns how many links escalation killed so far.
	EscalatedLinks() int64
	// MarkImpacted records a packet whose delivery a permanent fault may
	// have prevented, so the delivery oracle accounts rather than loses it.
	MarkImpacted(id uint64)
	// ResetSiteAccounting zeroes per-site credit deltas after the epoch
	// restores every channel to full credit.
	ResetSiteAccounting()
	// SaveHardState and RestoreHardState checkpoint the dynamic permanent-
	// fault state (escalated kills, escalation rings) with the network.
	SaveHardState(e *codec.Encoder)
	RestoreHardState(d *codec.Decoder) error
}

// buildSites constructs the per-channel topology attachments in exactly the
// order New wires links: per router (ascending id) its North/East/South/West
// inter-router channels to existing neighbors, then per attached core an
// inject channel followed by an eject channel. New cross-checks the length
// against the wired link count.
func buildSites(sys noc.System) []noc.LinkSite {
	topo := sys.Grid
	routers := sys.Routers()
	sites := make([]noc.LinkSite, 0, 2*(topo.Width*(topo.Height-1)+topo.Height*(topo.Width-1))+2*sys.Cores())
	for id := 0; id < routers; id++ {
		for _, p := range []noc.Port{noc.North, noc.East, noc.South, noc.West} {
			if nb, ok := topo.Neighbor(noc.NodeID(id), p); ok {
				sites = append(sites, noc.LinkSite{Src: noc.NodeID(id), Dst: nb, Core: -1})
			}
		}
		for k := 0; k < sys.Concentration; k++ {
			coreID := sys.CoreID(noc.NodeID(id), k)
			sites = append(sites, noc.LinkSite{Src: -1, Dst: noc.NodeID(id), Core: coreID})
			sites = append(sites, noc.LinkSite{Src: noc.NodeID(id), Dst: -1, Core: coreID})
		}
	}
	return sites
}

// epochTick is the reconfiguration observer, installed (before all other
// observers) only when hard faults are armed. It fires at the end of every
// cycle; the cheap path is two comparisons. When the permanent-fault set
// effective next cycle differs from the one the current route table was
// built for, it runs the reconfiguration epoch. Wakes are legal only inside
// a real Step; Network.fastForward guarantees every cycle on which this
// observer could find work is stepped, never skipped.
func (n *Network) epochTick(cycle int64, active int) {
	dirty := false
	sched := n.hard.ScheduledKillCycles()
	for n.killCursor < len(sched) && sched[n.killCursor] <= cycle+1 {
		n.killCursor++
		dirty = true
	}
	if g := n.hard.EscalationGen(); g != n.lastEscGen {
		n.lastEscGen = g
		dirty = true
	}
	if !dirty {
		return
	}
	fs := n.hard.FaultSet(cycle + 1)
	if fs.Key() == n.faultKey {
		// A kill landed on an already-dead site (scheduled twice, or
		// escalation racing a scheduled kill): nothing to rebuild.
		return
	}
	if !n.kernel.Stepping() {
		// fastForward steps every cycle a scheduled kill can land on, and
		// escalations need traffic, which a fully idle network has none of.
		panic("network: reconfiguration epoch during fast-forward (kill boundary was skipped, not stepped)")
	}
	n.reconfigure(fs, cycle)
}

// reconfigure is the epoch itself, running between cycle and cycle+1 with
// every component committed and all shard workers quiescent:
//
//  1. Rebuild the route table for the surviving topology and repoint every
//     router at it.
//  2. Flush all in-flight flits — router buffers, sink ports, reassembly in
//     progress, packets mid-transmission — back to rest state. Every flushed
//     packet is marked impacted; without retransmission it is retired as
//     undeliverable (its flits are gone — it can never complete), with
//     retransmission its source resends it after the timeout.
//  3. Restore every channel to full credit (flushed flits took their credits
//     with them) and zero the fault layer's credit accounting to match.
//  4. Retire packets whose destinations are now unreachable — queued,
//     mid-flight, or awaiting retransmission — as undeliverable.
//  5. Wake every interface so parked senders re-evaluate against the
//     refilled credits and the new table.
func (n *Network) reconfigure(fs routing.FaultSet, cycle int64) {
	tbl := routing.SharedFaultTable(n.sys, fs)

	// Flush accounting: collect every distinct packet whose flits the flush
	// destroys. Constituents of encoded flits are walked explicitly — the
	// flushed object may be the superposition, not its parts.
	flushed := make(map[uint64]*noc.Packet)
	note := func(p *noc.Packet) {
		if p != nil {
			flushed[p.ID] = p
		}
	}
	dropped := 0
	acct := func(f *noc.Flit) {
		dropped++
		if f.Encoded {
			for i := range f.Parts {
				note(f.Parts[i].Packet)
			}
			return
		}
		note(f.Packet)
	}

	for _, r := range n.routers {
		r.Flush(acct)
		r.Reroute(tbl)
	}
	for _, ni := range n.nis {
		ni.reconfigure(tbl, acct, note)
	}
	for _, l := range n.links {
		if err := l.RestoreCredits(l.Capacity()); err != nil {
			panic("network: reconfiguration credit restore: " + err.Error())
		}
	}
	n.hard.ResetSiteAccounting()
	if dropped > 0 && n.cfg.Arch == router.NoX {
		// NoX flushes can strand encoded constituents (the same objects may
		// be live upstream as collision losers, so they leak by design —
		// see core.InputPort.Flush); arena exactness no longer holds.
		n.check.MarkLeaky()
	}

	// Retire flushed packets in ascending ID order (map iteration must not
	// leak into observable state). Already-delivered packets only lost
	// stale duplicate flits; mid-flight ones are impacted, and without
	// retransmission provably undeliverable.
	ids := make([]uint64, 0, len(flushed))
	for id := range flushed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := flushed[id]
		if p.DeliverCycle >= 0 {
			continue
		}
		n.hard.MarkImpacted(id)
		if n.rel == nil {
			n.markUndeliverable(p, cycle)
		}
	}
	// Packets awaiting retransmission toward now-unreachable destinations
	// can never be recovered; retire them too (ascending ID order).
	if n.rel != nil {
		n.rel.retireUnreachable(n, tbl, cycle)
	}

	for c := range n.nis {
		n.kernel.Wake(n.niHandle[c])
	}

	n.routes = tbl
	n.faultKey = fs.Key()
	n.curFaults = fs
	n.epochs++
	n.lastEpochCycle = cycle
	if n.OnReconfigure != nil {
		n.OnReconfigure(cycle, fs)
	}
}

// reconfigure tears down this interface's in-flight state at a
// reconfiguration epoch: the sink port is flushed through acct, reassembly
// in progress is abandoned (its remaining flits were just flushed
// somewhere), a packet mid-transmission is aborted (its earlier flits are
// gone; retransmission restarts it from the head), and queued packets whose
// destinations the damage partitioned away are retired as undeliverable.
func (ni *NI) reconfigure(tbl *routing.Table, acct func(*noc.Flit), note func(*noc.Packet)) {
	ni.sink.Flush(acct)
	if p := ni.assembling; p != nil {
		note(p)
		ni.assembling = nil
		ni.expectSeq = 0
	}
	if p := ni.cur; p != nil && ni.curSeq > 0 {
		note(p)
		ni.cur = nil
	}
	n := ni.net
	if p := ni.cur; p != nil && !tbl.Reachable(ni.node, p.Dst) {
		n.markUndeliverable(p, n.Cycle())
		ni.cur = nil
	}
	old := ni.queue
	kept := ni.queue[:0]
	for _, p := range old[ni.queueHead:] {
		if !tbl.Reachable(ni.node, p.Dst) {
			n.markUndeliverable(p, n.Cycle())
			continue
		}
		kept = append(kept, p)
	}
	for i := len(kept); i < len(old); i++ {
		old[i] = nil // drop stale references past the compacted tail
	}
	ni.queue = kept
	ni.queueHead = 0
}

// markUndeliverable retires a packet the network has proven can never be
// delivered: the undeliverable count (which Outstanding subtracts, so drains
// terminate), the checker's delivery oracle, and any retransmission entry
// are all settled together. Idempotent, and a no-op on delivered packets.
// Stepping goroutine only.
func (n *Network) markUndeliverable(p *noc.Packet, cycle int64) {
	if p.DeliverCycle != -1 {
		return // delivered, or already retired
	}
	p.DeliverCycle = noc.Undelivered
	n.undeliverable++
	n.check.OnUndeliverable(cycle, p.ID)
	if n.rel != nil {
		delete(n.rel.entries, p.ID)
	}
}

// nextEventBoundary returns the earliest upcoming cycle that must be stepped
// (not skipped) for the recovery machinery to observe it: the cycle before
// the next scheduled kill (its epoch runs in that cycle's observer), or the
// next retransmission event. Returns ok=false when nothing is pending.
func (n *Network) nextEventBoundary() (int64, bool) {
	boundary, ok := int64(0), false
	if n.hard != nil {
		if sched := n.hard.ScheduledKillCycles(); n.killCursor < len(sched) {
			boundary, ok = sched[n.killCursor]-1, true
		}
	}
	if n.rel != nil {
		if when, relOK := n.rel.nextEvent(); relOK && (!ok || when < boundary) {
			boundary, ok = when, true
		}
	}
	return boundary, ok
}

// fastForward advances up to limit idle cycles, stepping — rather than
// skipping — any cycle a scheduled kill boundary or retransmission event
// lands on, so those observers run inside a real Step where component wakes
// are legal. Returns the cycles advanced; stops early if a stepped boundary
// re-activates the network.
func (n *Network) fastForward(limit int64) int64 {
	var advanced int64
	for advanced < limit {
		if !n.kernel.FullyIdle() {
			return advanced
		}
		span := limit - advanced
		if boundary, ok := n.nextEventBoundary(); ok {
			if gap := boundary - n.Cycle(); gap < span {
				if gap > 0 {
					advanced += n.kernel.FastForward(gap)
				}
				// Step the boundary cycle itself: the epoch or
				// retransmission observer fires with Stepping() true.
				n.kernel.Step()
				advanced++
				continue
			}
		}
		return advanced + n.kernel.FastForward(span)
	}
	return advanced
}

// RecoveryPending reports whether scheduled recovery machinery could still
// change the network's fate without any new injection: an upcoming scheduled
// kill (whose epoch may free wedged traffic and retire unreachable packets),
// or live retransmission entries awaiting their timeouts. Drain loops use it
// to distinguish "quiescent but recovery is coming" from a true dead end.
func (n *Network) RecoveryPending() bool {
	if n.hard != nil {
		if sched := n.hard.ScheduledKillCycles(); n.killCursor < len(sched) {
			return true
		}
	}
	return n.rel != nil && len(n.rel.entries) > 0
}

// Undeliverable returns how many packets the network retired as provably
// undeliverable (partitioned destinations, exhausted retransmissions).
func (n *Network) Undeliverable() int64 { return n.undeliverable }

// Epochs returns how many reconfiguration epochs have run.
func (n *Network) Epochs() int64 { return n.epochs }

// LastEpochCycle returns the cycle of the most recent reconfiguration
// epoch, -1 if none has run.
func (n *Network) LastEpochCycle() int64 { return n.lastEpochCycle }

// CurrentFaults returns the permanent-fault set the active route table was
// built for (the zero set when no hard faults are armed or none are dead).
func (n *Network) CurrentFaults() routing.FaultSet { return n.curFaults }

// PartitionedPairs counts ordered (src, dst) core pairs, src != dst, that
// the active route table cannot connect — the reachability damage report.
// O(cores²); call for reports, not per cycle.
func (n *Network) PartitionedPairs() int {
	cores := len(n.nis)
	cut := 0
	for s := 0; s < cores; s++ {
		for d := 0; d < cores; d++ {
			if s != d && !n.routes.Reachable(noc.NodeID(s), noc.NodeID(d)) {
				cut++
			}
		}
	}
	return cut
}
