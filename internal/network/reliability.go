package network

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/routing"
	"repro/internal/snapshot/codec"
)

// End-to-end retransmission: the network-interface layer's answer to
// permanent faults. Every injected packet opens a retransmission entry at
// its source; delivery schedules an acknowledgment whose latency models the
// reverse route. A packet whose ack misses its deadline is re-enqueued at
// the source (the destination suppresses duplicates by sequence identity),
// with exponential cycle-domain backoff and a bounded retry budget — a
// packet that exhausts it is retired as undeliverable, so drains terminate
// and the delivery oracle accounts it rather than reporting a loss.
//
// All retransmission state lives on the stepping goroutine: entries are
// opened in InjectPacket, acks armed in the network's deliver (serial
// commit walk or sharded epilogue, both interface-ordered), and timeouts
// processed by an end-of-cycle observer popping a deterministic
// (cycle, packet-ID) min-heap. Serial, sharded, and batched execution
// therefore retransmit identically, byte for byte. With Retransmit nil the
// hot path pays a single pointer test.

// RetransmitConfig arms end-to-end retransmission at the network interfaces.
type RetransmitConfig struct {
	// Timeout is the base ack deadline in cycles, measured from the cycle
	// the attempt's head flit enters the network; attempt k waits
	// Timeout << k. Must be at least 1; generous values avoid spurious
	// retransmissions under congestion.
	Timeout int64
	// Retries bounds re-sends per packet (0 = give up at the first
	// timeout). A packet that times out Retries+1 times is retired as
	// undeliverable.
	Retries int
}

// relEntry tracks one unacknowledged packet at its source.
type relEntry struct {
	p        *noc.Packet
	attempts int   // re-sends performed so far
	deadline int64 // authoritative next timeout-action cycle (stale heap events are dropped)
	ackAt    int64 // ack arrival cycle, -1 until delivered
	sentAt   int64 // cycle the current attempt was (re-)enqueued at the source
}

// relEvent is one scheduled heap entry; ties on when break by packet ID so
// the processing order is a pure function of simulation state.
type relEvent struct {
	when int64
	id   uint64
}

func (a relEvent) less(b relEvent) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.id < b.id
}

type relState struct {
	cfg     RetransmitConfig
	entries map[uint64]*relEntry
	heap    []relEvent

	retransmits int64 // re-sends performed
	acked       int64 // entries closed by ack arrival
	ackLost     int64 // delivered, but the reverse path was unreachable
	exhausted   int64 // retired undeliverable after the full retry budget
}

func newRelState(cfg RetransmitConfig) *relState {
	return &relState{cfg: cfg, entries: make(map[uint64]*relEntry)}
}

// backoff returns the ack deadline distance for attempt k: Timeout << k,
// shift-capped so pathological retry budgets cannot overflow.
func (r *relState) backoff(attempts int) int64 {
	if attempts > 30 {
		attempts = 30
	}
	return r.cfg.Timeout << uint(attempts)
}

func (r *relState) push(ev relEvent) {
	r.heap = append(r.heap, ev)
	i := len(r.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !ev.less(r.heap[parent]) {
			break
		}
		r.heap[i] = r.heap[parent]
		i = parent
	}
	r.heap[i] = ev
}

func (r *relState) pop() relEvent {
	top := r.heap[0]
	last := len(r.heap) - 1
	r.heap[0] = r.heap[last]
	r.heap = r.heap[:last]
	for i := 0; ; {
		l, rt := 2*i+1, 2*i+2
		smallest := i
		if l < last && r.heap[l].less(r.heap[smallest]) {
			smallest = l
		}
		if rt < last && r.heap[rt].less(r.heap[smallest]) {
			smallest = rt
		}
		if smallest == i {
			break
		}
		r.heap[i], r.heap[smallest] = r.heap[smallest], r.heap[i]
		i = smallest
	}
	return top
}

// nextEvent returns the earliest scheduled event cycle, ok=false when none.
func (r *relState) nextEvent() (int64, bool) {
	if len(r.heap) == 0 {
		return 0, false
	}
	return r.heap[0].when, true
}

// relArm opens the retransmission entry for a freshly injected packet.
func (n *Network) relArm(p *noc.Packet, cycle int64) {
	r := n.rel
	e := &relEntry{p: p, deadline: cycle + r.cfg.Timeout, ackAt: -1, sentAt: cycle}
	r.entries[p.ID] = e
	r.push(relEvent{e.deadline, p.ID})
}

// relDelivered schedules the acknowledgment for a delivered packet: the ack
// travels the reverse route, so its latency is the reverse path length under
// the route table in force at delivery. An unreachable reverse path (the
// damage is asymmetric only through dead routers' core attachments — rare)
// leaves ackAt unset; the source closes the entry at its next deadline.
func (n *Network) relDelivered(p *noc.Packet, cycle int64) {
	r := n.rel
	e := r.entries[p.ID]
	if e == nil || e.ackAt >= 0 {
		return
	}
	if rev := n.routes.PathLength(p.Dst, p.Src); rev >= 0 {
		e.ackAt = cycle + int64(rev)
		r.push(relEvent{e.ackAt, p.ID})
	}
}

// relTick is the retransmission observer, processing every event due this
// cycle. It runs after the reconfiguration observer, so a timeout decided
// in the same cycle as an epoch already sees the post-epoch route table.
func (n *Network) relTick(cycle int64, active int) {
	r := n.rel
	for len(r.heap) > 0 && r.heap[0].when <= cycle {
		ev := r.pop()
		e := r.entries[ev.id]
		if e == nil {
			continue // entry already closed; stale event
		}
		if ev.when == e.ackAt {
			r.acked++
			delete(r.entries, ev.id)
			continue
		}
		if ev.when != e.deadline {
			continue // deadline was re-armed; a later event carries it
		}
		p := e.p
		if p.DeliverCycle >= 0 {
			if e.ackAt >= 0 {
				continue // ack en route; its own event closes the entry
			}
			r.ackLost++
			delete(r.entries, ev.id)
			continue
		}
		if !n.routes.Reachable(p.Src, p.Dst) {
			n.markUndeliverable(p, cycle) // closes the entry
			continue
		}
		ni := n.nis[p.Src]
		if ni.cur == p || p.InjectCycle < e.sentAt {
			// Still queued at the source, or mid-transmission (possibly
			// stalled on backpressure): nothing on the wire has timed out.
			// Re-arm without consuming a retry.
			e.deadline = cycle + r.cfg.Timeout
			r.push(relEvent{e.deadline, ev.id})
			continue
		}
		if armAt := p.InjectCycle + r.backoff(e.attempts); cycle < armAt {
			// The attempt launched after this deadline was armed; restart
			// the timer from the head flit's actual entry into the network.
			e.deadline = armAt
			r.push(relEvent{armAt, ev.id})
			continue
		}
		// Genuine timeout: the attempt's window elapsed with no ack.
		e.attempts++
		if e.attempts > r.cfg.Retries {
			r.exhausted++
			n.markUndeliverable(p, cycle)
			continue
		}
		r.retransmits++
		e.sentAt = cycle
		e.deadline = cycle + r.backoff(e.attempts)
		r.push(relEvent{e.deadline, ev.id})
		ni.enqueue(p)
		n.kernel.Wake(n.niHandle[p.Src])
	}
}

// retireUnreachable retires (in ascending packet-ID order) every
// retransmission entry whose undelivered packet can no longer reach its
// destination under the new table. Called by the reconfiguration epoch.
func (r *relState) retireUnreachable(n *Network, tbl *routing.Table, cycle int64) {
	var ids []uint64
	for id, e := range r.entries {
		if e.p.DeliverCycle == -1 && !tbl.Reachable(e.p.Src, e.p.Dst) {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return
	}
	sortIDs(ids)
	for _, id := range ids {
		n.markUndeliverable(r.entries[id].p, cycle)
	}
}

func sortIDs(ids []uint64) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Retransmits returns how many packet re-sends the reliability layer
// performed (0 when retransmission is disarmed).
func (n *Network) Retransmits() int64 {
	if n.rel == nil {
		return 0
	}
	return n.rel.retransmits
}

// RetransmitStats returns the reliability layer's counters: re-sends,
// ack-closed entries, delivered-but-ack-lost entries, and packets retired
// after exhausting the retry budget. All zero when disarmed.
func (n *Network) RetransmitStats() (retransmits, acked, ackLost, exhausted int64) {
	if n.rel == nil {
		return 0, 0, 0, 0
	}
	return n.rel.retransmits, n.rel.acked, n.rel.ackLost, n.rel.exhausted
}

// DupSuppressed returns how many duplicate flits the destination interfaces
// swallowed by sequence identity (spurious retransmissions overtaken by the
// original, or stragglers of retired packets).
func (n *Network) DupSuppressed() int64 {
	var total int64
	for _, ni := range n.nis {
		total += ni.dupes
	}
	return total
}

// saveRel serializes the retransmission state. Entries are written in
// ascending packet-ID order; packets intern through the encoder, so an
// entry whose packet also sits in a source queue shares identity on
// restore. The event heap is not saved — restore reconstructs the live
// events from the entries (stale heap entries carry no information).
func (r *relState) save(e *codec.Encoder) {
	ids := make([]uint64, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	sortIDs(ids)
	e.Int(len(ids))
	for _, id := range ids {
		en := r.entries[id]
		e.Packet(en.p)
		e.Int(en.attempts)
		e.I64(en.deadline)
		e.I64(en.ackAt)
		e.I64(en.sentAt)
	}
	e.I64(r.retransmits)
	e.I64(r.acked)
	e.I64(r.ackLost)
	e.I64(r.exhausted)
}

func (r *relState) restore(d *codec.Decoder) error {
	count := d.Len(1 << 24)
	if err := d.Err(); err != nil {
		return err
	}
	r.entries = make(map[uint64]*relEntry, count)
	r.heap = r.heap[:0]
	for i := 0; i < count; i++ {
		p := d.Packet()
		attempts := d.Int()
		deadline := d.I64()
		ackAt := d.I64()
		sentAt := d.I64()
		if err := d.Err(); err != nil {
			return err
		}
		if p == nil {
			return fmt.Errorf("%w: nil packet in retransmission entry", codec.ErrCorrupt)
		}
		if attempts < 0 || deadline < 0 || ackAt < -1 || sentAt < 0 {
			return fmt.Errorf("%w: retransmission entry for packet %d: attempts=%d deadline=%d ackAt=%d sentAt=%d",
				codec.ErrCorrupt, p.ID, attempts, deadline, ackAt, sentAt)
		}
		if _, dup := r.entries[p.ID]; dup {
			return fmt.Errorf("%w: duplicate retransmission entry for packet %d", codec.ErrCorrupt, p.ID)
		}
		e := &relEntry{p: p, attempts: attempts, deadline: deadline, ackAt: ackAt, sentAt: sentAt}
		r.entries[p.ID] = e
		r.push(relEvent{e.deadline, p.ID})
		if e.ackAt >= 0 {
			r.push(relEvent{e.ackAt, p.ID})
		}
	}
	r.retransmits = d.I64()
	r.acked = d.I64()
	r.ackLost = d.I64()
	r.exhausted = d.I64()
	return d.Err()
}
