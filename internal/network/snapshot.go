package network

import (
	"fmt"
	"sort"

	"repro/internal/check"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/routing"
	"repro/internal/snapshot/codec"
)

// Checkpointing for the assembled network. SaveState captures every piece of
// between-step persistent state — router queues/FSMs, interface source queues
// and reassembly, link credits, power counters, packet accounting, and the
// invariant checker's ledger — in deterministic order, so saving the same
// network twice yields identical bytes. RestoreState targets a freshly built
// network of the identical structural configuration (internal/snapshot owns
// the version header that validates this) and leaves it ready to Step from
// the saved cycle.

// Config returns the network's normalized configuration (defaults filled).
// The snapshot layer uses it to stamp structural parameters into the header.
func (n *Network) Config() Config { return n.cfg }

// SaveState serializes the network's complete between-step state.
func (n *Network) SaveState(e *codec.Encoder) error {
	e.I64(n.kernel.Cycle())
	e.U64(n.nextPacketID)
	e.I64(n.injected)
	e.I64(n.delivered)
	for _, r := range n.routers {
		if err := r.SaveState(e); err != nil {
			return err
		}
	}
	for _, ni := range n.nis {
		ni.SaveState(e)
	}
	// Channel credits in site order (the only between-step link state:
	// staged flits and staged returns are consumed within their cycle).
	for _, l := range n.links {
		e.Int(l.Credits())
	}
	folded := *n.Counters()
	folded.SaveState(e)
	e.Bool(n.check != nil)
	if n.check != nil {
		saveLedger(e, n.check.Ledger())
	}
	e.I64(n.undeliverable)
	e.I64(n.epochs)
	e.I64(n.lastEpochCycle)
	e.Bool(n.hard != nil)
	if n.hard != nil {
		n.hard.SaveHardState(e)
	}
	e.Bool(n.rel != nil)
	if n.rel != nil {
		n.rel.save(e)
	}
	return nil
}

// arenaOf returns the flit arena owning node's shard (the arena decoded
// flits for that node's components must be materialized from, so per-shard
// accounting stays worker-local after restore).
func (n *Network) arenaOf(node int) *noc.Arena {
	if n.shardOfNode != nil {
		return &n.arenas[n.shardOfNode[node]]
	}
	return &n.arenas[0]
}

// RestoreState loads state saved by SaveState into this freshly constructed
// network, which must have the identical structural configuration (topology,
// concentration, architecture, buffer depths) but may differ in execution
// mode (shard count, lanes, always-active) and instrumentation. On success
// the network's clock stands at the saved cycle with every component awake;
// the active set re-converges within one step. The checker armed state must
// match the snapshot: restoring checker-armed state into an unchecked
// network (or vice versa) fails rather than silently dropping the ledger.
func (n *Network) RestoreState(d *codec.Decoder) error {
	cycle := d.I64()
	nextID := d.U64()
	injected := d.I64()
	delivered := d.I64()
	if err := d.Err(); err != nil {
		return err
	}
	if cycle < 0 || injected < 0 || delivered < 0 || delivered > injected {
		return fmt.Errorf("%w: packet accounting %d injected / %d delivered at cycle %d",
			codec.ErrCorrupt, injected, delivered, cycle)
	}
	for id, r := range n.routers {
		d.SetArena(n.arenaOf(id))
		if err := r.RestoreState(d); err != nil {
			return fmt.Errorf("router %d: %w", id, err)
		}
	}
	for c, ni := range n.nis {
		d.SetArena(ni.arena)
		if err := ni.RestoreState(d); err != nil {
			return fmt.Errorf("interface %d: %w", c, err)
		}
	}
	for i, l := range n.links {
		cr := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if err := l.RestoreCredits(cr); err != nil {
			return fmt.Errorf("%w: link %d: %v", codec.ErrCorrupt, i, err)
		}
	}
	var ctr power.Counters
	if err := ctr.RestoreState(d); err != nil {
		return err
	}
	hasChecker := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if hasChecker != (n.check != nil) {
		return fmt.Errorf("%w: snapshot checker-armed=%v, restore target=%v",
			codec.ErrUnsupported, hasChecker, n.check != nil)
	}
	if hasChecker {
		ledger, err := restoreLedger(d)
		if err != nil {
			return err
		}
		n.check.RestoreLedger(ledger)
	}
	undeliverable := d.I64()
	epochs := d.I64()
	lastEpoch := d.I64()
	hasHard := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if undeliverable < 0 || delivered+undeliverable > injected {
		return fmt.Errorf("%w: %d undeliverable with %d injected / %d delivered",
			codec.ErrCorrupt, undeliverable, injected, delivered)
	}
	if epochs < 0 || lastEpoch < -1 {
		return fmt.Errorf("%w: %d reconfiguration epochs, last at cycle %d", codec.ErrCorrupt, epochs, lastEpoch)
	}
	if hasHard != (n.hard != nil) {
		return fmt.Errorf("%w: snapshot hard-faults-armed=%v, restore target=%v",
			codec.ErrUnsupported, hasHard, n.hard != nil)
	}
	if hasHard {
		if err := n.hard.RestoreHardState(d); err != nil {
			return err
		}
	}
	hasRel := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if hasRel != (n.rel != nil) {
		return fmt.Errorf("%w: snapshot retransmission-armed=%v, restore target=%v",
			codec.ErrUnsupported, hasRel, n.rel != nil)
	}
	if hasRel {
		if err := n.rel.restore(d); err != nil {
			return err
		}
	}
	// Counters were saved folded; the fold is all any reader observes, so
	// the whole block lands on shard 0.
	if n.shardCounters == nil {
		*n.counters = ctr
	} else {
		for i := range n.shardCounters {
			n.shardCounters[i] = power.Counters{}
		}
		n.shardCounters[0] = ctr
	}
	n.nextPacketID = nextID
	n.injected = injected
	n.delivered = delivered
	n.undeliverable = undeliverable
	n.epochs = epochs
	n.lastEpochCycle = lastEpoch
	if n.hard != nil {
		// Re-derive the fault-evolution cursors from the restored injector
		// state, then bring the route tables in line with the fault set in
		// force at the saved cycle (past epochs already happened in the
		// saved timeline; the freshly built network still routes fault-free
		// or with the at-construction set).
		sched := n.hard.ScheduledKillCycles()
		k := 0
		for k < len(sched) && sched[k] <= cycle {
			k++
		}
		n.killCursor = k
		n.lastEscGen = n.hard.EscalationGen()
		fs := n.hard.FaultSet(cycle)
		if key := fs.Key(); key != n.faultKey {
			tbl := routing.SharedFaultTable(n.sys, fs)
			for _, r := range n.routers {
				r.Reroute(tbl)
			}
			n.routes = tbl
			n.faultKey = key
			n.curFaults = fs
		}
	}
	// Wake everything rather than reconstruct the exact active set: waking a
	// quiet component is unobservable (it re-quiesces after one evaluation),
	// and the set re-converges to the original within a cycle.
	n.kernel.WakeAll()
	n.kernel.SetCycle(cycle)
	return nil
}

// SaveState serializes the interface's between-step state: the pending
// source queue, the packet mid-injection, the sink port, and reassembly
// progress. The delivered-flit stage is always empty between steps.
func (ni *NI) SaveState(e *codec.Encoder) {
	pending := ni.queue[ni.queueHead:]
	e.Int(len(pending))
	for _, p := range pending {
		e.Packet(p)
	}
	e.Packet(ni.cur)
	e.Int(ni.curSeq)
	e.Packet(ni.assembling)
	e.Int(ni.expectSeq)
	ni.sink.SaveState(e)
}

// RestoreState loads state saved by SaveState into this freshly constructed
// interface.
func (ni *NI) RestoreState(d *codec.Decoder) error {
	npend := d.Len(1 << 24)
	if err := d.Err(); err != nil {
		return err
	}
	ni.queue = ni.queue[:0]
	ni.queueHead = 0
	for i := 0; i < npend; i++ {
		p := d.Packet()
		if err := d.Err(); err != nil {
			return err
		}
		if p == nil {
			return fmt.Errorf("%w: nil packet in source queue", codec.ErrCorrupt)
		}
		ni.queue = append(ni.queue, p)
	}
	cur := d.Packet()
	curSeq := d.Int()
	assembling := d.Packet()
	expectSeq := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if cur != nil && (curSeq < 0 || curSeq >= cur.Length) {
		return fmt.Errorf("%w: injection progress %d of %d-flit packet", codec.ErrCorrupt, curSeq, cur.Length)
	}
	if assembling != nil && (expectSeq < 0 || expectSeq >= assembling.Length) {
		return fmt.Errorf("%w: reassembly progress %d of %d-flit packet", codec.ErrCorrupt, expectSeq, assembling.Length)
	}
	ni.cur, ni.curSeq = cur, curSeq
	ni.assembling, ni.expectSeq = assembling, expectSeq
	return ni.sink.RestoreState(d)
}

// saveLedger writes the invariant checker's state. The in-flight oracle map
// is emitted in ascending packet-ID order so identical checker states always
// produce identical bytes.
func saveLedger(e *codec.Encoder, l check.Ledger) {
	e.Int(len(l.Violations))
	for _, v := range l.Violations {
		e.I64(v.Cycle)
		e.Int(int(v.Kind))
		e.Int(int(v.Node))
		e.Int(int(v.Port))
		e.U64(v.Packet)
		e.String(v.Detail)
	}
	e.I64(l.Truncated)
	for _, c := range l.Counts {
		e.I64(c)
	}
	ids := make([]uint64, 0, len(l.Inflight))
	for id := range l.Inflight {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e.Int(len(ids))
	for _, id := range ids {
		e.U64(id)
		e.I64(l.Inflight[id])
	}
	e.I64(l.Injected)
	e.I64(l.Delivered)
	e.I64(l.Undeliverable)
	e.Bool(l.Leaky)
	e.Bool(l.Finalized)
}

func restoreLedger(d *codec.Decoder) (check.Ledger, error) {
	var l check.Ledger
	nv := d.Len(1 << 20)
	if err := d.Err(); err != nil {
		return l, err
	}
	l.Violations = make([]check.Violation, 0, nv)
	for i := 0; i < nv; i++ {
		v := check.Violation{
			Cycle:  d.I64(),
			Kind:   check.Kind(d.Int()),
			Node:   int32(d.Int()),
			Port:   int32(d.Int()),
			Packet: d.U64(),
			Detail: d.String(),
		}
		if err := d.Err(); err != nil {
			return l, err
		}
		if v.Kind < 0 || v.Kind >= check.NumKinds {
			return l, fmt.Errorf("%w: violation kind %d", codec.ErrCorrupt, v.Kind)
		}
		l.Violations = append(l.Violations, v)
	}
	l.Truncated = d.I64()
	for i := range l.Counts {
		l.Counts[i] = d.I64()
	}
	ninf := d.Len(1 << 24)
	if err := d.Err(); err != nil {
		return l, err
	}
	l.Inflight = make(map[uint64]int64, ninf)
	for i := 0; i < ninf; i++ {
		id := d.U64()
		cyc := d.I64()
		if err := d.Err(); err != nil {
			return l, err
		}
		if _, dup := l.Inflight[id]; dup {
			return l, fmt.Errorf("%w: duplicate in-flight packet %d", codec.ErrCorrupt, id)
		}
		l.Inflight[id] = cyc
	}
	l.Injected = d.I64()
	l.Delivered = d.I64()
	l.Undeliverable = d.I64()
	l.Leaky = d.Bool()
	l.Finalized = d.Bool()
	return l, d.Err()
}
