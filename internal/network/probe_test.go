package network

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/noc"
	"repro/internal/probe"
	"repro/internal/router"
)

// TestProbeTraceReconciliation is the acceptance gate for the observability
// layer on the paper's router: a probed 4x4 NoX run under contention-heavy
// traffic must (a) export Chrome trace JSON that actually parses and
// contains XOR-collision and Recovery/Scheduled mode-transition events,
// (b) report per-router metrics that sum to the probe's totals, and
// (c) reconcile those totals against the power-counter event counts and
// the network's own delivery accounting, so the two independent counting
// paths cross-check each other.
func TestProbeTraceReconciliation(t *testing.T) {
	pr := probe.New(probe.Config{RingEvents: 1 << 17, SampleEvery: 100})
	cfg := Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: router.NoX, Probe: pr}
	fp, counters := driveBursty(t, cfg, 0xBEEF)
	_ = fp

	var buf bytes.Buffer
	if err := pr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("Chrome trace is not valid JSON (%d bytes)", buf.Len())
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var collisions, modes int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Name == "collision":
			collisions++
		case len(ev.Name) > 5 && ev.Name[:5] == "mode ":
			modes++
		}
	}
	if collisions == 0 {
		t.Error("trace JSON has no XOR-collision events")
	}
	if modes == 0 {
		t.Error("trace JSON has no Recovery/Scheduled mode-transition events")
	}

	tot := pr.Totals()
	if int64(collisions) != tot.Collisions {
		t.Errorf("trace JSON has %d collision events, totals say %d (ring dropped %d)",
			collisions, tot.Collisions, pr.Dropped())
	}

	// Per-router metrics must sum to the probe's totals (NI-side buffer
	// events are counted in totals only, so the buffer columns sum to
	// totals minus the NI share — checked via the power counters below).
	var sum probe.RouterMetrics
	for _, m := range pr.Routers() {
		sum.Traversals += m.Traversals
		sum.Collisions += m.Collisions
		sum.Aborts += m.Aborts
	}
	if sum.Traversals != tot.Traversals || sum.Collisions != tot.Collisions || sum.Aborts != tot.Aborts {
		t.Errorf("per-router sums diverge from totals: routers {trav %d coll %d abort %d}, totals {%d %d %d}",
			sum.Traversals, sum.Collisions, sum.Aborts, tot.Traversals, tot.Collisions, tot.Aborts)
	}

	// Cross-check against the independently maintained power counters.
	checks := []struct {
		name      string
		got, want int64
	}{
		{"traversals vs Xbar", tot.Traversals, counters.Xbar},
		{"collisions", tot.Collisions, counters.Collisions},
		{"aborts", tot.Aborts, counters.Aborts},
		{"buffer writes", tot.BufWrites, counters.BufWrite},
		{"buffer reads", tot.BufReads, counters.BufRead},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: probe %d, power counters %d", c.name, c.got, c.want)
		}
	}
}

// TestProbeDeliveryAccounting checks the probe's inject/deliver totals
// against the network's own packet accounting on every architecture.
func TestProbeDeliveryAccounting(t *testing.T) {
	for _, arch := range router.Archs {
		pr := probe.New(probe.Config{RingEvents: 1 << 16})
		net := New(Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: arch, Probe: pr})
		for i := 0; i < 40; i++ {
			net.Inject(noc.NodeID(i%16), noc.NodeID((i*7+3)%16), 1+i%3, 0)
			net.Step()
		}
		if !net.Drain(2000) {
			t.Fatalf("%v: did not drain", arch)
		}
		tot := pr.Totals()
		if tot.Injects != net.Injected() || tot.Delivers != net.Delivered() {
			t.Errorf("%v: probe injects/delivers %d/%d, network %d/%d",
				arch, tot.Injects, tot.Delivers, net.Injected(), net.Delivered())
		}
	}
}

// TestQuiescenceEquivalenceProbed extends the quiescence safety net to the
// observability layer: with a probe attached, the fast path must emit a
// bit-exact event stream against the always-evaluate reference — compared
// as serialized Chrome traces, which pin every event's kind, cycle, and
// location. (Per-router mode-residency and occupancy metrics are sampled
// per evaluated cycle and legitimately differ when quiescent routers skip
// evaluation; the event stream and event totals must not.)
func TestQuiescenceEquivalenceProbed(t *testing.T) {
	for _, arch := range router.Archs {
		t.Run(arch.String(), func(t *testing.T) {
			run := func(alwaysActive bool) (string, probe.Totals) {
				pr := probe.New(probe.Config{RingEvents: 1 << 17})
				cfg := Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: arch,
					Probe: pr, AlwaysActive: alwaysActive}
				driveBursty(t, cfg, 0xBEEF)
				var buf bytes.Buffer
				if err := pr.WriteChromeTrace(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.String(), pr.Totals()
			}
			gotTrace, gotTot := run(false)
			wantTrace, wantTot := run(true)
			if gotTrace != wantTrace {
				t.Errorf("probed event stream diverged between fast path and reference (%d vs %d bytes)",
					len(gotTrace), len(wantTrace))
			}
			if got, want := fmt.Sprintf("%+v", gotTot), fmt.Sprintf("%+v", wantTot); got != want {
				t.Errorf("probe totals diverged\nfast: %s\nref:  %s", got, want)
			}
		})
	}
}
