//go:build contract

// Network-level contract tests for the event-horizon kernel (build tag:
// contract, run by `make contract-check`): every real component — routers,
// NIs, links — must honor the horizon/quiescence contract under a workload
// that crosses sleep/wake boundaries on every burst.
package network

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/router"
)

// TestContractOracleCleanOnAllArchs drives the bursty workload with the
// kernel's horizon oracle armed: a parked component whose state changes
// under eager evaluation panics the run, so a clean pass is the proof that
// every shipped Quiet/Horizon implementation is honest. The fingerprint
// must also match the unchecked run — the oracle observes, never perturbs.
func TestContractOracleCleanOnAllArchs(t *testing.T) {
	topo := noc.Topology{Width: 4, Height: 4}
	for _, arch := range router.Archs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			t.Parallel()
			want, _ := driveBursty(t, Config{Topo: topo, Arch: arch}, 0xC01)
			got, _ := driveBursty(t, Config{Topo: topo, Arch: arch, Oracle: true}, 0xC01)
			if got != want {
				t.Fatal("oracle mode changed observable results")
			}
		})
	}
}

// TestContractOracleRejectsSharding pins the serial-only restriction at the
// network layer.
func TestContractOracleRejectsSharding(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Oracle with Shards > 1 did not panic")
		}
	}()
	New(Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: router.NoX, Oracle: true, Shards: 4})
}
