package network

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/noc"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/sim"
)

// shardCounts are the worker-pool sizes the equivalence suite sweeps:
// 1 (the serial kernel), even splits, a deliberately uneven 7, and one
// shard per router on the 4x4 test mesh.
var shardCounts = []int{1, 2, 4, 7, 16}

// TestShardedEquivalence is the bit-exactness contract of the sharded
// executor: for every router architecture and every shard count, the
// bursty workload must produce the same deliveries at the same cycles and
// the same power counters as the serial kernel.
func TestShardedEquivalence(t *testing.T) {
	for _, arch := range router.Archs {
		t.Run(arch.String(), func(t *testing.T) {
			cfg := Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: arch, Shards: 1}
			wantFP, wantC := driveBursty(t, cfg, 0x51AD)
			for _, shards := range shardCounts[1:] {
				scfg := cfg
				scfg.Shards = shards
				gotFP, gotC := driveBursty(t, scfg, 0x51AD)
				if gotFP != wantFP {
					t.Errorf("shards=%d: delivery fingerprint diverged\nsharded: %.200s\nserial:  %.200s", shards, gotFP, wantFP)
				}
				if gotC != wantC {
					t.Errorf("shards=%d: event counters diverged\nsharded: %+v\nserial:  %+v", shards, gotC, wantC)
				}
			}
		})
	}
}

// TestShardedEquivalenceAlwaysActive repeats the check with quiescence
// skipping disabled, so every component is evaluated by the worker pool
// every cycle — the maximal-parallelism schedule.
func TestShardedEquivalenceAlwaysActive(t *testing.T) {
	cfg := Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: router.NoX, AlwaysActive: true, Shards: 1}
	wantFP, wantC := driveBursty(t, cfg, 0xAC71)
	for _, shards := range shardCounts[1:] {
		scfg := cfg
		scfg.Shards = shards
		gotFP, gotC := driveBursty(t, scfg, 0xAC71)
		if gotFP != wantFP {
			t.Errorf("shards=%d: delivery fingerprint diverged", shards)
		}
		if gotC != wantC {
			t.Errorf("shards=%d: counters diverged\nsharded: %+v\nserial:  %+v", shards, gotC, wantC)
		}
	}
}

// TestShardedEquivalenceConcentrated checks the radix-8 concentrated mesh,
// whose per-node NI fanout makes each shard own several interfaces and
// their delivery ordering.
func TestShardedEquivalenceConcentrated(t *testing.T) {
	cfg := Config{Topo: noc.Topology{Width: 2, Height: 2}, Concentration: 4, Arch: router.NoX, Shards: 1}
	wantFP, wantC := driveBursty(t, cfg, 0xCC04)
	for _, shards := range []int{2, 3, 4} {
		scfg := cfg
		scfg.Shards = shards
		gotFP, gotC := driveBursty(t, scfg, 0xCC04)
		if gotFP != wantFP {
			t.Errorf("shards=%d: delivery fingerprint diverged", shards)
		}
		if gotC != wantC {
			t.Errorf("shards=%d: counters diverged", shards)
		}
	}
}

// driveProbed runs a loaded-then-idle NoX workload on an 8x8 mesh with a
// full probe attached and returns every probe export that must be
// byte-identical between serial and sharded execution: the raw event
// stream, Chrome trace JSON, per-router CSV, heatmap CSV, and the sampled
// time series.
func driveProbed(t *testing.T, shards int) (events []probe.Event, exports map[string]string) {
	t.Helper()
	p := probe.New(probe.Config{RingEvents: 1 << 20, SampleEvery: 16})
	net := New(Config{Topo: noc.Topology{Width: 8, Height: 8}, Arch: router.NoX, Probe: p, Shards: shards})
	defer net.Close()
	rng := sim.NewRNG(0x9B0B)
	cores := net.Cores()
	for cyc := 0; cyc < 300; cyc++ {
		if cyc < 180 {
			for inj := 0; inj < 4; inj++ {
				src := noc.NodeID(rng.Intn(cores))
				dst := noc.NodeID(rng.Intn(cores))
				if src == dst {
					continue
				}
				length := 1
				if rng.Intn(3) == 0 {
					length = 4
				}
				net.Inject(src, dst, length, 0)
			}
		}
		net.Step()
	}
	if !net.Drain(3000) {
		t.Fatalf("probed run did not drain (outstanding %d)", net.Outstanding())
	}
	exports = make(map[string]string)
	for name, write := range map[string]func(*bytes.Buffer) error{
		"chrome-trace": func(b *bytes.Buffer) error { return p.WriteChromeTrace(b) },
		"router-csv":   func(b *bytes.Buffer) error { return p.WriteRouterCSV(b) },
		"heatmap-csv":  func(b *bytes.Buffer) error { return p.WriteHeatmapCSV(b) },
		"series-csv":   func(b *bytes.Buffer) error { return p.WriteTimeSeriesCSV(b) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s export: %v", name, err)
		}
		exports[name] = buf.String()
	}
	return p.Events(), exports
}

// TestShardedProbeDeterminism: a probed 8x8 NoX run must emit the exact
// serial event stream — and therefore byte-identical Chrome trace JSON and
// CSV exports — at every shard count. This pins down the epilogue merge of
// per-shard event buffers, not just aggregate counts.
func TestShardedProbeDeterminism(t *testing.T) {
	wantEvents, wantExports := driveProbed(t, 1)
	if len(wantEvents) == 0 {
		t.Fatal("probed reference run recorded no events")
	}
	for _, shards := range shardCounts[1:] {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			gotEvents, gotExports := driveProbed(t, shards)
			if len(gotEvents) != len(wantEvents) {
				t.Fatalf("event count %d, want %d", len(gotEvents), len(wantEvents))
			}
			for i := range gotEvents {
				if gotEvents[i] != wantEvents[i] {
					t.Fatalf("event %d diverged: got %+v want %+v", i, gotEvents[i], wantEvents[i])
				}
			}
			for name, want := range wantExports {
				if got := gotExports[name]; got != want {
					t.Errorf("%s export not byte-identical (%d vs %d bytes)", name, len(got), len(want))
				}
			}
		})
	}
}

// TestShardedQuiescence checks the per-shard idle accounting: a sharded
// network drains to zero active components, skips quiescent cycles, and
// wakes correctly on post-idle injection.
func TestShardedQuiescence(t *testing.T) {
	net := New(Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: router.NoX, Shards: 4})
	defer net.Close()
	net.Inject(0, 15, 3, 0)
	net.Inject(5, 10, 1, 0)
	if !net.Drain(500) {
		t.Fatal("did not drain")
	}
	for i := 0; i < 4; i++ {
		net.Step()
	}
	if n := net.kernel.ActiveComponents(); n != 0 {
		t.Errorf("%d components still active after drain", n)
	}
	if !net.FullyIdle() {
		t.Error("network not fully idle after drain")
	}
	if skipped := net.FastForwardIdle(100); skipped != 100 {
		t.Errorf("FastForwardIdle skipped %d cycles, want 100", skipped)
	}
	p := net.Inject(3, 12, 1, 0)
	if !net.Drain(500) {
		t.Fatal("post-quiescence injection never delivered")
	}
	if p.DeliverCycle < 0 {
		t.Error("packet not delivered after wake")
	}
}

// TestShardedStepAllocs pins the 0 allocs/op contract: once mailboxes and
// event buffers have reached steady-state capacity, stepping a sharded
// network with traffic in flight (probe disabled) must not allocate.
func TestShardedStepAllocs(t *testing.T) {
	net := New(Config{Topo: noc.Topology{Width: 8, Height: 8}, Arch: router.NoX, Shards: 4})
	defer net.Close()
	rng := sim.NewRNG(7)
	cores := net.Cores()
	warm := func() {
		for inj := 0; inj < 3; inj++ {
			src := noc.NodeID(rng.Intn(cores))
			dst := noc.NodeID(rng.Intn(cores))
			if src != dst {
				net.Inject(src, dst, 2, 0)
			}
		}
		net.Step()
	}
	for cyc := 0; cyc < 200; cyc++ {
		warm()
	}
	if avg := testing.AllocsPerRun(100, func() { net.Step() }); avg != 0 {
		t.Errorf("sharded Step allocates %v allocs/op in steady state", avg)
	}
}

// TestAutoShards pins the crossover heuristic's fixed points: small meshes
// and single-CPU hosts must stay serial.
func TestAutoShards(t *testing.T) {
	if got := AutoShards(64); got != 1 {
		t.Errorf("AutoShards(64) = %d, want 1 (below crossover)", got)
	}
	if got := AutoShards(255); got != 1 {
		t.Errorf("AutoShards(255) = %d, want 1 (below crossover)", got)
	}
	// At or above the crossover the answer depends on GOMAXPROCS; it must
	// never exceed it and never be zero.
	for _, routers := range []int{256, 1024} {
		got := AutoShards(routers)
		if got < 1 {
			t.Errorf("AutoShards(%d) = %d", routers, got)
		}
	}
}
