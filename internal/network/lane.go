package network

// niLane is the typed dispatch lane over the network's interfaces for the
// kernel's serial step (see internal/sim.Lane and internal/router.NewLane for
// the pattern). The NIs must be in kernel registration order — which they
// are: n.nis is registered element by element.
type niLane []*NI

// Len returns the number of interfaces the lane covers.
func (l niLane) Len() int { return len(l) }

// ComputeAll computes every interface (reference mode).
func (l niLane) ComputeAll(cycle int64) {
	for _, ni := range l {
		ni.Compute(cycle)
	}
}

// CommitAll commits every interface (reference mode).
func (l niLane) CommitAll(cycle int64) {
	for _, ni := range l {
		ni.Commit(cycle)
	}
}

// ComputeActive computes interfaces with a nonzero activity flag.
func (l niLane) ComputeActive(cycle int64, active []uint32) {
	for i, ni := range l {
		if active[i] != 0 {
			ni.Compute(cycle)
		}
	}
}

// CommitActive commits active interfaces, clears the flags of those that
// went quiet or parked on their horizon, and returns how many it put to
// sleep. NI horizons are binary (Never or next cycle — see NI.Horizon), so
// the lane never needs the kernel's timing wheel and stays within the
// sim.Lane parking contract.
func (l niLane) CommitActive(cycle int64, active []uint32) int {
	quiets := 0
	for i, ni := range l {
		if active[i] == 0 {
			continue
		}
		ni.Commit(cycle)
		if ni.Quiet() || ni.Horizon(cycle) > cycle+1 {
			active[i] = 0
			quiets++
		}
	}
	return quiets
}
