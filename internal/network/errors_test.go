package network

import (
	"errors"
	"testing"

	"repro/internal/check"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/router"
)

// TestBuildRejectsBadConfig: every user-reachable misconfiguration comes
// back as an ErrBadConfig-wrapped error, never a panic.
func TestBuildRejectsBadConfig(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative width", Config{Topo: noc.Topology{Width: -1, Height: 4}}},
		{"half topology", Config{Topo: noc.Topology{Width: 4}}},
		{"negative concentration", Config{Topo: noc.Topology{Width: 2, Height: 2}, Concentration: -1}},
		{"radix overflow", Config{Topo: noc.Topology{Width: 2, Height: 2}, Concentration: 64}},
		{"unknown arch", Config{Topo: noc.Topology{Width: 2, Height: 2}, Arch: router.Arch(99)}},
		{"negative buffers", Config{Topo: noc.Topology{Width: 2, Height: 2}, BufferDepth: -3}},
		{"negative sink", Config{Topo: noc.Topology{Width: 2, Height: 2}, SinkDepth: -1}},
		{"negative shards", Config{Topo: noc.Topology{Width: 2, Height: 2}, Shards: -2}},
		{"fault without check", Config{Topo: noc.Topology{Width: 2, Height: 2},
			Fault: fault.NewInjector(fault.Spec{Seed: 1})}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n, err := Build(tc.cfg)
			if err == nil {
				n.Close()
				t.Fatal("invalid configuration accepted")
			}
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("error does not wrap ErrBadConfig: %v", err)
			}
		})
	}
}

// TestInjectCheckedRejectsBadPackets: malformed endpoints come back as
// ErrBadPacket; a valid request injects and delivers normally.
func TestInjectCheckedRejectsBadPackets(t *testing.T) {
	n, err := Build(Config{Topo: noc.Topology{Width: 2, Height: 2}, Arch: router.NoX})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for _, tc := range []struct {
		name     string
		src, dst noc.NodeID
		length   int
	}{
		{"negative src", -1, 2, 1},
		{"src out of range", 4, 2, 1},
		{"dst out of range", 0, 4, 1},
		{"self addressed", 2, 2, 1},
		{"zero length", 0, 1, 0},
		{"negative length", 0, 1, -4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := n.InjectChecked(tc.src, tc.dst, tc.length, 0)
			if err == nil {
				t.Fatalf("accepted bad packet %+v", p)
			}
			if !errors.Is(err, ErrBadPacket) {
				t.Fatalf("error does not wrap ErrBadPacket: %v", err)
			}
		})
	}
	p, err := n.InjectChecked(0, 3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.DrainChecked(500, 0); err != nil {
		t.Fatal(err)
	}
	if p.DeliverCycle < 0 {
		t.Error("checked-injected packet never delivered")
	}
}

// TestBuildMultiRejections: class count and the per-network fault binding
// are validated up front.
func TestBuildMultiRejections(t *testing.T) {
	base := Config{Topo: noc.Topology{Width: 2, Height: 2}, Arch: router.NoX}
	if _, err := BuildMulti(0, base); !errors.Is(err, ErrBadConfig) {
		t.Errorf("classes=0 error: %v", err)
	}
	faulty := base
	faulty.Check = check.New(check.All())
	faulty.Fault = fault.NewInjector(fault.Spec{Seed: 1})
	if _, err := BuildMulti(2, faulty); !errors.Is(err, ErrBadConfig) {
		t.Errorf("multi with fault injector error: %v", err)
	}
	m, err := BuildMulti(2, base)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Classes() != 2 {
		t.Errorf("classes = %d, want 2", m.Classes())
	}
}
