package network

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/sim"
)

func allArchs() []router.Arch { return router.Archs }

// TestSinglePacketAllArchs sends one single-flit packet corner to corner on
// a 4x4 mesh and checks delivery and zero-load latency for every router
// architecture.
func TestSinglePacketAllArchs(t *testing.T) {
	for _, arch := range allArchs() {
		t.Run(arch.String(), func(t *testing.T) {
			n := New(Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: arch})
			p := n.Inject(0, 15, 1, 0)
			if !n.Drain(200) {
				t.Fatalf("packet not delivered: outstanding=%d", n.Outstanding())
			}
			if p.DeliverCycle < 0 {
				t.Fatal("DeliverCycle not stamped")
			}
			// Path 0 -> 15 visits 7 routers (6 hops): inject (1 cycle) +
			// per-router traversal. Zero-load latency should be hops+O(1).
			lat := p.Latency()
			if lat < 7 || lat > 12 {
				t.Errorf("zero-load latency = %d cycles, want in [7,12]", lat)
			}
		})
	}
}

// TestMultiFlitPacketAllArchs checks a 9-flit data packet (72 B, Table 1)
// delivers intact on every architecture.
func TestMultiFlitPacketAllArchs(t *testing.T) {
	for _, arch := range allArchs() {
		t.Run(arch.String(), func(t *testing.T) {
			n := New(Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: arch})
			p := n.Inject(5, 10, 9, 0)
			if !n.Drain(300) {
				t.Fatalf("packet not delivered: outstanding=%d", n.Outstanding())
			}
			if got := p.Latency(); got < 9 {
				t.Errorf("9-flit latency %d impossibly low", got)
			}
		})
	}
}

// TestContentionDelivery floods one destination from every other node so
// heavy output contention (and, for NoX, deep XOR chains) occurs, then
// verifies every packet arrives bit-exactly (delivery verifies payloads).
func TestContentionDelivery(t *testing.T) {
	for _, arch := range allArchs() {
		t.Run(arch.String(), func(t *testing.T) {
			topo := noc.Topology{Width: 4, Height: 4}
			n := New(Config{Topo: topo, Arch: arch})
			dst := noc.NodeID(5)
			for round := 0; round < 8; round++ {
				for id := 0; id < topo.Nodes(); id++ {
					if noc.NodeID(id) != dst {
						n.Inject(noc.NodeID(id), dst, 1, 0)
					}
				}
				n.Step()
			}
			if !n.Drain(5000) {
				t.Fatalf("hotspot traffic not drained: outstanding=%d", n.Outstanding())
			}
		})
	}
}

// TestMixedSizeContention mixes single-flit control packets with 9-flit
// data packets under contention, exercising NoX aborts (§2.7) and the
// wormhole locks of all architectures.
func TestMixedSizeContention(t *testing.T) {
	for _, arch := range allArchs() {
		t.Run(arch.String(), func(t *testing.T) {
			topo := noc.Topology{Width: 4, Height: 4}
			n := New(Config{Topo: topo, Arch: arch})
			rng := sim.NewRNG(7)
			for round := 0; round < 40; round++ {
				for id := 0; id < topo.Nodes(); id++ {
					if !rng.Bernoulli(0.2) {
						continue
					}
					dst := noc.NodeID(rng.Intn(topo.Nodes()))
					if dst == noc.NodeID(id) {
						continue
					}
					length := 1
					if rng.Bernoulli(0.3) {
						length = 9
					}
					n.Inject(noc.NodeID(id), dst, length, 0)
				}
				n.Step()
			}
			if !n.Drain(20000) {
				t.Fatalf("mixed traffic not drained: outstanding=%d", n.Outstanding())
			}
		})
	}
}

// TestUniformRandomSoak runs sustained moderate uniform-random single-flit
// traffic on all architectures and checks conservation: everything injected
// is delivered after draining, with payload verification implicit.
func TestUniformRandomSoak(t *testing.T) {
	for _, arch := range allArchs() {
		t.Run(arch.String(), func(t *testing.T) {
			topo := noc.Topology{Width: 4, Height: 4}
			n := New(Config{Topo: topo, Arch: arch})
			rng := sim.NewRNG(uint64(arch) + 99)
			const cycles = 2000
			const rate = 0.15 // flits/node/cycle, below saturation
			for cyc := 0; cyc < cycles; cyc++ {
				for id := 0; id < topo.Nodes(); id++ {
					if rng.Bernoulli(rate) {
						dst := noc.NodeID(rng.Intn(topo.Nodes()))
						if dst != noc.NodeID(id) {
							n.Inject(noc.NodeID(id), dst, 1, 0)
						}
					}
				}
				n.Step()
			}
			if !n.Drain(20000) {
				t.Fatalf("soak not drained: outstanding=%d", n.Outstanding())
			}
			if n.Injected() != n.Delivered() {
				t.Fatalf("conservation violated: injected %d delivered %d", n.Injected(), n.Delivered())
			}
			c := n.Counters()
			if c.LinkFlit == 0 || c.BufWrite == 0 {
				t.Error("energy counters did not accumulate")
			}
			if arch == router.NoX && c.LinkInvalid > c.LinkFlit {
				t.Errorf("NoX wasted more link drives (%d) than productive (%d)", c.LinkInvalid, c.LinkFlit)
			}
		})
	}
}

// TestNoXEncodesUnderContention verifies that the NoX network actually
// produces encoded flits when contention exists (the mechanism under test
// is exercised, not bypassed).
func TestNoXEncodesUnderContention(t *testing.T) {
	topo := noc.Topology{Width: 4, Height: 4}
	n := New(Config{Topo: topo, Arch: router.NoX})
	dst := noc.NodeID(0)
	for round := 0; round < 10; round++ {
		for id := 1; id < topo.Nodes(); id++ {
			n.Inject(noc.NodeID(id), dst, 1, 0)
		}
		n.Step()
	}
	if !n.Drain(5000) {
		t.Fatalf("not drained: outstanding=%d", n.Outstanding())
	}
	c := n.Counters()
	if c.EncodedFlits == 0 {
		t.Error("no encoded flits produced under hotspot contention")
	}
	if c.Decode == 0 {
		t.Error("no decode operations recorded")
	}
	if c.Collisions == 0 {
		t.Error("no productive collisions recorded")
	}
}

// TestSpecWastesUnderContention verifies the speculative routers drive
// invalid values under contention while NonSpec and NoX do not.
func TestSpecWastesUnderContention(t *testing.T) {
	run := func(arch router.Arch) *Network {
		topo := noc.Topology{Width: 4, Height: 4}
		n := New(Config{Topo: topo, Arch: arch})
		dst := noc.NodeID(0)
		for round := 0; round < 10; round++ {
			for id := 1; id < topo.Nodes(); id++ {
				n.Inject(noc.NodeID(id), dst, 1, 0)
			}
			n.Step()
		}
		if !n.Drain(8000) {
			t.Fatalf("%v not drained", arch)
		}
		return n
	}
	for _, arch := range []router.Arch{router.SpecFast, router.SpecAccurate} {
		if got := run(arch).Counters().LinkInvalid; got == 0 {
			t.Errorf("%v: expected invalid link drives under contention", arch)
		}
	}
	if got := run(router.NonSpec).Counters().LinkInvalid; got != 0 {
		t.Errorf("NonSpec drove invalid values %d times", got)
	}
	if got := run(router.NoX).Counters().LinkInvalid; got != 0 {
		t.Errorf("NoX drove invalid values %d times on single-flit traffic", got)
	}
}
