package network

import (
	"testing"
	"testing/quick"

	"repro/internal/arbiter"
	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/sim"
)

// TestOddTopologies exercises non-square and degenerate meshes (single row,
// single column, tiny) on every architecture: routing, wiring, and drain
// must all hold without the 8x8 assumptions.
func TestOddTopologies(t *testing.T) {
	topos := []noc.Topology{
		{Width: 2, Height: 2},
		{Width: 1, Height: 8},
		{Width: 8, Height: 1},
		{Width: 5, Height: 3},
	}
	for _, topo := range topos {
		for _, arch := range router.Archs {
			n := New(Config{Topo: topo, Arch: arch})
			rng := sim.NewRNG(3)
			for round := 0; round < 50; round++ {
				src := noc.NodeID(rng.Intn(topo.Nodes()))
				dst := noc.NodeID(rng.Intn(topo.Nodes()))
				if src == dst {
					continue
				}
				length := 1
				if rng.Bernoulli(0.25) {
					length = 4
				}
				n.Inject(src, dst, length, 0)
				n.Step()
			}
			if !n.Drain(10000) {
				t.Errorf("%v on %dx%d: %d packets stuck", arch, topo.Width, topo.Height, n.Outstanding())
			}
		}
	}
}

// TestMatrixArbiterNetwork runs the NoX network with matrix (least
// recently served) arbiters instead of round-robin — the arbitration
// ablation — and checks full functionality.
func TestMatrixArbiterNetwork(t *testing.T) {
	topo := noc.Topology{Width: 4, Height: 4}
	n := New(Config{
		Topo: topo, Arch: router.NoX,
		NewArbiter: func(k int) arbiter.Arbiter { return arbiter.NewMatrix(k) },
	})
	rng := sim.NewRNG(11)
	for round := 0; round < 300; round++ {
		for id := 0; id < topo.Nodes(); id++ {
			if rng.Bernoulli(0.2) {
				dst := noc.NodeID(rng.Intn(topo.Nodes()))
				if dst != noc.NodeID(id) {
					n.Inject(noc.NodeID(id), dst, 1, 0)
				}
			}
		}
		n.Step()
	}
	if !n.Drain(10000) {
		t.Fatalf("matrix-arbiter NoX network stuck: %d outstanding", n.Outstanding())
	}
	if n.Counters().EncodedFlits == 0 {
		t.Error("expected encoded traffic under load")
	}
}

// TestConservationProperty is the network-wide flit-conservation property:
// for random small workloads on random architectures, after draining,
// injected == delivered and all buffers are empty.
func TestConservationProperty(t *testing.T) {
	topo := noc.Topology{Width: 3, Height: 3}
	f := func(seed uint64, archRaw uint8) bool {
		arch := router.Archs[int(archRaw)%len(router.Archs)]
		n := New(Config{Topo: topo, Arch: arch})
		rng := sim.NewRNG(seed)
		for round := 0; round < 60; round++ {
			for id := 0; id < topo.Nodes(); id++ {
				if rng.Bernoulli(0.3) {
					dst := noc.NodeID(rng.Intn(topo.Nodes()))
					if dst == noc.NodeID(id) {
						continue
					}
					length := []int{1, 1, 1, 2, 9}[rng.Intn(5)]
					n.Inject(noc.NodeID(id), dst, length, 0)
				}
			}
			n.Step()
		}
		if !n.Drain(20000) {
			return false
		}
		if n.Injected() != n.Delivered() {
			return false
		}
		for _, r := range n.routers {
			if r.BufferedFlits() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestInjectValidation checks Inject's argument guards.
func TestInjectValidation(t *testing.T) {
	n := New(Config{Topo: noc.Topology{Width: 2, Height: 2}, Arch: router.NoX})
	for _, fn := range []func(){
		func() { n.Inject(1, 1, 1, 0) }, // self-addressed
		func() { n.Inject(0, 1, 0, 0) }, // zero length
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Inject accepted")
				}
			}()
			fn()
		}()
	}
}

// TestOnDeliverObservesEveryPacket wires the delivery hook and counts.
func TestOnDeliverObservesEveryPacket(t *testing.T) {
	topo := noc.Topology{Width: 4, Height: 4}
	n := New(Config{Topo: topo, Arch: router.NoX})
	seen := 0
	n.OnDeliver = func(p *noc.Packet, cycle int64) {
		if p.DeliverCycle != cycle {
			t.Errorf("DeliverCycle %d != hook cycle %d", p.DeliverCycle, cycle)
		}
		seen++
	}
	for i := 0; i < 20; i++ {
		n.Inject(noc.NodeID(i%16), noc.NodeID((i+5)%16), 1, 0)
		n.Step()
	}
	n.Drain(2000)
	if int64(seen) != n.Delivered() {
		t.Errorf("hook saw %d deliveries, network counted %d", seen, n.Delivered())
	}
}

// TestQueueLenAndOutstanding sanity-check the occupancy accessors under a
// burst that cannot drain instantly.
func TestQueueLenAndOutstanding(t *testing.T) {
	topo := noc.Topology{Width: 2, Height: 2}
	n := New(Config{Topo: topo, Arch: router.NonSpec})
	for i := 0; i < 10; i++ {
		n.Inject(0, 3, 9, 0)
	}
	if n.QueueLen(0) == 0 {
		t.Error("source queue should be non-empty before stepping")
	}
	if n.Outstanding() != 10 {
		t.Errorf("outstanding = %d, want 10", n.Outstanding())
	}
	if !n.Drain(5000) {
		t.Fatal("burst did not drain")
	}
	if n.QueueLen(0) != 0 || n.Outstanding() != 0 {
		t.Error("occupancy not zero after drain")
	}
}

// TestConcentratedMesh runs the future-work CMesh configuration (4x4 grid,
// 4 cores per radix-8 router, 64 cores) on every architecture: same-router
// traffic, cross-chip traffic, multi-flit packets, conservation.
func TestConcentratedMesh(t *testing.T) {
	for _, arch := range router.Archs {
		t.Run(arch.String(), func(t *testing.T) {
			n := New(Config{Topo: noc.Topology{Width: 4, Height: 4}, Concentration: 4, Arch: arch})
			if n.Cores() != 64 || n.System().Ports() != 8 {
				t.Fatalf("cmesh shape wrong: cores=%d ports=%d", n.Cores(), n.System().Ports())
			}
			// Same-router exchange (through the router, not a shortcut).
			p0 := n.Inject(0, 3, 1, 0)
			// Corner-to-corner data packet.
			p1 := n.Inject(0, 63, 9, 0)
			rng := sim.NewRNG(uint64(arch) + 31)
			for round := 0; round < 400; round++ {
				for c := 0; c < 16; c++ {
					if rng.Bernoulli(0.15) {
						src := noc.NodeID(rng.Intn(64))
						dst := noc.NodeID(rng.Intn(64))
						if src != dst {
							n.Inject(src, dst, 1, 0)
						}
					}
				}
				n.Step()
			}
			if !n.Drain(20000) {
				t.Fatalf("cmesh not drained: %d outstanding", n.Outstanding())
			}
			if p0.Latency() <= 0 || p1.Latency() <= 0 {
				t.Error("latencies not recorded")
			}
			if p0.Latency() >= p1.Latency() {
				t.Errorf("same-router latency %d should beat corner-to-corner %d", p0.Latency(), p1.Latency())
			}
			if n.Injected() != n.Delivered() {
				t.Error("conservation violated on cmesh")
			}
		})
	}
}

// TestConcentratedNoXEncodes verifies the XOR mechanism engages on the
// radix-8 router under local-port convergence (up to 7 colliders).
func TestConcentratedNoXEncodes(t *testing.T) {
	n := New(Config{Topo: noc.Topology{Width: 4, Height: 4}, Concentration: 4, Arch: router.NoX})
	// All cores of routers 0 and 1 target core 32 simultaneously.
	for round := 0; round < 8; round++ {
		for c := 0; c < 8; c++ {
			n.Inject(noc.NodeID(c), 32, 1, 0)
		}
		n.Step()
	}
	if !n.Drain(5000) {
		t.Fatalf("not drained: %d", n.Outstanding())
	}
	if n.Counters().EncodedFlits == 0 {
		t.Error("no encoded flits on the radix-8 router")
	}
}

// TestMultiNetworkIsolation verifies packets of different classes travel
// on separate physical networks (class counters are independent) while
// sharing the cycle clock.
func TestMultiNetworkIsolation(t *testing.T) {
	m := NewMulti(2, Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: router.NoX})
	var delivered int
	m.OnDeliver(func(p *noc.Packet, cycle int64) { delivered++ })
	m.InjectPacket(noc.NewPacket(1, 0, 15, 1, 0, m.Cycle()))
	m.InjectPacket(noc.NewPacket(2, 0, 15, 9, 1, m.Cycle()))
	if !m.Drain(1000) {
		t.Fatalf("multi did not drain: %d", m.Outstanding())
	}
	if delivered != 2 {
		t.Fatalf("delivered %d/2", delivered)
	}
	if m.Net(0).Delivered() != 1 || m.Net(1).Delivered() != 1 {
		t.Error("classes not isolated per physical network")
	}
	if m.Net(0).Cycle() != m.Net(1).Cycle() {
		t.Error("networks out of lockstep")
	}
	sum := m.Counters()
	if sum.LinkFlit != m.Net(0).Counters().LinkFlit+m.Net(1).Counters().LinkFlit {
		t.Error("counter aggregation wrong")
	}
}

func TestMultiValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero classes accepted")
		}
	}()
	NewMulti(0, Config{})
}

// TestSameFlowOrdering verifies the wormhole ordering invariant every
// architecture must preserve: packets between one (src, dst) pair are
// delivered in injection order — NoX decode included, since an input
// port's presentations are strictly head-ordered.
func TestSameFlowOrdering(t *testing.T) {
	for _, arch := range router.Archs {
		t.Run(arch.String(), func(t *testing.T) {
			topo := noc.Topology{Width: 4, Height: 4}
			n := New(Config{Topo: topo, Arch: arch})
			var order []uint64
			n.OnDeliver = func(p *noc.Packet, cycle int64) {
				if p.Src == 0 && p.Dst == 15 {
					order = append(order, p.ID)
				}
			}
			rng := sim.NewRNG(77)
			var flowIDs []uint64
			for round := 0; round < 150; round++ {
				// The observed flow, plus random cross traffic colliding
				// with it.
				if round%3 == 0 {
					length := 1
					if rng.Bernoulli(0.3) {
						length = 5
					}
					flowIDs = append(flowIDs, n.Inject(0, 15, length, 0).ID)
				}
				for i := 0; i < 4; i++ {
					src := noc.NodeID(rng.Intn(topo.Nodes()))
					dst := noc.NodeID(rng.Intn(topo.Nodes()))
					if src != dst && !(src == 0 && dst == 15) {
						n.Inject(src, dst, 1, 0)
					}
				}
				n.Step()
			}
			if !n.Drain(20000) {
				t.Fatalf("not drained: %d", n.Outstanding())
			}
			if len(order) != len(flowIDs) {
				t.Fatalf("flow delivered %d/%d", len(order), len(flowIDs))
			}
			for i := range order {
				if order[i] != flowIDs[i] {
					t.Fatalf("flow reordered at %d: got %v want %v", i, order[i], flowIDs[i])
				}
			}
		})
	}
}
