package network

import (
	"testing"

	"repro/internal/check"
	"repro/internal/fault"
	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/snapshot/codec"
)

// buildHard assembles a checker-armed 4x4 network with the given hard-fault
// spec and (optionally) retransmission.
func buildHard(t *testing.T, arch router.Arch, shards int, spec fault.Spec, rt *RetransmitConfig) (*Network, *check.Checker, *fault.Injector) {
	t.Helper()
	ck := check.New(check.All())
	inj := fault.NewInjector(spec)
	net, err := Build(Config{
		Topo: noc.Topology{Width: 4, Height: 4}, Arch: arch,
		Shards: shards, Check: ck, Fault: inj, Retransmit: rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	return net, ck, inj
}

// driveUniform injects seeded uniform-random traffic for cycles cycles.
func driveUniform(net *Network, seed uint64, cycles int64, load float64) {
	rng := sim.NewRNG(seed)
	cores := net.Cores()
	for cyc := int64(0); cyc < cycles; cyc++ {
		for id := 0; id < cores; id++ {
			if rng.Float64() >= load {
				continue
			}
			dst := rng.Intn(cores - 1)
			if dst >= id {
				dst++
			}
			length := 1
			if rng.Float64() < 0.25 {
				length = 4
			}
			net.Inject(noc.NodeID(id), noc.NodeID(dst), length, 0)
		}
		net.Step()
	}
}

// assertAccounted verifies the degradation contract: zero violations and
// every injected packet either delivered or retired as undeliverable.
func assertAccounted(t *testing.T, net *Network, ck *check.Checker) {
	t.Helper()
	net.CheckInvariants()
	if got := ck.Total(); got != 0 {
		t.Errorf("%d violations recorded", got)
	}
	if d, u, i := ck.Delivered(), net.Undeliverable(), ck.Injected(); d+u != i {
		t.Errorf("accounting hole: injected=%d delivered=%d undeliverable=%d", i, d, u)
	}
	if out := net.Outstanding(); out != 0 {
		t.Errorf("%d packets outstanding after drain", out)
	}
}

// TestDeadLinkAllArchs: a single inter-router link dead from cycle 0. Every
// architecture must route around it via the up*/down* fault table with zero
// loss — the mesh stays connected, so nothing may go undeliverable.
func TestDeadLinkAllArchs(t *testing.T) {
	spec := fault.Spec{Seed: 7, DeadLinks: []fault.DeadLink{{A: 5, B: 6}}}
	for _, arch := range router.Archs {
		t.Run(arch.String(), func(t *testing.T) {
			net, ck, _ := buildHard(t, arch, 0, spec, nil)
			driveUniform(net, 0xABC, 800, 0.05)
			if err := net.DrainChecked(0, 0); err != nil {
				t.Fatal(err)
			}
			assertAccounted(t, net, ck)
			if u := net.Undeliverable(); u != 0 {
				t.Errorf("%d undeliverable on a connected mesh", u)
			}
			if e := net.Epochs(); e != 0 {
				t.Errorf("%d reconfiguration epochs for an at-construction fault", e)
			}
		})
	}
}

// TestMidRunKillRecovery: a link dies mid-run with retransmission armed.
// The reconfiguration epoch flushes wormhole state threaded through the dead
// link; end-to-end retransmission must recover every flushed packet, so the
// run ends with full delivery and zero violations on every architecture.
func TestMidRunKillRecovery(t *testing.T) {
	spec := fault.Spec{Seed: 11, DeadLinks: []fault.DeadLink{{A: 5, B: 6, At: 300}}}
	rt := &RetransmitConfig{Timeout: 64, Retries: 6}
	for _, arch := range router.Archs {
		t.Run(arch.String(), func(t *testing.T) {
			net, ck, _ := buildHard(t, arch, 0, spec, rt)
			driveUniform(net, 0xDEF, 800, 0.06)
			if err := net.DrainChecked(0, 0); err != nil {
				t.Fatal(err)
			}
			assertAccounted(t, net, ck)
			if e := net.Epochs(); e != 1 {
				t.Errorf("epochs = %d, want 1", e)
			}
			if d, i := ck.Delivered(), ck.Injected(); d != i {
				t.Errorf("delivered %d of %d despite retransmission on a connected mesh", d, i)
			}
		})
	}
}

// TestMidRunKillNoRetransmit: without retransmission, packets flushed by the
// epoch are retired as undeliverable — losses are attributable to the
// reconfiguration, never silent.
func TestMidRunKillNoRetransmit(t *testing.T) {
	spec := fault.Spec{Seed: 13, DeadLinks: []fault.DeadLink{{A: 5, B: 6, At: 300}}}
	for _, arch := range router.Archs {
		t.Run(arch.String(), func(t *testing.T) {
			net, ck, _ := buildHard(t, arch, 0, spec, nil)
			driveUniform(net, 0x123, 800, 0.06)
			if err := net.DrainChecked(0, 0); err != nil {
				t.Fatal(err)
			}
			assertAccounted(t, net, ck)
			if e := net.Epochs(); e != 1 {
				t.Errorf("epochs = %d, want 1", e)
			}
		})
	}
}

// TestPartitionNoFalseDeadlock cuts corner router 0 off at cycle 0 and keeps
// injecting traffic to and from its core. Packets crossing the partition
// must be retired as undeliverable — immediately at injection — so the
// drain terminates cleanly instead of reporting the quiescent-with-
// outstanding state as a deadlock (the regression this test pins).
func TestPartitionNoFalseDeadlock(t *testing.T) {
	spec := fault.Spec{Seed: 17, DeadLinks: []fault.DeadLink{{A: 0, B: 1}, {A: 0, B: 4}}}
	rt := &RetransmitConfig{Timeout: 64, Retries: 3}
	net, ck, _ := buildHard(t, router.NoX, 0, spec, rt)
	driveUniform(net, 0x456, 600, 0.06)
	if err := net.DrainChecked(0, 0); err != nil {
		t.Fatalf("drain reported a wedge on a partitioned-but-accounted network: %v", err)
	}
	assertAccounted(t, net, ck)
	if u := net.Undeliverable(); u == 0 {
		t.Error("no undeliverable packets despite a partitioned core")
	}
	if p := net.PartitionedPairs(); p == 0 {
		t.Error("PartitionedPairs = 0 with router 0 cut off")
	}
}

// TestMidRunPartition cuts router 0 off at cycle 400, while traffic is in
// flight. The epoch must retire unreachable queue/assembly/retransmission
// state, and the drain must fast-forward through the surviving
// retransmission timeouts (RecoveryPending) rather than wedging.
func TestMidRunPartition(t *testing.T) {
	spec := fault.Spec{Seed: 19, DeadLinks: []fault.DeadLink{{A: 0, B: 1, At: 400}, {A: 0, B: 4, At: 400}}}
	rt := &RetransmitConfig{Timeout: 32, Retries: 2}
	for _, arch := range router.Archs {
		t.Run(arch.String(), func(t *testing.T) {
			net, ck, _ := buildHard(t, arch, 0, spec, rt)
			driveUniform(net, 0x789, 700, 0.06)
			if err := net.DrainChecked(0, 0); err != nil {
				t.Fatal(err)
			}
			assertAccounted(t, net, ck)
			if e := net.Epochs(); e != 1 {
				t.Errorf("epochs = %d, want 1", e)
			}
			if u := net.Undeliverable(); u == 0 {
				t.Error("no undeliverable packets despite a mid-run partition")
			}
		})
	}
}

// TestHardFaultShardInvariance: the full mid-run-kill + retransmission
// scenario must be bit-identical between the serial kernel and sharded
// execution — the complete network state (including retransmission entries
// and the fault injector's dynamic state) serializes to the same bytes.
func TestHardFaultShardInvariance(t *testing.T) {
	spec := fault.Spec{Seed: 23, DeadLinks: []fault.DeadLink{{A: 5, B: 6, At: 300}, {A: 9, B: 10, At: 450}}}
	rt := &RetransmitConfig{Timeout: 48, Retries: 4}
	run := func(shards int) ([]byte, int64, int64) {
		net, ck, _ := buildHard(t, router.NoX, shards, spec, rt)
		driveUniform(net, 0xAAA, 700, 0.06)
		if err := net.DrainChecked(0, 0); err != nil {
			t.Fatal(err)
		}
		e := codec.NewEncoder()
		if err := net.SaveState(e); err != nil {
			t.Fatal(err)
		}
		return e.Bytes(), ck.Delivered(), net.Undeliverable()
	}
	ref, refD, refU := run(0)
	for _, shards := range []int{1, 4} {
		got, d, u := run(shards)
		if d != refD || u != refU {
			t.Errorf("shards=%d: delivered/undeliverable %d/%d, serial %d/%d", shards, d, u, refD, refU)
		}
		if string(got) != string(ref) {
			t.Errorf("shards=%d: final state diverges from serial (%d vs %d bytes)", shards, len(got), len(ref))
		}
	}
}

// TestHardFaultSnapshotRoundTrip checkpoints a retransmission-armed run
// twice — before the scheduled kill and after the reconfiguration epoch —
// and verifies a restored network continues bit-identically to the
// uninterrupted original in both cases. The pre-kill restore proves the
// kill-cursor re-sync (the epoch must still fire); the post-epoch restore
// proves the route-table re-derivation (the fresh network still routes
// fault-free until RestoreState rebuilds the fault table).
func TestHardFaultSnapshotRoundTrip(t *testing.T) {
	spec := fault.Spec{Seed: 29, DeadLinks: []fault.DeadLink{{A: 5, B: 6, At: 300}}}
	rt := &RetransmitConfig{Timeout: 48, Retries: 4}
	for _, splitAt := range []int64{250, 350} {
		ref, _, _ := buildHard(t, router.NoX, 0, spec, rt)
		rng := sim.NewRNG(0xBBB)
		cores := ref.Cores()
		inject := func(net *Network, r *sim.RNG) {
			for id := 0; id < cores; id++ {
				if r.Float64() >= 0.06 {
					continue
				}
				dst := r.Intn(cores - 1)
				if dst >= id {
					dst++
				}
				net.Inject(noc.NodeID(id), noc.NodeID(dst), 2, 0)
			}
		}
		var img []byte
		var rngAtSplit *sim.RNG
		for cyc := int64(0); cyc < 600; cyc++ {
			if cyc == splitAt {
				e := codec.NewEncoder()
				if err := ref.SaveState(e); err != nil {
					t.Fatal(err)
				}
				img = e.Bytes()
				rngAtSplit = sim.NewRNG(0)
				rngAtSplit.SetState(rng.State())
			}
			inject(ref, rng)
			ref.Step()
		}
		if err := ref.DrainChecked(0, 0); err != nil {
			t.Fatal(err)
		}
		eRef := codec.NewEncoder()
		if err := ref.SaveState(eRef); err != nil {
			t.Fatal(err)
		}

		cut, _, _ := buildHard(t, router.NoX, 0, spec, rt)
		if err := cut.RestoreState(codec.NewDecoder(img)); err != nil {
			t.Fatalf("split@%d: restore: %v", splitAt, err)
		}
		for cyc := splitAt; cyc < 600; cyc++ {
			inject(cut, rngAtSplit)
			cut.Step()
		}
		if err := cut.DrainChecked(0, 0); err != nil {
			t.Fatal(err)
		}
		eCut := codec.NewEncoder()
		if err := cut.SaveState(eCut); err != nil {
			t.Fatal(err)
		}
		if string(eCut.Bytes()) != string(eRef.Bytes()) {
			t.Errorf("split@%d: restored run diverges from uninterrupted run (%d vs %d bytes)",
				splitAt, len(eCut.Bytes()), len(eRef.Bytes()))
		}
	}
}

// TestEscalationPromotesLink: chronic transient drops at high rate with an
// escalation policy must promote links to permanently dead (an epoch), and
// retransmission must keep the accounting exact through both the transient
// losses and the promotion.
func TestEscalationPromotesLink(t *testing.T) {
	spec := fault.Spec{
		Seed: 31, Drop: 0.03,
		Escalate: &fault.Escalation{Threshold: 4, Window: 4000},
	}
	rt := &RetransmitConfig{Timeout: 64, Retries: 8}
	net, ck, inj := buildHard(t, router.NonSpec, 0, spec, rt)
	driveUniform(net, 0xCCC, 900, 0.06)
	if err := net.DrainChecked(0, 0); err != nil {
		t.Fatal(err)
	}
	if esc := inj.EscalatedLinks(); esc == 0 {
		t.Fatal("no links escalated despite chronic transient drops")
	}
	if e := net.Epochs(); e == 0 {
		t.Error("escalation promoted links but no reconfiguration epoch fired")
	}
	net.CheckInvariants()
	if d, u, i := ck.Delivered(), net.Undeliverable(), ck.Injected(); d+u != i {
		t.Errorf("accounting hole: injected=%d delivered=%d undeliverable=%d", i, d, u)
	}
}
