package network

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/check"
	"repro/internal/noc"
	"repro/internal/router"
)

// ErrBadConfig is wrapped by every Config validation failure; user-facing
// tools test for it with errors.Is.
var ErrBadConfig = errors.New("network: invalid configuration")

// ErrBadPacket is wrapped by InjectChecked's rejection of malformed packets.
var ErrBadPacket = errors.New("network: invalid packet")

// ErrNoProgress is wrapped by DrainChecked when the network wedges —
// deadlock, livelock, or drain-limit exhaustion. The error message carries
// the watchdog's full diagnostic dump.
var ErrNoProgress = errors.New("network: no forward progress")

// Validate checks a configuration without building it. Zero values are fine
// (fill applies the defaults); only actively inconsistent settings fail.
func (c Config) Validate() error {
	if c.Topo.Width < 0 || c.Topo.Height < 0 ||
		(c.Topo.Width > 0) != (c.Topo.Height > 0) {
		return fmt.Errorf("%w: topology %dx%d", ErrBadConfig, c.Topo.Width, c.Topo.Height)
	}
	if c.Concentration < 0 {
		return fmt.Errorf("%w: concentration %d negative", ErrBadConfig, c.Concentration)
	}
	if c.Topo.Width > 0 {
		sys := noc.System{Grid: c.Topo, Concentration: max(c.Concentration, 1)}
		if err := sys.Check(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		if ports := sys.Ports(); ports > 32 {
			return fmt.Errorf("%w: concentration %d needs radix %d (max 32)", ErrBadConfig, c.Concentration, ports)
		}
	}
	switch c.Arch {
	case router.NonSpec, router.SpecFast, router.SpecAccurate, router.NoX:
	default:
		return fmt.Errorf("%w: unknown architecture %d", ErrBadConfig, int(c.Arch))
	}
	if c.BufferDepth < 0 {
		return fmt.Errorf("%w: buffer depth %d negative", ErrBadConfig, c.BufferDepth)
	}
	if c.SinkDepth < 0 {
		return fmt.Errorf("%w: sink depth %d negative", ErrBadConfig, c.SinkDepth)
	}
	if c.Shards < 0 {
		return fmt.Errorf("%w: shards %d negative", ErrBadConfig, c.Shards)
	}
	if c.Fault != nil && c.Check == nil {
		// Fault consequences (corrupt decodes, overruns, orphan bodies) are
		// panics unless the checker's lenient paths are armed — and a panic
		// on a sharded worker goroutine is unrecoverable.
		return fmt.Errorf("%w: Fault requires Check (fault consequences must be recorded, not panic)", ErrBadConfig)
	}
	if r := c.Retransmit; r != nil {
		if r.Timeout < 1 {
			return fmt.Errorf("%w: retransmit timeout %d (must be >= 1 cycle)", ErrBadConfig, r.Timeout)
		}
		if r.Retries < 0 {
			return fmt.Errorf("%w: retransmit retries %d negative", ErrBadConfig, r.Retries)
		}
	}
	return nil
}

// Build is the error-returning form of New for configurations assembled
// from user input (CLI flags, spec files): it validates first and returns
// ErrBadConfig-wrapped errors instead of panicking.
func Build(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return New(cfg), nil
}

// InjectChecked is the error-returning form of Inject for endpoints from
// user input: it rejects malformed packets with ErrBadPacket instead of
// panicking.
func (n *Network) InjectChecked(src, dst noc.NodeID, length int, class int) (*noc.Packet, error) {
	cores := noc.NodeID(len(n.nis))
	if src < 0 || src >= cores || dst < 0 || dst >= cores {
		return nil, fmt.Errorf("%w: endpoints %d->%d outside %d-core system", ErrBadPacket, src, dst, cores)
	}
	if src == dst {
		return nil, fmt.Errorf("%w: self-addressed packet at node %d", ErrBadPacket, src)
	}
	if length <= 0 {
		return nil, fmt.Errorf("%w: length %d", ErrBadPacket, length)
	}
	n.nextPacketID++
	p := noc.NewPacket(n.nextPacketID, src, dst, length, class, n.Cycle())
	n.InjectPacket(p)
	return p, nil
}

// DrainChecked runs the network without new traffic until every outstanding
// packet is delivered, the cycle budget runs out, or the watchdog trips. On
// a wedge it records a watchdog violation on the armed checker (if any) and
// returns an ErrNoProgress-wrapped error whose message embeds the full
// diagnostic dump. limit <= 0 defaults to 30000 cycles; window <= 0
// defaults to min(limit, 4096) cycles without a delivery.
func (n *Network) DrainChecked(limit, window int64) error {
	if limit <= 0 {
		limit = 30000
	}
	if window <= 0 {
		window = limit
		if window > 4096 {
			window = 4096
		}
	}
	deadline := n.Cycle() + limit
	wd := check.Watchdog{Window: window}
	wd.Reset(n.Cycle(), n.Delivered())
	for n.Outstanding() > 0 {
		if n.FullyIdle() {
			if !n.RecoveryPending() {
				// Quiescent with packets outstanding and no scheduled kill
				// or retransmission timeout still to come: no evaluation can
				// ever deliver them — a true deadlock, reportable
				// immediately. (A partitioned network never reaches this
				// branch: its unreachable packets were retired as
				// undeliverable, so Outstanding already excludes them.)
				return n.wedged(fmt.Sprintf("deadlock: fully quiescent with %d packets outstanding", n.Outstanding()))
			}
			// Quiescent, but recovery machinery is still scheduled: jump to
			// the next event boundary in bulk. Waiting idle for a timeout
			// is not livelock, so the watchdog restarts after the jump.
			if n.FastForwardIdle(deadline-n.Cycle()) == 0 {
				return n.wedged(fmt.Sprintf("drain limit: %d packets outstanding after %d cycles", n.Outstanding(), limit))
			}
			wd.Reset(n.Cycle(), n.Delivered())
			continue
		}
		if n.Cycle() >= deadline {
			return n.wedged(fmt.Sprintf("drain limit: %d packets outstanding after %d cycles", n.Outstanding(), limit))
		}
		n.Step()
		if stalled, tripped := wd.Observe(n.Cycle(), n.Delivered()); tripped {
			return n.wedged(fmt.Sprintf("livelock: no packet delivered for %d cycles, %d outstanding", stalled, n.Outstanding()))
		}
	}
	return nil
}

// wedged records the watchdog trip and packages the diagnostic dump into
// the returned error.
func (n *Network) wedged(msg string) error {
	n.check.Watchdog(n.Cycle(), msg)
	var sb strings.Builder
	n.WriteDiagnostic(&sb)
	return fmt.Errorf("%s: %w\n%s", msg, ErrNoProgress, sb.String())
}

// WriteDiagnostic dumps the network's live state — per-router port states,
// interface queues and reassembly progress, arena occupancy — the forensic
// snapshot attached to every watchdog trip. Routers and interfaces with
// nothing in flight are skipped so the dump stays focused on the wedge.
func (n *Network) WriteDiagnostic(w io.Writer) {
	fmt.Fprintf(w, "network diagnostic: arch=%s topo=%dx%d cycle=%d injected=%d delivered=%d undeliverable=%d outstanding=%d arena=%d\n",
		n.cfg.Arch, n.cfg.Topo.Width, n.cfg.Topo.Height,
		n.Cycle(), n.Injected(), n.Delivered(), n.Undeliverable(), n.Outstanding(), n.ArenaOutstanding())
	if n.hard != nil {
		fmt.Fprintf(w, "  hard faults: epochs=%d last-epoch=%d partitioned-pairs=%d faults=%s\n",
			n.Epochs(), n.LastEpochCycle(), n.PartitionedPairs(), n.curFaults)
	}
	if n.rel != nil {
		rtx, acked, ackLost, exhausted := n.RetransmitStats()
		fmt.Fprintf(w, "  retransmit: entries=%d resends=%d acked=%d ack-lost=%d exhausted=%d dup-suppressed=%d\n",
			len(n.rel.entries), rtx, acked, ackLost, exhausted, n.DupSuppressed())
	}
	var buf []router.PortState
	for id, r := range n.routers {
		buf = r.PortStates(buf[:0])
		busy := false
		for _, ps := range buf {
			if ps.Buffered > 0 || ps.Register || ps.OutLock >= 0 {
				busy = true
				break
			}
		}
		if !busy {
			continue
		}
		coord := n.cfg.Topo.Coord(noc.NodeID(id))
		fmt.Fprintf(w, "  router %d (%d,%d):", id, coord.X, coord.Y)
		for p, ps := range buf {
			if ps.Buffered == 0 && !ps.Register && ps.OutLock < 0 {
				continue
			}
			fmt.Fprintf(w, " p%d{%s}", p, ps)
		}
		fmt.Fprintln(w)
	}
	for _, ni := range n.nis {
		q := ni.QueueLen()
		asm := ni.assembling != nil
		sink := ni.sink.Buffered()
		if q == 0 && !asm && sink == 0 && !ni.sink.RegisterBusy() {
			continue
		}
		fmt.Fprintf(w, "  ni %d: queue=%d sink=%d", ni.node, q, sink)
		if ni.sink.RegisterBusy() {
			fmt.Fprint(w, " reg")
		}
		if ni.cur != nil {
			fmt.Fprintf(w, " injecting=pkt%d.%d", ni.cur.ID, ni.curSeq)
		}
		if asm {
			fmt.Fprintf(w, " assembling=pkt%d want-seq=%d", ni.assembling.ID, ni.expectSeq)
		}
		fmt.Fprintln(w)
	}
	if n.probe != nil {
		fmt.Fprintf(w, "  probe: %d events captured\n", n.probe.EventCount())
	}
}

// CheckInvariants runs the post-drain invariant sweep on the armed checker:
// credit and arena conservation on every channel, then the delivery
// oracle's lost-packet scan (Checker.Finalize). A no-op when no checker is
// armed. Call after draining, between steps.
func (n *Network) CheckInvariants() {
	if n.check == nil {
		return
	}
	n.checkConservation()
	var impacted func(uint64) bool
	if n.fault != nil {
		impacted = n.fault.Impacted
	}
	n.check.Finalize(n.Cycle(), impacted)
}

// checkConservation verifies, once the network is empty, that every
// channel's credits balance (offset by any injected credit faults) and that
// the flit arenas drained exactly (unless a fault class that leaks pooled
// objects fired). Only meaningful at Outstanding == 0 — mid-flight credits
// are legitimately spread across links and buffers.
func (n *Network) checkConservation() {
	if n.Outstanding() != 0 {
		return
	}
	cycle := n.Cycle()
	for site, l := range n.links {
		want := l.Capacity()
		if n.fault != nil {
			want += n.fault.CreditDelta(site)
		}
		if got := l.Credits() + l.PendingReturns(); got != want {
			n.check.Credit(cycle, site, got, want)
		}
	}
	leaky := n.check.Leaky() || (n.fault != nil && n.fault.Leaky())
	if out := n.ArenaOutstanding(); out != 0 && !leaky {
		n.check.Arena(cycle, out)
	}
}
