package harness

import "repro/internal/telemetry"

// Telemetry bundles the live-observability hooks a cmd tool threads into
// the multi-run harness entry points (RunAppAllArchs, RunFutureStudy): the
// shared progress sampler feeding /metrics and the SSE stream, and the
// per-run flight-recorder factory. The zero value disables both, so callers
// without a telemetry session pass Telemetry{}.
type Telemetry struct {
	// Progress receives per-cycle ticks and inject/deliver counts from every
	// run. Nil costs a nil check per hook.
	Progress *telemetry.Sampler
	// NewRecorder builds one flight recorder per run from a deterministic
	// label; nil (or a factory returning nil) disarms recording.
	NewRecorder func(label string) *telemetry.Recorder
}

// recorder builds a run's flight recorder, or nil when recording is off.
func (t Telemetry) recorder(label string) *telemetry.Recorder {
	if t.NewRecorder == nil {
		return nil
	}
	return t.NewRecorder(label)
}
