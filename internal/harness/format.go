package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/physical"
	"repro/internal/router"
)

// FormatTable2 renders the router clock periods (Table 2) from the
// physical model.
func FormatTable2() string {
	var b strings.Builder
	b.WriteString("Table 2: Router Clock Periods\n")
	fmt.Fprintf(&b, "%-16s | %s\n", "Architecture", "Clock Period")
	for _, a := range router.Archs {
		fmt.Fprintf(&b, "%-16s | %.2f ns\n", a, physical.ClockPeriodNs(a))
	}
	b.WriteString("\nRelative to the non-speculative router (§6.1):\n")
	for _, a := range []router.Arch{router.SpecFast, router.SpecAccurate, router.NoX} {
		fmt.Fprintf(&b, "  %-14s %+.1f%% clock speedup\n", a, 100*physical.SpeedupVsNonSpec(a))
	}
	return b.String()
}

// FormatFloorplan renders the Figure 13 area comparison.
func FormatFloorplan() string {
	var b strings.Builder
	b.WriteString("Figure 13: Router Floorplanning\n")
	conv := physical.Floorplan(router.NonSpec)
	nox := physical.Floorplan(router.NoX)
	fmt.Fprintf(&b, "%-22s %8.2f x %6.2f um  = %9.0f um^2\n", "Conventional tile:", conv.WidthUm, conv.HeightUm, conv.AreaUm2())
	fmt.Fprintf(&b, "%-22s %8.2f x %6.2f um  = %9.0f um^2\n", "NoX tile:", nox.WidthUm, nox.HeightUm, nox.AreaUm2())
	fmt.Fprintf(&b, "NoX decode/mask column: +%.1f um width; tile area penalty %.1f%% (paper: 17.2%%)\n",
		physical.DecodeMaskWidthUm, 100*physical.AreaOverheadVsConventional())
	return b.String()
}

// FormatSweepLatency renders one pattern's Figure 8 panel: mean latency
// (ns) against offered bandwidth (MB/s/node), one column per architecture.
// Saturated or unreached points print as "-".
func FormatSweepLatency(pattern string, points []SweepPoint) string {
	return formatSweep("Figure 8 ["+pattern+"]: latency (ns) vs offered MB/s/node", points,
		func(r RunResult) (float64, bool) {
			return r.MeanLatencyNs, !r.Saturated && !math.IsNaN(r.MeanLatencyNs)
		}, "%8.2f")
}

// FormatSweepED2 renders one pattern's Figure 9 panel: energy-delay^2
// (pJ*ns^2) against offered bandwidth.
func FormatSweepED2(pattern string, points []SweepPoint) string {
	return formatSweep("Figure 9 ["+pattern+"]: energy-delay^2 (pJ*ns^2) vs offered MB/s/node", points,
		func(r RunResult) (float64, bool) {
			return r.EnergyDelay2, !r.Saturated && r.EnergyDelay2 > 0
		}, "%8.0f")
}

func formatSweep(title string, points []SweepPoint, metric func(RunResult) (float64, bool), cell string) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%10s", "MB/s/node")
	for _, a := range router.Archs {
		fmt.Fprintf(&b, " %15s", a)
	}
	b.WriteString("\n")
	for _, pt := range points {
		fmt.Fprintf(&b, "%10.0f", pt.RateMBps)
		for _, a := range router.Archs {
			r, ok := pt.Results[a]
			if !ok {
				fmt.Fprintf(&b, " %15s", "-")
				continue
			}
			v, valid := metric(r)
			if !valid {
				fmt.Fprintf(&b, " %15s", "saturated")
				continue
			}
			fmt.Fprintf(&b, " %15s", fmt.Sprintf(cell, v))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatSaturation summarizes a sweep's saturation throughput per
// architecture and NoX's edge over the best competitor (§5.1 reports
// "improving network throughput by up to 9.9%").
func FormatSaturation(pattern string, points []SweepPoint) string {
	sat := SaturationMBps(points)
	var b strings.Builder
	fmt.Fprintf(&b, "Saturation throughput [%s]:\n", pattern)
	bestOther := 0.0
	for _, a := range router.Archs {
		fmt.Fprintf(&b, "  %-16s %7.0f MB/s/node\n", a, sat[a])
		if a != router.NoX && sat[a] > bestOther {
			bestOther = sat[a]
		}
	}
	if bestOther > 0 {
		fmt.Fprintf(&b, "  NoX vs best baseline: %+.1f%%\n", 100*(sat[router.NoX]/bestOther-1))
	}
	return b.String()
}

// FormatAppLatency renders Figure 10: average packet latency (ns) per
// workload per architecture.
func FormatAppLatency(results []map[router.Arch]AppResult) string {
	return formatApp("Figure 10: Application average packet latency (ns)", results,
		func(r AppResult) float64 { return r.MeanLatencyNs }, "%10.2f")
}

// FormatAppED2 renders Figure 11: energy-delay^2 per workload per
// architecture, plus the §5.2 average improvements.
func FormatAppED2(results []map[router.Arch]AppResult) string {
	s := formatApp("Figure 11: Application energy-delay^2 (pJ*ns^2)", results,
		func(r AppResult) float64 { return r.EnergyDelay2 }, "%10.0f")
	imp := GeoMeanImprovement(results)
	var b strings.Builder
	b.WriteString(s)
	b.WriteString("\nMean NoX energy-delay^2 improvement (paper: 29.5% / 34.4% / 2.7%):\n")
	for _, base := range []router.Arch{router.NonSpec, router.SpecFast, router.SpecAccurate} {
		fmt.Fprintf(&b, "  vs %-16s %+.1f%%\n", base, 100*imp[base])
	}
	return b.String()
}

func formatApp(title string, results []map[router.Arch]AppResult, metric func(AppResult) float64, cell string) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-10s", "workload")
	for _, a := range router.Archs {
		fmt.Fprintf(&b, " %16s", a)
	}
	b.WriteString("\n")
	sorted := append([]map[router.Arch]AppResult(nil), results...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i][router.NoX].Workload < sorted[j][router.NoX].Workload
	})
	for _, byArch := range sorted {
		fmt.Fprintf(&b, "%-10s", byArch[router.NoX].Workload)
		for _, a := range router.Archs {
			fmt.Fprintf(&b, " %16s", fmt.Sprintf(cell, metric(byArch[a])))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatPowerBreakdown renders Figure 12: total network dynamic power by
// component under 2 GB/s/node uniform single-flit traffic. Spec-Fast is
// omitted, as in the paper, when it cannot sustain the load.
func FormatPowerBreakdown(results map[router.Arch]RunResult) string {
	var b strings.Builder
	b.WriteString("Figure 12: Network dynamic power @ 2 GB/s/node uniform (mW)\n")
	fmt.Fprintf(&b, "%-16s %9s %9s %9s %9s %9s %9s %7s\n",
		"Architecture", "buffer", "xbar", "link", "arb", "decode", "total", "link%")
	for _, a := range router.Archs {
		r, ok := results[a]
		if !ok {
			continue
		}
		if r.Saturated {
			fmt.Fprintf(&b, "%-16s %s\n", a, "not shown (cannot sustain the load, as in the paper)")
			continue
		}
		e := r.Energy
		windowNs := e.TotalPJ() / r.PowerMW // PowerMW = TotalPJ / window(ns)
		mw := func(pj float64) float64 { return pj / windowNs }
		fmt.Fprintf(&b, "%-16s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f %6.1f%%\n",
			a, mw(e.BufferPJ), mw(e.XbarPJ), mw(e.LinkPJ), mw(e.ArbPJ), mw(e.DecodePJ), r.PowerMW, 100*e.LinkShare())
	}
	return b.String()
}
