package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/arbiter"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/power"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// This file holds the ablation studies DESIGN.md calls out: the design
// choices the paper fixes (4-deep buffers, round-robin arbitration, the
// XOR fabric's energy premium) varied one at a time to show how much of
// the headline result each one carries.

// AblationPoint is one configuration's outcome at a fixed offered load.
type AblationPoint struct {
	Label         string
	Arch          router.Arch
	MeanLatencyNs float64
	AcceptedMBps  float64
	Saturated     bool
}

// runConfigured runs uniform traffic at the given load through a custom
// network configuration — the shared engine under the ablations.
func runConfigured(arch router.Arch, rateMBps float64, bufferDepth int,
	newArb func(int) arbiter.Arbiter, warm, meas, drain int64, shards int) AblationPoint {
	periodNs := physical.ClockPeriodNs(arch)
	pktRate := FlitsPerNodeCycle(rateMBps, periodNs)

	topo := noc.Topology{Width: 8, Height: 8}
	net := network.New(network.Config{Topo: topo, Arch: arch, BufferDepth: bufferDepth, NewArbiter: newArb, Shards: shards})
	defer net.Close()
	col := stats.NewCollector(warm, warm+meas)
	col.Reserve(int(pktRate*float64(topo.Nodes())*float64(meas)) + 64)
	net.OnDeliver = col.OnDeliver

	base := sim.NewRNG(0xAB1A7E)
	pattern := traffic.Uniform{Topo: topo}
	procs := make([]*traffic.Bernoulli, topo.Nodes())
	dests := make([]*sim.RNG, topo.Nodes())
	for i := range procs {
		procs[i] = &traffic.Bernoulli{P: pktRate, RNG: base.Fork(uint64(i))}
		dests[i] = base.Fork(uint64(1000 + i))
	}
	for cyc := int64(0); cyc < warm+meas; cyc++ {
		for id := 0; id < topo.Nodes(); id++ {
			if procs[id].Tick() {
				src := noc.NodeID(id)
				p := net.Inject(src, pattern.Dest(src, dests[id]), 1, 0)
				col.OnCreate(p, cyc)
			}
		}
		net.Step()
	}
	deadline := net.Cycle() + drain
	for !col.Complete() && net.Cycle() < deadline {
		if net.FullyIdle() {
			net.FastForwardIdle(deadline - net.Cycle())
			break
		}
		net.Step()
	}
	return AblationPoint{
		Arch:          arch,
		MeanLatencyNs: col.MeanLatencyCycles() * periodNs,
		AcceptedMBps:  MBpsPerNode(col.AcceptedFlitsPerNodeCycle(topo.Nodes()), periodNs),
		Saturated: !col.Complete() ||
			float64(col.WindowFlits()) < 0.92*float64(col.CreatedFlits()),
	}
}

// AblateBufferDepth varies the input FIFO depth around Table 1's 4 entries
// at a fixed uniform load for the given architectures. Shallower buffers
// shrink the credit round-trip margin; NoX's decode register (one slot of
// extra storage, freed-early winners) makes it the most robust.
func AblateBufferDepth(depths []int, rateMBps float64, archs []router.Arch, pool *exp.Pool, shards int) []AblationPoint {
	out, _ := exp.Map(context.Background(), pool, len(depths)*len(archs),
		func(_ context.Context, i int) (AblationPoint, error) {
			d := depths[i/len(archs)]
			pt := runConfigured(archs[i%len(archs)], rateMBps, d, nil, 1500, 4000, 15000, shards)
			pt.Label = fmt.Sprintf("depth=%d", d)
			return pt, nil
		})
	return out
}

// arbiterKind names one output-arbiter choice for the arbiter ablation.
type arbiterKind struct {
	name string
	mk   func(int) arbiter.Arbiter
}

// arbiterKinds lists the compared arbiters — shared by the serial and
// batched arbiter ablations so both produce the same cells.
func arbiterKinds() []arbiterKind {
	return []arbiterKind{
		{"roundrobin", nil},
		{"matrix", func(n int) arbiter.Arbiter { return arbiter.NewMatrix(n) }},
	}
}

// AblateArbiter compares round-robin against matrix (least recently
// served) output arbiters at a fixed uniform load. The NoX decode order
// follows grant order, so the arbiter choice is visible end to end.
func AblateArbiter(rateMBps float64, archs []router.Arch, pool *exp.Pool, shards int) []AblationPoint {
	kinds := arbiterKinds()
	out, _ := exp.Map(context.Background(), pool, len(kinds)*len(archs),
		func(_ context.Context, i int) (AblationPoint, error) {
			k := kinds[i/len(archs)]
			pt := runConfigured(archs[i%len(archs)], rateMBps, 4, k.mk, 1500, 4000, 15000, shards)
			pt.Label = k.name
			return pt, nil
		})
	return out
}

// AblateXORCost reports how the Figure 12 power comparison between
// Spec-Accurate and NoX shifts as the XOR fabric's per-traversal energy
// premium varies around §2.5's "marginally more" (our default 1.06x).
// Returned map: factor -> Spec-Accurate total power relative to NoX.
func AblateXORCost(factors []float64, rateMBps float64, pool *exp.Pool, shards int) (map[float64]float64, error) {
	base := SyntheticConfig{Pattern: "uniform", RateMBps: rateMBps,
		WarmupCycles: 1500, MeasureCycles: 4000, Shards: shards}

	archs := []router.Arch{router.SpecAccurate, router.NoX}
	runs, err := exp.Map(context.Background(), pool, len(archs),
		func(_ context.Context, i int) (RunResult, error) {
			cfg := base
			cfg.Arch = archs[i]
			return RunSynthetic(cfg)
		})
	if err != nil {
		return nil, err
	}
	return xorCostTable(factors, runs[0], runs[1]), nil
}

// xorCostTable computes the Spec-Accurate/NoX power ratio at each XOR
// premium factor from the two finished runs — shared by the serial and
// batched XOR-cost ablations.
func xorCostTable(factors []float64, sa, nox RunResult) map[float64]float64 {
	out := map[float64]float64{}
	m := power.DefaultModel()
	for _, f := range factors {
		// Recompute NoX energy with the alternative XOR premium; event
		// counts are unchanged (energy model is downstream of simulation).
		adj := m
		adj.XbarPJ = m.XbarPJ * f / power.XbarXORFactor
		e := adj.Energy(nox.Window, true)
		noxMW := e.TotalPJ() / (4000 * physical.ClockPeriodNs(router.NoX))
		out[f] = sa.PowerMW / noxMW
	}
	return out
}

// FormatAblation renders ablation points grouped by label.
func FormatAblation(title string, points []AblationPoint) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-14s %-16s %12s %12s %10s\n", "config", "architecture", "latency(ns)", "accepted", "saturated")
	for _, pt := range points {
		lat := fmt.Sprintf("%.2f", pt.MeanLatencyNs)
		if pt.Saturated {
			lat = "-"
		}
		fmt.Fprintf(&b, "%-14s %-16s %12s %9.0f MB %10v\n", pt.Label, pt.Arch, lat, pt.AcceptedMBps, pt.Saturated)
	}
	return b.String()
}
