// Package harness assembles complete experiments: it glues traffic sources
// and trace replay to networks, applies the physical timing model to
// convert cycles to nanoseconds and MB/s, applies the power model to event
// counts, and formats the paper's tables and figures.
package harness

import (
	"fmt"
	"strings"

	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/router"
)

// SystemConfig mirrors Table 1's common system parameters.
type SystemConfig struct {
	Cores            int
	Topo             noc.Topology
	ProcessorGHz     float64
	L1KB             int
	L2KB             int
	CacheLineBytes   int
	MemLatencyCycles int
	LinkBits         int
	ControlBytes     int
	DataBytes        int
	BufferDepth      int
	ChannelLengthMM  float64
	Routing          string
}

// Table1 returns the paper's configuration.
func Table1() SystemConfig {
	return SystemConfig{
		Cores:            64,
		Topo:             noc.Topology{Width: 8, Height: 8},
		ProcessorGHz:     3.0,
		L1KB:             32,
		L2KB:             256,
		CacheLineBytes:   64,
		MemLatencyCycles: 100,
		LinkBits:         64,
		ControlBytes:     8,
		DataBytes:        72,
		BufferDepth:      4,
		ChannelLengthMM:  2.0,
		Routing:          "Dimension Ordered Routing",
	}
}

// String renders the configuration as the paper's Table 1.
func (c SystemConfig) String() string {
	var b strings.Builder
	row := func(k, v string) { fmt.Fprintf(&b, "%-18s| %s\n", k, v) }
	b.WriteString("Table 1: Common System Parameters\n")
	row("Parameter", "Value")
	row("Cores", fmt.Sprint(c.Cores))
	row("Topology", fmt.Sprintf("%dx%d mesh", c.Topo.Width, c.Topo.Height))
	row("Processor", fmt.Sprintf("%gGHz in order PowerPC", c.ProcessorGHz))
	row("L1 I/D Caches", fmt.Sprintf("%dKB, 2-way set associative", c.L1KB))
	row("L2 Cache", fmt.Sprintf("%dKB, 8-way set associative", c.L2KB))
	row("Cache Line Size", fmt.Sprintf("%d-bytes", c.CacheLineBytes))
	row("Memory Latency", fmt.Sprintf("%d cycles", c.MemLatencyCycles))
	row("Interconnect", fmt.Sprintf("%d-bit request, %d-bit reply network", c.LinkBits, c.LinkBits))
	row("Packet Sizes", fmt.Sprintf("%d byte control, %d byte data", c.ControlBytes, c.DataBytes))
	row("Buffer Depth", fmt.Sprintf("%d %d-bit entries/port", c.BufferDepth, c.LinkBits))
	row("Channel Length", fmt.Sprintf("%gmm", c.ChannelLengthMM))
	row("Routing Algorithm", c.Routing)
	return b.String()
}

// FlitsPerNodeCycle converts an injection bandwidth in MB/s/node to flits
// per node per cycle for a network with the given clock period:
// MB/s * 1e6 B/s / 8 B/flit * period (s).
func FlitsPerNodeCycle(rateMBps, periodNs float64) float64 {
	return rateMBps * periodNs / 8000
}

// MBpsPerNode converts flits per node per cycle back to MB/s/node.
func MBpsPerNode(flitsPerNodeCycle, periodNs float64) float64 {
	return flitsPerNodeCycle * 8000 / periodNs
}

// RunResult captures one simulation's performance and energy outcome.
type RunResult struct {
	Arch     router.Arch
	Label    string
	Nodes    int
	PeriodNs float64

	OfferedMBps  float64
	AcceptedMBps float64

	MeanLatencyCycles float64
	MeanLatencyNs     float64
	P50LatencyNs      float64
	P95LatencyNs      float64
	P99LatencyNs      float64
	MaxLatencyNs      float64

	// Saturated reports the network could not sustain the offered load
	// (measured packets undelivered after the drain limit, or accepted
	// throughput collapsed below offered).
	Saturated bool

	DeliveredPackets int64

	Energy         power.Breakdown
	PacketEnergyPJ float64
	PowerMW        float64
	// EnergyDelay2 is the paper's figure of merit: average packet energy
	// times average packet latency squared (pJ * ns^2).
	EnergyDelay2 float64

	Window power.Counters
}

// edp2 computes the energy-delay^2 product.
func edp2(packetEnergyPJ, latencyNs float64) float64 {
	return packetEnergyPJ * latencyNs * latencyNs
}
