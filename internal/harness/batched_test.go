package harness

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/noc"
	"repro/internal/probe"
	"repro/internal/router"
)

// batchCfg is the shrunken configuration the batched equivalence suites
// run on: 4x4 system, short windows, enough traffic to exercise every
// phase (warmup boundary, measurement, drain, fast-forward tail).
func batchCfg(pattern string, rate float64, shards int) SyntheticConfig {
	cfg := fastCfg(pattern, rate)
	cfg.Topo = noc.Topology{Width: 4, Height: 4}
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 400, 1200, 8000
	cfg.Shards = shards
	return cfg
}

// TestBatchedPointMatchesSerial is the per-point equivalence gate across
// the full matrix the issue pins: all four architectures, batch widths
// {1, 2, 7, 64}, and both execution modes (serial members on the
// bit-sliced lockstep path, sharded members on the cohort fallback path).
// Every member's RunResult must equal its standalone RunSynthetic twin
// exactly (compared as formatted dumps, since NaN defeats ==).
func TestBatchedPointMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("batched equivalence matrix is slow")
	}
	for _, shards := range []int{1, 4} {
		for _, width := range []int{1, 2, 7, 64} {
			t.Run(fmt.Sprintf("shards%d/w%d", shards, width), func(t *testing.T) {
				// Vary arch, rate, and seed across members so lockstep
				// control flow genuinely diverges: different saturation,
				// different drain lengths, different RNG streams.
				cfgs := make([]SyntheticConfig, width)
				for i := range cfgs {
					cfg := batchCfg("uniform", 400+float64(i%5)*500, shards)
					cfg.Arch = router.Archs[i%len(router.Archs)]
					cfg.Seed = 0xBEEF + uint64(i)*131
					cfgs[i] = cfg
				}
				batched, errs := RunSyntheticCohort(cfgs)
				for i, err := range errs {
					if err != nil {
						t.Fatalf("member %d: %v", i, err)
					}
					serial, err := RunSynthetic(cfgs[i])
					if err != nil {
						t.Fatal(err)
					}
					got, want := fmt.Sprintf("%+v", batched[i]), fmt.Sprintf("%+v", serial)
					if got != want {
						t.Errorf("member %d (%s @ %.0f MB/s) diverged\nbatched: %s\nserial:  %s",
							i, cfgs[i].Arch, cfgs[i].RateMBps, got, want)
					}
				}
			})
		}
	}
}

// TestBatchedSweepMatchesSerial pins the end-to-end sweep contract: the
// batched speculative sweep must reproduce the serial stop-at-saturation
// output exactly, including the rendered CSV byte for byte, at several
// cohort widths and with cohorts fanned across a pool.
func TestBatchedSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("batched sweep equivalence is slow")
	}
	base := batchCfg("uniform", 0, 1)
	rates := []float64{600, 1400, 2200, 3000, 3800}

	serial, err := SweepSynthetic(base, rates, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantDump := fmt.Sprintf("%+v", serial)
	wantCSV := SweepCSV("uniform", serial)

	for _, width := range []int{1, 3, 64} {
		for _, pool := range []*exp.Pool{nil, exp.NewPool(4)} {
			points, skipped, err := SweepSyntheticBatched(base, rates, width, pool)
			if err != nil {
				t.Fatal(err)
			}
			if skipped != 0 {
				t.Errorf("w%d: %d duplicates skipped in a duplicate-free sweep", width, skipped)
			}
			if got := fmt.Sprintf("%+v", points); got != wantDump {
				t.Errorf("w%d: batched sweep diverged from serial\nbatched: %.400s\nserial:  %.400s", width, got, wantDump)
			}
			if got := SweepCSV("uniform", points); got != wantCSV {
				t.Errorf("w%d: batched sweep CSV diverged from serial\nbatched:\n%s\nserial:\n%s", width, got, wantCSV)
			}
		}
	}
}

// TestBatchedSweepDedupe checks that a rate ladder with repeated rungs is
// simulated once per distinct (arch, rate) job, reports the skip count,
// and still renders the full (duplicated) point list identically to the
// serial walk over the same ladder.
func TestBatchedSweepDedupe(t *testing.T) {
	base := batchCfg("uniform", 0, 1)
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 200, 600, 4000
	rates := []float64{500, 500, 1500}

	serial, err := SweepSynthetic(base, rates, nil)
	if err != nil {
		t.Fatal(err)
	}
	points, skipped, err := SweepSyntheticBatched(base, rates, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(router.Archs); skipped != want {
		t.Errorf("skipped = %d, want %d (one duplicated rung x all archs)", skipped, want)
	}
	if got, want := fmt.Sprintf("%+v", points), fmt.Sprintf("%+v", serial); got != want {
		t.Errorf("deduped sweep diverged from serial\nbatched: %.400s\nserial:  %.400s", got, want)
	}
}

// TestBatchedBurstyChecked arms the runtime invariant oracle on every
// member of a bursty (self-similar) cohort: the oracle inspects flit-level
// conservation and delivery, so any lockstep-introduced reordering or
// cross-member leakage fails loudly, not just statistically.
func TestBatchedBurstyChecked(t *testing.T) {
	if testing.Short() {
		t.Skip("bursty checked cohort is slow")
	}
	const width = 6
	cfgs := make([]SyntheticConfig, width)
	checkers := make([]*check.Checker, width)
	for i := range cfgs {
		cfg := batchCfg("selfsimilar", 900, 1)
		cfg.Arch = router.Archs[i%len(router.Archs)]
		cfg.Seed = 0x5EED + uint64(i)*7919
		checkers[i] = check.New(check.Config{})
		cfg.Check = checkers[i]
		cfgs[i] = cfg
	}
	results, errs := RunSyntheticCohort(cfgs)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if v := checkers[i].Violations(); len(v) != 0 {
			t.Errorf("member %d (%s): %d invariant violations, first: %v",
				i, cfgs[i].Arch, len(v), v[0])
		}
		if results[i].DeliveredPackets == 0 && !results[i].Saturated {
			t.Errorf("member %d: no packets delivered in an unsaturated bursty run", i)
		}
	}
}

// TestBatchedProbeDeterminism pins observability byte-identity: a probed
// member inside a cohort must serialize exactly the event stream, metrics,
// and samples its standalone twin does — including when members finish at
// different cycles and the probed member is parked mid-cohort.
func TestBatchedProbeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("probed cohort determinism is slow")
	}
	probedTrace := func(run func(cfg SyntheticConfig) error) string {
		pr := probe.New(probe.Config{RingEvents: 1 << 16, SampleEvery: 50})
		cfg := batchCfg("uniform", 2200, 1)
		cfg.Arch = router.NoX
		cfg.Probe = pr
		if err := run(cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := pr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	serial := probedTrace(func(cfg SyntheticConfig) error {
		_, err := RunSynthetic(cfg)
		return err
	})
	batched := probedTrace(func(cfg SyntheticConfig) error {
		// The probed member rides in slot 1 of a mixed cohort whose other
		// members run different archs/rates and finish at other cycles.
		cfgs := []SyntheticConfig{batchCfg("uniform", 600, 1), cfg, batchCfg("uniform", 3400, 1)}
		cfgs[0].Arch = router.NonSpec
		cfgs[2].Arch = router.SpecFast
		_, errs := RunSyntheticCohort(cfgs)
		return errs[1]
	})
	if serial != batched {
		t.Errorf("probed event stream diverged under batching (%d vs %d bytes)", len(batched), len(serial))
	}
}

// TestBatchedAblationsMatchSerial pins the batched ablation engines to the
// serial runConfigured outputs, cell for cell.
func TestBatchedAblationsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("batched ablation equivalence is slow")
	}
	archs := []router.Arch{router.SpecAccurate, router.NoX}

	serialDepth := AblateBufferDepth([]int{2, 4}, 900, archs, nil, 1)
	batchDepth, err := AblateBufferDepthBatched([]int{2, 4}, 900, archs, 64, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", batchDepth), fmt.Sprintf("%+v", serialDepth); got != want {
		t.Errorf("buffer-depth ablation diverged\nbatched: %s\nserial:  %s", got, want)
	}

	serialArb := AblateArbiter(900, archs, nil, 1)
	batchArb, err := AblateArbiterBatched(900, archs, 64, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", batchArb), fmt.Sprintf("%+v", serialArb); got != want {
		t.Errorf("arbiter ablation diverged\nbatched: %s\nserial:  %s", got, want)
	}

	serialXOR, err := AblateXORCost([]float64{1.0, 1.06, 1.3}, 900, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	batchXOR, err := AblateXORCostBatched([]float64{1.0, 1.06, 1.3}, 900, 1)
	if err != nil {
		t.Fatal(err)
	}
	for f, want := range serialXOR {
		if got := batchXOR[f]; got != want {
			t.Errorf("XOR-cost ablation diverged at factor %.2f: batched %v, serial %v", f, got, want)
		}
	}
}
