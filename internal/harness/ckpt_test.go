package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/router"
	"repro/internal/trace"
)

// TestWarmFileCache pins the on-disk warm-image cache: a warm-start sweep
// that persists its images must render the same CSV as the sweep that
// loads them back, the cached files must round-trip through the container
// codec, and a corrupted cache entry must fail the sweep loudly instead of
// silently recomputing (or worse, restoring garbage).
func TestWarmFileCache(t *testing.T) {
	base := fastCfg("uniform", 0)
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 600, 1200, 8000
	base.WarmStart = true
	base.WarmRateMBps = 600
	rates := []float64{600, 1400}
	dir := t.TempDir()

	save := base
	save.WarmSaveDir = dir
	ptsSave, err := SweepSynthetic(save, rates, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := SweepCSV("uniform", ptsSave)

	files, err := filepath.Glob(filepath.Join(dir, "warm-*.noxwarm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(router.Archs) {
		t.Fatalf("cache holds %d images, want one per architecture (%d)", len(files), len(router.Archs))
	}
	for _, f := range files {
		if _, err := loadWarmFile(f); err != nil {
			t.Errorf("cached image %s does not decode: %v", filepath.Base(f), err)
		}
	}

	load := base
	load.WarmLoadDir = dir
	ptsLoad, err := SweepSynthetic(load, rates, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := SweepCSV("uniform", ptsLoad); got != want {
		t.Errorf("cache-loaded sweep CSV diverged from the sweep that wrote the cache\ngot:\n%s\nwant:\n%s", got, want)
	}

	// A missing cache is a cold start; a corrupt cache is an error.
	load.WarmLoadDir = filepath.Join(dir, "no-such-dir")
	if _, err := SweepSynthetic(load, rates, nil); err != nil {
		t.Errorf("missing cache dir must fall back to computing, got %v", err)
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte("not a warm image"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	load.WarmLoadDir = dir
	if _, err := SweepSynthetic(load, rates, nil); err == nil {
		t.Error("corrupted cache restored silently, want a loud error")
	}
}

// TestAppCheckpointResume pins resumable trace replay: a replay that
// periodically checkpoints must produce the same result as one that never
// does, and a second replay restored from the surviving checkpoint must
// finish with that same result. A restore path with no checkpoint behind
// it is a cold start, not an error.
func TestAppCheckpointResume(t *testing.T) {
	w, err := trace.WorkloadByName("tpcc")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(w, Table1().Topo, 8000, 7)
	base := AppConfig{Arch: router.NoX, Trace: tr, Shards: 1}

	want := fmt.Sprintf("%+v", RunApp(base))
	path := filepath.Join(t.TempDir(), "app.noxapp")

	ckpt := base
	ckpt.CheckpointPath = path
	ckpt.CheckpointEvery = 2000
	if got := fmt.Sprintf("%+v", RunApp(ckpt)); got != want {
		t.Errorf("checkpointing replay changed its result\ngot:  %.300s\nwant: %.300s", got, want)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint survived the run: %v", err)
	}

	resume := base
	resume.RestorePath = path
	if got := fmt.Sprintf("%+v", RunApp(resume)); got != want {
		t.Errorf("resumed replay diverged from the uninterrupted one\ngot:  %.300s\nwant: %.300s", got, want)
	}

	cold := base
	cold.RestorePath = filepath.Join(t.TempDir(), "absent.noxapp")
	if got := fmt.Sprintf("%+v", RunApp(cold)); got != want {
		t.Errorf("missing checkpoint must cold-start to the same result\ngot:  %.300s\nwant: %.300s", got, want)
	}
}
