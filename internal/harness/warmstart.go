package harness

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/router"
	"repro/internal/snapshot"
	"repro/internal/snapshot/codec"
	"repro/internal/traffic"
)

// Warm-start sweeps. Every rate point of a synthetic sweep spends
// WarmupCycles filling the network before its measurement window opens;
// across a 17-rung ladder times four architectures that warm-up is most of
// the wall clock at the low end of the ladder. With WarmStart enabled the
// harness runs the warm phase once per architecture at the common
// WarmRateMBps, snapshots the complete simulation state (network image plus
// the run state around it: collector, traffic processes, destination RNG
// streams), and resumes every rate point from the copy — retargeting the
// sources to the point's own rate at the warmup boundary, exactly as the
// cold path does. Because retargeting happens on both paths at the same
// cycle with the same RNG streams, a warm-start sweep's CSV is
// byte-identical to the cold sweep's (with the same WarmRateMBps).

// ErrWarmRate reports a warm-start sweep without a warm-up rate.
var ErrWarmRate = errors.New("harness: WarmStart requires WarmRateMBps > 0")

// warmImage is one architecture's shared warm state: the network snapshot
// and the harness run state saved at the warmup boundary, before the
// boundary cycle's injection.
type warmImage struct {
	net []byte
	run []byte
}

// saveRunState serializes the member's harness-side state — everything
// outside the network that the warm phase advanced: the delivery collector,
// the per-node traffic processes (parameters, burst state, RNG positions),
// the destination RNG streams, and the measurement-window counter baseline.
func (m *synthMember) saveRunState(e *codec.Encoder) error {
	m.col.SaveState(e)
	e.Int(len(m.procs))
	for _, p := range m.procs {
		if err := traffic.SaveProcess(e, p); err != nil {
			return err
		}
	}
	for _, r := range m.dests {
		e.U64(r.State())
	}
	m.startCounters.SaveState(e)
	// A lookahead member's Tick streams are consumed ahead of the clock, up
	// to each node's pending arrival — the RNG positions alone cannot
	// reconstruct those already-drawn arrivals, so the cache travels with
	// the state.
	e.Bool(m.lookahead)
	if m.lookahead {
		for _, at := range m.arr {
			e.I64(at)
		}
	}
	return nil
}

// restoreRunState loads state saved by saveRunState into this attached
// member (attach built the process roster; restore overwrites its state).
func (m *synthMember) restoreRunState(data []byte) error {
	d := codec.NewDecoder(data)
	if err := m.col.RestoreState(d); err != nil {
		return err
	}
	n := d.Len(1 << 20)
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(m.procs) {
		return fmt.Errorf("%w: %d traffic processes, network has %d nodes", codec.ErrCorrupt, n, len(m.procs))
	}
	for _, p := range m.procs {
		if err := traffic.RestoreProcess(d, p); err != nil {
			return err
		}
	}
	for _, r := range m.dests {
		r.SetState(d.U64())
	}
	if err := m.startCounters.RestoreState(d); err != nil {
		return err
	}
	hadLookahead := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	switch {
	case hadLookahead && !m.lookahead:
		// The saver's streams ran ahead of the clock; an eager restorer
		// would re-draw Ticks the saver already consumed.
		return fmt.Errorf("%w: lookahead-saved run state restored into an eager member", codec.ErrUnsupported)
	case hadLookahead:
		for id := range m.arr {
			m.arr[id] = d.I64()
		}
		if err := d.Err(); err != nil {
			return err
		}
		m.recomputeArrMin()
	case m.lookahead:
		// Eager-saved state: the streams stand exactly at the seam, but
		// attach primed this member's arrival cache from freshly seeded
		// processes, so every cached arrival is stale. Re-prime from the
		// seam. Every save point sits before injectCycle(cyc) runs, so a
		// seam at or before the warmup boundary walls at the boundary (the
		// boundary's retarget block re-advances past it with the measurement
		// rate); only a later seam may consume post-boundary Ticks.
		cyc := m.net.Cycle()
		wall := m.total
		if cyc <= m.cfg.WarmupCycles {
			wall = m.cfg.WarmupCycles
		}
		for id := range m.arr {
			m.advanceArr(id, cyc, wall)
		}
		m.recomputeArrMin()
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after run state", codec.ErrCorrupt, d.Remaining())
	}
	return d.Err()
}

// restoreWarm rewinds this attached member to the warm image: network state
// first, then the harness run state around it.
func (m *synthMember) restoreWarm(w *warmImage) error {
	if err := snapshot.DecodeInto(w.net, m.net); err != nil {
		return err
	}
	return m.restoreRunState(w.run)
}

// warmSynthetic runs the shared warm phase for base's architecture: a run
// at WarmRateMBps, stopped at the warmup boundary (before the boundary
// cycle's injection, matching where resumed points pick up) and saved.
// Instrumentation is stripped — the warm phase is shared, so per-point
// recorders and probes would double-count it.
func warmSynthetic(base SyntheticConfig) (*warmImage, error) {
	cfg := base
	cfg.RateMBps = cfg.WarmRateMBps
	cfg.Probe = nil
	cfg.Recorder = nil
	cfg.NewRecorder = nil
	cfg.Progress = nil
	cfg.Observe = nil
	cfg.ReplayCheckpointEvery = 0
	m, err := prepareSynthetic(cfg)
	if err != nil {
		return nil, err
	}
	net, err := network.Build(m.netConfig())
	if err != nil {
		return nil, err
	}
	defer net.Close()
	m.attach(net)
	for cyc := int64(0); cyc < m.cfg.WarmupCycles; cyc++ {
		m.injectCycle(cyc)
		net.Step()
	}
	img, err := snapshot.Encode(net)
	if err != nil {
		return nil, err
	}
	e := codec.NewEncoder()
	if err := m.saveRunState(e); err != nil {
		return nil, err
	}
	return &warmImage{net: img, run: e.Bytes()}, nil
}

// resumeSynthetic runs one rate point from the warm image: restore, then
// the identical main/drain loops RunSynthetic runs from the same cycle.
func resumeSynthetic(cfg SyntheticConfig, warm *warmImage) (RunResult, error) {
	m, err := prepareSynthetic(cfg)
	if err != nil {
		return RunResult{}, err
	}
	net, err := snapshot.Decode(warm.net, m.netConfig())
	if err != nil {
		return RunResult{}, err
	}
	defer net.Close()
	m.attach(net)
	if err := m.restoreRunState(warm.run); err != nil {
		return RunResult{}, err
	}

	for cyc := net.Cycle(); cyc < m.total; cyc++ {
		m.injectCycle(cyc)
		net.Step()
		m.cfg.Progress.Tick(cyc)
	}
	m.enterDrain()
	for m.needsDrainStep() {
		net.Step()
		m.cfg.Progress.Tick(net.Cycle())
	}
	return m.finalize(), nil
}

// sweepWarm is SweepSynthetic's warm-start mode: one warm phase per
// architecture, then every point resumes from its architecture's image. The
// stop-at-saturation output is reconstructed exactly as the cold paths do,
// so the rendered CSV matches the cold sweep byte for byte. An architecture
// whose warm-up rate is already infeasible ends its series before the first
// rung, matching the cold semantics for a rate no clock can offer.
func sweepWarm(base SyntheticConfig, rates []float64, pool *exp.Pool) ([]SweepPoint, error) {
	if base.WarmRateMBps <= 0 {
		return nil, ErrWarmRate
	}
	if len(rates) == 0 {
		return nil, nil
	}
	archs := router.Archs
	warms := make([]*warmImage, len(archs))
	warmErrs := make([]error, len(archs))
	for ai, arch := range archs {
		cfg := base
		cfg.Arch = arch
		warms[ai], warmErrs[ai] = warmFor(cfg)
		if warmErrs[ai] != nil && !errors.Is(warmErrs[ai], ErrRateInfeasible) {
			return nil, warmErrs[ai]
		}
	}

	if pool.Workers() <= 1 {
		return sweepWarmSerial(base, rates, archs, warms, warmErrs)
	}
	outs, err := exp.Map(context.Background(), pool, len(rates)*len(archs),
		func(_ context.Context, i int) (pointOutcome, error) {
			ai := i % len(archs)
			if warmErrs[ai] != nil {
				return pointOutcome{err: warmErrs[ai]}, nil
			}
			cfg := base
			cfg.RateMBps = rates[i/len(archs)]
			cfg.Arch = archs[ai]
			res, err := resumeSynthetic(cfg, warms[ai])
			return pointOutcome{res, err}, nil
		})
	if err != nil {
		return nil, err
	}
	return assembleSweep(rates, archs, outs)
}

// sweepWarmSerial is sweepSerial with resumeSynthetic as the point runner.
func sweepWarmSerial(base SyntheticConfig, rates []float64, archs []router.Arch, warms []*warmImage, warmErrs []error) ([]SweepPoint, error) {
	alive := make([]bool, len(archs))
	for ai := range archs {
		alive[ai] = warmErrs[ai] == nil
	}
	var points []SweepPoint
	for _, rate := range rates {
		pt := SweepPoint{RateMBps: rate, Results: map[router.Arch]RunResult{}}
		for ai, arch := range archs {
			if !alive[ai] {
				continue
			}
			cfg := base
			cfg.Arch = arch
			cfg.RateMBps = rate
			res, err := resumeSynthetic(cfg, warms[ai])
			if err != nil {
				if errors.Is(err, ErrRateInfeasible) {
					alive[ai] = false
					continue
				}
				return nil, err
			}
			pt.Results[arch] = res
			if res.Saturated {
				alive[ai] = false
			}
		}
		points = append(points, pt)
		any := false
		for _, v := range alive {
			any = any || v
		}
		if !any {
			break
		}
	}
	return points, nil
}
