package harness

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/snapshot"
	"repro/internal/snapshot/codec"
	"repro/internal/stats"
)

// App-replay checkpoints. An application-trace replay is a multi-class
// network plus a replay cursor: the next trace event, the packet-id
// allocator, the running latency sums, and the delivery collector. The
// checkpoint container is the same one the synthetic paths use (warmImage:
// a network image plus run state), with the multi-network image in the
// network slot, so noxapp checkpoints share the file machinery and the
// atomic-overwrite behavior of noxsim's.

// appCursor is the replay state that lives outside the networks.
type appCursor struct {
	idx          int
	pktID        uint64
	latencySum   float64
	latencySqSum float64
	delivered    int64
}

// saveAppCheckpoint persists a resumable replay checkpoint. Only call
// between steps.
func saveAppCheckpoint(path string, multi *network.Multi, col *stats.Collector, cur appCursor) error {
	img, err := snapshot.EncodeMulti(multi)
	if err != nil {
		return err
	}
	e := codec.NewEncoder()
	e.Int(cur.idx)
	e.U64(cur.pktID)
	e.F64(cur.latencySum)
	e.F64(cur.latencySqSum)
	e.I64(cur.delivered)
	col.SaveState(e)
	return saveWarmFile(path, &warmImage{net: img, run: e.Bytes()})
}

// loadAppCheckpoint restores a replay checkpoint into the freshly built
// multi-network and collector, returning the replay cursor. maxIdx bounds
// the event cursor (the trace length).
func loadAppCheckpoint(path string, multi *network.Multi, col *stats.Collector, maxIdx int) (appCursor, error) {
	w, err := loadWarmFile(path)
	if err != nil {
		return appCursor{}, err
	}
	if err := snapshot.DecodeMultiInto(w.net, multi); err != nil {
		return appCursor{}, err
	}
	d := codec.NewDecoder(w.run)
	var cur appCursor
	cur.idx = d.Len(maxIdx)
	cur.pktID = d.U64()
	cur.latencySum = d.F64()
	cur.latencySqSum = d.F64()
	cur.delivered = d.I64()
	if err := d.Err(); err != nil {
		return cur, err
	}
	if cur.delivered < 0 {
		return cur, fmt.Errorf("%w: %d packets delivered", codec.ErrCorrupt, cur.delivered)
	}
	if err := col.RestoreState(d); err != nil {
		return cur, err
	}
	if d.Remaining() != 0 {
		return cur, fmt.Errorf("%w: %d trailing bytes after replay state", codec.ErrCorrupt, d.Remaining())
	}
	return cur, nil
}
