package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/exp"
	"repro/internal/noc"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/trace"
)

// TestSweepParallelDeterminism is the regression gate for the parallel
// experiment engine: a sweep fanned out over 8 workers must reproduce the
// serial stop-at-saturation output exactly — same points, same RunResult
// values (compared as formatted dumps, since NaN defeats ==), and the same
// rendered CSV byte for byte.
func TestSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism sweep is slow")
	}
	base := fastCfg("uniform", 0)
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 800, 2000, 8000
	rates := []float64{600, 1400, 2200, 3000, 3800}

	serial, err := SweepSynthetic(base, rates, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepSynthetic(base, rates, exp.NewPool(8))
	if err != nil {
		t.Fatal(err)
	}

	if got, want := fmt.Sprintf("%+v", par), fmt.Sprintf("%+v", serial); got != want {
		t.Errorf("parallel sweep diverged from serial\nparallel: %.400s\nserial:   %.400s", got, want)
	}
	if got, want := SweepCSV("uniform", par), SweepCSV("uniform", serial); got != want {
		t.Errorf("parallel sweep CSV diverged from serial\nparallel:\n%s\nserial:\n%s", got, want)
	}
}

// TestProbedRunParallelDeterminism checks that the observability layer is
// as deterministic as the simulation it watches: a set of probed runs and
// trace.Generate calls fanned out over an exp.Pool must produce the same
// event streams byte for byte at any worker count. The comparison is on the
// serialized Chrome trace (which encodes every recorded event, the ring
// drop count, and the sampler output), so any scheduling-dependent emit
// would surface as a byte diff.
func TestProbedRunParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("probed determinism fan-out is slow")
	}
	archs := []router.Arch{router.NonSpec, router.NoX}

	probedTraces := func(pool *exp.Pool) []string {
		out, err := exp.Map(context.Background(), pool, len(archs),
			func(_ context.Context, i int) (string, error) {
				pr := probe.New(probe.Config{RingEvents: 1 << 16, SampleEvery: 50})
				cfg := fastCfg("uniform", 2200)
				cfg.Arch = archs[i]
				cfg.Topo = noc.Topology{Width: 4, Height: 4}
				cfg.Probe = pr
				if _, err := RunSynthetic(cfg); err != nil {
					return "", err
				}
				var buf bytes.Buffer
				if err := pr.WriteChromeTrace(&buf); err != nil {
					return "", err
				}
				return buf.String(), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	genTraces := func(pool *exp.Pool) []string {
		out, err := exp.Map(context.Background(), pool, len(trace.Workloads),
			func(_ context.Context, i int) (string, error) {
				tr := trace.Generate(trace.Workloads[i], noc.Topology{Width: 4, Height: 4}, 20000, 0xA11CE)
				return fmt.Sprintf("%+v", tr.Events), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	serialRuns, serialGen := probedTraces(exp.NewPool(1)), genTraces(exp.NewPool(1))
	for _, workers := range []int{3, 8} {
		pool := exp.NewPool(workers)
		for i, got := range probedTraces(pool) {
			if got != serialRuns[i] {
				t.Errorf("workers=%d: probed %s event stream diverged from serial (%d vs %d bytes)",
					workers, archs[i], len(got), len(serialRuns[i]))
			}
		}
		for i, got := range genTraces(pool) {
			if got != serialGen[i] {
				t.Errorf("workers=%d: trace.Generate(%s) diverged from serial",
					workers, trace.Workloads[i].Name)
			}
		}
	}
}

// TestSweepErrorPropagation checks that a real failure (unknown pattern)
// aborts the sweep on both the serial and the parallel path, and is not
// mistaken for an end-of-series condition.
func TestSweepErrorPropagation(t *testing.T) {
	base := fastCfg("not-a-pattern", 0)
	for name, pool := range map[string]*exp.Pool{"serial": nil, "parallel": exp.NewPool(4)} {
		if _, err := SweepSynthetic(base, []float64{300, 600}, pool); err == nil {
			t.Errorf("%s: unknown pattern did not propagate", name)
		} else if errors.Is(err, ErrRateInfeasible) {
			t.Errorf("%s: real failure misclassified as infeasible rate", name)
		}
	}
}

// TestSweepInfeasibleRateEndsSeries checks that a rate beyond one flit per
// cycle is the natural end of every architecture's curve — no error, a
// trailing point with no results — identically on both paths.
func TestSweepInfeasibleRateEndsSeries(t *testing.T) {
	base := fastCfg("uniform", 0)
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 400, 1000, 6000
	rates := []float64{250, 1e7}
	for name, pool := range map[string]*exp.Pool{"serial": nil, "parallel": exp.NewPool(4)} {
		pts, err := SweepSynthetic(base, rates, pool)
		if err != nil {
			t.Fatalf("%s: infeasible rate reported as failure: %v", name, err)
		}
		if len(pts) != 2 {
			t.Fatalf("%s: got %d points, want 2", name, len(pts))
		}
		if len(pts[0].Results) == 0 {
			t.Errorf("%s: feasible point has no results", name)
		}
		if len(pts[1].Results) != 0 {
			t.Errorf("%s: infeasible point has %d results, want none", name, len(pts[1].Results))
		}
	}
}
