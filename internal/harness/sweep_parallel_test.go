package harness

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/exp"
)

// TestSweepParallelDeterminism is the regression gate for the parallel
// experiment engine: a sweep fanned out over 8 workers must reproduce the
// serial stop-at-saturation output exactly — same points, same RunResult
// values (compared as formatted dumps, since NaN defeats ==), and the same
// rendered CSV byte for byte.
func TestSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism sweep is slow")
	}
	base := fastCfg("uniform", 0)
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 800, 2000, 8000
	rates := []float64{600, 1400, 2200, 3000, 3800}

	serial, err := SweepSynthetic(base, rates, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepSynthetic(base, rates, exp.NewPool(8))
	if err != nil {
		t.Fatal(err)
	}

	if got, want := fmt.Sprintf("%+v", par), fmt.Sprintf("%+v", serial); got != want {
		t.Errorf("parallel sweep diverged from serial\nparallel: %.400s\nserial:   %.400s", got, want)
	}
	if got, want := SweepCSV("uniform", par), SweepCSV("uniform", serial); got != want {
		t.Errorf("parallel sweep CSV diverged from serial\nparallel:\n%s\nserial:\n%s", got, want)
	}
}

// TestSweepErrorPropagation checks that a real failure (unknown pattern)
// aborts the sweep on both the serial and the parallel path, and is not
// mistaken for an end-of-series condition.
func TestSweepErrorPropagation(t *testing.T) {
	base := fastCfg("not-a-pattern", 0)
	for name, pool := range map[string]*exp.Pool{"serial": nil, "parallel": exp.NewPool(4)} {
		if _, err := SweepSynthetic(base, []float64{300, 600}, pool); err == nil {
			t.Errorf("%s: unknown pattern did not propagate", name)
		} else if errors.Is(err, ErrRateInfeasible) {
			t.Errorf("%s: real failure misclassified as infeasible rate", name)
		}
	}
}

// TestSweepInfeasibleRateEndsSeries checks that a rate beyond one flit per
// cycle is the natural end of every architecture's curve — no error, a
// trailing point with no results — identically on both paths.
func TestSweepInfeasibleRateEndsSeries(t *testing.T) {
	base := fastCfg("uniform", 0)
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 400, 1000, 6000
	rates := []float64{250, 1e7}
	for name, pool := range map[string]*exp.Pool{"serial": nil, "parallel": exp.NewPool(4)} {
		pts, err := SweepSynthetic(base, rates, pool)
		if err != nil {
			t.Fatalf("%s: infeasible rate reported as failure: %v", name, err)
		}
		if len(pts) != 2 {
			t.Fatalf("%s: got %d points, want 2", name, len(pts))
		}
		if len(pts[0].Results) == 0 {
			t.Errorf("%s: feasible point has no results", name)
		}
		if len(pts[1].Results) != 0 {
			t.Errorf("%s: infeasible point has %d results, want none", name, len(pts[1].Results))
		}
	}
}
