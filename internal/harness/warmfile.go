package harness

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/snapshot"
	"repro/internal/snapshot/codec"
)

// Checkpoint files. A warm image (network snapshot plus harness run state)
// is also exactly what a resumable checkpoint needs, so one container
// serves both: noxsweep -checkpoint/-restore persists per-architecture warm
// images across invocations, and noxsim -checkpoint/-restore saves periodic
// mid-run checkpoints and resumes from them. The container is a codec
// stream with its own magic/version so a harness checkpoint is never
// mistaken for a bare network snapshot (or vice versa).

const (
	ckptMagic   uint64 = 0x4e4f58434b505431 // "NOXCKPT1"
	ckptVersion uint64 = 1
)

// encodeWarmFile renders the checkpoint container.
func encodeWarmFile(w *warmImage) []byte {
	e := codec.NewEncoder()
	e.U64(ckptMagic)
	e.U64(ckptVersion)
	e.String(string(w.net))
	e.String(string(w.run))
	return e.Bytes()
}

// decodeWarmFile parses a checkpoint container, validating the embedded
// network image's header so corrupt files fail here rather than deep inside
// a member restore.
func decodeWarmFile(data []byte) (*warmImage, error) {
	d := codec.NewDecoder(data)
	if m := d.U64(); d.Err() == nil && m != ckptMagic {
		return nil, fmt.Errorf("%w: bad checkpoint magic %#x", codec.ErrCorrupt, m)
	}
	if v := d.U64(); d.Err() == nil && v != ckptVersion {
		return nil, fmt.Errorf("%w: checkpoint version %d, this build reads %d", codec.ErrVersion, v, ckptVersion)
	}
	netImg := d.String()
	runImg := d.String()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after checkpoint", codec.ErrCorrupt, d.Remaining())
	}
	if _, err := snapshot.Inspect([]byte(netImg)); err != nil {
		return nil, err
	}
	return &warmImage{net: []byte(netImg), run: []byte(runImg)}, nil
}

// saveWarmFile writes the checkpoint atomically (temp file plus rename), so
// a run killed mid-write never leaves a truncated checkpoint behind.
func saveWarmFile(path string, w *warmImage) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, encodeWarmFile(w), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadWarmFile reads and parses a checkpoint file.
func loadWarmFile(path string) (*warmImage, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeWarmFile(data)
}

// warmFileName names one architecture's cached warm image. Every parameter
// the warm state depends on is pinned in the name — pattern, architecture,
// topology, buffer depth, packet length, seed, warm-up window and rate — so
// a sweep with different parameters misses the cache instead of restoring
// the wrong state. Execution mode (shards, batch width) is deliberately
// absent: results are bit-identical across modes, so images are shared.
func warmFileName(cfg SyntheticConfig) string {
	return fmt.Sprintf("warm-%s-%s-%dx%d-b%d-f%d-s%x-w%d-r%g.noxwarm",
		cfg.Pattern, cfg.Arch, cfg.Topo.Width, cfg.Topo.Height,
		cfg.BufferDepth, cfg.PacketFlits, cfg.Seed, cfg.WarmupCycles, cfg.WarmRateMBps)
}

// warmFor produces base's architecture's warm image, consulting the file
// cache: with WarmLoadDir set, a cached image is restored instead of
// re-running the warm phase (a missing file falls back to warming; a
// corrupt one is a loud error). With WarmSaveDir set, a freshly computed
// image is persisted for the next invocation.
func warmFor(base SyntheticConfig) (*warmImage, error) {
	name := ""
	if base.WarmLoadDir != "" || base.WarmSaveDir != "" {
		filled := base
		filled.fill()
		name = warmFileName(filled)
	}
	if base.WarmLoadDir != "" {
		w, err := loadWarmFile(filepath.Join(base.WarmLoadDir, name))
		if err == nil {
			return w, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("harness: warm cache %s: %w", name, err)
		}
	}
	w, err := warmSynthetic(base)
	if err != nil {
		return nil, err
	}
	if base.WarmSaveDir != "" {
		if err := saveWarmFile(filepath.Join(base.WarmSaveDir, name), w); err != nil {
			return nil, fmt.Errorf("harness: warm cache: %w", err)
		}
	}
	return w, nil
}

// checkpointToFile persists the member's complete state to the configured
// checkpoint path (noxsim -checkpoint). Failures disable further attempts
// and report once rather than erroring every period.
func (m *synthMember) checkpointToFile() {
	img, err := snapshot.Encode(m.net)
	if err == nil {
		e := codec.NewEncoder()
		if err = m.saveRunState(e); err == nil {
			err = saveWarmFile(m.cfg.CheckpointPath, &warmImage{net: img, run: e.Bytes()})
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "harness: checkpoint:", err)
		m.cfg.CheckpointEvery = 0
	}
}
