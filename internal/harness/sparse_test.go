package harness

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/physical"
	"repro/internal/probe"
	"repro/internal/router"
)

// Sparse-regime equivalence suite: the event-horizon kernel (next-wake
// scheduling, port-granular dirty evaluation, harness arrival lookahead,
// idle fast-forward) is a performance mode only — at light load, where it
// earns its speedup, every observable byte must match the eager kernel
// that evaluates every component every cycle. The rates here sit at
// roughly 1% and 5% of per-node saturation bandwidth, the regime where
// almost every cycle is quiescent for almost every component.

var sparseRates = []float64{40, 200}

// sparseCfg is a light-load point with a measurement window long enough to
// cross many park/wake transitions.
func sparseCfg(pattern string, rate float64) SyntheticConfig {
	return SyntheticConfig{
		Pattern:       pattern,
		RateMBps:      rate,
		WarmupCycles:  1000,
		MeasureCycles: 3000,
		DrainCycles:   12000,
	}
}

// sparseRun executes one probed, checked run and returns its three
// comparable byte surfaces: the RunResult dump plus rendered CSV row, the
// complete Chrome probe trace, and the invariant checker's report.
func sparseRun(t *testing.T, cfg SyntheticConfig) (results, trace, report string) {
	t.Helper()
	cfg.Probe = probe.New(probe.Config{RingEvents: 1 << 20, PeriodNs: physical.ClockPeriodNs(cfg.Arch)})
	cfg.Check = check.New(check.Config{})
	res, err := RunSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tb, rb bytes.Buffer
	if err := cfg.Probe.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	cfg.Check.WriteReport(&rb)
	csv := SweepCSV(cfg.Pattern, []SweepPoint{{
		RateMBps: cfg.RateMBps,
		Results:  map[router.Arch]RunResult{cfg.Arch: res},
	}})
	return fmt.Sprintf("%+v", res) + "\n" + csv, tb.String(), rb.String()
}

// TestSparseEquivalenceSerialSharded pins byte-identity between the eager
// kernel (Eager harness + AlwaysActive network: no lookahead, no parking,
// no dirty masks consulted) and the event-horizon fast path, for every
// architecture at shard counts 1 and 4 and both sparse rates — RunResult,
// rendered CSV, full probe trace, and checker report.
func TestSparseEquivalenceSerialSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("sparse equivalence matrix is slow")
	}
	for _, arch := range router.Archs {
		for _, shards := range []int{1, 4} {
			for _, rate := range sparseRates {
				arch, shards, rate := arch, shards, rate
				t.Run(fmt.Sprintf("%s/shards%d/rate%g", arch, shards, rate), func(t *testing.T) {
					t.Parallel()
					cfg := sparseCfg("uniform", rate)
					cfg.Arch = arch
					cfg.Shards = shards

					ref := cfg
					ref.Eager = true
					ref.AlwaysActive = true
					wantRes, wantTrace, wantReport := sparseRun(t, ref)
					gotRes, gotTrace, gotReport := sparseRun(t, cfg)

					if gotRes != wantRes {
						t.Errorf("results diverged from eager kernel\ngot:\n%s\nwant:\n%s", gotRes, wantRes)
					}
					if gotTrace != wantTrace {
						t.Errorf("probe trace diverged from eager kernel (%d vs %d bytes)", len(gotTrace), len(wantTrace))
					}
					if gotReport != wantReport {
						t.Errorf("checker report diverged from eager kernel\ngot:\n%s\nwant:\n%s", gotReport, wantReport)
					}
				})
			}
		}
	}
}

// TestSparseEquivalenceBatched pins the batched lockstep kernel at cohort
// widths 1 and 8 against the eager serial sweep over the same sparse
// rates: same points, same RunResults, same rendered CSV.
func TestSparseEquivalenceBatched(t *testing.T) {
	if testing.Short() {
		t.Skip("sparse batched equivalence is slow")
	}
	base := sparseCfg("uniform", 0)

	ref := base
	ref.Eager = true
	ref.AlwaysActive = true
	cold, err := SweepSynthetic(ref, sparseRates, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := SweepCSV("uniform", cold)
	wantDump := fmt.Sprintf("%+v", cold)

	for _, width := range []int{1, 8} {
		width := width
		t.Run(fmt.Sprintf("width%d", width), func(t *testing.T) {
			pts, _, err := SweepSyntheticBatched(base, sparseRates, width, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := SweepCSV("uniform", pts); got != wantCSV {
				t.Errorf("batched sparse sweep CSV diverged from eager\ngot:\n%s\nwant:\n%s", got, wantCSV)
			}
			if got := fmt.Sprintf("%+v", pts); got != wantDump {
				t.Errorf("batched sparse results diverged from eager\ngot: %.400s\nwant: %.400s", got, wantDump)
			}
		})
	}
}

// TestSparseEquivalenceBursty covers the time-varying source the uniform
// matrix cannot: Pareto-burst (self-similar) traffic alternates dense
// bursts with long quiescent gaps, crossing the park/wake edge and the
// idle fast-forward on every gap.
func TestSparseEquivalenceBursty(t *testing.T) {
	if testing.Short() {
		t.Skip("sparse bursty equivalence is slow")
	}
	for _, arch := range []router.Arch{router.NoX, router.NonSpec} {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			t.Parallel()
			cfg := sparseCfg("selfsimilar", 120)
			cfg.Arch = arch

			ref := cfg
			ref.Eager = true
			ref.AlwaysActive = true
			wantRes, wantTrace, wantReport := sparseRun(t, ref)
			gotRes, gotTrace, gotReport := sparseRun(t, cfg)

			if gotRes != wantRes {
				t.Errorf("bursty results diverged from eager kernel\ngot:\n%s\nwant:\n%s", gotRes, wantRes)
			}
			if gotTrace != wantTrace {
				t.Errorf("bursty probe trace diverged from eager kernel (%d vs %d bytes)", len(gotTrace), len(wantTrace))
			}
			if gotReport != wantReport {
				t.Errorf("bursty checker report diverged\ngot:\n%s\nwant:\n%s", gotReport, wantReport)
			}
		})
	}
}

// benchSparseRun is the shared body of the sparse microbenches: one full
// synthetic run per iteration.
func benchSparseRun(b *testing.B, cfg SyntheticConfig) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunSynthetic(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparseFSMWait measures the FSM-wait regime on NoX: at ~2% load
// the output FSMs spend nearly every cycle idle between flits, so the
// event-horizon kernel parks the routers while the eager reference walks
// all of them every cycle.
func BenchmarkSparseFSMWait(b *testing.B) {
	for _, mode := range []struct {
		name  string
		eager bool
	}{{"eager", true}, {"event", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := sparseCfg("uniform", 80)
			cfg.Arch = router.NoX
			cfg.MeasureCycles = 20000
			cfg.Eager = mode.eager
			cfg.AlwaysActive = mode.eager
			benchSparseRun(b, cfg)
		})
	}
}

// BenchmarkSparseBurstyGap measures the bursty-gap regime: self-similar
// sources inject dense Pareto bursts separated by long OFF gaps the
// event-horizon kernel fast-forwards through.
func BenchmarkSparseBurstyGap(b *testing.B) {
	for _, mode := range []struct {
		name  string
		eager bool
	}{{"eager", true}, {"event", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := sparseCfg("selfsimilar", 120)
			cfg.Arch = router.NoX
			cfg.MeasureCycles = 20000
			cfg.Eager = mode.eager
			cfg.AlwaysActive = mode.eager
			benchSparseRun(b, cfg)
		})
	}
}
