package harness

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/trace"
)

// shardCounts are the worker-pool sizes the invariance suite sweeps,
// matching the network-level equivalence tests: serial, even splits, an
// uneven 7, and one shard per router on the 4x4 mesh.
var shardCounts = []int{1, 2, 4, 7, 16}

// TestShardInvarianceSweepCSV is the experiment-surface half of the
// bit-exactness contract: a full latency/energy sweep must render to a
// byte-identical CSV at every shard count — same latencies, same power
// counters, same saturation verdicts, for all four architectures.
func TestShardInvarianceSweepCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("shard invariance sweep is slow")
	}
	sweep := func(shards int) string {
		base := SyntheticConfig{
			Topo:          noc.Topology{Width: 4, Height: 4},
			Pattern:       "uniform",
			WarmupCycles:  600,
			MeasureCycles: 1500,
			DrainCycles:   8000,
			Seed:          0x51AD,
			Shards:        shards,
		}
		points, err := SweepSynthetic(base, []float64{800, 2000}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return SweepCSV("uniform", points)
	}
	want := sweep(shardCounts[0])
	if len(want) == 0 {
		t.Fatal("reference sweep produced an empty CSV")
	}
	for _, shards := range shardCounts[1:] {
		if got := sweep(shards); got != want {
			t.Errorf("shards=%d: sweep CSV not byte-identical (%d vs %d bytes)", shards, len(got), len(want))
		}
	}
}

// TestShardInvarianceAppTrace replays one application trace at every shard
// count and requires byte-identical AppCSV output — delivered counts,
// latencies, energies, and ED^2 all exact.
func TestShardInvarianceAppTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("shard invariance replay is slow")
	}
	w, err := trace.WorkloadByName("tpcc")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(w, Table1().Topo, 6000, 42)
	replay := func(shards int) string {
		res := map[router.Arch]AppResult{
			router.NoX: RunApp(AppConfig{Arch: router.NoX, Trace: tr, Shards: shards}),
		}
		return AppCSV([]map[router.Arch]AppResult{res})
	}
	want := replay(shardCounts[0])
	for _, shards := range shardCounts[1:] {
		if got := replay(shards); got != want {
			t.Errorf("shards=%d: app CSV not byte-identical\n got: %s\nwant: %s", shards, got, want)
		}
	}
}

// TestFutureLargeMeshPoint smoke-tests the new large-mesh study points end
// to end at low load: a sharded 16x16 run must complete, stay unsaturated,
// and agree exactly with its own serial execution.
func TestFutureLargeMeshPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("large-mesh point is slow")
	}
	run := func(shards int) RunResult {
		res, err := RunFuture(FutureConfig{
			Kind:          Mesh16x16,
			Arch:          router.NoX,
			RateMBps:      300,
			WarmupCycles:  300,
			MeasureCycles: 800,
			DrainCycles:   6000,
			Shards:        shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	if serial.Nodes != 256 {
		t.Fatalf("Mesh16x16 has %d nodes, want 256", serial.Nodes)
	}
	if serial.Saturated {
		t.Error("16x16 mesh saturated at 300 MB/s/core")
	}
	if sharded := run(4); sharded != serial {
		t.Errorf("sharded 16x16 run diverged from serial\nsharded: %+v\nserial:  %+v", sharded, serial)
	}
}

// TestParseSystemKinds pins the -systems flag grammar.
func TestParseSystemKinds(t *testing.T) {
	kinds, err := ParseSystemKinds("mesh8x8, CMesh4x4,mesh16x16,mesh32x32")
	if err != nil {
		t.Fatal(err)
	}
	want := []SystemKind{Mesh8x8, CMesh4x4, Mesh16x16, Mesh32x32}
	if len(kinds) != len(want) {
		t.Fatalf("got %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("got %v, want %v", kinds, want)
		}
	}
	if _, err := ParseSystemKinds("mesh9x9"); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := ParseSystemKinds(""); err == nil {
		t.Error("empty system list accepted")
	}
}
