package harness

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/router"
	"repro/internal/trace"
)

// fastCfg keeps shape tests quick while staying on the paper's 8x8 system.
func fastCfg(pattern string, rate float64) SyntheticConfig {
	return SyntheticConfig{
		Pattern:       pattern,
		RateMBps:      rate,
		WarmupCycles:  1000,
		MeasureCycles: 3000,
		DrainCycles:   12000,
	}
}

// TestLowLoadLatencyOrdering checks Figure 8's low-injection regime: in
// absolute time the clock-period order rules — SpecFast < SpecAccurate <
// NoX < NonSpec. The rate sits below the paper's first crossover
// (Spec-Fast cedes to Spec-Accurate at 575 MB/s/node).
func TestLowLoadLatencyOrdering(t *testing.T) {
	lat := map[router.Arch]float64{}
	for _, arch := range router.Archs {
		cfg := fastCfg("uniform", 250)
		cfg.Arch = arch
		res, err := RunSynthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Saturated {
			t.Fatalf("%v saturated at 250 MB/s/node", arch)
		}
		lat[arch] = res.MeanLatencyNs
	}
	if !(lat[router.SpecFast] < lat[router.SpecAccurate] &&
		lat[router.SpecAccurate] < lat[router.NoX] &&
		lat[router.NoX] < lat[router.NonSpec]) {
		t.Errorf("low-load latency ordering violated: %v", lat)
	}
}

// TestSaturationOrdering checks Figure 8a's high-injection regime on
// uniform traffic: NoX sustains the highest absolute bandwidth, Spec-Fast
// by far the lowest (§5.1).
func TestSaturationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep is slow")
	}
	base := fastCfg("uniform", 0)
	base.MeasureCycles = 4000
	pts, err := SweepSynthetic(base, []float64{1000, 1400, 1800, 2200, 2600, 3000, 3400}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sat := SaturationMBps(pts)
	if !(sat[router.NoX] > sat[router.NonSpec] &&
		sat[router.NonSpec] > sat[router.SpecAccurate] &&
		sat[router.SpecAccurate] > sat[router.SpecFast]) {
		t.Errorf("saturation ordering violated: %v", sat)
	}
	// §5.1: Spec-Fast "frequently saturates at less than half the
	// bandwidth" — allow up to 60% here.
	if sat[router.SpecFast] > 0.62*sat[router.NoX] {
		t.Errorf("Spec-Fast saturation %v too close to NoX %v", sat[router.SpecFast], sat[router.NoX])
	}
}

// TestFigure12PowerShape checks the §5.3 power claims at 2 GB/s/node
// uniform: the channel dominates (~74%), the non-speculative router draws
// the least, and Spec-Accurate draws more than NoX.
func TestFigure12PowerShape(t *testing.T) {
	res := map[router.Arch]RunResult{}
	for _, arch := range []router.Arch{router.NonSpec, router.SpecAccurate, router.NoX} {
		cfg := fastCfg("uniform", 2000)
		cfg.Arch = arch
		r, err := RunSynthetic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Saturated {
			t.Fatalf("%v saturated at 2 GB/s/node", arch)
		}
		res[arch] = r
	}
	for arch, r := range res {
		if share := r.Energy.LinkShare(); share < 0.62 || share > 0.82 {
			t.Errorf("%v link power share %.2f outside Fig. 12's neighborhood", arch, share)
		}
	}
	if !(res[router.NonSpec].PowerMW < res[router.NoX].PowerMW) {
		t.Error("non-speculative router should draw the least power")
	}
	if !(res[router.SpecAccurate].PowerMW > res[router.NoX].PowerMW) {
		t.Error("Spec-Accurate should draw more power than NoX (misspeculated link drives)")
	}
}

// TestRunSyntheticValidation checks error paths.
func TestRunSyntheticValidation(t *testing.T) {
	cfg := fastCfg("uniform", 1e9)
	cfg.Arch = router.NoX
	if _, err := RunSynthetic(cfg); err == nil {
		t.Error("impossible rate accepted")
	}
	cfg = fastCfg("not-a-pattern", 500)
	if _, err := RunSynthetic(cfg); err == nil {
		t.Error("unknown pattern accepted")
	}
}

// TestSweepStopsAfterSaturation verifies an architecture's series ends at
// its first saturated point.
func TestSweepStopsAfterSaturation(t *testing.T) {
	base := fastCfg("uniform", 0)
	base.MeasureCycles = 2000
	pts, err := SweepSynthetic(base, []float64{1500, 2300, 3100, 3900}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seenSaturated := false
	for _, pt := range pts {
		r, ok := pt.Results[router.SpecFast]
		if seenSaturated && ok {
			t.Error("Spec-Fast series continued past saturation")
		}
		if ok && r.Saturated {
			seenSaturated = true
		}
	}
	if !seenSaturated {
		t.Error("Spec-Fast never saturated by 3.9 GB/s/node")
	}
}

// TestConversionRoundTrip property-checks the MB/s <-> flits/cycle
// conversions.
func TestConversionRoundTrip(t *testing.T) {
	f := func(rateRaw uint16, archRaw uint8) bool {
		rate := float64(rateRaw%5000) + 1
		period := []float64{0.92, 0.69, 0.72, 0.76}[archRaw%4]
		back := MBpsPerNode(FlitsPerNodeCycle(rate, period), period)
		return math.Abs(back-rate) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFlitsPerNodeCycleKnown pins the §5.1 saturation point: 2775 MB/s/node
// at NoX's 0.76 ns clock is ~0.264 flits/node/cycle.
func TestFlitsPerNodeCycleKnown(t *testing.T) {
	got := FlitsPerNodeCycle(2775, 0.76)
	if math.Abs(got-0.2636) > 0.001 {
		t.Errorf("FlitsPerNodeCycle(2775, 0.76) = %v, want ~0.2636", got)
	}
}

// TestRunAppShape replays one short application trace on all architectures
// and checks delivery, determinism, and the Figure 10/11 ordering claims
// that are robust at small scale (NoX beats NonSpec on both latency and
// ED^2).
func TestRunAppShape(t *testing.T) {
	w, err := trace.WorkloadByName("tpcc")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(w, Table1().Topo, 8000, 99)
	results := RunAppAllArchs(tr, 4, nil, 0, Telemetry{}, AppCheckpoint{})
	for arch, r := range results {
		if !r.Drained {
			t.Fatalf("%v did not drain the trace", arch)
		}
		if r.DeliveredPkts != results[router.NoX].DeliveredPkts {
			t.Fatalf("%v delivered %d packets, NoX %d (same trace!)", arch, r.DeliveredPkts, results[router.NoX].DeliveredPkts)
		}
	}
	if !(results[router.NoX].MeanLatencyNs < results[router.NonSpec].MeanLatencyNs) {
		t.Error("NoX should beat the non-speculative router's application latency")
	}
	if !(results[router.NoX].EnergyDelay2 < results[router.NonSpec].EnergyDelay2) {
		t.Error("NoX should beat the non-speculative router's ED^2")
	}
	if !(results[router.NoX].EnergyDelay2 < results[router.SpecFast].EnergyDelay2) {
		t.Error("NoX should beat Spec-Fast's ED^2")
	}

	// Determinism: replaying the identical trace reproduces the result.
	again := RunApp(AppConfig{Arch: router.NoX, Trace: tr, BufferDepth: 4})
	if again.MeanLatencyNs != results[router.NoX].MeanLatencyNs {
		t.Error("application replay is not deterministic")
	}
}

// TestGeoMeanImprovement checks the aggregation arithmetic.
func TestGeoMeanImprovement(t *testing.T) {
	mk := func(nox, ns float64) map[router.Arch]AppResult {
		return map[router.Arch]AppResult{
			router.NoX:     {EnergyDelay2: nox},
			router.NonSpec: {EnergyDelay2: ns},
		}
	}
	imp := GeoMeanImprovement([]map[router.Arch]AppResult{mk(50, 100), mk(100, 100)})
	if math.Abs(imp[router.NonSpec]-0.25) > 1e-12 {
		t.Errorf("improvement = %v, want 0.25", imp[router.NonSpec])
	}
}

// TestTable1Format checks the Table 1 renderer includes every parameter.
func TestTable1Format(t *testing.T) {
	s := Table1().String()
	for _, want := range []string{"8x8 mesh", "3GHz", "100 cycles", "8 byte control, 72 byte data", "4 64-bit entries/port", "2mm", "Dimension Ordered"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, s)
		}
	}
}

// TestTable2Format checks the Table 2 renderer reproduces the published
// periods and speedups.
func TestTable2Format(t *testing.T) {
	s := FormatTable2()
	for _, want := range []string{"0.92 ns", "0.69 ns", "0.72 ns", "0.76 ns", "+33.3%", "+27.8%", "+21.1%"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, s)
		}
	}
}

// TestFloorplanFormat checks the Figure 13 renderer.
func TestFloorplanFormat(t *testing.T) {
	s := FormatFloorplan()
	for _, want := range []string{"28.2", "17.2%"} {
		if !strings.Contains(s, want) {
			t.Errorf("floorplan output missing %q:\n%s", want, s)
		}
	}
}

// TestSyntheticDeterminism verifies identical configs give identical
// results.
func TestSyntheticDeterminism(t *testing.T) {
	cfg := fastCfg("transpose", 400)
	cfg.Arch = router.NoX
	a, err := RunSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RunSynthetic(cfg)
	if a.MeanLatencyNs != b.MeanLatencyNs || a.Window != b.Window {
		t.Error("synthetic run is not deterministic")
	}
}

// TestSelfSimilarRun exercises the Pareto process end to end.
func TestSelfSimilarRun(t *testing.T) {
	cfg := fastCfg("selfsimilar", 500)
	cfg.Arch = router.NoX
	res, err := RunSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Error("self-similar at 500 MB/s/node should be sustainable")
	}
	if res.DeliveredPackets == 0 {
		t.Error("no traffic delivered")
	}
}

// TestMultiFlitSynthetic exercises 9-flit packets through the synthetic
// harness (abort paths on NoX).
func TestMultiFlitSynthetic(t *testing.T) {
	cfg := fastCfg("uniform", 900)
	cfg.Arch = router.NoX
	cfg.PacketFlits = 9
	res, err := RunSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Error("9-flit uniform at 900 MB/s/node should be sustainable")
	}
	if res.Window.Aborts == 0 {
		t.Error("multi-flit traffic should trigger NoX aborts")
	}
}

// TestCSVExports checks the machine-readable exports carry one row per
// result with the right headers.
func TestCSVExports(t *testing.T) {
	pts := []SweepPoint{{
		RateMBps: 500,
		Results: map[router.Arch]RunResult{
			router.NoX:     {Arch: router.NoX, OfferedMBps: 500, AcceptedMBps: 499, MeanLatencyNs: 6.0},
			router.NonSpec: {Arch: router.NonSpec, OfferedMBps: 500, AcceptedMBps: 498, MeanLatencyNs: 7.0},
		},
	}}
	csv := SweepCSV("uniform", pts)
	if !strings.HasPrefix(csv, "pattern,rate_mbps_per_node,architecture,") {
		t.Errorf("sweep CSV header wrong: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if got := strings.Count(csv, "\n"); got != 3 {
		t.Errorf("sweep CSV rows = %d, want 3 (header + 2)", got)
	}
	app := AppCSV([]map[router.Arch]AppResult{{
		router.NoX: {Workload: "tpcc", Arch: router.NoX, MeanLatencyNs: 17},
	}})
	if !strings.Contains(app, "tpcc,NoX,17.0000") {
		t.Errorf("app CSV missing row: %s", app)
	}
}

// TestFutureStudyHypothesis runs a reduced §8 future-work comparison and
// checks its headline: NoX's standing against Spec-Accurate improves on
// the radix-8 concentrated mesh relative to the baseline mesh (fixed
// decode cost + more convergent collisions per output).
func TestFutureStudyHypothesis(t *testing.T) {
	if testing.Short() {
		t.Skip("future study is slow")
	}
	st, err := RunFutureStudy([]float64{500}, "uniform", 0xF07E, nil)
	if err != nil {
		t.Fatal(err)
	}
	meshGap, ok1 := st.NoXGapVsSpecAccurate(Mesh8x8, 500)
	cmeshGap, ok2 := st.NoXGapVsSpecAccurate(CMesh4x4, 500)
	if !ok1 || !ok2 {
		t.Fatal("study points missing or saturated")
	}
	if cmeshGap >= meshGap {
		t.Errorf("NoX/SpecAcc latency ratio should improve on CMesh: mesh %.3f, cmesh %.3f", meshGap, cmeshGap)
	}
	// The clock-penalty component alone must shrink (physical model).
	if CMesh4x4.Datapath().NoXPenaltyVsSpecAccurate() >= Mesh8x8.Datapath().NoXPenaltyVsSpecAccurate() {
		t.Error("CMesh clock penalty should be smaller")
	}
}

// TestRunFutureValidation checks the error path and kind plumbing.
func TestRunFutureValidation(t *testing.T) {
	if _, err := RunFuture(FutureConfig{Kind: CMesh4x4, Arch: router.NoX, RateMBps: 1e9}); err == nil {
		t.Error("impossible rate accepted")
	}
	if Mesh8x8.System().Cores() != 64 || CMesh4x4.System().Cores() != 64 {
		t.Error("both organizations must host 64 cores")
	}
	if CMesh4x4.System().Ports() != 8 {
		t.Error("CMesh routers must be radix 8")
	}
	if CMesh4x4.EnergyModel().LinkPJ != 2*Mesh8x8.EnergyModel().LinkPJ {
		t.Error("CMesh channel energy should double")
	}
}
