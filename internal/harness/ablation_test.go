package harness

import (
	"strings"
	"testing"

	"repro/internal/router"
)

// TestAblateBufferDepthShape checks the headline ablation finding: with
// minimal (2-deep) buffers NoX degrades far less than Spec-Accurate,
// because freeing the winner's slot during the collision cycle (plus the
// decode register's extra slot) relieves the credit loop.
func TestAblateBufferDepthShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	pts := AblateBufferDepth([]int{2, 4}, 2000, []router.Arch{router.SpecAccurate, router.NoX}, nil, 0)
	byKey := map[string]AblationPoint{}
	for _, pt := range pts {
		byKey[pt.Label+"/"+pt.Arch.String()] = pt
	}
	noxPenalty := byKey["depth=2/NoX"].MeanLatencyNs / byKey["depth=4/NoX"].MeanLatencyNs
	saPenalty := byKey["depth=2/Spec-Accurate"].MeanLatencyNs / byKey["depth=4/Spec-Accurate"].MeanLatencyNs
	if noxPenalty >= saPenalty {
		t.Errorf("NoX depth-2 penalty %.3fx should be below Spec-Accurate's %.3fx", noxPenalty, saPenalty)
	}
	if byKey["depth=2/NoX"].Saturated {
		t.Error("NoX should sustain 2 GB/s/node even with 2-deep buffers")
	}
}

// TestAblateArbiterFunctional checks both arbiter kinds sustain the load
// with comparable latency (the choice is not load-bearing).
func TestAblateArbiterFunctional(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	pts := AblateArbiter(1500, []router.Arch{router.NoX}, nil, 0)
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Saturated {
			t.Errorf("%s saturated at 1.5 GB/s/node", pt.Label)
		}
	}
	ratio := pts[0].MeanLatencyNs / pts[1].MeanLatencyNs
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("arbiter choice moved latency by %.2fx; expected near-parity", ratio)
	}
}

// TestAblateXORCostMonotonic checks the sensitivity study: raising the XOR
// premium monotonically erodes (but at 1.25x does not reverse) NoX's power
// advantage over Spec-Accurate.
func TestAblateXORCostMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	rel, err := AblateXORCost([]float64{1.0, 1.06, 1.25}, 2000, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(rel[1.0] > rel[1.06] && rel[1.06] > rel[1.25]) {
		t.Errorf("XOR-cost sensitivity not monotonic: %v", rel)
	}
	if rel[1.25] <= 1.0 {
		t.Errorf("power advantage should survive a 1.25x XOR premium, got %v", rel[1.25])
	}
}

// TestFormatAblation checks the renderer.
func TestFormatAblation(t *testing.T) {
	s := FormatAblation("title", []AblationPoint{
		{Label: "depth=2", Arch: router.NoX, MeanLatencyNs: 7.5, AcceptedMBps: 1999},
		{Label: "depth=2", Arch: router.SpecAccurate, Saturated: true},
	})
	for _, want := range []string{"title", "depth=2", "NoX", "7.50", "true"} {
		if !strings.Contains(s, want) {
			t.Errorf("ablation output missing %q:\n%s", want, s)
		}
	}
}
