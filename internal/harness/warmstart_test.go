package harness

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/snapshot"
	"repro/internal/snapshot/codec"
	"repro/internal/telemetry"
)

// TestWarmStartSweepMatchesCold is the warm-start contract: a sweep that
// warms once per architecture and forks every rate point from the copy must
// render exactly the CSV the cold sweep renders — serial, speculative
// parallel, and batched at widths 1 and 8.
func TestWarmStartSweepMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("warm-start equivalence sweep is slow")
	}
	base := fastCfg("uniform", 0)
	base.WarmupCycles, base.MeasureCycles, base.DrainCycles = 800, 2000, 8000
	base.WarmRateMBps = 600
	rates := []float64{600, 1800, 3000, 3800}

	cold, err := SweepSynthetic(base, rates, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := SweepCSV("uniform", cold)

	warm := base
	warm.WarmStart = true
	runs := []struct {
		name string
		run  func() ([]SweepPoint, error)
	}{
		{"serial", func() ([]SweepPoint, error) { return SweepSynthetic(warm, rates, nil) }},
		{"parallel", func() ([]SweepPoint, error) { return SweepSynthetic(warm, rates, exp.NewPool(4)) }},
		{"batched-width1", func() ([]SweepPoint, error) {
			pts, _, err := SweepSyntheticBatched(warm, rates, 1, nil)
			return pts, err
		}},
		{"batched-width8", func() ([]SweepPoint, error) {
			pts, _, err := SweepSyntheticBatched(warm, rates, 8, exp.NewPool(2))
			return pts, err
		}},
	}
	for _, tc := range runs {
		pts, err := tc.run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := SweepCSV("uniform", pts); got != want {
			t.Errorf("%s warm-start sweep CSV diverged from cold\nwarm:\n%s\ncold:\n%s", tc.name, got, want)
		}
		if got, wantDump := fmt.Sprintf("%+v", pts), fmt.Sprintf("%+v", cold); got != wantDump {
			t.Errorf("%s warm-start results diverged from cold\nwarm: %.400s\ncold: %.400s", tc.name, got, wantDump)
		}
	}
}

// TestWarmStartRequiresRate pins the misconfiguration error on both sweep
// engines.
func TestWarmStartRequiresRate(t *testing.T) {
	base := fastCfg("uniform", 0)
	base.WarmStart = true
	if _, err := SweepSynthetic(base, []float64{600}, nil); err != ErrWarmRate {
		t.Errorf("SweepSynthetic: err = %v, want ErrWarmRate", err)
	}
	if _, _, err := SweepSyntheticBatched(base, []float64{600}, 4, nil); err != ErrWarmRate {
		t.Errorf("SweepSyntheticBatched: err = %v, want ErrWarmRate", err)
	}
}

// instrumentedOut is one fully instrumented run's comparable output: the
// rendered sweep CSV row, the probe trace over [stopAt, end], and the
// invariant checker's report.
type instrumentedOut struct {
	csv    string
	trace  string
	report string
}

// runInstrumented executes one synthetic point with a full probe and an
// armed checker. With interrupt set, the run is stopped at main-loop cycle
// stopAt, saved (network image plus harness run state), torn down, restored
// into a freshly built member with a fresh probe and checker, and run to
// completion — the save/restore seam the equivalence test compares against
// the uninterrupted run.
func runInstrumented(t *testing.T, cfg SyntheticConfig, stopAt int64, interrupt bool) instrumentedOut {
	t.Helper()
	mkProbe := func() *probe.Probe {
		return probe.New(probe.Config{RingEvents: 1 << 20, PeriodNs: physical.ClockPeriodNs(cfg.Arch)})
	}
	cfg.Probe = mkProbe()
	cfg.Check = check.New(check.Config{})
	m, err := prepareSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net, err := network.Build(m.netConfig())
	if err != nil {
		t.Fatal(err)
	}
	m.attach(net)
	for cyc := int64(0); cyc < m.total; cyc++ {
		if interrupt && cyc == stopAt {
			img, err := snapshot.Encode(net)
			if err != nil {
				t.Fatalf("mid-run save: %v", err)
			}
			e := codec.NewEncoder()
			if err := m.saveRunState(e); err != nil {
				t.Fatalf("mid-run run-state save: %v", err)
			}
			run := e.Bytes()
			net.Close()

			cfg2 := cfg
			cfg2.Probe = mkProbe()
			cfg2.Check = check.New(check.Config{})
			m2, err := prepareSynthetic(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			net2, err := snapshot.Decode(img, m2.netConfig())
			if err != nil {
				t.Fatalf("mid-run restore: %v", err)
			}
			m2.attach(net2)
			if err := m2.restoreRunState(run); err != nil {
				t.Fatalf("mid-run run-state restore: %v", err)
			}
			m, net = m2, net2
			if got := net.Cycle(); got != stopAt {
				t.Fatalf("restored at cycle %d, want %d", got, stopAt)
			}
		}
		m.injectCycle(cyc)
		net.Step()
	}
	m.enterDrain()
	for m.needsDrainStep() {
		net.Step()
	}
	res := m.finalize()
	final := net.Cycle()
	net.Close()

	var tb, rb bytes.Buffer
	if err := m.cfg.Probe.WriteChromeTraceWindow(&tb, stopAt, final); err != nil {
		t.Fatal(err)
	}
	m.cfg.Check.WriteReport(&rb)
	csv := SweepCSV(cfg.Pattern, []SweepPoint{{
		RateMBps: cfg.RateMBps,
		Results:  map[router.Arch]RunResult{cfg.Arch: res},
	}})
	return instrumentedOut{csv: csv, trace: tb.String(), report: rb.String()}
}

// TestMidRunSaveRestoreEquivalence pins the checkpoint seam for every
// architecture at both execution modes: stopping a run mid-measurement,
// saving, restoring into a fresh network, and finishing must produce the
// same sweep CSV row, the same probe events from the seam on, and the same
// checker report as the run that was never interrupted.
func TestMidRunSaveRestoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-run equivalence matrix is slow")
	}
	for _, arch := range router.Archs {
		for _, shards := range []int{1, 4} {
			arch, shards := arch, shards
			t.Run(fmt.Sprintf("%s/shards%d", arch, shards), func(t *testing.T) {
				t.Parallel()
				cfg := fastCfg("uniform", 900)
				cfg.Arch = arch
				cfg.Shards = shards
				cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 600, 1500, 8000
				const stopAt = 1200
				want := runInstrumented(t, cfg, stopAt, false)
				got := runInstrumented(t, cfg, stopAt, true)
				if got.csv != want.csv {
					t.Errorf("sweep CSV diverged across the save/restore seam\ngot:\n%s\nwant:\n%s", got.csv, want.csv)
				}
				if got.trace != want.trace {
					t.Errorf("probe trace diverged across the save/restore seam (%d vs %d bytes)", len(got.trace), len(want.trace))
				}
				if got.report != want.report {
					t.Errorf("checker report diverged across the save/restore seam\ngot:\n%s\nwant:\n%s", got.report, want.report)
				}
			})
		}
	}
}

// TestTimeTravelReplay pins the rewind path end to end: a run with periodic
// checkpoints and a triggered flight recorder must write a replay trace
// next to the ring dump, and that trace must byte-match what a full probe
// watching the original run renders for the same window.
func TestTimeTravelReplay(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg("uniform", 1200)
	cfg.Arch = router.NoX
	cfg.WarmupCycles, cfg.MeasureCycles, cfg.DrainCycles = 600, 1500, 8000
	cfg.ReplayCheckpointEvery = 512
	rec := telemetry.NewRecorder(telemetry.RecorderConfig{Window: 400, Dir: dir, Label: "replay-test"})
	cfg.Recorder = rec
	triggered := false
	cfg.Observe = func(p *noc.Packet, cycle int64) {
		if !triggered && cycle >= 1500 {
			triggered = true
			rec.Trigger(cycle, "synthetic test trigger")
		}
	}
	if _, err := RunSynthetic(cfg); err != nil {
		t.Fatal(err)
	}
	flight := rec.TracePath()
	if flight == "" {
		t.Fatal("flight recorder did not dump")
	}
	replayPath := strings.TrimSuffix(flight, ".trace.json") + ".replay.trace.json"
	replay, err := os.ReadFile(replayPath)
	if err != nil {
		t.Fatalf("replay trace not written: %v", err)
	}

	// Reference: the same run watched by a full probe from cycle zero.
	start, end := rec.Window()
	ref := cfg
	ref.Observe = nil
	ref.Recorder = nil
	ref.ReplayCheckpointEvery = 0
	ref.Probe = probe.New(probe.Config{RingEvents: 1 << 21, PeriodNs: physical.ClockPeriodNs(cfg.Arch)})
	if _, err := RunSynthetic(ref); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := ref.Probe.WriteChromeTraceWindow(&want, start, end); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(replay, want.Bytes()) {
		t.Fatalf("replay trace (%d bytes) diverged from the full-probe reference window (%d bytes)",
			len(replay), want.Len())
	}
}
