package harness

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/trace"
)

// TestAppTraceCleanChecker replays a short application trace on every
// architecture with the full invariant layer armed — delivery oracle,
// protocol assertions, conservation sweep — and requires total silence.
// This is the standing proof that the checker's violations mean something:
// a fault-free simulation must never trip it, serial or sharded.
func TestAppTraceCleanChecker(t *testing.T) {
	w, err := trace.WorkloadByName("tpcc")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Generate(w, noc.Topology{Width: 4, Height: 4}, 4000, 7)
	for _, arch := range router.Archs {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", arch, shards), func(t *testing.T) {
				ck := check.New(check.All())
				res := RunApp(AppConfig{Arch: arch, Trace: tr, BufferDepth: 4, Shards: shards, Check: ck})
				if !res.Drained {
					t.Fatal("trace run did not drain")
				}
				if ck.Injected() == 0 {
					t.Fatal("checker saw no injections — the audit is vacuous")
				}
				if total := ck.Total(); total != 0 {
					for _, v := range ck.Violations() {
						t.Errorf("violation: %s", v)
					}
					t.Fatalf("armed trace replay recorded %d violations", total)
				}
			})
		}
	}
}
