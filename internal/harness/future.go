package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/power"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// This file implements the paper's future-work study (§8): the same four
// router architectures on a higher-radix concentrated mesh. 64 cores are
// arranged either as the baseline 8x8 mesh (radix-5 routers, 2 mm
// channels) or as a 4x4 CMesh (radix-8 routers, 4 cores each, 4 mm
// channels). The paper's hypothesis: NoX "may derive more benefit given
// their higher arbitration latencies, their longer channels, and the fixed
// cost of the NoX decoding hardware."

// SystemKind selects the 64-core organization under study.
type SystemKind int

// The organizations of the future-work comparison: the paper's two
// 64-core points plus the larger meshes the sharded simulation kernel
// makes practical to sweep.
const (
	// Mesh8x8 is the paper's baseline: one core per radix-5 router.
	Mesh8x8 SystemKind = iota
	// CMesh4x4 is the concentrated mesh: four cores per radix-8 router.
	CMesh4x4
	// Mesh16x16 scales the baseline organization to 256 cores.
	Mesh16x16
	// Mesh32x32 scales it to 1024 cores.
	Mesh32x32
)

// String names the system kind.
func (k SystemKind) String() string {
	switch k {
	case CMesh4x4:
		return "CMesh 4x4 (radix 8)"
	case Mesh16x16:
		return "Mesh 16x16 (radix 5)"
	case Mesh32x32:
		return "Mesh 32x32 (radix 5)"
	default:
		return "Mesh 8x8 (radix 5)"
	}
}

// System returns the noc-level system description.
func (k SystemKind) System() noc.System {
	switch k {
	case CMesh4x4:
		return noc.System{Grid: noc.Topology{Width: 4, Height: 4}, Concentration: 4}
	case Mesh16x16:
		return noc.MeshSystem(noc.Topology{Width: 16, Height: 16})
	case Mesh32x32:
		return noc.MeshSystem(noc.Topology{Width: 32, Height: 32})
	default:
		return noc.MeshSystem(noc.Topology{Width: 8, Height: 8})
	}
}

// Datapath returns the implementation point's component delays. The large
// meshes keep the baseline tile (radix-5 routers, 2 mm channels) — they
// grow the grid, not the router.
func (k SystemKind) Datapath() physical.Datapath {
	if k == CMesh4x4 {
		return physical.CMeshDatapath()
	}
	return physical.MeshDatapath()
}

// ParseSystemKinds parses a comma-separated system list (e.g.
// "mesh8x8,cmesh4x4,mesh16x16,mesh32x32") into kinds.
func ParseSystemKinds(s string) ([]SystemKind, error) {
	names := map[string]SystemKind{
		"mesh8x8":   Mesh8x8,
		"cmesh4x4":  CMesh4x4,
		"mesh16x16": Mesh16x16,
		"mesh32x32": Mesh32x32,
	}
	var kinds []SystemKind
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(strings.ToLower(f))
		if f == "" {
			continue
		}
		k, ok := names[f]
		if !ok {
			return nil, fmt.Errorf("harness: unknown system %q (want mesh8x8, cmesh4x4, mesh16x16, or mesh32x32)", f)
		}
		kinds = append(kinds, k)
	}
	if len(kinds) == 0 {
		return nil, errors.New("harness: empty system list")
	}
	return kinds, nil
}

// EnergyModel returns the per-event energies for the system: CMesh pays
// doubled channel energy (4 mm) and a wider crossbar/arbiter.
func (k SystemKind) EnergyModel() power.Model {
	m := power.DefaultModel()
	if k == CMesh4x4 {
		m.LinkPJ *= 2
		m.XbarPJ *= 1.5
		m.ArbPJ *= 1.3
	}
	return m
}

// FutureConfig parameterizes one future-work run.
type FutureConfig struct {
	Kind     SystemKind
	Arch     router.Arch
	RateMBps float64
	// Pattern: "uniform" or "selfsimilar" over cores (coordinate patterns
	// are translated through the virtual core grid).
	Pattern       string
	WarmupCycles  int64
	MeasureCycles int64
	DrainCycles   int64
	Seed          uint64
	// Shards selects the execution mode (see network.Config): 0 = auto,
	// which keeps the 64-core systems serial and shards the 16x16/32x32
	// meshes on multicore hosts.
	Shards int
	// Progress, when set, receives per-cycle ticks and inject/deliver counts
	// for live telemetry. Nil costs a nil check per hook.
	Progress *telemetry.Sampler
	// Recorder, when set, is this run's flight recorder: its probe shadows
	// the network and a wedged drain triggers a failure-window dump.
	Recorder *telemetry.Recorder
}

func (c *FutureConfig) fill() {
	if c.Pattern == "" {
		c.Pattern = "uniform"
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 2000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 6000
	}
	if c.DrainCycles == 0 {
		c.DrainCycles = 20000
	}
	if c.Seed == 0 {
		c.Seed = 0xF07E
	}
}

// RunFuture executes one (system, architecture, rate) point. Offered rates
// are per core in MB/s, converted with the system's own clock period, so
// mesh and CMesh face identical absolute load.
func RunFuture(cfg FutureConfig) (RunResult, error) {
	cfg.fill()
	sys := cfg.Kind.System()
	dp := cfg.Kind.Datapath()
	model := cfg.Kind.EnergyModel()
	periodNs := dp.ClockPeriodNs(cfg.Arch)
	pktRate := FlitsPerNodeCycle(cfg.RateMBps, periodNs)
	if pktRate >= 1 {
		return RunResult{}, fmt.Errorf("harness: rate %.0f MB/s/core exceeds one flit per cycle on %v: %w", cfg.RateMBps, cfg.Kind, ErrRateInfeasible)
	}

	var pattern traffic.Pattern
	selfSimilar := cfg.Pattern == "selfsimilar"
	virtual := sys.VirtualTopology()
	if selfSimilar || cfg.Pattern == "uniform" {
		pattern = traffic.Uniform{Topo: virtual}
	} else {
		var err error
		pattern, err = traffic.ByName(cfg.Pattern, virtual)
		if err != nil {
			return RunResult{}, err
		}
	}

	cfg.Recorder.SetPeriodNs(periodNs)
	var obs func(cycle int64, active int)
	if cfg.Progress != nil {
		obs = cfg.Progress.Observe
	}
	net := network.New(network.Config{
		Topo:          sys.Grid,
		Concentration: sys.Concentration,
		Arch:          cfg.Arch,
		Shards:        cfg.Shards,
		Probe:         cfg.Recorder.Probe(),
		Observer:      obs,
	})
	defer net.Close()
	col := stats.NewCollector(cfg.WarmupCycles, cfg.WarmupCycles+cfg.MeasureCycles)
	col.Reserve(int(pktRate*float64(sys.Cores())*float64(cfg.MeasureCycles)) + 64)
	net.OnDeliver = col.OnDeliver
	if cfg.Progress != nil {
		prog := cfg.Progress
		net.OnDeliver = func(p *noc.Packet, cycle int64) {
			col.OnDeliver(p, cycle)
			prog.CountDeliver(1, int64(p.Length))
		}
		prog.RunStarted()
	}

	cores := sys.Cores()
	base := sim.NewRNG(cfg.Seed)
	procs := make([]traffic.Process, cores)
	dests := make([]*sim.RNG, cores)
	for i := range procs {
		r := base.Fork(uint64(i))
		if selfSimilar {
			procs[i] = traffic.NewSelfSimilar(pktRate, r)
		} else {
			procs[i] = &traffic.Bernoulli{P: pktRate, RNG: r}
		}
		dests[i] = base.Fork(uint64(1000 + i))
	}

	var start power.Counters
	total := cfg.WarmupCycles + cfg.MeasureCycles
	for cyc := int64(0); cyc < total; cyc++ {
		if cyc == cfg.WarmupCycles {
			start = *net.Counters()
		}
		injected := 0
		for c := 0; c < cores; c++ {
			if !procs[c].Tick() {
				continue
			}
			src := noc.NodeID(c)
			// Patterns operate on the virtual core grid; translate back.
			vdst := pattern.Dest(sys.VirtualFromCore(src), dests[c])
			dst := sys.CoreFromVirtual(vdst)
			if dst == src {
				continue
			}
			p := net.Inject(src, dst, 1, 0)
			col.OnCreate(p, cyc)
			injected++
		}
		if injected > 0 {
			cfg.Progress.CountInject(int64(injected), int64(injected))
		}
		net.Step()
		cfg.Progress.Tick(cyc)
	}
	window := net.Counters().Sub(start)

	deadline := net.Cycle() + cfg.DrainCycles
	for !col.Complete() && net.Cycle() < deadline {
		if net.FullyIdle() {
			if out := net.Outstanding(); out > 0 {
				cfg.Recorder.Trigger(net.Cycle(),
					fmt.Sprintf("deadlock: network fully quiescent with %d packets outstanding", out))
			}
			net.FastForwardIdle(deadline - net.Cycle())
			break
		}
		net.Step()
		cfg.Progress.Tick(net.Cycle())
	}

	accepted := col.AcceptedFlitsPerNodeCycle(cores)
	res := RunResult{
		Arch:              cfg.Arch,
		Label:             fmt.Sprintf("%v/%s", cfg.Kind, cfg.Pattern),
		Nodes:             cores,
		PeriodNs:          periodNs,
		OfferedMBps:       cfg.RateMBps,
		AcceptedMBps:      MBpsPerNode(accepted, periodNs),
		MeanLatencyCycles: col.MeanLatencyCycles(),
		DeliveredPackets:  col.WindowPackets(),
		Window:            window,
	}
	res.MeanLatencyNs = res.MeanLatencyCycles * periodNs
	res.P50LatencyNs, res.P95LatencyNs, res.P99LatencyNs = col.LatencyPercentilesNs(periodNs)
	res.Saturated = !col.Complete() ||
		float64(col.WindowFlits()) < 0.92*float64(col.CreatedFlits())
	res.Energy = model.Energy(window, cfg.Arch == router.NoX)
	if col.WindowPackets() > 0 {
		res.PacketEnergyPJ = res.Energy.TotalPJ() / float64(col.WindowPackets())
	}
	res.PowerMW = res.Energy.TotalPJ() / (float64(cfg.MeasureCycles) * periodNs)
	res.EnergyDelay2 = edp2(res.PacketEnergyPJ, res.MeanLatencyNs)

	cfg.Progress.RunDone(cfg.Arch.String(), window)
	if cfg.Recorder.Triggered() {
		if _, err := cfg.Recorder.Flush(net.WriteDiagnostic); err != nil {
			fmt.Fprintln(os.Stderr, "harness:", err)
		}
	}
	return res, nil
}

// FutureStudy sweeps the selected systems at the given per-core rates and
// reports NoX's gap to Spec-Accurate on each — the §8 hypothesis test.
type FutureStudy struct {
	Kinds   []SystemKind
	Rates   []float64
	Results map[SystemKind]map[float64]map[router.Arch]RunResult
}

// RunFutureStudy executes the paper's two-system comparison at the given
// offered rates. It is RunFutureStudyKinds fixed to the §8 organizations.
func RunFutureStudy(rates []float64, pattern string, seed uint64, pool *exp.Pool) (*FutureStudy, error) {
	return RunFutureStudyKinds([]SystemKind{Mesh8x8, CMesh4x4}, rates, pattern, seed, pool, 0, Telemetry{})
}

// RunFutureStudyKinds executes the comparison over an arbitrary system
// list — including the 16x16 and 32x32 meshes the sharded kernel makes
// tractable. Rates a system's clock cannot offer (ErrRateInfeasible)
// simply leave a hole in the table, matching the serial study; any other
// failure aborts the whole study. Every (system, rate, architecture)
// point is independent, so a multi-worker pool fans them all out; shards
// additionally parallelizes within each simulation (0 = auto). tel threads
// the tool's live telemetry into each point (Telemetry{} disables it).
func RunFutureStudyKinds(kinds []SystemKind, rates []float64, pattern string, seed uint64, pool *exp.Pool, shards int, tel Telemetry) (*FutureStudy, error) {
	type outcome struct {
		res RunResult
		err error
	}
	slugs := map[SystemKind]string{Mesh8x8: "mesh8x8", CMesh4x4: "cmesh4x4", Mesh16x16: "mesh16x16", Mesh32x32: "mesh32x32"}
	perKind := len(rates) * len(router.Archs)
	outs, err := exp.Map(context.Background(), pool, len(kinds)*perKind,
		func(_ context.Context, i int) (outcome, error) {
			kind := kinds[i/perKind]
			rate := rates[i%perKind/len(router.Archs)]
			arch := router.Archs[i%len(router.Archs)]
			res, err := RunFuture(FutureConfig{Kind: kind, Arch: arch, RateMBps: rate, Pattern: pattern, Seed: seed, Shards: shards,
				Progress: tel.Progress,
				Recorder: tel.recorder(fmt.Sprintf("future-%s-%s-%.0fMBps", slugs[kind], arch, rate))})
			return outcome{res, err}, nil
		})
	if err != nil {
		return nil, err
	}

	st := &FutureStudy{Kinds: kinds, Rates: rates, Results: map[SystemKind]map[float64]map[router.Arch]RunResult{}}
	i := 0
	for _, kind := range kinds {
		st.Results[kind] = map[float64]map[router.Arch]RunResult{}
		for _, rate := range rates {
			byArch := map[router.Arch]RunResult{}
			for _, arch := range router.Archs {
				o := outs[i]
				i++
				if o.err != nil {
					if errors.Is(o.err, ErrRateInfeasible) {
						continue
					}
					return nil, o.err
				}
				byArch[arch] = o.res
			}
			st.Results[kind][rate] = byArch
		}
	}
	return st, nil
}

// NoXGapVsSpecAccurate returns NoX's mean latency relative to
// Spec-Accurate's (values below 1 mean NoX is faster) per system at a
// rate, skipping saturated points.
func (st *FutureStudy) NoXGapVsSpecAccurate(kind SystemKind, rate float64) (float64, bool) {
	byArch := st.Results[kind][rate]
	nox, okN := byArch[router.NoX]
	sa, okS := byArch[router.SpecAccurate]
	if !okN || !okS || nox.Saturated || sa.Saturated {
		return 0, false
	}
	return nox.MeanLatencyNs / sa.MeanLatencyNs, true
}

// FormatFutureStudy renders the §8 comparison for whatever systems the
// study covered.
func FormatFutureStudy(st *FutureStudy) string {
	kinds := st.Kinds
	if len(kinds) == 0 {
		kinds = []SystemKind{Mesh8x8, CMesh4x4}
	}
	var b strings.Builder
	b.WriteString("Future work (§8): router architectures across mesh organizations\n")
	for _, kind := range kinds {
		dp := kind.Datapath()
		fmt.Fprintf(&b, "\n%s — clocks:", kind)
		for _, a := range router.Archs {
			fmt.Fprintf(&b, "  %s %.2fns", a, dp.ClockPeriodNs(a))
		}
		fmt.Fprintf(&b, "\n  NoX clock penalty vs Spec-Accurate: %.1f%% (decode is a fixed cost)\n",
			100*dp.NoXPenaltyVsSpecAccurate())
		fmt.Fprintf(&b, "%12s", "MB/s/core")
		for _, a := range router.Archs {
			fmt.Fprintf(&b, " %16s", a)
		}
		b.WriteString("\n")
		for _, rate := range st.Rates {
			fmt.Fprintf(&b, "%12.0f", rate)
			for _, a := range router.Archs {
				r, ok := st.Results[kind][rate][a]
				switch {
				case !ok:
					fmt.Fprintf(&b, " %16s", "-")
				case r.Saturated:
					fmt.Fprintf(&b, " %16s", "saturated")
				default:
					fmt.Fprintf(&b, " %13.2f ns", r.MeanLatencyNs)
				}
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("\nNoX latency relative to Spec-Accurate (lower is better):\n")
	short := map[SystemKind]string{Mesh8x8: "mesh", CMesh4x4: "cmesh", Mesh16x16: "mesh16", Mesh32x32: "mesh32"}
	for _, rate := range st.Rates {
		fmt.Fprintf(&b, "%12.0f", rate)
		for _, kind := range kinds {
			if gap, ok := st.NoXGapVsSpecAccurate(kind, rate); ok {
				fmt.Fprintf(&b, "   %s %.3f", short[kind], gap)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
