package harness

import (
	"context"
	"math"

	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/power"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/stats"
	"repro/internal/trace"
)

// AppConfig parameterizes one application-trace run (§5.2): open-loop
// replay of a coherence trace onto two physical networks (request and
// reply classes isolated, Table 1), each running at the router
// architecture's maximum frequency asynchronously from the 3 GHz cores.
type AppConfig struct {
	Arch        router.Arch
	Trace       *trace.Trace
	BufferDepth int
	// DrainCycles bounds the run after the last event is injected.
	DrainCycles int64
	// Model is the energy model (DefaultModel when nil).
	Model *power.Model
	// Probe, when set, records flit-level events and per-router metrics.
	// Both physical networks share it (their event streams interleave on
	// common cycle numbers).
	Probe *probe.Probe
	// Progress, when set, receives per-cycle ticks for cycles/sec reporting.
	Progress *probe.Progress
	// Shards selects each physical network's execution mode (see
	// network.Config): 0 = auto, 1 = serial, N >= 2 = sharded. Results are
	// bit-identical at every setting.
	Shards int
	// Check, when set, arms the runtime invariant layer on both physical
	// networks (they share the checker; packet IDs are globally unique
	// across classes). The post-drain sweep runs before the result is
	// returned. Nil costs nothing.
	Check *check.Checker
}

// AppResult captures one (architecture, workload) outcome for Figures 10
// and 11.
type AppResult struct {
	Arch     router.Arch
	Workload string
	PeriodNs float64

	MeanLatencyNs  float64
	P50LatencyNs   float64
	P95LatencyNs   float64
	P99LatencyNs   float64
	DeliveredPkts  int64
	PacketEnergyPJ float64
	EnergyDelay2   float64
	// InjectionMBps is the trace's offered bandwidth per node.
	InjectionMBps float64
	// Drained reports all trace packets were delivered within the limit.
	Drained bool
	Window  power.Counters
}

// RunApp replays the trace on the architecture and returns Figure 10/11
// metrics. Packet events are injected on the network cycle corresponding
// to their CPU-domain timestamp, so injection bandwidth is identical
// across architectures as required by §5.2.
func RunApp(cfg AppConfig) AppResult {
	if cfg.Trace == nil {
		panic("harness: AppConfig.Trace is required")
	}
	model := cfg.Model
	if model == nil {
		m := power.DefaultModel()
		model = &m
	}
	if cfg.DrainCycles == 0 {
		cfg.DrainCycles = 500_000
	}

	periodNs := physical.ClockPeriodNs(cfg.Arch)
	periodPs := physical.ClockPeriodPs(cfg.Arch)
	topo := cfg.Trace.Topo

	multi := network.NewMulti(trace.NumClasses, network.Config{Topo: topo, Arch: cfg.Arch, BufferDepth: cfg.BufferDepth, Probe: cfg.Probe, Shards: cfg.Shards, Check: cfg.Check})
	defer multi.Close()
	// Every trace packet is measured: the collector's window spans the run,
	// giving the same latency record a serial tally would produce plus the
	// percentile machinery.
	col := stats.NewCollector(0, int64(1)<<62)
	col.Reserve(len(cfg.Trace.Events))
	var latencySum, latencySqSum float64
	var delivered int64
	multi.OnDeliver(func(p *noc.Packet, cycle int64) {
		l := float64(p.Latency())
		latencySum += l
		latencySqSum += l * l
		delivered++
		col.OnDeliver(p, cycle)
	})

	events := cfg.Trace.Events
	idx := 0
	var pktID uint64

	cycle := int64(0)
	lastEventCycle := int64(float64(events[len(events)-1].TimePs)/periodPs) + 1
	deadline := lastEventCycle + cfg.DrainCycles
	for cycle < deadline && (idx < len(events) || multi.Outstanding() > 0) {
		// Traces have idle gaps between bursts; once every network has fully
		// quiesced, jump straight to the next event's injection cycle. The
		// fast-forward replays per-cycle hooks, so probed output is unchanged.
		if idx < len(events) && multi.Outstanding() == 0 {
			if due := int64(float64(events[idx].TimePs) / periodPs); due > cycle {
				if skipped := multi.FastForwardIdle(due - cycle); skipped > 0 {
					cycle += skipped
					cfg.Progress.Tick(cycle)
					continue
				}
			}
		}
		for idx < len(events) {
			due := int64(float64(events[idx].TimePs) / periodPs)
			if due > cycle {
				break
			}
			e := events[idx]
			idx++
			pktID++
			p := noc.NewPacket(pktID, e.Src, e.Dst, e.Flits, e.Class, cycle)
			col.OnCreate(p, cycle)
			multi.InjectPacket(p)
		}
		multi.Step()
		cycle++
		cfg.Progress.Tick(cycle)
	}

	// With a checker armed and everything delivered, run the post-drain
	// invariant sweep across both physical networks.
	if multi.Outstanding() == 0 {
		multi.CheckInvariants()
	}

	window := multi.Counters()
	res := AppResult{
		Arch:          cfg.Arch,
		Workload:      cfg.Trace.Workload.Name,
		PeriodNs:      periodNs,
		DeliveredPkts: delivered,
		InjectionMBps: cfg.Trace.MeanInjectionMBps(),
		Drained:       idx == len(events) && multi.Outstanding() == 0,
		Window:        window,
	}
	if delivered > 0 {
		res.MeanLatencyNs = latencySum / float64(delivered) * periodNs
		res.P50LatencyNs = col.PercentileLatencyCycles(0.50) * periodNs
		res.P95LatencyNs = col.PercentileLatencyCycles(0.95) * periodNs
		res.P99LatencyNs = col.PercentileLatencyCycles(0.99) * periodNs
		total := model.Energy(window, cfg.Arch == router.NoX).TotalPJ()
		res.PacketEnergyPJ = total / float64(delivered)
		// Average per-packet energy-delay^2: E[E_pkt * T^2] with the mean
		// packet energy as the per-packet energy estimate. Averaging T^2
		// per packet (rather than squaring the mean latency) is the literal
		// reading of "average packet energy-delay^2 product" and weights
		// the latency tails that misspeculation produces.
		res.EnergyDelay2 = res.PacketEnergyPJ * latencySqSum / float64(delivered) * periodNs * periodNs
	} else {
		res.MeanLatencyNs = math.NaN()
	}
	return res
}

// RunAppAllArchs replays one trace on every architecture. The four replays
// are independent (the trace is read-only; each builds its own networks),
// so a pool with multiple workers runs them concurrently; shards
// additionally parallelizes within each replay (0 = auto). Results are
// identical at every setting.
func RunAppAllArchs(tr *trace.Trace, bufferDepth int, pool *exp.Pool, shards int) map[router.Arch]AppResult {
	results, _ := exp.Map(context.Background(), pool, len(router.Archs),
		func(_ context.Context, i int) (AppResult, error) {
			return RunApp(AppConfig{Arch: router.Archs[i], Trace: tr, BufferDepth: bufferDepth, Shards: shards}), nil
		})
	out := map[router.Arch]AppResult{}
	for i, arch := range router.Archs {
		out[arch] = results[i]
	}
	return out
}

// GeoMeanImprovement returns NoX's mean energy-delay^2 improvement over
// each baseline across workloads, the §5.2 headline metric ("On average
// the NoX architecture outperforms the non-speculative, Spec-Fast, and
// Spec-Accurate by 29.5%, 34.4%, and 2.7%"). Improvement is
// 1 - ED2(NoX)/ED2(baseline), averaged arithmetically across workloads.
func GeoMeanImprovement(results []map[router.Arch]AppResult) map[router.Arch]float64 {
	out := map[router.Arch]float64{}
	for _, base := range []router.Arch{router.NonSpec, router.SpecFast, router.SpecAccurate} {
		sum := 0.0
		n := 0
		for _, byArch := range results {
			nox, okN := byArch[router.NoX]
			b, okB := byArch[base]
			if !okN || !okB || b.EnergyDelay2 == 0 {
				continue
			}
			sum += 1 - nox.EnergyDelay2/b.EnergyDelay2
			n++
		}
		if n > 0 {
			out[base] = sum / float64(n)
		}
	}
	return out
}
