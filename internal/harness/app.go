package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"

	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/power"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// AppConfig parameterizes one application-trace run (§5.2): open-loop
// replay of a coherence trace onto two physical networks (request and
// reply classes isolated, Table 1), each running at the router
// architecture's maximum frequency asynchronously from the 3 GHz cores.
type AppConfig struct {
	Arch        router.Arch
	Trace       *trace.Trace
	BufferDepth int
	// DrainCycles bounds the run after the last event is injected.
	DrainCycles int64
	// Model is the energy model (DefaultModel when nil).
	Model *power.Model
	// Probe, when set, records flit-level events and per-router metrics.
	// Both physical networks share it (their event streams interleave on
	// common cycle numbers).
	Probe *probe.Probe
	// Progress, when set, receives per-cycle ticks and inject/deliver counts
	// for live telemetry (cycles/s, /metrics, the SSE stream).
	Progress *telemetry.Sampler
	// Recorder, when set, is this run's flight recorder: its probe shadows
	// both physical networks (unless Probe above claims the slot) and an
	// undrained run or checker violation triggers a failure-window dump.
	Recorder *telemetry.Recorder
	// Shards selects each physical network's execution mode (see
	// network.Config): 0 = auto, 1 = serial, N >= 2 = sharded. Results are
	// bit-identical at every setting.
	Shards int
	// Check, when set, arms the runtime invariant layer on both physical
	// networks (they share the checker; packet IDs are globally unique
	// across classes). The post-drain sweep runs before the result is
	// returned. Nil costs nothing.
	Check *check.Checker
	// CheckpointPath/CheckpointEvery, when both set, persist a resumable
	// replay checkpoint (both class networks plus the replay cursor and
	// statistics) to the path at least every CheckpointEvery cycles,
	// atomically overwriting the previous one. RestorePath resumes a replay
	// from such a file; the resumed run's AppResult is identical to the
	// uninterrupted run's. noxapp's -checkpoint/-restore flags.
	CheckpointPath  string
	CheckpointEvery int64
	RestorePath     string
}

// AppResult captures one (architecture, workload) outcome for Figures 10
// and 11.
type AppResult struct {
	Arch     router.Arch
	Workload string
	PeriodNs float64

	MeanLatencyNs  float64
	P50LatencyNs   float64
	P95LatencyNs   float64
	P99LatencyNs   float64
	DeliveredPkts  int64
	PacketEnergyPJ float64
	EnergyDelay2   float64
	// InjectionMBps is the trace's offered bandwidth per node.
	InjectionMBps float64
	// Drained reports all trace packets were delivered within the limit.
	Drained bool
	Window  power.Counters
}

// RunApp replays the trace on the architecture and returns Figure 10/11
// metrics. Packet events are injected on the network cycle corresponding
// to their CPU-domain timestamp, so injection bandwidth is identical
// across architectures as required by §5.2.
func RunApp(cfg AppConfig) AppResult {
	if cfg.Trace == nil {
		panic("harness: AppConfig.Trace is required")
	}
	model := cfg.Model
	if model == nil {
		m := power.DefaultModel()
		model = &m
	}
	if cfg.DrainCycles == 0 {
		cfg.DrainCycles = 500_000
	}

	periodNs := physical.ClockPeriodNs(cfg.Arch)
	periodPs := physical.ClockPeriodPs(cfg.Arch)
	topo := cfg.Trace.Topo

	// An explicit Probe wins the probe slot; otherwise the flight recorder's
	// ring shadows the run (both physical networks interleave into it, the
	// same sharing an explicit probe gets).
	pr := cfg.Probe
	if pr == nil && cfg.Recorder != nil {
		pr = cfg.Recorder.Probe()
	}
	cfg.Recorder.SetPeriodNs(periodNs)
	cfg.Recorder.BindChecker(cfg.Check)
	// NewMulti installs the same Config on every class network, so a raw
	// sampler observer would count each cycle once per class. Dedup on the
	// cycle number: the classes step in lockstep, and observers fire on the
	// stepping goroutine, so the last-seen cycle needs no lock.
	var obs func(cycle int64, active int)
	if cfg.Progress != nil {
		inner, last := cfg.Progress.Observe, int64(-1)
		obs = func(cycle int64, active int) {
			if cycle == last {
				return
			}
			last = cycle
			inner(cycle, active)
		}
	}

	multi := network.NewMulti(trace.NumClasses, network.Config{Topo: topo, Arch: cfg.Arch, BufferDepth: cfg.BufferDepth, Probe: pr, Shards: cfg.Shards, Check: cfg.Check, Observer: obs})
	defer multi.Close()
	// Every trace packet is measured: the collector's window spans the run,
	// giving the same latency record a serial tally would produce plus the
	// percentile machinery.
	col := stats.NewCollector(0, int64(1)<<62)
	col.Reserve(len(cfg.Trace.Events))
	var latencySum, latencySqSum float64
	var delivered int64
	multi.OnDeliver(func(p *noc.Packet, cycle int64) {
		l := float64(p.Latency())
		latencySum += l
		latencySqSum += l * l
		delivered++
		col.OnDeliver(p, cycle)
		cfg.Progress.CountDeliver(1, int64(p.Length))
	})
	cfg.Progress.RunStarted()

	events := cfg.Trace.Events
	idx := 0
	var pktID uint64

	cycle := int64(0)
	if cfg.RestorePath != "" {
		cur, err := loadAppCheckpoint(cfg.RestorePath, multi, col, len(events))
		switch {
		case err == nil:
			idx, pktID = cur.idx, cur.pktID
			latencySum, latencySqSum, delivered = cur.latencySum, cur.latencySqSum, cur.delivered
			cycle = multi.Cycle()
		case errors.Is(err, fs.ErrNotExist):
			// No checkpoint yet for this (workload, architecture): cold start.
		default:
			panic(fmt.Sprintf("harness: app restore %s: %v", cfg.RestorePath, err))
		}
	}
	nextCkpt := int64(-1)
	if cfg.CheckpointPath != "" && cfg.CheckpointEvery > 0 {
		nextCkpt = cycle + cfg.CheckpointEvery
	}
	lastEventCycle := int64(float64(events[len(events)-1].TimePs)/periodPs) + 1
	deadline := lastEventCycle + cfg.DrainCycles
	for cycle < deadline && (idx < len(events) || multi.Outstanding() > 0) {
		// Persist a resumable checkpoint between steps. The threshold (not a
		// modulus) tolerates the idle fast-forward jumping whole periods.
		if nextCkpt >= 0 && cycle >= nextCkpt {
			cur := appCursor{idx: idx, pktID: pktID, latencySum: latencySum, latencySqSum: latencySqSum, delivered: delivered}
			if err := saveAppCheckpoint(cfg.CheckpointPath, multi, col, cur); err != nil {
				fmt.Fprintln(os.Stderr, "harness: app checkpoint:", err)
				nextCkpt = -1
			} else {
				nextCkpt = cycle + cfg.CheckpointEvery
			}
		}
		// Traces have idle gaps between bursts; once every network has fully
		// quiesced, jump straight to the next event's injection cycle. The
		// fast-forward replays per-cycle hooks, so probed output is unchanged.
		if idx < len(events) && multi.Outstanding() == 0 {
			if due := int64(float64(events[idx].TimePs) / periodPs); due > cycle {
				if skipped := multi.FastForwardIdle(due - cycle); skipped > 0 {
					cycle += skipped
					cfg.Progress.Tick(cycle)
					continue
				}
			}
		}
		for idx < len(events) {
			due := int64(float64(events[idx].TimePs) / periodPs)
			if due > cycle {
				break
			}
			e := events[idx]
			idx++
			pktID++
			p := noc.NewPacket(pktID, e.Src, e.Dst, e.Flits, e.Class, cycle)
			col.OnCreate(p, cycle)
			multi.InjectPacket(p)
			cfg.Progress.CountInject(1, int64(e.Flits))
		}
		multi.Step()
		cycle++
		cfg.Progress.Tick(cycle)
	}

	// With a checker armed and everything delivered, run the post-drain
	// invariant sweep across both physical networks.
	if multi.Outstanding() == 0 {
		multi.CheckInvariants()
	} else {
		cfg.Recorder.Trigger(cycle, fmt.Sprintf("undrained: %d packets outstanding after %d drain cycles", multi.Outstanding(), cfg.DrainCycles))
	}

	window := multi.Counters()
	res := AppResult{
		Arch:          cfg.Arch,
		Workload:      cfg.Trace.Workload.Name,
		PeriodNs:      periodNs,
		DeliveredPkts: delivered,
		InjectionMBps: cfg.Trace.MeanInjectionMBps(),
		Drained:       idx == len(events) && multi.Outstanding() == 0,
		Window:        window,
	}
	if delivered > 0 {
		res.MeanLatencyNs = latencySum / float64(delivered) * periodNs
		res.P50LatencyNs, res.P95LatencyNs, res.P99LatencyNs = col.LatencyPercentilesNs(periodNs)
		total := model.Energy(window, cfg.Arch == router.NoX).TotalPJ()
		res.PacketEnergyPJ = total / float64(delivered)
		// Average per-packet energy-delay^2: E[E_pkt * T^2] with the mean
		// packet energy as the per-packet energy estimate. Averaging T^2
		// per packet (rather than squaring the mean latency) is the literal
		// reading of "average packet energy-delay^2 product" and weights
		// the latency tails that misspeculation produces.
		res.EnergyDelay2 = res.PacketEnergyPJ * latencySqSum / float64(delivered) * periodNs * periodNs
	} else {
		res.MeanLatencyNs = math.NaN()
	}

	// Telemetry epilogue: fold this replay's datapath events into the live
	// per-arch counters, and dump the failure window if the checker or the
	// undrained exit tripped the flight recorder.
	cfg.Progress.RunDone(cfg.Arch.String(), window)
	if cfg.Recorder.Triggered() {
		if _, err := cfg.Recorder.Flush(func(w io.Writer) {
			for class := 0; class < multi.Classes(); class++ {
				fmt.Fprintf(w, "class %d ", class)
				multi.Net(class).WriteDiagnostic(w)
			}
			cfg.Check.WriteReport(w)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "harness:", err)
		}
	}
	return res
}

// AppCheckpoint threads noxapp's checkpoint/restore flags through
// RunAppAllArchs: with Dir set, each (workload, architecture) replay
// persists a resumable checkpoint named app-<workload>-<arch>.noxapp into
// it every Every cycles; with RestoreDir set, each replay resumes from its
// file when present (a missing file cold-starts). The zero value disables
// both.
type AppCheckpoint struct {
	Dir        string
	Every      int64
	RestoreDir string
}

// paths returns one replay's checkpoint and restore paths.
func (c AppCheckpoint) paths(workload string, arch router.Arch) (ckpt, restore string) {
	name := fmt.Sprintf("app-%s-%s.noxapp", workload, arch)
	if c.Dir != "" {
		ckpt = filepath.Join(c.Dir, name)
	}
	if c.RestoreDir != "" {
		restore = filepath.Join(c.RestoreDir, name)
	}
	return ckpt, restore
}

// RunAppAllArchs replays one trace on every architecture. The four replays
// are independent (the trace is read-only; each builds its own networks),
// so a pool with multiple workers runs them concurrently; shards
// additionally parallelizes within each replay (0 = auto). Results are
// identical at every setting. tel threads the tool's live telemetry into
// each replay (Telemetry{} disables it); ckpt threads the checkpoint and
// restore directories (AppCheckpoint{} disables them).
func RunAppAllArchs(tr *trace.Trace, bufferDepth int, pool *exp.Pool, shards int, tel Telemetry, ckpt AppCheckpoint) map[router.Arch]AppResult {
	results, _ := exp.Map(context.Background(), pool, len(router.Archs),
		func(_ context.Context, i int) (AppResult, error) {
			arch := router.Archs[i]
			ckptPath, restorePath := ckpt.paths(tr.Workload.Name, arch)
			return RunApp(AppConfig{Arch: arch, Trace: tr, BufferDepth: bufferDepth, Shards: shards,
				Progress: tel.Progress,
				Recorder: tel.recorder(fmt.Sprintf("app-%s-%s", tr.Workload.Name, arch)),
				CheckpointPath: ckptPath, CheckpointEvery: ckpt.Every, RestorePath: restorePath}), nil
		})
	out := map[router.Arch]AppResult{}
	for i, arch := range router.Archs {
		out[arch] = results[i]
	}
	return out
}

// GeoMeanImprovement returns NoX's mean energy-delay^2 improvement over
// each baseline across workloads, the §5.2 headline metric ("On average
// the NoX architecture outperforms the non-speculative, Spec-Fast, and
// Spec-Accurate by 29.5%, 34.4%, and 2.7%"). Improvement is
// 1 - ED2(NoX)/ED2(baseline), averaged arithmetically across workloads.
func GeoMeanImprovement(results []map[router.Arch]AppResult) map[router.Arch]float64 {
	out := map[router.Arch]float64{}
	for _, base := range []router.Arch{router.NonSpec, router.SpecFast, router.SpecAccurate} {
		sum := 0.0
		n := 0
		for _, byArch := range results {
			nox, okN := byArch[router.NoX]
			b, okB := byArch[base]
			if !okN || !okB || b.EnergyDelay2 == 0 {
				continue
			}
			sum += 1 - nox.EnergyDelay2/b.EnergyDelay2
			n++
		}
		if n > 0 {
			out[base] = sum / float64(n)
		}
	}
	return out
}
