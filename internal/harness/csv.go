package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/router"
)

// Machine-readable exports for the figure data, so the sweeps can be
// re-plotted outside this repository (gnuplot, matplotlib, spreadsheets).

// SweepCSV renders a Figure 8/9 sweep as CSV with one row per
// (rate, architecture) and the full metric set per row.
func SweepCSV(pattern string, points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("pattern,rate_mbps_per_node,architecture,offered_mbps,accepted_mbps,mean_latency_ns,p50_latency_ns,p95_latency_ns,p99_latency_ns,saturated,packet_energy_pj,energy_delay2_pjns2,power_mw\n")
	for _, pt := range points {
		for _, arch := range router.Archs {
			r, ok := pt.Results[arch]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%s,%.0f,%s,%.0f,%.1f,%.4f,%.4f,%.4f,%.4f,%v,%.2f,%.2f,%.2f\n",
				pattern, pt.RateMBps, arch, r.OfferedMBps, r.AcceptedMBps,
				r.MeanLatencyNs, r.P50LatencyNs, r.P95LatencyNs, r.P99LatencyNs, r.Saturated,
				r.PacketEnergyPJ, r.EnergyDelay2, r.PowerMW)
		}
	}
	return b.String()
}

// AppCSV renders Figure 10/11 results as CSV with one row per
// (workload, architecture).
func AppCSV(results []map[router.Arch]AppResult) string {
	var b strings.Builder
	b.WriteString("workload,architecture,mean_latency_ns,p50_latency_ns,p95_latency_ns,p99_latency_ns,packet_energy_pj,energy_delay2_pjns2,injection_mbps,delivered_packets,drained\n")
	sorted := append([]map[router.Arch]AppResult(nil), results...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i][router.NoX].Workload < sorted[j][router.NoX].Workload
	})
	for _, byArch := range sorted {
		for _, arch := range router.Archs {
			r, ok := byArch[arch]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%s,%s,%.4f,%.4f,%.4f,%.4f,%.2f,%.2f,%.1f,%d,%v\n",
				r.Workload, arch, r.MeanLatencyNs, r.P50LatencyNs, r.P95LatencyNs,
				r.P99LatencyNs, r.PacketEnergyPJ,
				r.EnergyDelay2, r.InjectionMBps, r.DeliveredPkts, r.Drained)
		}
	}
	return b.String()
}
