package harness

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/batch"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/router"
)

// This file is the batched execution layer: the same synthetic runs as
// RunSynthetic/SweepSynthetic, but grouped into lockstep cohorts
// (internal/batch) that share construction state and step together through
// sim.LockstepGroup's bit-sliced activity words. Every member executes the
// identical synthMember hook sequence the serial driver uses, so batched
// results are byte-identical to serial ones by construction; the
// equivalence tests pin it.

// RunSyntheticCohort executes the given points as one lockstep cohort and
// returns per-member results and errors (parallel slices; exactly one of
// results[i]/errs[i] is meaningful). Infeasible or misconfigured members
// (ErrRateInfeasible, unknown pattern) are excluded from the cohort and
// report their error while the rest run.
func RunSyntheticCohort(cfgs []SyntheticConfig) ([]RunResult, []error) {
	return runSyntheticCohort(cfgs, nil)
}

// runSyntheticCohort is the cohort engine. warms, when non-nil, is a
// parallel slice of warm images: member i rewinds to warms[i] after
// attaching, so the whole cohort resumes from the warmup boundary (all
// members must share a boundary cycle — the lockstep group steps one common
// clock). A member whose restore fails reports its error and is parked.
func runSyntheticCohort(cfgs []SyntheticConfig, warms []*warmImage) ([]RunResult, []error) {
	n := len(cfgs)
	results := make([]RunResult, n)
	errs := make([]error, n)
	members := make([]*synthMember, n)
	runIdx := make([]int, 0, n) // cohort slot -> cfgs index
	for i, cfg := range cfgs {
		m, err := prepareSynthetic(cfg)
		if err != nil {
			errs[i] = err
			continue
		}
		members[i] = m
		runIdx = append(runIdx, i)
	}
	if len(runIdx) == 0 {
		return results, errs
	}

	c, err := batch.New(len(runIdx), func(s int) network.Config {
		return members[runIdx[s]].netConfig()
	})
	if err != nil {
		for _, i := range runIdx {
			errs[i] = fmt.Errorf("harness: batched cohort: %w", err)
		}
		return results, errs
	}
	defer c.Close()
	for s, i := range runIdx {
		members[i].attach(c.Net(s))
	}
	if warms != nil {
		for s, i := range runIdx {
			if w := warms[i]; w != nil {
				if err := members[i].restoreWarm(w); err != nil {
					errs[i] = fmt.Errorf("harness: warm restore: %w", err)
					c.Park(s)
				}
			}
		}
	}

	// Lockstep loop: each round gives every live member its pre-step work
	// (injection while its clock is inside warmup+measure, then the drain
	// checks), parks members as they finish, and advances the survivors one
	// cycle together. Members may have different warmup/measure/drain
	// windows; each follows its own schedule against its own clock.
	draining := make([]bool, len(runIdx))
	for c.Live() > 0 {
		for s, i := range runIdx {
			if c.Parked(s) {
				continue
			}
			m := members[i]
			if !draining[s] {
				if cyc := m.net.Cycle(); cyc < m.total {
					m.injectCycle(cyc)
					continue
				}
				m.enterDrain()
				draining[s] = true
			}
			if !m.needsDrainStep() {
				results[i] = m.finalize()
				c.Park(s)
			}
		}
		if c.Live() == 0 {
			break
		}
		c.Step()
		for s, i := range runIdx {
			if c.Parked(s) {
				continue
			}
			m := members[i]
			if draining[s] {
				m.cfg.Progress.Tick(m.net.Cycle())
			} else {
				m.cfg.Progress.Tick(m.net.Cycle() - 1)
			}
		}
	}
	return results, errs
}

// SweepSyntheticBatched is SweepSynthetic on lockstep cohorts: every
// (rate, architecture) point of the grid runs speculatively, width points
// per cohort, cohorts fanned across the pool; the serial
// stop-at-saturation truncation is then reconstructed exactly as the
// parallel path does. Duplicate (architecture, rate) jobs — rate ladders
// can repeat a rung after rounding — are simulated once and fanned back
// out; the second return value counts the skipped duplicates.
//
// width <= 0 uses batch.DefaultWidth. A nil pool runs
// cohorts one after another on the calling goroutine.
func SweepSyntheticBatched(base SyntheticConfig, rates []float64, width int, pool *exp.Pool) ([]SweepPoint, int, error) {
	if len(rates) == 0 {
		points, err := sweepSerial(base, rates)
		return points, 0, err
	}
	archs := router.Archs

	// Warm-start mode: one warm phase per architecture up front, every job
	// in the grid resumes from its architecture's image inside its cohort.
	var warmByArch map[router.Arch]*warmImage
	var warmErrByArch map[router.Arch]error
	if base.WarmStart {
		if base.WarmRateMBps <= 0 {
			return nil, 0, ErrWarmRate
		}
		warmByArch = make(map[router.Arch]*warmImage, len(archs))
		warmErrByArch = make(map[router.Arch]error, len(archs))
		for _, arch := range archs {
			cfg := base
			cfg.Arch = arch
			w, err := warmFor(cfg)
			if err != nil {
				if !errors.Is(err, ErrRateInfeasible) {
					return nil, 0, err
				}
				warmErrByArch[arch] = err
				continue
			}
			warmByArch[arch] = w
		}
	}

	type jobKey struct {
		arch router.Arch
		rate float64
	}
	n := len(rates) * len(archs)
	keys := make([]jobKey, n)
	cfgs := make([]SyntheticConfig, n)
	for i := range keys {
		cfg := base
		cfg.RateMBps = rates[i/len(archs)]
		cfg.Arch = archs[i%len(archs)]
		cfgs[i] = cfg
		keys[i] = jobKey{cfg.Arch, cfg.RateMBps}
	}
	canon := batch.CanonicalIndex(keys)
	jobs := make([]int, 0, n)
	for i, ci := range canon {
		if ci == i {
			jobs = append(jobs, i)
		}
	}
	skipped := n - len(jobs)

	// Jobs whose architecture could not even warm resolve without a cohort
	// slot: their series ends before the first rung.
	outs := make([]pointOutcome, n)
	runnable := jobs
	if base.WarmStart {
		runnable = make([]int, 0, len(jobs))
		for _, i := range jobs {
			if err := warmErrByArch[cfgs[i].Arch]; err != nil {
				outs[i] = pointOutcome{err: err}
				continue
			}
			runnable = append(runnable, i)
		}
	}

	spans := batch.Chunks(len(runnable), width)
	type cohortOut struct {
		res  []RunResult
		errs []error
	}
	couts, err := exp.Map(context.Background(), pool, len(spans),
		func(_ context.Context, si int) (cohortOut, error) {
			lo, hi := spans[si][0], spans[si][1]
			sub := make([]SyntheticConfig, hi-lo)
			var subWarm []*warmImage
			if base.WarmStart {
				subWarm = make([]*warmImage, hi-lo)
			}
			for j := range sub {
				sub[j] = cfgs[runnable[lo+j]]
				if subWarm != nil {
					subWarm[j] = warmByArch[sub[j].Arch]
				}
			}
			res, errs := runSyntheticCohort(sub, subWarm)
			return cohortOut{res, errs}, nil
		})
	if err != nil {
		return nil, 0, err
	}

	for si, span := range spans {
		for j := 0; j < span[1]-span[0]; j++ {
			i := runnable[span[0]+j]
			outs[i] = pointOutcome{couts[si].res[j], couts[si].errs[j]}
		}
	}
	for i, ci := range canon {
		if ci != i {
			outs[i] = outs[ci]
		}
	}
	points, err := assembleSweep(rates, archs, outs)
	return points, skipped, err
}

// ablationCell maps a batched synthetic result back onto the serial
// ablation engine's output shape. The batched ablations run through
// synthMember, whose per-cycle behavior at uniform load is identical to
// runConfigured's (same rate conversion, same RNG forks, same injection
// and drain loops), so the shared fields agree exactly.
func ablationCell(label string, res RunResult) AblationPoint {
	return AblationPoint{
		Label:         label,
		Arch:          res.Arch,
		MeanLatencyNs: res.MeanLatencyNs,
		AcceptedMBps:  res.AcceptedMBps,
		Saturated:     res.Saturated,
	}
}

// ablationBase is the SyntheticConfig equivalent of runConfigured's fixed
// parameters (uniform traffic, seed 0xAB1A7E, 1500/4000/15000 cycles).
func ablationBase(arch router.Arch, rateMBps float64, shards int) SyntheticConfig {
	return SyntheticConfig{Arch: arch, Pattern: "uniform", RateMBps: rateMBps,
		WarmupCycles: 1500, MeasureCycles: 4000, DrainCycles: 15000,
		Seed: 0xAB1A7E, Shards: shards}
}

// AblateBufferDepthBatched is AblateBufferDepth on lockstep cohorts: all
// (depth, architecture) cells form one job list, batched width cells per
// cohort. Cell order matches the serial engine's.
func AblateBufferDepthBatched(depths []int, rateMBps float64, archs []router.Arch, width int, pool *exp.Pool, shards int) ([]AblationPoint, error) {
	cfgs := make([]SyntheticConfig, len(depths)*len(archs))
	labels := make([]string, len(cfgs))
	for i := range cfgs {
		d := depths[i/len(archs)]
		cfg := ablationBase(archs[i%len(archs)], rateMBps, shards)
		cfg.BufferDepth = d
		cfgs[i] = cfg
		labels[i] = fmt.Sprintf("depth=%d", d)
	}
	return runAblationCohorts(cfgs, labels, width, pool)
}

// AblateArbiterBatched is AblateArbiter on lockstep cohorts.
func AblateArbiterBatched(rateMBps float64, archs []router.Arch, width int, pool *exp.Pool, shards int) ([]AblationPoint, error) {
	kinds := arbiterKinds()
	cfgs := make([]SyntheticConfig, len(kinds)*len(archs))
	labels := make([]string, len(cfgs))
	for i := range cfgs {
		k := kinds[i/len(archs)]
		cfg := ablationBase(archs[i%len(archs)], rateMBps, shards)
		cfg.BufferDepth = 4
		cfg.NewArbiter = k.mk
		cfgs[i] = cfg
		labels[i] = k.name
	}
	return runAblationCohorts(cfgs, labels, width, pool)
}

// AblateXORCostBatched is AblateXORCost with its two underlying synthetic
// runs executed as one lockstep cohort.
func AblateXORCostBatched(factors []float64, rateMBps float64, shards int) (map[float64]float64, error) {
	base := SyntheticConfig{Pattern: "uniform", RateMBps: rateMBps,
		WarmupCycles: 1500, MeasureCycles: 4000, Shards: shards}
	archs := []router.Arch{router.SpecAccurate, router.NoX}
	cfgs := make([]SyntheticConfig, len(archs))
	for i, a := range archs {
		cfg := base
		cfg.Arch = a
		cfgs[i] = cfg
	}
	runs, errs := RunSyntheticCohort(cfgs)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return xorCostTable(factors, runs[0], runs[1]), nil
}

// runAblationCohorts chunks the cells into cohorts, fans them across the
// pool, and maps results back into labeled ablation points.
func runAblationCohorts(cfgs []SyntheticConfig, labels []string, width int, pool *exp.Pool) ([]AblationPoint, error) {
	spans := batch.Chunks(len(cfgs), width)
	type cohortOut struct {
		res  []RunResult
		errs []error
	}
	couts, err := exp.Map(context.Background(), pool, len(spans),
		func(_ context.Context, si int) (cohortOut, error) {
			lo, hi := spans[si][0], spans[si][1]
			res, errs := RunSyntheticCohort(cfgs[lo:hi])
			return cohortOut{res, errs}, nil
		})
	if err != nil {
		return nil, err
	}
	points := make([]AblationPoint, len(cfgs))
	for si, span := range spans {
		for j := 0; j < span[1]-span[0]; j++ {
			i := span[0] + j
			if e := couts[si].errs[j]; e != nil {
				return nil, e
			}
			points[i] = ablationCell(labels[i], couts[si].res[j])
		}
	}
	return points, nil
}
