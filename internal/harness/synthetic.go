package harness

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/arbiter"
	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/telemetry"
)

// SyntheticConfig parameterizes one synthetic-traffic run (§5.1).
type SyntheticConfig struct {
	Arch router.Arch
	Topo noc.Topology
	// Pattern is a traffic.ByName pattern, or "selfsimilar" for the Pareto
	// ON/OFF process over uniform destinations.
	Pattern string
	// RateMBps is the offered injection bandwidth per node in MB/s — the
	// x-axis of Figures 8 and 9. It is converted per architecture using
	// the Table 2 clock period, so the comparison is in absolute time.
	RateMBps float64
	// PacketFlits is the packet size (1 for the paper's synthetic runs).
	PacketFlits int

	WarmupCycles  int64
	MeasureCycles int64
	DrainCycles   int64
	BufferDepth   int
	Seed          uint64
	// Model is the energy model (DefaultModel when zero-valued).
	Model *power.Model
	// Observe, when set, sees every delivered packet (tracing/debugging).
	Observe func(p *noc.Packet, cycle int64)
	// Probe, when set, records flit-level events and per-router metrics for
	// the run (see internal/probe). Nil disables instrumentation.
	Probe *probe.Probe
	// Progress, when set, receives per-cycle ticks and inject/deliver counts
	// for live telemetry (cycles/s, /metrics, the SSE stream). Nil costs a
	// nil check per hook.
	Progress *telemetry.Sampler
	// Recorder, when set, is this run's flight recorder: its probe shadows
	// the network (unless Probe above claims the slot) and a deadlock in the
	// drain loop or a checker violation triggers a failure-window dump in
	// finalize. Usually left nil and supplied per run via NewRecorder.
	Recorder *telemetry.Recorder
	// NewRecorder, when set and Recorder/Probe are nil, builds the run's
	// flight recorder from a deterministic per-run label — the factory the
	// cmd tools thread through sweeps and cohorts so every member records
	// into its own ring. A factory returning nil disarms recording.
	NewRecorder func(label string) *telemetry.Recorder
	// Shards selects the simulation execution mode (see network.Config):
	// 0 = automatic crossover, 1 = serial, N >= 2 = sharded worker pool.
	// Results are bit-identical at every setting.
	Shards int
	// Check, when set, arms the runtime invariant layer on the run's network
	// (see internal/check); the post-drain conservation sweep and delivery
	// oracle run before the result is returned. Nil costs nothing.
	Check *check.Checker
	// NewArbiter overrides the output-arbiter constructor (see
	// network.Config.NewArbiter); nil keeps the default round-robin. Used by
	// the arbiter ablation.
	NewArbiter func(int) arbiter.Arbiter
	// WarmRateMBps, when positive, is the warm-up injection rate: sources
	// run at it for the warmup window and are retargeted to RateMBps at the
	// measurement boundary (RNG streams and burst state preserved). This is
	// what makes the warm phase rate-independent, so warm-start sweeps can
	// share it; a cold run with the same WarmRateMBps executes identically.
	WarmRateMBps float64
	// WarmStart switches SweepSynthetic/SweepSyntheticBatched to warm-start
	// mode: warm once per architecture at WarmRateMBps (required), then
	// resume every rate point from a copy of the warm state. Output is
	// byte-identical to the cold sweep with the same WarmRateMBps.
	WarmStart bool
	// WarmSaveDir, when set in warm-start mode, persists each freshly
	// computed per-architecture warm image into the directory (atomic write;
	// file names pin every parameter the image depends on). WarmLoadDir,
	// when set, restores cached images from the directory instead of
	// re-running the warm phase; a missing file falls back to warming, a
	// corrupt one is an error. noxsweep's -checkpoint/-restore flags.
	WarmSaveDir string
	WarmLoadDir string
	// CheckpointPath/CheckpointEvery, when both set, persist a resumable
	// full-state checkpoint (network image plus harness run state) to the
	// path every CheckpointEvery main-loop cycles, atomically overwriting
	// the previous one. RestorePath resumes a run from such a file: the
	// network must have been configured identically (structural parameters
	// are verified against the image). noxsim's -checkpoint/-restore flags.
	CheckpointPath  string
	CheckpointEvery int64
	RestorePath     string
	// Eager disables the harness's sparse-regime accelerations — the
	// per-node next-arrival lookahead and the idle fast-forward between
	// injections — stepping every main-loop cycle the classic way. Output is
	// byte-identical either way; Eager is the reference mode the sparse
	// equivalence suite compares against (and the honest baseline for the
	// sparse benchmarks).
	Eager bool
	// AlwaysActive passes through to network.Config.AlwaysActive: the kernel
	// evaluates every component every cycle, disabling quiescence, horizon
	// parking, and the dirty-port walks. The fully eager reference.
	AlwaysActive bool
	// ReplayCheckpointEvery, when positive, keeps in-memory full-state
	// checkpoints every that-many cycles (the last two are retained) and,
	// when the flight recorder trips, rewinds to the one before the failure
	// window and re-runs it with a full probe — upgrading the recorder's
	// bounded ring dump to a complete window trace
	// (<stem>.replay.trace.json). Zero disables time travel.
	ReplayCheckpointEvery int64
}

func (c *SyntheticConfig) fill() {
	if c.Topo.Width == 0 {
		c.Topo = noc.Topology{Width: 8, Height: 8}
	}
	if c.PacketFlits == 0 {
		c.PacketFlits = 1
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 3000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 10000
	}
	if c.DrainCycles == 0 {
		c.DrainCycles = 30000
	}
	if c.Seed == 0 {
		c.Seed = 0xA11CE
	}
	if c.Model == nil {
		m := power.DefaultModel()
		c.Model = &m
	}
}

// ErrRateInfeasible marks the expected end of a rate ladder: the offered
// bandwidth exceeds what one injection port can physically carry at the
// architecture's clock (over one packet per cycle). Sweeps treat it as the
// end of that architecture's series; any other error from a run is a real
// failure and is propagated.
var ErrRateInfeasible = errors.New("offered rate exceeds injection capacity")

// RunSynthetic executes one (architecture, pattern, rate) point and
// returns its latency, throughput, and energy results.
//
// The run itself lives in synthMember (member.go): RunSynthetic is the
// standalone driver — build one network, step it between the member's
// per-cycle hooks — and RunSyntheticCohort (batched.go) is the lockstep
// driver over the same hooks.
func RunSynthetic(cfg SyntheticConfig) (RunResult, error) {
	m, err := prepareSynthetic(cfg)
	if err != nil {
		return RunResult{}, err
	}
	net, err := network.Build(m.netConfig())
	if err != nil {
		return RunResult{}, err
	}
	defer net.Close()
	m.attach(net)
	if cfg.RestorePath != "" {
		w, err := loadWarmFile(cfg.RestorePath)
		if err != nil {
			return RunResult{}, fmt.Errorf("harness: restore %s: %w", cfg.RestorePath, err)
		}
		if err := m.restoreWarm(w); err != nil {
			return RunResult{}, fmt.Errorf("harness: restore %s: %w", cfg.RestorePath, err)
		}
	}

	for cyc := net.Cycle(); cyc < m.total; cyc = net.Cycle() {
		m.injectCycle(cyc)
		net.Step()
		m.cfg.Progress.Tick(cyc)
		// Sparse regime: with everything parked and the next arrival known,
		// jump the clock instead of stepping empty cycles. FastForwardIdle
		// preserves per-cycle probe sampling, so the skip is unobservable.
		if skip := m.idleSkip(); skip > 0 {
			net.FastForwardIdle(skip)
		}
	}

	// Drain without new traffic so measured packets can complete (deadline
	// and wedge handling live in needsDrainStep).
	m.enterDrain()
	for m.needsDrainStep() {
		net.Step()
		m.cfg.Progress.Tick(net.Cycle())
	}
	return m.finalize(), nil
}

// SweepPoint is one x-axis point of Figures 8/9.
type SweepPoint struct {
	RateMBps float64
	Results  map[router.Arch]RunResult
}

// SweepSynthetic runs every architecture across the given offered rates,
// stopping an architecture's series after its first saturated point (the
// paper's curves end at saturation). Architectures whose clock cannot even
// offer the rate (ErrRateInfeasible) likewise end their series; any other
// error is a real failure and is returned.
//
// A pool with more than one worker runs every (rate, architecture) point
// speculatively in parallel and then truncates each architecture's series
// at its first saturated or infeasible point, reproducing the serial
// stop-at-saturation output bit for bit: same points, same RunResults,
// same rendered CSV. A nil pool (or one worker) runs the classic serial
// loop, which never simulates beyond a dead series.
func SweepSynthetic(base SyntheticConfig, rates []float64, pool *exp.Pool) ([]SweepPoint, error) {
	if base.WarmStart {
		return sweepWarm(base, rates, pool)
	}
	if pool.Workers() <= 1 || len(rates) == 0 {
		return sweepSerial(base, rates)
	}

	// Speculative fan-out: all points, rate-major so index order equals the
	// serial visit order.
	archs := router.Archs
	outs, err := exp.Map(context.Background(), pool, len(rates)*len(archs),
		func(_ context.Context, i int) (pointOutcome, error) {
			cfg := base
			cfg.RateMBps = rates[i/len(archs)]
			cfg.Arch = archs[i%len(archs)]
			res, err := cfg.runPoint()
			return pointOutcome{res, err}, nil
		})
	if err != nil {
		return nil, err
	}
	return assembleSweep(rates, archs, outs)
}

// pointOutcome is one speculative sweep point's result, indexed rate-major
// (index = rateIdx*len(archs) + archIdx) in the grids assembleSweep takes.
type pointOutcome struct {
	res RunResult
	err error
}

// assembleSweep reconstructs the serial stop-at-saturation walk from a
// rate-major grid of speculative outcomes: include results up to and
// including the first saturated point; an infeasible point ends the
// series; a real error is remembered at the point the serial loop would
// have hit it. Shared by the parallel and batched sweep paths so both
// reproduce sweepSerial's output bit for bit.
func assembleSweep(rates []float64, archs []router.Arch, outs []pointOutcome) ([]SweepPoint, error) {
	lastRate := 0 // index of the last SweepPoint the serial loop would append
	includeEnd := make([]int, len(archs))
	var firstErr error
	errRate, errArch := len(rates), len(archs)
	for ai := range archs {
		includeEnd[ai] = -1
		death := len(rates) - 1
		for ri := range rates {
			o := outs[ri*len(archs)+ai]
			if o.err != nil {
				if !errors.Is(o.err, ErrRateInfeasible) && (ri < errRate || (ri == errRate && ai < errArch)) {
					firstErr, errRate, errArch = o.err, ri, ai
				}
				death = ri
				break
			}
			includeEnd[ai] = ri
			if o.res.Saturated {
				death = ri
				break
			}
		}
		if death > lastRate {
			lastRate = death
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	points := make([]SweepPoint, 0, lastRate+1)
	for ri := 0; ri <= lastRate; ri++ {
		pt := SweepPoint{RateMBps: rates[ri], Results: map[router.Arch]RunResult{}}
		for ai, arch := range archs {
			if ri <= includeEnd[ai] {
				pt.Results[arch] = outs[ri*len(archs)+ai].res
			}
		}
		points = append(points, pt)
	}
	return points, nil
}

// runPoint runs one sweep point with the sweep's base configuration
// specialized to c's architecture and rate.
func (c SyntheticConfig) runPoint() (RunResult, error) {
	return RunSynthetic(c)
}

// sweepSerial is the one-point-at-a-time sweep: the reference semantics
// the parallel path must reproduce exactly.
func sweepSerial(base SyntheticConfig, rates []float64) ([]SweepPoint, error) {
	alive := map[router.Arch]bool{}
	for _, a := range router.Archs {
		alive[a] = true
	}
	var points []SweepPoint
	for _, rate := range rates {
		pt := SweepPoint{RateMBps: rate, Results: map[router.Arch]RunResult{}}
		for _, arch := range router.Archs {
			if !alive[arch] {
				continue
			}
			cfg := base
			cfg.Arch = arch
			cfg.RateMBps = rate
			res, err := cfg.runPoint()
			if err != nil {
				if errors.Is(err, ErrRateInfeasible) {
					alive[arch] = false
					continue
				}
				return nil, err
			}
			pt.Results[arch] = res
			if res.Saturated {
				alive[arch] = false
			}
		}
		points = append(points, pt)
		any := false
		for _, v := range alive {
			any = any || v
		}
		if !any {
			break
		}
	}
	return points, nil
}

// SaturationMBps returns each architecture's saturation throughput: the
// highest accepted bandwidth observed across the sweep.
func SaturationMBps(points []SweepPoint) map[router.Arch]float64 {
	sat := map[router.Arch]float64{}
	for _, pt := range points {
		for arch, res := range pt.Results {
			if res.AcceptedMBps > sat[arch] {
				sat[arch] = res.AcceptedMBps
			}
		}
	}
	return sat
}

// DefaultRates returns a sweep ladder appropriate for the pattern on the
// full 8x8 system: coarse steps to saturation. Uniform-class patterns
// reach ~2.8 GB/s/node; permutations concentrate load and saturate lower.
func DefaultRates(pattern string) []float64 {
	var max float64
	switch pattern {
	case "uniform", "selfsimilar":
		max = 3400
	case "neighbor":
		max = 6200
	case "hotspot":
		max = 1400
	default: // transpose, bitcomp, bitrev, shuffle, tornado
		max = 2000
	}
	// Compute each rung directly as a fraction of max: repeated float
	// addition accumulates rounding error and can make the accumulated sum
	// overshoot max on the 17th step, silently dropping the top rung.
	rates := make([]float64, 0, 17)
	for i := 1; i <= 17; i++ {
		rates = append(rates, math.Round(max*float64(i)/17))
	}
	return rates
}
