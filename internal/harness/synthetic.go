package harness

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/check"
	"repro/internal/exp"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/power"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// SyntheticConfig parameterizes one synthetic-traffic run (§5.1).
type SyntheticConfig struct {
	Arch router.Arch
	Topo noc.Topology
	// Pattern is a traffic.ByName pattern, or "selfsimilar" for the Pareto
	// ON/OFF process over uniform destinations.
	Pattern string
	// RateMBps is the offered injection bandwidth per node in MB/s — the
	// x-axis of Figures 8 and 9. It is converted per architecture using
	// the Table 2 clock period, so the comparison is in absolute time.
	RateMBps float64
	// PacketFlits is the packet size (1 for the paper's synthetic runs).
	PacketFlits int

	WarmupCycles  int64
	MeasureCycles int64
	DrainCycles   int64
	BufferDepth   int
	Seed          uint64
	// Model is the energy model (DefaultModel when zero-valued).
	Model *power.Model
	// Observe, when set, sees every delivered packet (tracing/debugging).
	Observe func(p *noc.Packet, cycle int64)
	// Probe, when set, records flit-level events and per-router metrics for
	// the run (see internal/probe). Nil disables instrumentation.
	Probe *probe.Probe
	// Progress, when set, receives per-cycle ticks for cycles/sec reporting.
	Progress *probe.Progress
	// Shards selects the simulation execution mode (see network.Config):
	// 0 = automatic crossover, 1 = serial, N >= 2 = sharded worker pool.
	// Results are bit-identical at every setting.
	Shards int
	// Check, when set, arms the runtime invariant layer on the run's network
	// (see internal/check); the post-drain conservation sweep and delivery
	// oracle run before the result is returned. Nil costs nothing.
	Check *check.Checker
}

func (c *SyntheticConfig) fill() {
	if c.Topo.Width == 0 {
		c.Topo = noc.Topology{Width: 8, Height: 8}
	}
	if c.PacketFlits == 0 {
		c.PacketFlits = 1
	}
	if c.WarmupCycles == 0 {
		c.WarmupCycles = 3000
	}
	if c.MeasureCycles == 0 {
		c.MeasureCycles = 10000
	}
	if c.DrainCycles == 0 {
		c.DrainCycles = 30000
	}
	if c.Seed == 0 {
		c.Seed = 0xA11CE
	}
	if c.Model == nil {
		m := power.DefaultModel()
		c.Model = &m
	}
}

// ErrRateInfeasible marks the expected end of a rate ladder: the offered
// bandwidth exceeds what one injection port can physically carry at the
// architecture's clock (over one packet per cycle). Sweeps treat it as the
// end of that architecture's series; any other error from a run is a real
// failure and is propagated.
var ErrRateInfeasible = errors.New("offered rate exceeds injection capacity")

// RunSynthetic executes one (architecture, pattern, rate) point and
// returns its latency, throughput, and energy results.
func RunSynthetic(cfg SyntheticConfig) (RunResult, error) {
	cfg.fill()
	periodNs := physical.ClockPeriodNs(cfg.Arch)
	flitRate := FlitsPerNodeCycle(cfg.RateMBps, periodNs)
	pktRate := flitRate / float64(cfg.PacketFlits)
	if pktRate >= 1 {
		return RunResult{}, fmt.Errorf("harness: offered rate %.0f MB/s/node exceeds one packet per cycle at %v: %w", cfg.RateMBps, cfg.Arch, ErrRateInfeasible)
	}

	var pattern traffic.Pattern
	var err error
	selfSimilar := cfg.Pattern == "selfsimilar"
	if selfSimilar {
		pattern = traffic.Uniform{Topo: cfg.Topo}
	} else {
		pattern, err = traffic.ByName(cfg.Pattern, cfg.Topo)
		if err != nil {
			return RunResult{}, err
		}
	}

	net, err := network.Build(network.Config{Topo: cfg.Topo, Arch: cfg.Arch, BufferDepth: cfg.BufferDepth, Probe: cfg.Probe, Shards: cfg.Shards, Check: cfg.Check})
	if err != nil {
		return RunResult{}, err
	}
	defer net.Close()
	col := stats.NewCollector(cfg.WarmupCycles, cfg.WarmupCycles+cfg.MeasureCycles)
	col.Reserve(int(pktRate*float64(cfg.Topo.Nodes())*float64(cfg.MeasureCycles)) + 64)
	net.OnDeliver = col.OnDeliver
	if cfg.Observe != nil {
		net.OnDeliver = func(p *noc.Packet, cycle int64) {
			col.OnDeliver(p, cycle)
			cfg.Observe(p, cycle)
		}
	}

	base := sim.NewRNG(cfg.Seed)
	nodes := cfg.Topo.Nodes()
	procs := make([]traffic.Process, nodes)
	dests := make([]*sim.RNG, nodes)
	for i := range procs {
		r := base.Fork(uint64(i))
		if selfSimilar {
			procs[i] = traffic.NewSelfSimilar(pktRate, r)
		} else {
			procs[i] = &traffic.Bernoulli{P: pktRate, RNG: r}
		}
		dests[i] = base.Fork(uint64(1000 + i))
	}

	var startCounters power.Counters
	totalCycles := cfg.WarmupCycles + cfg.MeasureCycles
	for cyc := int64(0); cyc < totalCycles; cyc++ {
		if cyc == cfg.WarmupCycles {
			startCounters = *net.Counters()
		}
		for id := 0; id < nodes; id++ {
			if !procs[id].Tick() {
				continue
			}
			src := noc.NodeID(id)
			dst := pattern.Dest(src, dests[id])
			if dst == src {
				continue // permutation fixed point: node does not inject
			}
			p := net.Inject(src, dst, cfg.PacketFlits, 0)
			col.OnCreate(p, cyc)
		}
		net.Step()
		cfg.Progress.Tick(cyc)
	}
	window := net.Counters().Sub(startCounters)

	// Drain without new traffic so measured packets can complete. A fully
	// quiescent network with the collector still incomplete is wedged —
	// no evaluation can deliver anything further — so jump to the deadline
	// instead of stepping dead cycles.
	deadline := net.Cycle() + cfg.DrainCycles
	for !col.Complete() && net.Cycle() < deadline {
		if net.FullyIdle() {
			net.FastForwardIdle(deadline - net.Cycle())
			break
		}
		net.Step()
		cfg.Progress.Tick(net.Cycle())
	}

	// With a checker armed and the network fully drained, sweep the
	// post-drain invariants so a caller inspecting cfg.Check sees the
	// conservation results and the delivery oracle. A saturated point that
	// hit the drain deadline still has packets legitimately in flight — the
	// oracle would miscount them as lost, so the sweep is skipped.
	if net.Outstanding() == 0 {
		net.CheckInvariants()
	}

	accepted := col.AcceptedFlitsPerNodeCycle(nodes)
	res := RunResult{
		Arch:              cfg.Arch,
		Label:             cfg.Pattern,
		Nodes:             nodes,
		PeriodNs:          periodNs,
		OfferedMBps:       cfg.RateMBps,
		AcceptedMBps:      MBpsPerNode(accepted, periodNs),
		MeanLatencyCycles: col.MeanLatencyCycles(),
		DeliveredPackets:  col.WindowPackets(),
		Window:            window,
	}
	res.MeanLatencyNs = res.MeanLatencyCycles * periodNs
	res.P50LatencyNs = col.PercentileLatencyCycles(0.50) * periodNs
	res.P95LatencyNs = col.PercentileLatencyCycles(0.95) * periodNs
	res.P99LatencyNs = col.PercentileLatencyCycles(0.99) * periodNs
	res.MaxLatencyNs = float64(col.MaxLatencyCycles()) * periodNs
	// Saturation: measured packets never drained, or deliveries inside the
	// window fell visibly short of what the sources created (compared
	// against actual creations, not the nominal rate, since permutation
	// patterns have non-injecting fixed points).
	res.Saturated = !col.Complete() ||
		float64(col.WindowFlits()) < 0.92*float64(col.CreatedFlits())

	res.Energy = cfg.Model.Energy(window, cfg.Arch == router.NoX)
	if col.WindowPackets() > 0 {
		res.PacketEnergyPJ = res.Energy.TotalPJ() / float64(col.WindowPackets())
	}
	res.PowerMW = res.Energy.TotalPJ() / (float64(cfg.MeasureCycles) * periodNs)
	if !math.IsNaN(res.MeanLatencyNs) {
		res.EnergyDelay2 = edp2(res.PacketEnergyPJ, res.MeanLatencyNs)
	}
	return res, nil
}

// SweepPoint is one x-axis point of Figures 8/9.
type SweepPoint struct {
	RateMBps float64
	Results  map[router.Arch]RunResult
}

// SweepSynthetic runs every architecture across the given offered rates,
// stopping an architecture's series after its first saturated point (the
// paper's curves end at saturation). Architectures whose clock cannot even
// offer the rate (ErrRateInfeasible) likewise end their series; any other
// error is a real failure and is returned.
//
// A pool with more than one worker runs every (rate, architecture) point
// speculatively in parallel and then truncates each architecture's series
// at its first saturated or infeasible point, reproducing the serial
// stop-at-saturation output bit for bit: same points, same RunResults,
// same rendered CSV. A nil pool (or one worker) runs the classic serial
// loop, which never simulates beyond a dead series.
func SweepSynthetic(base SyntheticConfig, rates []float64, pool *exp.Pool) ([]SweepPoint, error) {
	if pool.Workers() <= 1 || len(rates) == 0 {
		return sweepSerial(base, rates)
	}

	// Speculative fan-out: all points, rate-major so index order equals the
	// serial visit order.
	type outcome struct {
		res RunResult
		err error
	}
	archs := router.Archs
	outs, err := exp.Map(context.Background(), pool, len(rates)*len(archs),
		func(_ context.Context, i int) (outcome, error) {
			cfg := base
			cfg.RateMBps = rates[i/len(archs)]
			cfg.Arch = archs[i%len(archs)]
			res, err := cfg.runPoint()
			return outcome{res, err}, nil
		})
	if err != nil {
		return nil, err
	}

	// Reconstruct the serial walk per architecture: include results up to
	// and including the first saturated point; an infeasible point ends the
	// series; a real error is remembered at the point the serial loop would
	// have hit it.
	lastRate := 0 // index of the last SweepPoint the serial loop would append
	includeEnd := make([]int, len(archs))
	var firstErr error
	errRate, errArch := len(rates), len(archs)
	for ai := range archs {
		includeEnd[ai] = -1
		death := len(rates) - 1
		for ri := range rates {
			o := outs[ri*len(archs)+ai]
			if o.err != nil {
				if !errors.Is(o.err, ErrRateInfeasible) && (ri < errRate || (ri == errRate && ai < errArch)) {
					firstErr, errRate, errArch = o.err, ri, ai
				}
				death = ri
				break
			}
			includeEnd[ai] = ri
			if o.res.Saturated {
				death = ri
				break
			}
		}
		if death > lastRate {
			lastRate = death
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	points := make([]SweepPoint, 0, lastRate+1)
	for ri := 0; ri <= lastRate; ri++ {
		pt := SweepPoint{RateMBps: rates[ri], Results: map[router.Arch]RunResult{}}
		for ai, arch := range archs {
			if ri <= includeEnd[ai] {
				pt.Results[arch] = outs[ri*len(archs)+ai].res
			}
		}
		points = append(points, pt)
	}
	return points, nil
}

// runPoint runs one sweep point with the sweep's base configuration
// specialized to c's architecture and rate.
func (c SyntheticConfig) runPoint() (RunResult, error) {
	return RunSynthetic(c)
}

// sweepSerial is the one-point-at-a-time sweep: the reference semantics
// the parallel path must reproduce exactly.
func sweepSerial(base SyntheticConfig, rates []float64) ([]SweepPoint, error) {
	alive := map[router.Arch]bool{}
	for _, a := range router.Archs {
		alive[a] = true
	}
	var points []SweepPoint
	for _, rate := range rates {
		pt := SweepPoint{RateMBps: rate, Results: map[router.Arch]RunResult{}}
		for _, arch := range router.Archs {
			if !alive[arch] {
				continue
			}
			cfg := base
			cfg.Arch = arch
			cfg.RateMBps = rate
			res, err := cfg.runPoint()
			if err != nil {
				if errors.Is(err, ErrRateInfeasible) {
					alive[arch] = false
					continue
				}
				return nil, err
			}
			pt.Results[arch] = res
			if res.Saturated {
				alive[arch] = false
			}
		}
		points = append(points, pt)
		any := false
		for _, v := range alive {
			any = any || v
		}
		if !any {
			break
		}
	}
	return points, nil
}

// SaturationMBps returns each architecture's saturation throughput: the
// highest accepted bandwidth observed across the sweep.
func SaturationMBps(points []SweepPoint) map[router.Arch]float64 {
	sat := map[router.Arch]float64{}
	for _, pt := range points {
		for arch, res := range pt.Results {
			if res.AcceptedMBps > sat[arch] {
				sat[arch] = res.AcceptedMBps
			}
		}
	}
	return sat
}

// DefaultRates returns a sweep ladder appropriate for the pattern on the
// full 8x8 system: coarse steps to saturation. Uniform-class patterns
// reach ~2.8 GB/s/node; permutations concentrate load and saturate lower.
func DefaultRates(pattern string) []float64 {
	var max float64
	switch pattern {
	case "uniform", "selfsimilar":
		max = 3400
	case "neighbor":
		max = 6200
	case "hotspot":
		max = 1400
	default: // transpose, bitcomp, bitrev, shuffle, tornado
		max = 2000
	}
	// Compute each rung directly as a fraction of max: repeated float
	// addition accumulates rounding error and can make the accumulated sum
	// overshoot max on the 17th step, silently dropping the top rung.
	rates := make([]float64, 0, 17)
	for i := 1; i <= 17; i++ {
		rates = append(rates, math.Round(max*float64(i)/17))
	}
	return rates
}
