package harness

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"

	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/power"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// synthMember is the per-run state of one synthetic-traffic simulation,
// factored out of RunSynthetic so the serial path and the batched lockstep
// path (RunSyntheticCohort) execute the same per-cycle code. Byte-identical
// batched output is a structural property here, not a re-implementation
// kept in sync by tests alone: both paths call the same prepare / attach /
// injectCycle / enterDrain / needsDrainStep / finalize sequence, and differ
// only in who advances the network clock between calls.
type synthMember struct {
	cfg         SyntheticConfig // filled
	periodNs    float64
	pktRate     float64
	warmPkt     float64 // warm-up packets/cycle; 0 unless WarmRateMBps is set
	selfSimilar bool
	pattern     traffic.Pattern

	net   *network.Network
	col   *stats.Collector
	procs []traffic.Process
	dests []*sim.RNG

	startCounters power.Counters
	window        power.Counters
	total         int64 // warmup + measure cycles
	deadline      int64 // drain deadline, valid after enterDrain

	// Sparse-regime lookahead (event-horizon harness). When lookahead is
	// armed, each traffic process is advanced eagerly — its Tick stream is
	// private per-node state, so consuming future cycles early is
	// stream-exact — and arr[id] holds the node's next injection cycle (or
	// the current wall when none is known yet). arrMin caches the minimum, so
	// injection-free cycles cost one comparison, and the main loop may jump a
	// fully idle network straight to arrMin. Advancing clamps at the warmup
	// boundary (Ticks past it must see the retargeted rate) and at total.
	// Lookahead is disabled whenever checkpoint, restore, replay, or
	// warm-start machinery is armed: those serialize or fork live process
	// state, which must then match the network clock exactly.
	lookahead bool
	arr       []int64
	arrMin    int64

	// ckpts is the time-travel checkpoint ring (newest last, at most two):
	// periodic full-state images taken every ReplayCheckpointEvery cycles so
	// a flight-recorder trigger can rewind and re-run the failure window
	// with a complete probe. See timeTravelReplay.
	ckpts []runCheckpoint
}

// prepareSynthetic validates and fills cfg and resolves its traffic
// pattern. The network is built separately (standalone via network.Build,
// or by a batch cohort overlaying shared construction state) and handed to
// attach.
func prepareSynthetic(cfg SyntheticConfig) (*synthMember, error) {
	cfg.fill()
	m := &synthMember{cfg: cfg}
	m.periodNs = physical.ClockPeriodNs(cfg.Arch)
	flitRate := FlitsPerNodeCycle(cfg.RateMBps, m.periodNs)
	m.pktRate = flitRate / float64(cfg.PacketFlits)
	if m.pktRate >= 1 {
		return nil, fmt.Errorf("harness: offered rate %.0f MB/s/node exceeds one packet per cycle at %v: %w", cfg.RateMBps, cfg.Arch, ErrRateInfeasible)
	}
	if cfg.WarmRateMBps > 0 {
		m.warmPkt = FlitsPerNodeCycle(cfg.WarmRateMBps, m.periodNs) / float64(cfg.PacketFlits)
		if m.warmPkt >= 1 {
			return nil, fmt.Errorf("harness: warm-up rate %.0f MB/s/node exceeds one packet per cycle at %v: %w", cfg.WarmRateMBps, cfg.Arch, ErrRateInfeasible)
		}
	}

	var err error
	m.selfSimilar = cfg.Pattern == "selfsimilar"
	if m.selfSimilar {
		m.pattern = traffic.Uniform{Topo: cfg.Topo}
	} else {
		m.pattern, err = traffic.ByName(cfg.Pattern, cfg.Topo)
		if err != nil {
			return nil, err
		}
	}
	m.total = cfg.WarmupCycles + cfg.MeasureCycles

	// Arm the flight recorder. The factory path builds one per run with a
	// deterministic label, so sweep workers and cohort members each record
	// into their own ring and dump to their own files. An explicit full
	// Probe claims the network's probe slot, so recording is skipped — the
	// user already has the complete event stream.
	if m.cfg.Recorder == nil && m.cfg.NewRecorder != nil && m.cfg.Probe == nil {
		m.cfg.Recorder = m.cfg.NewRecorder(fmt.Sprintf("%s-%s-%.0fMBps", m.cfg.Arch, m.cfg.Pattern, m.cfg.RateMBps))
	}
	m.cfg.Recorder.SetPeriodNs(m.periodNs)
	m.cfg.Recorder.BindChecker(m.cfg.Check)
	return m, nil
}

// netConfig returns the network configuration this member runs on. An
// explicit Probe wins the probe slot; otherwise the flight recorder's ring
// shadows the run.
func (m *synthMember) netConfig() network.Config {
	pr := m.cfg.Probe
	if pr == nil {
		pr = m.cfg.Recorder.Probe()
	}
	var obs func(cycle int64, active int)
	if m.cfg.Progress != nil {
		obs = m.cfg.Progress.Observe
	}
	return network.Config{Topo: m.cfg.Topo, Arch: m.cfg.Arch, BufferDepth: m.cfg.BufferDepth,
		NewArbiter: m.cfg.NewArbiter, Probe: pr, Shards: m.cfg.Shards, Check: m.cfg.Check,
		AlwaysActive: m.cfg.AlwaysActive, Observer: obs}
}

// attach binds the member to its freshly built network: delivery collector,
// observation hook, and per-node traffic processes.
func (m *synthMember) attach(net *network.Network) {
	m.net = net
	cfg := &m.cfg
	m.col = stats.NewCollector(cfg.WarmupCycles, cfg.WarmupCycles+cfg.MeasureCycles)
	m.col.Reserve(int(m.pktRate*float64(cfg.Topo.Nodes())*float64(cfg.MeasureCycles)) + 64)
	net.OnDeliver = m.col.OnDeliver
	if cfg.Observe != nil {
		col, obs := m.col, cfg.Observe
		net.OnDeliver = func(p *noc.Packet, cycle int64) {
			col.OnDeliver(p, cycle)
			obs(p, cycle)
		}
	}
	if cfg.Progress != nil {
		prog, inner := cfg.Progress, net.OnDeliver
		net.OnDeliver = func(p *noc.Packet, cycle int64) {
			inner(p, cycle)
			prog.CountDeliver(1, int64(p.Length))
		}
		prog.RunStarted()
	}

	// With a warm-up rate configured, sources start at it and are retargeted
	// to the measurement rate at the warmup boundary (injectCycle). The RNG
	// forks depend only on the seed, so the warm phase's streams are
	// identical across rate points — the property warm-start forking relies
	// on for byte-identical output.
	rate := m.pktRate
	if m.warmPkt > 0 {
		rate = m.warmPkt
	}
	base := sim.NewRNG(cfg.Seed)
	nodes := cfg.Topo.Nodes()
	m.procs = make([]traffic.Process, nodes)
	m.dests = make([]*sim.RNG, nodes)
	for i := range m.procs {
		r := base.Fork(uint64(i))
		if m.selfSimilar {
			m.procs[i] = traffic.NewSelfSimilar(rate, r)
		} else {
			m.procs[i] = &traffic.Bernoulli{P: rate, RNG: r}
		}
		m.dests[i] = base.Fork(uint64(1000 + i))
	}

	m.lookahead = !cfg.Eager &&
		cfg.CheckpointPath == "" && cfg.CheckpointEvery == 0 && cfg.RestorePath == "" &&
		cfg.ReplayCheckpointEvery == 0 &&
		!cfg.WarmStart && cfg.WarmSaveDir == "" && cfg.WarmLoadDir == ""
	if m.lookahead {
		m.arr = make([]int64, nodes)
		for id := range m.arr {
			m.advanceArr(id, 0, m.wallAt(0))
		}
		m.recomputeArrMin()
	}
}

// advanceArr consumes node id's Tick stream from cycle `from` until the next
// injection hit or the wall, recording the result in arr[id]. arr[id] ==
// wall means the stream is consumed up to the wall with no hit pending; the
// wall cycle's own Tick has NOT been consumed. The wall is the warmup
// boundary until the boundary's retarget has run (even for an advance that
// starts exactly at the boundary — the callers pass wallAt of the *current*
// cycle, so a hit on the boundary's eve parks at the wall rather than
// reading pre-retarget Ticks for post-boundary cycles), then end-of-window.
func (m *synthMember) advanceArr(id int, from, wall int64) {
	for c := from; c < wall; c++ {
		if m.procs[id].Tick() {
			m.arr[id] = c
			return
		}
	}
	m.arr[id] = wall
}

// wallAt returns the Tick-consumption wall in force at main-loop cycle cyc.
func (m *synthMember) wallAt(cyc int64) int64 {
	if cyc < m.cfg.WarmupCycles {
		return m.cfg.WarmupCycles
	}
	return m.total
}

// recomputeArrMin refreshes the cached earliest pending arrival.
func (m *synthMember) recomputeArrMin() {
	m.arrMin = m.total
	for _, at := range m.arr {
		if at < m.arrMin {
			m.arrMin = at
		}
	}
}

// idleSkip returns how many cycles the main loop may jump right now: the
// distance from the next cycle to the earliest upcoming arrival (or wall)
// while the network is fully idle, 0 when stepping must continue. The caller
// performs the jump with FastForwardIdle, which preserves per-cycle probe
// sampling, so skipped cycles are observationally identical to stepped ones.
func (m *synthMember) idleSkip() int64 {
	if !m.lookahead || !m.net.FullyIdle() {
		return 0
	}
	next := m.net.Cycle()
	if skip := m.arrMin - next; skip > 0 && next < m.total {
		if max := m.total - next; skip > max {
			skip = max
		}
		return skip
	}
	return 0
}

// injectCycle performs the pre-step work of main-loop cycle cyc: the
// measurement-window counter snapshot at the warmup boundary, then one
// injection opportunity per node. The caller steps the network afterwards.
func (m *synthMember) injectCycle(cyc int64) {
	// Checkpoints stop once a failure is latched: later ones would evict the
	// very state time travel needs to rewind behind the failure window.
	if every := m.cfg.ReplayCheckpointEvery; every > 0 && cyc%every == 0 && !m.cfg.Recorder.Triggered() {
		m.checkpoint(cyc)
	}
	if every := m.cfg.CheckpointEvery; every > 0 && m.cfg.CheckpointPath != "" && cyc > 0 && cyc%every == 0 {
		m.checkpointToFile()
	}
	if cyc == m.cfg.WarmupCycles {
		m.startCounters = *m.net.Counters()
		if m.warmPkt > 0 && m.warmPkt != m.pktRate {
			for _, p := range m.procs {
				if rt, ok := p.(traffic.Retargetable); ok {
					rt.Retarget(m.pktRate)
				}
			}
		}
		if m.lookahead {
			// Every node's stream is parked exactly at the boundary wall;
			// resume it against the retargeted measurement rate.
			for id := range m.arr {
				m.advanceArr(id, cyc, m.total)
			}
			m.recomputeArrMin()
		}
	}
	if m.lookahead {
		if cyc < m.arrMin {
			return // no arrival this cycle anywhere — the common sparse case
		}
		injected := 0
		wall := m.wallAt(cyc)
		for id := range m.arr {
			if m.arr[id] != cyc {
				continue
			}
			src := noc.NodeID(id)
			dst := m.pattern.Dest(src, m.dests[id])
			if dst != src { // permutation fixed points do not inject
				p := m.net.Inject(src, dst, m.cfg.PacketFlits, 0)
				m.col.OnCreate(p, cyc)
				injected++
			}
			m.advanceArr(id, cyc+1, wall)
		}
		m.recomputeArrMin()
		if injected > 0 {
			m.cfg.Progress.CountInject(int64(injected), int64(injected*m.cfg.PacketFlits))
		}
		return
	}
	injected := 0
	for id := 0; id < len(m.procs); id++ {
		if !m.procs[id].Tick() {
			continue
		}
		src := noc.NodeID(id)
		dst := m.pattern.Dest(src, m.dests[id])
		if dst == src {
			continue // permutation fixed point: node does not inject
		}
		p := m.net.Inject(src, dst, m.cfg.PacketFlits, 0)
		m.col.OnCreate(p, cyc)
		injected++
	}
	if injected > 0 {
		m.cfg.Progress.CountInject(int64(injected), int64(injected*m.cfg.PacketFlits))
	}
}

// enterDrain closes the measurement window (energy counters) and arms the
// drain deadline. Call once, after main-loop cycle total-1 has stepped.
func (m *synthMember) enterDrain() {
	m.window = m.net.Counters().Sub(m.startCounters)
	m.deadline = m.net.Cycle() + m.cfg.DrainCycles
}

// needsDrainStep reports whether the drain loop should step the network
// again. A fully quiescent network with the collector still incomplete is
// wedged — no evaluation can deliver anything further — so it jumps to the
// deadline instead of stepping dead cycles and reports done. The exception
// is quiescence with recovery machinery still scheduled (a mid-run kill or
// a retransmission timeout): that is a wait, not a wedge, so the drain
// jumps to the next event boundary and continues if it re-activated the
// network.
func (m *synthMember) needsDrainStep() bool {
	if m.col.Complete() || m.net.Cycle() >= m.deadline {
		return false
	}
	if m.net.FullyIdle() {
		if m.net.RecoveryPending() {
			m.net.FastForwardIdle(m.deadline - m.net.Cycle())
			return !m.net.FullyIdle() && m.net.Cycle() < m.deadline
		}
		if out := m.net.Outstanding(); out > 0 {
			m.cfg.Recorder.Trigger(m.net.Cycle(),
				fmt.Sprintf("deadlock: network fully quiescent with %d packets outstanding", out))
		}
		m.net.FastForwardIdle(m.deadline - m.net.Cycle())
		return false
	}
	return true
}

// finalize runs the post-drain invariant sweep and assembles the result.
func (m *synthMember) finalize() RunResult {
	cfg := &m.cfg
	net, col := m.net, m.col

	// With a checker armed and the network fully drained, sweep the
	// post-drain invariants so a caller inspecting cfg.Check sees the
	// conservation results and the delivery oracle. A saturated point that
	// hit the drain deadline still has packets legitimately in flight — the
	// oracle would miscount them as lost, so the sweep is skipped.
	if net.Outstanding() == 0 {
		net.CheckInvariants()
	}

	nodes := cfg.Topo.Nodes()
	accepted := col.AcceptedFlitsPerNodeCycle(nodes)
	res := RunResult{
		Arch:              cfg.Arch,
		Label:             cfg.Pattern,
		Nodes:             nodes,
		PeriodNs:          m.periodNs,
		OfferedMBps:       cfg.RateMBps,
		AcceptedMBps:      MBpsPerNode(accepted, m.periodNs),
		MeanLatencyCycles: col.MeanLatencyCycles(),
		DeliveredPackets:  col.WindowPackets(),
		Window:            m.window,
	}
	res.MeanLatencyNs = res.MeanLatencyCycles * m.periodNs
	res.P50LatencyNs, res.P95LatencyNs, res.P99LatencyNs = col.LatencyPercentilesNs(m.periodNs)
	res.MaxLatencyNs = float64(col.MaxLatencyCycles()) * m.periodNs
	// Saturation: measured packets never drained, or deliveries inside the
	// window fell visibly short of what the sources created (compared
	// against actual creations, not the nominal rate, since permutation
	// patterns have non-injecting fixed points).
	res.Saturated = !col.Complete() ||
		float64(col.WindowFlits()) < 0.92*float64(col.CreatedFlits())

	res.Energy = cfg.Model.Energy(m.window, cfg.Arch == router.NoX)
	if col.WindowPackets() > 0 {
		res.PacketEnergyPJ = res.Energy.TotalPJ() / float64(col.WindowPackets())
	}
	res.PowerMW = res.Energy.TotalPJ() / (float64(cfg.MeasureCycles) * m.periodNs)
	if !math.IsNaN(res.MeanLatencyNs) {
		res.EnergyDelay2 = edp2(res.PacketEnergyPJ, res.MeanLatencyNs)
	}

	// Telemetry epilogue: fold this run's window events into the live
	// per-arch counters, and dump the failure window if anything (checker
	// violation, drain deadlock) tripped the flight recorder.
	cfg.Progress.RunDone(cfg.Arch.String(), m.window)
	if cfg.Recorder.Triggered() {
		tracePath, err := cfg.Recorder.Flush(func(w io.Writer) {
			net.WriteDiagnostic(w)
			cfg.Check.WriteReport(w)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "harness:", err)
		}
		// Time travel: with periodic checkpoints armed, rewind to the last
		// checkpoint before the failure window and re-run it with a full
		// probe, upgrading the bounded ring dump to a complete trace.
		if replayPath, err := m.timeTravelReplay(tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "harness: time-travel replay:", err)
		} else if replayPath != "" {
			slog.Default().Info("time travel: replayed failure window with full probe",
				"trace", replayPath)
		}
	}
	return res
}
