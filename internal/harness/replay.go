package harness

import (
	"os"
	"strings"

	"repro/internal/check"
	"repro/internal/probe"
	"repro/internal/snapshot"
	"repro/internal/snapshot/codec"
)

// Time-travel replay. The always-on flight recorder dumps the last W cycles
// of events from a bounded ring — cheap enough to leave armed, but bounded:
// a busy window overflows the ring and the dump starts mid-window. With
// ReplayCheckpointEvery set, the member also keeps the last two full-state
// checkpoints (network snapshot plus harness run state) in memory and, when
// the recorder trips, rewinds to the newest checkpoint at or before the
// failure window and re-executes forward with a full-size probe. The replay
// is bit-identical to the original execution — same injections, same
// arbitration, same failure — so the resulting trace is the complete
// failure window, not the ring's tail.

// runCheckpoint is one periodic full-state checkpoint, taken between steps
// at the top of injectCycle (so replay re-runs that cycle's injection).
type runCheckpoint struct {
	cycle int64
	net   []byte
	run   []byte
}

// checkpoint captures the member's complete state at main-loop cycle cyc.
// Non-serializable runs (a custom arbiter) disable checkpointing on the
// first failure rather than erroring every period.
func (m *synthMember) checkpoint(cyc int64) {
	img, err := snapshot.Encode(m.net)
	if err != nil {
		m.cfg.ReplayCheckpointEvery = 0
		m.ckpts = nil
		return
	}
	e := codec.NewEncoder()
	if err := m.saveRunState(e); err != nil {
		m.cfg.ReplayCheckpointEvery = 0
		m.ckpts = nil
		return
	}
	ck := runCheckpoint{cycle: cyc, net: img, run: e.Bytes()}
	if len(m.ckpts) < 2 {
		m.ckpts = append(m.ckpts, ck)
		return
	}
	m.ckpts[0] = m.ckpts[1]
	m.ckpts[1] = ck
}

// timeTravelReplay re-executes the flight recorder's failure window from
// the best checkpoint with a full probe and writes the complete Perfetto
// trace next to the recorder's ring dump (<stem>.replay.trace.json). It
// returns "" when replay is not armed or has nothing to work from.
func (m *synthMember) timeTravelReplay(flightTrace string) (string, error) {
	if len(m.ckpts) == 0 || flightTrace == "" || !m.cfg.Recorder.Triggered() {
		return "", nil
	}
	start, end := m.cfg.Recorder.Window()
	// Newest checkpoint at or before the window start covers the whole
	// window; if the trigger came too early for that, the oldest kept
	// checkpoint is the furthest back we can rewind.
	ck := m.ckpts[0]
	for _, c := range m.ckpts[1:] {
		if c.cycle <= start {
			ck = c
		}
	}

	// Rebuild the run around a full probe: ring sized for the entire window
	// rather than the flight recorder's bounded tail, no recorder (the
	// failure is already latched), a fresh checker when the image carries a
	// ledger (restore requires the armed states to match).
	rcfg := m.cfg
	rcfg.Recorder = nil
	rcfg.NewRecorder = nil
	rcfg.Progress = nil
	rcfg.Observe = nil
	rcfg.ReplayCheckpointEvery = 0
	rcfg.Probe = probe.New(probe.Config{RingEvents: 1 << 21, PeriodNs: m.periodNs})
	if m.cfg.Check != nil {
		rcfg.Check = check.New(check.Config{})
	}
	r, err := prepareSynthetic(rcfg)
	if err != nil {
		return "", err
	}
	net, err := snapshot.Decode(ck.net, r.netConfig())
	if err != nil {
		return "", err
	}
	defer net.Close()
	r.attach(net)
	if err := r.restoreRunState(ck.run); err != nil {
		return "", err
	}

	// Re-execute to the trigger cycle through the same hooks the original
	// run used, crossing into the drain phase if the trigger came there.
	draining := false
	for net.Cycle() <= end {
		if cyc := net.Cycle(); cyc < r.total {
			r.injectCycle(cyc)
			net.Step()
			continue
		}
		if !draining {
			r.enterDrain()
			draining = true
		}
		if !r.needsDrainStep() {
			break
		}
		net.Step()
	}

	path := strings.TrimSuffix(flightTrace, ".trace.json") + ".replay.trace.json"
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	werr := rcfg.Probe.WriteChromeTraceWindow(f, start, end)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}
	return path, nil
}
