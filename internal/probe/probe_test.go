package probe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRingWrap checks the ring keeps exactly the most recent events in
// chronological order once it wraps, and accounts for every overwrite.
func TestRingWrap(t *testing.T) {
	p := New(Config{RingEvents: 8})
	if len(p.ring) != 8 {
		t.Fatalf("ring size %d, want 8", len(p.ring))
	}
	for c := int64(0); c < 21; c++ {
		p.Link(c, int(c), 0, uint64(c), 0)
	}
	if p.EventCount() != 21 {
		t.Errorf("EventCount %d, want 21", p.EventCount())
	}
	if p.Dropped() != 13 {
		t.Errorf("Dropped %d, want 13", p.Dropped())
	}
	evs := p.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := int64(13 + i); ev.Cycle != want {
			t.Errorf("event %d: cycle %d, want %d (oldest-first order)", i, ev.Cycle, want)
		}
	}
}

// TestRingRoundsUpToPowerOfTwo pins the capacity contract the mask-index
// emit path depends on.
func TestRingRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{1, 1}, {3, 4}, {8, 8}, {1000, 1024}} {
		if p := New(Config{RingEvents: tc.ask}); len(p.ring) != tc.want {
			t.Errorf("RingEvents %d: ring size %d, want %d", tc.ask, len(p.ring), tc.want)
		}
	}
}

// TestEmitDoesNotAllocate is the package-local half of the zero-cost
// contract: recording an event into the preallocated ring must not allocate
// (the network-level half — nil probes costing nothing — is pinned by
// BenchmarkNetworkCycle's 0 allocs/op).
func TestEmitDoesNotAllocate(t *testing.T) {
	p := New(Config{RingEvents: 64})
	p.Attach(2, 2, 5, 4, 4)
	if avg := testing.AllocsPerRun(100, func() {
		p.Traverse(1, 0, 1, 42, 0)
		p.Collision(1, 0, 1, 2, 0xFF)
		p.ModeCycle(0, false)
		p.Occupancy(0, 3)
	}); avg != 0 {
		t.Errorf("emit path allocates %.1f allocs per cycle, want 0", avg)
	}
}

// TestAttachOnceAndOutOfRange checks the sharing and defensiveness
// contracts: a second Attach (lockstep multi-network setups share one
// probe) keeps the first geometry, and emits for nodes outside it count in
// totals without touching router metrics.
func TestAttachOnceAndOutOfRange(t *testing.T) {
	p := New(Config{RingEvents: 16})
	p.Attach(2, 2, 5, 4, 4)
	p.Attach(8, 8, 5, 64, 4)
	if w, h, _ := p.Geometry(); w != 2 || h != 2 {
		t.Errorf("second Attach changed geometry to %dx%d", w, h)
	}
	p.Traverse(0, 63, 0, 1, 0) // node 63 does not exist on the 2x2 grid
	if p.Totals().Traversals != 1 {
		t.Errorf("out-of-range traverse not counted in totals")
	}
	for _, m := range p.Routers() {
		if m.Traversals != 0 {
			t.Errorf("out-of-range traverse credited to router %d", m.Node)
		}
	}
}

// TestSamplerDeltasAndLockstepTicks checks the time-series sampler emits
// interval deltas (not running totals) and ignores the duplicate per-cycle
// ticks a lockstep dual-network setup produces.
func TestSamplerDeltasAndLockstepTicks(t *testing.T) {
	p := New(Config{RingEvents: 16, SampleEvery: 10})
	p.Attach(2, 2, 5, 4, 4)
	for c := int64(1); c <= 20; c++ {
		p.Traverse(c, 0, 0, 1, 0)
		p.Tick(c, 3)
		p.Tick(c, 3) // second physical network's tick for the same cycle
	}
	s := p.Samples()
	if len(s) != 2 {
		t.Fatalf("got %d samples, want 2", len(s))
	}
	for i, want := range []int64{10, 20} {
		if s[i].Cycle != want || s[i].Traversals != 10 {
			t.Errorf("sample %d: cycle %d traversals %d, want cycle %d traversals 10",
				i, s[i].Cycle, s[i].Traversals, want)
		}
	}
}

// TestExportersDeterministic checks two probes fed the identical stream
// render byte-identical output on every exporter — the property the
// parallel-determinism tests at the network level rely on.
func TestExportersDeterministic(t *testing.T) {
	build := func() *Probe {
		p := New(Config{RingEvents: 64, SampleEvery: 5, PeriodNs: 0.76})
		p.Attach(2, 2, 5, 4, 4)
		p.Inject(0, 1, 7, 2)
		p.BufWrite(1, 0, 4, 7, 0)
		p.Traverse(2, 0, 1, 7, 0)
		p.Collision(2, 0, 1, 2, 0xDEAD)
		p.Abort(3, 1, 2, 0)
		p.ModeChange(3, 1, 2, 0, 1)
		p.Decode(4, 1, 0, 7)
		p.Link(4, 0, 1, 7, 0)
		p.CreditStall(5, 2, 3)
		p.NIBufWrite(5, 1, 0xBEEF, -1)
		p.NIDecode(6, 1, 7)
		p.NIBufRead(6, 1, 1)
		p.Deliver(7, 1, 7, 6)
		p.Tick(5, 9)
		p.Tick(10, 2)
		return p
	}
	exporters := map[string]func(*Probe, *bytes.Buffer) error{
		"chrome":     func(p *Probe, b *bytes.Buffer) error { return p.WriteChromeTrace(b) },
		"waveform":   func(p *Probe, b *bytes.Buffer) error { return p.WriteWaveform(b) },
		"routers":    func(p *Probe, b *bytes.Buffer) error { return p.WriteRouterCSV(b) },
		"heatmap":    func(p *Probe, b *bytes.Buffer) error { return p.WriteHeatmapCSV(b) },
		"timeseries": func(p *Probe, b *bytes.Buffer) error { return p.WriteTimeSeriesCSV(b) },
	}
	for name, write := range exporters {
		var a, b bytes.Buffer
		if err := write(build(), &a); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := write(build(), &b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Len() == 0 {
			t.Errorf("%s: empty output", name)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: identical streams rendered differently", name)
		}
	}
}

// TestChromeTraceShape checks the exported JSON parses and routes events to
// the right tracks: router events on pid = node / tid = port, NI-side
// events (Port = -1) on the offset NI pid range.
func TestChromeTraceShape(t *testing.T) {
	p := New(Config{RingEvents: 64, PeriodNs: 0.76})
	p.Attach(2, 2, 5, 4, 4)
	p.Traverse(2, 3, 1, 7, 0)
	p.NIDecode(6, 1, 7)
	p.ModeChange(3, 1, 2, 0, 1)

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	var sawTraverse, sawNIDecode, sawMode bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Name == "traverse" && ev.Pid == 3 && ev.Tid == 1 && ev.Ph == "X":
			sawTraverse = true
		case ev.Name == "decode" && ev.Pid == niPid+1 && ev.Tid == 0:
			sawNIDecode = true
		case strings.HasPrefix(ev.Name, "mode ") && ev.Pid == 1:
			sawMode = true
		}
	}
	if !sawTraverse || !sawNIDecode || !sawMode {
		t.Errorf("missing tracks: traverse@r3=%v niDecode@ni1=%v mode@r1=%v",
			sawTraverse, sawNIDecode, sawMode)
	}
}
