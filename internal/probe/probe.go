// Package probe is the simulator-wide observability layer: a flit-level
// event tracer, a per-router metrics registry, and profiling helpers.
//
// The paper's argument rests on microarchitectural events — XOR collisions
// superimposing flits, the Recovery/Scheduled mode FSM flipping, multi-flit
// aborts forcing Scheduled mode (§2.6–2.7), the contention fan-ins of §3.2 —
// that aggregate statistics cannot show. A Probe records those events into a
// preallocated ring buffer as they happen and counts them per router, so a
// run can be replayed as a Chrome trace (one track per router port, loadable
// in Perfetto), dumped as a textual waveform, or summarized as per-router
// CSV, a mesh heatmap, and a periodic time series.
//
// The package is a leaf: it imports nothing from the simulator, so every
// layer (internal/core, internal/router, internal/noc, internal/network,
// internal/sim) can emit into it without import cycles. All emit sites in
// the simulator are guarded by a nil check — a nil *Probe is the disabled
// state and costs nothing on the hot path (BenchmarkNetworkCycle stays at
// 0 allocs/op). A Probe itself never allocates per event: the ring buffer is
// preallocated and wraps, keeping the most recent events.
//
// A Probe belongs to one stepping goroutine. Runs that execute in parallel
// (internal/exp pools) must each own a distinct Probe; the event stream of
// a probed run is a pure function of its configuration, so serialized
// streams are byte-identical at any worker count. Sharded simulations
// (sim.SetSharding) give each shard a child probe (ShardChildren): workers
// emit into per-shard buffers tagged with their evaluation slot, and the
// step epilogue merges them back into the parent ring in exactly the order
// the serial walk would have emitted them — see shard.go.
package probe

import "fmt"

// EventKind enumerates the traced microarchitectural events.
type EventKind uint8

// The traced event kinds. Arg/Aux meanings are per kind (see Event).
const (
	// EvInject: a packet's head flit entered the source router's local
	// input buffer. Node is the core, Arg the packet ID, Aux the length.
	EvInject EventKind = iota
	// EvBufWrite: a flit was written into an input SRAM FIFO. Arg is the
	// packet ID (or the raw word for encoded flits, Aux = -1).
	EvBufWrite
	// EvBufRead: FIFO read accesses at a port this cycle (Aux = count).
	EvBufRead
	// EvTraverse: a flit traversed the switch and was driven on the output
	// channel. Arg is the packet ID (raw word when encoded, Aux = -1).
	EvTraverse
	// EvCollision: >= 2 inputs traversed the XOR switch together and were
	// productively superimposed (NoX), or misspeculated into a wasted cycle
	// (Spec routers). Aux is the fan-in; Arg the encoded wire image (NoX).
	EvCollision
	// EvDecode: an input port's decode circuitry recovered an original flit
	// from register XOR head (Recovery decode). Arg is the packet ID.
	EvDecode
	// EvAbort: a collision involving a multi-flit packet aborted the cycle
	// and forced Scheduled mode (§2.7). Aux is the arbitration winner.
	EvAbort
	// EvLink: a flit completed a link traversal (delivered to the far-side
	// buffer). Arg is the packet ID (raw word when encoded, Aux = -1).
	EvLink
	// EvCreditStall: an output with pending requests was blocked by
	// exhausted downstream credits.
	EvCreditStall
	// EvDeliver: a packet's tail flit was delivered (and decoded) at the
	// destination interface. Node is the core, Arg the packet ID, Aux the
	// latency in cycles (saturated to 32 bits).
	EvDeliver
	// EvMode: an output's control FSM switched operating mode. Arg is the
	// new mode, Aux the previous (0 = Recovery, 1 = Scheduled).
	EvMode

	numEventKinds
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvInject:
		return "inject"
	case EvBufWrite:
		return "bufwrite"
	case EvBufRead:
		return "bufread"
	case EvTraverse:
		return "traverse"
	case EvCollision:
		return "collision"
	case EvDecode:
		return "decode"
	case EvAbort:
		return "abort"
	case EvLink:
		return "link"
	case EvCreditStall:
		return "stall"
	case EvDeliver:
		return "deliver"
	case EvMode:
		return "mode"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one recorded microarchitectural event. The struct is fixed-size
// and value-typed so the ring buffer holds events without per-event
// allocation.
type Event struct {
	// Cycle is the simulation cycle the event occurred in.
	Cycle int64
	// Arg is the kind-specific 64-bit argument (usually a packet ID; the
	// raw wire image for encoded flits).
	Arg uint64
	// Node is the router (or, for EvInject/EvDeliver, the core) the event
	// occurred at.
	Node int32
	// Aux is the kind-specific secondary argument (flit sequence, fan-in,
	// latency, previous mode). For packet-carrying kinds, Aux = -1 marks an
	// encoded (superimposed) flit whose Arg is the raw wire image.
	Aux int32
	// Port is the router port involved, or -1 when not applicable (NI-side
	// events, whole-router events).
	Port int8
	// Kind discriminates the event.
	Kind EventKind
}

// RouterMetrics accumulates one router's event counts and occupancy
// statistics for the whole probed run.
type RouterMetrics struct {
	// Node is the router's position on the router grid.
	Node int
	// Traversals counts flits driven through the switch onto outputs.
	Traversals int64
	// Collisions counts productive XOR collisions (NoX) or misspeculated
	// contention cycles (Spec routers).
	Collisions int64
	// Aborts counts multi-flit abort cycles (§2.7).
	Aborts int64
	// Decodes counts Recovery decode operations at input ports.
	Decodes int64
	// BufWrites and BufReads count input SRAM accesses.
	BufWrites int64
	BufReads  int64
	// CreditStallCycles counts output-cycles blocked on exhausted credits.
	CreditStallCycles int64
	// RecoveryCycles and ScheduledCycles count evaluated output-cycles
	// spent in each §2.6 operating mode. Cycles skipped by the kernel's
	// quiescence fast path are not counted: a quiescent router is by
	// definition in Recovery rest state.
	RecoveryCycles  int64
	ScheduledCycles int64
	// ModeTransitions counts Recovery<->Scheduled FSM flips.
	ModeTransitions int64
	// OccupancyHist[n] counts evaluated cycles the router held exactly n
	// buffered flits (FIFOs plus decode registers), clamped to the top
	// bucket.
	OccupancyHist []int64
	// LinkFlits[p] counts flits driven on output port p's channel.
	LinkFlits []int64
}

// BufferedTotal returns the occupancy-weighted cycle count (sum n*hist[n]),
// the numerator of mean occupancy.
func (m *RouterMetrics) BufferedTotal() int64 {
	var t int64
	for n, c := range m.OccupancyHist {
		t += int64(n) * c
	}
	return t
}

// SampledCycles returns the number of evaluated cycles in the occupancy
// histogram.
func (m *RouterMetrics) SampledCycles() int64 {
	var t int64
	for _, c := range m.OccupancyHist {
		t += c
	}
	return t
}

// Sample is one periodic snapshot row of the time-series sampler. Event
// fields are deltas over the sampling interval; ActiveComponents is a gauge.
type Sample struct {
	Cycle            int64
	Injects          int64
	Delivers         int64
	Traversals       int64
	Collisions       int64
	Aborts           int64
	CreditStalls     int64
	BufWrites        int64
	ActiveComponents int
}

// Totals aggregates whole-run event counts across the network.
type Totals struct {
	Injects      int64
	Delivers     int64
	Traversals   int64
	Collisions   int64
	Aborts       int64
	Decodes      int64
	CreditStalls int64
	BufWrites    int64
	BufReads     int64
	LinkFlits    int64
}

// Config parameterizes a Probe.
type Config struct {
	// RingEvents is the event ring capacity; it is rounded up to a power of
	// two. The ring keeps the most recent events and counts overwrites.
	// Default 1 << 18 (262144 events, 8 MB).
	RingEvents int
	// SampleEvery emits a time-series snapshot every N cycles; 0 disables
	// the sampler.
	SampleEvery int64
	// PeriodNs scales exported timestamps (the router clock period). Zero
	// leaves timestamps in cycles.
	PeriodNs float64
}

// Probe records a simulation's event stream and per-router metrics. The
// zero value is not usable; construct with New. A nil *Probe is the
// disabled probe: every emit site in the simulator guards on it.
type Probe struct {
	cfg  Config
	ring []Event
	mask uint64
	// n is the total number of events emitted (>= len(ring) once wrapped).
	n uint64

	width, height int
	ports         int
	cores         int
	routers       []RouterMetrics
	totals        Totals

	samples    []Sample
	lastSample Totals
	lastCycle  int64
	attached   bool

	// Shard-child state (see shard.go). parent is non-nil on a child: its
	// emits divert into shardBuf, tagged with the evaluation-slot key, and
	// its totals accumulate locally until MergeShards folds them into the
	// parent. A child shares the parent's routers slice — every metrics
	// write for router n comes from n's own shard, so elements never race.
	parent   *Probe
	children []*Probe
	shardBuf []taggedEvent
	ctxKey   uint64
	ctxSeq   uint32
	heads    []int
}

// New builds a probe with the given configuration.
func New(cfg Config) *Probe {
	if cfg.RingEvents <= 0 {
		cfg.RingEvents = 1 << 18
	}
	size := 1
	for size < cfg.RingEvents {
		size <<= 1
	}
	return &Probe{cfg: cfg, ring: make([]Event, size), mask: uint64(size - 1), lastCycle: -1}
}

// Attach sizes the per-router metrics for a network's geometry. The network
// calls it during construction; attaching twice (Multi's lockstep physical
// networks share one probe) keeps the first geometry and merges counts.
func (p *Probe) Attach(width, height, ports, cores, bufferDepth int) {
	if p.attached {
		return
	}
	p.attached = true
	p.width, p.height, p.ports, p.cores = width, height, ports, cores
	if bufferDepth <= 0 {
		bufferDepth = 4
	}
	// FIFO depth plus decode register per port, plus one clamp bucket.
	buckets := ports*(bufferDepth+1) + 1
	p.routers = make([]RouterMetrics, width*height)
	for i := range p.routers {
		p.routers[i] = RouterMetrics{
			Node:          i,
			OccupancyHist: make([]int64, buckets),
			LinkFlits:     make([]int64, ports),
		}
	}
}

// Geometry returns the attached router-grid shape and radix.
func (p *Probe) Geometry() (width, height, ports int) {
	return p.width, p.height, p.ports
}

// emit appends one event to the ring; on a shard child it buffers the
// event under the current evaluation-slot key instead (see shard.go).
func (p *Probe) emit(ev Event) {
	if p.parent != nil {
		p.shardBuf = append(p.shardBuf, taggedEvent{key: p.ctxKey | uint64(p.ctxSeq), ev: ev})
		p.ctxSeq++
		return
	}
	p.ring[p.n&p.mask] = ev
	p.n++
}

// EventCount returns the total events emitted, including any overwritten in
// the ring.
func (p *Probe) EventCount() uint64 { return p.n }

// Dropped returns how many events were overwritten by ring wraparound.
func (p *Probe) Dropped() uint64 {
	if p.n <= uint64(len(p.ring)) {
		return 0
	}
	return p.n - uint64(len(p.ring))
}

// Events returns the retained events in chronological order (a copy).
func (p *Probe) Events() []Event {
	if p.n <= uint64(len(p.ring)) {
		out := make([]Event, p.n)
		copy(out, p.ring[:p.n])
		return out
	}
	out := make([]Event, len(p.ring))
	start := p.n & p.mask
	copy(out, p.ring[start:])
	copy(out[uint64(len(p.ring))-start:], p.ring[:start])
	return out
}

// EventsWindow returns the retained events with cycle in [start, end], in
// chronological order (a copy). Events that fell inside the window but were
// overwritten by ring wraparound are gone; compare len(EventsWindow) against
// Dropped to detect a window that outlived the ring.
func (p *Probe) EventsWindow(start, end int64) []Event {
	all := p.Events()
	// The ring is chronological, so the window is one contiguous run.
	lo := 0
	for lo < len(all) && all[lo].Cycle < start {
		lo++
	}
	hi := lo
	for hi < len(all) && all[hi].Cycle <= end {
		hi++
	}
	out := make([]Event, hi-lo)
	copy(out, all[lo:hi])
	return out
}

// Routers returns the per-router metrics, indexed by router node ID.
func (p *Probe) Routers() []RouterMetrics { return p.routers }

// Totals returns whole-run aggregate event counts.
func (p *Probe) Totals() Totals { return p.totals }

// Samples returns the time-series snapshots recorded so far.
func (p *Probe) Samples() []Sample { return p.samples }

// router returns the metrics slot for node, or nil when unattached or out
// of range (defensive: emits never panic a probed run).
func (p *Probe) router(node int) *RouterMetrics {
	if node < 0 || node >= len(p.routers) {
		return nil
	}
	return &p.routers[node]
}

// Inject records a packet entering the network at its source interface.
func (p *Probe) Inject(cycle int64, core int, pkt uint64, flits int) {
	p.totals.Injects++
	p.emit(Event{Cycle: cycle, Kind: EvInject, Node: int32(core), Port: -1, Arg: pkt, Aux: int32(flits)})
}

// Deliver records a packet completing at its destination interface.
func (p *Probe) Deliver(cycle int64, core int, pkt uint64, latency int64) {
	p.totals.Delivers++
	aux := latency
	if aux > 1<<31-1 {
		aux = 1<<31 - 1
	}
	p.emit(Event{Cycle: cycle, Kind: EvDeliver, Node: int32(core), Port: -1, Arg: pkt, Aux: int32(aux)})
}

// BufWrite records a flit written into an input FIFO. Encoded flits pass
// their raw wire image as pkt and seq = -1.
func (p *Probe) BufWrite(cycle int64, node, port int, pkt uint64, seq int) {
	p.totals.BufWrites++
	if m := p.router(node); m != nil {
		m.BufWrites++
	}
	p.emit(Event{Cycle: cycle, Kind: EvBufWrite, Node: int32(node), Port: int8(port), Arg: pkt, Aux: int32(seq)})
}

// BufRead records reads FIFO read accesses at an input port this cycle.
func (p *Probe) BufRead(cycle int64, node, port, reads int) {
	p.totals.BufReads += int64(reads)
	if m := p.router(node); m != nil {
		m.BufReads += int64(reads)
	}
	p.emit(Event{Cycle: cycle, Kind: EvBufRead, Node: int32(node), Port: int8(port), Aux: int32(reads)})
}

// Traverse records a flit driven through the switch onto output port. seq is
// the flit sequence, or -1 for encoded superpositions (pkt = raw image).
func (p *Probe) Traverse(cycle int64, node, port int, pkt uint64, seq int) {
	p.totals.Traversals++
	if m := p.router(node); m != nil {
		m.Traversals++
		if port >= 0 && port < len(m.LinkFlits) {
			m.LinkFlits[port]++
		}
	}
	p.emit(Event{Cycle: cycle, Kind: EvTraverse, Node: int32(node), Port: int8(port), Arg: pkt, Aux: int32(seq)})
}

// Collision records fanin inputs colliding at an output. raw is the encoded
// wire image for productive NoX collisions, 0 for Spec misspeculation.
func (p *Probe) Collision(cycle int64, node, port, fanin int, raw uint64) {
	p.totals.Collisions++
	if m := p.router(node); m != nil {
		m.Collisions++
	}
	p.emit(Event{Cycle: cycle, Kind: EvCollision, Node: int32(node), Port: int8(port), Arg: raw, Aux: int32(fanin)})
}

// Decode records a Recovery decode at an input port recovering pkt.
func (p *Probe) Decode(cycle int64, node, port int, pkt uint64) {
	p.totals.Decodes++
	if m := p.router(node); m != nil {
		m.Decodes++
	}
	p.emit(Event{Cycle: cycle, Kind: EvDecode, Node: int32(node), Port: int8(port), Arg: pkt})
}

// Abort records a multi-flit abort at an output; winner is the input
// pre-scheduled into Scheduled mode.
func (p *Probe) Abort(cycle int64, node, port, winner int) {
	p.totals.Aborts++
	if m := p.router(node); m != nil {
		m.Aborts++
	}
	p.emit(Event{Cycle: cycle, Kind: EvAbort, Node: int32(node), Port: int8(port), Aux: int32(winner)})
}

// Link records a flit completing its traversal of the channel driven by
// (node, port); injection channels use port = -1 with node = the core.
func (p *Probe) Link(cycle int64, node, port int, pkt uint64, seq int) {
	p.totals.LinkFlits++
	p.emit(Event{Cycle: cycle, Kind: EvLink, Node: int32(node), Port: int8(port), Arg: pkt, Aux: int32(seq)})
}

// CreditStall records an output with pending requests blocked on credits.
func (p *Probe) CreditStall(cycle int64, node, port int) {
	p.totals.CreditStalls++
	if m := p.router(node); m != nil {
		m.CreditStallCycles++
	}
	p.emit(Event{Cycle: cycle, Kind: EvCreditStall, Node: int32(node), Port: int8(port)})
}

// ModeCycle counts one evaluated output-cycle in the given §2.6 operating
// mode (metrics only; no ring event).
func (p *Probe) ModeCycle(node int, scheduled bool) {
	if m := p.router(node); m != nil {
		if scheduled {
			m.ScheduledCycles++
		} else {
			m.RecoveryCycles++
		}
	}
}

// ModeChange records an output's FSM switching mode (0 = Recovery,
// 1 = Scheduled).
func (p *Probe) ModeChange(cycle int64, node, port, from, to int) {
	if m := p.router(node); m != nil {
		m.ModeTransitions++
	}
	p.emit(Event{Cycle: cycle, Kind: EvMode, Node: int32(node), Port: int8(port), Arg: uint64(to), Aux: int32(from)})
}

// Occupancy records a router's buffered-flit count for one evaluated cycle
// (metrics only; no ring event).
func (p *Probe) Occupancy(node, buffered int) {
	m := p.router(node)
	if m == nil {
		return
	}
	if buffered >= len(m.OccupancyHist) {
		buffered = len(m.OccupancyHist) - 1
	}
	if buffered < 0 {
		buffered = 0
	}
	m.OccupancyHist[buffered]++
}

// NIBufWrite records a flit written into a network interface's ejection
// buffer. NI events carry the core in Node with Port = -1 and update totals
// only: core IDs overlap router node IDs, so crediting router metrics here
// would corrupt them.
func (p *Probe) NIBufWrite(cycle int64, core int, pkt uint64, seq int) {
	p.totals.BufWrites++
	p.emit(Event{Cycle: cycle, Kind: EvBufWrite, Node: int32(core), Port: -1, Arg: pkt, Aux: int32(seq)})
}

// NIBufRead records reads ejection-buffer read accesses at a network
// interface this cycle.
func (p *Probe) NIBufRead(cycle int64, core, reads int) {
	p.totals.BufReads += int64(reads)
	p.emit(Event{Cycle: cycle, Kind: EvBufRead, Node: int32(core), Port: -1, Aux: int32(reads)})
}

// NIDecode records a network interface's ejection decode circuitry
// recovering pkt from an encoded superposition.
func (p *Probe) NIDecode(cycle int64, core int, pkt uint64) {
	p.totals.Decodes++
	p.emit(Event{Cycle: cycle, Kind: EvDecode, Node: int32(core), Port: -1, Arg: pkt})
}

// Tick advances the time-series sampler at the end of a simulated cycle;
// active is the kernel's evaluated-component count. Ticks for an
// already-sampled cycle (lockstep multi-network setups call it once per
// physical network) are ignored.
func (p *Probe) Tick(cycle int64, active int) {
	if p.cfg.SampleEvery <= 0 || cycle <= p.lastCycle {
		return
	}
	p.lastCycle = cycle
	if cycle%p.cfg.SampleEvery != 0 {
		return
	}
	t := p.totals
	d := p.lastSample
	p.samples = append(p.samples, Sample{
		Cycle:            cycle,
		Injects:          t.Injects - d.Injects,
		Delivers:         t.Delivers - d.Delivers,
		Traversals:       t.Traversals - d.Traversals,
		Collisions:       t.Collisions - d.Collisions,
		Aborts:           t.Aborts - d.Aborts,
		CreditStalls:     t.CreditStalls - d.CreditStalls,
		BufWrites:        t.BufWrites - d.BufWrites,
		ActiveComponents: active,
	})
	p.lastSample = t
}
