package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Exporters for the recorded event stream and metrics. All exporters write
// deterministically: two probes holding identical streams render
// byte-identical output, the property the parallel-determinism tests pin.

// portName names a router port: the four mesh directions then the local
// (core) ports.
func portName(port, ports int) string {
	switch port {
	case 0:
		return "N"
	case 1:
		return "E"
	case 2:
		return "S"
	case 3:
		return "W"
	}
	if port < 0 {
		return "-"
	}
	if ports <= 5 {
		return "L"
	}
	return fmt.Sprintf("L%d", port-4)
}

// niPid offsets core IDs into a distinct Chrome-trace process range so NI
// tracks do not collide with router tracks.
const niPid = 100000

// chromeEvent is one Chrome trace-event JSON object. Perfetto and
// chrome://tracing both load the array form.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the retained events as Chrome trace-event JSON:
// one process per router (and per network interface), one thread (track)
// per router port. Timestamps are in microseconds as the format requires,
// scaled by Config.PeriodNs when set (1 cycle = PeriodNs ns) or 1 cycle =
// 1 us otherwise, so relative timing is exact either way.
func (p *Probe) WriteChromeTrace(w io.Writer) error {
	header := fmt.Sprintf("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"periodNs\":%g,\"events\":%d,\"dropped\":%d},\"traceEvents\":[\n",
		p.cfg.PeriodNs, p.EventCount(), p.Dropped())
	return p.writeChromeEvents(w, header, p.Events())
}

// WriteChromeTraceWindow renders only the events with cycle in [start, end]
// — the flight recorder's failure-window dump. The header carries the
// window bounds and the in-window event count instead of ring totals, so
// two probes that observed the same event stream over the window render
// byte-identical output regardless of their ring sizes or wrap history.
func (p *Probe) WriteChromeTraceWindow(w io.Writer, start, end int64) error {
	evs := p.EventsWindow(start, end)
	header := fmt.Sprintf("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"periodNs\":%g,\"windowStart\":%d,\"windowEnd\":%d,\"events\":%d},\"traceEvents\":[\n",
		p.cfg.PeriodNs, start, end, len(evs))
	return p.writeChromeEvents(w, header, evs)
}

// writeChromeEvents is the shared Chrome-trace body: header, track
// metadata, then the given events.
func (p *Probe) writeChromeEvents(w io.Writer, header string, events []Event) error {
	bw := bufio.NewWriter(w)
	scale := 1.0
	if p.cfg.PeriodNs > 0 {
		scale = p.cfg.PeriodNs * 1e-3 // ns -> us
	}
	if _, err := bw.WriteString(header); err != nil {
		return err
	}

	first := true
	put := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	// Metadata: name the router and NI tracks.
	for node := range p.routers {
		x, y := node%max(p.width, 1), node/max(p.width, 1)
		if err := put(chromeEvent{Name: "process_name", Phase: "M", Pid: node,
			Args: map[string]any{"name": fmt.Sprintf("router %d (%d,%d)", node, x, y)}}); err != nil {
			return err
		}
		for port := 0; port < p.ports; port++ {
			if err := put(chromeEvent{Name: "thread_name", Phase: "M", Pid: node, Tid: port,
				Args: map[string]any{"name": "port " + portName(port, p.ports)}}); err != nil {
				return err
			}
		}
	}
	for core := 0; core < p.cores; core++ {
		if err := put(chromeEvent{Name: "process_name", Phase: "M", Pid: niPid + core,
			Args: map[string]any{"name": fmt.Sprintf("NI %d", core)}}); err != nil {
			return err
		}
	}

	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Kind.String(),
			Ts:   float64(ev.Cycle) * scale,
			Pid:  int(ev.Node),
			Tid:  int(ev.Port),
			Args: map[string]any{"cycle": ev.Cycle},
		}
		if ev.Port < 0 {
			// NI-side event (or injection channel): Node is a core ID.
			ce.Pid, ce.Tid = niPid+int(ev.Node), 0
		}
		switch ev.Kind {
		case EvInject, EvDeliver:
			ce.Phase, ce.Scope = "i", "p"
			ce.Args["pkt"] = ev.Arg
			if ev.Kind == EvInject {
				ce.Args["flits"] = ev.Aux
			} else {
				ce.Args["latency_cycles"] = ev.Aux
			}
		case EvTraverse, EvLink:
			ce.Phase, ce.Dur = "X", scale
			if ev.Aux < 0 {
				ce.Name += " enc"
				ce.Args["raw"] = fmt.Sprintf("%#x", ev.Arg)
			} else {
				ce.Args["pkt"] = ev.Arg
				ce.Args["seq"] = ev.Aux
			}
		case EvCollision:
			ce.Phase, ce.Scope = "i", "t"
			ce.Args["fanin"] = ev.Aux
			if ev.Arg != 0 {
				ce.Args["raw"] = fmt.Sprintf("%#x", ev.Arg)
			}
		case EvAbort:
			ce.Phase, ce.Scope = "i", "t"
			ce.Args["winner"] = ev.Aux
		case EvMode:
			ce.Phase, ce.Scope = "i", "t"
			ce.Name = fmt.Sprintf("mode %s->%s", modeName(int(ev.Aux)), modeName(int(ev.Arg)))
		case EvBufWrite:
			ce.Phase, ce.Scope = "i", "t"
			if ev.Aux < 0 {
				ce.Args["raw"] = fmt.Sprintf("%#x", ev.Arg)
			} else {
				ce.Args["pkt"] = ev.Arg
				ce.Args["seq"] = ev.Aux
			}
		case EvBufRead:
			ce.Phase, ce.Scope = "i", "t"
			ce.Args["reads"] = ev.Aux
		case EvDecode:
			ce.Phase, ce.Scope = "i", "t"
			ce.Args["pkt"] = ev.Arg
		case EvCreditStall:
			ce.Phase, ce.Scope = "i", "t"
		default:
			ce.Phase, ce.Scope = "i", "t"
		}
		if err := put(ce); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func modeName(m int) string {
	if m == 1 {
		return "S"
	}
	return "R"
}

// WriteWaveform renders the retained events as a compact chronological
// textual waveform, one event per line.
func (p *Probe) WriteWaveform(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# waveform: %d events (%d dropped by ring wrap)\n# cycle    where        event      detail\n",
		p.EventCount(), p.Dropped()); err != nil {
		return err
	}
	for _, ev := range p.Events() {
		var where string
		if ev.Port < 0 {
			where = fmt.Sprintf("ni%d", ev.Node)
		} else {
			where = fmt.Sprintf("r%d.%s", ev.Node, portName(int(ev.Port), p.ports))
		}
		var detail string
		switch ev.Kind {
		case EvInject:
			detail = fmt.Sprintf("pkt%d len=%d", ev.Arg, ev.Aux)
		case EvDeliver:
			detail = fmt.Sprintf("pkt%d latency=%d", ev.Arg, ev.Aux)
		case EvTraverse, EvLink, EvBufWrite:
			if ev.Aux < 0 {
				detail = fmt.Sprintf("enc raw=%#x", ev.Arg)
			} else {
				detail = fmt.Sprintf("pkt%d.%d", ev.Arg, ev.Aux)
			}
		case EvBufRead:
			detail = fmt.Sprintf("reads=%d", ev.Aux)
		case EvCollision:
			detail = fmt.Sprintf("fanin=%d", ev.Aux)
			if ev.Arg != 0 {
				detail += fmt.Sprintf(" raw=%#x", ev.Arg)
			}
		case EvDecode:
			detail = fmt.Sprintf("pkt%d", ev.Arg)
		case EvAbort:
			detail = fmt.Sprintf("winner=in%d", ev.Aux)
		case EvMode:
			detail = fmt.Sprintf("%s->%s", modeName(int(ev.Aux)), modeName(int(ev.Arg)))
		}
		if _, err := fmt.Fprintf(bw, "%8d   %-12s %-10s %s\n", ev.Cycle, where, ev.Kind, detail); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteRouterCSV renders the per-router metrics registry as CSV, one row
// per router, with per-port link flit counts in trailing columns.
func (p *Probe) WriteRouterCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	header := "node,x,y,traversals,collisions,aborts,decodes,buf_writes,buf_reads,credit_stall_cycles,recovery_cycles,scheduled_cycles,mode_transitions,mean_occupancy"
	for port := 0; port < p.ports; port++ {
		header += ",link_flits_" + portName(port, p.ports)
	}
	if _, err := fmt.Fprintln(bw, header); err != nil {
		return err
	}
	for i := range p.routers {
		m := &p.routers[i]
		x, y := m.Node%max(p.width, 1), m.Node/max(p.width, 1)
		occ := 0.0
		if n := m.SampledCycles(); n > 0 {
			occ = float64(m.BufferedTotal()) / float64(n)
		}
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f",
			m.Node, x, y, m.Traversals, m.Collisions, m.Aborts, m.Decodes,
			m.BufWrites, m.BufReads, m.CreditStallCycles,
			m.RecoveryCycles, m.ScheduledCycles, m.ModeTransitions, occ); err != nil {
			return err
		}
		for _, n := range m.LinkFlits {
			if _, err := fmt.Fprintf(bw, ",%d", n); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteHeatmapCSV renders the per-node flit-count mesh heatmap: a
// Height-row, Width-column grid of switch traversal counts (row 0 = y 0).
func (p *Probe) WriteHeatmapCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# flit traversals per router, %dx%d mesh (rows = y)\n", p.width, p.height); err != nil {
		return err
	}
	for y := 0; y < p.height; y++ {
		for x := 0; x < p.width; x++ {
			sep := ","
			if x == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(bw, "%s%d", sep, p.routers[y*p.width+x].Traversals); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTimeSeriesCSV renders the periodic sampler's snapshots as CSV. Event
// columns are deltas over each sampling interval.
func (p *Probe) WriteTimeSeriesCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "cycle,injects,delivers,traversals,collisions,aborts,credit_stalls,buf_writes,active_components"); err != nil {
		return err
	}
	for _, s := range p.samples {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Cycle, s.Injects, s.Delivers, s.Traversals, s.Collisions,
			s.Aborts, s.CreditStalls, s.BufWrites, s.ActiveComponents); err != nil {
			return err
		}
	}
	return bw.Flush()
}
