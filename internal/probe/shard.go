package probe

// Shard children: probe support for sharded simulations.
//
// A sharded kernel evaluates components on worker goroutines, so they
// cannot emit into the parent's ring directly — the ring is order-
// sensitive (exporters replay it) and the serial event order is part of
// the bit-exactness contract. Instead each shard gets a child probe: the
// same emit API, but events are appended to a per-shard buffer tagged with
// the evaluation slot they were emitted from, and per-run totals
// accumulate shard-locally. At the end of every step the epilogue (on the
// stepping goroutine, after the last barrier) calls MergeShards, which
// k-way merges the buffers by tag into the parent ring and folds the
// totals — reproducing, event for event, the stream a serial walk of the
// same cycle would have produced.
//
// The tag is ordered exactly like the serial walk visits evaluation slots:
//
//	key = phase << 60 | component << 20 | seq
//
// Compute events (phase 0) precede all commit events; commit events order
// by component registration index (the kernel registers early components
// before late ones, so the phase-1/phase-2 split never reorders them); seq
// preserves emission order within one component evaluation. Each component
// lives in exactly one shard, so keys never tie across children, and each
// child's buffer is naturally key-sorted (its worker walks components in
// ascending order, phase by phase) — the merge is a linear k-way pick.
//
// Per-router metrics need none of this: with receiver-side shard
// assignment every metrics write for router n (buffer accounting from its
// incoming links, switch activity from its own evaluation) is performed by
// shard(n), so children write the parent's routers slice directly —
// distinct elements, no races, nothing to fold.

// taggedEvent is one buffered child event plus its merge key.
type taggedEvent struct {
	key uint64
	ev  Event
}

// ShardChildren returns n child probes for a sharded simulation, creating
// them on first use and reusing them on repeat calls (lockstep multi-
// network setups share one parent and step sequentially, so their kernels
// may share children too). Call after Attach so children alias the
// per-router metrics.
func (p *Probe) ShardChildren(n int) []*Probe {
	if p.parent != nil {
		panic("probe: ShardChildren on a shard child")
	}
	for len(p.children) < n {
		p.children = append(p.children, &Probe{parent: p})
	}
	for _, c := range p.children {
		c.routers = p.routers
		c.width, c.height, c.ports, c.cores = p.width, p.height, p.ports, p.cores
	}
	return p.children[:n]
}

// SetShardContext tags subsequent emits on this child with the evaluation
// slot (phase, component index). The kernel's eval hook calls it before
// every component evaluation; see sim.SetEvalHook.
func (p *Probe) SetShardContext(phase, comp int) {
	p.ctxKey = uint64(phase)<<60 | uint64(comp)<<20
	p.ctxSeq = 0
}

// MergeShards drains every child's event buffer into the parent ring in
// serial emission order and folds child totals into the parent. Called
// from the step epilogue on the stepping goroutine, after the cycle's last
// barrier (all workers quiescent) and before the sampler observer ticks.
// Steady-state it allocates nothing: buffers keep their capacity.
func (p *Probe) MergeShards() {
	children := p.children
	total := 0
	for _, c := range children {
		total += len(c.shardBuf)
	}
	if total > 0 {
		if cap(p.heads) < len(children) {
			p.heads = make([]int, len(children))
		}
		heads := p.heads[:len(children)]
		for i := range heads {
			heads[i] = 0
		}
		for merged := 0; merged < total; merged++ {
			best := -1
			var bestKey uint64
			for i, c := range children {
				h := heads[i]
				if h >= len(c.shardBuf) {
					continue
				}
				if k := c.shardBuf[h].key; best < 0 || k < bestKey {
					best, bestKey = i, k
				}
			}
			p.emit(children[best].shardBuf[heads[best]].ev)
			heads[best]++
		}
	}
	for _, c := range children {
		c.shardBuf = c.shardBuf[:0]
		if c.totals != (Totals{}) {
			p.totals.add(c.totals)
			c.totals = Totals{}
		}
	}
}

// add folds another totals block into t.
func (t *Totals) add(o Totals) {
	t.Injects += o.Injects
	t.Delivers += o.Delivers
	t.Traversals += o.Traversals
	t.Collisions += o.Collisions
	t.Aborts += o.Aborts
	t.Decodes += o.Decodes
	t.CreditStalls += o.CreditStalls
	t.BufWrites += o.BufWrites
	t.BufReads += o.BufReads
	t.LinkFlits += o.LinkFlits
}
