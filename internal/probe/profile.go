package probe

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiling hooks shared by every cmd tool: -cpuprofile / -memprofile flag
// registration. (Progress reporting lives in internal/telemetry, whose
// sampler replaced the printer that used to live here.)

// ProfileFlags holds the standard profiling flag values.
type ProfileFlags struct {
	CPU string
	Mem string
}

// AddProfileFlags registers -cpuprofile and -memprofile on the flag set
// (call before flag.Parse). The returned struct is read by Start.
func AddProfileFlags(fs *flag.FlagSet) *ProfileFlags {
	pf := &ProfileFlags{}
	fs.StringVar(&pf.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&pf.Mem, "memprofile", "", "write a heap profile to this file on exit")
	return pf
}

// Start begins CPU profiling when -cpuprofile was given. The returned stop
// function must run before exit (defer it right after Start): it stops the
// CPU profile and writes the heap profile when -memprofile was given.
func (pf *ProfileFlags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if pf.CPU != "" {
		cpuFile, err = os.Create(pf.CPU)
		if err != nil {
			return nil, fmt.Errorf("probe: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("probe: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if pf.Mem != "" {
			f, err := os.Create(pf.Mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "probe: create mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "probe: write mem profile:", err)
			}
		}
	}, nil
}
