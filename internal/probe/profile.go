package probe

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// Profiling hooks shared by every cmd tool: -cpuprofile / -memprofile flag
// registration, and a cycles-per-second progress reporter for long runs.

// ProfileFlags holds the standard profiling flag values.
type ProfileFlags struct {
	CPU string
	Mem string
}

// AddProfileFlags registers -cpuprofile and -memprofile on the flag set
// (call before flag.Parse). The returned struct is read by Start.
func AddProfileFlags(fs *flag.FlagSet) *ProfileFlags {
	pf := &ProfileFlags{}
	fs.StringVar(&pf.CPU, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&pf.Mem, "memprofile", "", "write a heap profile to this file on exit")
	return pf
}

// Start begins CPU profiling when -cpuprofile was given. The returned stop
// function must run before exit (defer it right after Start): it stops the
// CPU profile and writes the heap profile when -memprofile was given.
func (pf *ProfileFlags) Start() (stop func(), err error) {
	var cpuFile *os.File
	if pf.CPU != "" {
		cpuFile, err = os.Create(pf.CPU)
		if err != nil {
			return nil, fmt.Errorf("probe: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("probe: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if pf.Mem != "" {
			f, err := os.Create(pf.Mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "probe: create mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "probe: write mem profile:", err)
			}
		}
	}, nil
}

// Progress reports simulation throughput (cycles per second) to a writer.
// Tick it from the simulation loop; it prints at most once per interval.
type Progress struct {
	w         io.Writer
	every     time.Duration
	start     time.Time
	last      time.Time
	lastCycle int64
}

// NewProgress returns a reporter printing to w at most every interval.
// A nil *Progress is valid and does nothing.
func NewProgress(w io.Writer, every time.Duration) *Progress {
	if every <= 0 {
		every = time.Second
	}
	now := time.Now()
	return &Progress{w: w, every: every, start: now, last: now}
}

// Tick reports progress when the interval has elapsed.
func (p *Progress) Tick(cycle int64) {
	if p == nil {
		return
	}
	now := time.Now()
	if now.Sub(p.last) < p.every {
		return
	}
	rate := float64(cycle-p.lastCycle) / now.Sub(p.last).Seconds()
	fmt.Fprintf(p.w, "probe: cycle %d (%.2f Mcycles/s)\n", cycle, rate/1e6)
	p.last, p.lastCycle = now, cycle
}

// Done prints the whole-run summary: total cycles, wall time, cycles/sec.
func (p *Progress) Done(cycle int64) {
	if p == nil {
		return
	}
	el := time.Since(p.start)
	rate := 0.0
	if el > 0 {
		rate = float64(cycle) / el.Seconds()
	}
	fmt.Fprintf(p.w, "probe: simulated %d cycles in %v (%.2f Mcycles/s)\n", cycle, el.Round(time.Millisecond), rate/1e6)
}
