package power

import "repro/internal/snapshot/codec"

// SaveState serializes the counter block field by field, in declaration
// order — the snapshot wire convention shared by the network layer and the
// harness's measurement-window baselines.
func (c *Counters) SaveState(e *codec.Encoder) {
	e.I64(c.BufWrite)
	e.I64(c.BufRead)
	e.I64(c.Xbar)
	e.I64(c.LinkFlit)
	e.I64(c.LinkInvalid)
	e.I64(c.Arb)
	e.I64(c.Decode)
	e.I64(c.RegWrite)
	e.I64(c.Collisions)
	e.I64(c.EncodedFlits)
	e.I64(c.Aborts)
	e.I64(c.WastedCycles)
	e.I64(c.OutputActive)
}

// RestoreState loads state saved by SaveState, replacing the block.
func (c *Counters) RestoreState(d *codec.Decoder) error {
	*c = Counters{
		BufWrite:     d.I64(),
		BufRead:      d.I64(),
		Xbar:         d.I64(),
		LinkFlit:     d.I64(),
		LinkInvalid:  d.I64(),
		Arb:          d.I64(),
		Decode:       d.I64(),
		RegWrite:     d.I64(),
		Collisions:   d.I64(),
		EncodedFlits: d.I64(),
		Aborts:       d.I64(),
		WastedCycles: d.I64(),
		OutputActive: d.I64(),
	}
	return d.Err()
}
