// Package power implements the event-driven dynamic energy model of §4/§5.3.
//
// The paper builds per-component energy models from channel models
// (Balfour & Dally; Mui et al.), SPICE-extracted SRAM parameters, and
// synthesis, then complements the cycle-accurate simulator "with necessary
// event counters to form an accurate power model". We reproduce exactly that
// structure: routers increment event counters, and a Model maps events to
// picojoules. The per-event constants are calibrated to 65 nm literature
// values such that the paper's reported proportions hold — the interconnect
// channel dominates, accounting for roughly 74 % of network power under
// 2 GB/s/node uniform traffic (Fig. 12) — while the *differences* between
// router architectures (misspeculation link drives, XOR switch activity,
// decode energy) emerge from simulated event counts.
package power

// Counters accumulates datapath events for one network. Serial simulations
// share a single Counters instance across all routers; sharded simulations
// give each shard its own block (every writer stays on one worker, so no
// synchronization is needed) and fold them with Add when read.
type Counters struct {
	// BufWrite counts flits written into input SRAM FIFOs.
	BufWrite int64
	// BufRead counts flits read out of input SRAM FIFOs.
	BufRead int64
	// Xbar counts flit traversals of the crossbar switch (every productive
	// output drive, encoded or not).
	Xbar int64
	// LinkFlit counts productive flit traversals of an inter-router or
	// interface channel.
	LinkFlit int64
	// LinkInvalid counts channel drives with indeterminate values: failed
	// speculation in the Spec routers and multi-flit aborts in NoX (§3.2:
	// "both architectures waste power by driving the output channel with an
	// indeterminate and invalid value").
	LinkInvalid int64
	// Arb counts arbitration decisions (cycles an arbiter saw requests).
	Arb int64
	// Decode counts XOR decode operations at NoX input ports.
	Decode int64
	// RegWrite counts NoX decode-register latches.
	RegWrite int64

	// Occupancy / efficiency statistics (not energy events, but gathered by
	// the same counting infrastructure).

	// Collisions counts cycles an output had >= 2 inputs traversing.
	Collisions int64
	// EncodedFlits counts encoded flits placed on links (NoX only).
	EncodedFlits int64
	// Aborts counts NoX multi-flit abort cycles.
	Aborts int64
	// WastedCycles counts output cycles lost to misspeculation: invalid
	// drives plus reservations held by inputs with nothing to send.
	WastedCycles int64
	// OutputActive counts output cycles delivering a productive flit.
	OutputActive int64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.BufWrite += other.BufWrite
	c.BufRead += other.BufRead
	c.Xbar += other.Xbar
	c.LinkFlit += other.LinkFlit
	c.LinkInvalid += other.LinkInvalid
	c.Arb += other.Arb
	c.Decode += other.Decode
	c.RegWrite += other.RegWrite
	c.Collisions += other.Collisions
	c.EncodedFlits += other.EncodedFlits
	c.Aborts += other.Aborts
	c.WastedCycles += other.WastedCycles
	c.OutputActive += other.OutputActive
}

// Sub returns c minus other, used to window counters over a measurement
// interval.
func (c Counters) Sub(other Counters) Counters {
	return Counters{
		BufWrite:     c.BufWrite - other.BufWrite,
		BufRead:      c.BufRead - other.BufRead,
		Xbar:         c.Xbar - other.Xbar,
		LinkFlit:     c.LinkFlit - other.LinkFlit,
		LinkInvalid:  c.LinkInvalid - other.LinkInvalid,
		Arb:          c.Arb - other.Arb,
		Decode:       c.Decode - other.Decode,
		RegWrite:     c.RegWrite - other.RegWrite,
		Collisions:   c.Collisions - other.Collisions,
		EncodedFlits: c.EncodedFlits - other.EncodedFlits,
		Aborts:       c.Aborts - other.Aborts,
		WastedCycles: c.WastedCycles - other.WastedCycles,
		OutputActive: c.OutputActive - other.OutputActive,
	}
}

// Model holds per-event energies in picojoules for a 64-bit datapath in a
// 65 nm process with 2 mm inter-router channels.
type Model struct {
	// BufWritePJ and BufReadPJ are per-flit energies of the 4x64 b input
	// SRAM (memory-compiler class values).
	BufWritePJ float64
	BufReadPJ  float64
	// XbarPJ is the per-flit traversal energy of the switch. The XOR-based
	// switch has marginally higher logical effort than the multiplexer
	// crossbar (§2.5) but avoids driving time-critical select wires across
	// the fabric; §5.3 finds the two close, with the conventional crossbar
	// modeled slightly cheaper per traversal.
	XbarPJ float64
	// LinkPJ is the per-flit energy of the 2 mm 64-bit repeated channel —
	// the dominant term ("frequently accounts for over half of all network
	// energy"; 74 % in Fig. 12). Invalid (misspeculated) drives cost the
	// same energy but deliver nothing.
	LinkPJ float64
	// ArbPJ is per arbitration decision.
	ArbPJ float64
	// DecodePJ is per NoX input-port XOR decode; RegWritePJ per decode
	// register latch. §5.3: "Energy costs associated with packet decoding
	// in the NoX architecture are also found to be minimal."
	DecodePJ   float64
	RegWritePJ float64
}

// DefaultModel returns the calibrated 65 nm model. Derivation of constants:
//   - Link: 0.20 pJ/bit/mm wire+repeater energy (Mui et al. class models at
//     65 nm) x 64 bits x 2 mm ~= 25.6 pJ/flit.
//   - SRAM: small 4-entry register-file-like FIFO, ~2.4 pJ write / 2.0 pJ
//     read per 64 b access.
//   - Crossbar: 5x5 64 b mux crossbar ~4.6 pJ per traversal; XOR fabric
//     +6 % logical-effort penalty (§2.5) -> 4.9 pJ, applied by the NoX
//     router via XbarXORPJ.
//   - Arbiter ~0.35 pJ/decision; decode XOR gate level ~0.55 pJ; register
//     latch ~0.40 pJ.
func DefaultModel() Model {
	return Model{
		BufWritePJ: 2.4,
		BufReadPJ:  2.0,
		XbarPJ:     4.6,
		LinkPJ:     25.6,
		ArbPJ:      0.35,
		DecodePJ:   0.55,
		RegWritePJ: 0.40,
	}
}

// XbarXORFactor is the logical-effort energy penalty of the XOR switch
// relative to the multiplexer crossbar (§2.5: "consuming marginally more
// power and delay").
const XbarXORFactor = 1.06

// Breakdown is the energy of one counter window split by component, in pJ.
type Breakdown struct {
	BufferPJ float64
	XbarPJ   float64
	LinkPJ   float64
	ArbPJ    float64
	DecodePJ float64
}

// TotalPJ returns the summed energy.
func (b Breakdown) TotalPJ() float64 {
	return b.BufferPJ + b.XbarPJ + b.LinkPJ + b.ArbPJ + b.DecodePJ
}

// LinkShare returns the channel's fraction of total energy.
func (b Breakdown) LinkShare() float64 {
	t := b.TotalPJ()
	if t == 0 {
		return 0
	}
	return b.LinkPJ / t
}

// Energy converts a counter window into a component breakdown. xorSwitch
// selects the XOR-fabric traversal energy (NoX routers).
func (m Model) Energy(c Counters, xorSwitch bool) Breakdown {
	xbar := m.XbarPJ
	if xorSwitch {
		xbar *= XbarXORFactor
	}
	return Breakdown{
		BufferPJ: float64(c.BufWrite)*m.BufWritePJ + float64(c.BufRead)*m.BufReadPJ,
		XbarPJ:   float64(c.Xbar) * xbar,
		LinkPJ:   float64(c.LinkFlit+c.LinkInvalid) * m.LinkPJ,
		ArbPJ:    float64(c.Arb) * m.ArbPJ,
		DecodePJ: float64(c.Decode)*m.DecodePJ + float64(c.RegWrite)*m.RegWritePJ,
	}
}
