package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b Counters) bool {
		sum := a
		sum.Add(b)
		diff := sum.Sub(b)
		return diff == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyBreakdown(t *testing.T) {
	m := DefaultModel()
	c := Counters{BufWrite: 10, BufRead: 10, Xbar: 10, LinkFlit: 10, Arb: 10, Decode: 10, RegWrite: 10}
	b := m.Energy(c, false)
	wantBuf := 10*m.BufWritePJ + 10*m.BufReadPJ
	if math.Abs(b.BufferPJ-wantBuf) > 1e-9 {
		t.Errorf("BufferPJ = %v, want %v", b.BufferPJ, wantBuf)
	}
	if math.Abs(b.LinkPJ-10*m.LinkPJ) > 1e-9 {
		t.Errorf("LinkPJ = %v", b.LinkPJ)
	}
	if math.Abs(b.TotalPJ()-(b.BufferPJ+b.XbarPJ+b.LinkPJ+b.ArbPJ+b.DecodePJ)) > 1e-9 {
		t.Error("TotalPJ is not the sum of components")
	}
}

// TestInvalidDrivesCostLinkEnergy verifies misspeculated channel drives are
// charged full link energy (§3.2's central energy argument).
func TestInvalidDrivesCostLinkEnergy(t *testing.T) {
	m := DefaultModel()
	productive := m.Energy(Counters{LinkFlit: 100}, false)
	wasted := m.Energy(Counters{LinkFlit: 50, LinkInvalid: 50}, false)
	if productive.LinkPJ != wasted.LinkPJ {
		t.Errorf("invalid drives not charged: %v vs %v", productive.LinkPJ, wasted.LinkPJ)
	}
}

// TestXORSwitchPenalty verifies the XOR fabric costs marginally more per
// traversal (§2.5) and only when selected.
func TestXORSwitchPenalty(t *testing.T) {
	m := DefaultModel()
	c := Counters{Xbar: 1000}
	mux := m.Energy(c, false).XbarPJ
	xor := m.Energy(c, true).XbarPJ
	if xor <= mux {
		t.Error("XOR switch should cost more than mux crossbar")
	}
	if xor/mux > 1.15 {
		t.Errorf("XOR penalty %.3f too large to be 'marginal'", xor/mux)
	}
}

// TestLinkDominates verifies the calibration: for a representative per-hop
// event mix the channel accounts for most of the energy, in the
// neighborhood of Fig. 12's ~74%.
func TestLinkDominates(t *testing.T) {
	m := DefaultModel()
	// One flit traversing one hop: buffer write+read, xbar, link, arb.
	c := Counters{BufWrite: 1, BufRead: 1, Xbar: 1, LinkFlit: 1, Arb: 1}
	share := m.Energy(c, false).LinkShare()
	if share < 0.65 || share > 0.80 {
		t.Errorf("link share = %.3f, want ~0.74 (Fig. 12)", share)
	}
}

// TestDecodeEnergyMinimal verifies §5.3's "energy costs associated with
// packet decoding ... are minimal": decode events cost a few percent of a
// hop's energy.
func TestDecodeEnergyMinimal(t *testing.T) {
	m := DefaultModel()
	hop := m.Energy(Counters{BufWrite: 1, BufRead: 1, Xbar: 1, LinkFlit: 1, Arb: 1}, true).TotalPJ()
	dec := m.Energy(Counters{Decode: 1, RegWrite: 1}, true).TotalPJ()
	if dec/hop > 0.05 {
		t.Errorf("decode energy %.1f%% of a hop, want minimal", 100*dec/hop)
	}
	if dec == 0 {
		t.Error("decode energy unmodeled")
	}
}

func TestLinkShareZeroTotal(t *testing.T) {
	if got := (Breakdown{}).LinkShare(); got != 0 {
		t.Errorf("LinkShare of empty breakdown = %v", got)
	}
}
