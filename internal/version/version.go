// Package version stamps the cmd tools with build provenance: the working
// tree's git commit (and dirty state), the Go toolchain, and the host. Every
// tool exposes it behind -version via the two-line Flag/ExitIf pair, and
// noxbench embeds the same provenance in its benchmark snapshots, so a
// number in a report can always be traced back to the code that produced it.
package version

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
)

// Git returns the working tree's HEAD commit and whether the tree has
// uncommitted changes. Both are best-effort: outside a git checkout (or
// without the git binary) the SHA is empty and dirty is false.
func Git() (sha string, dirty bool) {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "", false
	}
	sha = strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
		dirty = len(bytes.TrimSpace(st)) > 0
	}
	return sha, dirty
}

// String renders the one-line -version stamp for a tool: name, short commit
// (with a -dirty suffix when the tree has local changes), toolchain, and
// host. Fields that cannot be determined are omitted rather than guessed.
func String(tool string) string {
	parts := []string{tool}
	if sha, dirty := Git(); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		if dirty {
			sha += "-dirty"
		}
		parts = append(parts, sha)
	}
	parts = append(parts, runtime.Version(), runtime.GOOS+"/"+runtime.GOARCH)
	if host, err := os.Hostname(); err == nil && host != "" {
		parts = append(parts, host)
	}
	return strings.Join(parts, " ")
}

// Flag registers -version on fs and returns the destination, so a tool adds
// version reporting with Flag + ExitIf around its flag.Parse call.
func Flag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print build provenance (git commit, toolchain, host) and exit")
}

// ExitIf prints the tool's version stamp and exits when requested (the
// -version flag from Flag was set); otherwise it is a no-op.
func ExitIf(requested bool, tool string) {
	if !requested {
		return
	}
	fmt.Println(String(tool))
	os.Exit(0)
}
