// Hard (permanent) faults: dead links, dead routers, and the escalation
// policy that promotes a chronically faulty link to permanently dead.
//
// Hard faults stay as deterministic as the transient layer: scheduled kills
// are literal spec data, and escalation decisions depend only on transient
// fault firings — themselves pure hashes of (seed, site, cycle) — so a
// degradation campaign replays bit-identically from its Spec at any shard
// count. A dead site refuses traffic exactly like an infinite stall and
// drops anything already staged across it (counted and impact-marked like a
// transient drop), while the owning network reacts to fault-set changes by
// rebuilding routes (see internal/network's reconfiguration epoch).
package fault

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/noc"
	"repro/internal/routing"
	"repro/internal/snapshot/codec"
)

// DeadLink declares the inter-router link between routers A and B
// permanently dead from cycle At on (At 0 = dead from the start). Both
// directions of the channel pair die: the physical model is a severed
// link that neither carries flits nor returns credits.
type DeadLink struct {
	A  noc.NodeID `json:"a"`
	B  noc.NodeID `json:"b"`
	At int64      `json:"at_cycle,omitempty"`
}

// DeadRouter declares a router permanently dead from cycle At on. Every
// incident channel dies with it — the four neighbor links and its local
// cores' inject/eject channels — so the attached cores drop off the network.
type DeadRouter struct {
	Router noc.NodeID `json:"router"`
	At     int64      `json:"at_cycle,omitempty"`
}

// Escalation promotes an inter-router link to permanently dead once
// Threshold transient faults have fired at one of its sites within any
// Window-cycle span. Interface channels never escalate (a core with a
// flaky local port has nowhere to be rerouted to).
type Escalation struct {
	Threshold int   `json:"threshold"`
	Window    int64 `json:"window"`
}

// HasHardFaults reports whether the spec declares any permanent-fault
// machinery (scheduled kills or an escalation policy).
func (s Spec) HasHardFaults() bool {
	return len(s.DeadLinks) > 0 || len(s.DeadRouters) > 0 || s.Escalate != nil
}

func (s Spec) validateHard() error {
	for _, l := range s.DeadLinks {
		if l.A < 0 || l.B < 0 || l.A == l.B {
			return fmt.Errorf("%w: dead link %d-%d", ErrBadSpec, int(l.A), int(l.B))
		}
		if l.At < 0 {
			return fmt.Errorf("%w: dead link %d-%d at negative cycle %d", ErrBadSpec, int(l.A), int(l.B), l.At)
		}
	}
	for _, r := range s.DeadRouters {
		if r.Router < 0 {
			return fmt.Errorf("%w: dead router %d", ErrBadSpec, int(r.Router))
		}
		if r.At < 0 {
			return fmt.Errorf("%w: dead router %d at negative cycle %d", ErrBadSpec, int(r.Router), r.At)
		}
	}
	if e := s.Escalate; e != nil {
		if e.Threshold < 1 {
			return fmt.Errorf("%w: escalation threshold %d < 1", ErrBadSpec, e.Threshold)
		}
		if e.Window < 1 {
			return fmt.Errorf("%w: escalation window %d < 1", ErrBadSpec, e.Window)
		}
	}
	return nil
}

func (s Spec) hardString() string {
	if !s.HasHardFaults() {
		return ""
	}
	out := "dead=["
	first := true
	for _, l := range s.DeadLinks {
		if !first {
			out += " "
		}
		first = false
		out += fmt.Sprintf("L%d-%d@%d", int(l.A), int(l.B), l.At)
	}
	for _, r := range s.DeadRouters {
		if !first {
			out += " "
		}
		first = false
		out += fmt.Sprintf("R%d@%d", int(r.Router), r.At)
	}
	out += "]"
	if e := s.Escalate; e != nil {
		out += fmt.Sprintf(" esc=%d/%d", e.Threshold, e.Window)
	}
	return out
}

// aliveForever marks a site with no scheduled or escalated death.
const aliveForever = math.MaxInt64

// hardKill is one recorded permanent fault: a router, or a normalized
// (a < b) inter-router link, dead from cycle at.
type hardKill struct {
	router noc.NodeID // -1 for a link kill
	a, b   noc.NodeID // normalized link endpoints, -1 for a router kill
	at     int64
}

// hardState is the Injector's permanent-fault machinery, nil when the spec
// declares none — the hot paths test one pointer.
type hardState struct {
	sys   noc.System
	sites []noc.LinkSite
	// deadAt[site] is the first cycle the site is dead, aliveForever if
	// never. Written at bind for scheduled kills and — under inj.mu, via
	// atomic stores — by escalation promotions; hot-path readers use
	// atomic loads (a promotion at cycle t takes effect at t+1, so the
	// racing same-cycle readers' verdicts are unaffected by timing).
	deadAt []int64
	// kills is every recorded permanent fault, scheduled and escalated.
	// Appends are guarded by inj.mu; order is canonicalized on read.
	kills []hardKill
	// linkDead/routerDead dedupe kills by earliest death cycle so a link
	// escalating from both directions in one cycle records once.
	linkDead   map[[2]noc.NodeID]int64
	routerDead map[noc.NodeID]int64
	// scheduled is the sorted list of future kill cycles from the spec;
	// the network's epoch observer walks it with a cursor.
	scheduled []int64

	esc *Escalation
	// ring[site*Threshold+i] holds recent transient-fault cycles at the
	// site; ringCnt counts lifetime events. Each cell has phase-separated
	// writers only (stalls on the sender's compute, drops/flips/credit
	// faults on the link's commit), so plain accesses are race-free.
	ring    []int64
	ringCnt []int32
	// escGen counts accepted promotions (atomic): the epoch observer's
	// cheap dirty signal. escalated mirrors it for reports (under inj.mu).
	escGen    int64
	escalated int64
}

// BindTopology attaches the injector to the owning network's topology: sys
// and the per-site link table in site order. Must follow BindSites with a
// matching site count; a second bind panics. Scheduled kills are resolved
// to sites here — a spec naming routers outside the grid or non-adjacent
// link endpoints panics, because the campaign would silently not degrade.
func (inj *Injector) BindTopology(sys noc.System, sites []noc.LinkSite) {
	if inj.sites == 0 {
		panic("fault: BindTopology before BindSites")
	}
	if len(sites) != inj.sites {
		panic(fmt.Sprintf("fault: BindTopology with %d sites, bound to %d", len(sites), inj.sites))
	}
	if inj.hard != nil {
		panic("fault: injector topology already bound")
	}
	s := &inj.spec
	if !s.HasHardFaults() {
		return
	}
	h := &hardState{
		sys:        sys,
		sites:      append([]noc.LinkSite(nil), sites...),
		deadAt:     make([]int64, len(sites)),
		linkDead:   make(map[[2]noc.NodeID]int64),
		routerDead: make(map[noc.NodeID]int64),
		esc:        s.Escalate,
	}
	for i := range h.deadAt {
		h.deadAt[i] = aliveForever
	}
	if h.esc != nil {
		h.ring = make([]int64, len(sites)*h.esc.Threshold)
		h.ringCnt = make([]int32, len(sites))
	}
	nr := sys.Routers()
	for _, dl := range s.DeadLinks {
		a, b := dl.A, dl.B
		if a > b {
			a, b = b, a
		}
		if int(b) >= nr || sys.Grid.Hops(a, b) != 1 {
			panic(fmt.Sprintf("fault: dead link %d-%d is not an adjacent router pair of the %dx%d grid",
				int(dl.A), int(dl.B), sys.Grid.Width, sys.Grid.Height))
		}
		h.recordKill(hardKill{router: -1, a: a, b: b, at: dl.At})
	}
	for _, dr := range s.DeadRouters {
		if int(dr.Router) >= nr {
			panic(fmt.Sprintf("fault: dead router %d outside the %dx%d grid",
				int(dr.Router), sys.Grid.Width, sys.Grid.Height))
		}
		h.recordKill(hardKill{router: dr.Router, a: -1, b: -1, at: dr.At})
	}
	for _, k := range h.kills {
		if k.at > 0 {
			h.scheduled = append(h.scheduled, k.at)
		}
	}
	sort.Slice(h.scheduled, func(i, j int) bool { return h.scheduled[i] < h.scheduled[j] })
	inj.hard = h
}

// recordKill dedupes and applies one permanent fault. Caller holds inj.mu
// when invoked after bind (escalation); bind-time calls are single-threaded.
func (h *hardState) recordKill(k hardKill) bool {
	if k.router >= 0 {
		if at, ok := h.routerDead[k.router]; ok && at <= k.at {
			return false
		}
		h.routerDead[k.router] = k.at
	} else {
		if at, ok := h.linkDead[[2]noc.NodeID{k.a, k.b}]; ok && at <= k.at {
			return false
		}
		h.linkDead[[2]noc.NodeID{k.a, k.b}] = k.at
	}
	h.kills = append(h.kills, k)
	for i, ls := range h.sites {
		if !h.siteMatches(ls, k) {
			continue
		}
		if cur := atomic.LoadInt64(&h.deadAt[i]); k.at < cur {
			atomic.StoreInt64(&h.deadAt[i], k.at)
		}
	}
	return true
}

func (h *hardState) siteMatches(ls noc.LinkSite, k hardKill) bool {
	if k.router >= 0 {
		if ls.InterRouter() {
			return ls.Src == k.router || ls.Dst == k.router
		}
		return h.sys.RouterOf(ls.Core) == k.router
	}
	if !ls.InterRouter() {
		return false
	}
	a, b := ls.Src, ls.Dst
	if a > b {
		a, b = b, a
	}
	return a == k.a && b == k.b
}

// siteDead reports whether a site is permanently dead at cycle.
func (inj *Injector) siteDead(site int32, cycle int64) bool {
	h := inj.hard
	return h != nil && cycle >= atomic.LoadInt64(&h.deadAt[site])
}

// noteTransient feeds one transient fault firing at a site into the
// escalation policy. Promotion kills the whole normalized link (both
// directions) from the next cycle.
func (inj *Injector) noteTransient(site int32, cycle int64) {
	h := inj.hard
	if h == nil || h.esc == nil {
		return
	}
	ls := h.sites[site]
	if !ls.InterRouter() {
		return
	}
	t := h.esc.Threshold
	base := int(site) * t
	cnt := h.ringCnt[site]
	h.ring[base+int(cnt)%t] = cycle
	cnt++
	h.ringCnt[site] = cnt
	if int(cnt) < t {
		return
	}
	oldest := h.ring[base+int(cnt)%t]
	if cycle-oldest >= h.esc.Window {
		return
	}
	if cycle+1 >= atomic.LoadInt64(&h.deadAt[site]) {
		return // already dead or dying this instant
	}
	a, b := ls.Src, ls.Dst
	if a > b {
		a, b = b, a
	}
	inj.mu.Lock()
	if h.recordKill(hardKill{router: -1, a: a, b: b, at: cycle + 1}) {
		h.escalated++
		atomic.AddInt64(&h.escGen, 1)
	}
	inj.mu.Unlock()
}

// FaultSet returns the canonical set of routers and links permanently dead
// at cycle — the key the routing layer rebuilds tables from. The zero set
// is returned when no hard faults are armed.
func (inj *Injector) FaultSet(cycle int64) routing.FaultSet {
	h := inj.hard
	if h == nil {
		return routing.FaultSet{}
	}
	inj.mu.Lock()
	var routers []noc.NodeID
	var links [][2]noc.NodeID
	for r, at := range h.routerDead {
		if at <= cycle {
			routers = append(routers, r)
		}
	}
	for l, at := range h.linkDead {
		if at <= cycle {
			links = append(links, l)
		}
	}
	inj.mu.Unlock()
	return routing.NewFaultSet(routers, links)
}

// ScheduledKillCycles returns the sorted cycles (> 0) at which spec-
// scheduled kills take effect; the owning network's epoch observer walks
// this with a cursor. Kills at cycle 0 are already in FaultSet(0).
func (inj *Injector) ScheduledKillCycles() []int64 {
	if inj.hard == nil {
		return nil
	}
	return inj.hard.scheduled
}

// EscalationGen returns the number of accepted escalation promotions so far
// (monotonic; safe from the stepping goroutine between phases).
func (inj *Injector) EscalationGen() int64 {
	if inj.hard == nil {
		return 0
	}
	return atomic.LoadInt64(&inj.hard.escGen)
}

// EscalatedLinks returns how many links the escalation policy killed.
func (inj *Injector) EscalatedLinks() int64 {
	if inj.hard == nil {
		return 0
	}
	inj.mu.Lock()
	n := inj.hard.escalated
	inj.mu.Unlock()
	return n
}

// MarkImpacted records a packet whose delivery a permanent fault may have
// prevented (the reconfiguration epoch flushes it from the network); the
// delivery oracle then accounts it instead of reporting a false loss.
func (inj *Injector) MarkImpacted(id uint64) {
	inj.mu.Lock()
	inj.impacted[id] = struct{}{}
	inj.mu.Unlock()
}

// ResetSiteAccounting zeroes the per-site credit deltas. The reconfiguration
// epoch calls it after restoring every link's credits to capacity, so the
// post-drain conservation check measures only post-epoch transient faults.
func (inj *Injector) ResetSiteAccounting() {
	for i := range inj.creditDelta {
		inj.creditDelta[i] = 0
	}
}

// SaveHardState serializes the dynamic permanent-fault state — escalated
// kills and the escalation rings — in deterministic order. Scheduled kills
// are spec data and are not re-saved.
func (inj *Injector) SaveHardState(e *codec.Encoder) {
	h := inj.hard
	if h == nil {
		e.Int(0)
		return
	}
	inj.mu.Lock()
	esc := make([]hardKill, 0, len(h.kills))
	for _, k := range h.kills {
		if k.router < 0 {
			if at, ok := h.linkDead[[2]noc.NodeID{k.a, k.b}]; ok && at == k.at {
				esc = append(esc, k)
			}
		}
	}
	// Keep only runtime promotions: a scheduled link kill also satisfies
	// the filter above, so dedupe against the spec's own list.
	specLink := make(map[[2]noc.NodeID]int64)
	for _, dl := range inj.spec.DeadLinks {
		a, b := dl.A, dl.B
		if a > b {
			a, b = b, a
		}
		if at, ok := specLink[[2]noc.NodeID{a, b}]; !ok || dl.At < at {
			specLink[[2]noc.NodeID{a, b}] = dl.At
		}
	}
	out := esc[:0]
	for _, k := range esc {
		if at, ok := specLink[[2]noc.NodeID{k.a, k.b}]; ok && at == k.at {
			continue
		}
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].a != out[j].a {
			return out[i].a < out[j].a
		}
		if out[i].b != out[j].b {
			return out[i].b < out[j].b
		}
		return out[i].at < out[j].at
	})
	escalated := h.escalated
	inj.mu.Unlock()

	e.Int(1)
	e.Int(len(out))
	for _, k := range out {
		e.Int(int(k.a))
		e.Int(int(k.b))
		e.I64(k.at)
	}
	e.I64(escalated)
	if h.esc != nil {
		e.Int(len(h.ringCnt))
		for _, c := range h.ringCnt {
			e.Int(int(c))
		}
		for _, v := range h.ring {
			e.I64(v)
		}
	} else {
		e.Int(0)
	}
}

// RestoreHardState loads state saved by SaveHardState into a freshly bound
// injector of the identical spec and topology.
func (inj *Injector) RestoreHardState(d *codec.Decoder) error {
	tag := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	h := inj.hard
	if tag == 0 {
		if h != nil {
			return fmt.Errorf("%w: snapshot has no hard-fault state, injector arms it", codec.ErrUnsupported)
		}
		return nil
	}
	if h == nil {
		return fmt.Errorf("%w: snapshot has hard-fault state, injector arms none", codec.ErrUnsupported)
	}
	nesc := d.Len(1 << 20)
	if err := d.Err(); err != nil {
		return err
	}
	inj.mu.Lock()
	for i := 0; i < nesc; i++ {
		a, b := noc.NodeID(d.Int()), noc.NodeID(d.Int())
		at := d.I64()
		if err := d.Err(); err != nil {
			inj.mu.Unlock()
			return err
		}
		if h.recordKill(hardKill{router: -1, a: a, b: b, at: at}) {
			atomic.AddInt64(&h.escGen, 1)
		}
	}
	h.escalated = d.I64()
	inj.mu.Unlock()
	nring := d.Len(1 << 24)
	if err := d.Err(); err != nil {
		return err
	}
	if h.esc != nil {
		if nring != len(h.ringCnt) {
			return fmt.Errorf("%w: escalation ring over %d sites, injector has %d", codec.ErrCorrupt, nring, len(h.ringCnt))
		}
		for i := range h.ringCnt {
			h.ringCnt[i] = int32(d.Int())
		}
		for i := range h.ring {
			h.ring[i] = d.I64()
		}
	} else if nring != 0 {
		return fmt.Errorf("%w: escalation rings without an escalation policy", codec.ErrCorrupt)
	}
	return d.Err()
}
