// Package fault deterministically injects channel-level faults into a
// simulated network: payload bit-flips, dropped flits, transient link
// stalls, and credit loss/duplication, each at a configurable rate over a
// configurable cycle window.
//
// Every decision is a pure hash of (campaign seed, channel site, cycle), so
// a campaign is replayable from its Spec alone and — because the simulator
// itself is bit-exact across shard counts — fault firings and their
// consequences are identical at any -shards setting. The Injector plugs
// into noc.Link via the noc.Tamperer interface and is bound to exactly one
// network.
package fault

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/noc"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// BitFlip flips one pseudo-random bit of a flit's 64-bit payload on the
	// wire. On a raw flit this surfaces as a delivery-oracle payload
	// mismatch; on an XOR-encoded flit it breaks the downstream decode's
	// raw-image identity (wire.Decode's bit-exactness check).
	BitFlip Kind = iota
	// Drop discards a flit on the wire. The sender's credit is permanently
	// lost at the site, and constituents of an encoded flit leak from the
	// arena (both accounted for by the conservation checks).
	Drop
	// Stall makes a channel refuse new traffic for a window of StallCycles
	// cycles — observed by senders as backpressure, which also exercises
	// the delayed-wake paths of the quiescence machinery.
	Stall
	// CreditLoss discards a staged credit return, shrinking the sender's
	// usable window; losing enough wedges the channel (deadlock watchdog).
	CreditLoss
	// CreditDup duplicates a staged credit return, letting the sender
	// overrun the downstream buffer (overflow guards report it).
	CreditDup

	NumKinds = 5
)

// String returns the short report label for the kind.
func (k Kind) String() string {
	switch k {
	case BitFlip:
		return "flip"
	case Drop:
		return "drop"
	case Stall:
		return "stall"
	case CreditLoss:
		return "closs"
	case CreditDup:
		return "cdup"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Spec is a replayable fault-campaign description. Rates are per-event
// probabilities: BitFlip/Drop per flit-traversal, Stall per (site, cycle)
// window start, CreditLoss/CreditDup per returned credit. The zero Spec
// injects nothing.
type Spec struct {
	// Seed drives every fault decision; two runs of the same Spec on the
	// same workload fire identical faults.
	Seed uint64 `json:"seed"`
	// Start/End bound the active window in cycles; End 0 means unbounded,
	// otherwise the window is [Start, End).
	Start int64 `json:"start_cycle,omitempty"`
	End   int64 `json:"end_cycle,omitempty"`

	BitFlip float64 `json:"bit_flip_rate,omitempty"`
	Drop    float64 `json:"drop_rate,omitempty"`
	Stall   float64 `json:"stall_rate,omitempty"`
	// StallCycles is the duration of one stall window (default 8).
	StallCycles int64   `json:"stall_cycles,omitempty"`
	CreditLoss  float64 `json:"credit_loss_rate,omitempty"`
	CreditDup   float64 `json:"credit_dup_rate,omitempty"`

	// DeadLinks and DeadRouters schedule permanent topology faults; see
	// hard.go. Escalate promotes chronically faulty links to permanent.
	DeadLinks   []DeadLink   `json:"dead_links,omitempty"`
	DeadRouters []DeadRouter `json:"dead_routers,omitempty"`
	Escalate    *Escalation  `json:"escalate,omitempty"`
}

// ErrBadSpec is wrapped by every Spec validation failure.
var ErrBadSpec = errors.New("fault: invalid spec")

// Validate checks rate and window sanity.
func (s Spec) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"bit_flip_rate", s.BitFlip},
		{"drop_rate", s.Drop},
		{"stall_rate", s.Stall},
		{"credit_loss_rate", s.CreditLoss},
		{"credit_dup_rate", s.CreditDup},
	} {
		if r.v < 0 || r.v >= 1 {
			return fmt.Errorf("%w: %s %v outside [0,1)", ErrBadSpec, r.name, r.v)
		}
	}
	if s.CreditLoss+s.CreditDup >= 1 {
		return fmt.Errorf("%w: credit_loss_rate+credit_dup_rate %v >= 1", ErrBadSpec, s.CreditLoss+s.CreditDup)
	}
	if s.StallCycles < 0 {
		return fmt.Errorf("%w: stall_cycles %d negative", ErrBadSpec, s.StallCycles)
	}
	if s.Start < 0 {
		return fmt.Errorf("%w: start_cycle %d negative", ErrBadSpec, s.Start)
	}
	if s.End != 0 && s.End <= s.Start {
		return fmt.Errorf("%w: end_cycle %d not after start_cycle %d", ErrBadSpec, s.End, s.Start)
	}
	return s.validateHard()
}

// ParseSpec decodes a strict-JSON campaign spec (unknown fields rejected)
// and validates it.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// String renders the spec as a deterministic one-line report header.
func (s Spec) String() string {
	end := "inf"
	if s.End != 0 {
		end = fmt.Sprintf("%d", s.End)
	}
	base := fmt.Sprintf("seed=0x%X window=[%d,%s) flip=%.4f drop=%.4f stall=%.4fx%d closs=%.4f cdup=%.4f",
		s.Seed, s.Start, end, s.BitFlip, s.Drop, s.Stall, s.stallCycles(), s.CreditLoss, s.CreditDup)
	if h := s.hardString(); h != "" {
		base += " " + h
	}
	return base
}

func (s Spec) stallCycles() int64 {
	if s.StallCycles <= 0 {
		return 8
	}
	return s.StallCycles
}

func (s Spec) active(cycle int64) bool {
	return cycle >= s.Start && (s.End == 0 || cycle < s.End)
}

// Injector implements noc.Tamperer for one network. Create one per
// simulation; the network binds it to its channel sites at construction and
// a second bind panics.
type Injector struct {
	spec  Spec
	sites int

	// counts is a flat [site][kind] matrix. Each (site, kind) cell has a
	// single writer: flip/drop/credit cells are written by the link-commit
	// goroutine (the sink's shard), stall cells by the sender's compute
	// goroutine, so no cell is ever raced.
	counts []int64
	// creditDelta is the net per-site credit change applied by faults
	// (drops and credit loss -1, duplication +1); the post-drain credit
	// conservation check offsets link capacities by it. Same single-writer
	// discipline as counts is NOT available here (drop is written at
	// commit, loss/dup too — same goroutine, fine).
	creditDelta []int32
	// stallMark is the most recent stall-window start already counted per
	// site, so a window is tallied once however often senders query it.
	stallMark []int64

	// mu guards the impacted set, which is only touched when a fault
	// actually fires (rare at campaign rates), and the hard state's kill
	// records.
	mu       sync.Mutex
	impacted map[uint64]struct{}

	// hard is the permanent-fault machinery, nil unless the spec declares
	// dead links/routers or an escalation policy (see hard.go) — the hot
	// paths pay one pointer test.
	hard *hardState
}

// NewInjector returns an unbound injector for the spec. The spec must have
// passed Validate; NewInjector panics otherwise so a campaign can't silently
// run with out-of-range rates.
func NewInjector(spec Spec) *Injector {
	if err := spec.Validate(); err != nil {
		panic(err.Error())
	}
	return &Injector{spec: spec, impacted: make(map[uint64]struct{})}
}

// Spec returns the campaign spec the injector was built from.
func (inj *Injector) Spec() Spec { return inj.spec }

// HardArmed reports whether the campaign declares any permanent-fault
// machinery (dead links, dead routers, or transient-to-permanent
// escalation). The network probes this before construction to decide
// whether to pay for topology binding and the reconfiguration observer.
func (inj *Injector) HardArmed() bool { return inj.spec.HasHardFaults() }

// BindSites is called by the owning network with its channel-site count.
// An injector serves exactly one network — rebinding panics, because the
// per-site state would silently mix two simulations.
func (inj *Injector) BindSites(n int) {
	if inj.sites != 0 || inj.counts != nil {
		panic("fault: injector already bound to a network")
	}
	if n <= 0 {
		panic("fault: BindSites with no sites")
	}
	inj.sites = n
	inj.counts = make([]int64, n*NumKinds)
	inj.creditDelta = make([]int32, n)
	inj.stallMark = make([]int64, n)
	for i := range inj.stallMark {
		inj.stallMark[i] = -1 << 62
	}
}

// mix is a splitmix64-style avalanche of the decision coordinates; the
// result is uniform enough that the top 53 bits serve as a [0,1) draw.
func mix(a, b, c, d uint64) uint64 {
	z := a
	z ^= b * 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z ^= c * 0x94D049BB133111EB
	z = (z ^ (z >> 27)) * 0x2545F4914F6CDD1D
	z ^= d * 0xD6E8FEB86659FD93
	z = (z ^ (z >> 31)) * 0x9E3779B97F4A7C15
	return z ^ (z >> 29)
}

// Decision salts keep the per-kind draws independent at the same site+cycle.
const (
	saltFlip   = 0x464C4950 // "FLIP"
	saltDrop   = 0x44524F50 // "DROP"
	saltStall  = 0x5354414C // "STAL"
	saltCredit = 0x43524454 // "CRDT"
)

func (inj *Injector) roll(salt uint64, site int32, cycle int64, k uint64) float64 {
	h := mix(inj.spec.Seed^salt, uint64(site), uint64(cycle), k)
	return float64(h>>11) * 0x1p-53
}

func (inj *Injector) count(site int32, kind Kind) {
	inj.counts[int(site)*NumKinds+int(kind)]++
}

// impactFlit records every packet whose delivery a fault may corrupt or
// prevent: the flit's own packet, or — for an XOR-encoded flit — every
// constituent packet (a superset: later chain members often still recover,
// and a recovered-anyway packet in the set is harmless because the delivery
// oracle only consults it for packets that went missing).
func (inj *Injector) impactFlit(f *noc.Flit) {
	inj.mu.Lock()
	if f.Encoded {
		for _, p := range f.Parts {
			if p.Packet != nil {
				inj.impacted[p.Packet.ID] = struct{}{}
			}
		}
	} else if f.Packet != nil {
		inj.impacted[f.Packet.ID] = struct{}{}
	}
	inj.mu.Unlock()
}

// TamperFlit implements noc.Tamperer. At most one fault fires per flit,
// drop taking priority over flip so the two rates stay independent knobs.
func (inj *Injector) TamperFlit(site int32, cycle int64, f *noc.Flit) bool {
	if inj.siteDead(site, cycle) {
		// A permanently dead channel eats whatever was staged across it:
		// the in-flight flit of a mid-run kill is an accounted injector
		// loss, not a mystery disappearance.
		inj.impactFlit(f)
		inj.count(site, Drop)
		inj.creditDelta[site]--
		return true
	}
	s := &inj.spec
	if !s.active(cycle) {
		return false
	}
	if s.Drop > 0 && inj.roll(saltDrop, site, cycle, 0) < s.Drop {
		inj.impactFlit(f)
		inj.count(site, Drop)
		inj.creditDelta[site]--
		inj.noteTransient(site, cycle)
		return true
	}
	if s.BitFlip > 0 && inj.roll(saltFlip, site, cycle, 0) < s.BitFlip {
		bit := mix(s.Seed^saltFlip, uint64(site), uint64(cycle), 1) & 63
		f.Raw ^= 1 << bit
		inj.impactFlit(f)
		inj.count(site, BitFlip)
		inj.noteTransient(site, cycle)
	}
	return false
}

// TamperCredits implements noc.Tamperer: each staged return independently
// survives, is lost, or is duplicated.
func (inj *Injector) TamperCredits(site int32, cycle int64, n int) int {
	s := &inj.spec
	if !s.active(cycle) || (s.CreditLoss == 0 && s.CreditDup == 0) {
		return n
	}
	out := n
	for k := 0; k < n; k++ {
		r := inj.roll(saltCredit, site, cycle, uint64(k))
		switch {
		case r < s.CreditLoss:
			out--
			inj.count(site, CreditLoss)
			inj.creditDelta[site]--
			inj.noteTransient(site, cycle)
		case r < s.CreditLoss+s.CreditDup:
			out++
			inj.count(site, CreditDup)
			inj.creditDelta[site]++
			inj.noteTransient(site, cycle)
		}
	}
	return out
}

// LinkStalled implements noc.Tamperer: the channel is stalled at cycle t if
// any of the last StallCycles cycles started a stall window. The window
// scan keeps the decision a pure function of (site, cycle) — no mutable
// countdown state that call order could skew.
func (inj *Injector) LinkStalled(site int32, cycle int64) bool {
	if inj.siteDead(site, cycle) {
		return true // a dead channel is an unending stall
	}
	s := &inj.spec
	if s.Stall <= 0 {
		return false
	}
	dur := s.stallCycles()
	lo := cycle - dur + 1
	if lo < 0 {
		lo = 0
	}
	for t := lo; t <= cycle; t++ {
		if !s.active(t) {
			continue
		}
		if inj.roll(saltStall, site, t, 0) < s.Stall {
			// Tally each window start once; stallMark has a single writer
			// (the channel's unique sender).
			if inj.stallMark[site] < t {
				inj.stallMark[site] = t
				inj.count(site, Stall)
				inj.noteTransient(site, cycle)
			}
			return true
		}
	}
	return false
}

// CreditDelta returns the net credit change faults applied at a site; the
// conservation check expects Credits()+PendingReturns() == Capacity()+delta
// after a full drain.
func (inj *Injector) CreditDelta(site int) int {
	if inj.creditDelta == nil {
		return 0
	}
	return int(inj.creditDelta[site])
}

// Impacted reports whether a fault fired that may corrupt or prevent the
// delivery of packet id; the delivery oracle treats missing impacted
// packets as accounted-for rather than lost.
func (inj *Injector) Impacted(id uint64) bool {
	inj.mu.Lock()
	_, ok := inj.impacted[id]
	inj.mu.Unlock()
	return ok
}

// Leaky reports whether a fired fault may leak pooled flit objects (drops
// discard encoded constituents), which disables the arena-exactness check.
func (inj *Injector) Leaky() bool {
	return inj.KindTotal(Drop) > 0
}

// KindTotal returns the number of faults of one kind fired so far.
func (inj *Injector) KindTotal(kind Kind) int64 {
	var n int64
	for site := 0; site < inj.sites; site++ {
		n += inj.counts[site*NumKinds+int(kind)]
	}
	return n
}

// Totals returns the per-kind fault counts.
func (inj *Injector) Totals() [NumKinds]int64 {
	var t [NumKinds]int64
	for k := Kind(0); k < NumKinds; k++ {
		t[k] = inj.KindTotal(k)
	}
	return t
}

// Total returns the overall number of faults fired.
func (inj *Injector) Total() int64 {
	var n int64
	for _, c := range inj.counts {
		n += c
	}
	return n
}

// ImpactedCount returns how many distinct packets were marked impacted.
func (inj *Injector) ImpactedCount() int {
	inj.mu.Lock()
	n := len(inj.impacted)
	inj.mu.Unlock()
	return n
}
