package fault

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/noc"
)

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		{},
		{Seed: 1, BitFlip: 0.5, Drop: 0.1, Stall: 0.999},
		{CreditLoss: 0.4, CreditDup: 0.5},
		{Start: 10, End: 20, StallCycles: 3},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("valid spec rejected: %+v: %v", s, err)
		}
	}
	bad := []Spec{
		{BitFlip: 1},
		{Drop: -0.1},
		{Stall: 2},
		{CreditLoss: 0.6, CreditDup: 0.5},
		{StallCycles: -1},
		{Start: -1},
		{Start: 20, End: 10},
		{Start: 5, End: 5},
	}
	for _, s := range bad {
		err := s.Validate()
		if err == nil {
			t.Errorf("invalid spec accepted: %+v", s)
			continue
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("validation error does not wrap ErrBadSpec: %v", err)
		}
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec([]byte(`{"seed":7,"bit_flip_rate":0.01,"stall_rate":0.002,"stall_cycles":16}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || s.BitFlip != 0.01 || s.StallCycles != 16 {
		t.Errorf("parsed spec wrong: %+v", s)
	}
	for _, in := range []string{
		`{"seed":7,"unknown_field":1}`, // strict decoding
		`{"bit_flip_rate":1.5}`,        // out of range
		`{"seed":`,                     // truncated
	} {
		if _, err := ParseSpec([]byte(in)); err == nil {
			t.Errorf("ParseSpec accepted %q", in)
		} else if !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseSpec error for %q does not wrap ErrBadSpec: %v", in, err)
		}
	}
}

// TestDecisionsDeterministic: every tamper decision is a pure function of
// (seed, site, cycle), so two injectors with the same spec agree on every
// decision regardless of query order.
func TestDecisionsDeterministic(t *testing.T) {
	spec := Spec{Seed: 0x51CC, BitFlip: 0.05, Drop: 0.02, Stall: 0.01, CreditLoss: 0.03, CreditDup: 0.02}
	a, b := NewInjector(spec), NewInjector(spec)
	a.BindSites(8)
	b.BindSites(8)
	pkt := noc.NewPacket(1, 0, 5, 1, 0, 0)

	// Query b in reverse order to prove order-independence.
	type dec struct {
		dropped bool
		raw     uint64
		stalled bool
		credits int
	}
	query := func(inj *Injector, site int32, cycle int64) dec {
		f := &noc.Flit{Packet: pkt, Raw: 0xABCD_EF01_2345_6789}
		d := dec{}
		d.dropped = inj.TamperFlit(site, cycle, f)
		d.raw = f.Raw
		d.stalled = inj.LinkStalled(site, cycle)
		d.credits = inj.TamperCredits(site, cycle, 2)
		return d
	}
	var forward []dec
	for site := int32(0); site < 8; site++ {
		for cycle := int64(0); cycle < 200; cycle++ {
			forward = append(forward, query(a, site, cycle))
		}
	}
	i := len(forward)
	for site := int32(7); site >= 0; site-- {
		for cycle := int64(199); cycle >= 0; cycle-- {
			i--
			if got := query(b, site, cycle); got != forward[i] {
				t.Fatalf("decision diverged at site %d cycle %d: %+v vs %+v", site, cycle, got, forward[i])
			}
		}
	}
	if a.Total() == 0 {
		t.Fatal("no faults fired at these rates — determinism check is vacuous")
	}
}

// TestAtMostOneFaultPerFlit: a drop decision suppresses the flip at the
// same coordinates so the two rates remain independent knobs.
func TestAtMostOneFaultPerFlit(t *testing.T) {
	spec := Spec{Seed: 3, Drop: 0.999999, BitFlip: 0.999999}
	inj := NewInjector(spec)
	inj.BindSites(1)
	pkt := noc.NewPacket(9, 0, 1, 1, 0, 0)
	for cycle := int64(0); cycle < 100; cycle++ {
		f := &noc.Flit{Packet: pkt, Raw: 42}
		if !inj.TamperFlit(0, cycle, f) {
			t.Fatalf("near-certain drop did not fire at cycle %d", cycle)
		}
		if f.Raw != 42 {
			t.Fatalf("dropped flit was also flipped at cycle %d", cycle)
		}
	}
	if inj.KindTotal(BitFlip) != 0 {
		t.Errorf("flips counted despite drops taking priority: %d", inj.KindTotal(BitFlip))
	}
	if inj.CreditDelta(0) != -100 {
		t.Errorf("drop credit delta = %d, want -100", inj.CreditDelta(0))
	}
}

// TestStallWindow: a stall decision at cycle t keeps the channel stalled
// for exactly StallCycles cycles, and the window is counted once.
func TestStallWindow(t *testing.T) {
	// Find a seed/cycle with an isolated stall start.
	spec := Spec{Seed: 0x57A1, Stall: 0.01, StallCycles: 5}
	inj := NewInjector(spec)
	inj.BindSites(1)
	start := int64(-1)
	for cycle := int64(0); cycle < 10000; cycle++ {
		h := inj.roll(saltStall, 0, cycle, 0)
		if h < spec.Stall {
			// Require isolation: no other start within StallCycles either side.
			isolated := true
			for d := int64(1); d < 10; d++ {
				if inj.roll(saltStall, 0, cycle-d, 0) < spec.Stall || inj.roll(saltStall, 0, cycle+d, 0) < spec.Stall {
					isolated = false
					break
				}
			}
			if isolated && cycle > 10 {
				start = cycle
				break
			}
		}
	}
	if start < 0 {
		t.Fatal("no isolated stall start found in 10k cycles")
	}
	if inj.LinkStalled(0, start-1) {
		t.Error("stalled before the window start")
	}
	for c := start; c < start+5; c++ {
		if !inj.LinkStalled(0, c) {
			t.Errorf("not stalled at cycle %d inside window [%d,%d)", c, start, start+5)
		}
	}
	if inj.LinkStalled(0, start+5) {
		t.Error("still stalled after the window ended")
	}
	if got := inj.KindTotal(Stall); got != 1 {
		t.Errorf("stall window counted %d times, want 1", got)
	}
}

// TestImpactedTracksEncodedConstituents: tampering an encoded flit marks
// every constituent packet impacted.
func TestImpactedTracksEncodedConstituents(t *testing.T) {
	spec := Spec{Seed: 1, BitFlip: 0.999999}
	inj := NewInjector(spec)
	inj.BindSites(1)
	p1 := noc.NewPacket(11, 0, 1, 1, 0, 0)
	p2 := noc.NewPacket(22, 2, 3, 1, 0, 0)
	enc := &noc.Flit{Encoded: true, Raw: 99, Parts: []*noc.Flit{{Packet: p1}, {Packet: p2}}}
	inj.TamperFlit(0, 0, enc)
	if !inj.Impacted(11) || !inj.Impacted(22) {
		t.Error("encoded constituents not marked impacted")
	}
	if inj.Impacted(33) {
		t.Error("unrelated packet marked impacted")
	}
	if inj.ImpactedCount() != 2 {
		t.Errorf("impacted count = %d, want 2", inj.ImpactedCount())
	}
}

func TestWindowGating(t *testing.T) {
	spec := Spec{Seed: 4, Drop: 0.999999, Start: 100, End: 200}
	inj := NewInjector(spec)
	inj.BindSites(1)
	pkt := noc.NewPacket(1, 0, 1, 1, 0, 0)
	for _, cycle := range []int64{0, 99, 200, 5000} {
		if inj.TamperFlit(0, cycle, &noc.Flit{Packet: pkt}) {
			t.Errorf("fault fired outside the window at cycle %d", cycle)
		}
	}
	if !inj.TamperFlit(0, 150, &noc.Flit{Packet: pkt}) {
		t.Error("near-certain drop did not fire inside the window")
	}
}

func TestBindSitesGuards(t *testing.T) {
	inj := NewInjector(Spec{Seed: 1})
	inj.BindSites(4)
	for _, f := range []func(){
		func() { inj.BindSites(4) },
		func() { NewInjector(Spec{Seed: 1}).BindSites(0) },
		func() { NewInjector(Spec{BitFlip: 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSpecString(t *testing.T) {
	s := Spec{Seed: 0xAB, BitFlip: 0.01}
	if got := s.String(); !strings.Contains(got, "seed=0xAB") || !strings.Contains(got, "window=[0,inf)") {
		t.Errorf("unexpected spec string %q", got)
	}
	s.End = 50
	if got := s.String(); !strings.Contains(got, "window=[0,50)") {
		t.Errorf("unexpected bounded-window string %q", got)
	}
}
