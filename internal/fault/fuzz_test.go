package fault

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzParseSpec drives arbitrary bytes through the strict campaign-spec
// parser. The contract: any input either yields a Spec that passes Validate
// (and round-trips through JSON back to an equally valid spec), or fails
// with an ErrBadSpec-wrapped error — never a panic, never an anonymous
// error, never a "valid" spec that Validate would have rejected.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"seed":1}`,
		`{"seed":12,"bit_flip_rate":0.001,"drop_rate":0.0005}`,
		`{"seed":7,"start_cycle":100,"end_cycle":900,"stall_rate":0.01,"stall_cycles":16}`,
		`{"seed":3,"credit_loss_rate":0.002,"credit_dup_rate":0.002}`,
		`{"seed":9,"dead_links":[{"a":5,"b":6}]}`,
		`{"seed":9,"dead_links":[{"a":1,"b":2,"at_cycle":500},{"a":9,"b":10}]}`,
		`{"seed":4,"dead_routers":[{"router":0},{"router":7,"at_cycle":1000}]}`,
		`{"seed":11,"drop_rate":0.01,"escalate":{"threshold":3,"window":200}}`,
		`{"seed":2,"dead_links":[{"a":0,"b":1}],"dead_routers":[{"router":15}],"escalate":{"threshold":5,"window":64}}`,
		`{"seed":2,"dead_links":[{"a":1,"b":1}]}`,
		`{"seed":2,"dead_links":[{"a":-1,"b":3}]}`,
		`{"seed":2,"dead_routers":[{"router":-4}]}`,
		`{"seed":2,"escalate":{"threshold":0,"window":10}}`,
		`{"seed":2,"escalate":{"threshold":3,"window":0}}`,
		`{"seed":2,"bit_flip_rate":1.5}`,
		`{"unknown_field":true}`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("ParseSpec error not wrapping ErrBadSpec: %v", err)
			}
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseSpec accepted a spec Validate rejects: %v\nspec: %+v", verr, s)
		}
		// The accepted spec must survive a JSON round trip unchanged in
		// validity and in its deterministic report header.
		enc, merr := json.Marshal(s)
		if merr != nil {
			t.Fatalf("re-marshal: %v", merr)
		}
		s2, err2 := ParseSpec(enc)
		if err2 != nil {
			t.Fatalf("round trip rejected: %v\njson: %s", err2, enc)
		}
		if s.String() != s2.String() {
			t.Fatalf("round trip changed the spec header:\n  %s\n  %s", s, s2)
		}
	})
}
