package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Sharded execution: the kernel's two-phase cycle split across a persistent
// worker pool, bit-exact with the serial path.
//
// The cycle becomes three barrier-separated phases:
//
//	phase 0  Compute  — every shard evaluates all of its active components.
//	phase 1  Commit-early — shards commit their active early components
//	         (routers, NIs) in registration order within the shard.
//	phase 2  Commit-late  — shards commit their active late components
//	         (links) in registration order within the shard.
//
// Why this is equivalent to the serial registration-order walk:
//
//   - Compute, by the kernel's contract, reads only committed state and
//     stages into sender-owned storage, so compute order is unobservable.
//   - Commits perform cross-component writes in exactly one direction:
//     early components stage onto late ones (credit returns, staged flits
//     already placed by compute), and late components deliver into early
//     ones. Within a class, no commit writes to another component of the
//     same class, so intra-class order is unobservable and classes can run
//     in parallel; the barrier between phases 1 and 2 preserves the only
//     order that matters (early-before-late), which is the same order the
//     serial walk gets from links being registered last.
//   - Wakes are phase-disjoint: compute-phase wakes target late components
//     (whose Compute is a no-op, so missing them mid-phase is
//     unobservable), phase-1 wakes target late components, and phase-2
//     wakes target early components. A component's active flag is
//     therefore never woken concurrently with its owner shard clearing it,
//     and every wake lands before the phase that next evaluates the
//     target.
//
// Cross-shard effects that are order-sensitive at the simulation surface
// (deliveries, probe events) are not handled here: owners stage them into
// per-shard mailboxes and drain them in the kernel epilogue (see
// SetEpilogue), which runs on the stepping goroutine after the last
// barrier.

// Phase identifiers passed to the eval hook; also the most significant
// ordering key when per-shard probe buffers are merged back into serial
// emission order.
const (
	PhaseCompute = 0
	PhaseEarly   = 1
	PhaseLate    = 2
)

// pad separates per-shard counters onto their own cache lines so workers
// incrementing adjacent shards' counters do not false-share.
type pad struct {
	v int32
	_ [60]byte
}

type sharding struct {
	shards  int
	shardOf []int32 // component index -> shard

	// Per-shard ascending component-index lists. all is the compute-phase
	// walk; early/late are the commit-phase walks.
	all   [][]int32
	early [][]int32
	late  [][]int32

	// idle[s].v counts quiescent components in shard s (atomic: owner
	// batches increments after its commit walk, any worker decrements via
	// wake). total[s] is the shard's component count.
	idle  []pad
	total []int32

	// evalHook, when set, runs immediately before every component
	// evaluation on the worker that performs it. The probe layer uses it to
	// tag per-shard event buffers with (phase, component) so they can be
	// merged into serial emission order.
	evalHook func(shard, phase, comp int)

	// wheels[s] holds shard s's pending timed wakes. Workers schedule into
	// their own shard's wheel during commit walks (worker-local, no
	// synchronization); the stepping goroutine pops every wheel at the top
	// of the step, with all workers quiescent, through the atomic wake path.
	// Empty slice when the kernel has no Horizoned components.
	wheels []*timingWheel

	work   []chan uint8
	wg     sync.WaitGroup
	closed bool

	// dispatchMask is per-phase scratch: the snapshot of which shards were
	// dispatched. Snapshotting matters — an already-running worker can wake
	// a component in a shard the dispatcher has not reached yet, and the
	// send loop must agree with the count handed to wg.Add.
	dispatchMask []bool
}

// SetSharding partitions the registered components into shards and starts
// one persistent worker goroutine per shard. shardOf[i] assigns component
// (Handle) i; the caller chooses the partition — the network co-locates
// each node's router, NIs, and incoming links so every commit-phase write
// except Wake stays inside one shard.
//
// Must be called after all components are registered and before the first
// Step; the kernel rejects further Add/AddLate calls. Call Close when the
// simulation is done to release the workers.
func (k *Kernel) SetSharding(shards int, shardOf []int) {
	if k.sh != nil {
		panic("sim: SetSharding called twice")
	}
	if k.stepping {
		panic("sim: SetSharding called during Step")
	}
	if shards < 1 {
		panic("sim: SetSharding requires at least one shard")
	}
	if len(k.lanes) != 0 {
		panic("sim: SetSharding on a kernel with bound lanes (lanes are serial-only)")
	}
	if len(shardOf) != len(k.components) {
		panic(fmt.Sprintf("sim: SetSharding got %d assignments for %d components", len(shardOf), len(k.components)))
	}
	sh := &sharding{
		shards:  shards,
		shardOf: make([]int32, len(shardOf)),
		all:     make([][]int32, shards),
		early:   make([][]int32, shards),
		late:    make([][]int32, shards),
		idle:    make([]pad, shards),
		total:   make([]int32, shards),
		work:    make([]chan uint8, shards),

		dispatchMask: make([]bool, shards),
	}
	lateMark := k.lateMark
	if lateMark < 0 {
		lateMark = len(k.components)
	}
	for i, s := range shardOf {
		if s < 0 || s >= shards {
			panic(fmt.Sprintf("sim: component %d assigned to shard %d of %d", i, s, shards))
		}
		sh.shardOf[i] = int32(s)
		sh.all[s] = append(sh.all[s], int32(i))
		if i < lateMark {
			sh.early[s] = append(sh.early[s], int32(i))
		} else {
			sh.late[s] = append(sh.late[s], int32(i))
		}
		sh.total[s]++
		if k.active[i] == 0 {
			sh.idle[s].v++
		}
	}
	k.idle = 0 // per-shard counters take over
	if k.wheel != nil {
		// Per-shard wheels take over from the serial wheel, which is empty
		// here: entries are only filed by commit bookkeeping and SetSharding
		// precedes the first Step. The serial summary bitmap retires with it
		// (the sharded step never takes the sparse walk).
		sh.wheels = make([]*timingWheel, shards)
		for s := range sh.wheels {
			sh.wheels[s] = newTimingWheel(k.cycle)
		}
		k.wheel = nil
		k.actWords = nil
	}
	for s := 0; s < shards; s++ {
		ch := make(chan uint8, 1)
		sh.work[s] = ch
		go func(s int, ch chan uint8) {
			for ph := range ch {
				k.runShard(s, int(ph))
				sh.wg.Done()
			}
		}(s, ch)
	}
	k.sh = sh
}

// Sharded reports whether the kernel runs on the sharded executor.
func (k *Kernel) Sharded() bool { return k.sh != nil }

// Shards returns the worker-shard count (0 on the serial path).
func (k *Kernel) Shards() int {
	if k.sh == nil {
		return 0
	}
	return k.sh.shards
}

// SetEvalHook installs a callback invoked immediately before every
// component evaluation on the sharded path, on the worker goroutine that
// performs it, with the shard, phase (PhaseCompute/PhaseEarly/PhaseLate),
// and component index. Nil removes it. The serial path never calls it.
func (k *Kernel) SetEvalHook(fn func(shard, phase, comp int)) {
	if k.sh != nil {
		k.sh.evalHook = fn
	}
}

// Close shuts down the sharded worker pool. Stepping a closed kernel
// panics; Close on a serial kernel is a no-op. Safe to call more than once.
func (k *Kernel) Close() {
	sh := k.sh
	if sh == nil || sh.closed {
		return
	}
	sh.closed = true
	for _, ch := range sh.work {
		close(ch)
	}
}

func (sh *sharding) totalIdle() int {
	n := 0
	for s := range sh.idle {
		n += int(atomic.LoadInt32(&sh.idle[s].v))
	}
	return n
}

func (sh *sharding) resetIdle() {
	for s := range sh.idle {
		atomic.StoreInt32(&sh.idle[s].v, 0)
	}
}

// wake is the sharded Wake: safe from any worker goroutine. The unlocked
// load keeps the common already-active case to one read; the CAS makes the
// 0→1 transition exclusive so the shard's idle counter is decremented
// exactly once per sleep→wake edge.
func (sh *sharding) wake(k *Kernel, h Handle) {
	if atomic.LoadUint32(&k.active[h]) != 0 {
		return
	}
	if atomic.CompareAndSwapUint32(&k.active[h], 0, 1) {
		atomic.AddInt32(&sh.idle[sh.shardOf[h]].v, -1)
	}
}

// stepSharded runs one cycle across the worker pool. Step has already set
// the reentrancy guard; epilogue/observer/cycle advance happen back in
// Step after the last barrier.
func (k *Kernel) stepSharded() {
	sh := k.sh
	if sh.closed {
		panic("sim: Step on a closed kernel")
	}
	// Pop due timed wakes before sizing the cycle: a fired wake re-activates
	// its component through the atomic path, so the idleness check below sees
	// it. Runs on the stepping goroutine with every worker quiescent.
	for _, w := range sh.wheels {
		if w.len() != 0 {
			w.popDue(k.cycle, k)
		}
	}
	if !k.alwaysActive && sh.totalIdle() == len(k.components) {
		// Fully quiescent: pure clock advance, same as the serial path.
		return
	}
	sh.dispatch(k, PhaseCompute)
	sh.dispatch(k, PhaseEarly)
	sh.dispatch(k, PhaseLate)
}

// dispatch fans one phase out to every shard that has work, running the
// first working shard inline on the stepping goroutine, and waits for the
// barrier. Idleness is re-read per phase: commit-phase wakes can hand work
// to a shard that was fully idle when the cycle started.
func (sh *sharding) dispatch(k *Kernel, phase int) {
	inline := -1
	n := 0
	mask := sh.dispatchMask
	for s := 0; s < sh.shards; s++ {
		w := sh.shardWorks(k, s, phase)
		mask[s] = w
		if !w {
			continue
		}
		if inline < 0 {
			inline = s
			continue
		}
		n++
	}
	if inline < 0 {
		return
	}
	if n > 0 {
		sh.wg.Add(n)
		for s := inline + 1; s < sh.shards; s++ {
			if mask[s] {
				sh.work[s] <- uint8(phase)
			}
		}
	}
	k.runShard(inline, phase)
	if n > 0 {
		sh.wg.Wait()
	}
}

// shardWorks reports whether shard s has anything to do in the phase. A
// false positive (dispatched shard finds all its components asleep) only
// costs a scan; a false negative would drop work, so the test is
// conservative: any active component in the shard dispatches it for every
// phase that has a non-empty walk list.
func (sh *sharding) shardWorks(k *Kernel, s, phase int) bool {
	var list []int32
	switch phase {
	case PhaseCompute:
		list = sh.all[s]
	case PhaseEarly:
		list = sh.early[s]
	default:
		list = sh.late[s]
	}
	if len(list) == 0 {
		return false
	}
	return k.alwaysActive || atomic.LoadInt32(&sh.idle[s].v) < sh.total[s]
}

// runShard executes one phase of one shard. Runs on a worker goroutine (or
// inline on the stepping goroutine for the first working shard).
func (k *Kernel) runShard(s, phase int) {
	sh := k.sh
	hook := sh.evalHook
	cycle := k.cycle
	if phase == PhaseCompute {
		if k.alwaysActive {
			for _, i := range sh.all[s] {
				if hook != nil {
					hook(s, PhaseCompute, int(i))
				}
				k.components[i].Compute(cycle)
			}
			return
		}
		for _, i := range sh.all[s] {
			if atomic.LoadUint32(&k.active[i]) != 0 {
				if hook != nil {
					hook(s, PhaseCompute, int(i))
				}
				k.components[i].Compute(cycle)
			}
		}
		return
	}
	list := sh.early[s]
	if phase == PhaseLate {
		list = sh.late[s]
	}
	if k.alwaysActive {
		for _, i := range list {
			if hook != nil {
				hook(s, phase, int(i))
			}
			k.components[i].Commit(cycle)
		}
		return
	}
	quiets := int32(0)
	for _, i := range list {
		if atomic.LoadUint32(&k.active[i]) == 0 {
			continue
		}
		if hook != nil {
			hook(s, phase, int(i))
		}
		k.components[i].Commit(cycle)
		if q := k.quiesc[i]; q != nil && q.Quiet() {
			atomic.StoreUint32(&k.active[i], 0)
			quiets++
			continue
		}
		// Horizon parking, same bookkeeping as the serial commitOne. The
		// timed wake lands in this shard's own wheel — worker-local, popped
		// by the stepping goroutine between cycles.
		if hz := k.hzn[i]; hz != nil {
			if at := hz.Horizon(cycle); at > cycle+1 {
				atomic.StoreUint32(&k.active[i], 0)
				quiets++
				if at != Never {
					sh.wheels[s].schedule(at, Handle(i))
				}
			}
		}
	}
	if quiets != 0 {
		atomic.AddInt32(&sh.idle[s].v, quiets)
	}
}
