package sim

import (
	"fmt"
	"math/bits"
)

// oracleViolation is the panic payload of a horizon-contract breach caught
// by the SetOracle checker; it implements error so tests can assert on it.
type oracleViolation struct {
	comp  int
	cycle int64
}

func (v oracleViolation) Error() string {
	return fmt.Sprintf("sim: component %d mutated state while parked at cycle %d (horizon/quiescence contract violation)", v.comp, v.cycle)
}

// Clocked is implemented by every component that participates in the
// synchronous two-phase simulation. Each cycle the kernel first calls
// Compute on every component (all components observe the state as it was at
// the start of the cycle and stage their actions), then Commit on every
// component (staged actions are applied and become visible at the next
// cycle). This models edge-triggered hardware without ordering artifacts:
// no component ever observes another component's same-cycle updates.
//
// The Compute contract — read only committed state, stage into storage you
// own (a component may also stage onto a channel it is the sole driver of,
// e.g. Link.Send) — is what makes the compute phase embarrassingly
// parallel: see SetSharding.
type Clocked interface {
	// Compute stages the component's actions for the given cycle based on
	// the committed state from the previous cycle.
	Compute(cycle int64)
	// Commit applies the actions staged by Compute.
	Commit(cycle int64)
}

// Quiescable is implemented by components that can tell the kernel they are
// idle. Quiet must be a pure function of committed state, evaluated right
// after the component's Commit: it reports that stepping the component
// would change nothing observable until some neighbor writes to it again.
//
// A component reporting Quiet is dropped from the kernel's active set —
// its Compute and Commit stop being called — so the contract has a second
// half: whatever path a neighbor uses to hand the component new work must
// call the kernel's Wake for it (the owner that wires components together
// installs those hooks; see internal/network). A component that goes quiet
// with latent staged state, or that is written without a wake, silently
// diverges from the always-evaluate reference — keep Quiet conservative.
type Quiescable interface {
	Clocked
	// Quiet reports that the component holds no pending work.
	Quiet() bool
}

// Handle identifies a registered component for Wake calls.
type Handle int

// Kernel drives a set of Clocked components through lockstep cycles,
// skipping components that have declared themselves quiescent. It runs
// serially by default; SetSharding partitions the components across a
// persistent worker pool for intra-simulation parallelism with bit-exact
// results.
type Kernel struct {
	components []Clocked
	// quiesc[i] is components[i]'s Quiescable interface, nil if it does not
	// opt in (such components are evaluated every cycle forever).
	quiesc []Quiescable
	// hzn[i] is components[i]'s Horizoned interface, nil if it does not opt
	// in. A non-quiet component with a horizon beyond the next cycle is
	// parked like a quiet one and re-woken by the timing wheel (finite
	// horizon) or an external Wake (Never).
	hzn []Horizoned
	// active[i] marks components evaluated this cycle (1 = active). Wake may
	// flip an entry mid-step: a wake during the compute phase takes effect
	// for the same cycle's commit phase if the target's registration index
	// has not been passed yet (late components are registered last for
	// exactly this reason), otherwise next cycle. Plain loads/stores on the
	// serial path; atomic on the sharded path, where any worker may wake any
	// component.
	active []uint32
	// actWords is a per-64-component summary bitmap over active, maintained
	// on the serial path only (nil once sharded). The invariant is one-sided:
	// every component with a raised flag has its bit set, but a bit may be
	// stale (component went quiet without clearing it) — the sparse walk
	// prunes stale bits lazily as it visits them. nil also while adopted by
	// a LockstepGroup in the bit-sliced representation (the group's words
	// are authoritative there; ensureFlags re-establishes the invariant).
	actWords []uint64
	// wheel holds pending timed wake-ups for components that parked with a
	// finite horizon. Allocated lazily when the first Horizoned component
	// registers; nil on kernels with none (then parking is Wake-only). On
	// the sharded path per-shard wheels take over (see sharding.wheels).
	wheel *timingWheel
	// oracle, when set, switches the serial step into contract-checking
	// mode: every component is evaluated eagerly and any notionally-parked
	// component whose state hash changes across its evaluation under-reported
	// its horizon (or went quiet with latent work). See SetOracle.
	oracle  func(Handle) uint64
	oracleH []uint64
	// idle counts inactive components on the serial path; when it equals
	// len(components) a step is pure clock advance. The sharded path tracks
	// idleness per shard instead (see sharding.idle).
	idle int
	// alwaysActive disables quiescence skipping (reference mode used by
	// equivalence tests and benchmarks).
	alwaysActive bool
	cycle        int64

	// lateMark is the registration index of the first late component (see
	// AddLate); len(components) while none are registered. Early components
	// commit before every late component, matching the serial registration
	// order, so the sharded commit phases preserve cross-component write
	// semantics (links commit after the routers that stage credit returns).
	lateMark int

	// stepping guards against reentrant stepping and mid-step registration:
	// observer/epilogue hooks and component methods must not call Step, Add,
	// or AddLate. The guard is always on — it costs two byte writes per
	// step — so contract violations fail loudly in every build.
	stepping bool

	// observers are called in order at the end of every Step with the
	// completed cycle and the number of components evaluated next step
	// (observability hooks; see internal/probe and internal/telemetry).
	observers []func(cycle int64, active int)
	// epilogue, when set, runs at the end of every Step before the observer,
	// on the stepping goroutine with all workers quiescent. The sharded
	// network uses it to drain per-shard mailboxes (deliveries, probe event
	// buffers) deterministically.
	epilogue func(cycle int64)

	// sh is the sharded execution state, nil on the serial path.
	sh *sharding

	// group/slot bind an adopted kernel to its LockstepGroup (see batch.go):
	// the group owns this kernel's activity flags (transposed into shared
	// bit words) and its stepping; Wake is redirected, Step panics. Nil when
	// not adopted — the universal case outside batched execution.
	group *LockstepGroup
	slot  int

	// lanes are the typed dense-iteration segments of the serial step,
	// sorted by start handle (see BindLane). Empty means all-generic walks.
	lanes []laneSeg
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{lateMark: -1}
}

// Add registers a component and returns its wake handle. Components are
// evaluated in registration order; compute order is not observable (two-
// phase protocol), but commit order is load-bearing for cross-component
// writes performed during commits (e.g. links must commit after the
// routers that stage credit returns on them), so registration order is
// preserved even when quiescent components are skipped.
//
// Add panics once a late component has been registered: the sharded
// executor relies on every early component preceding every late one.
func (k *Kernel) Add(c Clocked) Handle {
	if k.stepping {
		panic("sim: Add called during Step (hooks must not register components)")
	}
	if k.lateMark >= 0 {
		panic("sim: Add after AddLate (late components must be registered last)")
	}
	return k.add(c)
}

// AddLate registers a component that commits in the late phase: after every
// early component, in registration order — the slot the network wires links
// into, so credits and flits staged during early commits are applied the
// same cycle. On the serial path AddLate is identical to Add (late
// components are last in registration order anyway); the sharded executor
// uses the early/late split as its commit barrier.
func (k *Kernel) AddLate(c Clocked) Handle {
	if k.stepping {
		panic("sim: AddLate called during Step (hooks must not register components)")
	}
	if k.lateMark < 0 {
		k.lateMark = len(k.components)
	}
	return k.add(c)
}

func (k *Kernel) add(c Clocked) Handle {
	if k.sh != nil {
		panic("sim: Add after SetSharding")
	}
	if k.group != nil {
		panic("sim: Add on a kernel adopted by a LockstepGroup")
	}
	h := Handle(len(k.components))
	k.components = append(k.components, c)
	q, _ := c.(Quiescable)
	k.quiesc = append(k.quiesc, q)
	hz, _ := c.(Horizoned)
	k.hzn = append(k.hzn, hz)
	if hz != nil && k.wheel == nil {
		k.wheel = newTimingWheel(k.cycle)
	}
	k.active = append(k.active, 1)
	if int(h)>>6 >= len(k.actWords) {
		k.actWords = append(k.actWords, 0)
	}
	k.actWords[h>>6] |= 1 << (h & 63)
	return h
}

// SetAlwaysActive switches the kernel between the quiescence-skipping fast
// path (default) and the always-evaluate reference mode. Enabling reference
// mode re-activates every component.
func (k *Kernel) SetAlwaysActive(on bool) {
	k.alwaysActive = on
	if on {
		for i := range k.active {
			k.active[i] = 1
		}
		k.setAllBits()
		k.idle = 0
		if k.sh != nil {
			k.sh.resetIdle()
		}
		k.resetWheels()
	}
}

// setAllBits raises every summary-bitmap bit, masking the tail word so no
// bit beyond the registered component count is ever set (the sparse walk
// indexes components directly from bit positions).
func (k *Kernel) setAllBits() {
	for i := range k.actWords {
		k.actWords[i] = ^uint64(0)
	}
	if tail := len(k.components) & 63; tail != 0 && len(k.actWords) > 0 {
		k.actWords[len(k.actWords)-1] = uint64(1)<<tail - 1
	}
}

// resetWheels drops every pending timed wake. Only legal when all components
// are active (a pending wake for an awake component is redundant; dropping a
// parked component's wake would strand it).
func (k *Kernel) resetWheels() {
	if k.wheel != nil {
		k.wheel.reset(k.cycle)
	}
	if k.sh != nil {
		for _, w := range k.sh.wheels {
			w.reset(k.cycle)
		}
	}
}

// Wake re-activates a component so it is evaluated again; waking an
// already-active component is a no-op.
//
// Concurrency contract: on the serial path Wake must be called from the
// stepping goroutine only (component Compute/Commit methods, or between
// steps). On the sharded path Wake is atomic and may be called from any
// worker — that is what lets NI injection and cross-shard neighbors wake
// components they do not own — with one restriction the network wiring
// upholds: during the early commit phase wakes may target only late
// components, and during the late phase only early ones, so a wake never
// races the owner shard's own quiescence bookkeeping for the same
// component.
func (k *Kernel) Wake(h Handle) {
	if g := k.group; g != nil {
		g.wake(k.slot, h)
		return
	}
	if sh := k.sh; sh != nil {
		sh.wake(k, h)
		return
	}
	if k.active[h] == 0 {
		k.active[h] = 1
		k.actWords[h>>6] |= 1 << (h & 63)
		k.idle--
	}
}

// Stepping reports whether the kernel is inside Step. Observer hooks fire
// both at the end of every stepped cycle (stepping true) and once per cycle
// skipped by FastForward/SkipIdle (stepping false); a hook that needs to
// Wake components — legal only when a real step's quiescence bookkeeping
// brackets the wake — checks this and arranges for the cycle to be stepped
// instead (see Network.fastForward).
func (k *Kernel) Stepping() bool { return k.stepping }

// Waker returns a closure waking h, for wiring into components that cannot
// know about the kernel.
func (k *Kernel) Waker(h Handle) func() {
	return func() { k.Wake(h) }
}

// WakeInt is Wake with an untyped handle — the noc.Waker form. It lets
// hot-path wiring (links) hold the kernel through one shared interface value
// instead of a pair of per-component closures.
func (k *Kernel) WakeInt(h int) { k.Wake(Handle(h)) }

// SetObserver installs a hook called at the end of every Step with the
// completed cycle number and the active-component count, replacing any
// hooks installed so far. A nil fn removes them all. Hooks run on the
// stepping goroutine with all shard workers quiescent; they must not call
// Step, Add, or AddLate — the kernel's reentrancy guard panics if they do.
func (k *Kernel) SetObserver(fn func(cycle int64, active int)) {
	k.observers = k.observers[:0]
	k.AddObserver(fn)
}

// AddObserver appends an observer hook, keeping those already installed;
// hooks fire in installation order. A nil fn is ignored. The same
// contract as SetObserver applies.
func (k *Kernel) AddObserver(fn func(cycle int64, active int)) {
	if fn != nil {
		k.observers = append(k.observers, fn)
	}
}

// SetEpilogue installs a hook that runs at the end of every Step, before
// the observer, on the stepping goroutine with all shard workers quiescent.
// The sharded network drains its per-shard mailboxes here (deliveries in
// interface order, probe event buffers merged into registration order) so
// every cross-shard effect lands deterministically. The same reentrancy
// contract as SetObserver applies.
func (k *Kernel) SetEpilogue(fn func(cycle int64)) {
	k.epilogue = fn
}

// ActiveComponents returns how many components will be evaluated next step.
func (k *Kernel) ActiveComponents() int {
	if k.sh != nil {
		return len(k.components) - k.sh.totalIdle()
	}
	return len(k.components) - k.idle
}

// FullyIdle reports that every component is quiescent and no timed wake is
// pending: a Step would be pure clock advance for any number of cycles.
// Always false in always-active reference mode.
func (k *Kernel) FullyIdle() bool {
	return k.ActiveComponents() == 0 && len(k.components) > 0 && k.pendingWakes() == 0
}

// Idle reports that no component is scheduled for evaluation next cycle.
// Unlike FullyIdle it ignores the timing wheel: an Idle kernel may still
// hold future wakes, so the clock can only be skipped up to NextWake (see
// SkipIdle).
func (k *Kernel) Idle() bool { return k.ActiveComponents() == 0 && len(k.components) > 0 }

// pendingWakes counts scheduled timed wake-ups across all wheels.
func (k *Kernel) pendingWakes() int {
	if k.sh != nil {
		n := 0
		for _, w := range k.sh.wheels {
			n += w.len()
		}
		return n
	}
	if k.wheel != nil {
		return k.wheel.len()
	}
	return 0
}

// NextWake returns the earliest scheduled timed wake-up, or Never when the
// wheels are empty.
func (k *Kernel) NextWake() int64 {
	if k.sh != nil {
		next := Never
		for _, w := range k.sh.wheels {
			if d := w.nextDue(); d < next {
				next = d
			}
		}
		return next
	}
	if k.wheel != nil {
		return k.wheel.nextDue()
	}
	return Never
}

// Cycle returns the number of completed cycles.
func (k *Kernel) Cycle() int64 {
	return k.cycle
}

// SetCycle forces the kernel clock, the snapshot-restore entry point: a
// restored network resumes at the cycle it was saved at. Must not be called
// mid-step.
func (k *Kernel) SetCycle(c int64) {
	if k.stepping {
		panic("sim: SetCycle during Step")
	}
	k.cycle = c
	// Rebase the wheels: pending entries were filed against the old clock.
	// SetCycle's only caller (snapshot restore) pairs it with WakeAll, so
	// every component is awake and dropping its timed wake is harmless — it
	// re-reports its horizon at its next evaluation.
	k.resetWheels()
}

// WakeAll re-activates every component. Snapshot restore uses it instead of
// reconstructing the saved activity set: over-waking is unobservable (the
// quiescence fast path is proven bit-exact against always-active evaluation,
// so evaluating a quiet component changes nothing), and the true set
// re-converges within a cycle. Works in every execution mode — serial,
// sharded, and adopted by a LockstepGroup.
func (k *Kernel) WakeAll() {
	if k.stepping {
		panic("sim: WakeAll during Step")
	}
	if g := k.group; g != nil {
		g.wakeAll(k)
		return
	}
	for i := range k.active {
		k.active[i] = 1
	}
	k.setAllBits()
	k.idle = 0
	if k.sh != nil {
		k.sh.resetIdle()
	}
	k.resetWheels()
}

// Step advances the simulation by one cycle.
func (k *Kernel) Step() {
	if k.stepping {
		panic("sim: Step called reentrantly (observer/epilogue hooks must not step the kernel)")
	}
	if k.group != nil {
		panic("sim: Step on a kernel adopted by a LockstepGroup (step the group, or Release it first)")
	}
	k.stepping = true
	if k.sh != nil {
		k.stepSharded()
	} else {
		k.stepSerial()
	}
	if k.epilogue != nil {
		k.epilogue(k.cycle)
	}
	if len(k.observers) > 0 {
		active := k.ActiveComponents()
		for _, o := range k.observers {
			o(k.cycle, active)
		}
	}
	k.cycle++
	k.stepping = false
}

// sparseRatio picks the serial walk: when fewer than one component in
// sparseRatio is active, the summary-bitmap walk (word loads plus bit
// iteration over just the active set) beats the flag-scan walk, which
// touches every component's flag twice per cycle however few are awake. A
// performance knob only — both walks are bit-identical (the sparse walk
// visits exactly the raised-flag set in registration order, with the same
// flag-at-visit-time wake semantics). In the dense regime the check is a
// single compare, so the event-horizon machinery costs ~0 there.
const sparseRatio = 16

// stepSerial is the single-goroutine step: the reference semantics the
// sharded executor reproduces bit for bit. Each phase walks lane segments
// and generic ranges interleaved in registration order (see lane.go); with
// no lanes bound the walks reduce to the plain component loops.
func (k *Kernel) stepSerial() {
	if k.wheel != nil && k.wheel.len() != 0 {
		k.wheel.popDue(k.cycle, k)
	}
	if k.oracle != nil {
		k.stepOracle()
		return
	}
	switch n := len(k.components); {
	case k.idle == 0:
		// Everything active: the tight no-flag-check loops, plus the
		// post-commit quiescence check unless in reference mode.
		k.walkCompute(true)
		if k.alwaysActive {
			k.walkCommitAll()
		} else {
			k.walkCommitQuiesce(true)
		}
	case k.idle == n:
		// Fully quiescent network: the cycle is pure clock advance. Wakes
		// only arrive from outside the step (injection) or the wheel pop
		// above (which would have lowered idle), so nothing can need
		// evaluation mid-step.
	case k.actWords != nil && (n-k.idle)*sparseRatio <= n:
		k.walkSparse()
	default:
		k.walkCompute(false)
		k.walkCommitQuiesce(false)
	}
}

// walkSparse is the event-horizon regime's walk: both phases iterate the
// summary bitmap instead of scanning every flag. Bits are a superset of the
// raised flags (see actWords); a bit whose flag turns out clear is pruned in
// passing. Wakes raised mid-phase land in the words being walked: a wake for
// a not-yet-visited position is picked up this phase (bits above the visit
// cursor), one for an already-passed position waits for the next cycle —
// exactly the flag-at-visit-time semantics of the dense walks. Lane segments
// are bypassed: at sparse activity the devirtualized batch loops have no
// edge over a handful of generic dispatches.
func (k *Kernel) walkSparse() {
	cycle := k.cycle
	for w := range k.actWords {
		visited := uint64(0)
		for {
			word := k.actWords[w] &^ visited
			if word == 0 {
				break
			}
			b := bits.TrailingZeros64(word)
			bit := uint64(1) << b
			visited |= bit
			i := w<<6 + b
			if k.active[i] != 0 {
				k.components[i].Compute(cycle)
			} else {
				k.actWords[w] &^= bit
			}
		}
	}
	for w := range k.actWords {
		visited := uint64(0)
		for {
			word := k.actWords[w] &^ visited
			if word == 0 {
				break
			}
			b := bits.TrailingZeros64(word)
			bit := uint64(1) << b
			visited |= bit
			i := w<<6 + b
			if k.active[i] == 0 {
				k.actWords[w] &^= bit
				continue
			}
			k.commitOne(i, cycle, true)
			if k.active[i] == 0 {
				k.actWords[w] &^= bit
			}
		}
	}
}

// Run advances the simulation by n cycles.
func (k *Kernel) Run(n int64) {
	for i := int64(0); i < n; i++ {
		k.Step()
	}
}

// FastForward advances the clock up to n cycles without evaluating any
// component. It is only legal — and only has an effect — while the kernel
// is fully quiescent: a quiescent step is pure clock advance, so skipping
// the component walk is unobservable. Per-cycle hooks (epilogue, observer)
// still fire for every skipped cycle, keeping probed output byte-identical
// to stepping; with no hooks installed the advance is O(1). Returns the
// cycles actually skipped (0 if the kernel is busy or in always-active
// reference mode).
func (k *Kernel) FastForward(n int64) int64 {
	if n <= 0 || !k.FullyIdle() {
		return 0
	}
	if k.epilogue == nil && len(k.observers) == 0 {
		k.cycle += n
		return n
	}
	for i := int64(0); i < n; i++ {
		if k.epilogue != nil {
			k.epilogue(k.cycle)
		}
		for _, o := range k.observers {
			o(k.cycle, 0)
		}
		k.cycle++
	}
	return n
}

// SkipIdle advances the clock while no component is active, up to limit.
// Unlike FastForward it honors the timing wheel: the jump stops at the
// earliest scheduled wake so the next Step pops and evaluates it. Per-cycle
// hooks fire for every skipped cycle exactly as FastForward's do. Returns
// the cycles skipped (0 if any component is active, the kernel is in
// always-active mode, or a wake is due immediately).
func (k *Kernel) SkipIdle(limit int64) int64 {
	if k.stepping {
		panic("sim: SkipIdle during Step")
	}
	if k.alwaysActive || !k.Idle() {
		return 0
	}
	target := limit
	if nw := k.NextWake(); nw < target {
		target = nw
	}
	n := target - k.cycle
	if n <= 0 {
		return 0
	}
	if k.epilogue == nil && len(k.observers) == 0 {
		k.cycle = target
		return n
	}
	for k.cycle < target {
		if k.epilogue != nil {
			k.epilogue(k.cycle)
		}
		for _, o := range k.observers {
			o(k.cycle, 0)
		}
		k.cycle++
	}
	return n
}

// RunUntil steps the simulation until done returns true or the cycle limit
// is reached, and reports whether done was satisfied.
//
// done must be a read-only function of committed component state (it must
// not mutate the simulation, and must not depend on the cycle counter):
// once the kernel is idle nothing a step evaluates before the next timed
// wake can change done's verdict, so RunUntil jumps the clock to the next
// wake (or the limit) in bulk instead of stepping idle cycles one by one.
func (k *Kernel) RunUntil(done func() bool, limit int64) bool {
	for k.cycle < limit {
		if done() {
			return true
		}
		if k.Idle() && !k.alwaysActive {
			if k.SkipIdle(limit) == 0 && k.Idle() {
				// A wake is due this very cycle: step to evaluate it.
				k.Step()
			}
			continue
		}
		k.Step()
	}
	return done()
}

// SetOracle arms the serial kernel's horizon-contract checker. hash must
// return a digest of component h's externally visible state (any collision-
// resistant fold of its committed fields). While armed, every step evaluates
// every component eagerly — the always-evaluate reference semantics — but
// keeps the notional active set's bookkeeping. A component the fast path
// would have skipped (parked quiet or beyond its horizon) is hashed before
// its Compute and after its Commit: the contract says evaluating it must be
// a state no-op, so a differing hash means it under-reported its horizon or
// went quiet with latent work — the silent-divergence bug class — and the
// kernel panics naming the component. Debug mode: serial kernels only, and
// the eager evaluation costs the full per-cycle walk. Pass nil to disarm.
func (k *Kernel) SetOracle(hash func(Handle) uint64) {
	if k.stepping {
		panic("sim: SetOracle during Step")
	}
	if k.sh != nil {
		panic("sim: SetOracle on a sharded kernel (the oracle is serial-only)")
	}
	if k.group != nil {
		panic("sim: SetOracle on a kernel adopted by a LockstepGroup")
	}
	k.oracle = hash
	if hash != nil && k.oracleH == nil {
		k.oracleH = make([]uint64, len(k.components))
	}
}

// stepOracle is the contract-checking step (see SetOracle): eager evaluation
// of every component with hash checks around the notionally-parked ones.
// The wheel pop already ran in stepSerial.
func (k *Kernel) stepOracle() {
	cycle := k.cycle
	// Hash every notionally-parked component before the cycle touches it.
	// The flags only rise mid-step (bookkeeping that clears them happens at
	// each component's own commit visit, below), so a component whose flag
	// is still clear at its commit visit was hashed here.
	for i := range k.components {
		if k.active[i] == 0 {
			k.oracleH[i] = k.oracle(Handle(i))
		}
	}
	for _, c := range k.components {
		c.Compute(cycle)
	}
	for i, c := range k.components {
		if k.active[i] != 0 {
			k.commitOne(i, cycle, true)
			continue
		}
		c.Commit(cycle)
		if got := k.oracle(Handle(i)); got != k.oracleH[i] {
			panic(oracleViolation{comp: i, cycle: cycle})
		}
	}
}
