package sim

// Clocked is implemented by every component that participates in the
// synchronous two-phase simulation. Each cycle the kernel first calls
// Compute on every component (all components observe the state as it was at
// the start of the cycle and stage their actions), then Commit on every
// component (staged actions are applied and become visible at the next
// cycle). This models edge-triggered hardware without ordering artifacts:
// no component ever observes another component's same-cycle updates.
type Clocked interface {
	// Compute stages the component's actions for the given cycle based on
	// the committed state from the previous cycle.
	Compute(cycle int64)
	// Commit applies the actions staged by Compute.
	Commit(cycle int64)
}

// Kernel drives a set of Clocked components through lockstep cycles.
type Kernel struct {
	components []Clocked
	cycle      int64
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Add registers a component. Components are evaluated in registration order,
// but because of the two-phase protocol the order is not observable.
func (k *Kernel) Add(c Clocked) {
	k.components = append(k.components, c)
}

// Cycle returns the number of completed cycles.
func (k *Kernel) Cycle() int64 {
	return k.cycle
}

// Step advances the simulation by one cycle.
func (k *Kernel) Step() {
	for _, c := range k.components {
		c.Compute(k.cycle)
	}
	for _, c := range k.components {
		c.Commit(k.cycle)
	}
	k.cycle++
}

// Run advances the simulation by n cycles.
func (k *Kernel) Run(n int64) {
	for i := int64(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the simulation until done returns true or the cycle limit
// is reached, and reports whether done was satisfied.
func (k *Kernel) RunUntil(done func() bool, limit int64) bool {
	for k.cycle < limit {
		if done() {
			return true
		}
		k.Step()
	}
	return done()
}
