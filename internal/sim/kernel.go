package sim

// Clocked is implemented by every component that participates in the
// synchronous two-phase simulation. Each cycle the kernel first calls
// Compute on every component (all components observe the state as it was at
// the start of the cycle and stage their actions), then Commit on every
// component (staged actions are applied and become visible at the next
// cycle). This models edge-triggered hardware without ordering artifacts:
// no component ever observes another component's same-cycle updates.
type Clocked interface {
	// Compute stages the component's actions for the given cycle based on
	// the committed state from the previous cycle.
	Compute(cycle int64)
	// Commit applies the actions staged by Compute.
	Commit(cycle int64)
}

// Quiescable is implemented by components that can tell the kernel they are
// idle. Quiet must be a pure function of committed state, evaluated right
// after the component's Commit: it reports that stepping the component
// would change nothing observable until some neighbor writes to it again.
//
// A component reporting Quiet is dropped from the kernel's active set —
// its Compute and Commit stop being called — so the contract has a second
// half: whatever path a neighbor uses to hand the component new work must
// call the kernel's Wake for it (the owner that wires components together
// installs those hooks; see internal/network). A component that goes quiet
// with latent staged state, or that is written without a wake, silently
// diverges from the always-evaluate reference — keep Quiet conservative.
type Quiescable interface {
	Clocked
	// Quiet reports that the component holds no pending work.
	Quiet() bool
}

// Handle identifies a registered component for Wake calls.
type Handle int

// Kernel drives a set of Clocked components through lockstep cycles,
// skipping components that have declared themselves quiescent.
type Kernel struct {
	components []Clocked
	// quiesc[i] is components[i]'s Quiescable interface, nil if it does not
	// opt in (such components are evaluated every cycle forever).
	quiesc []Quiescable
	// active[i] marks components evaluated this cycle. Wake may flip an
	// entry mid-step: a wake during the compute phase takes effect for the
	// same cycle's commit phase if the target's registration index has not
	// been passed yet (links are registered last for exactly this reason),
	// otherwise next cycle.
	active []bool
	// idle counts inactive components; when it equals len(components) a
	// step is pure clock advance.
	idle int
	// alwaysActive disables quiescence skipping (reference mode used by
	// equivalence tests and benchmarks).
	alwaysActive bool
	cycle        int64

	// observer, when set, is called at the end of every Step with the
	// completed cycle and the number of components evaluated next step
	// (observability hook; see internal/probe).
	observer func(cycle int64, active int)
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Add registers a component and returns its wake handle. Components are
// evaluated in registration order; compute order is not observable (two-
// phase protocol), but commit order is load-bearing for cross-component
// writes performed during commits (e.g. links must commit after the
// routers that stage credit returns on them), so registration order is
// preserved even when quiescent components are skipped.
func (k *Kernel) Add(c Clocked) Handle {
	h := Handle(len(k.components))
	k.components = append(k.components, c)
	q, _ := c.(Quiescable)
	k.quiesc = append(k.quiesc, q)
	k.active = append(k.active, true)
	return h
}

// SetAlwaysActive switches the kernel between the quiescence-skipping fast
// path (default) and the always-evaluate reference mode. Enabling reference
// mode re-activates every component.
func (k *Kernel) SetAlwaysActive(on bool) {
	k.alwaysActive = on
	if on {
		for i := range k.active {
			k.active[i] = true
		}
		k.idle = 0
	}
}

// Wake re-activates a component so it is evaluated again. Safe to call at
// any time, including from another component's Compute or Commit; waking an
// already-active component is a no-op.
func (k *Kernel) Wake(h Handle) {
	if !k.active[h] {
		k.active[h] = true
		k.idle--
	}
}

// Waker returns a closure waking h, for wiring into components that cannot
// know about the kernel.
func (k *Kernel) Waker(h Handle) func() {
	return func() { k.Wake(h) }
}

// SetObserver installs a hook called at the end of every Step with the
// completed cycle number and the active-component count. A nil fn removes
// the hook. The hook must not call Step or Add.
func (k *Kernel) SetObserver(fn func(cycle int64, active int)) {
	k.observer = fn
}

// ActiveComponents returns how many components will be evaluated next step.
func (k *Kernel) ActiveComponents() int { return len(k.components) - k.idle }

// Cycle returns the number of completed cycles.
func (k *Kernel) Cycle() int64 {
	return k.cycle
}

// Step advances the simulation by one cycle.
func (k *Kernel) Step() {
	switch {
	case k.idle == 0:
		// Everything active: the original tight loops, plus the post-commit
		// quiescence check.
		for _, c := range k.components {
			c.Compute(k.cycle)
		}
		if k.alwaysActive {
			for _, c := range k.components {
				c.Commit(k.cycle)
			}
		} else {
			for i, c := range k.components {
				c.Commit(k.cycle)
				if q := k.quiesc[i]; q != nil && q.Quiet() {
					k.active[i] = false
					k.idle++
				}
			}
		}
	case k.idle == len(k.components):
		// Fully quiescent network: the cycle is pure clock advance. Wakes
		// only arrive from outside the step (injection), so nothing can
		// need evaluation mid-step.
	default:
		for i, c := range k.components {
			if k.active[i] {
				c.Compute(k.cycle)
			}
		}
		for i, c := range k.components {
			if !k.active[i] {
				continue
			}
			c.Commit(k.cycle)
			if q := k.quiesc[i]; q != nil && q.Quiet() {
				k.active[i] = false
				k.idle++
			}
		}
	}
	if k.observer != nil {
		k.observer(k.cycle, len(k.components)-k.idle)
	}
	k.cycle++
}

// Run advances the simulation by n cycles.
func (k *Kernel) Run(n int64) {
	for i := int64(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the simulation until done returns true or the cycle limit
// is reached, and reports whether done was satisfied.
func (k *Kernel) RunUntil(done func() bool, limit int64) bool {
	for k.cycle < limit {
		if done() {
			return true
		}
		k.Step()
	}
	return done()
}
