package sim

// Clocked is implemented by every component that participates in the
// synchronous two-phase simulation. Each cycle the kernel first calls
// Compute on every component (all components observe the state as it was at
// the start of the cycle and stage their actions), then Commit on every
// component (staged actions are applied and become visible at the next
// cycle). This models edge-triggered hardware without ordering artifacts:
// no component ever observes another component's same-cycle updates.
//
// The Compute contract — read only committed state, stage into storage you
// own (a component may also stage onto a channel it is the sole driver of,
// e.g. Link.Send) — is what makes the compute phase embarrassingly
// parallel: see SetSharding.
type Clocked interface {
	// Compute stages the component's actions for the given cycle based on
	// the committed state from the previous cycle.
	Compute(cycle int64)
	// Commit applies the actions staged by Compute.
	Commit(cycle int64)
}

// Quiescable is implemented by components that can tell the kernel they are
// idle. Quiet must be a pure function of committed state, evaluated right
// after the component's Commit: it reports that stepping the component
// would change nothing observable until some neighbor writes to it again.
//
// A component reporting Quiet is dropped from the kernel's active set —
// its Compute and Commit stop being called — so the contract has a second
// half: whatever path a neighbor uses to hand the component new work must
// call the kernel's Wake for it (the owner that wires components together
// installs those hooks; see internal/network). A component that goes quiet
// with latent staged state, or that is written without a wake, silently
// diverges from the always-evaluate reference — keep Quiet conservative.
type Quiescable interface {
	Clocked
	// Quiet reports that the component holds no pending work.
	Quiet() bool
}

// Handle identifies a registered component for Wake calls.
type Handle int

// Kernel drives a set of Clocked components through lockstep cycles,
// skipping components that have declared themselves quiescent. It runs
// serially by default; SetSharding partitions the components across a
// persistent worker pool for intra-simulation parallelism with bit-exact
// results.
type Kernel struct {
	components []Clocked
	// quiesc[i] is components[i]'s Quiescable interface, nil if it does not
	// opt in (such components are evaluated every cycle forever).
	quiesc []Quiescable
	// active[i] marks components evaluated this cycle (1 = active). Wake may
	// flip an entry mid-step: a wake during the compute phase takes effect
	// for the same cycle's commit phase if the target's registration index
	// has not been passed yet (late components are registered last for
	// exactly this reason), otherwise next cycle. Plain loads/stores on the
	// serial path; atomic on the sharded path, where any worker may wake any
	// component.
	active []uint32
	// idle counts inactive components on the serial path; when it equals
	// len(components) a step is pure clock advance. The sharded path tracks
	// idleness per shard instead (see sharding.idle).
	idle int
	// alwaysActive disables quiescence skipping (reference mode used by
	// equivalence tests and benchmarks).
	alwaysActive bool
	cycle        int64

	// lateMark is the registration index of the first late component (see
	// AddLate); len(components) while none are registered. Early components
	// commit before every late component, matching the serial registration
	// order, so the sharded commit phases preserve cross-component write
	// semantics (links commit after the routers that stage credit returns).
	lateMark int

	// stepping guards against reentrant stepping and mid-step registration:
	// observer/epilogue hooks and component methods must not call Step, Add,
	// or AddLate. The guard is always on — it costs two byte writes per
	// step — so contract violations fail loudly in every build.
	stepping bool

	// observers are called in order at the end of every Step with the
	// completed cycle and the number of components evaluated next step
	// (observability hooks; see internal/probe and internal/telemetry).
	observers []func(cycle int64, active int)
	// epilogue, when set, runs at the end of every Step before the observer,
	// on the stepping goroutine with all workers quiescent. The sharded
	// network uses it to drain per-shard mailboxes (deliveries, probe event
	// buffers) deterministically.
	epilogue func(cycle int64)

	// sh is the sharded execution state, nil on the serial path.
	sh *sharding

	// group/slot bind an adopted kernel to its LockstepGroup (see batch.go):
	// the group owns this kernel's activity flags (transposed into shared
	// bit words) and its stepping; Wake is redirected, Step panics. Nil when
	// not adopted — the universal case outside batched execution.
	group *LockstepGroup
	slot  int

	// lanes are the typed dense-iteration segments of the serial step,
	// sorted by start handle (see BindLane). Empty means all-generic walks.
	lanes []laneSeg
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{lateMark: -1}
}

// Add registers a component and returns its wake handle. Components are
// evaluated in registration order; compute order is not observable (two-
// phase protocol), but commit order is load-bearing for cross-component
// writes performed during commits (e.g. links must commit after the
// routers that stage credit returns on them), so registration order is
// preserved even when quiescent components are skipped.
//
// Add panics once a late component has been registered: the sharded
// executor relies on every early component preceding every late one.
func (k *Kernel) Add(c Clocked) Handle {
	if k.stepping {
		panic("sim: Add called during Step (hooks must not register components)")
	}
	if k.lateMark >= 0 {
		panic("sim: Add after AddLate (late components must be registered last)")
	}
	return k.add(c)
}

// AddLate registers a component that commits in the late phase: after every
// early component, in registration order — the slot the network wires links
// into, so credits and flits staged during early commits are applied the
// same cycle. On the serial path AddLate is identical to Add (late
// components are last in registration order anyway); the sharded executor
// uses the early/late split as its commit barrier.
func (k *Kernel) AddLate(c Clocked) Handle {
	if k.stepping {
		panic("sim: AddLate called during Step (hooks must not register components)")
	}
	if k.lateMark < 0 {
		k.lateMark = len(k.components)
	}
	return k.add(c)
}

func (k *Kernel) add(c Clocked) Handle {
	if k.sh != nil {
		panic("sim: Add after SetSharding")
	}
	if k.group != nil {
		panic("sim: Add on a kernel adopted by a LockstepGroup")
	}
	h := Handle(len(k.components))
	k.components = append(k.components, c)
	q, _ := c.(Quiescable)
	k.quiesc = append(k.quiesc, q)
	k.active = append(k.active, 1)
	return h
}

// SetAlwaysActive switches the kernel between the quiescence-skipping fast
// path (default) and the always-evaluate reference mode. Enabling reference
// mode re-activates every component.
func (k *Kernel) SetAlwaysActive(on bool) {
	k.alwaysActive = on
	if on {
		for i := range k.active {
			k.active[i] = 1
		}
		k.idle = 0
		if k.sh != nil {
			k.sh.resetIdle()
		}
	}
}

// Wake re-activates a component so it is evaluated again; waking an
// already-active component is a no-op.
//
// Concurrency contract: on the serial path Wake must be called from the
// stepping goroutine only (component Compute/Commit methods, or between
// steps). On the sharded path Wake is atomic and may be called from any
// worker — that is what lets NI injection and cross-shard neighbors wake
// components they do not own — with one restriction the network wiring
// upholds: during the early commit phase wakes may target only late
// components, and during the late phase only early ones, so a wake never
// races the owner shard's own quiescence bookkeeping for the same
// component.
func (k *Kernel) Wake(h Handle) {
	if g := k.group; g != nil {
		g.wake(k.slot, h)
		return
	}
	if sh := k.sh; sh != nil {
		sh.wake(k, h)
		return
	}
	if k.active[h] == 0 {
		k.active[h] = 1
		k.idle--
	}
}

// Waker returns a closure waking h, for wiring into components that cannot
// know about the kernel.
func (k *Kernel) Waker(h Handle) func() {
	return func() { k.Wake(h) }
}

// WakeInt is Wake with an untyped handle — the noc.Waker form. It lets
// hot-path wiring (links) hold the kernel through one shared interface value
// instead of a pair of per-component closures.
func (k *Kernel) WakeInt(h int) { k.Wake(Handle(h)) }

// SetObserver installs a hook called at the end of every Step with the
// completed cycle number and the active-component count, replacing any
// hooks installed so far. A nil fn removes them all. Hooks run on the
// stepping goroutine with all shard workers quiescent; they must not call
// Step, Add, or AddLate — the kernel's reentrancy guard panics if they do.
func (k *Kernel) SetObserver(fn func(cycle int64, active int)) {
	k.observers = k.observers[:0]
	k.AddObserver(fn)
}

// AddObserver appends an observer hook, keeping those already installed;
// hooks fire in installation order. A nil fn is ignored. The same
// contract as SetObserver applies.
func (k *Kernel) AddObserver(fn func(cycle int64, active int)) {
	if fn != nil {
		k.observers = append(k.observers, fn)
	}
}

// SetEpilogue installs a hook that runs at the end of every Step, before
// the observer, on the stepping goroutine with all shard workers quiescent.
// The sharded network drains its per-shard mailboxes here (deliveries in
// interface order, probe event buffers merged into registration order) so
// every cross-shard effect lands deterministically. The same reentrancy
// contract as SetObserver applies.
func (k *Kernel) SetEpilogue(fn func(cycle int64)) {
	k.epilogue = fn
}

// ActiveComponents returns how many components will be evaluated next step.
func (k *Kernel) ActiveComponents() int {
	if k.sh != nil {
		return len(k.components) - k.sh.totalIdle()
	}
	return len(k.components) - k.idle
}

// FullyIdle reports that every component is quiescent: a Step would be pure
// clock advance. Always false in always-active reference mode.
func (k *Kernel) FullyIdle() bool { return k.ActiveComponents() == 0 && len(k.components) > 0 }

// Cycle returns the number of completed cycles.
func (k *Kernel) Cycle() int64 {
	return k.cycle
}

// SetCycle forces the kernel clock, the snapshot-restore entry point: a
// restored network resumes at the cycle it was saved at. Must not be called
// mid-step.
func (k *Kernel) SetCycle(c int64) {
	if k.stepping {
		panic("sim: SetCycle during Step")
	}
	k.cycle = c
}

// WakeAll re-activates every component. Snapshot restore uses it instead of
// reconstructing the saved activity set: over-waking is unobservable (the
// quiescence fast path is proven bit-exact against always-active evaluation,
// so evaluating a quiet component changes nothing), and the true set
// re-converges within a cycle. Works in every execution mode — serial,
// sharded, and adopted by a LockstepGroup.
func (k *Kernel) WakeAll() {
	if k.stepping {
		panic("sim: WakeAll during Step")
	}
	if g := k.group; g != nil {
		g.wakeAll(k)
		return
	}
	for i := range k.active {
		k.active[i] = 1
	}
	k.idle = 0
	if k.sh != nil {
		k.sh.resetIdle()
	}
}

// Step advances the simulation by one cycle.
func (k *Kernel) Step() {
	if k.stepping {
		panic("sim: Step called reentrantly (observer/epilogue hooks must not step the kernel)")
	}
	if k.group != nil {
		panic("sim: Step on a kernel adopted by a LockstepGroup (step the group, or Release it first)")
	}
	k.stepping = true
	if k.sh != nil {
		k.stepSharded()
	} else {
		k.stepSerial()
	}
	if k.epilogue != nil {
		k.epilogue(k.cycle)
	}
	if len(k.observers) > 0 {
		active := k.ActiveComponents()
		for _, o := range k.observers {
			o(k.cycle, active)
		}
	}
	k.cycle++
	k.stepping = false
}

// stepSerial is the single-goroutine step: the reference semantics the
// sharded executor reproduces bit for bit. Each phase walks lane segments
// and generic ranges interleaved in registration order (see lane.go); with
// no lanes bound the walks reduce to the plain component loops.
func (k *Kernel) stepSerial() {
	switch {
	case k.idle == 0:
		// Everything active: the tight no-flag-check loops, plus the
		// post-commit quiescence check unless in reference mode.
		k.walkCompute(true)
		if k.alwaysActive {
			k.walkCommitAll()
		} else {
			k.walkCommitQuiesce(true)
		}
	case k.idle == len(k.components):
		// Fully quiescent network: the cycle is pure clock advance. Wakes
		// only arrive from outside the step (injection), so nothing can
		// need evaluation mid-step.
	default:
		k.walkCompute(false)
		k.walkCommitQuiesce(false)
	}
}

// Run advances the simulation by n cycles.
func (k *Kernel) Run(n int64) {
	for i := int64(0); i < n; i++ {
		k.Step()
	}
}

// FastForward advances the clock up to n cycles without evaluating any
// component. It is only legal — and only has an effect — while the kernel
// is fully quiescent: a quiescent step is pure clock advance, so skipping
// the component walk is unobservable. Per-cycle hooks (epilogue, observer)
// still fire for every skipped cycle, keeping probed output byte-identical
// to stepping; with no hooks installed the advance is O(1). Returns the
// cycles actually skipped (0 if the kernel is busy or in always-active
// reference mode).
func (k *Kernel) FastForward(n int64) int64 {
	if n <= 0 || !k.FullyIdle() {
		return 0
	}
	if k.epilogue == nil && len(k.observers) == 0 {
		k.cycle += n
		return n
	}
	for i := int64(0); i < n; i++ {
		if k.epilogue != nil {
			k.epilogue(k.cycle)
		}
		for _, o := range k.observers {
			o(k.cycle, 0)
		}
		k.cycle++
	}
	return n
}

// RunUntil steps the simulation until done returns true or the cycle limit
// is reached, and reports whether done was satisfied.
//
// done must be a read-only function of committed component state (it must
// not mutate the simulation, and must not depend on the cycle counter):
// once the kernel is fully quiescent nothing a step evaluates can change
// done's verdict, so RunUntil fast-forwards the clock to the limit in bulk
// instead of stepping idle cycles one by one.
func (k *Kernel) RunUntil(done func() bool, limit int64) bool {
	for k.cycle < limit {
		if done() {
			return true
		}
		if k.FullyIdle() {
			k.FastForward(limit - k.cycle)
			break
		}
		k.Step()
	}
	return done()
}
