package sim

import (
	"sync"
	"testing"
)

// mustPanic runs fn and fails the test unless it panics.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// hostile is a Clocked whose hooks poke the kernel in forbidden ways.
type hostile struct {
	onCompute func()
}

func (h *hostile) Compute(cycle int64) {
	if h.onCompute != nil {
		h.onCompute()
	}
}
func (h *hostile) Commit(cycle int64) {}

// TestReentrancyGuard pins the hook contract: observers and component
// methods must not step the kernel or register components mid-step, and
// registration order (early before late) is enforced at Add time.
func TestReentrancyGuard(t *testing.T) {
	t.Run("StepFromObserver", func(t *testing.T) {
		k := NewKernel()
		k.Add(&hostile{})
		k.SetObserver(func(cycle int64, active int) { k.Step() })
		mustPanic(t, "Step from observer", k.Step)
	})
	t.Run("StepFromEpilogue", func(t *testing.T) {
		k := NewKernel()
		k.Add(&hostile{})
		k.SetEpilogue(func(cycle int64) { k.Step() })
		mustPanic(t, "Step from epilogue", k.Step)
	})
	t.Run("AddDuringStep", func(t *testing.T) {
		k := NewKernel()
		k.Add(&hostile{onCompute: func() { k.Add(&hostile{}) }})
		mustPanic(t, "Add during Step", k.Step)
	})
	t.Run("AddAfterAddLate", func(t *testing.T) {
		k := NewKernel()
		k.Add(&hostile{})
		k.AddLate(&hostile{})
		mustPanic(t, "Add after AddLate", func() { k.Add(&hostile{}) })
	})
	t.Run("AddAfterSetSharding", func(t *testing.T) {
		k := NewKernel()
		k.Add(&hostile{})
		k.SetSharding(1, []int{0})
		defer k.Close()
		mustPanic(t, "Add after SetSharding", func() { k.Add(&hostile{}) })
	})
}

// TestSetShardingValidation pins the partition sanity checks.
func TestSetShardingValidation(t *testing.T) {
	mk := func() *Kernel {
		k := NewKernel()
		k.Add(&quiescer{})
		k.Add(&quiescer{})
		return k
	}
	mustPanic(t, "zero shards", func() { mk().SetSharding(0, []int{0, 0}) })
	mustPanic(t, "length mismatch", func() { mk().SetSharding(2, []int{0}) })
	mustPanic(t, "out-of-range shard", func() { mk().SetSharding(2, []int{0, 2}) })
	k := mk()
	k.SetSharding(2, []int{0, 1})
	defer k.Close()
	mustPanic(t, "double SetSharding", func() { k.SetSharding(2, []int{0, 1}) })
}

// TestStepAfterClosePanics: a closed worker pool cannot step.
func TestStepAfterClosePanics(t *testing.T) {
	k := NewKernel()
	k.Add(&quiescer{pending: 3})
	k.SetSharding(1, []int{0})
	k.Close()
	k.Close() // idempotent
	mustPanic(t, "Step after Close", k.Step)
}

// TestFastForward pins the bulk clock advance: no effect while busy, pure
// advance while idle, per-cycle hook replay when hooks are installed.
func TestFastForward(t *testing.T) {
	k := NewKernel()
	q := &quiescer{pending: 2}
	k.Add(q)
	if got := k.FastForward(10); got != 0 {
		t.Fatalf("FastForward on a busy kernel skipped %d cycles, want 0", got)
	}
	k.Run(3) // q quiet after 2 cycles
	if !k.FullyIdle() {
		t.Fatal("kernel not idle after drain")
	}
	start := k.Cycle()
	if got := k.FastForward(50); got != 50 {
		t.Fatalf("FastForward skipped %d cycles, want 50", got)
	}
	if k.Cycle() != start+50 {
		t.Fatalf("cycle = %d, want %d", k.Cycle(), start+50)
	}
	if q.computes != 2 {
		t.Fatalf("FastForward evaluated components: %d computes, want 2", q.computes)
	}

	// With hooks installed the advance replays them every skipped cycle, in
	// epilogue-then-observer order, with active == 0.
	var cycles []int64
	k.SetEpilogue(func(cycle int64) { cycles = append(cycles, cycle) })
	k.SetObserver(func(cycle int64, active int) {
		if active != 0 {
			t.Fatalf("observer saw %d active components during fast-forward", active)
		}
		if n := len(cycles); n == 0 || cycles[n-1] != cycle {
			t.Fatalf("observer at cycle %d did not follow its epilogue (%v)", cycle, cycles)
		}
	})
	before := k.Cycle()
	if got := k.FastForward(7); got != 7 {
		t.Fatalf("hooked FastForward skipped %d cycles, want 7", got)
	}
	if len(cycles) != 7 || cycles[0] != before || cycles[6] != before+6 {
		t.Fatalf("epilogue cycles = %v, want %d..%d", cycles, before, before+6)
	}
}

// pinger is an early component holding tokens: each active cycle it burns
// one and pokes its late partner with a unit of work plus a wake — the
// early-commit-writes-late pattern (credit returns) the phase barrier
// makes safe.
type pinger struct {
	tokens   int
	computes int
	commits  int
	partner  *ponger
	wake     func()
}

func (p *pinger) Compute(cycle int64) { p.computes++ }
func (p *pinger) Commit(cycle int64) {
	p.commits++
	if p.tokens > 0 {
		p.tokens--
		p.partner.pending++
		p.wake()
	}
}
func (p *pinger) Quiet() bool { return p.tokens == 0 }

// ponger is a late component: it works off the pending units its pinger
// staged, and each time it finishes a batch it refuels the pinger — the
// late-commit-writes-early pattern (link delivery) plus a cross-phase wake.
type ponger struct {
	pending  int
	refills  int
	computes int
	commits  int
	partner  *pinger
	wake     func()
}

func (p *ponger) Compute(cycle int64) { p.computes++ }
func (p *ponger) Commit(cycle int64) {
	p.commits++
	if p.pending > 0 {
		p.pending--
		if p.pending == 0 && p.refills > 0 {
			p.refills--
			p.partner.tokens += 2
			p.wake()
		}
	}
}
func (p *ponger) Quiet() bool { return p.pending == 0 }

// buildPingPong wires nPairs pinger/ponger pairs into a kernel, optionally
// sharded with each pair's components co-assigned round-robin. Returns the
// kernel plus the components for inspection.
func buildPingPong(nPairs, shards int) (*Kernel, []*pinger, []*ponger) {
	k := NewKernel()
	pingers := make([]*pinger, nPairs)
	pongers := make([]*ponger, nPairs)
	for i := range pingers {
		pingers[i] = &pinger{tokens: 3 + i%4}
		pongers[i] = &ponger{refills: 2}
		pingers[i].partner = pongers[i]
		pongers[i].partner = pingers[i]
	}
	var shardOf []int
	for i, p := range pingers {
		h := k.Add(p)
		pongers[i].wake = k.Waker(h)
		shardOf = append(shardOf, i%max(shards, 1))
	}
	for i, p := range pongers {
		h := k.AddLate(p)
		pingers[i].wake = k.Waker(h)
		// Deliberately co-locate some pairs and split others across shards,
		// so both intra- and cross-shard wakes are exercised.
		shardOf = append(shardOf, (i+i%2)%max(shards, 1))
	}
	if shards > 0 {
		k.SetSharding(shards, shardOf)
	}
	return k, pingers, pongers
}

// TestShardedToyEquivalence runs the ping-pong workload — cross-phase,
// cross-shard wakes and writes in both directions — serial and at several
// shard counts, and requires identical per-component evaluation counts and
// identical final state. Run under -race this also proves the wake path and
// phase barriers are data-race free.
func TestShardedToyEquivalence(t *testing.T) {
	const nPairs = 13
	type snapshot struct {
		computes, commits []int
		active            int
		cycle             int64
	}
	run := func(shards int) snapshot {
		k, pingers, pongers := buildPingPong(nPairs, shards)
		defer k.Close()
		k.Run(60)
		var s snapshot
		for i := range pingers {
			s.computes = append(s.computes, pingers[i].computes, pongers[i].computes)
			s.commits = append(s.commits, pingers[i].commits, pongers[i].commits)
		}
		s.active = k.ActiveComponents()
		s.cycle = k.Cycle()
		return s
	}
	want := run(0) // serial reference
	if want.active != 0 {
		t.Fatalf("reference run did not quiesce: %d active", want.active)
	}
	for _, shards := range []int{1, 2, 3, 5, 13} {
		got := run(shards)
		if got.cycle != want.cycle || got.active != want.active {
			t.Errorf("shards=%d: cycle/active = %d/%d, want %d/%d", shards, got.cycle, got.active, want.cycle, want.active)
		}
		for i := range want.computes {
			if got.computes[i] != want.computes[i] || got.commits[i] != want.commits[i] {
				t.Fatalf("shards=%d: component %d evaluated %d/%d times, want %d/%d",
					shards, i, got.computes[i], got.commits[i], want.computes[i], want.commits[i])
			}
		}
	}
}

// TestShardedWakeCrossGoroutine asserts the documented Wake contract: on
// the sharded path Wake is atomic and legal from any goroutine (the NI
// injection path). Concurrent wakes of overlapping components must leave
// the idle accounting exact.
func TestShardedWakeCrossGoroutine(t *testing.T) {
	k := NewKernel()
	const n = 32
	handles := make([]Handle, n)
	for i := 0; i < n; i++ {
		handles[i] = k.Add(&quiescer{pending: 1})
	}
	shardOf := make([]int, n)
	for i := range shardOf {
		shardOf[i] = i % 4
	}
	k.SetSharding(4, shardOf)
	defer k.Close()
	k.Run(3) // everything goes quiet
	if !k.FullyIdle() {
		t.Fatalf("kernel not idle: %d active", k.ActiveComponents())
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Goroutines deliberately overlap on the same handles.
			for i := g % 2; i < n; i += 2 {
				k.Wake(handles[i])
			}
		}(g)
	}
	wg.Wait()
	if got := k.ActiveComponents(); got != n {
		t.Fatalf("after concurrent wakes %d components active, want %d", got, n)
	}
	k.Run(3)
	if !k.FullyIdle() {
		t.Errorf("kernel did not re-quiesce: %d active", k.ActiveComponents())
	}
}
