package sim

import "math"

// Never is the horizon a component reports when no amount of elapsed time
// will change its externally visible state — only a neighbor's write (and the
// Wake that must accompany it) can. It is also what NextDue returns from an
// empty wheel.
const Never int64 = math.MaxInt64

// Horizoned extends Quiescable with a conservative next-wake estimate: the
// earliest future cycle at which the component's externally visible state
// could change absent new input. A component that is not Quiet but whose
// horizon lies beyond the next cycle is parked exactly like a quiet one —
// dropped from the active set — and re-activated either by an explicit Wake
// (the cross-component invalidation edge, unchanged) or by the kernel's
// timing wheel when it reports a finite horizon.
//
// The contract mirrors Quiet's: Horizon must be a pure function of committed
// state, evaluated right after the component's Commit, and must be
// conservative — reporting a horizon later than the true one silently
// diverges from eager evaluation (the debug oracle of SetOracle exists to
// catch exactly that). Horizon(now) <= now+1 means "evaluate me next cycle"
// (no parking); Never means "only an external Wake can affect me".
type Horizoned interface {
	Quiescable
	// Horizon returns the earliest cycle > now at which this component's
	// state can change with no new input, or Never.
	Horizon(now int64) int64
}

// timingWheel is a two-level hierarchical timing wheel holding pending
// component wake-ups. Level 0 has 64 one-cycle slots (wakes within the next
// 64 cycles), level 1 has 64 slots of 64 cycles (wakes within the next 4096),
// and everything further lands in an overflow list that is re-filed as the
// clock approaches. The kernel pops due entries at the top of every Step and
// AdvanceTo jumps the clock straight to the earliest entry while the
// component set is fully idle.
type timingWheel struct {
	// base is the cycle slot 0 of level 0 corresponds to. Entries are filed
	// relative to it and it only moves forward (advance).
	base int64
	l0   [64][]wheelEntry
	l1   [64][]wheelEntry
	over []wheelEntry
	// next caches the earliest scheduled cycle, Never when empty.
	next int64
	n    int
}

type wheelEntry struct {
	at int64
	h  Handle
}

func newTimingWheel(base int64) *timingWheel {
	return &timingWheel{base: base, next: Never}
}

// len returns the number of pending entries.
func (w *timingWheel) len() int { return w.n }

// nextDue returns the earliest scheduled cycle, Never when empty.
func (w *timingWheel) nextDue() int64 { return w.next }

// schedule files a wake for handle h at cycle `at` (must be > base-relative
// now; the kernel clamps earlier requests to immediate wakes instead).
func (w *timingWheel) schedule(at int64, h Handle) {
	e := wheelEntry{at: at, h: h}
	switch d := at - w.base; {
	case d < 64:
		w.l0[at&63] = append(w.l0[at&63], e)
	case d < 64*64:
		w.l1[(at>>6)&63] = append(w.l1[(at>>6)&63], e)
	default:
		w.over = append(w.over, e)
	}
	w.n++
	if at < w.next {
		w.next = at
	}
}

// popDue moves the wheel's base to now, cascading level-1 and overflow
// entries downward, and fires k.Wake for every entry due at or before now.
// Entries scheduled exactly at now wake for the cycle about to be stepped.
// Taking the kernel rather than a callback keeps the steady-state step
// allocation-free (a closure per pop would escape); Wake itself routes to
// the right path in every execution mode (serial, sharded, adopted).
func (w *timingWheel) popDue(now int64, k *Kernel) {
	if w.n == 0 || w.next > now {
		w.base = now
		return
	}
	for w.base <= now {
		slot := &w.l0[w.base&63]
		for _, e := range *slot {
			// A slot is revisited every 64 cycles; only entries for this lap
			// are due.
			if e.at <= now {
				k.Wake(e.h)
				w.n--
			} else {
				// Future lap: re-file (rare — only when base jumps > 64).
				w.scheduleLater(e)
			}
		}
		*slot = (*slot)[:0]
		w.base++
		if w.base&63 == 0 {
			// Entering a new level-1 slot: cascade its entries into level 0.
			s1 := &w.l1[(w.base>>6)&63]
			for _, e := range *s1 {
				w.n--
				w.scheduleLater(e)
			}
			*s1 = (*s1)[:0]
			if (w.base>>6)&63 == 0 {
				// New level-1 lap: re-file overflow entries now in range.
				over := w.over
				w.over = w.over[:0]
				for _, e := range over {
					w.n--
					w.scheduleLater(e)
				}
			}
		}
		if w.n == 0 {
			break
		}
	}
	w.base = now
	w.recomputeNext()
}

// scheduleLater re-files an entry relative to the current base during a
// cascade (the entry count was already decremented by the caller).
func (w *timingWheel) scheduleLater(e wheelEntry) {
	switch d := e.at - w.base; {
	case d < 64:
		w.l0[e.at&63] = append(w.l0[e.at&63], e)
	case d < 64*64:
		w.l1[(e.at>>6)&63] = append(w.l1[(e.at>>6)&63], e)
	default:
		w.over = append(w.over, e)
	}
	w.n++
}

// recomputeNext rescans for the earliest pending entry. Called after pops;
// the wheel is small (its slots hold only genuinely scheduled wakes) so a
// scan is cheaper than a priority structure on every schedule.
func (w *timingWheel) recomputeNext() {
	w.next = Never
	if w.n == 0 {
		return
	}
	for i := range w.l0 {
		for _, e := range w.l0[i] {
			if e.at < w.next {
				w.next = e.at
			}
		}
	}
	for i := range w.l1 {
		for _, e := range w.l1[i] {
			if e.at < w.next {
				w.next = e.at
			}
		}
	}
	for _, e := range w.over {
		if e.at < w.next {
			w.next = e.at
		}
	}
}

// reset drops every pending entry and rebases the wheel — the
// snapshot-restore path (wheel state is derivable, never serialized: restored
// components are woken wholesale and re-report their horizons within one
// cycle).
func (w *timingWheel) reset(base int64) {
	for i := range w.l0 {
		w.l0[i] = w.l0[i][:0]
	}
	for i := range w.l1 {
		w.l1[i] = w.l1[i][:0]
	}
	w.over = w.over[:0]
	w.base, w.next, w.n = base, Never, 0
}
