package sim

import "math/bits"

// LockstepGroup steps many structurally identical serial kernels through the
// same cycles together — the batched many-seed execution mode. Where one
// kernel walks its own components with a per-component activity byte, the
// group transposes that hot state into structure-of-arrays form: for each
// component index (column) it keeps one machine word per 64 member
// simulations whose bit s is simulation s's activity flag, and one
// contiguous row of the N simulations' component objects. A step then walks
// columns, not simulations: one pass over a router column touches all N
// simulations' instances back to back, and a column whose activity word is
// zero — a router idle in every member at once — is skipped with a single
// load, however wide the batch. That bit-sliced skip is what makes the
// common sparse regimes (warm-up ramps, post-burst decay, drain tails) cost
// one word op per column instead of N flag checks. When activity is dense
// the step switches walks: each member's own serial step — typed lanes,
// devirtualized dispatch, per-member cache locality — runs against flags
// synced from the shared words (see Step and denseThreshold).
//
// Lockstep changes iteration mechanics only, never semantics. Each member's
// components are visited in its own registration order within every phase
// (columns ascend), all computes globally precede all commits (members are
// mutually independent, so interleaving across members is unobservable), the
// quiescence bookkeeping is the serial kernel's bit for bit, and each
// member's epilogue/observer hooks fire once per cycle on the stepping
// goroutine exactly as its own Step would have fired them. The equivalence
// suites in internal/batch pin byte-identical results against independent
// serial runs.
//
// Adopted kernels hand their stepping to the group: Kernel.Step, Add,
// AddLate, and BindLane panic until Release. Wake keeps working — it is
// redirected into the group's activity words — so injection paths and link
// wake wiring are untouched. FastForward and the read-only accessors
// (Cycle, FullyIdle, ActiveComponents) also keep working; the group's Park
// uses them to let finished members drop out of lockstep.
type LockstepGroup struct {
	kernels []*Kernel
	width   int // member count
	words   int // activity words per column: ceil(width/64)
	comps   int // components per member

	// cols[c*width+s] is member s's component c: the transposed
	// (component-major) view the step walks. qcols/hcols are the matching
	// Quiescable and Horizoned views, nil where a component does not opt in.
	cols  []Clocked
	qcols []Quiescable
	hcols []Horizoned

	// active[c*words+w] packs the activity flags of components[c] across
	// members 64*w .. 64*w+63. Bit set = evaluated next step.
	active []uint64

	// parked[w] marks members released from lockstep (finished runs). Their
	// activity bits are preserved but masked out of every walk, their hooks
	// stop firing, and their clocks stop advancing.
	parked  []uint64
	nparked int

	// alwaysActive mirrors the members' reference mode (uniform across the
	// group, checked at construction): commit phases skip the quiescence
	// bookkeeping exactly like the serial reference walk.
	alwaysActive bool

	// sliced records which activity representation is current: true when the
	// transposed bit words are authoritative (the column walk's format),
	// false when each member kernel's own u32 flag array is (the dense
	// walk's format — the serial step's native representation). The two are
	// reconciled only when the step switches walks, so runs that stay in one
	// regime pay no per-cycle translation at all. The idle counters are
	// maintained identically in both representations.
	sliced bool

	stepping bool
}

// NewLockstepGroup adopts the given kernels into one lockstep group. All
// members must be serial (not sharded), structurally identical (same
// component count), in the same quiescence mode, at the same cycle, and not
// already adopted; violations panic — the batch layer constructs members
// from one template, so a mismatch is a wiring bug, not an input error.
func NewLockstepGroup(kernels []*Kernel) *LockstepGroup {
	if len(kernels) == 0 {
		panic("sim: NewLockstepGroup with no kernels")
	}
	first := kernels[0]
	g := &LockstepGroup{
		kernels:      kernels,
		width:        len(kernels),
		words:        (len(kernels) + 63) / 64,
		comps:        len(first.components),
		alwaysActive: first.alwaysActive,
	}
	for _, k := range kernels {
		switch {
		case k.sh != nil:
			panic("sim: NewLockstepGroup member is sharded (batch across, shard within needs the fallback path)")
		case k.group != nil:
			panic("sim: NewLockstepGroup member already adopted")
		case k.stepping:
			panic("sim: NewLockstepGroup during Step")
		case len(k.components) != g.comps:
			panic("sim: NewLockstepGroup members differ in component count")
		case k.alwaysActive != g.alwaysActive:
			panic("sim: NewLockstepGroup members differ in quiescence mode")
		case k.cycle != first.cycle:
			panic("sim: NewLockstepGroup members differ in cycle")
		}
	}
	g.cols = make([]Clocked, g.comps*g.width)
	g.qcols = make([]Quiescable, g.comps*g.width)
	g.hcols = make([]Horizoned, g.comps*g.width)
	g.active = make([]uint64, g.comps*g.words)
	g.parked = make([]uint64, g.words)
	for s, k := range kernels {
		for c := 0; c < g.comps; c++ {
			g.cols[c*g.width+s] = k.components[c]
			g.qcols[c*g.width+s] = k.quiesc[c]
			g.hcols[c*g.width+s] = k.hzn[c]
		}
		k.group = g
		k.slot = s
	}
	// Members arrive serial, so their own u32 flag arrays are current: start
	// in the dense representation and transpose lazily on the first sparse
	// step.
	g.sliced = false
	return g
}

// wake is the adopted-kernel Wake path: flip the member's activity flag in
// whichever representation is current and keep that member's idle counter
// balanced, so Kernel.FullyIdle and ActiveComponents stay truthful while
// adopted.
func (g *LockstepGroup) wake(slot int, h Handle) {
	k := g.kernels[slot]
	if !g.sliced {
		if k.active[h] == 0 {
			k.active[h] = 1
			k.actWords[h>>6] |= 1 << (h & 63)
			k.idle--
		}
		return
	}
	idx := int(h)*g.words + slot>>6
	bit := uint64(1) << (slot & 63)
	if g.active[idx]&bit == 0 {
		g.active[idx] |= bit
		k.idle--
	}
}

// wakeAll is the adopted-kernel WakeAll path: set every one of the member's
// activity flags in whichever representation is current and zero its idle
// counter. Used by snapshot restore when state is loaded into an already
// adopted cohort member.
func (g *LockstepGroup) wakeAll(k *Kernel) {
	if !g.sliced {
		for i := range k.active {
			k.active[i] = 1
		}
		k.setAllBits()
		k.idle = 0
		if k.wheel != nil {
			k.wheel.reset(k.cycle)
		}
		return
	}
	w, bit := k.slot>>6, uint64(1)<<(k.slot&63)
	for c := 0; c < g.comps; c++ {
		g.active[c*g.words+w] |= bit
	}
	k.idle = 0
	if k.wheel != nil {
		k.wheel.reset(k.cycle)
	}
}

// ensureFlags makes each member's own u32 flag array the current activity
// representation (the dense walk's format), transposing the bit words out if
// they were authoritative.
func (g *LockstepGroup) ensureFlags() {
	if !g.sliced {
		return
	}
	words := g.words
	for s, k := range g.kernels {
		w, bit := s>>6, uint64(1)<<(s&63)
		for c := 0; c < g.comps; c++ {
			if g.active[c*words+w]&bit != 0 {
				k.active[c] = 1
				k.actWords[c>>6] |= 1 << (c & 63)
			} else {
				k.active[c] = 0
			}
		}
	}
	g.sliced = false
}

// ensureBits makes the transposed bit words the current activity
// representation (the column walk's format), folding each member's u32 flags
// in if they were authoritative.
func (g *LockstepGroup) ensureBits() {
	if g.sliced {
		return
	}
	words := g.words
	for s, k := range g.kernels {
		w, bit := s>>6, uint64(1)<<(s&63)
		for c := 0; c < g.comps; c++ {
			idx := c*words + w
			if k.active[c] != 0 {
				g.active[idx] |= bit
			} else {
				g.active[idx] &^= bit
			}
		}
	}
	g.sliced = true
}

// Width returns the member count.
func (g *LockstepGroup) Width() int { return g.width }

// Parked reports whether member s has been parked.
func (g *LockstepGroup) Parked(s int) bool {
	return g.parked[s>>6]&(uint64(1)<<(s&63)) != 0
}

// Park drops member s out of lockstep: its components stop being evaluated,
// its hooks stop firing, and its clock stops advancing — the batched
// equivalent of a serial run that simply stopped stepping. Parking is
// one-way; a finished member's state (and its diverged clock, if the owner
// fast-forwarded it) no longer participates in the group invariants.
func (g *LockstepGroup) Park(s int) {
	if g.stepping {
		panic("sim: Park during Step")
	}
	w, bit := s>>6, uint64(1)<<(s&63)
	if g.parked[w]&bit == 0 {
		g.parked[w] |= bit
		g.nparked++
	}
}

// AllIdle reports that every unparked member is fully quiescent: a Step
// would be pure clock advance for the whole group, so the owner may
// fast-forward members in bulk instead.
func (g *LockstepGroup) AllIdle() bool {
	if g.nparked == g.width {
		return true
	}
	for s, k := range g.kernels {
		if g.parked[s>>6]&(uint64(1)<<(s&63)) != 0 {
			continue
		}
		if !k.FullyIdle() {
			return false
		}
	}
	return true
}

// denseThreshold picks the step walk: when the cohort averages at least one
// active component per denseThreshold columns per live member, the
// member-major dense walk (each member's own lane-devirtualized serial step)
// beats the bit-sliced column walk, whose per-column word skip only pays off
// when almost everything is asleep. Switching representations costs a full
// width x columns reconciliation, so the decision has 2x hysteresis: a dense
// group goes sliced only once density falls below half the entry threshold.
// The crossover was measured on the 8x8 sweep benchmark; it is a performance
// knob only — both walks produce identical results.
const denseThreshold = 24

// denseWalk reports whether the next step should take the member-major dense
// path instead of the bit-sliced column walk.
func (g *LockstepGroup) denseWalk() bool {
	if g.alwaysActive {
		return false
	}
	live, total := 0, 0
	for s, k := range g.kernels {
		if g.parked[s>>6]&(uint64(1)<<(s&63)) == 0 {
			live++
			total += g.comps - k.idle
		}
	}
	if g.sliced {
		return total*denseThreshold >= g.comps*live
	}
	return total*denseThreshold*2 >= g.comps*live
}

// Step advances every unparked member by one cycle in lockstep, then fires
// each member's end-of-step hooks in member order. The evaluation walk is
// chosen by activity density: sparse regimes (warm-up ramps, post-burst
// decay, drain tails) take the bit-sliced column walk, whose zero-word skip
// costs one load per column however wide the batch; dense regimes take the
// member-major walk, which runs each member's own serial step — typed lanes,
// devirtualized dispatch, per-member cache locality — against activity flags
// synced from the shared bit words. Members are mutually independent, so the
// cross-member interleaving difference between the walks is unobservable;
// per member, both visit components in registration order with identical
// flag-at-visit-time wake semantics.
func (g *LockstepGroup) Step() {
	if g.stepping {
		panic("sim: LockstepGroup.Step called reentrantly")
	}
	g.stepping = true
	for _, k := range g.kernels {
		if k.stepping {
			panic("sim: LockstepGroup.Step during a member Step")
		}
		k.stepping = true
	}
	cycle := g.cycle()

	// Pop due timed wakes per unparked member before sizing the walk: fired
	// wakes raise activity through g.wake in whichever representation is
	// current, so both the density decision and the walks see them.
	for s, k := range g.kernels {
		if g.parked[s>>6]&(uint64(1)<<(s&63)) != 0 {
			continue
		}
		if k.wheel != nil && k.wheel.len() != 0 {
			k.wheel.popDue(cycle, k)
		}
	}

	if g.denseWalk() {
		g.ensureFlags()
		g.stepDense()
	} else {
		g.ensureBits()
		g.stepSliced(cycle)
	}

	// End-of-step hooks and clock advance, member-major: each member sees
	// exactly the sequence its own serial Step would have produced.
	for s, k := range g.kernels {
		k.stepping = false
		if g.parked[s>>6]&(uint64(1)<<(s&63)) != 0 {
			continue
		}
		if k.epilogue != nil {
			k.epilogue(k.cycle)
		}
		if len(k.observers) > 0 {
			active := k.ActiveComponents()
			for _, o := range k.observers {
				o(k.cycle, active)
			}
		}
		k.cycle++
	}
	g.stepping = false
}

// stepDense is the member-major walk (flags representation current): each
// unparked member is temporarily detached — so Wake takes the serial path
// against the kernel's own flag array — and its serial step runs verbatim:
// lane segments, devirtualized dispatch, quiescence bookkeeping, idle
// counter and all. The walk is the exact machine code a standalone run
// executes, which is what closes the dispatch and locality gap against
// per-member serial execution; members are independent, so completing one
// member's cycle before starting the next is unobservable.
func (g *LockstepGroup) stepDense() {
	for s, k := range g.kernels {
		if g.parked[s>>6]&(uint64(1)<<(s&63)) != 0 {
			continue
		}
		k.group = nil
		k.stepSerial()
		k.group = g
	}
}

// stepSliced is the bit-sliced column walk: a column-major compute phase,
// then a column-major commit phase with the serial kernel's quiescence
// bookkeeping performed on the shared words.
func (g *LockstepGroup) stepSliced(cycle int64) {
	width, words := g.width, g.words
	// Compute phase: column-major, bit-sliced. The activity word is read at
	// visit time, so a wake staged by an earlier column this phase is
	// honored — exactly the serial walk's flag-at-visit semantics.
	for c := 0; c < g.comps; c++ {
		row := g.cols[c*width : (c+1)*width]
		for w := 0; w < words; w++ {
			word := g.active[c*words+w] &^ g.parked[w]
			for ; word != 0; word &= word - 1 {
				row[w<<6+bits.TrailingZeros64(word)].Compute(cycle)
			}
		}
	}
	// Commit phase: same walk plus quiescence bookkeeping — a committed
	// component that reports quiet drops its bit and its member's idle
	// counter rises, identical to the serial commitOne.
	if g.alwaysActive {
		for c := 0; c < g.comps; c++ {
			row := g.cols[c*width : (c+1)*width]
			for w := 0; w < words; w++ {
				word := g.active[c*words+w] &^ g.parked[w]
				for ; word != 0; word &= word - 1 {
					row[w<<6+bits.TrailingZeros64(word)].Commit(cycle)
				}
			}
		}
	} else {
		for c := 0; c < g.comps; c++ {
			row := g.cols[c*width : (c+1)*width]
			qrow := g.qcols[c*width : (c+1)*width]
			hrow := g.hcols[c*width : (c+1)*width]
			for w := 0; w < words; w++ {
				word := g.active[c*words+w] &^ g.parked[w]
				for ; word != 0; word &= word - 1 {
					s := w<<6 + bits.TrailingZeros64(word)
					row[s].Commit(cycle)
					if q := qrow[s]; q != nil && q.Quiet() {
						g.active[c*words+w] &^= uint64(1) << (s & 63)
						g.kernels[s].idle++
						continue
					}
					// Horizon parking, identical to the serial commitOne;
					// the timed wake lands in the member's own wheel.
					if hz := hrow[s]; hz != nil {
						if at := hz.Horizon(cycle); at > cycle+1 {
							g.active[c*words+w] &^= uint64(1) << (s & 63)
							g.kernels[s].idle++
							if at != Never {
								g.kernels[s].wheel.schedule(at, Handle(c))
							}
						}
					}
				}
			}
		}
	}
}

// cycle returns the common cycle of the unparked members (parked members may
// have diverged via FastForward and are ignored).
func (g *LockstepGroup) cycle() int64 {
	for s, k := range g.kernels {
		if g.parked[s>>6]&(uint64(1)<<(s&63)) == 0 {
			return k.cycle
		}
	}
	return g.kernels[0].cycle
}

// Release dissolves the group: every member's own activity flags are made
// current (written back from the shared words if those were authoritative)
// and the member kernels resume normal operation (Step, Add, BindLane work
// again). The group must not be used afterwards. Parked members are restored
// too — their owner decides what to do with them.
func (g *LockstepGroup) Release() {
	if g.stepping {
		panic("sim: Release during Step")
	}
	g.ensureFlags()
	for _, k := range g.kernels {
		k.group = nil
		k.slot = 0
	}
}
