//go:build contract

// Contract tests for the event-horizon kernel API, run by `make
// contract-check` (build tag: contract). They pin the two halves of the
// Horizoned contract — honest horizons park and wake exactly on schedule;
// lying horizons are the silent-divergence bug class — and prove the
// SetOracle debug mode catches every liar the fast path would mask.
package sim

import (
	"strings"
	"testing"
)

// alarm is an honest Horizoned component: it does nothing until cycle at,
// fires once there, and is quiet forever after. Its horizon is exact, so
// every cycle in (park, at) is a state no-op — the parked stretch the
// kernel may skip.
type alarm struct {
	at       int64
	fired    bool
	computes int
}

func (a *alarm) Compute(cycle int64) { a.computes++ }
func (a *alarm) Commit(cycle int64) {
	if cycle >= a.at {
		a.fired = true
	}
}
func (a *alarm) Quiet() bool { return a.fired }
func (a *alarm) Horizon(now int64) int64 {
	if a.at > now+1 {
		return a.at
	}
	return now + 1
}

// liar mutates state every cycle it is evaluated but reports a far horizon:
// the canonical under-reporting component. Under the fast path it silently
// diverges from always-active evaluation; under the oracle it must be
// caught on the first parked cycle.
type liar struct{ val int }

func (l *liar) Compute(cycle int64) {}
func (l *liar) Commit(cycle int64)  { l.val++ }
func (l *liar) Quiet() bool         { return false }
func (l *liar) Horizon(now int64) int64 {
	return now + 100
}

// latent goes quiet while still holding work: Quiet lies rather than
// Horizon. Same bug class, other entry point.
type latent struct{ val int }

func (l *latent) Compute(cycle int64) {}
func (l *latent) Commit(cycle int64)  { l.val++ }
func (l *latent) Quiet() bool         { return true }

// TestContractHonestHorizonWakesOnSchedule pins the wheel's wake timing: an
// alarm parked with a finite horizon is evaluated exactly twice — the cycle
// it parks and the cycle its horizon names — and fires on time.
func TestContractHonestHorizonWakesOnSchedule(t *testing.T) {
	k := NewKernel()
	a := &alarm{at: 50}
	k.Add(a)
	k.Run(100)
	if !a.fired {
		t.Fatal("alarm never fired")
	}
	if a.computes != 2 {
		t.Fatalf("alarm evaluated %d times, want 2 (park cycle + horizon cycle)", a.computes)
	}
	if k.ActiveComponents() != 0 {
		t.Fatalf("%d active components after firing, want 0", k.ActiveComponents())
	}
	if !k.FullyIdle() {
		t.Fatal("kernel not fully idle after the alarm quiesced")
	}
}

// TestContractSkipIdleStopsAtNextWake pins the clock-jump side: SkipIdle
// must advance to the earliest scheduled wake, never past it.
func TestContractSkipIdleStopsAtNextWake(t *testing.T) {
	k := NewKernel()
	a := &alarm{at: 50}
	k.Add(a)
	k.Step() // cycle 0: alarm parks with horizon 50
	if k.FullyIdle() {
		t.Fatal("FullyIdle with a pending timed wake")
	}
	if !k.Idle() {
		t.Fatal("kernel not Idle with every component parked")
	}
	if got := k.NextWake(); got != 50 {
		t.Fatalf("NextWake = %d, want 50", got)
	}
	if skipped := k.SkipIdle(1000); skipped != 49 {
		t.Fatalf("SkipIdle skipped %d cycles, want 49 (stop at the wake)", skipped)
	}
	k.Step() // cycle 50: the wheel pops, the alarm fires
	if !a.fired {
		t.Fatal("alarm did not fire on the cycle SkipIdle stopped at")
	}
}

// TestContractFastPathMasksLiar documents the failure mode the oracle
// exists for: without it, an under-reporting component silently diverges
// from always-active evaluation — no panic, just wrong state.
func TestContractFastPathMasksLiar(t *testing.T) {
	k := NewKernel()
	l := &liar{}
	k.Add(l)
	k.Run(10)
	if l.val != 1 {
		t.Fatalf("liar evaluated %d times on the fast path, expected the silent divergence (1)", l.val)
	}
}

// mustOracleViolation runs fn and requires it to panic with the kernel's
// horizon-contract violation, returning the payload.
func mustOracleViolation(t *testing.T, fn func()) (v oracleViolation) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("oracle did not catch the contract violation")
		}
		ov, ok := r.(oracleViolation)
		if !ok {
			t.Fatalf("panic payload %T (%v), want oracleViolation", r, r)
		}
		v = ov
	}()
	fn()
	return
}

// TestContractOracleCatchesUnderReportedHorizon is the oracle's core
// guarantee: a component that mutates state while parked on a lying horizon
// panics on the first parked cycle, naming the component.
func TestContractOracleCatchesUnderReportedHorizon(t *testing.T) {
	k := NewKernel()
	l := &liar{}
	k.Add(l)
	k.SetOracle(func(h Handle) uint64 { return uint64(l.val) })
	v := mustOracleViolation(t, func() { k.Run(10) })
	if v.comp != 0 {
		t.Errorf("violation names component %d, want 0", v.comp)
	}
	if v.cycle != 1 {
		t.Errorf("violation at cycle %d, want 1 (first parked cycle)", v.cycle)
	}
	if !strings.Contains(v.Error(), "horizon/quiescence contract violation") {
		t.Errorf("violation message %q does not name the contract", v.Error())
	}
}

// TestContractOracleCatchesLatentQuiet covers the Quiet-side lie: quiescing
// with staged work still pending.
func TestContractOracleCatchesLatentQuiet(t *testing.T) {
	k := NewKernel()
	l := &latent{}
	k.Add(l)
	k.SetOracle(func(h Handle) uint64 { return uint64(l.val) })
	v := mustOracleViolation(t, func() { k.Run(10) })
	if v.comp != 0 || v.cycle != 1 {
		t.Errorf("violation = component %d cycle %d, want component 0 cycle 1", v.comp, v.cycle)
	}
}

// TestContractOraclePassesHonestComponents is the no-false-positive side:
// honest horizons and honest quiescence run clean under the oracle, with
// the same observable results as the fast path.
func TestContractOraclePassesHonestComponents(t *testing.T) {
	k := NewKernel()
	a := &alarm{at: 30}
	q := &quiescer{pending: 3}
	ha := k.Add(a)
	hq := k.Add(q)
	k.SetOracle(func(h Handle) uint64 {
		switch h {
		case ha:
			if a.fired {
				return 1
			}
			return 0
		case hq:
			return uint64(q.pending)
		}
		return 0
	})
	k.Run(60)
	if !a.fired {
		t.Fatal("alarm did not fire under the oracle")
	}
	if q.pending != 0 {
		t.Fatal("quiescer did not drain under the oracle")
	}
}

// TestContractOracleSerialOnly pins the mode restriction: arming the oracle
// on a sharded kernel is a programming error, caught loudly.
func TestContractOracleSerialOnly(t *testing.T) {
	k := NewKernel()
	shardOf := make([]int, 8)
	for i := 0; i < 8; i++ {
		k.Add(&quiescer{pending: 1})
		shardOf[i] = i % 2
	}
	k.SetSharding(2, shardOf)
	defer k.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("SetOracle on a sharded kernel did not panic")
		}
	}()
	k.SetOracle(func(h Handle) uint64 { return 0 })
}
