package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(42).Uint64() == NewRNG(43).Uint64() {
		t.Error("adjacent seeds collide on first draw")
	}
}

func TestForkIndependence(t *testing.T) {
	base := NewRNG(1)
	r1 := base.Fork(0)
	r2 := base.Fork(1)
	same := 0
	for i := 0; i < 64; i++ {
		if r1.Uint64() == r2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("forked streams collide %d/64 times", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean %v, want ~0.5", mean)
	}
}

// TestParetoProperties checks the Pareto draw respects its minimum and,
// for alpha=1.4 (the paper's self-similar shape), produces the heavy tail
// with the expected truncated-sample mean alpha*b/(alpha-1) = 3.5*b only
// approached slowly (we just sanity-check min and heavy-tailedness).
func TestParetoProperties(t *testing.T) {
	r := NewRNG(13)
	const alpha, b = 1.4, 8.0
	const n = 200000
	over4b := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(alpha, b)
		if v < b {
			t.Fatalf("Pareto draw %v below scale %v", v, b)
		}
		if v > 4*b {
			over4b++
		}
	}
	// P(X > 4b) = 4^-alpha ~ 0.144 for alpha=1.4.
	frac := float64(over4b) / n
	if math.Abs(frac-math.Pow(4, -alpha)) > 0.01 {
		t.Errorf("tail mass beyond 4b = %v, want ~%v", frac, math.Pow(4, -alpha))
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(15)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

// counter is a Clocked that verifies two-phase semantics: Compute must see
// the value from the previous commit.
type counter struct {
	val, staged int
	t           *testing.T
	expect      int
}

func (c *counter) Compute(cycle int64) {
	if c.val != int(cycle) {
		c.t.Fatalf("cycle %d: observed %d, two-phase violated", cycle, c.val)
	}
	c.staged = c.val + 1
}
func (c *counter) Commit(cycle int64) { c.val = c.staged }

func TestKernelTwoPhase(t *testing.T) {
	k := NewKernel()
	k.Add(&counter{t: t})
	k.Add(&counter{t: t})
	k.Run(10)
	if k.Cycle() != 10 {
		t.Fatalf("cycle = %d, want 10", k.Cycle())
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	c := &counter{t: t}
	k.Add(c)
	if !k.RunUntil(func() bool { return c.val >= 5 }, 100) {
		t.Fatal("RunUntil did not satisfy")
	}
	if c.val != 5 {
		t.Fatalf("stopped at %d, want 5", c.val)
	}
	if k.RunUntil(func() bool { return false }, 20) {
		t.Fatal("RunUntil reported success at limit")
	}
}

// quiescer is a Quiescable that counts evaluations and goes quiet after
// pending units of work are done.
type quiescer struct {
	pending  int
	computes int
	commits  int
}

func (q *quiescer) Compute(cycle int64) { q.computes++ }
func (q *quiescer) Commit(cycle int64) {
	q.commits++
	if q.pending > 0 {
		q.pending--
	}
}
func (q *quiescer) Quiet() bool { return q.pending == 0 }

func TestKernelSkipsQuiescent(t *testing.T) {
	k := NewKernel()
	q := &quiescer{pending: 3}
	k.Add(q)
	k.Run(10)
	// Evaluated while pending (3 cycles); the cycle it first reports quiet
	// is the third, after which it must be skipped.
	if q.computes != 3 || q.commits != 3 {
		t.Fatalf("evaluated %d/%d times, want 3/3", q.computes, q.commits)
	}
	if k.Cycle() != 10 {
		t.Fatalf("cycle = %d, want 10 (skipping must not stall the clock)", k.Cycle())
	}
	if k.ActiveComponents() != 0 {
		t.Fatalf("%d active components, want 0", k.ActiveComponents())
	}
}

func TestKernelWakeReactivates(t *testing.T) {
	k := NewKernel()
	q := &quiescer{pending: 1}
	h := k.Add(q)
	k.Run(5) // quiet after 1 cycle
	if q.computes != 1 {
		t.Fatalf("evaluated %d times before wake, want 1", q.computes)
	}
	q.pending = 2
	k.Wake(h)
	if k.ActiveComponents() != 1 {
		t.Fatal("Wake did not re-activate")
	}
	k.Run(5)
	if q.computes != 3 {
		t.Fatalf("evaluated %d times total, want 3", q.computes)
	}
	// Waker closure and double-wake are harmless.
	k.Waker(h)()
	k.Waker(h)()
	k.Run(1)
	if q.computes != 4 {
		t.Fatalf("evaluated %d times after waker, want 4", q.computes)
	}
}

func TestKernelAlwaysActive(t *testing.T) {
	k := NewKernel()
	q := &quiescer{}
	k.Add(q)
	k.SetAlwaysActive(true)
	k.Run(10)
	if q.computes != 10 || q.commits != 10 {
		t.Fatalf("reference mode evaluated %d/%d times, want 10/10", q.computes, q.commits)
	}
}

func TestKernelNonQuiescableAlwaysRuns(t *testing.T) {
	k := NewKernel()
	c := &counter{t: t}
	q := &quiescer{}
	k.Add(c)
	k.Add(q)
	k.Run(10)
	if c.val != 10 {
		t.Fatalf("plain Clocked ran %d cycles, want 10", c.val)
	}
	if k.ActiveComponents() != 1 {
		t.Fatalf("%d active, want 1 (the non-quiescable)", k.ActiveComponents())
	}
}

// wakeDuringCommit models the link pattern: component A (registered first)
// wakes component B (registered later) during A's commit; B must be
// evaluated in the same cycle's commit phase.
type wakeTarget struct {
	quiescer
	commitCycles []int64
}

func (w *wakeTarget) Commit(cycle int64) {
	w.quiescer.Commit(cycle)
	w.commitCycles = append(w.commitCycles, cycle)
}

type wakeSource struct {
	quiescer
	wake   func()
	wakeAt int64
}

func (w *wakeSource) Commit(cycle int64) {
	w.quiescer.Commit(cycle)
	if cycle == w.wakeAt {
		w.wake()
	}
}

func TestKernelSameCycleWakeOfLaterComponent(t *testing.T) {
	k := NewKernel()
	src := &wakeSource{quiescer: quiescer{pending: 8}, wakeAt: 6}
	tgt := &wakeTarget{}
	hs := k.Add(src)
	_ = hs
	ht := k.Add(tgt)
	src.wake = k.Waker(ht)
	k.Run(10)
	// Target quiesces immediately (cycle 0), then must recommit exactly at
	// the wake cycle — same cycle, because its commit slot follows the
	// source's.
	want := []int64{0, 6}
	if len(tgt.commitCycles) != len(want) || tgt.commitCycles[0] != want[0] || tgt.commitCycles[1] != want[1] {
		t.Fatalf("target commits at %v, want %v", tgt.commitCycles, want)
	}
}
