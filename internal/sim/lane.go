package sim

// Typed dense lanes: devirtualized component iteration for the serial step.
//
// The generic step drives every component through the Clocked interface — an
// itab load and indirect call per phase per component per cycle, on objects
// scattered across the heap. A Lane replaces one contiguous run of
// registered components with a concrete-typed slice owned by the package
// that knows the element type (router, link, network interface); its walk
// methods are tight loops over that slice making direct calls, which the
// compiler can devirtualize and the CPU can predict. Hand-written per-type
// lanes are deliberate: a generics-based lane would still dispatch through a
// dictionary and devirtualize nothing.
//
// Lanes change iteration mechanics only — never semantics. The kernel keeps
// ownership of the activity flags and idle accounting, and the serial step
// interleaves lane segments with generic ranges in registration order, so
// commit-order guarantees and quiescence behavior are bit-identical to the
// all-generic walk (asserted by the lane-equivalence tests in
// internal/network). The sharded executor does not use lanes: its walk
// lists are shard-local index permutations, and the barrier costs dominate
// dispatch there.

// Lane is a typed view over the components registered at a contiguous run of
// kernel handles. Implementations hold the same objects the kernel holds,
// in registration order, and evaluate them with direct (devirtualized)
// calls.
//
// The active slice passed to the Active variants is the kernel's activity
// flags for exactly this lane's components (index i flags element i).
// ComputeActive evaluates elements whose flag is nonzero, reading each flag
// at visit time — a wake earlier in the same phase must be honored, exactly
// like the generic walk. CommitActive additionally performs the kernel's
// quiescence bookkeeping inline: after committing an active element that now
// reports quiet, it clears the element's flag and counts it, returning the
// number of elements put to sleep (the kernel adjusts its idle counter; a
// same-phase wake from a later component then re-raises the flag and the
// accounting stays balanced). Elements whose concrete type does not
// implement Quiescable must never be counted quiet.
//
// Horizoned elements extend the bookkeeping: a committed element that is
// not quiet but reports a horizon beyond the next cycle is parked exactly
// like a quiet one (flag cleared, counted in the sleep count). Lanes cannot
// reach the kernel's timing wheel, so lane-covered elements may only report
// Never or next-cycle horizons — true of every production lane (routers and
// links are not Horizoned; NIs report only Never). An element needing a
// finite timed wake must stay on the generic walk.
type Lane interface {
	// Len returns the number of components the lane covers.
	Len() int
	// ComputeAll computes every element (reference mode / fully-active fast
	// path).
	ComputeAll(cycle int64)
	// CommitAll commits every element with no quiescence bookkeeping
	// (reference mode).
	CommitAll(cycle int64)
	// ComputeActive computes elements with a nonzero activity flag.
	ComputeActive(cycle int64, active []uint32)
	// CommitActive commits active elements, clears the flags of those that
	// went quiet, and returns how many it put to sleep.
	CommitActive(cycle int64, active []uint32) int
}

// laneSeg is one bound lane and the handle range it covers.
type laneSeg struct {
	start, end int
	lane       Lane
}

// BindLane installs a typed lane over the components registered at handles
// [start, start+lane.Len()). The lane must hold those same components in the
// same order; the kernel cannot verify object identity, so a mismatched
// binding silently diverges — bind only slices captured at registration
// time. Lanes may not overlap, must be bound before the first Step, and are
// a serial-path optimization: binding on a sharded kernel panics (shard walk
// lists are index permutations a contiguous lane cannot serve).
func (k *Kernel) BindLane(start Handle, lane Lane) {
	if k.stepping {
		panic("sim: BindLane called during Step")
	}
	if k.sh != nil {
		panic("sim: BindLane on a sharded kernel")
	}
	n := lane.Len()
	if n == 0 {
		return
	}
	s, e := int(start), int(start)+n
	if s < 0 || e > len(k.components) {
		panic("sim: BindLane range outside registered components")
	}
	at := len(k.lanes)
	for i, seg := range k.lanes {
		if s < seg.end && seg.start < e {
			panic("sim: BindLane ranges overlap")
		}
		if s < seg.start {
			at = i
			break
		}
	}
	k.lanes = append(k.lanes, laneSeg{})
	copy(k.lanes[at+1:], k.lanes[at:])
	k.lanes[at] = laneSeg{start: s, end: e, lane: lane}
}

// Reserve pre-sizes the registration slices for n additional components, so
// a network that knows its component count up front registers everything
// with zero slice growth.
func (k *Kernel) Reserve(n int) {
	if need := len(k.components) + n; need > cap(k.components) {
		components := make([]Clocked, len(k.components), need)
		copy(components, k.components)
		k.components = components
		quiesc := make([]Quiescable, len(k.quiesc), need)
		copy(quiesc, k.quiesc)
		k.quiesc = quiesc
		hzn := make([]Horizoned, len(k.hzn), need)
		copy(hzn, k.hzn)
		k.hzn = hzn
		active := make([]uint32, len(k.active), need)
		copy(active, k.active)
		k.active = active
		words := make([]uint64, len(k.actWords), (need+63)/64)
		copy(words, k.actWords)
		k.actWords = words
	}
}

// walkCompute runs the compute phase in registration order, interleaving
// lane segments with generic ranges. all selects the everything-active fast
// path (no flag checks).
func (k *Kernel) walkCompute(all bool) {
	cycle := k.cycle
	i := 0
	for _, seg := range k.lanes {
		if all {
			for ; i < seg.start; i++ {
				k.components[i].Compute(cycle)
			}
			seg.lane.ComputeAll(cycle)
		} else {
			for ; i < seg.start; i++ {
				if k.active[i] != 0 {
					k.components[i].Compute(cycle)
				}
			}
			seg.lane.ComputeActive(cycle, k.active[seg.start:seg.end])
		}
		i = seg.end
	}
	if all {
		for ; i < len(k.components); i++ {
			k.components[i].Compute(cycle)
		}
	} else {
		for ; i < len(k.components); i++ {
			if k.active[i] != 0 {
				k.components[i].Compute(cycle)
			}
		}
	}
}

// walkCommitAll runs the reference-mode commit phase: every component, no
// quiescence bookkeeping.
func (k *Kernel) walkCommitAll() {
	cycle := k.cycle
	i := 0
	for _, seg := range k.lanes {
		for ; i < seg.start; i++ {
			k.components[i].Commit(cycle)
		}
		seg.lane.CommitAll(cycle)
		i = seg.end
	}
	for ; i < len(k.components); i++ {
		k.components[i].Commit(cycle)
	}
}

// walkCommitQuiesce runs the commit phase with quiescence bookkeeping. all
// skips the flag checks (everything is known active); quiet components drop
// out of the active set either way.
func (k *Kernel) walkCommitQuiesce(all bool) {
	cycle := k.cycle
	i := 0
	for _, seg := range k.lanes {
		for ; i < seg.start; i++ {
			k.commitOne(i, cycle, all)
		}
		k.idle += seg.lane.CommitActive(cycle, k.active[seg.start:seg.end])
		i = seg.end
	}
	for ; i < len(k.components); i++ {
		k.commitOne(i, cycle, all)
	}
}

// commitOne is the generic-path commit of component i with quiet tracking
// and horizon parking: a non-quiet component whose reported horizon lies
// beyond the next cycle is dropped from the active set like a quiet one,
// with a timed wake filed for finite horizons (Never parks on the external
// Wake edge alone).
func (k *Kernel) commitOne(i int, cycle int64, all bool) {
	if !all && k.active[i] == 0 {
		return
	}
	k.components[i].Commit(cycle)
	if q := k.quiesc[i]; q != nil && q.Quiet() {
		k.active[i] = 0
		k.idle++
		return
	}
	if hz := k.hzn[i]; hz != nil {
		if at := hz.Horizon(cycle); at > cycle+1 {
			k.active[i] = 0
			k.idle++
			if at != Never {
				k.wheel.schedule(at, Handle(i))
			}
		}
	}
}
