// Package sim provides the deterministic simulation substrate shared by all
// experiments: a reproducible random-number generator and a synchronous
// two-phase clock kernel.
//
// Everything in the simulator is deterministic given a seed; no global RNG
// state is used, so concurrent experiments never perturb each other.
package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator based on
// SplitMix64 (Steele, Lea & Flood, OOPSLA 2014). It is not cryptographically
// secure; it exists so simulations are exactly reproducible from a seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent generator from r's current state and the given
// stream identifier. Forking with distinct ids yields decorrelated streams,
// which lets each traffic source own a private generator.
func (r *RNG) Fork(id uint64) *RNG {
	// Mix the id through one SplitMix64 round so that consecutive ids do not
	// produce correlated seeds.
	return NewRNG(r.Uint64() ^ mix64(id+0x9e3779b97f4a7c15))
}

// State returns the generator's internal state word, for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's internal state word, restoring a
// stream captured with State to the exact same position.
func (r *RNG) SetState(s uint64) { r.state = s }

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method would remove modulo bias
	// entirely; for the n values used here (<= thousands) the bias of the
	// simple reduction is far below measurement noise, but we reject anyway
	// to keep the generator exact.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Pareto draws from a Pareto distribution with shape alpha and minimum b
// (both > 0). Used by the self-similar traffic source (alpha = 1.4, b = 8 in
// the paper's configuration).
func (r *RNG) Pareto(alpha, b float64) float64 {
	if alpha <= 0 || b <= 0 {
		panic("sim: Pareto requires positive shape and scale")
	}
	u := r.Float64()
	// Invert the CDF: F(x) = 1 - (b/x)^alpha. Guard u == 0 which would give
	// +Inf through the 1/(1-u) path.
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return b / math.Pow(1-u, 1/alpha)
}

// Exp draws from an exponential distribution with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
