package router

import (
	"testing"

	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/routing"
)

// testbench drives a single router in isolation with full control over
// flit arrival cycles, reproducing the paper's timing diagrams.
type testbench struct {
	r       Router
	in      [noc.NumPorts]*noc.Link
	out     [noc.NumPorts]*noc.Link
	sinks   [noc.NumPorts]*recorder
	counter *power.Counters
	cycle   int64
}

type arrival struct {
	f     *noc.Flit
	cycle int64
}

type recorder struct{ got []arrival }

func (r *recorder) Receive(f *noc.Flit, cycle int64) {
	r.got = append(r.got, arrival{f, cycle})
}

// newBench builds a router at the center of a 3x3 mesh with every port
// wired: inputs from the bench, outputs into recorders.
func newBench(arch Arch) *testbench {
	topo := noc.Topology{Width: 3, Height: 3}
	tb := &testbench{counter: &power.Counters{}}
	tb.r = New(Config{
		Arch:        arch,
		Node:        4, // center
		Routes:      routing.NewTable(topo),
		BufferDepth: 4,
		Counters:    tb.counter,
	})
	for p := noc.Port(0); p < noc.NumPorts; p++ {
		in := noc.NewLink(tb.r.InputReceiver(p), 4)
		tb.r.SetInputLink(p, in)
		tb.in[p] = in
		tb.sinks[p] = &recorder{}
		out := noc.NewLink(tb.sinks[p], 64)
		tb.r.SetOutputLink(p, out)
		tb.out[p] = out
	}
	return tb
}

// step sends the scheduled flits (arriving next cycle) and advances one
// cycle.
func (tb *testbench) step(sends map[noc.Port]*noc.Flit) {
	for p, f := range sends {
		tb.in[p].Send(f)
	}
	tb.r.Compute(tb.cycle)
	tb.r.Commit(tb.cycle)
	for p := noc.Port(0); p < noc.NumPorts; p++ {
		tb.in[p].Commit(tb.cycle)
		tb.out[p].Commit(tb.cycle)
	}
	tb.cycle++
}

// run advances n idle cycles.
func (tb *testbench) run(n int) {
	for i := 0; i < n; i++ {
		tb.step(nil)
	}
}

// single builds a single-flit packet destined East of the center node
// (node 4 -> node 5 on the 3x3 mesh).
func single(id uint64) *noc.Flit {
	return noc.NewFlit(noc.NewPacket(id, 3, 5, 1, 0, 0), 0)
}

// eastArrivals extracts (packetID or 0 for encoded, cycle) pairs from the
// East sink.
func (tb *testbench) eastArrivals() []arrival { return tb.sinks[noc.East].got }

// The Figure 7 stimulus: A arrives on one port (visible cycle 1), then B
// and C arrive on two other ports simultaneously (visible cycle 3), all
// destined for the same output. The paper's §3.2 walks each architecture
// through it.
func runFigure7(t *testing.T, arch Arch) []arrival {
	t.Helper()
	tb := newBench(arch)
	fA, fB, fC := single(1), single(2), single(3)
	tb.step(map[noc.Port]*noc.Flit{noc.West: fA}) // A visible at cycle 1
	tb.step(nil)                                  // cycle 1: A traverses
	tb.step(map[noc.Port]*noc.Flit{noc.North: fB, // B, C visible at cycle 3
		noc.South: fC})
	tb.run(8)
	return tb.eastArrivals()
}

// TestFigure7NonSpec: the sequential router forwards a packet every cycle
// under contention: A@1, B@3, C@4.
func TestFigure7NonSpec(t *testing.T) {
	got := runFigure7(t, NonSpec)
	if len(got) != 3 {
		t.Fatalf("delivered %d flits, want 3", len(got))
	}
	check := []struct {
		id    uint64
		cycle int64
	}{{1, 1}, {2, 3}, {3, 4}}
	for i, want := range check {
		if got[i].f.Packet.ID != want.id || got[i].cycle != want.cycle {
			t.Errorf("arrival %d: %v@%d, want pkt%d@%d", i, got[i].f, got[i].cycle, want.id, want.cycle)
		}
	}
}

// TestFigure7SpecAccurate: contention wastes cycle 3 (invalid link drive),
// B is pre-scheduled for cycle 4, and the accurate Switch-Next schedules C
// for the following cycle: A@1, B@4, C@5.
func TestFigure7SpecAccurate(t *testing.T) {
	got := runFigure7(t, SpecAccurate)
	if len(got) != 3 {
		t.Fatalf("delivered %d flits, want 3", len(got))
	}
	check := []struct {
		id    uint64
		cycle int64
	}{{1, 1}, {2, 4}, {3, 5}}
	for i, want := range check {
		if got[i].f.Packet.ID != want.id || got[i].cycle != want.cycle {
			t.Errorf("arrival %d: %v@%d, want pkt%d@%d", i, got[i].f, got[i].cycle, want.id, want.cycle)
		}
	}
}

// TestFigure7SpecFast: like Spec-Accurate but the pass-through Switch-Next
// re-reserves the switch for B's input on cycle 5 — an unnecessary
// reservation that wastes the cycle — so C arrives only at cycle 6
// ("the Spec-Fast router incurs an additional wasted cycle", §3.2).
func TestFigure7SpecFast(t *testing.T) {
	tb := newBench(SpecFast)
	fA, fB, fC := single(1), single(2), single(3)
	tb.step(map[noc.Port]*noc.Flit{noc.West: fA})
	tb.step(nil)
	tb.step(map[noc.Port]*noc.Flit{noc.North: fB, noc.South: fC})
	tb.run(8)
	got := tb.eastArrivals()
	if len(got) != 3 {
		t.Fatalf("delivered %d flits, want 3", len(got))
	}
	check := []struct {
		id    uint64
		cycle int64
	}{{1, 1}, {2, 4}, {3, 6}}
	for i, want := range check {
		if got[i].f.Packet.ID != want.id || got[i].cycle != want.cycle {
			t.Errorf("arrival %d: %v@%d, want pkt%d@%d", i, got[i].f, got[i].cycle, want.id, want.cycle)
		}
	}
	// Two wasted output cycles: the collision at 3 and the unnecessary
	// reservation at 5; only the collision drives the channel.
	if tb.counter.LinkInvalid != 1 {
		t.Errorf("invalid link drives = %d, want 1", tb.counter.LinkInvalid)
	}
	if tb.counter.WastedCycles != 2 {
		t.Errorf("wasted cycles = %d, want 2", tb.counter.WastedCycles)
	}
}

// TestFigure7NoX: the collision cycle itself is productive — the channel
// carries B^C (encoded) at cycle 3 and C at cycle 4; with Figure 2's
// arbitration order, B's buffer is freed at the collision cycle.
func TestFigure7NoX(t *testing.T) {
	got := runFigure7(t, NoX)
	if len(got) != 3 {
		t.Fatalf("delivered %d wire flits, want 3", len(got))
	}
	if got[0].f.Packet.ID != 1 || got[0].cycle != 1 || got[0].f.Encoded {
		t.Errorf("arrival 0: %v@%d, want raw A@1", got[0].f, got[0].cycle)
	}
	if !got[1].f.Encoded || got[1].cycle != 3 {
		t.Errorf("arrival 1: %v@%d, want encoded B^C@3", got[1].f, got[1].cycle)
	}
	if got[1].f.Raw != single(2).Raw^single(3).Raw {
		// Note: flit payloads are a pure function of packet identity, so
		// rebuilt flits have identical words.
		t.Errorf("encoded image mismatch")
	}
	if got[2].f.Encoded || got[2].cycle != 4 {
		t.Errorf("arrival 2: %v@%d, want raw loser@4", got[2].f, got[2].cycle)
	}
}

// TestNoXOutperformsSpecUnderContention distills §3.2's efficiency ranking
// on this stimulus: last-delivery cycle NonSpec = NoX = 4 < SpecAccurate =
// 5 < SpecFast = 6.
func TestNoXOutperformsSpecUnderContention(t *testing.T) {
	last := map[Arch]int64{}
	for _, arch := range Archs {
		got := runFigure7(t, arch)
		last[arch] = got[len(got)-1].cycle
	}
	if !(last[NonSpec] == 4 && last[NoX] == 4 && last[SpecAccurate] == 5 && last[SpecFast] == 6) {
		t.Errorf("completion cycles %v, want NonSpec=NoX=4 < SpecAccurate=5 < SpecFast=6", last)
	}
}

// TestSpecFastNoStarvation checks the newly-exposed-packet fairness rule
// does its job: with a continuous stream on one input, a packet on another
// input still gets through.
func TestSpecFastNoStarvation(t *testing.T) {
	tb := newBench(SpecFast)
	var id uint64 = 10
	// Continuous stream on West; single victim packet on North.
	victim := single(9)
	tb.step(map[noc.Port]*noc.Flit{noc.West: single(id), noc.North: victim})
	for i := 0; i < 30; i++ {
		id++
		sends := map[noc.Port]*noc.Flit{}
		if tb.in[noc.West].Credits() > 0 {
			sends[noc.West] = single(id)
		}
		tb.step(sends)
	}
	for _, a := range tb.eastArrivals() {
		if a.f.Packet.ID == 9 {
			return
		}
	}
	t.Error("victim packet starved behind a continuous stream")
}

// TestWormholeContiguity checks every architecture transmits a multi-flit
// packet's flits contiguously on the output channel even under competing
// single-flit traffic.
func TestWormholeContiguity(t *testing.T) {
	for _, arch := range Archs {
		t.Run(arch.String(), func(t *testing.T) {
			tb := newBench(arch)
			data := noc.NewPacket(100, 3, 5, 4, 0, 0)
			ctrl := single(101)
			// Data head + competitor arrive together; body flits stream in.
			tb.step(map[noc.Port]*noc.Flit{noc.West: noc.NewFlit(data, 0), noc.North: ctrl})
			for seq := 1; seq < 4; seq++ {
				tb.step(map[noc.Port]*noc.Flit{noc.West: noc.NewFlit(data, seq)})
			}
			tb.run(10)
			var dataCycles []int64
			for _, a := range tb.eastArrivals() {
				if !a.f.Encoded && a.f.Packet.ID == 100 {
					dataCycles = append(dataCycles, a.cycle)
				}
			}
			if len(dataCycles) != 4 {
				t.Fatalf("data packet delivered %d/4 flits", len(dataCycles))
			}
			for i := 1; i < len(dataCycles); i++ {
				if dataCycles[i] != dataCycles[i-1]+1 {
					t.Fatalf("data flits not contiguous: %v", dataCycles)
				}
			}
		})
	}
}

// TestBackpressure verifies no architecture overruns a stalled output:
// with zero downstream credits nothing is sent, and traffic resumes when
// credits return.
func TestBackpressure(t *testing.T) {
	for _, arch := range Archs {
		t.Run(arch.String(), func(t *testing.T) {
			tb := newBench(arch)
			// Saturate the East output link's credits with a blocked sink:
			// rebuild the East link with 1 credit and do not return it.
			blocked := &recorder{}
			l := noc.NewLink(blocked, 1)
			tb.r.SetOutputLink(noc.East, l)
			tb.out[noc.East] = l

			tb.step(map[noc.Port]*noc.Flit{noc.West: single(1)})
			tb.step(map[noc.Port]*noc.Flit{noc.West: single(2)})
			tb.run(6)
			if len(blocked.got) != 1 {
				t.Fatalf("sent %d flits into a 1-credit link", len(blocked.got))
			}
			// Return the credit; the second packet must flow.
			l.ReturnCredit()
			tb.run(4)
			if len(blocked.got) != 2 {
				t.Fatalf("stalled flit never resumed: %d delivered", len(blocked.got))
			}
		})
	}
}
