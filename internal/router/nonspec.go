package router

import (
	"math/bits"

	"repro/internal/arbiter"
	"repro/internal/buffer"
	"repro/internal/noc"
)

// nonspecRouter is the canonical sequential baseline of §3.1.1: switch
// arbitration and switch traversal execute back-to-back within one long
// clock cycle (0.92 ns, Table 2), with lookahead route computation
// overlapped. Outputs are productive every cycle regardless of internal
// contention — the architecture trades clock period for efficiency.
type nonspecRouter struct {
	base
	// in is a value slab; its FIFO rings are carved from one shared slot slab.
	in   []buffer.FIFO
	arb  []arbiter.Arbiter
	lock []int

	// staged actions
	pops     []bool
	lockNext []int

	// per-cycle scratch
	req  []uint32
	head []*noc.Flit
	// touched is the dirty-output mask of the current cycle: outputs with at
	// least one requester, i.e. the only ones whose lockNext Compute wrote.
	// Commit applies exactly these — a requestless output's lock is held by
	// not touching it at all.
	touched uint32
}

func newNonSpec(cfg Config) *nonspecRouter {
	s := cfg.Slabs
	r := &s.nonspecs.take(1, s.chunk)[0]
	r.init(cfg)
	n := r.ports
	r.in = s.fifos.take(n, s.chunk)
	r.arb = s.arbIfs.take(n, s.chunk)
	ints := s.ints.take(2*n, s.chunk)
	r.lock = ints[:n:n]
	r.lockNext = ints[n:]
	r.pops = s.bools.take(n, s.chunk)
	r.req = s.uint32s.take(n, s.chunk)
	r.head = s.flits.take(n, s.chunk)
	sl := buffer.SlotsFor(cfg.BufferDepth)
	slots := s.flits.take(n*sl, s.chunk)
	arb := arbMaker(&cfg, n)
	for p := range r.in {
		r.in[p].Init(cfg.BufferDepth, slots[p*sl:(p+1)*sl:(p+1)*sl])
		r.arb[p] = arb(p)
		r.lock[p] = -1
	}
	r.initReceivers(r)
	return r
}

func (r *nonspecRouter) receive(p noc.Port, f *noc.Flit, cycle int64) {
	if f.Encoded {
		panic("router: non-speculative router received an encoded flit")
	}
	if r.overflow(p, f, cycle, r.in[p].Free()) {
		return
	}
	f.OutPort = r.route(f.Packet.Dst)
	r.in[p].Push(f)
	r.counters().BufWrite++
	if pr := r.probe(); pr != nil {
		pr.BufWrite(cycle, r.node(), int(p), f.Packet.ID, f.Seq)
	}
}

// BufferedFlits returns the number of flits held in input FIFOs.
func (r *nonspecRouter) BufferedFlits() int {
	n := 0
	for _, q := range r.in {
		n += q.Len()
	}
	return n
}

// PortStates implements Router: input FIFO occupancy plus the matching
// output's wormhole lock and link credits.
func (r *nonspecRouter) PortStates(buf []PortState) []PortState {
	for p := 0; p < r.ports; p++ {
		ps := PortState{Buffered: r.in[p].Len(), OutMode: -1, OutLock: -1, OutCredits: -1}
		if r.outLink[p] != nil {
			ps.OutLock = r.lock[p]
			ps.OutCredits = r.outLink[p].Credits()
		}
		buf = append(buf, ps)
	}
	return buf
}

// Quiet implements sim.Quiescable: with every input FIFO empty the router
// stages nothing and changes nothing. Output locks may outlive the local
// buffers (upstream bubble inside a wormhole packet) but are held, not
// mutated, by empty cycles; the arrival that ends the bubble re-activates
// the router through its input link's wake.
func (r *nonspecRouter) Quiet() bool {
	for _, q := range r.in {
		if q.Len() != 0 {
			return false
		}
	}
	return true
}

// Flush implements Router: drains every input FIFO through drop and clears
// all wormhole locks and staged actions.
func (r *nonspecRouter) Flush(drop func(*noc.Flit)) {
	for p := range r.in {
		r.dropAll(&r.in[p], drop)
		r.lock[p] = -1
		r.pops[p] = false
	}
	r.touched = 0
}

// Compute arbitrates each output and traverses the winner in the same cycle.
func (r *nonspecRouter) Compute(cycle int64) {
	c := r.counters()
	pr := r.probe()

	// Gather requests per output from the input FIFO heads.
	req, head := r.req, r.head
	for i := range req {
		req[i] = 0
		head[i] = nil
	}
	for i := range r.in {
		f := r.in[i].Head()
		if f == nil {
			continue
		}
		head[i] = f
		if r.outLink[f.OutPort] == nil {
			panic("router: flit routed to unwired output")
		}
		req[f.OutPort] |= 1 << i
	}

	r.touched = 0
	for o := noc.Port(0); o < noc.Port(r.ports); o++ {
		link := r.outLink[o]
		if link == nil || req[o] == 0 {
			continue
		}
		r.touched |= 1 << uint(o)
		r.lockNext[o] = r.lock[o]
		if !link.Ready(cycle) {
			if pr != nil {
				pr.CreditStall(cycle, r.node(), int(o))
			}
			continue // backpressure (or injected stall): output stalls, lock holds
		}

		var winner int
		if owner := r.lock[o]; owner >= 0 {
			// Wormhole continuation: the output belongs to a multi-flit
			// packet until its tail passes.
			if req[o]&(1<<owner) == 0 {
				continue // upstream bubble inside the packet
			}
			winner = owner
		} else {
			w, ok := r.arb[o].Grant(req[o])
			if !ok {
				continue
			}
			c.Arb++
			winner = w
		}

		f := head[winner]
		if f.MultiFlit() {
			if f.Seq == 0 {
				r.lockNext[o] = winner
			}
			if f.Tail() {
				r.lockNext[o] = -1
			}
		}
		link.Send(f)
		r.pops[winner] = true
		c.Xbar++
		c.LinkFlit++
		c.OutputActive++
		if pr != nil {
			pr.Traverse(cycle, r.node(), int(o), f.Packet.ID, f.Seq)
		}
	}
}

// Commit pops the traversed flits and returns their credits upstream.
func (r *nonspecRouter) Commit(cycle int64) {
	c := r.counters()
	pr := r.probe()
	for i := range r.in {
		if r.pops[i] {
			r.pops[i] = false
			r.in[i].Pop()
			c.BufRead++
			if pr != nil {
				pr.BufRead(cycle, r.node(), i, 1)
			}
			r.returnCredits(noc.Port(i), 1)
		}
	}
	for m := r.touched; m != 0; m &= m - 1 {
		o := bits.TrailingZeros32(m)
		r.lock[o] = r.lockNext[o]
	}
	if pr != nil {
		pr.Occupancy(r.node(), r.BufferedFlits())
	}
}
