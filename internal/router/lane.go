package router

import "repro/internal/sim"

// NewLane groups routers into a typed dispatch lane for the kernel's serial
// step (sim.BindLane): a concrete-typed slice whose walk loops make direct,
// devirtualizable calls instead of per-component interface dispatch. The
// routers must all be one concrete architecture (a network's always are —
// SpecFast and SpecAccurate share one implementation) and must be passed in
// their kernel registration order.
func NewLane(rs []Router) sim.Lane {
	if len(rs) == 0 {
		panic("router: NewLane of no routers")
	}
	switch rs[0].(type) {
	case *noxRouter:
		l := make(noxLane, len(rs))
		for i, r := range rs {
			l[i] = r.(*noxRouter)
		}
		return l
	case *specRouter:
		l := make(specLane, len(rs))
		for i, r := range rs {
			l[i] = r.(*specRouter)
		}
		return l
	case *nonspecRouter:
		l := make(nonspecLane, len(rs))
		for i, r := range rs {
			l[i] = r.(*nonspecRouter)
		}
		return l
	default:
		panic("router: NewLane of unknown router type")
	}
}

// The three lanes are hand-written rather than generic on purpose: a
// generics-based lane dispatches through a dictionary for pointer type
// parameters and devirtualizes nothing.

type noxLane []*noxRouter

func (l noxLane) Len() int { return len(l) }

func (l noxLane) ComputeAll(cycle int64) {
	for _, r := range l {
		r.Compute(cycle)
	}
}

func (l noxLane) CommitAll(cycle int64) {
	for _, r := range l {
		r.Commit(cycle)
	}
}

func (l noxLane) ComputeActive(cycle int64, active []uint32) {
	for i, r := range l {
		if active[i] != 0 {
			r.Compute(cycle)
		}
	}
}

func (l noxLane) CommitActive(cycle int64, active []uint32) int {
	quiets := 0
	for i, r := range l {
		if active[i] == 0 {
			continue
		}
		r.Commit(cycle)
		if r.Quiet() {
			active[i] = 0
			quiets++
		}
	}
	return quiets
}

type specLane []*specRouter

func (l specLane) Len() int { return len(l) }

func (l specLane) ComputeAll(cycle int64) {
	for _, r := range l {
		r.Compute(cycle)
	}
}

func (l specLane) CommitAll(cycle int64) {
	for _, r := range l {
		r.Commit(cycle)
	}
}

func (l specLane) ComputeActive(cycle int64, active []uint32) {
	for i, r := range l {
		if active[i] != 0 {
			r.Compute(cycle)
		}
	}
}

func (l specLane) CommitActive(cycle int64, active []uint32) int {
	quiets := 0
	for i, r := range l {
		if active[i] == 0 {
			continue
		}
		r.Commit(cycle)
		if r.Quiet() {
			active[i] = 0
			quiets++
		}
	}
	return quiets
}

type nonspecLane []*nonspecRouter

func (l nonspecLane) Len() int { return len(l) }

func (l nonspecLane) ComputeAll(cycle int64) {
	for _, r := range l {
		r.Compute(cycle)
	}
}

func (l nonspecLane) CommitAll(cycle int64) {
	for _, r := range l {
		r.Commit(cycle)
	}
}

func (l nonspecLane) ComputeActive(cycle int64, active []uint32) {
	for i, r := range l {
		if active[i] != 0 {
			r.Compute(cycle)
		}
	}
}

func (l nonspecLane) CommitActive(cycle int64, active []uint32) int {
	quiets := 0
	for i, r := range l {
		if active[i] == 0 {
			continue
		}
		r.Commit(cycle)
		if r.Quiet() {
			active[i] = 0
			quiets++
		}
	}
	return quiets
}
