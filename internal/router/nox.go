package router

import (
	"math/bits"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/routing"
)

// noxRouter composes internal/core's input ports and output controls into
// the full NoX router of §2: an XOR-based switch with precomputed input
// gating, output arbiters run in parallel with traversal, and input-port
// decode circuitry. Under contention it transmits encoded superpositions
// productively instead of wasting cycles, freeing one winner's buffer per
// cycle; the downstream ports (and the ejection interface) decode by XORing
// contiguously received flits.
type noxRouter struct {
	base
	// in and ctl are value slabs: one allocation each for the router's whole
	// port complement, with FIFO rings carved from a shared slot slab.
	in  []core.InputPort
	ctl []core.OutputControl

	// offers is per-cycle scratch, flattened [output*ports + input]. Rows are
	// zeroed by the output loop right after use, so only rows actually
	// written this cycle are ever touched (part of the dirty-port walk).
	offers []*noc.Flit
	// decoded is per-cycle scratch: decoded[i] reports input i's current
	// offer came through the decode path (probe instrumentation; written
	// only when a probe is attached).
	decoded []bool

	// Port-granular dirty masks (event-horizon kernel). inBusy has a bit per
	// input holding undrained work (set on receive, cleared at Commit once
	// FIFO and decode register are empty); outBusy a bit per wired output
	// whose control logic is away from its rest state (recomputed at Commit
	// from ctl.Idle). Compute offers only dirty inputs and decides only
	// outputs that are offered to or busy — OutputControl.Idle documents that
	// skipping an idle output's evaluation is unobservable. decided records
	// the outputs Decide ran for this cycle, so Commit commits exactly those
	// (OutputControl.Commit requires a same-cycle Decide). Masks start and
	// restore conservatively full; the first evaluation trims them.
	inBusy  uint32
	outBusy uint32
	decided uint32
}

// allPorts returns the n-bit all-ones dirty mask.
func allPorts(n int) uint32 { return uint32(uint64(1)<<uint(n) - 1) }

func newNoX(cfg Config) *noxRouter {
	s := cfg.Slabs
	r := &s.noxes.take(1, s.chunk)[0]
	r.init(cfg)
	n := r.ports
	r.in = s.inPorts.take(n, s.chunk)
	r.ctl = s.ctls.take(n, s.chunk)
	r.offers = s.flits.take(n*n, s.chunk)
	r.decoded = s.bools.take(n, s.chunk)
	sl := buffer.SlotsFor(cfg.BufferDepth)
	slots := s.flits.take(n*sl, s.chunk)
	arb := arbMaker(&cfg, n)
	colliders := s.flits.take(n*n, s.chunk)
	for p := 0; p < n; p++ {
		r.in[p].Init(cfg.BufferDepth, slots[p*sl:(p+1)*sl:(p+1)*sl], r.row, cfg.Arena)
		r.ctl[p].Init(n, arb(p), cfg.Arena, colliders[p*n:p*n:(p+1)*n])
		if cfg.Check != nil {
			// Armed: decode corruption and orphan bodies become reported
			// violations instead of panics (injected faults make both
			// legitimately reachable).
			r.in[p].SetLenient(true)
			r.ctl[p].SetLenient(true)
		}
	}
	r.inBusy, r.outBusy = allPorts(n), allPorts(n)
	r.initReceivers(r)
	return r
}

func (r *noxRouter) receive(p noc.Port, f *noc.Flit, cycle int64) {
	if r.overflow(p, f, cycle, r.in[p].Free()) {
		return
	}
	r.inBusy |= 1 << uint(p)
	r.in[p].Receive(f)
	r.counters().BufWrite++
	if pr := r.probe(); pr != nil {
		arg, seq := flitTraceID(f)
		pr.BufWrite(cycle, r.node(), int(p), arg, seq)
	}
}

// BufferedFlits returns the flits held in input FIFOs and decode registers.
func (r *noxRouter) BufferedFlits() int {
	n := 0
	for _, ip := range r.in {
		n += ip.Buffered()
		if ip.RegisterBusy() {
			n++
		}
	}
	return n
}

// PortStates implements Router: input FIFO/register occupancy plus the
// matching output's mode, wormhole lock, and link credits.
func (r *noxRouter) PortStates(buf []PortState) []PortState {
	for p := 0; p < r.ports; p++ {
		ps := PortState{
			Buffered: r.in[p].Buffered(),
			Register: r.in[p].RegisterBusy(),
			OutMode:  -1, OutLock: -1, OutCredits: -1,
		}
		if r.outLink[p] != nil {
			ps.OutMode = int(r.ctl[p].Mode())
			ps.OutLock = r.ctl[p].Locked()
			ps.OutCredits = r.outLink[p].Credits()
		}
		buf = append(buf, ps)
	}
	return buf
}

// Quiet implements sim.Quiescable: every input port fully drained (FIFO and
// decode register) and every wired output's control logic back in its rest
// state. The rest-state requirement matters because an empty evaluation
// re-arms narrowed masks and Scheduled-mode state; the router must perform
// that re-arm cycle before sleeping, or a post-idle arrival would face
// stale masks.
func (r *noxRouter) Quiet() bool {
	for _, ip := range r.in {
		if ip.Buffered() != 0 || ip.RegisterBusy() {
			return false
		}
	}
	for o, ctl := range r.ctl {
		if r.outLink[o] != nil && !ctl.Idle() {
			return false
		}
	}
	return true
}

// Flush implements Router: tears down every input port (FIFO, decode
// register, poison) through drop and forces every output's control logic
// back to its rest state. Constituents of encoded flits leak by design
// (see core.InputPort.Flush); the caller marks the run leaky.
func (r *noxRouter) Flush(drop func(*noc.Flit)) {
	n := r.ports
	for p := 0; p < n; p++ {
		r.in[p].Flush(drop)
		r.ctl[p].Reset()
	}
	r.inBusy, r.outBusy = allPorts(n), allPorts(n)
	r.decided = 0
}

// Reroute overrides base.Reroute: the NoX input ports hold their own
// reference to the route-table row, repointed alongside the base's.
func (r *noxRouter) Reroute(routes *routing.Table) {
	r.base.Reroute(routes)
	for p := range r.in {
		r.in[p].SetRow(r.row)
	}
}

// Compute presents each input port's offer to the XOR switch and lets every
// output's arbitration-and-masking logic decide.
func (r *noxRouter) Compute(cycle int64) {
	c := r.counters()
	pr := r.probe()

	// Each input presents at most one flit; group presentations by their
	// lookahead output port. Only dirty inputs can hold one (a clean input's
	// Offer is a guaranteed miss).
	n := r.ports
	offers := r.offers
	var offered uint32
	for m := r.inBusy; m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		f, decoded, ok := r.in[i].Offer()
		if !ok {
			continue
		}
		if pr != nil {
			r.decoded[i] = decoded
		}
		if r.outLink[f.OutPort] == nil {
			panic("router: flit routed to unwired output")
		}
		offers[int(f.OutPort)*n+i] = f
		offered |= 1 << uint(f.OutPort)
	}

	r.decided = 0
	visit := offered | r.outBusy
	for o := noc.Port(0); o < noc.Port(r.ports); o++ {
		link := r.outLink[o]
		if link == nil || visit&(1<<uint(o)) == 0 {
			continue
		}
		r.decided |= 1 << uint(o)
		row := offers[int(o)*n : int(o)*n+n]
		d := r.ctl[o].Decide(row, link.Ready(cycle))
		if d.Out != nil {
			link.Send(d.Out)
			c.Xbar++
			c.LinkFlit++
			c.OutputActive++
			if d.Out.Encoded {
				c.EncodedFlits++
			}
			if pr != nil {
				arg, seq := flitTraceID(d.Out)
				pr.Traverse(cycle, r.node(), int(o), arg, seq)
			}
		}
		if d.Invalid {
			// Multi-flit abort: the channel carries an indeterminate value
			// this cycle (§2.7) — same energy, no information.
			c.LinkInvalid++
			c.WastedCycles++
			c.Aborts++
			if pr != nil {
				pr.Abort(cycle, r.node(), int(o), d.Granted)
			}
			if ck := r.cfg.Check; ck != nil && r.ctl[o].StagedMode() != core.Scheduled {
				// §2.7: an abort must force Scheduled mode until the
				// aborted packet's tail passes.
				ck.Mode(cycle, r.node(), int(o), "multi-flit abort did not stage Scheduled mode")
			}
		}
		if d.Collided && !d.Invalid {
			c.Collisions++
			// The encoded output absorbed every collider's presentation;
			// their objects now belong to the superposition's constituent
			// set (arena lifetime tracking in core.InputPort).
			for m := d.ColliderMask; m != 0; m &= m - 1 {
				r.in[bits.TrailingZeros32(m)].OfferAbsorbed()
			}
			if pr != nil {
				pr.Collision(cycle, r.node(), int(o), int(d.Colliders), d.Out.Raw)
			}
		}
		if d.Arbitrated {
			c.Arb++
		}
		if d.Stalled && pr != nil {
			pr.CreditStall(cycle, r.node(), int(o))
		}
		if d.Serviced >= 0 {
			r.in[d.Serviced].Service()
			if pr != nil && r.decoded[d.Serviced] {
				// The serviced presentation came out of the decode path: a
				// Recovery decode recovered this flit from register XOR head.
				pr.Decode(cycle, r.node(), d.Serviced, row[d.Serviced].Packet.ID)
			}
		}
		// Zero the consumed row in place of the old whole-array clear, so
		// cost scales with rows touched, not radix squared.
		for i := range row {
			row[i] = nil
		}
	}
}

// Commit latches decode registers, applies pops and mask updates, and
// returns freed credits upstream.
func (r *noxRouter) Commit(cycle int64) {
	c := r.counters()
	pr := r.probe()
	for m := r.inBusy; m != 0; m &= m - 1 {
		i := bits.TrailingZeros32(m)
		ev := r.in[i].Commit()
		c.BufRead += int64(ev.Reads)
		if ev.Latched {
			c.RegWrite++
		}
		if ev.Decoded {
			c.Decode++
		}
		if pr != nil && ev.Reads > 0 {
			pr.BufRead(cycle, r.node(), i, ev.Reads)
		}
		if ev.DecodeErr != nil {
			// A lenient input port discarded a corrupt decode register; its
			// constituents may have leaked (they can still be live
			// upstream), so arena exactness no longer holds.
			ck := r.cfg.Check
			ck.Decode(cycle, r.node(), i, ev.DecodeErr)
			ck.MarkLeaky()
		}
		r.returnCredits(noc.Port(i), ev.FreedSlots)
		if r.in[i].Buffered() == 0 && !r.in[i].RegisterBusy() {
			r.inBusy &^= 1 << uint(i)
		}
	}
	r.outBusy = 0
	if pr == nil {
		for m := r.decided; m != 0; m &= m - 1 {
			o := bits.TrailingZeros32(m)
			r.ctl[o].Commit()
			if !r.ctl[o].Idle() {
				r.outBusy |= 1 << uint(o)
			}
		}
		return
	}
	for o := noc.Port(0); o < noc.Port(r.ports); o++ {
		if r.outLink[o] == nil {
			continue
		}
		ctl := &r.ctl[o]
		if r.decided&(1<<uint(o)) == 0 {
			// Skipped by the dirty walk: the control logic sat untouched in
			// its rest state, which operates (and counts) as Recovery.
			pr.ModeCycle(r.node(), false)
			continue
		}
		before := ctl.Mode()
		// Count the cycle against the mode the output operated in.
		pr.ModeCycle(r.node(), before == core.Scheduled)
		ctl.Commit()
		if after := ctl.Mode(); after != before {
			pr.ModeChange(cycle, r.node(), int(o), int(before), int(after))
		}
		if !ctl.Idle() {
			r.outBusy |= 1 << uint(o)
		}
	}
	pr.Occupancy(r.node(), r.BufferedFlits())
}
