package router

import (
	"testing"

	"repro/internal/noc"
)

// TestSpecFastReservationBinding verifies a Spec-Fast reservation is bound
// to the packet that requested it: with a backlogged input, the trailing
// reservation manufactured by the pass-through Switch-Next is wasted
// because the successor packet never requested it, halving sustained
// streaming efficiency (§5.1's "less than half the bandwidth").
func TestSpecFastReservationBinding(t *testing.T) {
	tb := newBench(SpecFast)
	// Keep input West backlogged with single-flit packets.
	var id uint64 = 1
	sent := 0
	for cyc := 0; cyc < 40; cyc++ {
		sends := map[noc.Port]*noc.Flit{}
		if tb.in[noc.West].Credits() > 0 {
			sends[noc.West] = single(id)
			id++
		}
		tb.step(sends)
	}
	sent = len(tb.eastArrivals())
	// ~40 cycles of backlog should yield ~50% efficiency (alternating
	// deliver / wasted-reservation), far below line rate.
	if sent < 15 || sent > 25 {
		t.Errorf("backlogged Spec-Fast delivered %d/40, want ~20 (50%% efficiency)", sent)
	}
	if tb.counter.WastedCycles < 10 {
		t.Errorf("expected many wasted trailing-reservation cycles, got %d", tb.counter.WastedCycles)
	}
}

// TestSpecAccurateFullStreaming verifies Spec-Accurate does NOT pay the
// trailing-reservation tax: a backlogged single input streams at full rate
// (its allocator never reserves for an already-successful request).
func TestSpecAccurateFullStreaming(t *testing.T) {
	tb := newBench(SpecAccurate)
	var id uint64 = 1
	for cyc := 0; cyc < 40; cyc++ {
		sends := map[noc.Port]*noc.Flit{}
		if tb.in[noc.West].Credits() > 0 {
			sends[noc.West] = single(id)
			id++
		}
		tb.step(sends)
	}
	got := len(tb.eastArrivals())
	if got < 36 {
		t.Errorf("uncontended backlogged Spec-Accurate delivered %d/40, want ~full rate", got)
	}
	if tb.counter.WastedCycles != 0 {
		t.Errorf("Spec-Accurate wasted %d cycles without contention", tb.counter.WastedCycles)
	}
}

// TestNonSpecFullStreamingUnderContention verifies the sequential router's
// defining property: one packet per cycle out of a contended output,
// always.
func TestNonSpecFullStreamingUnderContention(t *testing.T) {
	tb := newBench(NonSpec)
	var id uint64 = 1
	for cyc := 0; cyc < 30; cyc++ {
		sends := map[noc.Port]*noc.Flit{}
		for _, p := range []noc.Port{noc.West, noc.North} {
			if tb.in[p].Credits() > 0 {
				sends[p] = single(id)
				id++
			}
		}
		tb.step(sends)
	}
	got := len(tb.eastArrivals())
	// First delivery at cycle 1; everything after is back-to-back.
	if got < 28 {
		t.Errorf("contended NonSpec delivered %d/30, want one per cycle", got)
	}
	if tb.counter.LinkInvalid != 0 || tb.counter.WastedCycles != 0 {
		t.Error("NonSpec should never waste output cycles")
	}
}

// TestSpecAccurateAlternatesAtThreeWay pins the Switch-Next visibility
// interpretation (DESIGN.md): with three colliders arriving together,
// Spec-Accurate resolves them as collide, send, collide, send, send —
// five cycles — because inputs masked during a reserved cycle cannot
// pre-schedule.
func TestSpecAccurateAlternatesAtThreeWay(t *testing.T) {
	tb := newBench(SpecAccurate)
	tb.step(map[noc.Port]*noc.Flit{noc.West: single(1), noc.North: single(2), noc.South: single(3)})
	tb.run(8)
	got := tb.eastArrivals()
	if len(got) != 3 {
		t.Fatalf("delivered %d/3", len(got))
	}
	// Eligible at cycle 1: collide@1, first@2, collide@3, second@4, third@5.
	wantCycles := []int64{2, 4, 5}
	for i, a := range got {
		if a.cycle != wantCycles[i] {
			t.Errorf("delivery %d at cycle %d, want %d (alternating resolution)", i, a.cycle, wantCycles[i])
		}
	}
	if tb.counter.LinkInvalid != 2 {
		t.Errorf("invalid drives = %d, want 2 (two collisions)", tb.counter.LinkInvalid)
	}
}

// TestNoXThreeWayChainThroughRouter contrasts the same stimulus on NoX:
// three wire transfers on three consecutive cycles, no waste.
func TestNoXThreeWayChainThroughRouter(t *testing.T) {
	tb := newBench(NoX)
	tb.step(map[noc.Port]*noc.Flit{noc.West: single(1), noc.North: single(2), noc.South: single(3)})
	tb.run(8)
	got := tb.eastArrivals()
	if len(got) != 3 {
		t.Fatalf("delivered %d/3 wire flits", len(got))
	}
	for i, a := range got {
		if a.cycle != int64(1+i) {
			t.Errorf("wire flit %d at cycle %d, want %d", i, a.cycle, 1+i)
		}
	}
	if !got[0].f.Encoded || !got[1].f.Encoded || got[2].f.Encoded {
		t.Errorf("encodings: %v %v %v, want enc,enc,raw", got[0].f, got[1].f, got[2].f)
	}
	if got[0].f.Raw != single(1).Raw^single(2).Raw^single(3).Raw {
		t.Error("first wire flit should be the 3-way XOR")
	}
	if tb.counter.WastedCycles != 0 || tb.counter.LinkInvalid != 0 {
		t.Error("NoX wasted cycles on a pure single-flit collision")
	}
}

// TestSpecAccurateCannotScheduleAcrossLock verifies no reservations are
// issued while a multi-flit packet holds an output (§3.1.2): two packets
// waiting behind the lock must re-collide after the tail, costing an
// extra wasted cycle.
func TestSpecAccurateCannotScheduleAcrossLock(t *testing.T) {
	tb := newBench(SpecAccurate)
	data := noc.NewPacket(50, 3, 5, 3, 0, 0)
	// Data on North (round-robin priority 0) wins the initial arbitration;
	// two control packets wait behind the lock.
	tb.step(map[noc.Port]*noc.Flit{noc.North: noc.NewFlit(data, 0), noc.West: single(51), noc.South: single(52)})
	tb.step(map[noc.Port]*noc.Flit{noc.North: noc.NewFlit(data, 1)})
	tb.step(map[noc.Port]*noc.Flit{noc.North: noc.NewFlit(data, 2)})
	tb.run(8)
	got := tb.eastArrivals()
	if len(got) != 5 {
		t.Fatalf("delivered %d/5 flits", len(got))
	}
	// Eligible c1: 3-way collide; data streams c2-c4; the two waiters
	// collide again at c5, resolve at c6 and c7.
	tail := got[3].cycle - 2 // data tail cycle (deliveries 1,2,3 are the data flits)
	_ = tail
	if d := got[4].cycle - got[3].cycle; d != 1 {
		t.Errorf("final two controls %d apart, want 1", d)
	}
	if got[4].cycle != got[2].cycle+3 {
		t.Errorf("last control at %d, want tail+3 (re-collision after the lock; tail at %d)", got[4].cycle, got[2].cycle)
	}
	if tb.counter.LinkInvalid != 2 {
		t.Errorf("invalid drives = %d, want 2 (initial collision + post-lock re-collision)", tb.counter.LinkInvalid)
	}
}

// TestNoXTailHandoffThroughRouter verifies the contrasting NoX behavior:
// at the tail cycle the parallel arbiter pre-schedules one waiter, and the
// second is pre-scheduled while the first transmits — back-to-back
// deliveries with no post-lock collision (§2.7).
func TestNoXTailHandoffThroughRouter(t *testing.T) {
	tb := newBench(NoX)
	data := noc.NewPacket(60, 3, 5, 3, 0, 0)
	// Data on North (round-robin priority 0) wins the abort grant; two
	// control packets wait behind the lock.
	tb.step(map[noc.Port]*noc.Flit{noc.North: noc.NewFlit(data, 0), noc.West: single(61), noc.South: single(62)})
	tb.step(map[noc.Port]*noc.Flit{noc.North: noc.NewFlit(data, 1)})
	tb.step(map[noc.Port]*noc.Flit{noc.North: noc.NewFlit(data, 2)})
	tb.run(8)
	got := tb.eastArrivals()
	if len(got) != 5 {
		t.Fatalf("delivered %d/5 flits", len(got))
	}
	if got[4].cycle != got[2].cycle+2 {
		t.Errorf("last control at %d, want tail+2 (tail-cycle handoff; tail at %d)", got[4].cycle, got[2].cycle)
	}
	if tb.counter.Aborts != 1 {
		t.Errorf("aborts = %d, want exactly the initial multi-flit collision", tb.counter.Aborts)
	}
	if tb.counter.LinkInvalid != 1 {
		t.Errorf("invalid drives = %d, want 1 (no post-lock collision)", tb.counter.LinkInvalid)
	}
}

// TestNewlyExposedOneCycleOnly verifies the Spec-Fast fairness rule bars a
// freshly exposed packet from allocation for exactly one cycle — it can
// still win arbitration afterwards.
func TestNewlyExposedOneCycleOnly(t *testing.T) {
	tb := newBench(SpecFast)
	// Two packets back to back on West; a competitor stream on North keeps
	// the output contended so progress requires arbitration.
	tb.step(map[noc.Port]*noc.Flit{noc.West: single(1), noc.North: single(10)})
	tb.step(map[noc.Port]*noc.Flit{noc.West: single(2), noc.North: single(11)})
	tb.step(map[noc.Port]*noc.Flit{noc.North: single(12)})
	tb.run(20)
	var westDeliveries int
	for _, a := range tb.eastArrivals() {
		if a.f.Packet.ID <= 2 {
			westDeliveries++
		}
	}
	if westDeliveries != 2 {
		t.Errorf("West's second (newly exposed) packet starved: %d/2 delivered", westDeliveries)
	}
}

// TestMidPacketBubble starves a multi-flit packet mid-transmission on
// every architecture: the output must idle (hold the wormhole lock), not
// let the competitor interleave, and resume when the body arrives.
func TestMidPacketBubble(t *testing.T) {
	for _, arch := range Archs {
		t.Run(arch.String(), func(t *testing.T) {
			tb := newBench(arch)
			data := noc.NewPacket(70, 3, 5, 3, 0, 0)
			ctrl := single(71)
			tb.step(map[noc.Port]*noc.Flit{noc.North: noc.NewFlit(data, 0), noc.West: ctrl})
			tb.run(3) // body flit delayed: bubble
			tb.step(map[noc.Port]*noc.Flit{noc.North: noc.NewFlit(data, 1)})
			tb.step(map[noc.Port]*noc.Flit{noc.North: noc.NewFlit(data, 2)})
			tb.run(10)

			var seq []uint64
			for _, a := range tb.eastArrivals() {
				if !a.f.Encoded {
					seq = append(seq, a.f.Packet.ID)
				}
			}
			if len(seq) != 4 {
				t.Fatalf("delivered %d/4 flits", len(seq))
			}
			// The data packet's three flits must be contiguous in the
			// delivery sequence despite the bubble.
			var dataPos []int
			for i, id := range seq {
				if id == 70 {
					dataPos = append(dataPos, i)
				}
			}
			if len(dataPos) != 3 || dataPos[2]-dataPos[0] != 2 {
				t.Fatalf("data flits interleaved: sequence %v", seq)
			}
		})
	}
}
