package router

import (
	"unsafe"

	"repro/internal/arbiter"
	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/noc"
)

// pool is a chunked bump allocator: take carves zeroed subslices off a
// growing chunk, so the backing storage for a whole network's routers costs
// a handful of heap allocations per element type instead of several per
// router. Carved slices are full-slice expressions — an append can never
// clobber a neighbor's storage.
type pool[T any] struct{ buf []T }

// take returns a zeroed slice of length and capacity n. chunkBytes is the
// refill chunk size in bytes (bounding both allocation count and zeroed
// slack); 0 allocates exactly n — the standalone, nothing-retained mode.
func (p *pool[T]) take(n, chunkBytes int) []T {
	if n > len(p.buf) {
		c := n
		if chunkBytes > 0 {
			var t T
			if size := int(unsafe.Sizeof(t)); size > 0 {
				if per := chunkBytes / size; per > c {
					c = per
				}
			}
		}
		p.buf = make([]T, c)
	}
	s := p.buf[:n:n]
	p.buf = p.buf[n:]
	return s
}

// Slabs batches the backing storage for many routers of one network. A
// network builds one Slabs and threads it through every router.New call via
// Config.Slabs; each constructor then carves its ports, FIFOs, scratch
// vectors, and arbiters from shared chunks. Single-goroutine use only
// (construction time). A nil Slabs in Config makes each router allocate
// exactly what it needs — same layout, more allocations.
type Slabs struct {
	chunk    int
	noxes    pool[noxRouter]
	specs    pool[specRouter]
	nonspecs pool[nonspecRouter]
	inPorts  pool[core.InputPort]
	ctls     pool[core.OutputControl]
	fifos    pool[buffer.FIFO]
	arbs     pool[arbiter.RoundRobin]
	arbIfs   pool[arbiter.Arbiter]
	recvs    pool[portReceiver]
	links    pool[*noc.Link]
	flits    pool[*noc.Flit]
	pkts     pool[*noc.Packet]
	bools    pool[bool]
	ints     pool[int]
	int64s   pool[int64]
	uint32s  pool[uint32]
}

// NewSlabs returns a batch allocator for the construction of many routers.
func NewSlabs() *Slabs {
	return &Slabs{chunk: 16 << 10}
}

// NewSlabsSized returns a batch allocator with the given refill chunk size
// in bytes. Batched cohorts constructing many same-shape networks pass a
// larger chunk so the whole cohort's router state comes from a handful of
// contiguous slabs (fewer allocations, denser layout); chunkBytes <= 0
// falls back to the standalone default.
func NewSlabsSized(chunkBytes int) *Slabs {
	if chunkBytes <= 0 {
		return NewSlabs()
	}
	return &Slabs{chunk: chunkBytes}
}
