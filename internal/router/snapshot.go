package router

import (
	"fmt"

	"repro/internal/arbiter"
	"repro/internal/buffer"
	"repro/internal/snapshot/codec"
)

// Checkpointing for the three router implementations. Only between-step
// persistent state is captured: input queues (and the NoX decode registers
// and output FSMs), wormhole locks, speculative reservations, the Spec-Fast
// fairness timestamps, and arbiter priority state. Per-cycle scratch and
// staged actions are dead whenever a step is complete. Restore targets a
// freshly constructed router of the identical configuration.

func saveFIFO(e *codec.Encoder, q *buffer.FIFO) {
	e.Int(q.Len())
	for i := 0; i < q.Len(); i++ {
		e.Flit(q.At(i))
	}
}

func restoreFIFO(d *codec.Decoder, q *buffer.FIFO) error {
	n := d.Len(q.Cap())
	if err := d.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		f := d.Flit()
		if err := d.Err(); err != nil {
			return err
		}
		if f == nil {
			return fmt.Errorf("%w: nil flit in router FIFO", codec.ErrCorrupt)
		}
		q.Push(f)
	}
	return nil
}

func saveArbiter(e *codec.Encoder, a arbiter.Arbiter) error {
	st, err := arbiter.State(a)
	if err != nil {
		return fmt.Errorf("%w: %v", codec.ErrUnsupported, err)
	}
	e.Int(len(st))
	for _, w := range st {
		e.U64(w)
	}
	return nil
}

func restoreArbiter(d *codec.Decoder, a arbiter.Arbiter) error {
	n := d.Len(64)
	if err := d.Err(); err != nil {
		return err
	}
	words := make([]uint64, n)
	for i := range words {
		words[i] = d.U64()
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := arbiter.Restore(a, words); err != nil {
		return fmt.Errorf("%w: %v", codec.ErrCorrupt, err)
	}
	return nil
}

// checkPortIndex validates a deserialized port index that may be -1 (none).
func checkPortIndex(v, n int, what string) error {
	if v < -1 || v >= n {
		return fmt.Errorf("%w: %s %d of %d ports", codec.ErrCorrupt, what, v, n)
	}
	return nil
}

// SaveState implements Router for the NoX architecture: every input port
// (queue + decode register) and every output's FSM, masks, and arbiter.
func (r *noxRouter) SaveState(e *codec.Encoder) error {
	for p := range r.in {
		r.in[p].SaveState(e)
	}
	for p := range r.ctl {
		if err := r.ctl[p].SaveState(e); err != nil {
			return err
		}
	}
	return nil
}

// RestoreState implements Router for the NoX architecture.
func (r *noxRouter) RestoreState(d *codec.Decoder) error {
	for p := range r.in {
		if err := r.in[p].RestoreState(d); err != nil {
			return err
		}
	}
	for p := range r.ctl {
		if err := r.ctl[p].RestoreState(d); err != nil {
			return err
		}
	}
	// The dirty masks are derivable state and are not serialized: restore
	// them conservatively full (every port presumed dirty); the first
	// evaluated cycle trims them back to the true busy set.
	r.inBusy, r.outBusy = allPorts(r.ports), allPorts(r.ports)
	return nil
}

// SaveState implements Router for the speculative architectures: input
// queues, wormhole locks, live reservations with their owning packets, the
// Spec-Fast newly-exposed fairness timestamps, and the allocator arbiters.
func (r *specRouter) SaveState(e *codec.Encoder) error {
	for p := range r.in {
		saveFIFO(e, &r.in[p])
	}
	for p := 0; p < r.ports; p++ {
		e.I64(r.newlyExposed[p])
		e.Int(r.lock[p])
		e.Int(r.res[p])
		e.Packet(r.resPkt[p])
		if err := saveArbiter(e, r.arb[p]); err != nil {
			return err
		}
	}
	return nil
}

// RestoreState implements Router for the speculative architectures.
func (r *specRouter) RestoreState(d *codec.Decoder) error {
	for p := range r.in {
		if err := restoreFIFO(d, &r.in[p]); err != nil {
			return err
		}
	}
	for p := 0; p < r.ports; p++ {
		ne := d.I64()
		lock := d.Int()
		res := d.Int()
		pkt := d.Packet()
		if err := d.Err(); err != nil {
			return err
		}
		if err := checkPortIndex(lock, r.ports, "lock owner"); err != nil {
			return err
		}
		if err := checkPortIndex(res, r.ports, "reservation"); err != nil {
			return err
		}
		if (res >= 0) != (pkt != nil) {
			return fmt.Errorf("%w: reservation %d with packet %v", codec.ErrCorrupt, res, pkt != nil)
		}
		r.newlyExposed[p], r.lock[p], r.res[p], r.resPkt[p] = ne, lock, res, pkt
		if err := restoreArbiter(d, r.arb[p]); err != nil {
			return err
		}
	}
	return nil
}

// SaveState implements Router for the non-speculative baseline: input
// queues, wormhole locks, and arbiters.
func (r *nonspecRouter) SaveState(e *codec.Encoder) error {
	for p := range r.in {
		saveFIFO(e, &r.in[p])
	}
	for p := 0; p < r.ports; p++ {
		e.Int(r.lock[p])
		if err := saveArbiter(e, r.arb[p]); err != nil {
			return err
		}
	}
	return nil
}

// RestoreState implements Router for the non-speculative baseline.
func (r *nonspecRouter) RestoreState(d *codec.Decoder) error {
	for p := range r.in {
		if err := restoreFIFO(d, &r.in[p]); err != nil {
			return err
		}
	}
	for p := 0; p < r.ports; p++ {
		lock := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if err := checkPortIndex(lock, r.ports, "lock owner"); err != nil {
			return err
		}
		r.lock[p] = lock
		if err := restoreArbiter(d, r.arb[p]); err != nil {
			return err
		}
	}
	return nil
}
