// Package router implements the four router microarchitectures compared in
// the paper (§3): the non-speculative baseline, the two speculative designs
// Spec-Fast and Spec-Accurate adapted from Mullins et al., and the NoX
// router built on internal/core's XOR-coded switch.
//
// All four are single-cycle-per-hop wormhole routers with five ports,
// credit-based flow control, 4-deep input FIFOs, and lookahead XY routing;
// they differ only in clock period (modeled by internal/physical) and in
// how they behave under output contention — which is exactly the design
// space the paper examines.
package router

import (
	"fmt"
	"strings"

	"repro/internal/arbiter"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/probe"
	"repro/internal/routing"
	"repro/internal/sim"
)

// Arch selects a router microarchitecture.
type Arch int

// The four evaluated router architectures (§3.1, Table 2).
const (
	// NonSpec arbitrates and traverses serially within one long cycle
	// (0.92 ns): maximally efficient outputs, slowest clock.
	NonSpec Arch = iota
	// SpecFast speculatively traverses without arbitration (0.69 ns);
	// collisions waste cycles and link energy, and its minimal-latency
	// allocator creates unnecessary next-cycle reservations.
	SpecFast
	// SpecAccurate is the compromise speculative design (0.72 ns) whose
	// allocator removes already-successful requests.
	SpecAccurate
	// NoX overlaps arbitration with XOR-coded switch traversal (0.76 ns):
	// collisions are productive encoded transfers.
	NoX
)

// Archs lists all architectures in the paper's presentation order.
var Archs = []Arch{NonSpec, SpecFast, SpecAccurate, NoX}

// String returns the paper's name for the architecture.
func (a Arch) String() string {
	switch a {
	case NonSpec:
		return "Non-Speculative"
	case SpecFast:
		return "Spec-Fast"
	case SpecAccurate:
		return "Spec-Accurate"
	case NoX:
		return "NoX"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// ArchByName maps a CLI spelling of an architecture to its Arch value.
func ArchByName(name string) (Arch, error) {
	switch strings.ToLower(name) {
	case "nonspec", "non-speculative", "sequential":
		return NonSpec, nil
	case "specfast", "spec-fast":
		return SpecFast, nil
	case "specaccurate", "spec-accurate":
		return SpecAccurate, nil
	case "nox":
		return NoX, nil
	default:
		return 0, fmt.Errorf("unknown architecture %q (nonspec|specfast|specaccurate|nox)", name)
	}
}

// Config parameterizes a router instance.
type Config struct {
	Arch Arch
	// Node is the router's position on the router grid.
	Node        noc.NodeID
	Routes      *routing.Table
	BufferDepth int
	Counters    *power.Counters
	// Ports is the router radix: 4 direction ports plus one local port per
	// attached core (default 5, the paper's mesh router; 8 for the
	// 4-concentrated CMesh of the future-work study).
	Ports int
	// NewArbiter builds the per-output arbiter; nil selects round-robin.
	NewArbiter func(n int) arbiter.Arbiter
	// Probe, when non-nil, receives flit-level trace events and per-router
	// metrics. A nil probe disables all instrumentation at zero cost.
	Probe *probe.Probe
}

func (c *Config) fill() {
	if c.Routes == nil {
		panic("router: Config.Routes is required")
	}
	if c.Ports == 0 {
		c.Ports = int(noc.NumPorts)
	}
	if c.Ports < 5 || c.Ports > 32 {
		panic("router: Ports must be in [5,32]")
	}
	if c.BufferDepth <= 0 {
		c.BufferDepth = 4
	}
	if c.Counters == nil {
		c.Counters = &power.Counters{}
	}
	if c.NewArbiter == nil {
		c.NewArbiter = func(n int) arbiter.Arbiter { return arbiter.NewRoundRobin(n) }
	}
}

// Router is one mesh router participating in the two-phase simulation.
// Every architecture implements sim.Quiescable so drained routers drop out
// of the kernel's active set.
type Router interface {
	sim.Quiescable
	// Node returns the tile this router serves.
	Node() noc.NodeID
	// InputReceiver returns the sink to wire an incoming link to port p.
	InputReceiver(p noc.Port) noc.Receiver
	// SetInputLink registers the link feeding port p, used to return
	// credits when buffer slots free.
	SetInputLink(p noc.Port, l *noc.Link)
	// SetOutputLink registers the link driven by output port p.
	SetOutputLink(p noc.Port, l *noc.Link)
	// BufferedFlits returns the number of flits currently buffered, used
	// by drain checks.
	BufferedFlits() int
}

// New builds a router of the configured architecture.
func New(cfg Config) Router {
	cfg.fill()
	switch cfg.Arch {
	case NonSpec:
		return newNonSpec(cfg)
	case SpecFast, SpecAccurate:
		return newSpec(cfg)
	case NoX:
		return newNoX(cfg)
	default:
		panic(fmt.Sprintf("router: unknown architecture %d", int(cfg.Arch)))
	}
}

// base carries the wiring and accounting shared by every architecture.
type base struct {
	cfg     Config
	ports   int
	inLink  []*noc.Link
	outLink []*noc.Link
}

func (b *base) init(cfg Config) {
	b.cfg = cfg
	b.ports = cfg.Ports
	b.inLink = make([]*noc.Link, b.ports)
	b.outLink = make([]*noc.Link, b.ports)
}

// Node returns the tile this router serves.
func (b *base) Node() noc.NodeID { return b.cfg.Node }

func (b *base) counters() *power.Counters { return b.cfg.Counters }

// probe returns the attached observability probe, nil when disabled.
func (b *base) probe() *probe.Probe { return b.cfg.Probe }

// node returns the router's grid position as a plain int for probe emits.
func (b *base) node() int { return int(b.cfg.Node) }

// flitTraceID returns a flit's trace identity: its packet ID and sequence,
// or the raw wire image with seq -1 for encoded superpositions (which have
// no single owning packet).
func flitTraceID(f *noc.Flit) (arg uint64, seq int) {
	if f.Encoded {
		return f.Raw, -1
	}
	return f.Packet.ID, f.Seq
}

// SetInputLink registers the link feeding port p.
func (b *base) SetInputLink(p noc.Port, l *noc.Link) { b.inLink[p] = l }

// SetOutputLink registers the link driven by port p.
func (b *base) SetOutputLink(p noc.Port, l *noc.Link) { b.outLink[p] = l }

// returnCredits stages n credit returns on the link feeding port p.
func (b *base) returnCredits(p noc.Port, n int) {
	if n == 0 {
		return
	}
	l := b.inLink[p]
	if l == nil {
		panic("router: credit return on unwired input")
	}
	for i := 0; i < n; i++ {
		l.ReturnCredit()
	}
}

// route computes the lookahead output port at this router for dst.
func (b *base) route(dst noc.NodeID) noc.Port {
	return b.cfg.Routes.Port(b.cfg.Node, dst)
}

// portReceiver adapts (router, port) to noc.Receiver.
type portReceiver struct {
	recv func(p noc.Port, f *noc.Flit, cycle int64)
	port noc.Port
}

// Receive forwards the delivered flit to the router's input port.
func (pr portReceiver) Receive(f *noc.Flit, cycle int64) { pr.recv(pr.port, f, cycle) }
