// Package router implements the four router microarchitectures compared in
// the paper (§3): the non-speculative baseline, the two speculative designs
// Spec-Fast and Spec-Accurate adapted from Mullins et al., and the NoX
// router built on internal/core's XOR-coded switch.
//
// All four are single-cycle-per-hop wormhole routers with five ports,
// credit-based flow control, 4-deep input FIFOs, and lookahead XY routing;
// they differ only in clock period (modeled by internal/physical) and in
// how they behave under output contention — which is exactly the design
// space the paper examines.
package router

import (
	"fmt"
	"strings"

	"repro/internal/arbiter"
	"repro/internal/buffer"
	"repro/internal/check"
	"repro/internal/noc"
	"repro/internal/power"
	"repro/internal/probe"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/snapshot/codec"
)

// Arch selects a router microarchitecture.
type Arch int

// The four evaluated router architectures (§3.1, Table 2).
const (
	// NonSpec arbitrates and traverses serially within one long cycle
	// (0.92 ns): maximally efficient outputs, slowest clock.
	NonSpec Arch = iota
	// SpecFast speculatively traverses without arbitration (0.69 ns);
	// collisions waste cycles and link energy, and its minimal-latency
	// allocator creates unnecessary next-cycle reservations.
	SpecFast
	// SpecAccurate is the compromise speculative design (0.72 ns) whose
	// allocator removes already-successful requests.
	SpecAccurate
	// NoX overlaps arbitration with XOR-coded switch traversal (0.76 ns):
	// collisions are productive encoded transfers.
	NoX
)

// Archs lists all architectures in the paper's presentation order.
var Archs = []Arch{NonSpec, SpecFast, SpecAccurate, NoX}

// String returns the paper's name for the architecture.
func (a Arch) String() string {
	switch a {
	case NonSpec:
		return "Non-Speculative"
	case SpecFast:
		return "Spec-Fast"
	case SpecAccurate:
		return "Spec-Accurate"
	case NoX:
		return "NoX"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// ArchByName maps a CLI spelling of an architecture to its Arch value.
func ArchByName(name string) (Arch, error) {
	switch strings.ToLower(name) {
	case "nonspec", "non-speculative", "sequential":
		return NonSpec, nil
	case "specfast", "spec-fast":
		return SpecFast, nil
	case "specaccurate", "spec-accurate":
		return SpecAccurate, nil
	case "nox":
		return NoX, nil
	default:
		return 0, fmt.Errorf("unknown architecture %q (nonspec|specfast|specaccurate|nox)", name)
	}
}

// Config parameterizes a router instance.
type Config struct {
	Arch Arch
	// Node is the router's position on the router grid.
	Node        noc.NodeID
	Routes      *routing.Table
	BufferDepth int
	Counters    *power.Counters
	// Ports is the router radix: 4 direction ports plus one local port per
	// attached core (default 5, the paper's mesh router; 8 for the
	// 4-concentrated CMesh of the future-work study).
	Ports int
	// NewArbiter builds the per-output arbiter; nil selects round-robin
	// (slab-allocated inside the router).
	NewArbiter func(n int) arbiter.Arbiter
	// Probe, when non-nil, receives flit-level trace events and per-router
	// metrics. A nil probe disables all instrumentation at zero cost.
	Probe *probe.Probe
	// Arena, when non-nil, pools the flits the router creates and retires
	// (NoX superpositions and decode copies). Nil falls back to the heap.
	Arena *noc.Arena
	// Slabs, when non-nil, batches the backing storage of many routers into
	// shared chunks (one allocation per element type per ~kilobyte of
	// routers) — the network construction path. Nil allocates per router.
	Slabs *Slabs
	// Check, when non-nil, arms the runtime invariant layer: protocol
	// violations that an injected fault can legitimately produce (corrupt
	// XOR decodes, orphan multi-flit bodies, buffer overruns) are reported
	// to it instead of panicking, so fault campaigns on the sharded kernel
	// never kill a worker goroutine.
	Check *check.Checker
}

func (c *Config) fill() {
	if c.Routes == nil {
		panic("router: Config.Routes is required")
	}
	if c.Ports == 0 {
		c.Ports = int(noc.NumPorts)
	}
	if c.Ports < 5 || c.Ports > 32 {
		panic("router: Ports must be in [5,32]")
	}
	if c.BufferDepth <= 0 {
		c.BufferDepth = 4
	}
	if c.Counters == nil {
		c.Counters = &power.Counters{}
	}
	if c.Slabs == nil {
		// Zero chunk: every take allocates exactly its length, so a
		// standalone router costs no slack memory.
		c.Slabs = &Slabs{}
	}
}

// arbMaker returns a function yielding output o's arbiter: cfg.NewArbiter
// when set, otherwise pointers into one slab of round-robin arbiters.
func arbMaker(cfg *Config, n int) func(o int) arbiter.Arbiter {
	if cfg.NewArbiter != nil {
		return func(int) arbiter.Arbiter { return cfg.NewArbiter(n) }
	}
	slab := cfg.Slabs.arbs.take(n, cfg.Slabs.chunk)
	return func(o int) arbiter.Arbiter {
		slab[o].Init(n)
		return &slab[o]
	}
}

// PortState is one port's live diagnostic state, snapshot by the deadlock
// watchdog's dump: input-side occupancy and the state of the same-numbered
// output. Fields that do not apply to an architecture (or an unwired port)
// are -1.
type PortState struct {
	// Buffered is the input FIFO occupancy in flits.
	Buffered int
	// Register reports an occupied NoX decode register (always false on
	// the baseline architectures).
	Register bool
	// OutMode is the NoX output mode (0 Recovery, 1 Scheduled), -1 on the
	// baselines.
	OutMode int
	// OutLock is the input holding the output through a multi-flit packet
	// (wormhole lock or speculative packet reservation), -1 if none.
	OutLock int
	// OutCredits is the credit count of the output link, -1 if unwired.
	OutCredits int
}

// String renders the port state as a compact diagnostic token.
func (s PortState) String() string {
	out := fmt.Sprintf("buf=%d", s.Buffered)
	if s.Register {
		out += " reg"
	}
	if s.OutMode == 1 {
		out += " sched"
	}
	if s.OutLock >= 0 {
		out += fmt.Sprintf(" lock=%d", s.OutLock)
	}
	if s.OutCredits >= 0 {
		out += fmt.Sprintf(" cr=%d", s.OutCredits)
	}
	return out
}

// Router is one mesh router participating in the two-phase simulation.
// Every architecture implements sim.Quiescable so drained routers drop out
// of the kernel's active set.
type Router interface {
	sim.Quiescable
	// Node returns the tile this router serves.
	Node() noc.NodeID
	// InputReceiver returns the sink to wire an incoming link to port p.
	InputReceiver(p noc.Port) noc.Receiver
	// SetInputLink registers the link feeding port p, used to return
	// credits when buffer slots free.
	SetInputLink(p noc.Port, l *noc.Link)
	// SetOutputLink registers the link driven by output port p.
	SetOutputLink(p noc.Port, l *noc.Link)
	// BufferedFlits returns the number of flits currently buffered, used
	// by drain checks.
	BufferedFlits() int
	// PortStates appends one PortState per port to buf and returns it —
	// the deadlock watchdog's diagnostic snapshot.
	PortStates(buf []PortState) []PortState
	// SaveState serializes the router's between-step persistent state
	// (queues, registers, FSMs, locks, reservations, arbiter priorities).
	SaveState(e *codec.Encoder) error
	// RestoreState loads state saved by SaveState into this freshly
	// constructed router of the identical configuration.
	RestoreState(d *codec.Decoder) error
	// Flush discards all in-flight state — buffered flits, decode
	// registers, wormhole locks, reservations, staged actions — returning
	// the router to its post-construction rest. Every dropped flit object
	// is handed to drop before its storage is recycled (callers walk the
	// Parts of encoded flits for packet accounting); drop may be nil.
	// Called between steps by a reconfiguration epoch after a hard fault.
	Flush(drop func(*noc.Flit))
	// Reroute swaps the router's routing table. Buffered flits keep their
	// stale lookahead OutPort, so epochs Flush before the swap matters.
	Reroute(routes *routing.Table)
}

// New builds a router of the configured architecture.
func New(cfg Config) Router {
	cfg.fill()
	switch cfg.Arch {
	case NonSpec:
		return newNonSpec(cfg)
	case SpecFast, SpecAccurate:
		return newSpec(cfg)
	case NoX:
		return newNoX(cfg)
	default:
		panic(fmt.Sprintf("router: unknown architecture %d", int(cfg.Arch)))
	}
}

// base carries the wiring and accounting shared by every architecture.
type base struct {
	cfg     Config
	ports   int
	inLink  []*noc.Link
	outLink []*noc.Link
	// row is this router's precomputed route-table row, indexed by
	// destination core — lookahead route computation in one load.
	row []noc.Port
	// recvs is the per-port receiver slab InputReceiver hands out pointers
	// into, so wiring allocates no per-port closures or interface boxes.
	recvs []portReceiver
}

func (b *base) init(cfg Config) {
	b.cfg = cfg
	b.ports = cfg.Ports
	links := cfg.Slabs.links.take(2*b.ports, cfg.Slabs.chunk)
	b.inLink = links[:b.ports:b.ports]
	b.outLink = links[b.ports:]
	b.row = cfg.Routes.Row(cfg.Node)
}

// initReceivers builds the receiver slab pointing back at the architecture's
// receive method (held as an interface — no closure allocation).
func (b *base) initReceivers(sink flitSink) {
	b.recvs = b.cfg.Slabs.recvs.take(b.ports, b.cfg.Slabs.chunk)
	for p := range b.recvs {
		b.recvs[p] = portReceiver{r: sink, port: noc.Port(p)}
	}
}

// InputReceiver returns the link sink for port p.
func (b *base) InputReceiver(p noc.Port) noc.Receiver { return &b.recvs[p] }

// Node returns the tile this router serves.
func (b *base) Node() noc.NodeID { return b.cfg.Node }

func (b *base) counters() *power.Counters { return b.cfg.Counters }

// probe returns the attached observability probe, nil when disabled.
func (b *base) probe() *probe.Probe { return b.cfg.Probe }

// node returns the router's grid position as a plain int for probe emits.
func (b *base) node() int { return int(b.cfg.Node) }

// flitTraceID returns a flit's trace identity: its packet ID and sequence,
// or the raw wire image with seq -1 for encoded superpositions (which have
// no single owning packet).
func flitTraceID(f *noc.Flit) (arg uint64, seq int) {
	if f.Encoded {
		return f.Raw, -1
	}
	return f.Packet.ID, f.Seq
}

// SetInputLink registers the link feeding port p.
func (b *base) SetInputLink(p noc.Port, l *noc.Link) { b.inLink[p] = l }

// SetOutputLink registers the link driven by port p.
func (b *base) SetOutputLink(p noc.Port, l *noc.Link) { b.outLink[p] = l }

// returnCredits stages n credit returns on the link feeding port p.
func (b *base) returnCredits(p noc.Port, n int) {
	if n == 0 {
		return
	}
	l := b.inLink[p]
	if l == nil {
		panic("router: credit return on unwired input")
	}
	for i := 0; i < n; i++ {
		l.ReturnCredit()
	}
}

// route computes the lookahead output port at this router for dst.
func (b *base) route(dst noc.NodeID) noc.Port {
	return b.row[dst]
}

// Reroute swaps the routing table: a slice-header repoint at this router's
// new row. The NoX router overrides it to also repoint its input ports.
func (b *base) Reroute(routes *routing.Table) {
	b.cfg.Routes = routes
	b.row = routes.Row(b.cfg.Node)
}

// dropAll empties a FIFO through drop, releasing each flit to the arena.
func (b *base) dropAll(q *buffer.FIFO, drop func(*noc.Flit)) {
	for !q.Empty() {
		f := q.Pop()
		if drop != nil {
			drop(f)
		}
		if b.cfg.Arena != nil {
			b.cfg.Arena.Release(f)
		}
	}
}

// overflow guards a receive against a full input buffer, which only an
// injected credit-duplication fault can produce (the credit protocol
// otherwise forbids it). With a checker armed the flit is reported and
// swallowed (returns true); unarmed, the FIFO's own push panic fires, as a
// full buffer then really is a simulator bug.
func (b *base) overflow(p noc.Port, f *noc.Flit, cycle int64, free int) bool {
	if free > 0 || b.cfg.Check == nil {
		return false
	}
	var pkt uint64
	if !f.Encoded && f.Packet != nil {
		pkt = f.Packet.ID
	}
	b.cfg.Check.Overflow(cycle, b.node(), int(p), pkt)
	if b.cfg.Arena != nil {
		b.cfg.Arena.Release(f)
	}
	return true
}

// flitSink is the ingress side every architecture implements: deliver a flit
// into input port p.
type flitSink interface {
	receive(p noc.Port, f *noc.Flit, cycle int64)
}

// portReceiver adapts (router, port) to noc.Receiver.
type portReceiver struct {
	r    flitSink
	port noc.Port
}

// Receive forwards the delivered flit to the router's input port.
func (pr *portReceiver) Receive(f *noc.Flit, cycle int64) { pr.r.receive(pr.port, f, cycle) }
