package router

import (
	"math/bits"

	"repro/internal/arbiter"
	"repro/internal/buffer"
	"repro/internal/noc"
)

// specRouter implements both speculative single-cycle designs of §3.1.2
// (adapted from Mullins et al. to wormhole operation). Requests traverse
// the switch speculatively, without waiting for arbitration; an allocator
// runs in parallel and pre-schedules a reservation for the next cycle.
//
// The two variants differ only in the Switch-Next logic deciding which
// requests reach the allocator:
//
//   - Spec-Fast passes every request not masked by Switch-Fast — including
//     a request that is successfully traversing this very cycle — so it
//     creates "unnecessary switch reservations on the proceeding clock
//     cycle". A reservation answers one specific packet's request; when
//     that packet has already departed, the reserved cycle is wasted for
//     everyone, because the newly exposed packet behind it never requested
//     and "may not request arbitration" (§3.1.2's fairness rule; it is
//     also barred from the allocator on its first head cycle). Under
//     backlog this halves Spec-Fast's sustained efficiency, which is why
//     it "frequently saturates at less than half the bandwidth as the
//     other router architectures" (§5.1). Wormhole contiguity is
//     guaranteed by masking all other requests from arbitration during a
//     packet's transmission.
//
//   - Spec-Accurate's Switch-Next is "passed the same requests as Switch
//     Fast" — the same post-mask set — "and removes requests that
//     successfully undergo switch traversal in the current cycle". Its
//     reservations are therefore accurate (never issued to an input that
//     already succeeded), and arbitration is overridden while a multi-flit
//     packet holds an output; but like Spec-Fast, inputs masked during a
//     reserved cycle cannot pre-schedule, so a backlog of three or more
//     colliders alternates between collision and reserved cycles.
//
// When >= 2 inputs speculate toward one output the cycle is wasted and the
// channel is driven with an indeterminate, invalid value — the misspeculation
// energy overhead central to the paper's comparison (§3.2).
type specRouter struct {
	base
	accurate bool

	// in is a value slab; its FIFO rings are carved from one shared slot slab.
	in []buffer.FIFO
	// newlyExposed[i] is the cycle during which input i's head packet is
	// barred from arbitration (Spec-Fast fairness rule).
	newlyExposed []int64
	arb          []arbiter.Arbiter
	lock         []int
	res          []int
	// resPkt[o] is the packet whose request earned the reservation; a
	// reservation is unusable by any other packet (Spec-Fast).
	resPkt []*noc.Packet

	// staged actions
	pops       []bool
	lockNext   []int
	resNext    []int
	resPktNext []*noc.Packet

	// per-cycle scratch
	req  []uint32
	head []*noc.Flit
	// touched is the dirty-output mask of the current cycle: outputs whose
	// staged Next entries were written by Compute (requests present, or a
	// live reservation/lock to hold or lapse). Commit applies exactly these —
	// untouched outputs carry stale Next values that must not be copied.
	touched uint32
}

func newSpec(cfg Config) *specRouter {
	s := cfg.Slabs
	r := &s.specs.take(1, s.chunk)[0]
	r.accurate = cfg.Arch == SpecAccurate
	r.init(cfg)
	n := r.ports
	r.in = s.fifos.take(n, s.chunk)
	r.newlyExposed = s.int64s.take(n, s.chunk)
	r.arb = s.arbIfs.take(n, s.chunk)
	ints := s.ints.take(4*n, s.chunk)
	r.lock = ints[0*n : 1*n : 1*n]
	r.res = ints[1*n : 2*n : 2*n]
	r.lockNext = ints[2*n : 3*n : 3*n]
	r.resNext = ints[3*n:]
	pkts := s.pkts.take(2*n, s.chunk)
	r.resPkt = pkts[:n:n]
	r.resPktNext = pkts[n:]
	r.pops = s.bools.take(n, s.chunk)
	r.req = s.uint32s.take(n, s.chunk)
	r.head = s.flits.take(n, s.chunk)
	sl := buffer.SlotsFor(cfg.BufferDepth)
	slots := s.flits.take(n*sl, s.chunk)
	arb := arbMaker(&cfg, n)
	for p := range r.in {
		r.in[p].Init(cfg.BufferDepth, slots[p*sl:(p+1)*sl:(p+1)*sl])
		r.arb[p] = arb(p)
		r.lock[p] = -1
		r.res[p] = -1
		r.newlyExposed[p] = -1
	}
	r.initReceivers(r)
	return r
}

func (r *specRouter) receive(p noc.Port, f *noc.Flit, cycle int64) {
	if f.Encoded {
		panic("router: speculative router received an encoded flit")
	}
	if r.overflow(p, f, cycle, r.in[p].Free()) {
		return
	}
	f.OutPort = r.route(f.Packet.Dst)
	r.in[p].Push(f)
	r.counters().BufWrite++
	if pr := r.probe(); pr != nil {
		pr.BufWrite(cycle, r.node(), int(p), f.Packet.ID, f.Seq)
	}
}

// BufferedFlits returns the number of flits held in input FIFOs.
func (r *specRouter) BufferedFlits() int {
	n := 0
	for _, q := range r.in {
		n += q.Len()
	}
	return n
}

// PortStates implements Router: input FIFO occupancy plus the matching
// output's lock/reservation and link credits. A live reservation shows as
// the lock owner (both wedge the output on one input).
func (r *specRouter) PortStates(buf []PortState) []PortState {
	for p := 0; p < r.ports; p++ {
		ps := PortState{Buffered: r.in[p].Len(), OutMode: -1, OutLock: -1, OutCredits: -1}
		if r.outLink[p] != nil {
			ps.OutLock = r.lock[p]
			if ps.OutLock < 0 {
				ps.OutLock = r.res[p]
			}
			ps.OutCredits = r.outLink[p].Credits()
		}
		buf = append(buf, ps)
	}
	return buf
}

// Quiet implements sim.Quiescable. Empty input FIFOs are not sufficient
// here: a pending reservation lapses (is cleared) when the router evaluates
// a requestless cycle, so skipping a router that still holds one would
// preserve the reservation across the idle stretch and change behavior
// once traffic resumes. The router stays active until its reservations
// have lapsed. Locks held through upstream bubbles are safe to sleep on
// (held verbatim by empty cycles), and newlyExposed entries compare
// against absolute cycle numbers, so skipped cycles cannot alias them.
func (r *specRouter) Quiet() bool {
	for _, q := range r.in {
		if q.Len() != 0 {
			return false
		}
	}
	for _, res := range r.res {
		if res >= 0 {
			return false
		}
	}
	return true
}

// Flush implements Router: drains every input FIFO through drop and clears
// all locks, reservations, exposure markers, and staged actions.
func (r *specRouter) Flush(drop func(*noc.Flit)) {
	for p := range r.in {
		r.dropAll(&r.in[p], drop)
		r.lock[p] = -1
		r.res[p] = -1
		r.resPkt[p] = nil
		r.newlyExposed[p] = -1
		r.pops[p] = false
	}
	r.touched = 0
}

// allocatable reports whether input i's request may reach the allocator at
// the given cycle (Spec-Fast's newly-exposed restriction; always true for
// Spec-Accurate).
func (r *specRouter) allocatable(i int, cycle int64) bool {
	return r.accurate || r.newlyExposed[i] != cycle
}

// Compute performs speculative switch traversal and parallel allocation.
func (r *specRouter) Compute(cycle int64) {
	c := r.counters()

	req, head := r.req, r.head
	for i := range req {
		req[i] = 0
		head[i] = nil
	}
	for i := range r.in {
		f := r.in[i].Head()
		if f == nil {
			continue
		}
		head[i] = f
		if r.outLink[f.OutPort] == nil {
			panic("router: flit routed to unwired output")
		}
		req[f.OutPort] |= 1 << i
	}

	r.touched = 0
	for o := noc.Port(0); o < noc.Port(r.ports); o++ {
		link := r.outLink[o]
		if link == nil {
			continue
		}
		if req[o] == 0 && r.lock[o] < 0 && r.res[o] < 0 {
			// Nothing requesting and no held state: evaluating this output
			// would stage an exact hold, so the dirty walk skips it (and
			// Commit must not copy its stale Next entries).
			continue
		}
		r.touched |= 1 << uint(o)
		r.lockNext[o] = r.lock[o]
		r.resNext[o] = -1
		r.resPktNext[o] = nil
		if req[o] == 0 && r.lock[o] < 0 {
			// Nothing requesting; the pending reservation simply lapses
			// unused (it would be wasted only if requests it masked
			// existed, which they do not).
			continue
		}
		if !link.Ready(cycle) {
			// Backpressure (or injected stall): everything holds.
			r.resNext[o] = r.res[o]
			r.resPktNext[o] = r.resPkt[o]
			if pr := r.probe(); pr != nil {
				pr.CreditStall(cycle, r.node(), int(o))
			}
			continue
		}

		if owner := r.lock[o]; owner >= 0 {
			r.computeLocked(o, owner, req[o], head, cycle)
			continue
		}

		success := -1
		if res := r.res[o]; res >= 0 {
			// Reserved cycle: only the reservation holder may traverse, and
			// only if the packet that requested the reservation is still
			// there — a freshly exposed successor never requested it.
			if req[o]&(1<<res) != 0 && head[res].Packet == r.resPkt[o] {
				success = res
				r.traverse(o, res, head[res], cycle)
			} else {
				// The reservation was unnecessary — its requester already
				// departed or has nothing to send — and every other input
				// was masked: a wasted cycle (Spec-Fast's characteristic
				// inefficiency).
				c.WastedCycles++
			}
			// Switch-Next sees only the requests Switch-Fast saw — during a
			// reserved cycle that is the reservation holder alone. Spec-Fast
			// passes it through (manufacturing the unnecessary follow-on
			// reservation); Spec-Accurate removes the success, leaving
			// nothing to allocate, so the cycle after a reserved cycle is
			// speculative again.
			allocReq := req[o] & (1 << res)
			if r.accurate {
				if success >= 0 {
					allocReq &^= 1 << success
				}
			} else if !r.allocatable(res, cycle) {
				allocReq = 0
			}
			r.allocate(o, allocReq, head)
			continue
		}

		// Unreserved: every requester traverses speculatively.
		switch bits.OnesCount32(req[o]) {
		case 1:
			i := bits.TrailingZeros32(req[o])
			success = i
			r.traverse(o, i, head[i], cycle)
		default:
			// Misspeculation: contention drives an indeterminate value on
			// the channel; the cycle and the channel energy are wasted.
			c.LinkInvalid++
			c.WastedCycles++
			c.Collisions++
			if pr := r.probe(); pr != nil {
				pr.Collision(cycle, r.node(), int(o), bits.OnesCount32(req[o]), 0)
			}
		}
		var allocReq uint32
		if r.accurate {
			allocReq = req[o]
			if success >= 0 {
				allocReq &^= 1 << success
			}
		} else {
			allocReq = req[o]
			for i := 0; i < r.ports; i++ {
				if allocReq&(1<<i) != 0 && !r.allocatable(i, cycle) {
					allocReq &^= 1 << i
				}
			}
		}
		r.allocate(o, allocReq, head)
	}
}

// computeLocked advances a multi-flit packet holding output o.
func (r *specRouter) computeLocked(o noc.Port, owner int, req uint32, head []*noc.Flit, cycle int64) {
	c := r.counters()
	if req&(1<<owner) != 0 {
		r.traverse(o, owner, head[owner], cycle)
	}
	if r.accurate {
		// Spec-Accurate overrides arbitration while a multi-flit packet is
		// under transmission.
		return
	}
	// Spec-Fast: only the owner's own (non-newly-exposed) request reaches
	// the allocator; at the tail cycle this manufactures the trailing
	// unnecessary reservation.
	allocReq := req & (1 << owner)
	if !r.allocatable(owner, cycle) {
		allocReq = 0
	}
	if allocReq != 0 {
		g, _ := r.arb[o].Grant(allocReq)
		c.Arb++
		r.resNext[o] = g
		r.resPktNext[o] = head[g].Packet
	}
}

// traverse stages a successful switch traversal of head f from input i to
// output o.
func (r *specRouter) traverse(o noc.Port, i int, f *noc.Flit, cycle int64) {
	c := r.counters()
	if f.MultiFlit() {
		if f.Seq == 0 {
			r.lockNext[o] = i
		}
		if f.Tail() {
			r.lockNext[o] = -1
		}
	}
	r.outLink[o].Send(f)
	r.pops[i] = true
	c.Xbar++
	c.LinkFlit++
	c.OutputActive++
	if pr := r.probe(); pr != nil {
		pr.Traverse(cycle, r.node(), int(o), f.Packet.ID, f.Seq)
	}
}

// allocate runs the parallel allocator over allocReq and stages next
// cycle's reservation. A reservation is suppressed when it would collide
// with a multi-flit lock engaging next cycle.
func (r *specRouter) allocate(o noc.Port, allocReq uint32, head []*noc.Flit) {
	if allocReq == 0 {
		return
	}
	if r.lockNext[o] >= 0 {
		// A multi-flit head traversed this cycle; the lock owns the output.
		return
	}
	g, _ := r.arb[o].Grant(allocReq)
	r.counters().Arb++
	r.resNext[o] = g
	r.resPktNext[o] = head[g].Packet
}

// Commit pops traversed flits, returns credits, applies reservations and
// locks, and tracks newly exposed packets.
func (r *specRouter) Commit(cycle int64) {
	c := r.counters()
	pr := r.probe()
	for i := range r.in {
		if r.pops[i] {
			r.pops[i] = false
			f := r.in[i].Pop()
			c.BufRead++
			if pr != nil {
				pr.BufRead(cycle, r.node(), i, 1)
			}
			r.returnCredits(noc.Port(i), 1)
			if f.Tail() && !r.in[i].Empty() {
				// The next packet was exposed by this departure; it may
				// not arbitrate during its first head cycle (Spec-Fast).
				r.newlyExposed[i] = cycle + 1
			}
		}
	}
	for m := r.touched; m != 0; m &= m - 1 {
		o := bits.TrailingZeros32(m)
		r.lock[o] = r.lockNext[o]
		r.res[o] = r.resNext[o]
		r.resPkt[o] = r.resPktNext[o]
	}
	if pr != nil {
		pr.Occupancy(r.node(), r.BufferedFlits())
	}
}
