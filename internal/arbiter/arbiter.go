// Package arbiter implements the output arbiters used by every router in
// the study. All four router microarchitectures arbitrate identically; they
// differ only in *when* the arbitration result is used (same cycle,
// speculative pre-schedule, or in parallel with XOR-coded traversal), which
// is exactly the comparison the paper sets up.
package arbiter

import "math/bits"

// Arbiter selects one requester from a bitmask of requests. Implementations
// must be work-conserving (grant whenever requests != 0) and produce at most
// one grant per invocation.
type Arbiter interface {
	// Grant picks a winner among the set bits of requests and returns its
	// index. ok is false iff requests == 0. A granted request updates the
	// arbiter's internal priority state.
	Grant(requests uint32) (winner int, ok bool)
	// Peek is Grant without the state update.
	Peek(requests uint32) (winner int, ok bool)
	// Width returns the number of request lines.
	Width() int
}

// RoundRobin is a rotating-priority arbiter: after granting input g, input
// g+1 (mod n) has the highest priority. This is the arbiter the paper's
// routers use; its rotation is what makes NoX decode order fair (§2.2:
// "Packets decoded by this means are received in the order which they won
// arbitration, maintaining any fairness or prioritization mechanisms").
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin returns an arbiter over n request lines with initial
// priority at line 0.
func NewRoundRobin(n int) *RoundRobin {
	rr := &RoundRobin{}
	rr.Init(n)
	return rr
}

// Init initializes a zero RoundRobin in place over n request lines — the
// slab-construction form letting a router carve its per-output arbiters from
// one allocation.
func (a *RoundRobin) Init(n int) {
	if n <= 0 || n > 32 {
		panic("arbiter: width must be in [1,32]")
	}
	*a = RoundRobin{n: n}
}

// Width returns the number of request lines.
func (a *RoundRobin) Width() int { return a.n }

// Peek returns the requester that would win without rotating the priority:
// the lowest set bit at or above the priority pointer, wrapping to the
// lowest set bit overall. Two trailing-zero counts replace the rotate-and-
// scan loop on what is the single hottest decision in every router.
func (a *RoundRobin) Peek(requests uint32) (int, bool) {
	if requests == 0 {
		return 0, false
	}
	if hi := requests >> uint(a.next); hi != 0 {
		return a.next + bits.TrailingZeros32(hi), true
	}
	return bits.TrailingZeros32(requests), true
}

// Grant returns the highest-priority requester and rotates priority past it.
func (a *RoundRobin) Grant(requests uint32) (int, bool) {
	w, ok := a.Peek(requests)
	if ok {
		a.next = w + 1
		if a.next == a.n {
			a.next = 0
		}
	}
	return w, ok
}

// Matrix is a least-recently-served matrix arbiter, provided as an ablation
// alternative to RoundRobin. state[i][j] == true means input i beats input j.
type Matrix struct {
	n    int
	over [][]bool
}

// NewMatrix returns a matrix arbiter over n lines; initially lower indices
// have priority.
func NewMatrix(n int) *Matrix {
	if n <= 0 || n > 32 {
		panic("arbiter: width must be in [1,32]")
	}
	m := &Matrix{n: n, over: make([][]bool, n)}
	for i := range m.over {
		m.over[i] = make([]bool, n)
		for j := i + 1; j < n; j++ {
			m.over[i][j] = true
		}
	}
	return m
}

// Width returns the number of request lines.
func (m *Matrix) Width() int { return m.n }

// Peek returns the requester that beats all other requesters.
func (m *Matrix) Peek(requests uint32) (int, bool) {
	if requests == 0 {
		return 0, false
	}
	for i := 0; i < m.n; i++ {
		if requests&(1<<i) == 0 {
			continue
		}
		wins := true
		for j := 0; j < m.n; j++ {
			if j == i || requests&(1<<j) == 0 {
				continue
			}
			if !m.over[i][j] {
				wins = false
				break
			}
		}
		if wins {
			return i, true
		}
	}
	// The matrix invariant (antisymmetry) guarantees a unique winner among
	// any non-empty request set, so this is unreachable.
	panic("arbiter: matrix priority relation is inconsistent")
}

// Grant returns the winner and demotes it below every other input.
func (m *Matrix) Grant(requests uint32) (int, bool) {
	w, ok := m.Peek(requests)
	if !ok {
		return 0, false
	}
	for j := 0; j < m.n; j++ {
		if j != w {
			m.over[w][j] = false
			m.over[j][w] = true
		}
	}
	return w, ok
}
