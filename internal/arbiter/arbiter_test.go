package arbiter

import (
	"testing"
	"testing/quick"
)

// TestRoundRobinRotation verifies exact rotation under full load: each of n
// continuously requesting inputs is served once every n cycles.
func TestRoundRobinRotation(t *testing.T) {
	const n = 5
	a := NewRoundRobin(n)
	all := uint32(1<<n) - 1
	var got []int
	for i := 0; i < 2*n; i++ {
		w, ok := a.Grant(all)
		if !ok {
			t.Fatal("no grant with all requesting")
		}
		got = append(got, w)
	}
	for i, w := range got {
		if w != i%n {
			t.Fatalf("grant sequence %v not a rotation", got)
		}
	}
}

// TestGrantProperties property-checks both arbiters: a grant is always a
// requester, produced iff requests exist, and Peek agrees with Grant.
func TestGrantProperties(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Arbiter
	}{
		{"RoundRobin", func() Arbiter { return NewRoundRobin(5) }},
		{"Matrix", func() Arbiter { return NewMatrix(5) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.mk()
			f := func(reqRaw uint8) bool {
				req := uint32(reqRaw) & 0x1f
				pw, pok := a.Peek(req)
				w, ok := a.Grant(req)
				if ok != (req != 0) || pok != ok {
					return false
				}
				if !ok {
					return true
				}
				return w == pw && req&(1<<w) != 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFairnessUnderLoad verifies both arbiters spread grants evenly when
// everyone requests continuously — the property NoX decode order inherits.
func TestFairnessUnderLoad(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() Arbiter
	}{
		{"RoundRobin", func() Arbiter { return NewRoundRobin(5) }},
		{"Matrix", func() Arbiter { return NewMatrix(5) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.mk()
			all := uint32(1<<5) - 1
			counts := make([]int, 5)
			const rounds = 1000
			for i := 0; i < rounds; i++ {
				w, _ := a.Grant(all)
				counts[w]++
			}
			for i, got := range counts {
				if got != rounds/5 {
					t.Errorf("input %d granted %d times, want %d", i, got, rounds/5)
				}
			}
		})
	}
}

// TestMatrixLeastRecentlyServed verifies the matrix arbiter's defining
// property: after being served, an input loses to everyone until they are
// served too.
func TestMatrixLeastRecentlyServed(t *testing.T) {
	m := NewMatrix(3)
	w, _ := m.Grant(0b111)
	if w != 0 {
		t.Fatalf("initial winner %d, want 0", w)
	}
	// 0 must now lose to both 1 and 2.
	if w, _ := m.Grant(0b011); w != 1 {
		t.Errorf("want 1 to beat freshly served 0, got %d", w)
	}
	if w, _ := m.Grant(0b101); w != 2 {
		t.Errorf("want 2 to beat 0, got %d", w)
	}
}

// TestPeekDoesNotMutate verifies Peek leaves priority state untouched.
func TestPeekDoesNotMutate(t *testing.T) {
	a := NewRoundRobin(4)
	for i := 0; i < 3; i++ {
		if w, _ := a.Peek(0b1111); w != 0 {
			t.Fatalf("Peek mutated state: winner %d", w)
		}
	}
}

// TestSingleRequester verifies a lone requester always wins immediately.
func TestSingleRequester(t *testing.T) {
	a := NewRoundRobin(5)
	a.Grant(0b11111) // rotate priority away from 3
	if w, ok := a.Grant(1 << 3); !ok || w != 3 {
		t.Fatalf("lone requester 3 got grant=%d ok=%v", w, ok)
	}
}

func TestWidthValidation(t *testing.T) {
	for _, bad := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d accepted", bad)
				}
			}()
			NewRoundRobin(bad)
		}()
	}
}
