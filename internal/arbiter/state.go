package arbiter

import (
	"errors"
	"fmt"
)

// ErrUnsupported reports an arbiter implementation the snapshot layer cannot
// capture. The two built-in arbiters round-trip exactly; a custom Arbiter
// must either be avoided in checkpointed runs or be stateless.
var ErrUnsupported = errors.New("arbiter: unsupported arbiter type for state capture")

// State extracts an arbiter's priority state as a flat word vector:
// RoundRobin is its rotation pointer, Matrix is its priority relation packed
// row-major, 64 cells per word. Custom implementations return
// ErrUnsupported.
func State(a Arbiter) ([]uint64, error) {
	switch a := a.(type) {
	case *RoundRobin:
		return []uint64{uint64(a.next)}, nil
	case *Matrix:
		words := make([]uint64, (a.n*a.n+63)/64)
		for i := 0; i < a.n; i++ {
			for j := 0; j < a.n; j++ {
				if a.over[i][j] {
					cell := i*a.n + j
					words[cell>>6] |= 1 << (cell & 63)
				}
			}
		}
		return words, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupported, a)
	}
}

// Restore overwrites an arbiter's priority state with a vector captured by
// State from an arbiter of the same type and width. Malformed vectors return
// an error rather than corrupting the arbiter.
func Restore(a Arbiter, state []uint64) error {
	switch a := a.(type) {
	case *RoundRobin:
		if len(state) != 1 || state[0] >= uint64(a.n) {
			return fmt.Errorf("arbiter: bad round-robin state %v for width %d", state, a.n)
		}
		a.next = int(state[0])
		return nil
	case *Matrix:
		if len(state) != (a.n*a.n+63)/64 {
			return fmt.Errorf("arbiter: bad matrix state length %d for width %d", len(state), a.n)
		}
		cell := func(i, j int) bool {
			c := i*a.n + j
			return state[c>>6]&(1<<(c&63)) != 0
		}
		// Reject relations that violate the matrix invariant (irreflexive,
		// antisymmetric) before touching the arbiter: an inconsistent relation
		// would make Peek's unique-winner guarantee panic later.
		for i := 0; i < a.n; i++ {
			if cell(i, i) {
				return fmt.Errorf("arbiter: matrix state is reflexive at %d", i)
			}
			for j := i + 1; j < a.n; j++ {
				if cell(i, j) == cell(j, i) {
					return fmt.Errorf("arbiter: matrix state is not antisymmetric at (%d,%d)", i, j)
				}
			}
		}
		for i := 0; i < a.n; i++ {
			for j := 0; j < a.n; j++ {
				a.over[i][j] = cell(i, j)
			}
		}
		return nil
	default:
		return fmt.Errorf("%w: %T", ErrUnsupported, a)
	}
}
