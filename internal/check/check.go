// Package check is a runtime invariant layer that can be armed on any
// simulation. It records protocol violations instead of panicking — under
// fault injection a violated invariant is the *expected* outcome, and on
// the sharded kernel a worker-goroutine panic is unrecoverable — and keeps
// an end-to-end delivery oracle: every injected packet must be delivered
// bit-exact or accounted for by a fault.
//
// The package is dependency-free so every layer (core, router, network,
// harness) can report into it. All methods are nil-receiver-safe: a
// disarmed simulation passes a nil *Checker and pays only a nil check.
package check

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Kind classifies a violation.
type Kind uint8

const (
	// KindPayload: a delivered flit's payload differs from the injected
	// payload (delivery oracle, noc.PayloadWord identity).
	KindPayload Kind = iota
	// KindMisroute: a flit arrived at a network interface other than its
	// packet's destination.
	KindMisroute
	// KindSequence: flit sequencing broke at delivery — a body flit with no
	// head in reassembly, or interleaving within one virtual channel.
	KindSequence
	// KindDecode: a Recovery-mode XOR decode failed bit-exactness — the
	// register and incoming flit's constituent sets or raw images are
	// inconsistent (wire.Decode error).
	KindDecode
	// KindMode: a NoX protocol FSM assertion failed — e.g. a multi-flit
	// abort did not force Scheduled mode until the tail (§2.7).
	KindMode
	// KindOverflow: a flit arrived at a full buffer (credit protocol
	// violated upstream).
	KindOverflow
	// KindCredit: post-drain credit conservation failed on a link.
	KindCredit
	// KindArena: post-drain flit-arena Outstanding was nonzero on a run
	// with no leak-producing fault.
	KindArena
	// KindLost: an injected packet was neither delivered nor impacted by
	// any fault (delivery oracle, Finalize).
	KindLost
	// KindWatchdog: the deadlock/livelock watchdog tripped.
	KindWatchdog

	NumKinds = 10
)

// String returns the short report label for the kind.
func (k Kind) String() string {
	switch k {
	case KindPayload:
		return "payload"
	case KindMisroute:
		return "misroute"
	case KindSequence:
		return "sequence"
	case KindDecode:
		return "decode"
	case KindMode:
		return "mode"
	case KindOverflow:
		return "overflow"
	case KindCredit:
		return "credit"
	case KindArena:
		return "arena"
	case KindLost:
		return "lost"
	case KindWatchdog:
		return "watchdog"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Violation is one recorded invariant failure. Node/Port/Packet are -1/0
// when not applicable.
type Violation struct {
	Cycle  int64
	Kind   Kind
	Node   int32
	Port   int32
	Packet uint64
	Detail string
}

// String renders the violation as one deterministic report line.
func (v Violation) String() string {
	return fmt.Sprintf("cycle=%d kind=%s node=%d port=%d pkt=%d %s",
		v.Cycle, v.Kind, v.Node, v.Port, v.Packet, v.Detail)
}

// Config selects which invariant families are armed. The zero Config arms
// nothing (but the checker still tracks inject/deliver counts).
type Config struct {
	// Delivery arms the end-to-end oracle: payload/misroute/sequence checks
	// at delivery and the lost-packet scan in Finalize.
	Delivery bool
	// Conservation arms the post-drain credit and arena checks.
	Conservation bool
	// Protocol arms the NoX-specific assertions: decode bit-exactness,
	// mode-FSM transitions, buffer-overflow guards.
	Protocol bool
	// MaxViolations caps the violations kept in memory (default 1024);
	// overflow is counted, not stored, so a pathological campaign cannot
	// exhaust memory.
	MaxViolations int
}

// All returns a Config with every family armed.
func All() Config {
	return Config{Delivery: true, Conservation: true, Protocol: true}
}

// Checker accumulates violations and delivery state for one simulation (or
// one multi-class group sharing packet IDs). Safe for concurrent use by the
// sharded kernel's workers.
type Checker struct {
	cfg Config
	max int

	mu            sync.Mutex
	violations    []Violation
	truncated     int64
	counts        [NumKinds]int64
	inflight      map[uint64]int64 // packet id -> inject cycle
	injected      int64
	delivered     int64
	undeliverable int64
	leaky         bool
	finalized     bool

	// observer, when set, is called with a copy of every recorded violation,
	// outside the checker's lock. It runs on whichever goroutine reported the
	// violation — under sharded stepping that is a worker — so it must be
	// safe for concurrent use and must not read simulation state. The flight
	// recorder (internal/telemetry) uses it to latch its dump trigger.
	observer func(Violation)
}

// New returns an armed checker.
func New(cfg Config) *Checker {
	max := cfg.MaxViolations
	if max <= 0 {
		max = 1024
	}
	return &Checker{cfg: cfg, max: max, inflight: make(map[uint64]int64)}
}

// Armed reports whether the checker is present; nil-safe.
func (c *Checker) Armed() bool { return c != nil }

// SetObserver installs (or, with nil, removes) the violation observer; see
// the field contract. Install before arming the simulation — installation
// is not synchronized with concurrent record calls.
func (c *Checker) SetObserver(fn func(Violation)) {
	if c == nil {
		return
	}
	c.observer = fn
}

func (c *Checker) record(v Violation) {
	c.mu.Lock()
	c.counts[v.Kind]++
	if len(c.violations) < c.max {
		c.violations = append(c.violations, v)
	} else {
		c.truncated++
	}
	obs := c.observer
	c.mu.Unlock()
	if obs != nil {
		obs(v)
	}
}

// OnInject registers an injected packet with the delivery oracle.
func (c *Checker) OnInject(cycle int64, id uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.injected++
	c.inflight[id] = cycle
	c.mu.Unlock()
}

// OnDeliver retires a packet from the delivery oracle.
func (c *Checker) OnDeliver(cycle int64, id uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.delivered++
	delete(c.inflight, id)
	c.mu.Unlock()
}

// OnUndeliverable retires a packet the network has proven can never be
// delivered — its destination is unreachable after a permanent fault, or
// end-to-end retransmission exhausted its retries. The packet is accounted
// (not lost): Finalize will not scan it, and it is not a violation. The
// undeliverable disposition is what lets a partitioned network drain to
// quiescence without tripping the deadlock or lost-packet oracles.
func (c *Checker) OnUndeliverable(cycle int64, id uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.undeliverable++
	delete(c.inflight, id)
	c.mu.Unlock()
}

// Payload reports a delivered flit whose payload mismatches the injected
// pattern.
func (c *Checker) Payload(cycle int64, node int, pkt uint64, seq int, got, want uint64) {
	if c == nil || !c.cfg.Delivery {
		return
	}
	c.record(Violation{Cycle: cycle, Kind: KindPayload, Node: int32(node), Port: -1, Packet: pkt,
		Detail: fmt.Sprintf("seq=%d got=%#x want=%#x", seq, got, want)})
}

// Misroute reports a flit delivered to the wrong network interface.
func (c *Checker) Misroute(cycle int64, node int, pkt uint64, dst int) {
	if c == nil || !c.cfg.Delivery {
		return
	}
	c.record(Violation{Cycle: cycle, Kind: KindMisroute, Node: int32(node), Port: -1, Packet: pkt,
		Detail: fmt.Sprintf("packet dst=%d", dst)})
}

// Sequence reports broken flit sequencing at delivery.
func (c *Checker) Sequence(cycle int64, node int, pkt uint64, detail string) {
	if c == nil || !c.cfg.Delivery {
		return
	}
	c.record(Violation{Cycle: cycle, Kind: KindSequence, Node: int32(node), Port: -1, Packet: pkt, Detail: detail})
}

// Decode reports a failed Recovery-mode XOR reconstruction.
func (c *Checker) Decode(cycle int64, node, port int, err error) {
	if c == nil || !c.cfg.Protocol {
		return
	}
	c.record(Violation{Cycle: cycle, Kind: KindDecode, Node: int32(node), Port: int32(port),
		Detail: err.Error()})
}

// Mode reports a NoX output-controller FSM assertion failure.
func (c *Checker) Mode(cycle int64, node, port int, detail string) {
	if c == nil || !c.cfg.Protocol {
		return
	}
	c.record(Violation{Cycle: cycle, Kind: KindMode, Node: int32(node), Port: int32(port), Detail: detail})
}

// Overflow reports a flit arriving at a full buffer; the flit is swallowed
// by the caller.
func (c *Checker) Overflow(cycle int64, node, port int, pkt uint64) {
	if c == nil || !c.cfg.Protocol {
		return
	}
	c.record(Violation{Cycle: cycle, Kind: KindOverflow, Node: int32(node), Port: int32(port), Packet: pkt,
		Detail: "flit arrived at full buffer, swallowed"})
	c.MarkLeaky()
}

// Credit reports a post-drain per-link credit conservation failure.
func (c *Checker) Credit(cycle int64, site, got, want int) {
	if c == nil || !c.cfg.Conservation {
		return
	}
	c.record(Violation{Cycle: cycle, Kind: KindCredit, Node: -1, Port: int32(site),
		Detail: fmt.Sprintf("link site %d: credits=%d want=%d", site, got, want)})
}

// Arena reports nonzero post-drain arena occupancy on a leak-free run.
func (c *Checker) Arena(cycle int64, outstanding int) {
	if c == nil || !c.cfg.Conservation {
		return
	}
	c.record(Violation{Cycle: cycle, Kind: KindArena, Node: -1, Port: -1,
		Detail: fmt.Sprintf("arena outstanding=%d after drain", outstanding)})
}

// Watchdog reports a deadlock/livelock trip; always recorded regardless of
// the armed families.
func (c *Checker) Watchdog(cycle int64, detail string) {
	if c == nil {
		return
	}
	c.record(Violation{Cycle: cycle, Kind: KindWatchdog, Node: -1, Port: -1, Detail: detail})
}

// MarkLeaky records that pooled flit objects may legitimately have leaked
// (swallowed flits), disabling the arena-exactness part of Finalize-time
// conservation.
func (c *Checker) MarkLeaky() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.leaky = true
	c.mu.Unlock()
}

// Leaky reports whether MarkLeaky was called.
func (c *Checker) Leaky() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaky
}

// Finalize runs the end-of-run delivery oracle: every still-inflight packet
// is either impacted by a fault (accounted) or recorded as lost. impacted
// may be nil when no faults were injected. Idempotent: only the first call
// scans. Returns (lost, accounted).
func (c *Checker) Finalize(cycle int64, impacted func(id uint64) bool) (lost, accounted int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	if c.finalized {
		c.mu.Unlock()
		return 0, 0
	}
	c.finalized = true
	ids := make([]uint64, 0, len(c.inflight))
	for id := range c.inflight {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if impacted != nil && impacted(id) {
			accounted++
			continue
		}
		lost++
		if c.cfg.Delivery {
			c.mu.Lock()
			injectCycle := c.inflight[id]
			c.mu.Unlock()
			c.record(Violation{Cycle: cycle, Kind: KindLost, Node: -1, Port: -1, Packet: id,
				Detail: fmt.Sprintf("injected at cycle %d, never delivered, no fault accounts for it", injectCycle)})
		}
	}
	return lost, accounted
}

// Violations returns a sorted copy of the recorded violations (by cycle,
// then kind, node, port, packet) so reports are deterministic regardless of
// the recording interleave across shard workers.
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.Packet < b.Packet
	})
	return out
}

// Counts returns the per-kind violation totals (including truncated ones).
func (c *Checker) Counts() [NumKinds]int64 {
	if c == nil {
		return [NumKinds]int64{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

// Total returns the overall violation count, including any past the
// MaxViolations storage cap.
func (c *Checker) Total() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, v := range c.counts {
		n += v
	}
	return n
}

// Injected and Delivered return the oracle's packet totals.
func (c *Checker) Injected() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// Delivered returns how many packets the oracle saw retired.
func (c *Checker) Delivered() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delivered
}

// Undeliverable returns how many packets were retired as provably
// undeliverable (see OnUndeliverable).
func (c *Checker) Undeliverable() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.undeliverable
}

// WriteReport writes the violation summary and the stored violations (in
// deterministic order) to w.
func (c *Checker) WriteReport(w io.Writer) {
	if c == nil {
		fmt.Fprintln(w, "check: not armed")
		return
	}
	counts := c.Counts()
	fmt.Fprintf(w, "check: injected=%d delivered=%d undeliverable=%d violations=%d\n",
		c.Injected(), c.Delivered(), c.Undeliverable(), c.Total())
	for k := Kind(0); k < NumKinds; k++ {
		if counts[k] > 0 {
			fmt.Fprintf(w, "  %-9s %d\n", k, counts[k])
		}
	}
	for _, v := range c.Violations() {
		fmt.Fprintf(w, "  %s\n", v)
	}
	c.mu.Lock()
	trunc := c.truncated
	c.mu.Unlock()
	if trunc > 0 {
		fmt.Fprintf(w, "  (+%d further violations not stored)\n", trunc)
	}
}

// Watchdog detects no-forward-progress windows: if the delivered-packet
// count does not advance for Window cycles while packets are outstanding,
// the run is declared wedged (livelock or starvation).
type Watchdog struct {
	// Window is the no-progress trip threshold in cycles.
	Window int64

	lastCycle     int64
	lastDelivered int64
}

// Reset starts (or restarts) the progress clock at the given observation.
func (w *Watchdog) Reset(cycle, delivered int64) {
	w.lastCycle, w.lastDelivered = cycle, delivered
}

// Observe feeds one observation; tripped reports whether Window cycles
// passed without a delivery, and stalledFor how long progress has been
// absent.
func (w *Watchdog) Observe(cycle, delivered int64) (stalledFor int64, tripped bool) {
	if delivered != w.lastDelivered {
		w.lastCycle, w.lastDelivered = cycle, delivered
		return 0, false
	}
	stalledFor = cycle - w.lastCycle
	return stalledFor, w.Window > 0 && stalledFor >= w.Window
}
