package check

import (
	"errors"
	"strings"
	"testing"
)

// TestNilCheckerSafe: every method on a nil *Checker must be a no-op — the
// disarmed hot path relies on it.
func TestNilCheckerSafe(t *testing.T) {
	var c *Checker
	c.OnInject(1, 1)
	c.OnDeliver(2, 1)
	c.Payload(1, 0, 1, 0, 1, 2)
	c.Misroute(1, 0, 1, 2)
	c.Sequence(1, 0, 1, "x")
	c.Decode(1, 0, 0, errors.New("x"))
	c.Mode(1, 0, 0, "x")
	c.Overflow(1, 0, 0, 1)
	c.Credit(1, 0, 1, 2)
	c.Arena(1, 3)
	c.Watchdog(1, "x")
	c.MarkLeaky()
	if c.Armed() || c.Leaky() || c.Total() != 0 || c.Injected() != 0 || c.Delivered() != 0 {
		t.Error("nil checker reported state")
	}
	if v := c.Violations(); v != nil {
		t.Errorf("nil checker returned violations: %v", v)
	}
	if lost, acc := c.Finalize(1, nil); lost != 0 || acc != 0 {
		t.Error("nil Finalize returned counts")
	}
	var sb strings.Builder
	c.WriteReport(&sb)
	if !strings.Contains(sb.String(), "not armed") {
		t.Errorf("nil report: %q", sb.String())
	}
}

// TestFamilyGating: violations outside the armed families are dropped; the
// watchdog records regardless.
func TestFamilyGating(t *testing.T) {
	c := New(Config{Delivery: true}) // protocol + conservation disarmed
	c.Payload(1, 0, 1, 0, 1, 2)
	c.Decode(1, 0, 0, errors.New("x"))
	c.Credit(1, 0, 1, 2)
	c.Watchdog(1, "wedged")
	counts := c.Counts()
	if counts[KindPayload] != 1 {
		t.Error("armed delivery violation dropped")
	}
	if counts[KindDecode] != 0 || counts[KindCredit] != 0 {
		t.Error("disarmed-family violations recorded")
	}
	if counts[KindWatchdog] != 1 {
		t.Error("watchdog violation gated away")
	}
}

// TestDeliveryOracle: Finalize classifies still-inflight packets as lost or
// accounted, deterministically, exactly once.
func TestDeliveryOracle(t *testing.T) {
	c := New(All())
	for id := uint64(1); id <= 5; id++ {
		c.OnInject(int64(id), id)
	}
	c.OnDeliver(10, 2)
	c.OnDeliver(11, 4)
	impacted := func(id uint64) bool { return id == 3 }
	lost, accounted := c.Finalize(100, impacted)
	if lost != 2 || accounted != 1 {
		t.Fatalf("Finalize = (%d lost, %d accounted), want (2, 1)", lost, accounted)
	}
	vs := c.Violations()
	if len(vs) != 2 || vs[0].Kind != KindLost || vs[1].Kind != KindLost {
		t.Fatalf("violations: %v", vs)
	}
	if vs[0].Packet != 1 || vs[1].Packet != 5 {
		t.Errorf("lost packets %d,%d want 1,5 (sorted)", vs[0].Packet, vs[1].Packet)
	}
	if l2, a2 := c.Finalize(200, impacted); l2 != 0 || a2 != 0 {
		t.Error("second Finalize rescanned")
	}
	if c.Total() != 2 {
		t.Errorf("total %d after idempotent finalize, want 2", c.Total())
	}
}

// TestViolationCapAndSorting: storage is capped (counts keep accumulating)
// and Violations returns a deterministically sorted copy.
func TestViolationCapAndSorting(t *testing.T) {
	c := New(Config{Delivery: true, MaxViolations: 3})
	c.Sequence(30, 2, 7, "c")
	c.Sequence(10, 1, 5, "a")
	c.Sequence(20, 0, 6, "b")
	c.Sequence(40, 3, 8, "overflowed")
	c.Sequence(50, 4, 9, "overflowed")
	if got := c.Total(); got != 5 {
		t.Errorf("total %d, want 5 (cap must not drop counts)", got)
	}
	vs := c.Violations()
	if len(vs) != 3 {
		t.Fatalf("stored %d, want cap 3", len(vs))
	}
	for i := 1; i < len(vs); i++ {
		if vs[i-1].Cycle > vs[i].Cycle {
			t.Fatalf("violations not sorted by cycle: %v", vs)
		}
	}
	var sb strings.Builder
	c.WriteReport(&sb)
	if !strings.Contains(sb.String(), "+2 further") {
		t.Errorf("report does not mention truncation:\n%s", sb.String())
	}
}

// TestOverflowMarksLeaky: a swallowed overflow flit disables the
// arena-exactness expectation.
func TestOverflowMarksLeaky(t *testing.T) {
	c := New(All())
	if c.Leaky() {
		t.Fatal("fresh checker leaky")
	}
	c.Overflow(1, 0, 2, 7)
	if !c.Leaky() {
		t.Error("overflow did not mark the run leaky")
	}
}

func TestWatchdogProgress(t *testing.T) {
	var w Watchdog
	w.Window = 100
	w.Reset(0, 0)
	if _, tripped := w.Observe(99, 0); tripped {
		t.Error("tripped before the window elapsed")
	}
	if stalled, tripped := w.Observe(100, 0); !tripped || stalled != 100 {
		t.Errorf("Observe(100) = (%d, %v), want (100, true)", stalled, tripped)
	}
	// A delivery resets the clock.
	if _, tripped := w.Observe(150, 1); tripped {
		t.Error("tripped on the observation that made progress")
	}
	if _, tripped := w.Observe(249, 1); tripped {
		t.Error("tripped before a full window since last progress")
	}
	if _, tripped := w.Observe(250, 1); !tripped {
		t.Error("did not trip a full window after last progress")
	}
	// Window 0 disables the trip entirely.
	var off Watchdog
	off.Reset(0, 0)
	if _, tripped := off.Observe(1 << 40, 0); tripped {
		t.Error("zero-window watchdog tripped")
	}
}
