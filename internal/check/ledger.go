package check

// Ledger is the checker's complete serializable state, exported so the
// snapshot layer (which owns the wire format — this package stays
// dependency-free) can checkpoint an armed checker mid-run and restore it
// into a fresh one. The observer hook is deliberately not part of the
// ledger: it is wiring, re-installed by whoever arms the restored run.
type Ledger struct {
	Violations []Violation
	Truncated  int64
	Counts     [NumKinds]int64
	// Inflight maps packet id to inject cycle for packets the delivery
	// oracle has not yet seen retired.
	Inflight      map[uint64]int64
	Injected      int64
	Delivered     int64
	Undeliverable int64
	Leaky         bool
	Finalized     bool
}

// Ledger returns a deep copy of the checker's current state. Violations come
// out in recording order (not report order), so a restored checker re-saves
// byte-identically. Nil-safe: a nil checker returns a zero ledger.
func (c *Checker) Ledger() Ledger {
	if c == nil {
		return Ledger{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	l := Ledger{
		Violations:    append([]Violation(nil), c.violations...),
		Truncated:     c.truncated,
		Counts:        c.counts,
		Inflight:      make(map[uint64]int64, len(c.inflight)),
		Injected:      c.injected,
		Delivered:     c.delivered,
		Undeliverable: c.undeliverable,
		Leaky:         c.leaky,
		Finalized:     c.finalized,
	}
	for id, cyc := range c.inflight {
		l.Inflight[id] = cyc
	}
	return l
}

// RestoreLedger overwrites the checker's state with a previously captured
// ledger (deep-copied; the caller keeps ownership of l). The checker's
// armed families, violation cap, and observer are left as configured.
func (c *Checker) RestoreLedger(l Ledger) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.violations = append(c.violations[:0], l.Violations...)
	c.truncated = l.Truncated
	c.counts = l.Counts
	c.inflight = make(map[uint64]int64, len(l.Inflight))
	for id, cyc := range l.Inflight {
		c.inflight[id] = cyc
	}
	c.injected = l.Injected
	c.delivered = l.Delivered
	c.undeliverable = l.Undeliverable
	c.leaky = l.Leaky
	c.finalized = l.Finalized
}
