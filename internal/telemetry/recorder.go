package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/check"
	"repro/internal/probe"
)

// DefaultFlightWindow is the failure window W, in cycles, a flight dump
// covers when the recorder's config leaves Window zero.
const DefaultFlightWindow = 4096

// DefaultFlightRing is the recorder's probe ring capacity in events. It is
// sized for the window: a saturated 8x8 mesh emits a few events per router
// per cycle only near the hotspot, so 64 Ki events comfortably covers 4 Ki
// cycles of failure-adjacent traffic while costing ~1.5 MiB once, up front.
const DefaultFlightRing = 1 << 16

// DefaultFlightKeep is the number of flight dumps retained per directory
// when RecorderConfig.Keep is zero. Long fault campaigns can trip hundreds
// of recorders; without a cap the dump directory grows without bound.
const DefaultFlightKeep = 16

// flightDumps counts failure-window dumps written by every recorder in the
// process, for the nox_flight_dumps_total metric.
var flightDumps atomic.Int64

// FlightDumps returns the number of failure-window dumps written so far.
func FlightDumps() int64 { return flightDumps.Load() }

// DefaultFlightDir returns the dump directory used when RecorderConfig.Dir
// is empty.
func DefaultFlightDir() string { return filepath.Join(os.TempDir(), "nox-flight") }

// RecorderConfig configures one flight recorder.
type RecorderConfig struct {
	// Window is the failure window W in cycles; a dump covers
	// [trigger-W+1, trigger]. 0 selects DefaultFlightWindow.
	Window int64
	// RingEvents is the probe ring capacity (rounded up to a power of two by
	// internal/probe). 0 selects DefaultFlightRing.
	RingEvents int
	// Dir receives the dump files. Empty selects DefaultFlightDir().
	Dir string
	// Label distinguishes this recorder's dump files: flight-<label>.trace.json
	// and flight-<label>.report.txt. Sanitized to filesystem-safe characters.
	Label string
	// Keep caps the number of dump stems retained in Dir: after a successful
	// dump, the oldest stems beyond the cap are evicted (trace, report, and
	// any replay trace). 0 selects DefaultFlightKeep; negative disables
	// eviction.
	Keep int
	// PeriodNs scales trace timestamps; settable later via SetPeriodNs while
	// the probe has not yet been created.
	PeriodNs float64
	// Logger receives the dump notice; nil uses slog.Default().
	Logger *slog.Logger
}

// Recorder is the always-on flight recorder: a bounded, allocation-free
// probe ring that shadows a simulation and, on the first failure trigger
// (oracle violation, watchdog trip, drain deadlock), snapshots the last W
// cycles of events to a Perfetto/Chrome trace plus a diagnostic report.
//
// The steady-state cost is the probe's ring store per event — no
// allocations, no locks beyond the probe's own discipline — which is what
// lets the harness arm it by default. Trigger may be called from shard
// workers (the checker observer fires under concurrent stepping); it only
// latches trigger metadata. Flush must be called from the stepping
// goroutine once stepping has stopped, like every other probe read.
//
// A nil *Recorder is a valid disarmed recorder: every method no-ops.
type Recorder struct {
	cfg RecorderConfig

	trig atomic.Bool // fast path for the checker observer

	mu        sync.Mutex
	probe     *probe.Probe
	triggered bool
	cycle     int64
	reason    string
	flushed   bool
	tracePath string
}

// NewRecorder returns an armed recorder. The probe ring is created lazily on
// the first Probe call, so constructing a recorder that never attaches to a
// network costs nothing.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Window <= 0 {
		cfg.Window = DefaultFlightWindow
	}
	if cfg.RingEvents <= 0 {
		cfg.RingEvents = DefaultFlightRing
	}
	if cfg.Dir == "" {
		cfg.Dir = DefaultFlightDir()
	}
	if cfg.Label == "" {
		cfg.Label = "run"
	}
	if cfg.Keep == 0 {
		cfg.Keep = DefaultFlightKeep
	}
	return &Recorder{cfg: cfg}
}

// SetPeriodNs sets the clock period used for trace timestamps. It must be
// called before the probe is first attached; later calls are ignored.
func (r *Recorder) SetPeriodNs(ns float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.probe == nil {
		r.cfg.PeriodNs = ns
	}
	r.mu.Unlock()
}

// Probe returns the recorder's probe, creating it on first use. Wire it as
// network.Config.Probe; a nil recorder returns a nil (disabled) probe.
func (r *Recorder) Probe() *probe.Probe {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.probe == nil {
		r.probe = probe.New(probe.Config{RingEvents: r.cfg.RingEvents, PeriodNs: r.cfg.PeriodNs})
	}
	return r.probe
}

// BindChecker installs a violation observer on ck so the first recorded
// violation (oracle, protocol, watchdog) arms the dump.
func (r *Recorder) BindChecker(ck *check.Checker) {
	if r == nil || ck == nil {
		return
	}
	ck.SetObserver(func(v check.Violation) {
		if r.trig.Load() {
			return
		}
		r.Trigger(v.Cycle, fmt.Sprintf("check violation: %s", v))
	})
}

// Trigger latches the failure that a later Flush will dump. The first
// trigger wins; subsequent calls are no-ops. Safe from any goroutine.
func (r *Recorder) Trigger(cycle int64, reason string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.triggered {
		r.triggered = true
		r.cycle = cycle
		r.reason = reason
		r.trig.Store(true)
	}
	r.mu.Unlock()
}

// Triggered reports whether a failure has been latched.
func (r *Recorder) Triggered() bool {
	return r != nil && r.trig.Load()
}

// Window returns the cycle window [start, end] a dump would cover, valid
// once triggered.
func (r *Recorder) Window() (start, end int64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start = r.cycle - r.cfg.Window + 1
	if start < 0 {
		start = 0
	}
	return start, r.cycle
}

// TracePath returns the trace file written by Flush, empty before a dump.
func (r *Recorder) TracePath() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracePath
}

// Flush writes the failure-window dump if a trigger is latched: a Chrome
// trace of the last W cycles plus a diagnostic report (trigger metadata,
// then whatever diag writes — typically network.WriteDiagnostic). It runs at
// most once per recorder and returns the trace path ("" when not
// triggered). diag may be nil. Call from the stepping goroutine after
// stepping has stopped.
func (r *Recorder) Flush(diag func(io.Writer)) (string, error) {
	if r == nil {
		return "", nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.triggered || r.flushed || r.probe == nil {
		return "", nil
	}
	r.flushed = true

	start := r.cycle - r.cfg.Window + 1
	if start < 0 {
		start = 0
	}
	end := r.cycle
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return "", fmt.Errorf("telemetry: flight dump: %w", err)
	}
	stem := filepath.Join(r.cfg.Dir, "flight-"+sanitizeLabel(r.cfg.Label))
	tracePath := stem + ".trace.json"
	reportPath := stem + ".report.txt"

	tf, err := os.Create(tracePath)
	if err != nil {
		return "", fmt.Errorf("telemetry: flight dump: %w", err)
	}
	werr := r.probe.WriteChromeTraceWindow(tf, start, end)
	if cerr := tf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", fmt.Errorf("telemetry: flight dump %s: %w", tracePath, werr)
	}

	rf, err := os.Create(reportPath)
	if err != nil {
		return "", fmt.Errorf("telemetry: flight dump: %w", err)
	}
	fmt.Fprintf(rf, "flight recorder dump\n")
	fmt.Fprintf(rf, "reason: %s\n", r.reason)
	fmt.Fprintf(rf, "trigger cycle: %d\n", r.cycle)
	fmt.Fprintf(rf, "window: [%d, %d] (%d cycles)\n", start, end, end-start+1)
	fmt.Fprintf(rf, "ring: %d events recorded, %d overwritten\n", r.probe.EventCount(), r.probe.Dropped())
	fmt.Fprintf(rf, "trace: %s\n", tracePath)
	if diag != nil {
		fmt.Fprintln(rf)
		diag(rf)
	}
	if err := rf.Close(); err != nil {
		return "", fmt.Errorf("telemetry: flight dump %s: %w", reportPath, err)
	}

	r.tracePath = tracePath
	flightDumps.Add(1)
	pruneFlightDumps(r.cfg.Dir, r.cfg.Keep, stem)
	log := r.cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	log.Warn("flight recorder: dumped failure window",
		"reason", r.reason,
		"trigger_cycle", r.cycle,
		"window_start", start,
		"window_end", end,
		"trace", tracePath,
		"report", reportPath)
	return tracePath, nil
}

// pruneFlightDumps evicts the oldest dump stems in dir beyond keep, never
// evicting justWrote (the stem the caller just dumped). A stem is one
// flight-<label> prefix; eviction removes its trace, report, and any replay
// trace together. Eviction failures are ignored — retention is best-effort
// hygiene, and the dump that triggered it already succeeded.
func pruneFlightDumps(dir string, keep int, justWrote string) {
	if keep < 0 {
		return
	}
	traces, err := filepath.Glob(filepath.Join(dir, "flight-*.trace.json"))
	if err != nil {
		return
	}
	type stemAge struct {
		stem string
		mod  int64
	}
	var stems []stemAge
	for _, tr := range traces {
		if strings.HasSuffix(tr, ".replay.trace.json") {
			continue // counted with its parent stem
		}
		stem := strings.TrimSuffix(tr, ".trace.json")
		if stem == justWrote {
			continue
		}
		fi, err := os.Stat(tr)
		if err != nil {
			continue
		}
		stems = append(stems, stemAge{stem, fi.ModTime().UnixNano()})
	}
	excess := len(stems) + 1 - keep // +1: the stem just written
	if excess <= 0 {
		return
	}
	sort.Slice(stems, func(i, j int) bool { return stems[i].mod < stems[j].mod })
	for _, s := range stems[:min(excess, len(stems))] {
		os.Remove(s.stem + ".trace.json")
		os.Remove(s.stem + ".report.txt")
		os.Remove(s.stem + ".replay.trace.json")
	}
}

// sanitizeLabel maps a run label to filesystem-safe characters.
func sanitizeLabel(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			b[i] = '-'
		}
	}
	return string(b)
}
