package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Hub fans progress snapshots out to Server-Sent-Events subscribers. A nil
// hub drops everything; publishing with no subscribers is two atomic-ish
// operations, so the sampler can publish unconditionally.
type Hub struct {
	mu   sync.Mutex
	subs map[chan []byte]struct{}
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{subs: map[chan []byte]struct{}{}} }

// Subscribers returns the number of connected SSE clients.
func (h *Hub) Subscribers() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Publish sends one event payload to every subscriber, dropping it for
// subscribers whose buffers are full — a slow client never blocks the
// simulation.
func (h *Hub) Publish(payload []byte) {
	if h == nil {
		return
	}
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- payload:
		default:
		}
	}
	h.mu.Unlock()
}

func (h *Hub) subscribe() chan []byte {
	ch := make(chan []byte, 8)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch
}

func (h *Hub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	delete(h.subs, ch)
	h.mu.Unlock()
}

// ServeHTTP streams hub events as text/event-stream, one `data:` line per
// published snapshot, until the client disconnects.
func (h *Hub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch := h.subscribe()
	defer h.unsubscribe(ch)
	for {
		select {
		case <-r.Context().Done():
			return
		case payload := <-ch:
			if _, err := fmt.Fprintf(w, "data: %s\n\n", payload); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// Server is the live telemetry endpoint: Prometheus metrics, expvar, pprof,
// and the SSE progress stream, bound to one listener.
type Server struct {
	// Addr is the bound listen address (host:port), useful with ":0".
	Addr string

	srv *http.Server
	ln  net.Listener
}

// StartServer binds addr and serves telemetry in a background goroutine.
func StartServer(addr string, reg *Registry, hub *Hub) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<!DOCTYPE html><title>nox telemetry</title><h1>nox telemetry</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/events">/events</a> — SSE progress stream</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>
<li><a href="/healthz">/healthz</a></li>
</ul>`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			_ = reg.WritePrometheus(w)
		}
	})
	if hub != nil {
		mux.Handle("/events", hub)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})

	s := &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the server and its listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
