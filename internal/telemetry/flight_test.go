package telemetry_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/physical"
	"repro/internal/probe"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// xorTamper is the planted XOR-masking bug from the network fault tests: it
// flips one bit in every encoded flit on the wire, breaking the NoX decode
// bit-exactness identity, and refuses to account for the packets it corrupts
// (leaky), so the delivery oracle must catch it.
type xorTamper struct{}

func (xorTamper) TamperFlit(site int32, cycle int64, f *noc.Flit) bool {
	if f.Encoded {
		f.Raw ^= 1 << 17
	}
	return false
}
func (xorTamper) TamperCredits(site int32, cycle int64, n int) int { return n }
func (xorTamper) LinkStalled(site int32, cycle int64) bool         { return false }
func (xorTamper) BindSites(n int)                                  {}
func (xorTamper) CreditDelta(site int) int                         { return 0 }
func (xorTamper) Impacted(id uint64) bool                          { return false }
func (xorTamper) Leaky() bool                                      { return true }

// runXORScenario replays the checker negative-control workload — hotspot
// contention on a 4x4 NoX mesh with the XOR bug armed — against the given
// probe and checker. The simulator is deterministic, so two calls produce
// identical event streams.
func runXORScenario(pr *probe.Probe, ck *check.Checker) {
	topo := noc.Topology{Width: 4, Height: 4}
	n := network.New(network.Config{Topo: topo, Arch: router.NoX, Check: ck, Fault: xorTamper{}, Probe: pr})
	defer n.Close()
	for round := 0; round < 10; round++ {
		for id := 1; id < topo.Nodes(); id++ {
			n.Inject(noc.NodeID(id), 0, 1, 0)
		}
		n.Step()
	}
	_ = n.DrainChecked(5000, 1000)
	n.CheckInvariants()
}

// TestFlightRecorderNegativeControl arms the flight recorder on a run with a
// planted XOR-masking bug and checks the failure-window dump is faithful:
// the auto-dumped trace must byte-match a full-probe export of the same
// window from an identical run. If the recorder's bounded ring dropped,
// reordered, or mis-windowed events, the bytes diverge.
func TestFlightRecorderNegativeControl(t *testing.T) {
	dumpsBefore := telemetry.FlightDumps()
	periodNs := physical.ClockPeriodNs(router.NoX)

	// Run 1: recorder armed via the checker observer, default window/ring.
	rec := telemetry.NewRecorder(telemetry.RecorderConfig{
		Dir: t.TempDir(), Label: "negative-control", PeriodNs: periodNs,
	})
	ck := check.New(check.All())
	rec.BindChecker(ck)
	runXORScenario(rec.Probe(), ck)

	if ck.Counts()[check.KindDecode] == 0 {
		t.Fatal("scenario did not produce decode violations — negative control is broken")
	}
	if !rec.Triggered() {
		t.Fatal("checker recorded violations but the recorder never triggered")
	}
	path, err := rec.Flush(nil)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if path == "" || path != rec.TracePath() {
		t.Fatalf("Flush path %q, TracePath %q", path, rec.TracePath())
	}
	if telemetry.FlightDumps() <= dumpsBefore {
		t.Error("flight dump counter did not advance")
	}
	dumped, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read dump: %v", err)
	}

	// Run 2: identical scenario captured by an unbounded full probe; export
	// exactly the window the recorder dumped.
	full := probe.New(probe.Config{RingEvents: 1 << 18, PeriodNs: periodNs})
	runXORScenario(full, check.New(check.All()))
	start, end := rec.Window()
	var want bytes.Buffer
	if err := full.WriteChromeTraceWindow(&want, start, end); err != nil {
		t.Fatalf("WriteChromeTraceWindow: %v", err)
	}
	if !bytes.Equal(dumped, want.Bytes()) {
		t.Errorf("flight dump diverges from full-probe window [%d,%d]: dump %d bytes, full %d bytes",
			start, end, len(dumped), want.Len())
	}

	// The report rides along with the trace.
	report, err := os.ReadFile(path[:len(path)-len(".trace.json")] + ".report.txt")
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	if !bytes.Contains(report, []byte("check violation")) {
		t.Errorf("report does not name the trigger:\n%s", report)
	}
}

// TestFlightRecorderRingWrap drives enough traffic through a deliberately
// tiny recorder ring to wrap it many times over, then checks the ring
// discipline: retained events stay chronological, EventsWindow agrees with a
// manual filter over Events for arbitrary windows, and the post-wrap dump is
// still a parsable non-empty trace.
func TestFlightRecorderRingWrap(t *testing.T) {
	rec := telemetry.NewRecorder(telemetry.RecorderConfig{
		Dir: t.TempDir(), Label: "ring-wrap", RingEvents: 256, Window: 512,
	})
	pr := rec.Probe()
	net := network.New(network.Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: router.NoX, Probe: pr})
	defer net.Close()

	rng := sim.NewRNG(7)
	nodes := net.Topology().Nodes()
	for cyc := 0; cyc < 2000; cyc++ {
		src := noc.NodeID(rng.Intn(nodes))
		dst := noc.NodeID(rng.Intn(nodes))
		if src != dst {
			net.Inject(src, dst, 2, 0)
		}
		net.Step()
	}

	if pr.Dropped() == 0 {
		t.Fatalf("ring never wrapped: %d events in a 256-slot ring", pr.EventCount())
	}
	all := pr.Events()
	if len(all) != 256 {
		t.Fatalf("wrapped ring retained %d events, want 256", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Cycle < all[i-1].Cycle {
			t.Fatalf("retained events out of order at %d: cycle %d after %d", i, all[i].Cycle, all[i-1].Cycle)
		}
	}

	lo, hi := all[0].Cycle, all[len(all)-1].Cycle
	windows := [][2]int64{
		{lo, hi},                         // everything retained
		{lo - 100, hi + 100},             // superset
		{lo + (hi-lo)/4, hi - (hi-lo)/4}, // interior
		{hi + 1, hi + 50},                // past the end: empty
		{0, lo - 1},                      // overwritten prefix: empty
	}
	for _, w := range windows {
		got := pr.EventsWindow(w[0], w[1])
		var want int
		for _, ev := range all {
			if ev.Cycle >= w[0] && ev.Cycle <= w[1] {
				want++
			}
		}
		if len(got) != want {
			t.Errorf("EventsWindow[%d,%d] returned %d events, manual filter %d", w[0], w[1], len(got), want)
			continue
		}
		for i, ev := range got {
			if ev.Cycle < w[0] || ev.Cycle > w[1] {
				t.Errorf("EventsWindow[%d,%d] event %d at cycle %d outside window", w[0], w[1], i, ev.Cycle)
			}
		}
	}

	// A dump after heavy wrap still yields a valid, non-empty trace.
	rec.Trigger(net.Cycle(), "ring-wrap test")
	path, err := rec.Flush(nil)
	if err != nil || path == "" {
		t.Fatalf("Flush after wrap: %q, %v", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read dump: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("post-wrap dump is not valid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("post-wrap dump holds no events")
	}
}

// TestFlightRetention pins the dump-directory cap: with Keep=3, flushing
// into a directory that already holds five older stems must leave exactly
// three — the fresh dump plus the two youngest survivors — and must take
// each evicted stem's report and replay trace with it.
func TestFlightRetention(t *testing.T) {
	dir := t.TempDir()
	old := time.Now().Add(-time.Hour)
	for i := 0; i < 5; i++ {
		stem := filepath.Join(dir, fmt.Sprintf("flight-old%d", i))
		for _, suffix := range []string{".trace.json", ".report.txt", ".replay.trace.json"} {
			if err := os.WriteFile(stem+suffix, []byte("{}"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		// Distinct mtimes, oldest first, so eviction order is deterministic.
		ts := old.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(stem+".trace.json", ts, ts); err != nil {
			t.Fatal(err)
		}
	}

	rec := telemetry.NewRecorder(telemetry.RecorderConfig{Dir: dir, Label: "fresh", Keep: 3})
	rec.Probe()
	rec.Trigger(100, "retention test")
	path, err := rec.Flush(nil)
	if err != nil || path == "" {
		t.Fatalf("Flush: %q, %v", path, err)
	}

	traces, err := filepath.Glob(filepath.Join(dir, "flight-*.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var stems []string
	for _, tr := range traces {
		if !strings.HasSuffix(tr, ".replay.trace.json") {
			stems = append(stems, strings.TrimSuffix(tr, ".trace.json"))
		}
	}
	sort.Strings(stems)
	want := []string{
		filepath.Join(dir, "flight-fresh"),
		filepath.Join(dir, "flight-old3"),
		filepath.Join(dir, "flight-old4"),
	}
	if !slices.Equal(stems, want) {
		t.Fatalf("retained stems %v, want %v", stems, want)
	}
	// Evicted stems lose every file, survivors keep theirs.
	if _, err := os.Stat(filepath.Join(dir, "flight-old0.report.txt")); !os.IsNotExist(err) {
		t.Errorf("evicted stem's report survives: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "flight-old0.replay.trace.json")); !os.IsNotExist(err) {
		t.Errorf("evicted stem's replay trace survives: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "flight-old4.replay.trace.json")); err != nil {
		t.Errorf("surviving stem lost its replay trace: %v", err)
	}
}

// TestRecorderSteadyStateZeroAllocs proves the armed recorder is free on the
// hot path: stepping a loaded network with the flight ring attached must not
// allocate. This is the property that justifies arming it by default.
func TestRecorderSteadyStateZeroAllocs(t *testing.T) {
	rec := telemetry.NewRecorder(telemetry.RecorderConfig{
		Dir: t.TempDir(), Label: "allocs", PeriodNs: physical.ClockPeriodNs(router.NoX),
	})
	net := network.New(network.Config{Arch: router.NoX, Probe: rec.Probe()})
	defer net.Close()

	rng := sim.NewRNG(1)
	topo := net.Topology()
	for n := 0; n < topo.Nodes(); n++ {
		for k := 0; k < 4; k++ {
			dst := noc.NodeID(rng.Intn(topo.Nodes()))
			if dst != noc.NodeID(n) {
				net.Inject(noc.NodeID(n), dst, 64, 0)
			}
		}
	}
	// Warm the arenas and reach a flowing steady state.
	for i := 0; i < 200; i++ {
		net.Step()
	}
	if avg := testing.AllocsPerRun(200, func() { net.Step() }); avg != 0 {
		t.Errorf("steady-state Step with armed recorder allocates %.2f/op, want 0", avg)
	}
}
