package telemetry

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/batch"
	"repro/internal/exp"
)

// Flags is the shared telemetry flag set every simulating command installs
// via AddFlags.
type Flags struct {
	// HTTP is the -http listen address; empty leaves the server off.
	HTTP string
	// Progress enables periodic structured progress records on stderr.
	Progress bool
	// LogFormat selects the slog handler: "text" or "json".
	LogFormat string
	// Flight arms the flight recorder (on by default).
	Flight bool
	// FlightWindow is the failure window W in cycles.
	FlightWindow int64
	// FlightDir overrides the dump directory.
	FlightDir string
	// FlightKeep caps retained dumps in the dump directory (oldest evicted).
	FlightKeep int
}

// AddFlags registers the telemetry flags on fs and returns the destination
// struct; call Start after fs.Parse.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.HTTP, "http", "", "serve live telemetry on this address (/metrics, /events, /debug/pprof; e.g. 127.0.0.1:9077, :0 picks a port)")
	fs.BoolVar(&f.Progress, "progress", false, "log periodic progress records to stderr")
	fs.StringVar(&f.LogFormat, "log", "text", "structured log format: text or json")
	fs.BoolVar(&f.Flight, "flight", true, "arm the flight recorder: auto-dump a Perfetto trace of the failure window on oracle/watchdog/deadlock trips")
	fs.Int64Var(&f.FlightWindow, "flight-window", DefaultFlightWindow, "flight recorder failure window W in cycles")
	fs.StringVar(&f.FlightDir, "flight-dir", "", "directory for flight-recorder dumps (default "+DefaultFlightDir()+")")
	fs.IntVar(&f.FlightKeep, "flight-keep", DefaultFlightKeep, "retain at most this many flight dumps, evicting the oldest (-1 = unlimited)")
	return f
}

// Session is one tool invocation's telemetry plane: the shared slog
// handler, the progress sampler (nil unless -progress or -http asked for
// it), the metrics registry and HTTP server (nil unless -http), and the
// flight-recorder factory.
type Session struct {
	flags   *Flags
	logger  *slog.Logger
	sampler *Sampler
	server  *Server
}

// Start builds the session: it installs the process-wide slog handler and,
// when requested, starts the telemetry server. The serving line
// "telemetry: serving on http://ADDR" is printed to stderr in plain form so
// scripts (telemetry-smoke) can scrape the bound address.
func (f *Flags) Start(tool string) (*Session, error) {
	var h slog.Handler
	opts := &slog.HandlerOptions{Level: slog.LevelInfo}
	switch f.LogFormat {
	case "json":
		h = slog.NewJSONHandler(os.Stderr, opts)
	case "text", "":
		h = slog.NewTextHandler(os.Stderr, opts)
	default:
		return nil, fmt.Errorf("telemetry: unknown -log format %q (want text or json)", f.LogFormat)
	}
	logger := slog.New(h).With("tool", tool)
	slog.SetDefault(logger)

	s := &Session{flags: f, logger: logger}
	if f.Progress || f.HTTP != "" {
		s.sampler = NewSampler(time.Second)
		if f.Progress {
			s.sampler.EnableLog(logger)
		}
	}
	if f.HTTP != "" {
		reg := NewRegistry()
		hub := NewHub()
		s.sampler.SetHub(hub)
		s.sampler.Register(reg)
		registerRuntimeMetrics(reg)
		srv, err := StartServer(f.HTTP, reg, hub)
		if err != nil {
			return nil, err
		}
		s.server = srv
		fmt.Fprintf(os.Stderr, "telemetry: serving on http://%s\n", srv.Addr)
	}
	return s, nil
}

// registerRuntimeMetrics adds the process-level gauges: worker-pool and
// cohort occupancy, flight-dump count, uptime.
func registerRuntimeMetrics(reg *Registry) {
	start := time.Now()
	reg.AddGaugeFunc("nox_pool_busy_workers", "experiment-pool workers currently executing a point", func() float64 { return float64(exp.BusyWorkers()) })
	reg.AddGaugeFunc("nox_cohort_live_members", "members currently live (not parked) across batched cohorts", func() float64 { return float64(batch.LiveMembers()) })
	reg.AddGaugeFunc("nox_cohort_active", "batched lockstep cohorts currently open", func() float64 { return float64(batch.ActiveCohorts()) })
	reg.AddCounterFunc("nox_flight_dumps_total", "flight-recorder failure-window dumps written", func() float64 { return float64(FlightDumps()) })
	reg.AddGaugeFunc("nox_uptime_seconds", "seconds since the telemetry session started", func() float64 { return time.Since(start).Seconds() })
}

// Logger returns the session logger.
func (s *Session) Logger() *slog.Logger {
	if s == nil {
		return slog.Default()
	}
	return s.logger
}

// Sampler returns the progress sampler; nil (a valid no-op sampler) when
// neither -progress nor -http was given.
func (s *Session) Sampler() *Sampler {
	if s == nil {
		return nil
	}
	return s.sampler
}

// Addr returns the bound telemetry address, empty when the server is off.
func (s *Session) Addr() string {
	if s == nil || s.server == nil {
		return ""
	}
	return s.server.Addr
}

// NewRecorder returns a flight recorder labeled for one run, or nil when
// -flight=false. The factory shape is what the harness threads through
// sweeps and cohorts so every member gets its own recorder.
func (s *Session) NewRecorder(label string) *Recorder {
	if s == nil || !s.flags.Flight {
		return nil
	}
	return NewRecorder(RecorderConfig{
		Window: s.flags.FlightWindow,
		Dir:    s.flags.FlightDir,
		Label:  label,
		Keep:   s.flags.FlightKeep,
		Logger: s.logger,
	})
}

// Close shuts the telemetry server down.
func (s *Session) Close() {
	if s != nil {
		_ = s.server.Close()
	}
}
