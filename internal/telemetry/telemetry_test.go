package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/power"
)

// TestRegistryRoundTrip renders a registry holding every metric shape the
// package emits and feeds the output back through ParseExposition — the
// format the telemetry-smoke gate validates against a live server.
func TestRegistryRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.AddCounterFunc("nox_test_total", "a counter", func() float64 { return 42 })
	reg.AddGaugeFunc("nox_test_gauge", "a gauge", func() float64 { return 2.5 })
	reg.AddRaw(ArchEventWriter(func() map[string]power.Counters {
		return map[string]power.Counters{
			"NoX":      {Xbar: 7, Decode: 3},
			"Non-Spec": {BufWrite: 1},
		}
	}))

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE nox_test_total counter",
		"nox_test_total 42",
		"# TYPE nox_test_gauge gauge",
		"nox_test_gauge 2.5",
		`nox_arch_events_total{arch="NoX",event="xbar"} 7`,
		`nox_arch_events_total{arch="Non-Spec",event="buf_write"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	samples, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseExposition rejected registry output: %v", err)
	}
	// Two scalars plus 13 event kinds for each of the two architectures.
	if want := 2 + 2*13; samples != want {
		t.Errorf("ParseExposition counted %d samples, want %d", samples, want)
	}
}

func TestParseExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"no value", "nox_cycles_total\n"},
		{"bad value", "nox_cycles_total forty\n"},
		{"bad name", "9leading_digit 1\n"},
		{"unterminated labels", `nox_x{arch="NoX" 1` + "\n"},
		{"bad type comment", "# TYPE nox_x flavor\n"},
		{"bad timestamp", "nox_x 1 soon\n"},
		{"trailing garbage", "nox_x 1 2 3\n"},
	}
	for _, tc := range cases {
		if _, err := ParseExposition([]byte(tc.doc)); err == nil {
			t.Errorf("%s: ParseExposition accepted %q", tc.name, tc.doc)
		}
	}
	// Accepted shapes: free-form comments, blank lines, labels with escaped
	// quotes, explicit timestamps.
	ok := "# just a comment\n\nnox_x{l=\"a\\\"b\"} 1 1700000000\nnox_y 2\n"
	samples, err := ParseExposition([]byte(ok))
	if err != nil {
		t.Fatalf("ParseExposition rejected valid doc: %v", err)
	}
	if samples != 2 {
		t.Errorf("counted %d samples, want 2", samples)
	}
}

func TestSamplerCounts(t *testing.T) {
	s := NewSampler(time.Hour) // throttle never fires during the test
	for i := 0; i < 5; i++ {
		s.Observe(int64(i), 3)
	}
	s.CountInject(4, 8)
	s.CountDeliver(2, 2)
	s.RunStarted()
	s.RunDone("NoX", power.Counters{Xbar: 10})
	s.RunDone("NoX", power.Counters{Xbar: 5, Decode: 1})

	snap := s.Snapshot()
	if snap.CyclesTotal != 5 || snap.ActiveComponents != 3 {
		t.Errorf("cycles=%d active=%d, want 5/3", snap.CyclesTotal, snap.ActiveComponents)
	}
	if snap.InjectedPackets != 4 || snap.InjectedFlits != 8 {
		t.Errorf("injected %d/%d, want 4/8", snap.InjectedPackets, snap.InjectedFlits)
	}
	if snap.DeliveredPackets != 2 || snap.DeliveredFlits != 2 {
		t.Errorf("delivered %d/%d, want 2/2", snap.DeliveredPackets, snap.DeliveredFlits)
	}
	if snap.RunsStarted != 1 || snap.RunsDone != 2 {
		t.Errorf("runs %d/%d, want 1 started 2 done", snap.RunsStarted, snap.RunsDone)
	}
	arch := s.archSnapshot()
	if got := arch["NoX"]; got.Xbar != 15 || got.Decode != 1 {
		t.Errorf("arch totals did not accumulate: %+v", got)
	}

	// The sampler's registry output must itself round-trip.
	reg := NewRegistry()
	s.Register(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if _, err := ParseExposition(buf.Bytes()); err != nil {
		t.Fatalf("sampler exposition does not parse: %v", err)
	}
}

// TestNilSafety exercises every nil-receiver path the hot loops rely on: a
// disabled telemetry plane must cost only the nil checks, never panic.
func TestNilSafety(t *testing.T) {
	var s *Sampler
	s.Observe(1, 2)
	s.CountInject(1, 1)
	s.CountDeliver(1, 1)
	s.RunStarted()
	s.RunDone("NoX", power.Counters{})
	s.Tick(1)
	s.Done(1)
	s.EnableLog(nil)
	s.SetHub(nil)
	s.Register(NewRegistry())
	if snap := s.Snapshot(); snap != (Snapshot{}) {
		t.Errorf("nil sampler snapshot not zero: %+v", snap)
	}

	var r *Recorder
	r.SetPeriodNs(1)
	r.BindChecker(nil)
	r.Trigger(1, "x")
	if r.Triggered() {
		t.Error("nil recorder reports triggered")
	}
	if p := r.Probe(); p != nil {
		t.Error("nil recorder returned a live probe")
	}
	if path, err := r.Flush(nil); path != "" || err != nil {
		t.Errorf("nil recorder Flush = %q, %v", path, err)
	}

	var h *Hub
	h.Publish([]byte("x"))
	if h.Subscribers() != 0 {
		t.Error("nil hub has subscribers")
	}

	var srv *Server
	if err := srv.Close(); err != nil {
		t.Errorf("nil server Close: %v", err)
	}
}

func TestRecorderTriggerFirstWins(t *testing.T) {
	r := NewRecorder(RecorderConfig{Dir: t.TempDir(), Window: 100})
	if r.Triggered() {
		t.Fatal("fresh recorder already triggered")
	}
	r.Trigger(500, "first failure")
	r.Trigger(900, "second failure")
	if !r.Triggered() {
		t.Fatal("recorder not triggered")
	}
	start, end := r.Window()
	if start != 401 || end != 500 {
		t.Errorf("window [%d,%d], want [401,500] (first trigger wins)", start, end)
	}

	// Early triggers clamp the window start at cycle 0.
	r2 := NewRecorder(RecorderConfig{Dir: t.TempDir(), Window: 100})
	r2.Trigger(10, "early")
	if start, end := r2.Window(); start != 0 || end != 10 {
		t.Errorf("window [%d,%d], want [0,10]", start, end)
	}
}

func TestRecorderFlushWithoutTrigger(t *testing.T) {
	r := NewRecorder(RecorderConfig{Dir: t.TempDir()})
	r.Probe() // armed and attached, but nothing failed
	path, err := r.Flush(nil)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if path != "" {
		t.Errorf("untriggered recorder dumped %q", path)
	}
	if r.TracePath() != "" {
		t.Errorf("untriggered recorder has trace path %q", r.TracePath())
	}
}

func TestSanitizeLabel(t *testing.T) {
	for in, want := range map[string]string{
		"app-blackscholes-NoX": "app-blackscholes-NoX",
		"future mesh/8x8:Spec": "future-mesh-8x8-Spec",
		"a_b.c-1":              "a_b.c-1",
	} {
		if got := sanitizeLabel(in); got != want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHubPublishSubscribe(t *testing.T) {
	h := NewHub()
	h.Publish([]byte("dropped")) // no subscribers: must not block or panic
	ch := h.subscribe()
	if h.Subscribers() != 1 {
		t.Fatalf("Subscribers = %d, want 1", h.Subscribers())
	}
	h.Publish([]byte("hello"))
	select {
	case got := <-ch:
		if string(got) != "hello" {
			t.Errorf("subscriber got %q", got)
		}
	default:
		t.Error("published event not delivered to subscriber")
	}
	// A full subscriber buffer drops events instead of blocking the publisher.
	for i := 0; i < cap(ch)+4; i++ {
		h.Publish([]byte("burst"))
	}
	h.unsubscribe(ch)
	if h.Subscribers() != 0 {
		t.Errorf("Subscribers = %d after unsubscribe", h.Subscribers())
	}
}

// TestServerEndpoints boots the live telemetry server on an ephemeral port
// and scrapes every endpoint the Makefile's telemetry-smoke target curls.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.AddCounterFunc("nox_cycles_total", "cycles", func() float64 { return 123 })
	srv, err := StartServer("127.0.0.1:0", reg, NewHub())
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, body
	}

	if code, body := get("/metrics"); code != http.StatusOK {
		t.Errorf("/metrics status %d", code)
	} else {
		n, err := ParseExposition(body)
		if err != nil || n == 0 {
			t.Errorf("/metrics not valid exposition (%d samples): %v\n%s", n, err, body)
		}
		if !strings.Contains(string(body), "nox_cycles_total 123") {
			t.Errorf("/metrics missing registered counter:\n%s", body)
		}
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(string(body), "memstats") {
		t.Errorf("/debug/vars = %d (memstats missing)", code)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}
	if code, body := get("/"); code != http.StatusOK || !strings.Contains(string(body), "/metrics") {
		t.Errorf("index = %d (endpoint catalogue missing)", code)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", code)
	}
}
