// Package telemetry is the runtime observability plane: a live metrics
// registry served in Prometheus text format, an SSE progress stream, a
// structured-logging session shared by the cmd tools, and an always-on
// flight recorder that snapshots the probe-event window leading up to an
// oracle, watchdog, or deadlock trip as a Perfetto/Chrome trace.
//
// The package sits between the simulation layers and the tools: internal
// packages stay free of HTTP and logging concerns (they expose counters and
// hooks), while every simulating command wires one Session in front of the
// harness. All hot-path types are nil-receiver-safe so a disabled telemetry
// plane costs only a nil check.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/power"
)

// Registry is an ordered set of metrics rendered in the Prometheus text
// exposition format (version 0.0.4). Metrics are read at scrape time via
// callbacks, so registering is cheap and the simulation never blocks on a
// scrape.
type Registry struct {
	mu      sync.Mutex
	entries []entry
}

type entry struct {
	name string
	help string
	typ  string // "counter" or "gauge"; empty for raw blocks
	fn   func() float64
	raw  func(io.Writer) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// AddCounterFunc registers a monotonically increasing metric read from fn at
// scrape time.
func (r *Registry) AddCounterFunc(name, help string, fn func() float64) {
	r.add(entry{name: name, help: help, typ: "counter", fn: fn})
}

// AddGaugeFunc registers a point-in-time metric read from fn at scrape time.
func (r *Registry) AddGaugeFunc(name, help string, fn func() float64) {
	r.add(entry{name: name, help: help, typ: "gauge", fn: fn})
}

// AddRaw registers a callback that writes complete exposition lines itself —
// the escape hatch for labeled metric families (per-architecture event
// counters) that a scalar callback cannot express.
func (r *Registry) AddRaw(fn func(io.Writer) error) {
	r.add(entry{raw: fn})
}

func (r *Registry) add(e entry) {
	r.mu.Lock()
	r.entries = append(r.entries, e)
	r.mu.Unlock()
}

// WritePrometheus renders every registered metric to w in registration
// order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := make([]entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	for _, e := range entries {
		if e.raw != nil {
			if err := e.raw(w); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			e.name, e.help, e.name, e.typ, e.name, formatValue(e.fn())); err != nil {
			return err
		}
	}
	return nil
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ArchEventWriter returns an AddRaw callback rendering per-architecture
// power.Counters as one labeled counter family:
//
//	nox_arch_events_total{arch="NoX",event="xbar"} 123
//
// snapshot must return a copy of the current arch -> counters map.
func ArchEventWriter(snapshot func() map[string]power.Counters) func(io.Writer) error {
	return func(w io.Writer) error {
		m := snapshot()
		if len(m) == 0 {
			return nil
		}
		archs := make([]string, 0, len(m))
		for a := range m {
			archs = append(archs, a)
		}
		sort.Strings(archs)
		if _, err := fmt.Fprintf(w, "# HELP nox_arch_events_total datapath events per architecture over completed runs\n# TYPE nox_arch_events_total counter\n"); err != nil {
			return err
		}
		for _, a := range archs {
			c := m[a]
			for _, ev := range []struct {
				name string
				v    int64
			}{
				{"buf_write", c.BufWrite}, {"buf_read", c.BufRead}, {"xbar", c.Xbar},
				{"link_flit", c.LinkFlit}, {"link_invalid", c.LinkInvalid}, {"arb", c.Arb},
				{"decode", c.Decode}, {"reg_write", c.RegWrite}, {"collisions", c.Collisions},
				{"encoded_flits", c.EncodedFlits}, {"aborts", c.Aborts},
				{"wasted_cycles", c.WastedCycles}, {"output_active", c.OutputActive},
			} {
				if _, err := fmt.Fprintf(w, "nox_arch_events_total{arch=%q,event=%q} %d\n", a, ev.name, ev.v); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// ParseExposition validates data against the Prometheus text exposition
// format and returns the number of sample lines. It accepts what the
// registry (and any well-formed exporter) emits: comment/HELP/TYPE lines,
// blank lines, and `name{labels} value [timestamp]` samples. A malformed
// line fails with its 1-based line number.
func ParseExposition(data []byte) (samples int, err error) {
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line); err != nil {
				return samples, fmt.Errorf("line %d: %w", i+1, err)
			}
			continue
		}
		if err := parseSample(line); err != nil {
			return samples, fmt.Errorf("line %d: %w", i+1, err)
		}
		samples++
	}
	return samples, nil
}

func parseComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	if len(fields) < 3 || !validMetricName(fields[2]) {
		return fmt.Errorf("malformed %s comment %q", fields[1], line)
	}
	if fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

func parseSample(line string) error {
	rest := line
	// Metric name.
	nameEnd := strings.IndexAny(rest, "{ \t")
	if nameEnd < 0 {
		return fmt.Errorf("sample %q has no value", line)
	}
	if !validMetricName(rest[:nameEnd]) {
		return fmt.Errorf("invalid metric name %q", rest[:nameEnd])
	}
	rest = rest[nameEnd:]
	// Optional label set.
	if strings.HasPrefix(rest, "{") {
		end, err := labelSetEnd(rest)
		if err != nil {
			return fmt.Errorf("sample %q: %w", line, err)
		}
		rest = rest[end:]
	}
	// Value and optional timestamp.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %q: want value [timestamp]", line)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("sample %q: bad value %q", line, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("sample %q: bad timestamp %q", line, fields[1])
		}
	}
	return nil
}

// labelSetEnd returns the index just past the closing '}' of a label set
// starting at s[0] == '{', honoring quoted (and escaped) label values.
func labelSetEnd(s string) (int, error) {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i + 1, nil
			}
		}
	}
	return 0, fmt.Errorf("unterminated label set")
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
