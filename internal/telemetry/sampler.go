package telemetry

import (
	"encoding/json"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/power"
)

// Sampler aggregates live progress across every simulation a tool runs: a
// simulated-cycle counter fed by the kernel observer hook, injected and
// delivered packet/flit counters fed by the harness run loops, and
// per-architecture datapath event totals folded in as runs complete. It is
// the single sink behind the /metrics endpoint, the SSE stream, and the
// -progress log records, replacing the old per-tool progress printers.
//
// All counting methods are nil-receiver-safe and lock-free (atomics), so
// they can sit on hot paths and be called from sweep workers and shard
// epilogues concurrently. Tick throttles the expensive publish work
// (rate computation, logging, SSE fan-out) to one firing per interval no
// matter how many runs tick it.
type Sampler struct {
	every time.Duration

	log *slog.Logger // non-nil => progress records are logged
	hub *Hub         // non-nil => snapshots are published as SSE events

	start time.Time

	cycles           atomic.Int64
	active           atomic.Int64
	injectedPackets  atomic.Int64
	injectedFlits    atomic.Int64
	deliveredPackets atomic.Int64
	deliveredFlits   atomic.Int64
	runsStarted      atomic.Int64
	runsDone         atomic.Int64
	cyclesPerSec     atomic.Uint64 // math.Float64bits

	lastNanos atomic.Int64 // publish throttle (unix nanos of last publish)

	mu         sync.Mutex
	lastCycles int64
	arch       map[string]power.Counters
}

// NewSampler returns a sampler publishing at most once per interval
// (every <= 0 selects one second).
func NewSampler(every time.Duration) *Sampler {
	if every <= 0 {
		every = time.Second
	}
	now := time.Now()
	s := &Sampler{every: every, start: now, arch: map[string]power.Counters{}}
	s.lastNanos.Store(now.UnixNano())
	return s
}

// EnableLog makes Tick and Done emit progress records through l.
func (s *Sampler) EnableLog(l *slog.Logger) {
	if s != nil {
		s.log = l
	}
}

// SetHub makes Tick publish JSON snapshots to h as SSE events.
func (s *Sampler) SetHub(h *Hub) {
	if s != nil {
		s.hub = h
	}
}

// Observe is the kernel observer hook (network.Config.Observer): it counts
// one simulated cycle and records the live active-component count. With
// several simulations running concurrently the cycle counter aggregates
// across all of them, and the active gauge reflects the most recent step of
// whichever network observed last.
func (s *Sampler) Observe(cycle int64, active int) {
	if s == nil {
		return
	}
	s.cycles.Add(1)
	s.active.Store(int64(active))
}

// CountInject records packets entering a network (flits = packets x length).
func (s *Sampler) CountInject(packets, flits int64) {
	if s == nil {
		return
	}
	s.injectedPackets.Add(packets)
	s.injectedFlits.Add(flits)
}

// CountDeliver records packets retired at their destination interface.
func (s *Sampler) CountDeliver(packets, flits int64) {
	if s == nil {
		return
	}
	s.deliveredPackets.Add(packets)
	s.deliveredFlits.Add(flits)
}

// RunStarted counts one simulation entering its run loop.
func (s *Sampler) RunStarted() {
	if s == nil {
		return
	}
	s.runsStarted.Add(1)
}

// RunDone counts one finished simulation and folds its measurement-window
// datapath events into the per-architecture totals.
func (s *Sampler) RunDone(arch string, window power.Counters) {
	if s == nil {
		return
	}
	s.runsDone.Add(1)
	s.mu.Lock()
	c := s.arch[arch]
	c.Add(window)
	s.arch[arch] = c
	s.mu.Unlock()
}

// Tick is the per-cycle call from run loops. At most once per interval it
// recomputes cycles/s, logs a progress record (when -progress is on), and
// publishes an SSE snapshot; every other call is two atomic loads.
func (s *Sampler) Tick(cycle int64) {
	if s == nil {
		return
	}
	now := time.Now()
	last := s.lastNanos.Load()
	if now.UnixNano()-last < int64(s.every) {
		return
	}
	if !s.lastNanos.CompareAndSwap(last, now.UnixNano()) {
		return // another run's tick won the interval
	}
	elapsed := time.Duration(now.UnixNano() - last)
	s.publish(cycle, elapsed)
}

// Done emits a final progress record for a finished run loop.
func (s *Sampler) Done(cycle int64) {
	if s == nil {
		return
	}
	if s.log != nil {
		s.log.Info("progress: run loop finished",
			"cycle", cycle,
			"cycles_total", s.cycles.Load(),
			"mcycles_per_sec", float64(s.cycles.Load())/time.Since(s.start).Seconds()/1e6)
	}
}

func (s *Sampler) publish(cycle int64, elapsed time.Duration) {
	total := s.cycles.Load()
	s.mu.Lock()
	delta := total - s.lastCycles
	s.lastCycles = total
	s.mu.Unlock()
	cps := float64(delta) / elapsed.Seconds()
	s.cyclesPerSec.Store(math.Float64bits(cps))

	if s.log != nil {
		s.log.Info("progress",
			"cycle", cycle,
			"cycles_total", total,
			"mcycles_per_sec", cps/1e6,
			"injected_flits", s.injectedFlits.Load(),
			"delivered_flits", s.deliveredFlits.Load())
	}
	if s.hub != nil && s.hub.Subscribers() > 0 {
		snap := s.Snapshot()
		snap.Cycle = cycle
		if b, err := json.Marshal(snap); err == nil {
			s.hub.Publish(b)
		}
	}
}

// Snapshot is the JSON shape published on the SSE stream.
type Snapshot struct {
	Cycle            int64   `json:"cycle"`
	CyclesTotal      int64   `json:"cycles_total"`
	CyclesPerSec     float64 `json:"cycles_per_sec"`
	ActiveComponents int64   `json:"active_components"`
	InjectedPackets  int64   `json:"injected_packets"`
	InjectedFlits    int64   `json:"injected_flits"`
	DeliveredPackets int64   `json:"delivered_packets"`
	DeliveredFlits   int64   `json:"delivered_flits"`
	RunsStarted      int64   `json:"runs_started"`
	RunsDone         int64   `json:"runs_done"`
}

// Snapshot returns the current aggregate counters.
func (s *Sampler) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		CyclesTotal:      s.cycles.Load(),
		CyclesPerSec:     math.Float64frombits(s.cyclesPerSec.Load()),
		ActiveComponents: s.active.Load(),
		InjectedPackets:  s.injectedPackets.Load(),
		InjectedFlits:    s.injectedFlits.Load(),
		DeliveredPackets: s.deliveredPackets.Load(),
		DeliveredFlits:   s.deliveredFlits.Load(),
		RunsStarted:      s.runsStarted.Load(),
		RunsDone:         s.runsDone.Load(),
	}
}

// archSnapshot returns a copy of the per-architecture event totals.
func (s *Sampler) archSnapshot() map[string]power.Counters {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]power.Counters, len(s.arch))
	for k, v := range s.arch {
		out[k] = v
	}
	return out
}

// Register installs the sampler's metrics into reg.
func (s *Sampler) Register(reg *Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.AddCounterFunc("nox_cycles_total", "simulated cycles across all runs", func() float64 { return float64(s.cycles.Load()) })
	reg.AddGaugeFunc("nox_cycles_per_second", "simulated cycles per wall second over the last sample interval", func() float64 { return math.Float64frombits(s.cyclesPerSec.Load()) })
	reg.AddGaugeFunc("nox_active_components", "kernel components evaluated in the most recently observed step", func() float64 { return float64(s.active.Load()) })
	reg.AddCounterFunc("nox_injected_packets_total", "packets injected into simulated networks", func() float64 { return float64(s.injectedPackets.Load()) })
	reg.AddCounterFunc("nox_injected_flits_total", "flits injected into simulated networks", func() float64 { return float64(s.injectedFlits.Load()) })
	reg.AddCounterFunc("nox_delivered_packets_total", "packets delivered by simulated networks", func() float64 { return float64(s.deliveredPackets.Load()) })
	reg.AddCounterFunc("nox_delivered_flits_total", "flits delivered by simulated networks", func() float64 { return float64(s.deliveredFlits.Load()) })
	reg.AddCounterFunc("nox_runs_started_total", "simulation run loops started", func() float64 { return float64(s.runsStarted.Load()) })
	reg.AddCounterFunc("nox_runs_completed_total", "simulation run loops completed", func() float64 { return float64(s.runsDone.Load()) })
	reg.AddRaw(ArchEventWriter(s.archSnapshot))
}
