package exp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		p := NewPool(workers)
		out, err := Map(context.Background(), p, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if got := p.Workers(); got != 1 {
		t.Fatalf("nil pool workers = %d, want 1", got)
	}
	var order []int
	out, err := Map(context.Background(), p, 5, func(_ context.Context, i int) (int, error) {
		order = append(order, i) // safe: serial path runs on this goroutine
		return i, nil
	})
	if err != nil || len(out) != 5 {
		t.Fatalf("nil pool Map: %v, %v", out, err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path ran out of order: %v", order)
		}
	}
}

func TestMapDefaultSizing(t *testing.T) {
	if NewPool(0).Workers() < 1 {
		t.Fatal("NewPool(0) must size to at least one worker")
	}
	if got := NewPool(7).Workers(); got != 7 {
		t.Fatalf("NewPool(7).Workers() = %d", got)
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Indices 30 and 60 fail; the reported error must be index 30's
	// whatever the completion order.
	for _, workers := range []int{1, 4, 16} {
		p := NewPool(workers)
		_, err := Map(context.Background(), p, 100, func(_ context.Context, i int) (int, error) {
			if i == 30 || i == 60 {
				return 0, fmt.Errorf("point %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "point 30 failed" {
			t.Fatalf("workers=%d: got error %v, want point 30's", workers, err)
		}
	}
}

func TestMapErrorCancelsRemaining(t *testing.T) {
	sentinel := errors.New("boom")
	var started atomic.Int64
	p := NewPool(2)
	_, err := Map(context.Background(), p, 1000, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("error did not stop the sweep: %d points started", n)
	}
}

func TestMapExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	p := NewPool(4)
	_, err := Map(ctx, p, 1000, func(ctx context.Context, i int) (int, error) {
		once.Do(cancel)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapConcurrencyBound(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	p := NewPool(workers)
	_, err := Map(context.Background(), p, 200, func(_ context.Context, i int) (int, error) {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() > workers {
		t.Fatalf("observed %d concurrent points, bound is %d", peak.Load(), workers)
	}
}

func TestMapZeroPoints(t *testing.T) {
	out, err := Map(context.Background(), NewPool(4), 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("empty Map: %v, %v", out, err)
	}
}
