// Package exp provides the experiment-level parallelism layer: a
// deterministic worker pool that fans independent simulation points across
// goroutines and collects their results in submission order.
//
// Every simulation in this repository is a pure function of its
// configuration (each point owns its network, counters, and RNG streams;
// see internal/sim), so points may execute concurrently and in any order
// without perturbing each other. The pool exploits that: results come back
// indexed, so callers observe exactly the output a serial loop would have
// produced — bit-identical tables and CSV — only sooner.
package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// busyWorkers counts fn invocations currently executing across every Map in
// the process — the worker-pool occupancy gauge the telemetry server
// exposes. Process-global so observability code needs no handle on the
// pools a tool happens to build.
var busyWorkers atomic.Int64

// BusyWorkers returns how many Map invocations are executing right now.
func BusyWorkers() int64 { return busyWorkers.Load() }

// run invokes fn for one index, bracketed by the occupancy gauge.
func run[T any](ctx context.Context, fn func(ctx context.Context, i int) (T, error), i int) (T, error) {
	busyWorkers.Add(1)
	defer busyWorkers.Add(-1)
	return fn(ctx, i)
}

// Pool bounds the number of simulation points running concurrently.
// A nil *Pool is valid and runs everything serially, as does NewPool(1).
type Pool struct {
	workers int
}

// NewPool returns a pool running up to workers points concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0), one worker per schedulable
// CPU, which is the right size for the CPU-bound simulations here.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// PoolFromFlag validates a -parallel flag value and builds the pool:
// workers > 0 is an explicit worker count, workers == 0 selects all CPUs
// (runtime.GOMAXPROCS), and negative values are rejected with an error the
// cmd tools surface verbatim. Results are bit-identical at any worker
// count, so the flag only trades wall-clock time for CPU.
func PoolFromFlag(workers int) (*Pool, error) {
	if workers < 0 {
		return nil, fmt.Errorf("-parallel must be >= 0 (got %d); use 0 for all CPUs, 1 for serial", workers)
	}
	return NewPool(workers), nil
}

// Workers returns the concurrency bound; 1 for a nil pool.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Map runs fn(ctx, i) for every i in [0, n) using at most p.Workers()
// goroutines and returns the results in index order, regardless of
// completion order.
//
// If any invocation returns an error, the context passed to outstanding
// invocations is cancelled, no further indices are started, and Map returns
// a nil slice with the error of the lowest failing index that ran — the
// same error a serial in-order loop stopping at its first failure would
// report, provided fn is deterministic per index. If ctx is cancelled
// externally, Map returns ctx.Err().
//
// With one worker (or n <= 1) Map degenerates to the serial loop itself:
// indices run in order on the calling goroutine and the first error stops
// the sweep immediately.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		out := make([]T, n)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := run(ctx, fn, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]T, n)
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				v, err := run(ctx, fn, i)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				out[i] = v
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
