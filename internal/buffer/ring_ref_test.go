package buffer

import (
	"math/rand"
	"testing"

	"repro/internal/noc"
)

// sliceFIFO is the pre-ring reference implementation: a plain slice with
// head-index compaction semantics reduced to their observable essence. The
// ring FIFO replaced it for hot-path speed; this model pins the behavior.
type sliceFIFO struct {
	slots []*noc.Flit
	depth int
}

func (s *sliceFIFO) Cap() int   { return s.depth }
func (s *sliceFIFO) Len() int   { return len(s.slots) }
func (s *sliceFIFO) Free() int  { return s.depth - len(s.slots) }
func (s *sliceFIFO) Empty() bool { return len(s.slots) == 0 }

func (s *sliceFIFO) Head() *noc.Flit {
	if len(s.slots) == 0 {
		return nil
	}
	return s.slots[0]
}

func (s *sliceFIFO) Push(f *noc.Flit) {
	if len(s.slots) == s.depth {
		panic("sliceFIFO overflow")
	}
	s.slots = append(s.slots, f)
}

func (s *sliceFIFO) Pop() *noc.Flit {
	f := s.slots[0]
	s.slots = s.slots[1:]
	return f
}

// TestRingMatchesSliceFIFO runs the ring FIFO and the slice reference
// op-for-op under randomized push/pop sequences at several depths (including
// non-power-of-two depths, where the ring is larger than the advertised
// capacity) and demands identical observable state after every operation:
// same Head identity, same Len/Free/Cap/Empty, same popped flits.
func TestRingMatchesSliceFIFO(t *testing.T) {
	for _, depth := range []int{1, 2, 3, 4, 5, 7, 8, 13} {
		rng := rand.New(rand.NewSource(int64(depth) * 977))
		ring := New(depth)
		ref := &sliceFIFO{depth: depth}
		var next uint64
		for op := 0; op < 4000; op++ {
			if ring.Len() != ref.Len() || ring.Free() != ref.Free() ||
				ring.Cap() != ref.Cap() || ring.Empty() != ref.Empty() {
				t.Fatalf("depth %d op %d: accounting diverged: ring len=%d free=%d, ref len=%d free=%d",
					depth, op, ring.Len(), ring.Free(), ref.Len(), ref.Free())
			}
			if ring.Head() != ref.Head() {
				t.Fatalf("depth %d op %d: Head diverged", depth, op)
			}
			// Bias toward pushes so the ring wraps repeatedly at every depth.
			if rng.Intn(5) < 3 {
				if ring.Free() == 0 {
					continue
				}
				f := flit(next)
				next++
				ring.Push(f)
				ref.Push(f)
			} else {
				if ring.Empty() {
					continue
				}
				got, want := ring.Pop(), ref.Pop()
				if got != want {
					t.Fatalf("depth %d op %d: Pop diverged: got pkt%d want pkt%d",
						depth, op, got.Packet.ID, want.Packet.ID)
				}
			}
		}
	}
}
