package buffer

import (
	"testing"
	"testing/quick"

	"repro/internal/noc"
)

func flit(id uint64) *noc.Flit {
	return noc.NewFlit(noc.NewPacket(id, 0, 1, 1, 0, 0), 0)
}

func TestFIFOOrder(t *testing.T) {
	f := New(4)
	for i := uint64(1); i <= 4; i++ {
		f.Push(flit(i))
	}
	for i := uint64(1); i <= 4; i++ {
		if got := f.Pop(); got.Packet.ID != i {
			t.Fatalf("pop %d: got packet %d", i, got.Packet.ID)
		}
	}
}

func TestFIFOWraparound(t *testing.T) {
	f := New(3)
	id := uint64(0)
	for round := 0; round < 10; round++ {
		f.Push(flit(id))
		f.Push(flit(id + 1))
		if got := f.Pop(); got.Packet.ID != id {
			t.Fatalf("round %d: got %d want %d", round, got.Packet.ID, id)
		}
		if got := f.Pop(); got.Packet.ID != id+1 {
			t.Fatalf("round %d: got %d want %d", round, got.Packet.ID, id+1)
		}
		id += 2
	}
	if !f.Empty() {
		t.Fatal("FIFO should be empty")
	}
}

func TestFIFOAccounting(t *testing.T) {
	f := New(4)
	if f.Cap() != 4 || f.Len() != 0 || f.Free() != 4 || !f.Empty() {
		t.Fatal("fresh FIFO accounting wrong")
	}
	f.Push(flit(1))
	f.Push(flit(2))
	if f.Len() != 2 || f.Free() != 2 || f.Empty() {
		t.Fatal("partially filled FIFO accounting wrong")
	}
	if f.Head().Packet.ID != 1 {
		t.Fatal("Head should peek oldest")
	}
	if f.Len() != 2 {
		t.Fatal("Head must not consume")
	}
}

func TestFIFOOverflowPanics(t *testing.T) {
	f := New(2)
	f.Push(flit(1))
	f.Push(flit(2))
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	f.Push(flit(3))
}

func TestFIFOUnderflowPanics(t *testing.T) {
	f := New(2)
	defer func() {
		if recover() == nil {
			t.Error("underflow did not panic")
		}
	}()
	f.Pop()
}

func TestHeadEmptyNil(t *testing.T) {
	if New(2).Head() != nil {
		t.Error("Head of empty FIFO should be nil")
	}
}

// TestFIFOPropertyOrderAndConservation property-checks arbitrary interleaved
// push/pop sequences: strict FIFO order, and Len == pushes - pops always.
func TestFIFOPropertyOrderAndConservation(t *testing.T) {
	prop := func(ops []bool) bool {
		f := New(8)
		var next, expect uint64
		for _, push := range ops {
			if push {
				if f.Free() == 0 {
					continue
				}
				f.Push(flit(next))
				next++
			} else {
				if f.Empty() {
					continue
				}
				if f.Pop().Packet.ID != expect {
					return false
				}
				expect++
			}
			if f.Len() != int(next-expect) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
