// Package buffer models the router input buffers: small single-read,
// single-write SRAM FIFOs (paper §2.4, Table 1: four 64-bit entries per
// input port, the minimum covering the round-trip credit loop).
package buffer

import "repro/internal/noc"

// FIFO is a fixed-capacity flit queue.
type FIFO struct {
	slots []*noc.Flit
	head  int
	count int
}

// New returns an empty FIFO holding up to depth flits.
func New(depth int) *FIFO {
	if depth <= 0 {
		panic("buffer: FIFO depth must be positive")
	}
	return &FIFO{slots: make([]*noc.Flit, depth)}
}

// Cap returns the FIFO capacity in flits.
func (f *FIFO) Cap() int { return len(f.slots) }

// Len returns the number of buffered flits.
func (f *FIFO) Len() int { return f.count }

// Free returns the number of empty slots.
func (f *FIFO) Free() int { return len(f.slots) - f.count }

// Empty reports whether the FIFO holds no flits.
func (f *FIFO) Empty() bool { return f.count == 0 }

// Head returns the oldest flit without removing it, or nil when empty.
func (f *FIFO) Head() *noc.Flit {
	if f.count == 0 {
		return nil
	}
	return f.slots[f.head]
}

// Push appends a flit. It panics on overflow: credit-based flow control must
// make overflow impossible, so an overflow is always a simulator bug.
func (f *FIFO) Push(fl *noc.Flit) {
	if fl == nil {
		panic("buffer: Push of nil flit")
	}
	if f.count == len(f.slots) {
		panic("buffer: FIFO overflow (credit protocol violated)")
	}
	f.slots[(f.head+f.count)%len(f.slots)] = fl
	f.count++
}

// Pop removes and returns the oldest flit. It panics when empty.
func (f *FIFO) Pop() *noc.Flit {
	if f.count == 0 {
		panic("buffer: Pop from empty FIFO")
	}
	fl := f.slots[f.head]
	f.slots[f.head] = nil
	f.head = (f.head + 1) % len(f.slots)
	f.count--
	return fl
}
