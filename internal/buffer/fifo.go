// Package buffer models the router input buffers: small single-read,
// single-write SRAM FIFOs (paper §2.4, Table 1: four 64-bit entries per
// input port, the minimum covering the round-trip credit loop).
package buffer

import "repro/internal/noc"

// FIFO is a fixed-capacity flit queue backed by a power-of-two ring, so the
// hot Push/Pop/Head index arithmetic is a mask instead of a division. The
// advertised capacity stays exactly the requested depth — the credit
// protocol and overflow panics see the configured buffer size, not the
// rounded ring.
type FIFO struct {
	slots []*noc.Flit
	mask  int
	depth int
	head  int
	count int
}

// ringSize returns the power-of-two ring length backing a FIFO of the given
// depth.
func ringSize(depth int) int {
	n := 1
	for n < depth {
		n <<= 1
	}
	return n
}

// New returns an empty FIFO holding up to depth flits.
func New(depth int) *FIFO {
	f := &FIFO{}
	f.Init(depth, nil)
	return f
}

// Init initializes a zero FIFO in place. slots, when non-nil, becomes the
// backing ring — the slab-construction form letting a router carve every
// port's buffer from one allocation; it must be empty and exactly
// SlotsFor(depth) long. A nil slots allocates the ring.
func (f *FIFO) Init(depth int, slots []*noc.Flit) {
	if depth <= 0 {
		panic("buffer: FIFO depth must be positive")
	}
	n := ringSize(depth)
	if slots == nil {
		slots = make([]*noc.Flit, n)
	} else if len(slots) != n {
		panic("buffer: Init slots length must be SlotsFor(depth)")
	}
	*f = FIFO{slots: slots, mask: n - 1, depth: depth}
}

// SlotsFor returns the backing-slice length Init requires for a FIFO of the
// given depth.
func SlotsFor(depth int) int {
	if depth <= 0 {
		panic("buffer: FIFO depth must be positive")
	}
	return ringSize(depth)
}

// Cap returns the FIFO capacity in flits.
func (f *FIFO) Cap() int { return f.depth }

// Len returns the number of buffered flits.
func (f *FIFO) Len() int { return f.count }

// Free returns the number of empty slots.
func (f *FIFO) Free() int { return f.depth - f.count }

// Empty reports whether the FIFO holds no flits.
func (f *FIFO) Empty() bool { return f.count == 0 }

// Head returns the oldest flit without removing it, or nil when empty.
func (f *FIFO) Head() *noc.Flit {
	if f.count == 0 {
		return nil
	}
	return f.slots[f.head]
}

// At returns the i-th buffered flit in queue order (0 = oldest) without
// removing it. It panics when i is out of range. Snapshotting walks the
// queue with At and rebuilds it with Push, which re-canonicalizes the ring
// layout (head returns to 0) so a restored FIFO re-saves byte-identically.
func (f *FIFO) At(i int) *noc.Flit {
	if i < 0 || i >= f.count {
		panic("buffer: At index out of range")
	}
	return f.slots[(f.head+i)&f.mask]
}

// Push appends a flit. It panics on overflow: credit-based flow control must
// make overflow impossible, so an overflow is always a simulator bug.
func (f *FIFO) Push(fl *noc.Flit) {
	if fl == nil {
		panic("buffer: Push of nil flit")
	}
	if f.count == f.depth {
		panic("buffer: FIFO overflow (credit protocol violated)")
	}
	f.slots[(f.head+f.count)&f.mask] = fl
	f.count++
}

// Pop removes and returns the oldest flit. It panics when empty.
func (f *FIFO) Pop() *noc.Flit {
	if f.count == 0 {
		panic("buffer: Pop from empty FIFO")
	}
	fl := f.slots[f.head]
	f.slots[f.head] = nil
	f.head = (f.head + 1) & f.mask
	f.count--
	return fl
}
