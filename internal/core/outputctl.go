package core

import (
	"fmt"
	"math/bits"

	"repro/internal/arbiter"
	"repro/internal/noc"
)

// Mode is the operating mode of an output's arbitration and masking logic
// (§2.6).
type Mode int

const (
	// Recovery is the reactive mode: switch and arbitration masks are
	// identical, collisions may freely occur in the XOR switch, and the
	// logic resolves them after the fact.
	Recovery Mode = iota
	// Scheduled is the pre-scheduled mode: the switch mask enables exactly
	// one input (which traverses uncontested) and the arbitration mask is
	// its bitwise complement (everyone else competes to be scheduled next).
	Scheduled
)

// String names the mode.
func (m Mode) String() string {
	if m == Scheduled {
		return "Scheduled"
	}
	return "Recovery"
}

// Decision reports what one output of the NoX switch did in a cycle.
type Decision struct {
	// Out is the wire flit driven on the output channel, nil if none. It is
	// an encoded superposition when Collided is set without Invalid.
	Out *noc.Flit
	// Invalid reports a multi-flit abort: the channel was driven with an
	// indeterminate value that the receiver discards (§2.7).
	Invalid bool
	// Serviced is the input whose presentation was consumed (its buffer
	// slot freed), or -1. Under a productive collision this is the
	// arbitration winner; uncontested, it is the sole traverser.
	Serviced int
	// Granted is the input that won arbitration this cycle, or -1.
	Granted int
	// Collided reports >= 2 inputs traversing the XOR switch together.
	Collided bool
	// Colliders is the number of inputs traversing together when Collided
	// (the contention fan-in of §3.2), 0 otherwise. Observability data for
	// the probe layer; the router's behavior never depends on it. uint8 so
	// the field fits existing struct padding — Decision returns by value on
	// the switch's hottest path.
	Colliders uint8
	// ColliderMask is the input set of a productive collision (Collided set,
	// Invalid clear), 0 otherwise. The router uses it to mark each collider's
	// offer as absorbed into the encoded output (arena lifetime tracking).
	ColliderMask uint32
	// Arbitrated reports that the arbiter evaluated a non-empty request set
	// (for energy accounting).
	Arbitrated bool
	// Stalled reports the output was blocked by exhausted credits.
	Stalled bool
}

// OutputControl is the per-output arbitration and masking logic of §2.6
// plus the wormhole output lock that keeps multi-flit packets contiguous.
// Decide is compute-phase (it stages the next masks); Commit applies them.
type OutputControl struct {
	n   int
	all uint32
	arb arbiter.Arbiter

	mode       Mode
	switchMask uint32
	arbMask    uint32
	lockOwner  int // input holding the output through a multi-flit packet; -1 if none

	// staged next state
	nextMode       Mode
	nextSwitchMask uint32
	nextArbMask    uint32
	nextLockOwner  int

	// arena pools the encoded superpositions this output creates; colliders
	// is the reusable gather scratch for their constituent sets.
	arena     *noc.Arena
	colliders []*noc.Flit

	// lenient tolerates an orphan multi-flit body (its earlier flits were
	// lost to an injected fault) by traversing it and engaging the lock
	// instead of panicking; armed by fault-injection runs.
	lenient bool
}

// NewOutputControl returns control logic for one output fed by n inputs,
// starting in Recovery mode with all inputs enabled.
func NewOutputControl(n int, arb arbiter.Arbiter) *OutputControl {
	o := &OutputControl{}
	o.Init(n, arb, nil, nil)
	return o
}

// Init initializes a zero OutputControl in place — the slab-construction
// form. A nil arb installs a round-robin arbiter; a nil arena falls back to
// heap-allocated superpositions. colliders, when non-nil, becomes the gather
// scratch (must be empty with capacity >= n), letting a router carve every
// output's scratch from one slab.
func (o *OutputControl) Init(n int, arb arbiter.Arbiter, arena *noc.Arena, colliders []*noc.Flit) {
	if arb == nil {
		arb = arbiter.NewRoundRobin(n)
	}
	if arb.Width() != n {
		panic("core: arbiter width mismatch")
	}
	if colliders == nil {
		colliders = make([]*noc.Flit, 0, n)
	} else if len(colliders) != 0 || cap(colliders) < n {
		panic("core: Init colliders must be empty with capacity >= n")
	}
	all := uint32(1<<n) - 1
	*o = OutputControl{
		n: n, all: all, arb: arb,
		mode: Recovery, switchMask: all, arbMask: all, lockOwner: -1,
		arena:     arena,
		colliders: colliders,
	}
}

// Mode returns the current operating mode.
func (o *OutputControl) Mode() Mode { return o.mode }

// Masks returns the current switch and arbitration masks.
func (o *OutputControl) Masks() (switchMask, arbMask uint32) {
	return o.switchMask, o.arbMask
}

// Locked returns the input transmitting a multi-flit packet through this
// output, or -1.
func (o *OutputControl) Locked() int { return o.lockOwner }

// StagedMode returns the mode staged by this cycle's Decide (applied at the
// coming Commit). The router's protocol checker uses it to assert that a
// multi-flit abort forces Scheduled mode (§2.7).
func (o *OutputControl) StagedMode() Mode { return o.nextMode }

// SetLenient selects how the control logic reacts to an orphan multi-flit
// body flit (its head was lost upstream to an injected fault): lenient
// outputs forward it under the wormhole lock as if the lock were already
// held, non-lenient ones panic.
func (o *OutputControl) SetLenient(on bool) { o.lenient = on }

// Idle reports the control logic is in its rest state: Recovery mode with
// every input enabled and no wormhole lock. An output whose inputs have all
// drained reaches this state one cycle after its last traversal (the empty
// Decide re-arms the masks), after which skipping its evaluation is
// unobservable — the quiescence condition internal/router checks.
func (o *OutputControl) Idle() bool {
	return o.mode == Recovery && o.switchMask == o.all && o.arbMask == o.all && o.lockOwner < 0
}

// Reset forces the control logic back to its rest state (Recovery mode,
// every input enabled, no wormhole lock), staged state included. Used by
// reconfiguration epochs after a hard fault, where the input ports feeding
// this output were flushed and any in-progress chain or wormhole is gone.
func (o *OutputControl) Reset() {
	o.mode, o.switchMask, o.arbMask, o.lockOwner = Recovery, o.all, o.all, -1
	o.hold()
}

// hold stages the current state unchanged.
func (o *OutputControl) hold() {
	o.nextMode, o.nextSwitchMask, o.nextArbMask, o.nextLockOwner =
		o.mode, o.switchMask, o.arbMask, o.lockOwner
}

// stage records the next-cycle state.
func (o *OutputControl) stage(m Mode, sw, ar uint32, lock int) {
	o.nextMode, o.nextSwitchMask, o.nextArbMask, o.nextLockOwner = m, sw, ar, lock
}

// Commit applies the staged state. Decide must have run this cycle.
func (o *OutputControl) Commit() {
	o.mode, o.switchMask, o.arbMask, o.lockOwner =
		o.nextMode, o.nextSwitchMask, o.nextArbMask, o.nextLockOwner
}

// Decide evaluates one cycle for this output. offers[i] is the flit input i
// presents to this output (nil if input i is idle or requesting another
// output); creditOK reports downstream buffer availability. The returned
// decision tells the router what to drive and which input to service.
//
// The rules implemented here are the paper's §2.6/§2.7 behavior:
//
//   - Recovery, no contention: the sole enabled requester passes unmodified
//     and is serviced; a (redundant) grant is produced in parallel. Masks
//     re-enable all inputs.
//   - Recovery, contention among single-flit packets: the output drives the
//     XOR of the colliders, marked encoded; the grant winner is serviced
//     (its buffer freed); next masks enable only the losers. If exactly one
//     loser remains the logic transitions to Scheduled; if none would
//     remain, all inputs are re-enabled.
//   - Contention involving a multi-flit packet: abort. The channel carries
//     an invalid value this cycle, nobody is serviced, and the logic
//     transitions to Scheduled with the grant winner as the sole enabled
//     input.
//   - Scheduled: the sole switch-enabled input traverses uncontested; all
//     other inputs arbitrate, and a grant pre-schedules next cycle's
//     traverser. No grant sends the logic back to Recovery, all enabled.
//   - A traversing multi-flit head engages the output lock: until its tail
//     passes, only continuation flits traverse and no arbitration winners
//     are produced.
//   - Exhausted credits stall the output with all state held, preserving
//     chain integrity.
func (o *OutputControl) Decide(offers []*noc.Flit, creditOK bool) Decision {
	if len(offers) != o.n {
		panic("core: offers slice width mismatch")
	}
	d := Decision{Serviced: -1, Granted: -1}

	var reqMask uint32
	for i, f := range offers {
		if f != nil {
			reqMask |= 1 << i
		}
	}

	if reqMask == 0 {
		// Idle: with no requests and no lock, re-arm Recovery mode with all
		// inputs enabled ("if ... no grants are generated, the masks are
		// instead set to enable all inputs once again").
		if o.lockOwner < 0 {
			o.stage(Recovery, o.all, o.all, -1)
		} else {
			o.hold()
		}
		return d
	}

	if !creditOK {
		d.Stalled = true
		o.hold()
		return d
	}

	// Output locked to a multi-flit packet in progress: only its
	// continuation flits traverse and no arbitration winners are produced
	// "until the tail flit has passed" (§2.7). At the tail cycle the
	// parallel arbiter resumes: because the arbitration mask covers inputs
	// inhibited from the switch, a waiting input can be pre-scheduled for
	// the very next cycle — the asymmetry that makes NoX aborts
	// "significantly less frequent than in purely speculative
	// architectures".
	if o.lockOwner >= 0 {
		f := offers[o.lockOwner]
		if f == nil {
			// Upstream bubble inside the packet.
			o.hold()
			return d
		}
		d.Out = f
		d.Serviced = o.lockOwner
		if f.Tail() {
			a := reqMask & o.arbMask &^ (1 << o.lockOwner)
			o.grantAndScheduleNext(a, &d)
		} else {
			o.hold()
		}
		return d
	}

	s := reqMask & o.switchMask
	a := reqMask & o.arbMask

	switch bits.OnesCount32(s) {
	case 0:
		// Requests exist but all are inhibited (new arrivals during a
		// Recovery chain, or an idle pre-scheduled input in Scheduled
		// mode). In Scheduled mode arbitration still runs so a waiting
		// input can be scheduled; in Recovery the masks hold to protect
		// the chain.
		if o.mode == Scheduled {
			o.grantAndScheduleNext(a, &d)
		} else {
			o.hold()
		}
		return d

	case 1:
		i := bits.TrailingZeros32(s)
		f := offers[i]
		d.Out = f
		d.Serviced = i
		if f.MultiFlit() {
			// A multi-flit head traverses uncontested; engage the lock and
			// suppress grants until the tail passes. A body here is an
			// orphan — its head was lost upstream — which only an injected
			// fault can produce: lenient outputs forward it under the lock
			// (an orphan tail passes without engaging it) so the rest of
			// the packet drains instead of wedging.
			if !f.Head() && !o.lenient {
				panic("core: multi-flit body traversal without lock")
			}
			if !f.Tail() {
				o.stage(o.mode, o.switchMask, o.arbMask, i)
				return d
			}
		}
		if o.mode == Scheduled {
			o.grantAndScheduleNext(a, &d)
		} else {
			// Recovery, uncontested: the parallel arbiter still produces a
			// (redundant) grant; removing the winner would inhibit every
			// input, so all are re-enabled (Fig. 2, cycle 0).
			if a != 0 {
				g, _ := o.arb.Grant(a)
				d.Granted = g
				d.Arbitrated = true
			}
			o.stage(Recovery, o.all, o.all, -1)
		}
		return d

	default:
		// Contention within the XOR switch. Only possible in Recovery mode
		// (the Scheduled switch mask is one-hot), where arbMask equals
		// switchMask, so the arbiter decides among exactly the colliders.
		if o.mode != Recovery {
			panic("core: collision in Scheduled mode")
		}
		d.Collided = true
		d.Colliders = uint8(bits.OnesCount32(s))

		multi := false
		for m := s; m != 0; m &= m - 1 {
			if offers[bits.TrailingZeros32(m)].MultiFlit() {
				multi = true
				break
			}
		}

		g, ok := o.arb.Grant(a)
		if !ok {
			panic("core: collision without arbitration candidates")
		}
		if s&(1<<g) == 0 {
			panic(fmt.Sprintf("core: grant %d outside collision set %b", g, s))
		}
		d.Granted = g
		d.Arbitrated = true

		if multi {
			// Abort (§2.7): indeterminate value on the channel, nobody
			// serviced, immediate transition to Scheduled mode with the
			// winner as sole traverser next cycle.
			d.Invalid = true
			o.stage(Scheduled, 1<<g, o.all&^(1<<g), -1)
			return d
		}

		// Productive collision: superimpose the colliders, service the
		// winner, and narrow the masks to the losers.
		colliders := o.colliders[:0]
		for m := s; m != 0; m &= m - 1 {
			colliders = append(colliders, offers[bits.TrailingZeros32(m)])
		}
		d.Out = o.arena.Encode(colliders)
		d.Serviced = g
		d.ColliderMask = s

		next := s &^ (1 << g)
		switch bits.OnesCount32(next) {
		case 0:
			o.stage(Recovery, o.all, o.all, -1)
		case 1:
			o.stage(Scheduled, next, o.all&^next, -1)
		default:
			o.stage(Recovery, next, next, -1)
		}
		return d
	}
}

// grantAndScheduleNext runs Scheduled-mode arbitration: a grant becomes the
// sole switch-enabled input next cycle; no grant falls back to Recovery
// with everything enabled.
func (o *OutputControl) grantAndScheduleNext(a uint32, d *Decision) {
	if a != 0 {
		g, _ := o.arb.Grant(a)
		d.Granted = g
		d.Arbitrated = true
		o.stage(Scheduled, 1<<g, o.all&^(1<<g), -1)
		return
	}
	o.stage(Recovery, o.all, o.all, -1)
}
