package core

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/noc"
)

// InputPort is the NoX input port of §2.4: a small SRAM FIFO, a single
// decode register, and XOR decode circuitry. It presents at most one flit
// per cycle to the switch fabric:
//
//   - If the FIFO head is unencoded and the register is empty, the head is
//     presented as-is.
//   - If the FIFO head is encoded and the register is empty, no flit is
//     presented this cycle; at the clock edge the head is latched into the
//     register (and its buffer slot freed — the register is storage beyond
//     the FIFO).
//   - If the register is occupied, the register XOR the FIFO head is
//     presented: that difference is exactly the flit that won arbitration
//     upstream one step earlier. When that presentation is serviced, the
//     head either replaces the register (if itself encoded, continuing the
//     chain) or remains buffered to be presented raw next (it is the final,
//     unencoded member of the chain).
//
// The port follows the simulator's two-phase discipline: Offer and Service
// are compute-phase (Offer is a pure function of committed state, Service
// stages the consumption), Commit applies staged actions and performs the
// latch, and Receive is called by the upstream link's commit.
//
// When an arena is attached the port also owns two ends of the pooled-flit
// lifetime: decode-path presentation copies it creates, and the encoded
// register value (with the constituents it absorbs) it retires. See Commit.
type InputPort struct {
	fifo buffer.FIFO
	reg  *noc.Flit

	// row is this router's precomputed route-table row indexed by packet
	// destination (lookahead route computation in one load); routeFn is the
	// closure fallback for callers without a table. Exactly one is set.
	row     []noc.Port
	routeFn func(noc.NodeID) noc.Port

	// arena recycles decode copies and dead register superpositions; nil
	// falls back to heap allocation with no recycling.
	arena *noc.Arena

	// offerCache memoizes the decoded presentation within a cycle so the
	// same *Flit object is offered, sent, and serviced.
	offerCache      *noc.Flit
	offerCacheValid bool

	serviceStaged bool
	// absorbed marks that this cycle's offer was superimposed into an
	// encoded output flit, which then owns it (see OfferAbsorbed).
	absorbed bool

	// lastSuccessor is retireRegister scratch for the single-element
	// successor set of a chain's final raw member.
	lastSuccessor [1]*noc.Flit

	// lenient converts decode protocol violations from panics into staged
	// poison consumed at the next commit (see Offer/Commit). Armed by
	// fault-injection runs, where a corrupted chain is an expected outcome
	// and a panic on a sharded worker goroutine would kill the process.
	lenient bool
	poison  error
}

// Events reports what an InputPort did at a clock edge, for energy and
// credit accounting.
type Events struct {
	// FreedSlots counts FIFO slots freed (credits owed upstream).
	FreedSlots int
	// Reads counts FIFO read accesses.
	Reads int
	// Latched reports a decode-register write.
	Latched bool
	// Decoded reports that a decoded (register XOR head) presentation was
	// consumed by the switch.
	Decoded bool
	// DecodeErr is non-nil when a lenient port discarded a corrupt decode
	// register this edge; the router reports it to the armed checker.
	DecodeErr error
}

// NewInputPort returns an input port with the given FIFO depth. route maps
// a packet destination to this router's output port (lookahead routing).
func NewInputPort(depth int, route func(noc.NodeID) noc.Port) *InputPort {
	p := &InputPort{routeFn: route}
	p.fifo.Init(depth, nil)
	return p
}

// Init initializes a zero InputPort in place — the slab-construction form:
// slots (length buffer.SlotsFor(depth)) backs the FIFO ring, row is the
// router's precomputed route-table row, and arena (optional) recycles the
// port's pooled flits.
func (p *InputPort) Init(depth int, slots []*noc.Flit, row []noc.Port, arena *noc.Arena) {
	*p = InputPort{row: row, arena: arena}
	p.fifo.Init(depth, slots)
}

// route computes the lookahead output port at this router for dst.
func (p *InputPort) route(dst noc.NodeID) noc.Port {
	if p.row != nil {
		return p.row[dst]
	}
	return p.routeFn(dst)
}

// SetLenient selects how the port reacts to a violated decode protocol
// (corrupt XOR chain): lenient ports discard the broken register and report
// the error through Events.DecodeErr instead of panicking.
func (p *InputPort) SetLenient(on bool) { p.lenient = on }

// Free returns the number of free FIFO slots (initial link credits).
func (p *InputPort) Free() int { return p.fifo.Free() }

// Buffered returns the number of buffered flits (decode register excluded).
func (p *InputPort) Buffered() int { return p.fifo.Len() }

// RegisterBusy reports whether the decode register holds an encoded flit.
func (p *InputPort) RegisterBusy() bool { return p.reg != nil }

// Receive buffers a flit delivered by the upstream link. For unencoded
// flits the lookahead output port is computed here, on arrival. Called
// during link commit; the flit is visible to Offer from the next cycle.
func (p *InputPort) Receive(f *noc.Flit) {
	if !f.Encoded {
		f.OutPort = p.route(f.Packet.Dst)
	}
	p.fifo.Push(f)
}

// Offer returns the flit currently presented to the switch fabric, if any,
// and whether the presentation came through the decode path. The returned
// flit is stable until the next commit.
func (p *InputPort) Offer() (f *noc.Flit, decoded bool, ok bool) {
	head := p.fifo.Head()
	if p.reg != nil {
		if p.poison != nil {
			// Condemned register: no presentation until the commit discards
			// it and reports the decode violation.
			return nil, false, false
		}
		if head == nil {
			// Mid-chain bubble: the next chain flit has not arrived yet.
			return nil, false, false
		}
		if !p.offerCacheValid {
			orig, err := noc.Decode(p.reg, head)
			if err != nil {
				if p.lenient {
					p.poison = err
					return nil, false, false
				}
				panic(fmt.Sprintf("core: decode protocol violated: %v", err))
			}
			// Present a pooled copy: the original object may still be live
			// in an upstream buffer (it was a collision loser there), so
			// its lookahead route must not be overwritten in place.
			cp := p.arena.Clone(orig)
			cp.OutPort = p.route(cp.Packet.Dst)
			p.offerCache = cp
			p.offerCacheValid = true
		}
		return p.offerCache, true, true
	}
	if head == nil || head.Encoded {
		// Encoded head with an empty register: this is the latch cycle; no
		// presentation (Fig. 3, cycle 2).
		return nil, false, false
	}
	return head, false, true
}

// Service stages consumption of the current offer: the switch traversed it
// and the output logic confirmed the grant. Must only be called in a cycle
// where Offer returned ok.
func (p *InputPort) Service() {
	if _, _, ok := p.Offer(); !ok {
		panic("core: Service without an active offer")
	}
	p.serviceStaged = true
}

// OfferAbsorbed marks that this cycle's offer was superimposed into an
// encoded output flit, whose constituent set now owns the object. The NoX
// router calls it for every collider of a productive collision. It matters
// only for decode-path presentations: an unserviced decode copy is normally
// dead at the clock edge (a fresh copy is decoded next cycle) and returns
// to the arena — unless a superposition absorbed it, in which case it must
// stay live until that superposition dies downstream and the stale copy
// cancels by packet identity against the copy that eventually traversed.
func (p *InputPort) OfferAbsorbed() { p.absorbed = true }

// Commit applies the staged service and, when the head is encoded and the
// register free, performs the latch. It returns the edge's events.
//
// Commit is also where pooled flits die. When a serviced decode empties or
// replaces the register, the old register superposition is retired: every
// constituent not carried forward by its successor (the new register's
// constituent set, or the raw head itself for the final chain member) is
// unreachable — the recovered original whose copy traversed this cycle, and
// any stale absorbed copies — and returns to the arena, followed by the
// register flit itself. An unserviced, unabsorbed decode copy is likewise
// retired (next cycle decodes a fresh one). Serviced presentations are
// never released here: the consumer owns them (sent downstream by the
// router, or released after delivery by the network interface).
func (p *InputPort) Commit() Events {
	var ev Events
	serviced := p.serviceStaged
	p.serviceStaged = false

	switch {
	case serviced && p.reg != nil:
		// A decoded presentation was consumed.
		ev.Decoded = true
		head := p.fifo.Head()
		if head == nil {
			panic("core: serviced decode with empty FIFO")
		}
		old := p.reg
		if head.Encoded {
			// Chain continues: the head becomes the new register value.
			p.fifo.Pop()
			ev.Reads++
			ev.FreedSlots++
			p.reg = head
			ev.Latched = true
			p.retireRegister(old, head.Parts)
		} else {
			// Final chain member: it stays buffered and will be
			// presented raw next cycle (Fig. 3: C is read for decoding
			// on cycle 3 and transmitted itself on cycle 4).
			ev.Reads++
			p.reg = nil
			p.lastSuccessor[0] = head
			p.retireRegister(old, p.lastSuccessor[:])
		}

	case serviced:
		head := p.fifo.Pop()
		if head.Encoded {
			panic("core: raw service consumed an encoded flit")
		}
		ev.Reads++
		ev.FreedSlots++

	default:
		if p.poison != nil {
			// Discard the condemned register. Only the register object
			// itself returns to the arena: its constituents may still be
			// live upstream (collision losers), so they are left to leak —
			// the caller's checker marks the run leaky. The head that
			// failed to decode stays buffered and, if encoded, is latched
			// below, resuming the chain one member later.
			ev.DecodeErr = p.poison
			p.poison = nil
			if p.arena != nil {
				p.arena.Release(p.reg)
			}
			p.reg = nil
		}
		// No service this cycle: latch an encoded head into the free register.
		if p.reg == nil {
			if h := p.fifo.Head(); h != nil && h.Encoded {
				p.fifo.Pop()
				ev.Reads++
				ev.FreedSlots++
				p.reg = h
				ev.Latched = true
			}
		}
		// An unserviced decode copy is stale — unless a collision absorbed
		// it into a live superposition.
		if p.offerCache != nil && !p.absorbed {
			p.arena.Release(p.offerCache)
		}
	}

	p.offerCache = nil
	p.offerCacheValid = false
	p.absorbed = false
	return ev
}

// SetRow repoints the port at a new precomputed route-table row. Called by
// the NoX router when a reconfiguration epoch swaps routing tables; flits
// already buffered keep their stale lookahead OutPort, so the caller must
// Flush first if stale routes are unacceptable.
func (p *InputPort) SetRow(row []noc.Port) { p.row = row }

// Flush discards all port state — buffered flits, the decode register, any
// staged service or poison — returning the port to its post-Init rest.
// Every dropped flit object is handed to release before its storage is
// recycled (callers walk the Parts of encoded flits themselves for packet
// accounting); release may be nil. The constituents of encoded flits are
// NOT returned to the arena: exactly as the poison path, they may be the
// very objects still buffered in an upstream port's FIFO (collision
// losers), so they leak and the caller marks the run leaky. Used by
// reconfiguration epochs after a hard fault: wormhole state threaded
// through a dead region cannot make progress and is torn down wholesale.
func (p *InputPort) Flush(release func(*noc.Flit)) {
	drop := func(f *noc.Flit) {
		if release != nil {
			release(f)
		}
		if p.arena != nil {
			p.arena.Release(f)
		}
	}
	for !p.fifo.Empty() {
		drop(p.fifo.Pop())
	}
	if p.reg != nil {
		drop(p.reg)
		p.reg = nil
	}
	if p.offerCache != nil && !p.absorbed && p.arena != nil {
		p.arena.Release(p.offerCache)
	}
	p.offerCache = nil
	p.offerCacheValid = false
	p.serviceStaged = false
	p.absorbed = false
	p.poison = nil
}

// retireRegister releases the dead register superposition old: every
// constituent not present (by object identity) in the successor set is
// unreachable and returns to the arena, then old itself. Identity, not
// packet ID: a raw constituent still buffered upstream reappears in the
// successor as the same object and must stay live, while a stale decode
// copy of the same packet is a different object and dies here.
func (p *InputPort) retireRegister(old *noc.Flit, successor []*noc.Flit) {
	if p.arena == nil {
		return
	}
	for _, m := range old.Parts {
		live := false
		for _, s := range successor {
			if s == m {
				live = true
				break
			}
		}
		if !live {
			p.arena.Release(m)
		}
	}
	p.arena.Release(old)
}
