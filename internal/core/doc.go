// Package core implements the NoX router's novel mechanisms (paper §2): the
// XOR-coded switch datapath, the input-port decode pipeline (§2.4), and the
// per-output arbitration and masking logic with its Recovery and Scheduled
// modes (§2.6), including multi-flit abort handling (§2.7).
//
// The pieces are standalone, cycle-level state machines so they can be unit
// tested against the paper's timing diagrams (Figures 2 and 3) directly;
// internal/router composes them with links, credits, and energy counters
// into a full NoX router.
//
// # How the coding scheme works
//
// The crossbar's per-output multiplexer is replaced by an XOR reduction over
// the (mask-gated) inputs. With no contention exactly one input drives and
// passes through unmodified. With contention the output is the XOR of all
// colliding flits — still a productive transfer. An arbiter runs in
// parallel and picks one collider, whose input buffer is freed immediately;
// the masks then allow only the remaining colliders to keep superimposing,
// so consecutive output values differ by exactly one flit and the receiver
// recovers each winner with a single XOR of contiguously received values:
//
//	cycle t:   A ^ B ^ C   (A granted)
//	cycle t+1: B ^ C       receiver: (A^B^C)^(B^C) = A
//	cycle t+2: C           receiver: (B^C)^C = B, then C itself
//
// Decoded packets emerge in the order they won arbitration, preserving the
// arbiter's fairness properties.
package core
