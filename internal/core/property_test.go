package core

import (
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/noc"
	"repro/internal/sim"
)

// TestMaskInvariants drives one output control with random request/credit
// stimuli and checks the §2.6 structural invariants after every cycle:
// in Recovery the switch and arbitration masks are identical; in Scheduled
// the switch mask is one-hot and the arbitration mask is its complement.
func TestMaskInvariants(t *testing.T) {
	const n = 5
	all := uint32(1<<n) - 1
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		ctl := NewOutputControl(n, nil)
		// Persistent single-flit requesters; each serviced offer is
		// replaced with a fresh packet with probability 1/2.
		var id uint64 = 1
		live := map[int]*noc.Flit{}
		for cycle := 0; cycle < 300; cycle++ {
			for i := 0; i < n; i++ {
				if live[i] == nil && rng.Bernoulli(0.3) {
					id++
					live[i] = mkSingle(id, noc.East)
				}
			}
			d := ctl.Decide(offers(n, live), rng.Bernoulli(0.85))
			if d.Serviced >= 0 {
				delete(live, d.Serviced)
			}
			ctl.Commit()
			sw, ar := ctl.Masks()
			switch ctl.Mode() {
			case Recovery:
				if sw != ar {
					return false
				}
			case Scheduled:
				if bits.OnesCount32(sw) != 1 || ar != all&^sw {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomizedChainSoak wires one OutputControl to a receiving InputPort
// through a randomly stalling link and checks, under random single-flit
// request stimuli, that every serviced packet is recovered downstream
// exactly once and in service order — the end-to-end coding contract.
func TestRandomizedChainSoak(t *testing.T) {
	const n = 5
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		ctl := NewOutputControl(n, nil)
		ip := NewInputPort(64, func(noc.NodeID) noc.Port { return noc.Local })

		var id uint64
		live := map[int]*noc.Flit{}
		var serviced, recovered []uint64

		for cycle := 0; cycle < 600; cycle++ {
			for i := 0; i < n; i++ {
				if live[i] == nil && rng.Bernoulli(0.4) {
					id++
					live[i] = mkSingle(seed<<20|id, noc.East)
				}
			}
			d := ctl.Decide(offers(n, live), ip.Free() > 0)
			if d.Out != nil {
				ip.Receive(d.Out)
			}
			if d.Serviced >= 0 {
				serviced = append(serviced, live[d.Serviced].Packet.ID)
				delete(live, d.Serviced)
			}
			ctl.Commit()

			// Downstream drains with random backpressure.
			if fl, _, ok := ip.Offer(); ok && rng.Bernoulli(0.8) {
				ip.Service()
				recovered = append(recovered, fl.Packet.ID)
			}
			ip.Commit()
		}
		// Let any in-progress chain complete (an encoded prefix is only
		// decodable once the rest of the chain arrives), then flush the
		// receiver.
		for i := 0; i < 200 && len(live) > 0; i++ {
			d := ctl.Decide(offers(n, live), ip.Free() > 0)
			if d.Out != nil {
				ip.Receive(d.Out)
			}
			if d.Serviced >= 0 {
				serviced = append(serviced, live[d.Serviced].Packet.ID)
				delete(live, d.Serviced)
			}
			ctl.Commit()
			if fl, _, ok := ip.Offer(); ok {
				ip.Service()
				recovered = append(recovered, fl.Packet.ID)
			}
			ip.Commit()
		}
		for i := 0; i < 200; i++ {
			if fl, _, ok := ip.Offer(); ok {
				ip.Service()
				recovered = append(recovered, fl.Packet.ID)
			}
			ip.Commit()
		}
		if len(recovered) != len(serviced) {
			return false
		}
		for i := range serviced {
			if serviced[i] != recovered[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryChainNoNewEntrants verifies a chain in progress excludes new
// requesters from both switch and arbitration until it narrows (§2.6).
func TestRecoveryChainNoNewEntrants(t *testing.T) {
	const n = 5
	ctl := NewOutputControl(n, nil)
	live := map[int]*noc.Flit{0: mkSingle(1, noc.East), 1: mkSingle(2, noc.East), 2: mkSingle(3, noc.East)}

	d := ctl.Decide(offers(n, live), true) // 3-way collision
	if !d.Collided {
		t.Fatal("expected collision")
	}
	delete(live, d.Serviced)
	ctl.Commit()

	// A newcomer appears mid-chain; it must be inhibited everywhere.
	live[4] = mkSingle(9, noc.East)
	d = ctl.Decide(offers(n, live), true)
	if d.Serviced == 4 || d.Granted == 4 {
		t.Fatalf("newcomer admitted mid-chain: %+v", d)
	}
	if d.Out == nil || !d.Out.Encoded || len(d.Out.Parts) != 2 {
		t.Fatalf("chain should narrow to the two losers, got %v", d.Out)
	}
	delete(live, d.Serviced)
	ctl.Commit()

	// Scheduled now: the final loser traverses; the newcomer arbitrates.
	d = ctl.Decide(offers(n, live), true)
	if d.Out == nil || d.Out.Encoded {
		t.Fatalf("final chain flit should be raw, got %v", d.Out)
	}
	if d.Granted != 4 {
		t.Fatalf("newcomer should win the Scheduled-mode grant, got %d", d.Granted)
	}
}

// TestInputPortBubbleMidChain checks the receiver tolerates gaps between
// chain flits (upstream credit stalls): the decode register waits for the
// next contiguous flit.
func TestInputPortBubbleMidChain(t *testing.T) {
	ip := NewInputPort(8, func(noc.NodeID) noc.Port { return noc.Local })
	a, b := mkSingle(1, noc.East), mkSingle(2, noc.East)
	enc := noc.Encode([]*noc.Flit{a, b})

	ip.Receive(enc)
	ip.Commit() // latch
	if !ip.RegisterBusy() {
		t.Fatal("register should be busy")
	}
	// Several idle cycles with no arrival: no offer, no state change.
	for i := 0; i < 5; i++ {
		if _, _, ok := ip.Offer(); ok {
			t.Fatal("offer during mid-chain bubble")
		}
		ip.Commit()
	}
	ip.Receive(b)
	f, dec, ok := ip.Offer()
	if !ok || !dec || f.Packet.ID != 1 {
		t.Fatalf("decode after bubble failed: %v %v %v", f, dec, ok)
	}
}

// TestOfferStability verifies an unserviced offer is identical across
// cycles (output logic depends on request stability).
func TestOfferStability(t *testing.T) {
	ip := NewInputPort(8, func(noc.NodeID) noc.Port { return noc.West })
	a, b := mkSingle(1, noc.East), mkSingle(2, noc.East)
	ip.Receive(noc.Encode([]*noc.Flit{a, b}))
	ip.Commit() // latch
	ip.Receive(b)

	f1, _, ok1 := ip.Offer()
	ip.Commit() // not serviced
	f2, _, ok2 := ip.Offer()
	if !ok1 || !ok2 {
		t.Fatal("offers missing")
	}
	if f1.Packet != f2.Packet || f1.Raw != f2.Raw {
		t.Error("unserviced offer changed across cycles")
	}
	if f1.OutPort != noc.West {
		t.Error("decoded offer did not take the local route")
	}
}

// TestServiceWithoutOfferPanics guards the port's usage contract.
func TestServiceWithoutOfferPanics(t *testing.T) {
	ip := NewInputPort(4, func(noc.NodeID) noc.Port { return noc.Local })
	defer func() {
		if recover() == nil {
			t.Error("Service without offer did not panic")
		}
	}()
	ip.Service()
}

// TestDecideWidthMismatchPanics guards the control's usage contract.
func TestDecideWidthMismatchPanics(t *testing.T) {
	ctl := NewOutputControl(5, nil)
	defer func() {
		if recover() == nil {
			t.Error("width mismatch did not panic")
		}
	}()
	ctl.Decide(make([]*noc.Flit, 3), true)
}

// TestScheduledStallHoldsSchedule verifies a credit stall in Scheduled
// mode freezes the pre-scheduled input rather than losing it.
func TestScheduledStallHoldsSchedule(t *testing.T) {
	const n = 5
	ctl := NewOutputControl(n, nil)
	a, b := mkSingle(1, noc.East), mkSingle(2, noc.East)
	live := map[int]*noc.Flit{0: a, 1: b}

	// Collision: winner serviced, loser becomes the Scheduled traverser.
	d := ctl.Decide(offers(n, live), true)
	delete(live, d.Serviced)
	ctl.Commit()
	if ctl.Mode() != Scheduled {
		t.Fatal("want Scheduled after 2-way collision")
	}

	// Stall for three cycles: nothing moves, schedule intact.
	for i := 0; i < 3; i++ {
		d = ctl.Decide(offers(n, live), false)
		if !d.Stalled || d.Out != nil {
			t.Fatalf("stall cycle %d leaked activity: %+v", i, d)
		}
		ctl.Commit()
		if ctl.Mode() != Scheduled {
			t.Fatal("stall dropped the schedule")
		}
	}

	// Credits return: the scheduled loser goes immediately.
	d = ctl.Decide(offers(n, live), true)
	if d.Out == nil || d.Out.Encoded || d.Serviced < 0 {
		t.Fatalf("post-stall cycle wrong: %+v", d)
	}
}

// TestIdleResetsToRecovery verifies an idle cycle re-arms Recovery with
// everything enabled, from either mode.
func TestIdleResetsToRecovery(t *testing.T) {
	const n = 5
	ctl := NewOutputControl(n, nil)
	live := map[int]*noc.Flit{0: mkSingle(1, noc.East), 1: mkSingle(2, noc.East)}
	d := ctl.Decide(offers(n, live), true)
	delete(live, d.Serviced)
	ctl.Commit() // Scheduled now
	d = ctl.Decide(offers(n, live), true)
	delete(live, d.Serviced)
	ctl.Commit()

	ctl.Decide(offers(n, nil), true) // idle
	ctl.Commit()
	sw, ar := ctl.Masks()
	if ctl.Mode() != Recovery || sw != 0b11111 || ar != 0b11111 {
		t.Errorf("idle did not re-arm Recovery: mode=%v masks=%05b/%05b", ctl.Mode(), sw, ar)
	}
}

// TestWideCollision exercises the maximum 5-way superposition and its full
// chain, including the Scheduled transition at the end.
func TestWideCollision(t *testing.T) {
	const n = 5
	ctl := NewOutputControl(n, nil)
	live := map[int]*noc.Flit{}
	var want uint64
	for i := 0; i < n; i++ {
		f := mkSingle(uint64(100+i), noc.East)
		live[i] = f
		want ^= f.Raw
	}
	d := ctl.Decide(offers(n, live), true)
	if d.Out == nil || !d.Out.Encoded || len(d.Out.Parts) != 5 {
		t.Fatalf("5-way superposition wrong: %v", d.Out)
	}
	if d.Out.Raw != want {
		t.Fatalf("5-way XOR image wrong")
	}
	served := 0
	for cycle := 0; cycle < 10 && len(live) > 0; cycle++ {
		if d.Serviced >= 0 {
			delete(live, d.Serviced)
			served++
		}
		ctl.Commit()
		if len(live) == 0 {
			break
		}
		d = ctl.Decide(offers(n, live), true)
	}
	if served != 5 {
		t.Fatalf("chain served %d/5", served)
	}
}
