package core

import (
	"fmt"

	"repro/internal/arbiter"
	"repro/internal/snapshot/codec"
)

// This file implements checkpointing for the two §2.4/§2.6 building blocks.
// Only state that persists between kernel steps is captured: everything the
// two-phase protocol stages during a cycle (offer caches, staged services,
// staged masks, poison) is dead by the time a step completes, which is the
// only point a snapshot is taken.

// SaveState serializes the port's persistent state: the buffered flit queue
// in order and the decode register.
func (p *InputPort) SaveState(e *codec.Encoder) {
	e.Int(p.fifo.Len())
	for i := 0; i < p.fifo.Len(); i++ {
		e.Flit(p.fifo.At(i))
	}
	e.Flit(p.reg)
}

// RestoreState loads state saved by SaveState into a freshly constructed
// (empty) port. The flits arrive already carrying their lookahead output
// ports, so no re-routing happens here.
func (p *InputPort) RestoreState(d *codec.Decoder) error {
	n := d.Len(p.fifo.Cap())
	if err := d.Err(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		f := d.Flit()
		if err := d.Err(); err != nil {
			return err
		}
		if f == nil {
			return fmt.Errorf("%w: nil flit in input-port queue", codec.ErrCorrupt)
		}
		p.fifo.Push(f)
	}
	p.reg = d.Flit()
	return d.Err()
}

// SaveState serializes the output logic's persistent state: the §2.6 FSM
// (mode, switch and arbitration masks), the wormhole lock, and the arbiter's
// priority state. A custom arbiter implementation makes the save fail with
// arbiter.ErrUnsupported.
func (o *OutputControl) SaveState(e *codec.Encoder) error {
	e.Int(int(o.mode))
	e.U64(uint64(o.switchMask))
	e.U64(uint64(o.arbMask))
	e.Int(o.lockOwner)
	st, err := arbiter.State(o.arb)
	if err != nil {
		return fmt.Errorf("%w: %v", codec.ErrUnsupported, err)
	}
	e.Int(len(st))
	for _, w := range st {
		e.U64(w)
	}
	return nil
}

// RestoreState loads state saved by SaveState into a freshly constructed
// output control of the same width and arbiter type.
func (o *OutputControl) RestoreState(d *codec.Decoder) error {
	mode := Mode(d.Int())
	sw := d.U64()
	ar := d.U64()
	lock := d.Int()
	nw := d.Len(64)
	if err := d.Err(); err != nil {
		return err
	}
	if mode != Recovery && mode != Scheduled {
		return fmt.Errorf("%w: output mode %d", codec.ErrCorrupt, mode)
	}
	if sw&^uint64(o.all) != 0 || ar&^uint64(o.all) != 0 {
		return fmt.Errorf("%w: output masks %#x/%#x exceed width %d", codec.ErrCorrupt, sw, ar, o.n)
	}
	if lock < -1 || lock >= o.n {
		return fmt.Errorf("%w: lock owner %d of %d inputs", codec.ErrCorrupt, lock, o.n)
	}
	words := make([]uint64, nw)
	for i := range words {
		words[i] = d.U64()
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := arbiter.Restore(o.arb, words); err != nil {
		return fmt.Errorf("%w: %v", codec.ErrCorrupt, err)
	}
	o.mode, o.switchMask, o.arbMask, o.lockOwner = mode, uint32(sw), uint32(ar), lock
	return nil
}
