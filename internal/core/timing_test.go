package core

import (
	"testing"

	"repro/internal/noc"
)

// mkSingle builds a single-flit packet and its flit with the given routed
// output port.
func mkSingle(id uint64, out noc.Port) *noc.Flit {
	p := noc.NewPacket(id, 0, 1, 1, 0, 0)
	f := noc.NewFlit(p, 0)
	f.OutPort = out
	return f
}

// mkMulti builds an n-flit packet and returns its flits.
func mkMulti(id uint64, n int, out noc.Port) []*noc.Flit {
	p := noc.NewPacket(id, 0, 1, n, 0, 0)
	fl := make([]*noc.Flit, n)
	for i := range fl {
		fl[i] = noc.NewFlit(p, i)
		fl[i].OutPort = out
	}
	return fl
}

func offers(n int, m map[int]*noc.Flit) []*noc.Flit {
	o := make([]*noc.Flit, n)
	for i, f := range m {
		o[i] = f
	}
	return o
}

// TestFigure2TransmissionTiming drives one NoX output with the exact
// stimulus of the paper's Figure 2 / §2.6 walkthrough:
//
//	cycle 0: A on port 0, no contention  -> A passes unmodified, grant port 0,
//	         masks re-enable all (Recovery)
//	cycle 1: idle
//	cycle 2: B on port 1 and C on port 0 collide -> output = B^C encoded,
//	         grant port 1 (B), transition to Scheduled with only C enabled
//	cycle 3: C alone -> C passes unmodified; no arbitration requests ->
//	         back to Recovery with all inputs enabled
func TestFigure2TransmissionTiming(t *testing.T) {
	const n = 5
	ctl := NewOutputControl(n, nil)

	fA := mkSingle(1, noc.East)
	fB := mkSingle(2, noc.East)
	fC := mkSingle(3, noc.East)

	// Cycle 0: A on port 0.
	d := ctl.Decide(offers(n, map[int]*noc.Flit{0: fA}), true)
	if d.Out != fA || d.Out.Encoded {
		t.Fatalf("cycle 0: want A unmodified, got %v", d.Out)
	}
	if d.Serviced != 0 || d.Granted != 0 {
		t.Fatalf("cycle 0: serviced=%d granted=%d, want 0,0", d.Serviced, d.Granted)
	}
	ctl.Commit()
	if sw, ar := ctl.Masks(); sw != 0b11111 || ar != 0b11111 || ctl.Mode() != Recovery {
		t.Fatalf("cycle 0 next state: masks %b/%b mode %v, want all-enabled Recovery", sw, ar, ctl.Mode())
	}

	// Cycle 1: idle.
	d = ctl.Decide(offers(n, nil), true)
	if d.Out != nil || d.Serviced != -1 {
		t.Fatalf("cycle 1: unexpected activity %+v", d)
	}
	ctl.Commit()

	// Cycle 2: B (port 1) and C (port 0) collide.
	d = ctl.Decide(offers(n, map[int]*noc.Flit{1: fB, 0: fC}), true)
	if d.Out == nil || !d.Out.Encoded {
		t.Fatalf("cycle 2: want encoded output, got %v", d.Out)
	}
	if want := fB.Raw ^ fC.Raw; d.Out.Raw != want {
		t.Fatalf("cycle 2: encoded image %#x, want B^C %#x", d.Out.Raw, want)
	}
	if d.Granted != 1 || d.Serviced != 1 {
		t.Fatalf("cycle 2: grant/serviced = %d/%d, want port 1 (B)", d.Granted, d.Serviced)
	}
	if !d.Collided || d.Invalid {
		t.Fatalf("cycle 2: want productive collision, got %+v", d)
	}
	ctl.Commit()
	if ctl.Mode() != Scheduled {
		t.Fatalf("cycle 2 next: mode %v, want Scheduled", ctl.Mode())
	}
	if sw, ar := ctl.Masks(); sw != 0b00001 || ar != 0b11110 {
		t.Fatalf("cycle 2 next: masks %05b/%05b, want 00001/11110 (only C traverses; complement arbitrates)", sw, ar)
	}

	// Cycle 3: C alone, nothing else requests.
	d = ctl.Decide(offers(n, map[int]*noc.Flit{0: fC}), true)
	if d.Out != fC || d.Out.Encoded {
		t.Fatalf("cycle 3: want C unmodified, got %v", d.Out)
	}
	if d.Serviced != 0 {
		t.Fatalf("cycle 3: serviced=%d, want 0", d.Serviced)
	}
	if d.Granted != -1 {
		t.Fatalf("cycle 3: unexpected grant %d (no arbitration requests)", d.Granted)
	}
	ctl.Commit()
	if sw, ar := ctl.Masks(); sw != 0b11111 || ar != 0b11111 || ctl.Mode() != Recovery {
		t.Fatalf("cycle 3 next: masks %b/%b mode %v, want all-enabled Recovery", sw, ar, ctl.Mode())
	}
}

// TestFigure3ReceiveTiming drives a NoX input port with the packet stream
// produced in Figure 2 and checks the decode pipeline of Figure 3:
//
//	cycle 0: A (uncoded) read, presented immediately
//	cycle 2: B^C (coded) read, saved to decode register, no request
//	cycle 3: C read and XORed with the register, presenting B
//	cycle 4: C presented from the buffer
func TestFigure3ReceiveTiming(t *testing.T) {
	ip := NewInputPort(4, func(noc.NodeID) noc.Port { return noc.East })

	fA := mkSingle(1, noc.East)
	fB := mkSingle(2, noc.East)
	fC := mkSingle(3, noc.East)
	enc := noc.Encode([]*noc.Flit{fB, fC})

	// Cycle 0: A buffered and presented.
	ip.Receive(fA)
	f, dec, ok := ip.Offer()
	if !ok || dec || f.Packet.ID != 1 {
		t.Fatalf("cycle 0: want raw A, got %v (decoded=%v ok=%v)", f, dec, ok)
	}
	ip.Service()
	if ev := ip.Commit(); ev.FreedSlots != 1 || ev.Decoded {
		t.Fatalf("cycle 0: events %+v", ev)
	}

	// Cycle 1: empty.
	if _, _, ok := ip.Offer(); ok {
		t.Fatal("cycle 1: unexpected offer")
	}
	ip.Commit()

	// Cycle 2: encoded B^C arrives; no switch request; latched at the edge.
	ip.Receive(enc)
	if _, _, ok := ip.Offer(); ok {
		t.Fatal("cycle 2: encoded head must not generate a switch request")
	}
	if ev := ip.Commit(); !ev.Latched || ev.FreedSlots != 1 {
		t.Fatalf("cycle 2: want latch with freed slot, got %+v", ev)
	}
	if !ip.RegisterBusy() {
		t.Fatal("cycle 2: register should hold B^C")
	}

	// Cycle 3: C arrives; register XOR C presents B.
	ip.Receive(fC)
	f, dec, ok = ip.Offer()
	if !ok || !dec {
		t.Fatalf("cycle 3: want decoded offer, got ok=%v dec=%v", ok, dec)
	}
	if f.Packet.ID != 2 || f.Raw != fB.Raw {
		t.Fatalf("cycle 3: decoded %v, want B", f)
	}
	ip.Service()
	ev := ip.Commit()
	if !ev.Decoded || ev.FreedSlots != 0 {
		t.Fatalf("cycle 3: events %+v (C must stay buffered)", ev)
	}
	if ip.RegisterBusy() {
		t.Fatal("cycle 3: register should be cleared after final decode")
	}

	// Cycle 4: C presented raw from the buffer.
	f, dec, ok = ip.Offer()
	if !ok || dec || f.Packet.ID != 3 {
		t.Fatalf("cycle 4: want raw C, got %v (decoded=%v)", f, dec)
	}
	ip.Service()
	if ev := ip.Commit(); ev.FreedSlots != 1 {
		t.Fatalf("cycle 4: events %+v", ev)
	}
	if ip.Buffered() != 0 || ip.RegisterBusy() {
		t.Fatal("cycle 4: port should be empty")
	}
}

// TestThreeWayChain checks the §2.2 property directly on the control and
// decode logic: A, B, C collide; the chain A^B^C, B^C, C decodes to A, B, C
// in grant order at the receiver.
func TestThreeWayChain(t *testing.T) {
	const n = 5
	ctl := NewOutputControl(n, nil)
	ip := NewInputPort(8, func(noc.NodeID) noc.Port { return noc.Local })

	fs := []*noc.Flit{mkSingle(10, noc.East), mkSingle(11, noc.East), mkSingle(12, noc.East)}
	live := map[int]*noc.Flit{0: fs[0], 1: fs[1], 2: fs[2]}

	var grantOrder []uint64
	var wire []*noc.Flit
	for cycle := 0; cycle < 10 && len(live) > 0; cycle++ {
		d := ctl.Decide(offers(n, live), true)
		if d.Out != nil {
			wire = append(wire, d.Out)
		}
		if d.Serviced >= 0 {
			grantOrder = append(grantOrder, live[d.Serviced].Packet.ID)
			delete(live, d.Serviced)
		}
		ctl.Commit()
	}
	if len(wire) != 3 {
		t.Fatalf("chain emitted %d wire flits, want 3", len(wire))
	}
	if !wire[0].Encoded || !wire[1].Encoded || wire[2].Encoded {
		t.Fatalf("wire encodings wrong: %v %v %v", wire[0], wire[1], wire[2])
	}

	// Replay the wire into a receiving input port and collect decode order.
	var recovered []uint64
	for _, w := range wire {
		ip.Receive(w)
		// Drain as the hardware would: one presentation per cycle.
		if f, _, ok := ip.Offer(); ok {
			ip.Service()
			recovered = append(recovered, f.Packet.ID)
		}
		ip.Commit()
	}
	for i := 0; i < 4; i++ { // a few extra cycles to flush
		if f, _, ok := ip.Offer(); ok {
			ip.Service()
			recovered = append(recovered, f.Packet.ID)
		}
		ip.Commit()
	}
	if len(recovered) != 3 {
		t.Fatalf("recovered %d packets, want 3", len(recovered))
	}
	for i := range recovered {
		if recovered[i] != grantOrder[i] {
			t.Fatalf("decode order %v != grant order %v (§2.2 ordering property)", recovered, grantOrder)
		}
	}
}

// TestMultiFlitAbort verifies §2.7: a collision involving a multi-flit
// packet aborts (invalid drive, nobody serviced) and transitions to
// Scheduled mode; the winner then streams contiguously under the lock with
// no other arbitration winners until the tail passes.
func TestMultiFlitAbort(t *testing.T) {
	const n = 5
	ctl := NewOutputControl(n, nil)

	data := mkMulti(20, 3, noc.East)
	ctrl := mkSingle(21, noc.East)

	// Cycle 0: multi-flit head collides with a single-flit packet.
	d := ctl.Decide(offers(n, map[int]*noc.Flit{0: data[0], 1: ctrl}), true)
	if !d.Invalid || d.Out != nil || d.Serviced != -1 {
		t.Fatalf("abort cycle: want invalid drive and no service, got %+v", d)
	}
	winner := d.Granted
	if winner != 0 && winner != 1 {
		t.Fatalf("abort grant %d outside collision set", winner)
	}
	ctl.Commit()
	if ctl.Mode() != Scheduled {
		t.Fatalf("after abort: mode %v, want Scheduled", ctl.Mode())
	}
	if sw, _ := ctl.Masks(); sw != 1<<winner {
		t.Fatalf("after abort: switch mask %05b, want one-hot winner %d", sw, winner)
	}

	// The round-robin arbiter starts at input 0, so the data packet wins.
	if winner != 0 {
		t.Fatalf("expected round-robin to grant input 0, got %d", winner)
	}

	// Cycles 1..3: the data packet streams; no arbitration winners are
	// produced until the tail cycle, where the parallel arbiter resumes
	// and pre-schedules the waiting loser.
	for seq := 0; seq < 3; seq++ {
		d = ctl.Decide(offers(n, map[int]*noc.Flit{0: data[seq], 1: ctrl}), true)
		if d.Out != data[seq] || d.Serviced != 0 {
			t.Fatalf("stream cycle %d: got %+v", seq, d)
		}
		if seq < 2 && seq > 0 && d.Granted != -1 {
			t.Fatalf("stream cycle %d: arbitration winner %d during multi-flit transmission", seq, d.Granted)
		}
		if seq == 2 && d.Granted != 1 {
			t.Fatalf("tail cycle: granted %d, want the waiting loser 1", d.Granted)
		}
		ctl.Commit()
		if seq < 2 && ctl.Locked() != 0 {
			t.Fatalf("stream cycle %d: lock owner %d, want 0", seq, ctl.Locked())
		}
	}
	if ctl.Locked() != -1 {
		t.Fatal("lock not released after tail")
	}
	if ctl.Mode() != Scheduled {
		t.Fatal("tail handoff should stay in Scheduled mode")
	}

	// Next cycle the pre-scheduled loser goes immediately — no collision
	// storm after a multi-flit transmission.
	d = ctl.Decide(offers(n, map[int]*noc.Flit{1: ctrl}), true)
	if d.Out != ctrl || d.Serviced != 1 {
		t.Fatalf("post-tail cycle: got %+v", d)
	}
}

// TestScheduledModeSteadyState verifies that two continuously streaming
// inputs settle into collision-free alternation (§2.6: the NoX logic
// performs like a pre-scheduled speculative router once requests are
// predictable).
func TestScheduledModeSteadyState(t *testing.T) {
	const n = 5
	ctl := NewOutputControl(n, nil)

	var id uint64 = 100
	next := func() *noc.Flit { id++; return mkSingle(id, noc.East) }
	live := map[int]*noc.Flit{0: next(), 1: next()}

	collisions := 0
	delivered := 0
	for cycle := 0; cycle < 40; cycle++ {
		d := ctl.Decide(offers(n, live), true)
		if d.Collided {
			collisions++
		}
		if d.Serviced >= 0 {
			delivered++
			live[d.Serviced] = next() // input immediately offers a new packet
		}
		ctl.Commit()
	}
	if collisions != 1 {
		t.Errorf("collisions = %d, want exactly the initial one", collisions)
	}
	if delivered != 40 {
		t.Errorf("delivered %d in 40 cycles, want full utilization", delivered)
	}
}

// TestCreditStallPreservesChain verifies that exhausting credits mid-chain
// freezes the masks so the encoded sequence stays contiguous and decodable.
func TestCreditStallPreservesChain(t *testing.T) {
	const n = 5
	ctl := NewOutputControl(n, nil)
	ip := NewInputPort(8, func(noc.NodeID) noc.Port { return noc.Local })

	live := map[int]*noc.Flit{0: mkSingle(31, noc.East), 1: mkSingle(32, noc.East), 2: mkSingle(33, noc.East)}
	credits := []bool{true, false, false, true, true, true, true, true}

	var wire []*noc.Flit
	for cycle := 0; cycle < len(credits) && len(live) > 0; cycle++ {
		d := ctl.Decide(offers(n, live), credits[cycle])
		if !credits[cycle] {
			if !d.Stalled || d.Out != nil || d.Serviced >= 0 {
				t.Fatalf("cycle %d: activity during stall: %+v", cycle, d)
			}
		}
		if d.Out != nil {
			wire = append(wire, d.Out)
		}
		if d.Serviced >= 0 {
			delete(live, d.Serviced)
		}
		ctl.Commit()
	}
	if len(live) != 0 {
		t.Fatalf("chain did not complete: %d left", len(live))
	}
	// The received sequence must decode to all three packets.
	got := map[uint64]bool{}
	for _, w := range wire {
		ip.Receive(w)
	}
	for i := 0; i < 10; i++ {
		if f, _, ok := ip.Offer(); ok {
			ip.Service()
			got[f.Packet.ID] = true
		}
		ip.Commit()
	}
	for _, want := range []uint64{31, 32, 33} {
		if !got[want] {
			t.Errorf("packet %d not recovered after stall; wire=%v", want, wire)
		}
	}
}
