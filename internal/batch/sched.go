package batch

// The scheduler side of batching: experiment drivers hold a flat list of
// jobs (one per sweep point, ablation cell, or fault campaign) and need to
// (a) drop exact duplicates — sweeps over figure grids routinely repeat an
// (arch, rate, seed) point across series — and (b) carve the survivors into
// lockstep cohorts of bounded width. Both are pure index manipulation so
// drivers keep their own job types; the helpers are generic over a
// comparable key.

// Dedupe returns the indices of the first occurrence of each distinct key,
// in input order, plus how many duplicates were dropped. Drivers run the
// canonical jobs and fan the shared result back out to every index holding
// the same key.
func Dedupe[K comparable](keys []K) (canon []int, skipped int) {
	seen := make(map[K]struct{}, len(keys))
	canon = make([]int, 0, len(keys))
	for i, k := range keys {
		if _, dup := seen[k]; dup {
			skipped++
			continue
		}
		seen[k] = struct{}{}
		canon = append(canon, i)
	}
	return canon, skipped
}

// CanonicalIndex maps every key to the index of its first occurrence:
// result[i] == i for canonical jobs, and the canonical job's index for
// duplicates. Drivers use it to copy a canonical result into every
// duplicate slot.
func CanonicalIndex[K comparable](keys []K) []int {
	first := make(map[K]int, len(keys))
	out := make([]int, len(keys))
	for i, k := range keys {
		if j, ok := first[k]; ok {
			out[i] = j
			continue
		}
		first[k] = i
		out[i] = i
	}
	return out
}

// Chunks splits the index range [0, n) into consecutive spans of at most
// width elements — the cohort boundaries for a flat job list. width <= 0
// defaults to DefaultWidth.
func Chunks(n, width int) [][2]int {
	if n <= 0 {
		return nil
	}
	if width <= 0 {
		width = DefaultWidth
	}
	spans := make([][2]int, 0, (n+width-1)/width)
	for lo := 0; lo < n; lo += width {
		hi := lo + width
		if hi > n {
			hi = n
		}
		spans = append(spans, [2]int{lo, hi})
	}
	return spans
}
