// Package batch implements batched many-seed lockstep execution: stepping N
// structurally identical networks — sweeps, ablations, and fault campaigns
// run hundreds of simulations that differ only in seed, injection rate, or
// fault spec over the same topology — through the same cycles together,
// sharing one memoized route table, one slab-built structural skeleton, and
// one flit-block pool, with the per-component activity state transposed into
// the structure-of-arrays bit words of sim.LockstepGroup so one pass over a
// router column touches all N members' state sequentially and an
// all-members-idle column is skipped with a single machine-word load.
//
// Batching changes wall-clock time only. Every member evolves exactly as it
// would alone: batched results are byte-identical to N independent serial
// runs (CSV, probe exports, fault reports), which the equivalence suites
// here and in internal/harness pin. It composes with the other two
// parallelism axes: shard within a simulation (members with Shards > 1 fall
// back to per-member stepping inside the cohort), batch across simulations,
// and fan cohorts across the internal/exp worker pool.
package batch

import (
	"fmt"
	"sync/atomic"

	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/sim"
)

// liveMembers/activeCohorts are process-global occupancy gauges for the
// telemetry server: members currently live (built and not yet parked) and
// cohorts currently open. Cohorts may be stepped concurrently from exp.Map
// workers, hence atomics.
var (
	liveMembers   atomic.Int64
	activeCohorts atomic.Int64
)

// LiveMembers returns the live (unparked) member count across open cohorts.
func LiveMembers() int64 { return liveMembers.Load() }

// ActiveCohorts returns the number of cohorts built and not yet closed.
func ActiveCohorts() int64 { return activeCohorts.Load() }

// WordWidth is the number of member simulations one activity word covers:
// the bit-sliced fast path evaluates the skip mask for up to 64 members per
// machine-word operation, so cohorts up to this width pay one word per
// component column.
const WordWidth = 64

// DefaultWidth is the cohort width drivers use when the caller does not pick
// one. Wider cohorts amortize construction over more members but cycle
// through a larger working set every simulated cycle — past the last-level
// cache, every member's hot state is evicted between its own visits.
// Width 8 measured fastest end-to-end on the 8x8 sweep benchmark; the
// bit-sliced drain-tail skip works at any width.
const DefaultWidth = 8

// cohortSlabChunk returns the shared construction allocator's refill chunk
// for an n-member cohort. Cohorts build many networks from one allocator,
// so a larger chunk than the per-network 16 KiB default keeps a wide
// cohort's router state in a handful of contiguous slabs — but the chunk
// scales with width so narrow cohorts don't strand most of each slab.
func cohortSlabChunk(n int) int {
	chunk := n * (16 << 10)
	if max := 256 << 10; chunk > max {
		chunk = max
	}
	return chunk
}

// Cohort is a set of structurally identical networks advanced in lockstep.
// Members are built by New from per-member configurations that must agree
// on everything structural (shape, architecture may differ per member —
// only component counts and execution mode must match); per-member
// instrumentation (Probe, Check, Fault) is fully supported, each member
// keeping its own.
type Cohort struct {
	nets []*network.Network
	// group drives serial members column-major with bit-sliced skip words;
	// nil when members are sharded (intra-simulation worker pools), where
	// the cohort falls back to stepping members round-robin per cycle —
	// still lockstep, still sharing construction, without the SoA walk.
	group  *sim.LockstepGroup
	parked []bool
	live   int
	closed bool
}

// New builds an n-member cohort. mk returns member i's network
// configuration; New overlays the shared construction state (slab
// allocator, flit-block pool) before building. Configurations must resolve
// to the same execution mode (all serial or all equally sharded) and the
// same component count; mismatches return an error.
func New(n int, mk func(i int) network.Config) (*Cohort, error) {
	if n <= 0 {
		return nil, fmt.Errorf("batch: cohort size must be positive (got %d)", n)
	}
	slabs := router.NewSlabsSized(cohortSlabChunk(n))
	blocks := &noc.BlockPool{}
	c := &Cohort{nets: make([]*network.Network, n), parked: make([]bool, n), live: n}
	for i := 0; i < n; i++ {
		cfg := mk(i)
		cfg.Slabs = slabs
		cfg.FlitBlocks = blocks
		net, err := network.Build(cfg)
		if err != nil {
			c.closeBuilt(i)
			return nil, err
		}
		c.nets[i] = net
		if net.Shards() != c.nets[0].Shards() {
			c.closeBuilt(i + 1)
			return nil, fmt.Errorf("batch: member %d resolves to %d shards, member 0 to %d (cohort members must share an execution mode)",
				i, net.Shards(), c.nets[0].Shards())
		}
	}
	if c.nets[0].Shards() == 1 {
		kernels := make([]*sim.Kernel, n)
		for i, net := range c.nets {
			kernels[i] = net.Kernel()
		}
		c.group = sim.NewLockstepGroup(kernels)
	}
	activeCohorts.Add(1)
	liveMembers.Add(int64(n))
	return c, nil
}

func (c *Cohort) closeBuilt(n int) {
	for i := 0; i < n; i++ {
		if c.nets[i] != nil {
			c.nets[i].Close()
		}
	}
}

// Size returns the member count.
func (c *Cohort) Size() int { return len(c.nets) }

// Net returns member i's network. Injection, counters, and result readout
// go through it exactly as in a standalone run.
func (c *Cohort) Net(i int) *network.Network { return c.nets[i] }

// Live returns the number of members still stepping (not parked).
func (c *Cohort) Live() int { return c.live }

// Parked reports whether member i has been parked.
func (c *Cohort) Parked(i int) bool { return c.parked[i] }

// Park drops member i out of lockstep once its run is finished: the batched
// equivalent of a serial run that stopped stepping. Its clock freezes (or
// stays wherever a final FastForwardIdle left it) and its hooks stop
// firing, so probe output is identical to the standalone run's.
func (c *Cohort) Park(i int) {
	if c.parked[i] {
		return
	}
	c.parked[i] = true
	c.live--
	liveMembers.Add(-1)
	if c.group != nil {
		c.group.Park(i)
	}
}

// Step advances every live member one cycle in lockstep.
func (c *Cohort) Step() {
	if c.group != nil {
		c.group.Step()
		return
	}
	for i, net := range c.nets {
		if !c.parked[i] {
			net.Step()
		}
	}
}

// AllIdle reports that every live member is fully quiescent, so a Step
// would be pure clock advance across the whole cohort.
func (c *Cohort) AllIdle() bool {
	if c.group != nil {
		return c.group.AllIdle()
	}
	for i, net := range c.nets {
		if !c.parked[i] && !net.FullyIdle() {
			return false
		}
	}
	return true
}

// Release dissolves the lockstep group so members can be stepped
// individually again (network.Step, Drain, DrainChecked). The cohort keeps
// tracking membership for Close; Step after Release falls back to the
// per-member loop.
func (c *Cohort) Release() {
	if c.group != nil {
		c.group.Release()
		c.group = nil
	}
}

// Close releases every member's resources (worker pools when sharded).
func (c *Cohort) Close() {
	c.Release()
	for _, net := range c.nets {
		if net != nil {
			net.Close()
		}
	}
	if !c.closed {
		c.closed = true
		activeCohorts.Add(-1)
		liveMembers.Add(-int64(c.live))
		c.live = 0
	}
}
