package batch

import (
	"fmt"
	"testing"

	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// runSerialRef drives one standalone network with the given seed for cycles
// cycles of uniform Bernoulli traffic plus a bounded drain, and returns
// (injected, delivered, final cycle) — the reference trajectory a cohort
// member must reproduce exactly.
func runSerialRef(t *testing.T, arch router.Arch, seed uint64, cycles int64) (int64, int64, int64) {
	t.Helper()
	net, err := network.Build(network.Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: arch, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	driveBernoulli(net, seed, cycles)
	if !net.Drain(4000) {
		t.Fatalf("serial reference did not drain (arch %v seed %#x)", arch, seed)
	}
	return net.Injected(), net.Delivered(), net.Cycle()
}

func driveBernoulli(net *network.Network, seed uint64, cycles int64) {
	topo := net.Topology()
	pat := traffic.Uniform{Topo: topo}
	base := sim.NewRNG(seed)
	nodes := topo.Nodes()
	procs := make([]*traffic.Bernoulli, nodes)
	dests := make([]*sim.RNG, nodes)
	for i := range procs {
		procs[i] = &traffic.Bernoulli{P: 0.1, RNG: base.Fork(uint64(i))}
		dests[i] = base.Fork(uint64(1000 + i))
	}
	for cyc := int64(0); cyc < cycles; cyc++ {
		for id := 0; id < nodes; id++ {
			if !procs[id].Tick() {
				continue
			}
			src := noc.NodeID(id)
			dst := pat.Dest(src, dests[id])
			if dst == src {
				continue
			}
			net.Inject(src, dst, 1, 0)
		}
		net.Step()
	}
}

// TestCohortMatchesSerial pins the core batching contract at the network
// level: a cohort of members differing only in seed, stepped in lockstep
// with per-member injection, reaches exactly the serial trajectory.
func TestCohortMatchesSerial(t *testing.T) {
	const cycles = 400
	for _, arch := range router.Archs {
		for _, width := range []int{1, 2, 7} {
			t.Run(fmt.Sprintf("%v/w%d", arch, width), func(t *testing.T) {
				seeds := make([]uint64, width)
				for i := range seeds {
					seeds[i] = 0xC0FFEE + uint64(i)*977
				}

				c, err := New(width, func(i int) network.Config {
					return network.Config{Topo: noc.Topology{Width: 4, Height: 4}, Arch: arch, Shards: 1}
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()

				// Per-member traffic state, lockstep stepping.
				type gen struct {
					procs []*traffic.Bernoulli
					dests []*sim.RNG
					pat   traffic.Uniform
				}
				gens := make([]gen, width)
				for m := 0; m < width; m++ {
					topo := c.Net(m).Topology()
					base := sim.NewRNG(seeds[m])
					g := gen{pat: traffic.Uniform{Topo: topo}}
					for i := 0; i < topo.Nodes(); i++ {
						g.procs = append(g.procs, &traffic.Bernoulli{P: 0.1, RNG: base.Fork(uint64(i))})
						g.dests = append(g.dests, base.Fork(uint64(1000 + i)))
					}
					gens[m] = g
				}
				for cyc := int64(0); cyc < cycles; cyc++ {
					for m := 0; m < width; m++ {
						net := c.Net(m)
						for id := range gens[m].procs {
							if !gens[m].procs[id].Tick() {
								continue
							}
							src := noc.NodeID(id)
							dst := gens[m].pat.Dest(src, gens[m].dests[id])
							if dst == src {
								continue
							}
							net.Inject(src, dst, 1, 0)
						}
					}
					c.Step()
				}
				// Drain members in lockstep until each is done, parking as
				// they finish — the batched analogue of per-member Drain.
				deadline := int64(cycles + 4000)
				for c.Live() > 0 {
					progressed := false
					for m := 0; m < width; m++ {
						if c.Parked(m) {
							continue
						}
						net := c.Net(m)
						if net.Outstanding() == 0 || net.Cycle() >= deadline {
							c.Park(m)
							progressed = true
						}
					}
					if c.Live() == 0 {
						break
					}
					c.Step()
					_ = progressed
				}

				for m := 0; m < width; m++ {
					refInj, refDel, _ := runSerialRef(t, arch, seeds[m], cycles)
					net := c.Net(m)
					if net.Injected() != refInj || net.Delivered() != refDel {
						t.Errorf("member %d: batched inj/del %d/%d, serial %d/%d",
							m, net.Injected(), net.Delivered(), refInj, refDel)
					}
					if net.Outstanding() != 0 {
						t.Errorf("member %d: %d packets still outstanding after drain", m, net.Outstanding())
					}
					net.CheckInvariants()
				}
			})
		}
	}
}

// TestCohortAdoptionGuards pins the kernel-level safety rails: stepping an
// adopted kernel directly panics, and Release restores standalone stepping.
func TestCohortAdoptionGuards(t *testing.T) {
	c, err := New(2, func(i int) network.Config {
		return network.Config{Topo: noc.Topology{Width: 2, Height: 2}, Arch: router.NoX, Shards: 1}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("Step on an adopted kernel did not panic")
			}
		}()
		c.Net(0).Step()
	}()

	c.Release()
	c.Net(0).Step() // must not panic after Release
	if got := c.Net(0).Cycle(); got != 1 {
		t.Errorf("cycle after Release+Step = %d, want 1", got)
	}
}

// TestDedupe pins canonical-index selection and skip counting.
func TestDedupe(t *testing.T) {
	type key struct {
		arch router.Arch
		rate float64
		seed uint64
	}
	keys := []key{
		{router.NoX, 100, 1},
		{router.SpecFast, 100, 1},
		{router.NoX, 100, 1}, // dup of 0
		{router.NoX, 200, 1},
		{router.SpecFast, 100, 1}, // dup of 1
	}
	canon, skipped := Dedupe(keys)
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	want := []int{0, 1, 3}
	if len(canon) != len(want) {
		t.Fatalf("canon = %v, want %v", canon, want)
	}
	for i := range want {
		if canon[i] != want[i] {
			t.Fatalf("canon = %v, want %v", canon, want)
		}
	}
	idx := CanonicalIndex(keys)
	wantIdx := []int{0, 1, 0, 3, 1}
	for i := range wantIdx {
		if idx[i] != wantIdx[i] {
			t.Fatalf("CanonicalIndex = %v, want %v", idx, wantIdx)
		}
	}
}

// TestChunks pins cohort span carving.
func TestChunks(t *testing.T) {
	if got := Chunks(0, 8); got != nil {
		t.Errorf("Chunks(0) = %v, want nil", got)
	}
	got := Chunks(10, 4)
	want := [][2]int{{0, 4}, {4, 8}, {8, 10}}
	if len(got) != len(want) {
		t.Fatalf("Chunks(10,4) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Chunks(10,4) = %v, want %v", got, want)
		}
	}
	got = Chunks(20, 0)
	want = [][2]int{{0, DefaultWidth}, {DefaultWidth, 2 * DefaultWidth}, {2 * DefaultWidth, 20}}
	if len(got) != len(want) {
		t.Fatalf("Chunks(20,0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Chunks(20,0) = %v, want %v", got, want)
		}
	}
}
