package snapshot

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/snapshot/codec"
)

// Multi-network snapshots serialize a lockstep multi-class network (the app
// harness's request/reply pair) as one image: the shared header followed by
// the class count and each class network's state in class order. All classes
// of a network.Multi share one structural configuration, so one header
// covers them. A checker shared across classes serializes its full ledger
// once per class; RestoreLedger overwrites rather than merges, so the
// repeated restore is idempotent and the final state is exact.

// EncodeMulti serializes every class of a lockstep multi-network to one
// snapshot image. Only call between steps.
func EncodeMulti(m *network.Multi) ([]byte, error) {
	e := codec.NewEncoder()
	writeHeader(e, headerOf(m.Net(0).Config()))
	e.Int(m.Classes())
	for class := 0; class < m.Classes(); class++ {
		if err := m.Net(class).SaveState(e); err != nil {
			return nil, fmt.Errorf("class %d: %w", class, err)
		}
	}
	return e.Bytes(), nil
}

// DecodeMultiInto restores a multi-network image into an already
// constructed Multi with the same class count and structural configuration.
// On success every class stands at the saved cycle, ready to step.
func DecodeMultiInto(data []byte, m *network.Multi) error {
	d := codec.NewDecoder(data)
	h, err := readHeader(d)
	if err != nil {
		return err
	}
	if got := headerOf(m.Net(0).Config()); got != h {
		return fmt.Errorf("%w: snapshot %+v does not match target network %+v", codec.ErrUnsupported, h, got)
	}
	classes := d.Len(64)
	if err := d.Err(); err != nil {
		return err
	}
	if classes != m.Classes() {
		return fmt.Errorf("%w: snapshot has %d classes, target has %d", codec.ErrUnsupported, classes, m.Classes())
	}
	for class := 0; class < classes; class++ {
		if err := m.Net(class).RestoreState(d); err != nil {
			return fmt.Errorf("class %d: %w", class, err)
		}
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after network state", codec.ErrCorrupt, d.Remaining())
	}
	return nil
}

// Info is a snapshot's structural header in exported form, so tools can
// rebuild a matching network from an image alone (noxfault -restore loads a
// crash snapshot without knowing the campaign's topology).
type Info struct {
	Topo          noc.Topology
	Concentration int
	Arch          router.Arch
	BufferDepth   int
	SinkDepth     int
}

// Config returns a network configuration with the image's structural
// parameters; the caller adds execution mode and instrumentation.
func (i Info) Config() network.Config {
	return network.Config{
		Topo:          i.Topo,
		Concentration: i.Concentration,
		Arch:          i.Arch,
		BufferDepth:   i.BufferDepth,
		SinkDepth:     i.SinkDepth,
	}
}

// Inspect parses and validates an image's header without restoring it.
func Inspect(data []byte) (Info, error) {
	h, err := readHeader(codec.NewDecoder(data))
	if err != nil {
		return Info{}, err
	}
	return Info{
		Topo:          noc.Topology{Width: h.width, Height: h.height},
		Concentration: h.concentration,
		Arch:          h.arch,
		BufferDepth:   h.bufferDepth,
		SinkDepth:     h.sinkDepth,
	}, nil
}
