// Package snapshot provides versioned, deterministic checkpointing of a
// complete network simulation: Save serializes every piece of between-step
// state (router queues and FSMs, interface source queues and reassembly,
// in-flight packets and flits, link credits, power counters, and the
// invariant checker's ledger) to a compact binary image, Restore rebuilds a
// ready-to-step network from one, and Fork deep-copies a warmed network into
// a lockstep cohort so many rate points can share one warm-up.
//
// Snapshots are deterministic — saving the same network twice, or re-saving
// a freshly restored one, yields identical bytes — and portable across
// execution modes: a snapshot taken from a serial run restores into a
// sharded or batched network (and vice versa) because results are
// bit-identical at every shard count. Non-serializable wiring (probes,
// checkers, fault injectors, observers) is supplied by the restore
// configuration, not the image; only structural parameters travel with it.
package snapshot

import (
	"fmt"
	"io"
	"os"

	"repro/internal/batch"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/snapshot/codec"
)

// magic identifies a snapshot stream ("NOXSNAP" in spirit); version is the
// wire-format revision. Decoders reject unknown versions with
// codec.ErrVersion so format evolution fails loudly instead of misparsing.
const (
	magic   uint64 = 0x4e4f585350415031 // "NOXSPA01"
	version uint64 = 2                  // v2: undeliverable accounting, hard-fault and retransmission sections
)

// header carries the structural parameters a snapshot was taken under. A
// restore target must match them exactly; execution mode (shards, lanes,
// always-active) and instrumentation may differ freely.
type header struct {
	width, height int
	concentration int
	arch          router.Arch
	bufferDepth   int
	sinkDepth     int
}

func headerOf(cfg network.Config) header {
	return header{
		width:         cfg.Topo.Width,
		height:        cfg.Topo.Height,
		concentration: cfg.Concentration,
		arch:          cfg.Arch,
		bufferDepth:   cfg.BufferDepth,
		sinkDepth:     cfg.SinkDepth,
	}
}

// apply forces the header's structural parameters onto a restore
// configuration, so the rebuilt network matches the image by construction.
func (h header) apply(cfg *network.Config) {
	cfg.Topo = noc.Topology{Width: h.width, Height: h.height}
	cfg.Concentration = h.concentration
	cfg.Arch = h.arch
	cfg.BufferDepth = h.bufferDepth
	cfg.SinkDepth = h.sinkDepth
}

func writeHeader(e *codec.Encoder, h header) {
	e.U64(magic)
	e.U64(version)
	e.Int(h.width)
	e.Int(h.height)
	e.Int(h.concentration)
	e.Int(int(h.arch))
	e.Int(h.bufferDepth)
	e.Int(h.sinkDepth)
}

func readHeader(d *codec.Decoder) (header, error) {
	var h header
	if m := d.U64(); d.Err() == nil && m != magic {
		return h, fmt.Errorf("%w: bad magic %#x", codec.ErrCorrupt, m)
	}
	if v := d.U64(); d.Err() == nil && v != version {
		return h, fmt.Errorf("%w: snapshot version %d, this build reads %d", codec.ErrVersion, v, version)
	}
	h.width = d.Int()
	h.height = d.Int()
	h.concentration = d.Int()
	h.arch = router.Arch(d.Int())
	h.bufferDepth = d.Int()
	h.sinkDepth = d.Int()
	if err := d.Err(); err != nil {
		return h, err
	}
	if h.width < 1 || h.width > 1024 || h.height < 1 || h.height > 1024 {
		return h, fmt.Errorf("%w: %dx%d topology", codec.ErrCorrupt, h.width, h.height)
	}
	if h.concentration < 1 || h.concentration > 64 {
		return h, fmt.Errorf("%w: concentration %d", codec.ErrCorrupt, h.concentration)
	}
	if h.arch < router.NonSpec || h.arch > router.NoX {
		return h, fmt.Errorf("%w: architecture %d", codec.ErrCorrupt, int(h.arch))
	}
	if h.bufferDepth < 1 || h.bufferDepth > 1024 || h.sinkDepth < 1 || h.sinkDepth > 4096 {
		return h, fmt.Errorf("%w: buffer depth %d / sink depth %d", codec.ErrCorrupt, h.bufferDepth, h.sinkDepth)
	}
	return h, nil
}

// Encode serializes the network to a snapshot image. Only call between
// steps. Networks with non-serializable pieces (a custom arbiter or traffic
// process) fail with codec.ErrUnsupported.
func Encode(net *network.Network) ([]byte, error) {
	e := codec.NewEncoder()
	writeHeader(e, headerOf(net.Config()))
	if err := net.SaveState(e); err != nil {
		return nil, err
	}
	return e.Bytes(), nil
}

// Decode rebuilds a ready-to-step network from a snapshot image. cfg
// supplies everything the image does not carry — execution mode and the
// instrumentation wiring (Probe, Check, Fault, Observer, NewArbiter) — while
// its structural fields are overwritten from the image's header. The
// checker-armed state must match the image (see network.RestoreState).
// Malformed images fail with a typed codec error; they never panic.
func Decode(data []byte, cfg network.Config) (*network.Network, error) {
	d := codec.NewDecoder(data)
	h, err := readHeader(d)
	if err != nil {
		return nil, err
	}
	h.apply(&cfg)
	net, err := network.Build(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", codec.ErrCorrupt, err)
	}
	if err := restoreInto(net, d); err != nil {
		net.Close()
		return nil, err
	}
	return net, nil
}

// DecodeInto restores a snapshot image into an already constructed network,
// which must have been built with the image's structural parameters (the
// header is checked against net.Config()). The harness uses this to restore
// warm images into cohort members whose execution-mode wiring batch.New has
// already arranged.
func DecodeInto(data []byte, net *network.Network) error {
	d := codec.NewDecoder(data)
	h, err := readHeader(d)
	if err != nil {
		return err
	}
	if got := headerOf(net.Config()); got != h {
		return fmt.Errorf("%w: snapshot %+v does not match target network %+v", codec.ErrUnsupported, h, got)
	}
	return restoreInto(net, d)
}

func restoreInto(net *network.Network, d *codec.Decoder) error {
	if err := net.RestoreState(d); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after network state", codec.ErrCorrupt, d.Remaining())
	}
	return nil
}

// Save writes a snapshot of the network to w. Only call between steps.
func Save(w io.Writer, net *network.Network) error {
	data, err := Encode(net)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Restore reads a snapshot from r and rebuilds the network; see Decode.
func Restore(r io.Reader, cfg network.Config) (*network.Network, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(data, cfg)
}

// SaveFile writes a snapshot of the network to path.
func SaveFile(path string, net *network.Network) error {
	data, err := Encode(net)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// RestoreFile rebuilds a network from a snapshot file; see Decode.
func RestoreFile(path string, cfg network.Config) (*network.Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data, cfg)
}

// Fork deep-copies one warmed network into an n-member lockstep cohort: the
// source is encoded once and decoded into every member, so all members
// resume from identical warm state and the batched kernel drives them
// together. mk returns member i's configuration exactly as for batch.New;
// structural fields are overwritten from the source. The source network is
// left untouched and usable.
func Fork(src *network.Network, n int, mk func(i int) network.Config) (*batch.Cohort, error) {
	data, err := Encode(src)
	if err != nil {
		return nil, err
	}
	h := headerOf(src.Config())
	cohort, err := batch.New(n, func(i int) network.Config {
		cfg := mk(i)
		h.apply(&cfg)
		return cfg
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		d := codec.NewDecoder(data)
		if _, err := readHeader(d); err != nil {
			cohort.Close()
			return nil, err
		}
		if err := restoreInto(cohort.Net(i), d); err != nil {
			cohort.Close()
			return nil, fmt.Errorf("fork member %d: %w", i, err)
		}
	}
	return cohort, nil
}
