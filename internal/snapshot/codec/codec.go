// Package codec implements the primitive binary layer of the snapshot
// format: varint-coded scalars plus pointer-graph interning for the flit and
// packet objects that the network state references, preserving sharing (the
// same *Flit reachable from an input FIFO and from a downstream encoded
// flit's constituent set decodes back to one object, because the simulator
// compares some of them by identity).
//
// The decoder is hardened against hostile input: every read is bounds
// checked, every length is capped before allocation, and every failure is a
// typed error (ErrTruncated, ErrCorrupt, ErrVersion, ErrUnsupported) — it
// must never panic, which the snapshot fuzz target enforces.
package codec

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/noc"
)

// Typed decode errors. All decoder failures wrap one of these.
var (
	// ErrTruncated reports input that ends mid-value.
	ErrTruncated = errors.New("snapshot: truncated input")
	// ErrCorrupt reports structurally invalid input: a bad tag, an
	// out-of-range length, a reference to an object never defined.
	ErrCorrupt = errors.New("snapshot: corrupt input")
	// ErrVersion reports a snapshot written by an incompatible format
	// version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrUnsupported reports state the snapshot layer cannot capture, such
	// as a custom arbiter implementation.
	ErrUnsupported = errors.New("snapshot: unsupported state")
)

// Caps on decoded lengths, generous multiples of anything a real network
// produces, so corrupt input cannot drive huge allocations.
const (
	maxPacketFlits = 1 << 16
	maxParts       = 1 << 8
	maxSliceLen    = 1 << 26
)

// Flit/packet wire tags.
const (
	tagNil  = 0 // nil pointer
	tagRef  = 1 // back-reference to an interned object
	tagNew  = 2 // first encounter, full encoding (unencoded flit)
	tagNewE = 3 // first encounter, encoded (XOR superposition) flit
)

// Encoder serializes scalars and interned object graphs into an in-memory
// buffer. The zero value is not usable; call NewEncoder.
type Encoder struct {
	buf     []byte
	packets map[*noc.Packet]uint64
	flits   map[*noc.Flit]uint64
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{
		packets: make(map[*noc.Packet]uint64),
		flits:   make(map[*noc.Flit]uint64),
	}
}

// Bytes returns the encoded image. The slice aliases the encoder's buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// U64 appends an unsigned varint.
func (e *Encoder) U64(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

// I64 appends a zigzag-coded signed varint.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)<<1 ^ uint64(v>>63)) }

// Int appends a zigzag-coded int.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a single 0/1 byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends an IEEE-754 bit image as a fixed-width varint payload.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Int(len(s))
	e.buf = append(e.buf, s...)
}

// Packet appends a packet reference: nil, a back-reference to an already
// interned packet, or the full field image on first encounter.
func (e *Encoder) Packet(p *noc.Packet) {
	if p == nil {
		e.buf = append(e.buf, tagNil)
		return
	}
	if id, ok := e.packets[p]; ok {
		e.buf = append(e.buf, tagRef)
		e.U64(id)
		return
	}
	e.buf = append(e.buf, tagNew)
	e.packets[p] = uint64(len(e.packets))
	e.U64(p.ID)
	e.I64(int64(p.Src))
	e.I64(int64(p.Dst))
	e.Int(p.Length)
	e.Int(p.Class)
	e.I64(p.CreateCycle)
	e.I64(p.InjectCycle)
	e.I64(p.DeliverCycle)
	e.Bool(p.Measured)
	canonical := len(p.Payloads) == p.Length
	for i := 0; canonical && i < p.Length; i++ {
		canonical = p.Payloads[i] == noc.PayloadWord(p.ID, p.Src, p.Dst, i)
	}
	e.Bool(canonical)
	if !canonical {
		for _, w := range p.Payloads {
			e.U64(w)
		}
	}
}

// Flit appends a flit reference: nil, a back-reference, or a full encoding.
// Unencoded flits carry their owning packet (interned) plus the mutable wire
// fields; encoded flits carry their constituent set recursively. Interning
// order matches the decoder's construction order exactly.
func (e *Encoder) Flit(f *noc.Flit) {
	if f == nil {
		e.buf = append(e.buf, tagNil)
		return
	}
	if id, ok := e.flits[f]; ok {
		e.buf = append(e.buf, tagRef)
		e.U64(id)
		return
	}
	if f.Encoded {
		e.buf = append(e.buf, tagNewE)
		e.Int(len(f.Parts))
		for _, part := range f.Parts {
			e.Flit(part)
		}
		e.flits[f] = uint64(len(e.flits))
		e.U64(f.Raw)
		e.Int(int(f.OutPort))
		return
	}
	e.buf = append(e.buf, tagNew)
	e.Packet(f.Packet)
	e.flits[f] = uint64(len(e.flits))
	e.Int(f.Seq)
	e.U64(f.Raw)
	e.Int(int(f.OutPort))
}

// Decoder reads the encoder's format back with sticky error handling: after
// the first failure every subsequent read returns the zero value and Err
// reports the original cause.
type Decoder struct {
	buf     []byte
	off     int
	err     error
	packets []*noc.Packet
	flits   []*noc.Flit
	arena   *noc.Arena
}

// NewDecoder reads from data. The decoder aliases the slice.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// SetArena selects the flit arena subsequent Flit decodes allocate from. A
// nil arena falls back to the heap. The restoring network switches arenas as
// it walks shards so per-shard accounting stays plausible.
func (d *Decoder) SetArena(a *noc.Arena) { d.arena = a }

// Err returns the first error encountered, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// fail records the first error.
func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) failf(base error, format string, args ...any) {
	d.fail(fmt.Errorf("%w: "+format, append([]any{base}, args...)...))
}

// U64 reads an unsigned varint.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.off >= len(d.buf) {
			d.fail(ErrTruncated)
			return 0
		}
		b := d.buf[d.off]
		d.off++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			// Reject non-canonical overlong encodings in the final group.
			if shift == 63 && b > 1 {
				d.failf(ErrCorrupt, "varint overflow")
				return 0
			}
			return v
		}
	}
	d.failf(ErrCorrupt, "varint too long")
	return 0
}

// I64 reads a zigzag-coded signed varint.
func (d *Decoder) I64() int64 {
	v := d.U64()
	return int64(v>>1) ^ -int64(v&1)
}

// Int reads a zigzag-coded int.
func (d *Decoder) Int() int { return int(d.I64()) }

// Len reads a length written with Int (the universal length convention in
// this format) and rejects negatives and values above max before any
// allocation happens.
func (d *Decoder) Len(max int) int {
	v := d.I64()
	if d.err != nil {
		return 0
	}
	if v < 0 || v > int64(max) {
		d.failf(ErrCorrupt, "length %d outside [0,%d]", v, max)
		return 0
	}
	return int(v)
}

// Bool reads a 0/1 byte.
func (d *Decoder) Bool() bool {
	b := d.byte()
	if d.err != nil {
		return false
	}
	if b > 1 {
		d.failf(ErrCorrupt, "bad bool byte %#x", b)
		return false
	}
	return b == 1
}

// F64 reads an IEEE-754 bit image.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Len(maxSliceLen)
	if d.err != nil {
		return ""
	}
	if d.off+n > len(d.buf) {
		d.fail(ErrTruncated)
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *Decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Packet reads a packet reference. First encounters are rebuilt through
// noc.NewPacket so canonical payloads, inline buffers, and lazily built flit
// storage all come out exactly as live construction produces them.
func (d *Decoder) Packet() *noc.Packet {
	switch tag := d.byte(); tag {
	case tagNil:
		return nil
	case tagRef:
		id := d.U64()
		if d.err != nil {
			return nil
		}
		if id >= uint64(len(d.packets)) {
			d.failf(ErrCorrupt, "packet ref %d of %d", id, len(d.packets))
			return nil
		}
		return d.packets[id]
	case tagNew:
		id := d.U64()
		src := noc.NodeID(d.I64())
		dst := noc.NodeID(d.I64())
		length := d.Int()
		class := d.Int()
		create := d.I64()
		inject := d.I64()
		deliver := d.I64()
		measured := d.Bool()
		canonical := d.Bool()
		if d.err != nil {
			return nil
		}
		if length < 1 || length > maxPacketFlits {
			d.failf(ErrCorrupt, "packet length %d", length)
			return nil
		}
		p := noc.NewPacket(id, src, dst, length, class, create)
		p.InjectCycle, p.DeliverCycle, p.Measured = inject, deliver, measured
		if !canonical {
			for i := range p.Payloads {
				p.Payloads[i] = d.U64()
			}
		}
		if d.err != nil {
			return nil
		}
		d.packets = append(d.packets, p)
		return p
	default:
		d.failf(ErrCorrupt, "bad packet tag %#x", tag)
		return nil
	}
}

// Flit reads a flit reference. Unencoded flits are re-materialized from the
// current arena; encoded flits are rebuilt through the arena's Encode after
// validating every precondition Encode would otherwise panic on.
func (d *Decoder) Flit() *noc.Flit {
	switch tag := d.byte(); tag {
	case tagNil:
		return nil
	case tagRef:
		id := d.U64()
		if d.err != nil {
			return nil
		}
		if id >= uint64(len(d.flits)) {
			d.failf(ErrCorrupt, "flit ref %d of %d", id, len(d.flits))
			return nil
		}
		return d.flits[id]
	case tagNew:
		p := d.Packet()
		if d.err != nil {
			return nil
		}
		if p == nil {
			d.failf(ErrCorrupt, "unencoded flit without packet")
			return nil
		}
		seq := d.Int()
		raw := d.U64()
		port := noc.Port(d.Int())
		if d.err != nil {
			return nil
		}
		if seq < 0 || seq >= p.Length {
			d.failf(ErrCorrupt, "flit seq %d of packet length %d", seq, p.Length)
			return nil
		}
		f := d.arena.NewFlit(p, seq)
		// Raw is patched rather than recomputed: fault injection can leave a
		// flit's wire image diverged from its payload word.
		f.Raw, f.OutPort = raw, port
		d.flits = append(d.flits, f)
		return f
	case tagNewE:
		n := d.Len(maxParts)
		if d.err != nil {
			return nil
		}
		if n < 2 {
			d.failf(ErrCorrupt, "encoded flit with %d parts", n)
			return nil
		}
		parts := make([]*noc.Flit, 0, n)
		for i := 0; i < n; i++ {
			part := d.Flit()
			if d.err != nil {
				return nil
			}
			// Validate what Arena.Encode panics on.
			if part == nil || part.Encoded || part.MultiFlit() {
				d.failf(ErrCorrupt, "invalid constituent flit in superposition")
				return nil
			}
			parts = append(parts, part)
		}
		raw := d.U64()
		port := noc.Port(d.Int())
		if d.err != nil {
			return nil
		}
		f := d.arena.Encode(parts)
		f.Raw, f.OutPort = raw, port
		d.flits = append(d.flits, f)
		return f
	default:
		d.failf(ErrCorrupt, "bad flit tag %#x", tag)
		return nil
	}
}
