package snapshot_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/check"
	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/snapshot/codec"
)

// schedule is a precomputed injection plan: the same traffic can be replayed
// into the original network and any restored copy.
type schedule struct {
	src, dst noc.NodeID
	length   int
}

func makeSchedule(seed uint64, cores, perCycle, cycles int) [][]schedule {
	rng := sim.NewRNG(seed)
	plan := make([][]schedule, cycles)
	for c := range plan {
		for k := 0; k < perCycle; k++ {
			src := noc.NodeID(rng.Intn(cores))
			dst := noc.NodeID(rng.Intn(cores))
			if src == dst {
				continue
			}
			length := 1 + int(rng.Intn(4))
			plan[c] = append(plan[c], schedule{src, dst, length})
		}
	}
	return plan
}

// drive replays plan[from:to) into the network, one Step per cycle.
func drive(net *network.Network, plan [][]schedule, from, to int) {
	for c := from; c < to; c++ {
		for _, s := range plan[c] {
			net.Inject(s.src, s.dst, s.length, 0)
		}
		net.Step()
	}
}

func encodeOrFatal(t *testing.T, net *network.Network) []byte {
	t.Helper()
	img, err := snapshot.Encode(net)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return img
}

// TestRoundTripDeterministic pins the tentpole invariant for every
// architecture: saving a loaded 8x8 network twice yields identical bytes,
// restoring and re-saving yields those same bytes, and the restored copy
// evolves bit-identically to the original from the checkpoint on.
func TestRoundTripDeterministic(t *testing.T) {
	const warm, total = 300, 600
	plan := makeSchedule(0xA11CE, 64, 6, total)
	for _, arch := range router.Archs {
		arch := arch
		t.Run(arch.String(), func(t *testing.T) {
			t.Parallel()
			cfg := network.Config{Arch: arch, Shards: 1}
			net := network.New(cfg)
			defer net.Close()
			drive(net, plan, 0, warm)

			img := encodeOrFatal(t, net)
			if again := encodeOrFatal(t, net); !bytes.Equal(img, again) {
				t.Fatalf("two saves of the same network differ (%d vs %d bytes)", len(img), len(again))
			}
			restored, err := snapshot.Decode(img, cfg)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			defer restored.Close()
			if got := encodeOrFatal(t, restored); !bytes.Equal(img, got) {
				t.Fatalf("restored network re-saves differently (%d vs %d bytes)", len(img), len(got))
			}
			if restored.Cycle() != net.Cycle() {
				t.Fatalf("restored cycle %d, want %d", restored.Cycle(), net.Cycle())
			}

			// Both copies must evolve identically from the checkpoint on.
			drive(net, plan, warm, total)
			drive(restored, plan, warm, total)
			if !net.Drain(30000) || !restored.Drain(30000) {
				t.Fatalf("drain failed: original outstanding %d, restored %d", net.Outstanding(), restored.Outstanding())
			}
			a, b := encodeOrFatal(t, net), encodeOrFatal(t, restored)
			if !bytes.Equal(a, b) {
				t.Fatalf("original and restored diverged after %d more cycles", total-warm)
			}
			if ao, ro := net.ArenaOutstanding(), restored.ArenaOutstanding(); ao != 0 || ro != 0 {
				t.Fatalf("arena leak after drain: original %d, restored %d", ao, ro)
			}
		})
	}
}

// TestRestoreAcrossShards pins snapshot portability across execution modes:
// an image from a serial run restores into a sharded network and evolves to
// the same final state.
func TestRestoreAcrossShards(t *testing.T) {
	const warm, total = 250, 500
	plan := makeSchedule(0xBEEF, 64, 6, total)
	cfg := network.Config{Arch: router.NoX, Shards: 1}
	net := network.New(cfg)
	defer net.Close()
	drive(net, plan, 0, warm)
	img := encodeOrFatal(t, net)

	serial, err := snapshot.Decode(img, network.Config{Shards: 1})
	if err != nil {
		t.Fatalf("serial Decode: %v", err)
	}
	defer serial.Close()
	sharded, err := snapshot.Decode(img, network.Config{Shards: 4})
	if err != nil {
		t.Fatalf("sharded Decode: %v", err)
	}
	defer sharded.Close()
	if got := sharded.Shards(); got != 4 {
		t.Fatalf("restored with %d shards, want 4", got)
	}
	drive(serial, plan, warm, total)
	drive(sharded, plan, warm, total)
	serial.Drain(30000)
	sharded.Drain(30000)
	if a, b := encodeOrFatal(t, serial), encodeOrFatal(t, sharded); !bytes.Equal(a, b) {
		t.Fatal("serial and 4-shard continuations diverged from the same snapshot")
	}
}

// TestForkMembersMatchSerial pins the warm-start building block: every
// cohort member forked from a warm network evolves exactly as a standalone
// restore of the same image does.
func TestForkMembersMatchSerial(t *testing.T) {
	const warm, total = 250, 500
	plan := makeSchedule(0xF00D, 64, 6, total)
	cfg := network.Config{Arch: router.SpecAccurate, Shards: 1}
	net := network.New(cfg)
	defer net.Close()
	drive(net, plan, 0, warm)
	img := encodeOrFatal(t, net)

	ref, err := snapshot.Decode(img, cfg)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	defer ref.Close()
	drive(ref, plan, warm, total)
	ref.Drain(30000)
	want := encodeOrFatal(t, ref)

	const members = 3
	cohort, err := snapshot.Fork(net, members, func(i int) network.Config { return cfg })
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	defer cohort.Close()
	for c := warm; c < total; c++ {
		for i := 0; i < members; i++ {
			for _, s := range plan[c] {
				cohort.Net(i).Inject(s.src, s.dst, s.length, 0)
			}
		}
		cohort.Step()
	}
	cohort.Release()
	for i := 0; i < members; i++ {
		m := cohort.Net(i)
		m.Drain(30000)
		if got := encodeOrFatal(t, m); !bytes.Equal(want, got) {
			t.Fatalf("fork member %d diverged from the serial continuation", i)
		}
	}
	// The fork source must be untouched and still usable.
	if got := encodeOrFatal(t, net); !bytes.Equal(img, got) {
		t.Fatal("Fork mutated the source network")
	}
}

// TestCheckerLedgerTravels pins that an armed checker's oracle state is part
// of the image: the restored run's finalize sees every in-flight packet the
// original had, so post-drain reports match.
func TestCheckerLedgerTravels(t *testing.T) {
	const warm = 200
	plan := makeSchedule(0xC0FFEE, 64, 6, warm)
	cfg := network.Config{Arch: router.NoX, Shards: 1, Check: check.New(check.Config{})}
	net := network.New(cfg)
	defer net.Close()
	drive(net, plan, 0, warm)
	img := encodeOrFatal(t, net)

	// Restoring into an unchecked network must fail loudly, not drop state.
	if _, err := snapshot.Decode(img, network.Config{Shards: 1}); !errors.Is(err, codec.ErrUnsupported) {
		t.Fatalf("checker-armed image into unchecked network: err = %v, want ErrUnsupported", err)
	}

	ck := check.New(check.Config{})
	rcfg := cfg
	rcfg.Check = ck
	restored, err := snapshot.Decode(img, rcfg)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	defer restored.Close()
	if got := encodeOrFatal(t, restored); !bytes.Equal(img, got) {
		t.Fatal("checker-armed image did not re-save identically")
	}
	if !restored.Drain(30000) {
		t.Fatalf("restored network did not drain (%d outstanding)", restored.Outstanding())
	}
	restored.CheckInvariants()
	if ck.Total() != 0 {
		var buf bytes.Buffer
		ck.WriteReport(&buf)
		t.Fatalf("restored checked run reported violations:\n%s", buf.String())
	}
}

// TestDecodeRejectsStructuralMismatch ensures the restore configuration
// cannot silently override the image's structural parameters.
func TestDecodeRejectsMalformed(t *testing.T) {
	net := network.New(network.Config{Arch: router.NoX, Shards: 1})
	defer net.Close()
	plan := makeSchedule(1, 64, 4, 100)
	drive(net, plan, 0, 100)
	img := encodeOrFatal(t, net)

	if _, err := snapshot.Decode(nil, network.Config{}); err == nil {
		t.Fatal("Decode(nil) succeeded")
	}
	for _, cut := range []int{1, len(img) / 2, len(img) - 1} {
		if _, err := snapshot.Decode(img[:cut], network.Config{}); err == nil {
			t.Fatalf("Decode of %d/%d-byte truncation succeeded", cut, len(img))
		}
	}
	if _, err := snapshot.Decode(append(append([]byte(nil), img...), 0), network.Config{}); !errors.Is(err, codec.ErrCorrupt) {
		t.Fatalf("trailing byte: err = %v, want ErrCorrupt", err)
	}
	bad := append([]byte(nil), img...)
	bad[0] ^= 0xFF
	if _, err := snapshot.Decode(bad, network.Config{}); err == nil {
		t.Fatal("Decode with corrupt magic succeeded")
	}
}
