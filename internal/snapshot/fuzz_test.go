package snapshot_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/network"
	"repro/internal/noc"
	"repro/internal/router"
	"repro/internal/snapshot"
	"repro/internal/snapshot/codec"
)

// typedSnapshotErr reports whether err is one of the decoder's documented
// failure classes. The decoder's contract is that arbitrary input either
// parses or fails with one of these — never a panic, never an anonymous
// error.
func typedSnapshotErr(err error) bool {
	return errors.Is(err, codec.ErrTruncated) || errors.Is(err, codec.ErrCorrupt) ||
		errors.Is(err, codec.ErrVersion) || errors.Is(err, codec.ErrUnsupported)
}

// fuzzSeedImage encodes a small loaded network — a valid image the fuzzer
// mutates from.
func fuzzSeedImage(f *testing.F) []byte {
	cfg := network.Config{Topo: noc.Topology{Width: 2, Height: 2}, Arch: router.NoX, Shards: 1}
	net := network.New(cfg)
	defer net.Close()
	plan := makeSchedule(0xF022, cfg.Topo.Nodes(), 2, 40)
	for c := 0; c < 40; c++ {
		for _, s := range plan[c] {
			net.Inject(s.src, s.dst, s.length, 0)
		}
		net.Step()
	}
	img, err := snapshot.Encode(net)
	if err != nil {
		f.Fatalf("seed encode: %v", err)
	}
	return img
}

// FuzzDecode throws arbitrary bytes at the snapshot decoder. The contract
// under fuzz: Decode never panics and never returns an untyped error; when
// it succeeds, Inspect agrees, the network steps, and re-encoding is a
// fixed point (encode∘decode is stable byte for byte).
func FuzzDecode(f *testing.F) {
	seed := fuzzSeedImage(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:1])
	f.Add(seed[:8])
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:len(seed)-1])
	f.Add(append(append([]byte{}, seed...), 0)) // trailing byte
	e := codec.NewEncoder()
	e.U64(0x4e4f585350415031) // the snapshot magic
	e.U64(99)                 // a future version
	f.Add(e.Bytes())
	bad := append([]byte{}, seed...)
	bad[0] ^= 0xFF // bad magic
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		info, ierr := snapshot.Inspect(data)
		if ierr == nil {
			// A parsable header can still describe an enormous topology the
			// validator accepts (up to 1024x1024x64); building it would OOM
			// the fuzzer, so bound the work before the full decode.
			if info.Topo.Nodes()*info.Concentration > 256 || info.BufferDepth > 64 || info.SinkDepth > 512 {
				return
			}
		} else if !typedSnapshotErr(ierr) {
			t.Fatalf("Inspect returned an untyped error: %v", ierr)
		}

		net, err := snapshot.Decode(data, network.Config{Shards: 1})
		if err != nil {
			if !typedSnapshotErr(err) {
				t.Fatalf("Decode returned an untyped error: %v", err)
			}
			return
		}
		defer net.Close()
		if ierr != nil {
			t.Fatalf("Decode succeeded but Inspect rejected the same bytes: %v", ierr)
		}

		// A decoded network must be steppable and must re-encode stably.
		img, err := snapshot.Encode(net)
		if err != nil {
			t.Fatalf("re-encode of a decoded network failed: %v", err)
		}
		net2, err := snapshot.Decode(img, network.Config{Shards: 1})
		if err != nil {
			t.Fatalf("decode of a re-encoded image failed: %v", err)
		}
		defer net2.Close()
		img2, err := snapshot.Encode(net2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(img, img2) {
			t.Fatalf("encode∘decode is not a fixed point: %d vs %d bytes", len(img), len(img2))
		}
		net.Step()
	})
}
