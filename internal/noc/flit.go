package noc

import "fmt"

// Flit is a 64-bit unit of link and switch traversal.
//
// An unencoded flit belongs to exactly one packet and carries that packet's
// payload word for its sequence position. An encoded flit is the wire image
// produced by the NoX XOR switch when several inputs collide: Raw is the
// bitwise XOR of the constituent flits' words and Parts records which
// original flits were superimposed (the simulator's view of information that
// hardware recovers implicitly through the decode protocol). Only single-flit
// packets are ever encoded; collisions involving multi-flit packets abort
// (paper §2.7).
type Flit struct {
	// Packet is the owning packet. It is nil iff Encoded.
	Packet *Packet
	// Seq is the flit's index within its packet (0 = head).
	Seq int
	// Raw is the 64-bit wire image.
	Raw uint64
	// Encoded marks an XOR-superposition of several flits. On real
	// hardware this is the one-bit "encoded" sideband signal of §2.2.
	Encoded bool
	// Parts lists the constituent original flits when Encoded.
	Parts []*Flit
	// OutPort is the output port at the router currently holding the flit,
	// precomputed by lookahead route computation on arrival.
	OutPort Port
}

// NewFlit builds flit seq of packet p.
func NewFlit(p *Packet, seq int) *Flit {
	return &Flit{Packet: p, Seq: seq, Raw: p.Payloads[seq]}
}

// Head reports whether the flit opens its packet. Encoded flits are treated
// as heads of each superimposed (single-flit) packet.
func (f *Flit) Head() bool { return f.Encoded || f.Seq == 0 }

// Tail reports whether the flit closes its packet.
func (f *Flit) Tail() bool { return f.Encoded || f.Seq == f.Packet.Length-1 }

// MultiFlit reports whether the flit belongs to a packet longer than one
// flit. Encoded flits never do, by construction.
func (f *Flit) MultiFlit() bool { return !f.Encoded && f.Packet.Length > 1 }

// String renders the flit for debugging and trace output.
func (f *Flit) String() string {
	if f == nil {
		return "<nil>"
	}
	if f.Encoded {
		ids := make([]uint64, len(f.Parts))
		for i, p := range f.Parts {
			ids[i] = p.Packet.ID
		}
		return fmt.Sprintf("enc%v raw=%#x", ids, f.Raw)
	}
	kind := "b"
	if f.Seq == 0 {
		kind = "h"
	}
	if f.Tail() {
		if f.Seq == 0 {
			kind = "ht"
		} else {
			kind = "t"
		}
	}
	return fmt.Sprintf("pkt%d.%d%s %d->%d", f.Packet.ID, f.Seq, kind, f.Packet.Src, f.Packet.Dst)
}
