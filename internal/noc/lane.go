package noc

// LinkLane is a typed dispatch lane over a network's channels for the
// kernel's serial step (it satisfies internal/sim.Lane structurally; this
// package does not import sim). Links have no combinational work, so the
// compute walks vanish entirely — the single biggest win of lane dispatch,
// since channels outnumber routers about fourfold on a mesh. The links must
// be passed in their kernel registration order.
type LinkLane []*Link

// Len returns the number of channels the lane covers.
func (l LinkLane) Len() int { return len(l) }

// ComputeAll is a no-op: Link.Compute does nothing.
func (l LinkLane) ComputeAll(cycle int64) {}

// ComputeActive is a no-op: Link.Compute does nothing.
func (l LinkLane) ComputeActive(cycle int64, active []uint32) {}

// CommitAll commits every channel (reference mode).
func (l LinkLane) CommitAll(cycle int64) {
	for _, ln := range l {
		ln.Commit(cycle)
	}
}

// CommitActive commits active channels, clears the flags of those that went
// quiet, and returns how many it put to sleep.
func (l LinkLane) CommitActive(cycle int64, active []uint32) int {
	quiets := 0
	for i, ln := range l {
		if active[i] == 0 {
			continue
		}
		ln.Commit(cycle)
		if ln.Quiet() {
			active[i] = 0
			quiets++
		}
	}
	return quiets
}
