package noc

import "testing"

type recorder struct {
	got    []*Flit
	cycles []int64
}

func (r *recorder) Receive(f *Flit, cycle int64) {
	r.got = append(r.got, f)
	r.cycles = append(r.cycles, cycle)
}

func TestLinkDeliveryTiming(t *testing.T) {
	sink := &recorder{}
	l := NewLink(sink, 2)
	f := NewFlit(NewPacket(1, 0, 1, 1, 0, 0), 0)

	l.Send(f)
	if len(sink.got) != 0 {
		t.Fatal("flit delivered before commit")
	}
	l.Commit(5)
	if len(sink.got) != 1 || sink.got[0] != f || sink.cycles[0] != 5 {
		t.Fatalf("delivery wrong: %v at %v", sink.got, sink.cycles)
	}
}

func TestLinkCreditAccounting(t *testing.T) {
	sink := &recorder{}
	l := NewLink(sink, 2)
	if l.Credits() != 2 {
		t.Fatalf("initial credits %d", l.Credits())
	}
	l.Send(NewFlit(NewPacket(1, 0, 1, 1, 0, 0), 0))
	if l.Credits() != 1 {
		t.Fatalf("credits after send %d", l.Credits())
	}
	// A return staged this cycle becomes visible only after commit.
	l.ReturnCredit()
	if l.Credits() != 1 {
		t.Fatal("credit return visible before commit")
	}
	l.Commit(0)
	if l.Credits() != 2 {
		t.Fatalf("credits after commit %d", l.Credits())
	}
}

func TestLinkPanics(t *testing.T) {
	sink := &recorder{}
	f := NewFlit(NewPacket(1, 0, 1, 1, 0, 0), 0)

	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	check("double drive", func() {
		l := NewLink(sink, 2)
		l.Send(f)
		l.Send(f)
	})
	check("send without credit", func() {
		l := NewLink(sink, 1)
		l.Send(f)
		l.Commit(0)
		l.Send(f) // credit consumed, none returned
	})
	check("nil sink", func() { NewLink(nil, 1) })
	check("zero credits", func() { NewLink(sink, 0) })
	check("nil flit", func() {
		l := NewLink(sink, 1)
		l.Send(nil)
	})
}

// TestLinkPipelined checks back-to-back cycles deliver in order with
// credits recycling.
func TestLinkPipelined(t *testing.T) {
	sink := &recorder{}
	l := NewLink(sink, 1)
	for cycle := int64(0); cycle < 5; cycle++ {
		f := NewFlit(NewPacket(uint64(cycle+1), 0, 1, 1, 0, 0), 0)
		l.Send(f)
		l.ReturnCredit() // receiver frees the slot the same cycle
		l.Commit(cycle)
	}
	if len(sink.got) != 5 {
		t.Fatalf("delivered %d/5", len(sink.got))
	}
	for i, f := range sink.got {
		if f.Packet.ID != uint64(i+1) {
			t.Fatalf("order violated: %v", sink.got)
		}
	}
}
