package noc

import (
	"testing"
	"testing/quick"
)

func TestMeshSystemIsBackwardCompatible(t *testing.T) {
	s := MeshSystem(Topology{Width: 8, Height: 8})
	if s.Cores() != 64 || s.Routers() != 64 || s.Ports() != 5 {
		t.Fatalf("mesh system wrong: %+v", s)
	}
	for core := 0; core < 64; core++ {
		if s.RouterOf(NodeID(core)) != NodeID(core) {
			t.Fatalf("core %d should live on router %d", core, core)
		}
		if s.LocalPort(NodeID(core)) != Local {
			t.Fatalf("core %d local port should be the classic Local constant", core)
		}
	}
}

func TestCMeshSystemLayout(t *testing.T) {
	s := System{Grid: Topology{Width: 4, Height: 4}, Concentration: 4}
	if s.Cores() != 64 || s.Routers() != 16 || s.Ports() != 8 {
		t.Fatalf("cmesh system wrong: %+v", s)
	}
	if s.RouterOf(0) != 0 || s.RouterOf(3) != 0 || s.RouterOf(4) != 1 {
		t.Error("RouterOf mapping wrong")
	}
	if s.LocalPort(0) != 4 || s.LocalPort(3) != 7 || s.LocalPort(4) != 4 {
		t.Error("LocalPort mapping wrong")
	}
	if s.CoreID(1, 2) != 6 {
		t.Errorf("CoreID(1,2) = %d, want 6", s.CoreID(1, 2))
	}
	// Cores sharing a router are zero hops apart; neighbors one.
	if s.CoreHops(0, 3) != 0 {
		t.Error("same-router cores should be 0 hops apart")
	}
	if s.CoreHops(0, 4) != 1 {
		t.Error("adjacent-router cores should be 1 hop apart")
	}
}

// TestVirtualGridBijection property-checks the core <-> virtual-grid
// mapping used by coordinate-based traffic patterns.
func TestVirtualGridBijection(t *testing.T) {
	s := System{Grid: Topology{Width: 4, Height: 4}, Concentration: 4}
	vt := s.VirtualTopology()
	if vt.Width != 8 || vt.Height != 8 {
		t.Fatalf("virtual topology %+v, want 8x8", vt)
	}
	f := func(raw uint8) bool {
		core := NodeID(int(raw) % s.Cores())
		return s.CoreFromVirtual(s.VirtualFromCore(core)) == core
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Inverse direction too.
	for v := 0; v < vt.Nodes(); v++ {
		if s.VirtualFromCore(s.CoreFromVirtual(NodeID(v))) != NodeID(v) {
			t.Fatalf("virtual %d does not round-trip", v)
		}
	}
}

// TestVirtualGridLocality checks cores of one router occupy one 2x2 block
// of the virtual grid (so coordinate patterns see physical adjacency).
func TestVirtualGridLocality(t *testing.T) {
	s := System{Grid: Topology{Width: 4, Height: 4}, Concentration: 4}
	vt := s.VirtualTopology()
	for r := 0; r < s.Routers(); r++ {
		for k := 0; k < 4; k++ {
			v := s.VirtualFromCore(s.CoreID(NodeID(r), k))
			vc := vt.Coord(v)
			rc := s.Grid.Coord(NodeID(r))
			if vc.X/2 != rc.X || vc.Y/2 != rc.Y {
				t.Fatalf("core (%d,%d) maps to virtual %v outside its router block %v", r, k, vc, rc)
			}
		}
	}
}

func TestVirtualTopologyRejectsNonSquare(t *testing.T) {
	s := System{Grid: Topology{Width: 4, Height: 4}, Concentration: 2}
	defer func() {
		if recover() == nil {
			t.Error("non-square concentration accepted")
		}
	}()
	s.VirtualTopology()
}

func TestSystemValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid system accepted")
		}
	}()
	System{Grid: Topology{Width: 0, Height: 4}, Concentration: 1}.Validate()
}
