package noc

// Arena is a flit allocator backed by pooled blocks and a freelist. The
// steady-state datapath allocates flits constantly — one per injected flit at
// the network interface, one per XOR superposition at a colliding output, one
// per decode-register recovery at an input port — and every one of those
// objects has a short, well-defined lifetime that ends inside the simulator
// (delivery, chain-register death, stale-copy replacement). Carving them from
// recycled blocks instead of the heap makes the hot path allocation-free and
// keeps the working set dense.
//
// An Arena is single-owner: the sharded executor gives each shard its own
// instance, and every alloc/release happens on the goroutine driving that
// shard (allocations in compute phases, releases in commit phases, with
// barriers in between). Flits may migrate between arenas — allocated at a
// source interface in one shard, released at a destination in another — so a
// single arena's live counter can go negative; only the sum over all arenas
// of a network is meaningful (see Outstanding).
//
// All methods are safe on a nil receiver: allocation falls back to the heap
// and release becomes a no-op, so call sites need no arena-enabled branch.
type Arena struct {
	free  []*Flit
	parts [][]*Flit
	live  int
	// blocks, when non-nil, is a shared backing store the arena grows from
	// instead of the heap (see BlockPool).
	blocks *BlockPool
}

// arenaBlock is the number of flits carved per pooled block.
const arenaBlock = 256

// BlockPool is a shared backing store for the flit arenas of many networks:
// a batched cohort hands every member's arena one pool, so all their blocks
// are carved from a handful of large contiguous slabs instead of one heap
// allocation per block per member. Single-goroutine use only — the batch
// lockstep executor steps every member on one goroutine, which is exactly
// the setting the pool exists for (sharded networks keep their private
// heap-backed growth; see network.Config.FlitBlocks).
type BlockPool struct {
	buf []Flit
}

// blockPoolSlab is the pool's refill size in flits (64 arena blocks).
const blockPoolSlab = 64 * arenaBlock

// take carves one arena block off the pool's current slab.
func (p *BlockPool) take() []Flit {
	if len(p.buf) < arenaBlock {
		p.buf = make([]Flit, blockPoolSlab)
	}
	block := p.buf[:arenaBlock:arenaBlock]
	p.buf = p.buf[arenaBlock:]
	return block
}

// SetBlocks points the arena's block growth at a shared pool (nil restores
// private heap growth). Call before the first allocation; blocks already
// carved are unaffected. No-op on a nil arena.
func (a *Arena) SetBlocks(p *BlockPool) {
	if a != nil {
		a.blocks = p
	}
}

// alloc returns a zeroed flit from the freelist, growing it by one block when
// empty.
func (a *Arena) alloc() *Flit {
	if a == nil {
		return &Flit{}
	}
	if len(a.free) == 0 {
		var block []Flit
		if a.blocks != nil {
			block = a.blocks.take()
		} else {
			block = make([]Flit, arenaBlock)
		}
		for i := range block {
			a.free = append(a.free, &block[i])
		}
	}
	f := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.live++
	return f
}

// NewFlit builds flit seq of packet p from the pool.
func (a *Arena) NewFlit(p *Packet, seq int) *Flit {
	f := a.alloc()
	f.Packet, f.Seq, f.Raw = p, seq, p.Payloads[seq]
	return f
}

// Clone returns a pooled copy of src with its constituent set cleared — the
// decode-path presentation copy: the recovered original may still be live in
// an upstream buffer, so its lookahead route must not be overwritten in
// place.
func (a *Arena) Clone(src *Flit) *Flit {
	f := a.alloc()
	*f = *src
	f.Parts = nil
	return f
}

// partsBuf returns an empty constituent-set slice with room for n flits,
// reusing a pooled slice when one is available.
func (a *Arena) partsBuf(n int) []*Flit {
	if a == nil || len(a.parts) == 0 {
		if n < 4 {
			n = 4
		}
		return make([]*Flit, 0, n)
	}
	s := a.parts[len(a.parts)-1]
	a.parts = a.parts[:len(a.parts)-1]
	return s
}

// Release returns a dead flit to the pool. The caller asserts nothing in the
// simulation references f anymore; an encoded flit's Parts slice is recycled
// with it (the constituent flits themselves are released separately by
// whoever owns their lifetime). The flit is scrubbed so a use-after-release
// fails loudly on the nil Packet instead of silently reading recycled state.
func (a *Arena) Release(f *Flit) {
	if a == nil {
		return
	}
	if f.Parts != nil {
		a.parts = append(a.parts, f.Parts[:0])
	}
	*f = Flit{}
	a.live--
	a.free = append(a.free, f)
}

// Outstanding returns allocations minus releases. Summed over every arena of
// a network it counts the pooled flits still live inside the simulation —
// zero once all traffic has drained (the leak invariant the network tests
// assert). A single shard's arena may report a negative value when flits
// drain into neighboring shards.
func (a *Arena) Outstanding() int {
	if a == nil {
		return 0
	}
	return a.live
}
