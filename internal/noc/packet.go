package noc

// Packet is a unit of transfer between two network interfaces. It is split
// into Length flits of 64 bits each; in the paper's configuration (Table 1),
// control packets are 1 flit (8 bytes) and data packets are 9 flits
// (72 bytes).
type Packet struct {
	ID  uint64
	Src NodeID
	Dst NodeID
	// Length is the number of flits.
	Length int
	// Payloads holds one 64-bit word per flit. The simulator carries the
	// real words end to end so that the NoX XOR coding scheme is verified
	// bit-exactly under every workload.
	Payloads []uint64

	// CreateCycle is the network cycle at which the packet was offered to
	// the source network interface (source queueing counts toward latency).
	CreateCycle int64
	// InjectCycle is the cycle the head flit entered the source router's
	// local input buffer, or -1 while still queued.
	InjectCycle int64
	// DeliverCycle is the cycle the tail flit was delivered (and, for NoX,
	// decoded) at the destination interface, or -1 while in flight.
	DeliverCycle int64

	// Class selects which physical network carries the packet when the
	// simulation uses multiple networks to isolate coherence traffic
	// classes (0 = request network, 1 = reply network).
	Class int

	// Measured marks packets created inside the measurement window; only
	// these contribute to reported statistics.
	Measured bool

	// payloadBuf inlines the payload storage for single-flit packets —
	// Table 1's control packets, the bulk of every workload — so building
	// one costs a single allocation.
	payloadBuf [1]uint64
	// flits holds the packet's wire flits, built lazily on first injection
	// and reused on retransmission; flitBuf inlines the single-flit case.
	flits   []Flit
	flitBuf [1]Flit
}

// FlitBytes is the link width in bytes (64-bit flits and links, Table 1).
const FlitBytes = 8

// Undelivered is the DeliverCycle sentinel for a packet the network retired
// as provably undeliverable — its destination was partitioned away by a
// permanent fault, or end-to-end retransmission exhausted its retries —
// distinct from -1 (still in flight). Latency treats both as undelivered;
// the sentinel is what makes retirement idempotent and lets a late flit of
// a given-up packet be recognized and swallowed at the destination.
const Undelivered int64 = -2

// Bytes returns the packet size on the wire.
func (p *Packet) Bytes() int { return p.Length * FlitBytes }

// Latency returns the packet latency in cycles from creation to delivery.
// It panics if the packet has not been delivered.
func (p *Packet) Latency() int64 {
	if p.DeliverCycle < 0 {
		panic("noc: Latency on undelivered packet")
	}
	return p.DeliverCycle - p.CreateCycle
}

// NewPacket builds a packet with deterministic payload words derived from
// its identity, so any corruption in transit (in particular through the XOR
// coding path) is detectable at delivery.
func NewPacket(id uint64, src, dst NodeID, length int, class int, createCycle int64) *Packet {
	p := &Packet{
		ID:           id,
		Src:          src,
		Dst:          dst,
		Length:       length,
		CreateCycle:  createCycle,
		InjectCycle:  -1,
		DeliverCycle: -1,
		Class:        class,
	}
	if length == 1 {
		p.Payloads = p.payloadBuf[:1]
	} else {
		p.Payloads = make([]uint64, length)
	}
	for i := range p.Payloads {
		p.Payloads[i] = PayloadWord(id, src, dst, i)
	}
	return p
}

// Flit returns the packet's flit at sequence position seq. The packet owns
// its flits: they are built once on first use and the same instances are
// reused if an abort forces retransmission, so steady-state injection of
// single-flit packets allocates nothing beyond the packet itself.
func (p *Packet) Flit(seq int) *Flit {
	if p.flits == nil {
		if p.Length == 1 {
			p.flits = p.flitBuf[:1]
		} else {
			p.flits = make([]Flit, p.Length)
		}
		for i := range p.flits {
			p.flits[i] = Flit{Packet: p, Seq: i, Raw: p.Payloads[i]}
		}
	}
	return &p.flits[seq]
}

// PayloadWord is the canonical payload of flit seq of packet id. Delivery
// checks recompute it to verify bit-exact transport.
func PayloadWord(id uint64, src, dst NodeID, seq int) uint64 {
	z := id*0x9e3779b97f4a7c15 ^ uint64(src)<<48 ^ uint64(dst)<<32 ^ uint64(seq)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
