package noc

// LinkSite describes one channel site's attachment to the topology: which
// routers (and, for interface channels, which core) the numbered link
// connects. The network publishes its site table in link registration order
// so the fault layer can translate topology-level faults (a dead router, a
// severed link between two routers) into per-site decisions, and back again
// into the canonical fault set the routing layer rebuilds tables from.
type LinkSite struct {
	// Src and Dst are the router endpoints of an inter-router channel.
	// For an interface channel one side is -1: an inject channel (NI to
	// router) has Src -1, an eject channel (router to NI) has Dst -1.
	Src, Dst NodeID
	// Core is the attached core of an interface channel, -1 for
	// inter-router channels.
	Core NodeID
}

// InterRouter reports whether the site is a router-to-router channel.
func (s LinkSite) InterRouter() bool { return s.Src >= 0 && s.Dst >= 0 }
