// Package noc defines the basic vocabulary of the on-chip network: node
// coordinates, router ports, packets, flits, and the wire-level flit image
// used by the NoX XOR-coded switch.
package noc

import "fmt"

// NodeID identifies a tile in row-major order: id = y*width + x.
type NodeID int

// Coord is a tile position on the mesh.
type Coord struct {
	X, Y int
}

// Port identifies one of a router's five ports. The four cardinal ports
// connect to neighboring routers; Local connects to the tile's network
// interface.
type Port int

// Router ports in fixed order. The order is load-bearing: bitmask positions
// in the NoX masking logic and round-robin arbiter priorities index by it.
const (
	North Port = iota
	East
	South
	West
	Local
	NumPorts // number of ports on a mesh router
)

// String returns the conventional one-letter name of the port.
func (p Port) String() string {
	switch p {
	case North:
		return "N"
	case East:
		return "E"
	case South:
		return "S"
	case West:
		return "W"
	case Local:
		return "L"
	default:
		return fmt.Sprintf("Port(%d)", int(p))
	}
}

// Opposite returns the port on the neighboring router that a flit leaving
// through p arrives on. Opposite(Local) panics: the local port pairs with
// the network interface, not another router.
func (p Port) Opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		panic("noc: Local port has no opposite")
	}
}

// Topology describes a 2-D mesh of Width x Height tiles.
type Topology struct {
	Width, Height int
}

// Nodes returns the number of tiles.
func (t Topology) Nodes() int { return t.Width * t.Height }

// Coord converts a node id to its mesh coordinate.
func (t Topology) Coord(id NodeID) Coord {
	return Coord{X: int(id) % t.Width, Y: int(id) / t.Width}
}

// ID converts a coordinate to its node id.
func (t Topology) ID(c Coord) NodeID {
	return NodeID(c.Y*t.Width + c.X)
}

// Contains reports whether c lies on the mesh.
func (t Topology) Contains(c Coord) bool {
	return c.X >= 0 && c.X < t.Width && c.Y >= 0 && c.Y < t.Height
}

// Neighbor returns the node adjacent to id through port p and whether such a
// neighbor exists (mesh edges have no neighbor in some directions).
func (t Topology) Neighbor(id NodeID, p Port) (NodeID, bool) {
	c := t.Coord(id)
	switch p {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	default:
		return 0, false
	}
	if !t.Contains(c) {
		return 0, false
	}
	return t.ID(c), true
}

// Hops returns the Manhattan distance between two nodes, which is the number
// of links a minimally routed packet traverses between their routers.
func (t Topology) Hops(a, b NodeID) int {
	ca, cb := t.Coord(a), t.Coord(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
