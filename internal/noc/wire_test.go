package noc

import (
	"testing"
	"testing/quick"
)

func singleFlit(id uint64) *Flit {
	p := NewPacket(id, 1, 2, 1, 0, 0)
	return NewFlit(p, 0)
}

// TestEncodeDecodePair checks the fundamental identity (A^B)^B = A.
func TestEncodeDecodePair(t *testing.T) {
	a, b := singleFlit(1), singleFlit(2)
	enc := Encode([]*Flit{a, b})
	if !enc.Encoded {
		t.Fatal("Encode did not mark the flit encoded")
	}
	if enc.Raw != a.Raw^b.Raw {
		t.Fatalf("raw image %#x, want %#x", enc.Raw, a.Raw^b.Raw)
	}
	got, err := Decode(enc, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("decoded %v, want A", got)
	}
}

// TestDecodePaperProperty checks (A^B^C) ^ (B^C) = A, the exact identity
// quoted in §2.2.
func TestDecodePaperProperty(t *testing.T) {
	a, b, c := singleFlit(1), singleFlit(2), singleFlit(3)
	e1 := Encode([]*Flit{a, b, c})
	e2 := Encode([]*Flit{b, c})
	got, err := Decode(e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("decoded %v, want A", got)
	}
}

// TestChainProperty is the property-based version: for any collision set of
// 2..5 packets and any service order, the narrowing chain E_k = XOR of the
// not-yet-granted set decodes, pairwise-contiguously, to the winners in
// grant order.
func TestChainProperty(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8, permSeed uint64) bool {
		size := int(sizeRaw%4) + 2 // 2..5 colliders
		flits := make([]*Flit, size)
		for i := range flits {
			flits[i] = singleFlit(seed + uint64(i) + 1)
		}
		// Service order: a permutation derived from permSeed.
		order := make([]int, size)
		for i := range order {
			order[i] = i
		}
		s := permSeed
		for i := size - 1; i > 0; i-- {
			s = s*6364136223846793005 + 1442695040888963407
			j := int(s % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}

		// Build the wire sequence the switch would emit: each cycle the
		// remaining colliders superimpose, then one is granted and removed.
		remaining := append([]*Flit(nil), flits...)
		var wire []*Flit
		for _, winner := range order {
			var cur []*Flit
			for _, fl := range remaining {
				if fl != nil {
					cur = append(cur, fl)
				}
			}
			if len(cur) == 1 {
				wire = append(wire, cur[0])
			} else {
				wire = append(wire, Encode(cur))
			}
			remaining[winner] = nil
		}

		// Decode pairwise-contiguously and compare with grant order.
		for k := 0; k+1 < len(wire); k++ {
			got, err := Decode(wire[k], wire[k+1])
			if err != nil {
				return false
			}
			if got != flits[order[k]] {
				return false
			}
		}
		// The final wire flit is the last winner, unencoded.
		last := wire[len(wire)-1]
		return !last.Encoded && last == flits[order[size-1]]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeDetectsNonContiguous verifies the decoder flags protocol
// violations: XORing non-adjacent chain members whose difference is not a
// single flit must fail.
func TestDecodeDetectsNonContiguous(t *testing.T) {
	a, b, c := singleFlit(1), singleFlit(2), singleFlit(3)
	e1 := Encode([]*Flit{a, b, c})
	if _, err := Decode(e1, c); err == nil {
		t.Error("decoding a 2-flit difference should fail")
	}
	if _, err := Decode(e1, e1); err == nil {
		t.Error("decoding identical images should fail")
	}
}

// TestDecodeDetectsCorruption verifies the raw-image check catches payload
// corruption that set algebra alone would miss.
func TestDecodeDetectsCorruption(t *testing.T) {
	a, b := singleFlit(1), singleFlit(2)
	enc := Encode([]*Flit{a, b})
	enc.Raw ^= 0x4 // single bit flip on the wire
	if _, err := Decode(enc, b); err == nil {
		t.Error("bit flip not detected")
	}
}

// TestEncodeRejectsMultiFlit verifies the §2.7 invariant that multi-flit
// packets are never superimposed.
func TestEncodeRejectsMultiFlit(t *testing.T) {
	p := NewPacket(9, 1, 2, 3, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("Encode of a multi-flit head did not panic")
		}
	}()
	Encode([]*Flit{NewFlit(p, 0), singleFlit(1)})
}

// TestPayloadWordDeterminism checks payload derivation is stable and
// position-sensitive.
func TestPayloadWordDeterminism(t *testing.T) {
	w1 := PayloadWord(7, 3, 4, 0)
	w2 := PayloadWord(7, 3, 4, 0)
	if w1 != w2 {
		t.Fatal("PayloadWord not deterministic")
	}
	if PayloadWord(7, 3, 4, 1) == w1 {
		t.Error("payload words should differ by flit position")
	}
	if PayloadWord(8, 3, 4, 0) == w1 {
		t.Error("payload words should differ by packet id")
	}
}

// TestFlitKinds checks head/tail/multi-flit classification.
func TestFlitKinds(t *testing.T) {
	p := NewPacket(1, 0, 1, 3, 0, 0)
	h, b, tl := NewFlit(p, 0), NewFlit(p, 1), NewFlit(p, 2)
	if !h.Head() || h.Tail() || !h.MultiFlit() {
		t.Errorf("head flit misclassified: %v", h)
	}
	if b.Head() || b.Tail() {
		t.Errorf("body flit misclassified: %v", b)
	}
	if tl.Head() || !tl.Tail() {
		t.Errorf("tail flit misclassified: %v", tl)
	}
	s := singleFlit(2)
	if !s.Head() || !s.Tail() || s.MultiFlit() {
		t.Errorf("single flit misclassified: %v", s)
	}
}
