package noc

import "testing"

func TestArenaAllocRelease(t *testing.T) {
	var a Arena
	p := NewPacket(1, 0, 3, 2, 0, 0)
	f := a.NewFlit(p, 1)
	if f.Packet != p || f.Seq != 1 || f.Raw != p.Payloads[1] {
		t.Fatalf("NewFlit fields wrong: %+v", f)
	}
	if a.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", a.Outstanding())
	}
	a.Release(f)
	if a.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after release, want 0", a.Outstanding())
	}
	if f.Packet != nil || f.Seq != 0 || f.Raw != 0 {
		t.Fatalf("released flit not scrubbed: %+v", f)
	}
}

// TestArenaRecycles verifies releases actually feed later allocations: a
// release/alloc cycle must not grow the pool.
func TestArenaRecycles(t *testing.T) {
	var a Arena
	p := NewPacket(2, 0, 1, 1, 0, 0)
	f1 := a.NewFlit(p, 0)
	a.Release(f1)
	f2 := a.NewFlit(p, 0)
	if f1 != f2 {
		t.Error("released flit not recycled by next alloc")
	}
	a.Release(f2)
}

func TestArenaClone(t *testing.T) {
	var a Arena
	p := NewPacket(3, 0, 1, 1, 0, 0)
	src := a.NewFlit(p, 0)
	src.OutPort = East
	src.Parts = []*Flit{src}
	cp := a.Clone(src)
	if cp == src {
		t.Fatal("Clone returned the source")
	}
	if cp.Packet != src.Packet || cp.Seq != src.Seq || cp.Raw != src.Raw || cp.OutPort != East {
		t.Errorf("Clone dropped fields: %+v", cp)
	}
	if cp.Parts != nil {
		t.Error("Clone must clear the constituent set")
	}
	if a.Outstanding() != 2 {
		t.Errorf("outstanding = %d, want 2", a.Outstanding())
	}
}

// TestArenaPartsRecycled verifies a released superposition's Parts slice
// returns to the pool and backs a later Encode without reallocating.
func TestArenaPartsRecycled(t *testing.T) {
	var a Arena
	p1 := NewPacket(4, 0, 3, 1, 0, 0)
	p2 := NewPacket(5, 1, 3, 1, 0, 0)
	f1, f2 := a.NewFlit(p1, 0), a.NewFlit(p2, 0)
	enc := a.Encode([]*Flit{f1, f2})
	if !enc.Encoded || len(enc.Parts) != 2 {
		t.Fatalf("Encode wrong: %+v", enc)
	}
	buf := &enc.Parts[0]
	a.Release(enc)
	enc2 := a.Encode([]*Flit{f1, f2})
	if &enc2.Parts[0] != buf {
		t.Error("Encode did not reuse the pooled Parts slice")
	}
}

// TestArenaNilReceiver checks the no-pool fallback: every method must be
// safe on a nil *Arena, so call sites need no arena-enabled branch.
func TestArenaNilReceiver(t *testing.T) {
	var a *Arena
	p := NewPacket(6, 0, 1, 1, 0, 0)
	f := a.NewFlit(p, 0)
	if f == nil || f.Packet != p {
		t.Fatal("nil arena NewFlit broken")
	}
	cp := a.Clone(f)
	if cp == nil || cp == f {
		t.Fatal("nil arena Clone broken")
	}
	a.Release(f)
	if f.Packet != p {
		t.Error("nil arena Release must not scrub")
	}
	if a.Outstanding() != 0 {
		t.Error("nil arena Outstanding must be 0")
	}
}
