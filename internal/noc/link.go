package noc

import (
	"fmt"

	"repro/internal/probe"
)

// Waker re-activates simulation components identified by their integer
// kernel handle. *sim.Kernel implements it (WakeInt); the indirection keeps
// noc free of a kernel dependency.
type Waker interface {
	WakeInt(h int)
}

// Receiver consumes flits delivered by a link: a router input port or a
// network-interface sink.
type Receiver interface {
	// Receive is called during the commit phase of the cycle in which the
	// flit traversed the link; the flit becomes usable next cycle.
	Receive(f *Flit, cycle int64)
}

// Tamperer injects channel-level faults. Every link in a network may carry
// one, identified by a small dense site index assigned at construction.
// Decisions must be pure functions of (site, cycle) plus the tamperer's own
// seed — never of call order — so that fault firings are bit-identical
// across shard counts (the sharded kernel evaluates links on different
// goroutines but at identical cycles). internal/fault implements it.
type Tamperer interface {
	// TamperFlit is consulted at commit for every flit crossing the site.
	// It may corrupt f.Raw in place (bit-flip) and returns true to drop the
	// flit entirely: the sink never sees it and the sender's credit is
	// permanently lost at this site.
	TamperFlit(site int32, cycle int64, f *Flit) (drop bool)
	// TamperCredits is consulted at commit with the n staged credit returns
	// and returns how many the sender actually receives (loss and
	// duplication faults).
	TamperCredits(site int32, cycle int64, n int) int
	// LinkStalled reports whether the channel refuses new traffic this
	// cycle. Senders observe it through Ready; an in-flight flit still
	// lands (the fault models a busy/backpressured channel, not loss).
	LinkStalled(site int32, cycle int64) bool
}

// Link is a unidirectional 64-bit channel with credit-based flow control.
// One simulated cycle covers switch traversal plus the 2 mm channel (§6.1
// folds the 98 ps link delay into every router's clock period), so a flit
// sent during cycle t is usable by the receiver at cycle t+1.
//
// Credits are owned by the sender side: Credits reports downstream buffer
// slots known free. The receiver stages ReturnCredit when it frees a slot;
// returns staged during cycle t become visible to the sender at t+1 (links
// commit after routers), giving the 2-3 cycle round-trip credit loop that
// Table 1's 4-deep buffers are sized to cover.
type Link struct {
	sink    Receiver
	credits int

	staged  *Flit
	returns int

	// waker re-activates kernel components by handle: selfH when a neighbor
	// writes to this link (Send, ReturnCredit), sinkH when a flit is
	// delivered to the component owning sink, and srcH when the sender-side
	// credit count goes from zero to positive (a sender parked on credit
	// exhaustion must re-evaluate — the event-horizon kernel's invalidation
	// edge for backpressure release). Optional: an unwired link is simply
	// evaluated every cycle. One shared waker value per network replaces the
	// per-link closures this used to cost.
	waker Waker
	selfH int32
	sinkH int32
	srcH  int32

	// probe, when non-nil, receives an EvLink event per delivered flit.
	// probeNode/probePort identify the channel by its driver: (router, port)
	// for inter-router and ejection channels, (core, -1) for injection
	// channels. int32 to keep the per-channel struct small.
	probe     *probe.Probe
	probeNode int32
	probePort int32

	// tamper, when non-nil, is the fault injector for this channel; site is
	// the network-assigned channel index and tamperArena the sink-side arena
	// that dropped flits are released to (the link commits on the sink's
	// shard, so the release stays intra-shard). capacity remembers the
	// initial credit count for post-drain conservation checks.
	tamper      Tamperer
	tamperArena *Arena
	site        int32
	capacity    int32
}

// NewLink returns a link feeding sink whose receiver advertises credits
// buffer slots.
func NewLink(sink Receiver, credits int) *Link {
	l := &Link{}
	l.Init(sink, credits)
	return l
}

// Init initializes a zero Link in place — the slab-construction form of
// NewLink, letting a network carve all of its channels from one allocation.
func (l *Link) Init(sink Receiver, credits int) {
	if sink == nil {
		panic("noc: link requires a sink")
	}
	if credits <= 0 {
		panic("noc: link requires positive credits")
	}
	*l = Link{sink: sink, credits: credits, capacity: int32(credits)}
}

// SetWake installs the quiescence wake hooks: self is this link's kernel
// handle (re-activated on any neighbor write), sink the handle of the
// receiver's owning component (re-activated when a flit is delivered), and
// src the handle of the sender-side component (re-activated when staged
// credit returns lift the credit count off zero).
func (l *Link) SetWake(w Waker, self, sink, src int) {
	l.waker, l.selfH, l.sinkH, l.srcH = w, int32(self), int32(sink), int32(src)
}

// SetProbe attaches the observability probe to this link, identified by the
// driving (node, port); injection channels pass the core ID with port -1.
func (l *Link) SetProbe(p *probe.Probe, node, port int) {
	l.probe, l.probeNode, l.probePort = p, int32(node), int32(port)
}

// SetTamper installs a fault injector on this channel. arena is the
// sink-side flit arena dropped flits are released to; it may be nil, in
// which case dropped flit objects leak (the injector accounts for them).
func (l *Link) SetTamper(t Tamperer, site int, arena *Arena) {
	l.tamper, l.site, l.tamperArena = t, int32(site), arena
}

// Credits returns the sender's current credit count.
func (l *Link) Credits() int { return l.credits }

// Capacity returns the credit count the link was initialized with — the
// downstream buffer depth. After a full drain of a fault-free network,
// Credits()+PendingReturns() must equal Capacity().
func (l *Link) Capacity() int { return int(l.capacity) }

// RestoreCredits overwrites the sender-side credit count — checkpoint
// restore only, between steps (credits are the link's only between-step
// state; staged flits and staged returns are always consumed within their
// cycle). Counts above Capacity are legal under credit-duplication faults,
// so only gross corruption is rejected.
func (l *Link) RestoreCredits(c int) error {
	if c < 0 || c > 1<<20 {
		return fmt.Errorf("noc: restored credit count %d out of range", c)
	}
	l.credits = c
	return nil
}

// PendingReturns returns the credit returns staged by the receiver but not
// yet committed back to the sender.
func (l *Link) PendingReturns() int { return l.returns }

// Ready reports whether the sender may drive the link this cycle: it holds
// a credit and no stall fault is active on the channel. Senders must gate
// on Ready rather than Credits() > 0 so that injected stalls behave exactly
// like real backpressure.
func (l *Link) Ready(cycle int64) bool {
	if l.credits == 0 {
		return false
	}
	return l.tamper == nil || !l.tamper.LinkStalled(l.site, cycle)
}

// Send stages a flit for delivery at this cycle's commit, consuming one
// credit. Called by the sender during its compute phase; sending without a
// credit or sending twice in one cycle panics (simulator bug).
func (l *Link) Send(f *Flit) {
	if l.staged != nil {
		panic("noc: link driven twice in one cycle")
	}
	if l.credits == 0 {
		panic("noc: send without credit")
	}
	if f == nil {
		panic("noc: send of nil flit")
	}
	l.credits--
	l.staged = f
	if l.waker != nil {
		l.waker.WakeInt(int(l.selfH))
	}
}

// ReturnCredit stages one credit return from the receiver side. Staged
// returns are applied at this link's commit, hence visible to the sender
// next cycle.
func (l *Link) ReturnCredit() {
	l.returns++
	if l.waker != nil {
		l.waker.WakeInt(int(l.selfH))
	}
}

// Compute implements sim.Clocked; links have no combinational work.
func (l *Link) Compute(cycle int64) {}

// Commit delivers the staged flit and applies staged credit returns. Links
// must be committed after the routers of the same cycle.
func (l *Link) Commit(cycle int64) {
	if l.staged != nil && l.tamper != nil {
		if l.tamper.TamperFlit(l.site, cycle, l.staged) {
			// Dropped on the wire: the sink never learns about the flit, so
			// the sender's consumed credit is never returned. Only the flit
			// object itself is recycled — constituents of an encoded flit
			// may still be referenced upstream and are left to leak
			// (accounted for by the injector's Leaky flag).
			if l.tamperArena != nil {
				l.tamperArena.Release(l.staged)
			}
			l.staged = nil
		}
	}
	if l.staged != nil {
		if l.probe != nil {
			f := l.staged
			if f.Encoded {
				l.probe.Link(cycle, int(l.probeNode), int(l.probePort), f.Raw, -1)
			} else {
				l.probe.Link(cycle, int(l.probeNode), int(l.probePort), f.Packet.ID, f.Seq)
			}
		}
		l.sink.Receive(l.staged, cycle)
		l.staged = nil
		if l.waker != nil {
			l.waker.WakeInt(int(l.sinkH))
		}
	}
	if l.returns > 0 {
		was := l.credits
		if l.tamper != nil {
			l.credits += l.tamper.TamperCredits(l.site, cycle, l.returns)
		} else {
			l.credits += l.returns
		}
		l.returns = 0
		// Credit exhaustion lifted: the sender may have parked on a full
		// channel (NI horizon, router quiescence) and must re-evaluate. Links
		// commit last in the cycle, so this wake lands before the next
		// compute phase in every execution mode.
		if was == 0 && l.credits > 0 && l.waker != nil {
			l.waker.WakeInt(int(l.srcH))
		}
	}
}

// Quiet implements sim.Quiescable: a link with no staged flit and no staged
// credit returns does nothing when stepped. Credits held downstream do not
// keep a link busy — the eventual ReturnCredit wakes it.
func (l *Link) Quiet() bool { return l.staged == nil && l.returns == 0 }
