package noc

import "fmt"

// System describes a (possibly concentrated) mesh: a grid of routers, each
// serving Concentration cores. Concentration 1 is the paper's baseline 8x8
// mesh; Concentration 4 on a 4x4 grid is the higher-radix concentrated
// mesh (CMesh, after Balfour & Dally) that the paper's future-work section
// proposes evaluating NoX on — radix-8 routers, longer channels, and the
// same fixed decode cost.
//
// Core identifiers are dense: core = router*Concentration + k. Router port
// numbering generalizes the mesh's: ports 0-3 are the four directions and
// ports 4..4+Concentration-1 are the local (core) ports, so a
// concentration-1 system's single local port is exactly the classic Local
// constant.
type System struct {
	Grid          Topology
	Concentration int
}

// MeshSystem returns the paper's baseline system: one core per router.
func MeshSystem(grid Topology) System { return System{Grid: grid, Concentration: 1} }

// Check returns an error describing a malformed system, nil when valid.
func (s System) Check() error {
	if s.Grid.Width <= 0 || s.Grid.Height <= 0 || s.Concentration <= 0 {
		return fmt.Errorf("noc: invalid system %+v", s)
	}
	return nil
}

// Validate panics on a malformed system; Check is the error-returning form.
func (s System) Validate() {
	if err := s.Check(); err != nil {
		panic(err.Error())
	}
}

// Routers returns the number of routers.
func (s System) Routers() int { return s.Grid.Nodes() }

// Cores returns the number of cores (network endpoints).
func (s System) Cores() int { return s.Grid.Nodes() * s.Concentration }

// Ports returns the router radix: four directions plus the local ports.
func (s System) Ports() int { return 4 + s.Concentration }

// RouterOf returns the router serving a core.
func (s System) RouterOf(core NodeID) NodeID {
	return NodeID(int(core) / s.Concentration)
}

// LocalPort returns the router port a core attaches to.
func (s System) LocalPort(core NodeID) Port {
	return Port(4 + int(core)%s.Concentration)
}

// CoreID returns the core at a router's k-th local slot.
func (s System) CoreID(routerID NodeID, k int) NodeID {
	return NodeID(int(routerID)*s.Concentration + k)
}

// CoreHops returns the router-to-router hop count between two cores'
// routers (zero when they share a router).
func (s System) CoreHops(a, b NodeID) int {
	return s.Grid.Hops(s.RouterOf(a), s.RouterOf(b))
}

// concentrationSide returns the square side of the concentration factor
// and whether it is a perfect square (needed to lay cores on a virtual
// grid for coordinate-based traffic patterns).
func (s System) concentrationSide() (int, bool) {
	for side := 1; side*side <= s.Concentration; side++ {
		if side*side == s.Concentration {
			return side, true
		}
	}
	return 0, false
}

// VirtualTopology returns a core-level grid for coordinate-based traffic
// patterns: cores of one router occupy a square sub-block. It panics when
// the concentration is not a perfect square (1, 4, 9, ...).
func (s System) VirtualTopology() Topology {
	side, ok := s.concentrationSide()
	if !ok {
		panic(fmt.Sprintf("noc: concentration %d is not a perfect square", s.Concentration))
	}
	return Topology{Width: s.Grid.Width * side, Height: s.Grid.Height * side}
}

// VirtualFromCore maps a core id to its node id on the virtual core grid.
func (s System) VirtualFromCore(core NodeID) NodeID {
	side, _ := s.concentrationSide()
	vt := s.VirtualTopology()
	r := s.RouterOf(core)
	k := int(core) % s.Concentration
	rc := s.Grid.Coord(r)
	return vt.ID(Coord{X: rc.X*side + k%side, Y: rc.Y*side + k/side})
}

// CoreFromVirtual maps a virtual-grid node id back to the core id.
func (s System) CoreFromVirtual(v NodeID) NodeID {
	side, _ := s.concentrationSide()
	vt := s.VirtualTopology()
	vc := vt.Coord(v)
	r := s.Grid.ID(Coord{X: vc.X / side, Y: vc.Y / side})
	k := (vc.Y%side)*side + vc.X%side
	return s.CoreID(r, k)
}
