package noc

import "fmt"

// This file implements the XOR wire algebra of the NoX coding scheme
// (paper §2.2): if inputs A, B, C collide the switch emits A^B^C; after one
// of them (say A) wins arbitration and stops driving, the next cycle emits
// B^C, and the receiver recovers A = (A^B^C) ^ (B^C). The simulator carries
// both the honest 64-bit XOR image and the constituent sets, and checks at
// every decode that the image matches the recovered flit's payload —
// a bit-exact, end-to-end verification of the coding protocol.

// Encode superimposes the given flits into one encoded wire flit. All inputs
// must be unencoded single-flit heads (the router aborts instead of encoding
// when a multi-flit packet is involved) or previously decoded originals; at
// least two flits are required.
func Encode(flits []*Flit) *Flit {
	return (*Arena)(nil).Encode(flits)
}

// Encode is the pooled form of the package-level Encode: the wire flit and
// its constituent-set slice come from the arena and return to it when the
// superposition dies at the downstream decode register.
func (a *Arena) Encode(flits []*Flit) *Flit {
	if len(flits) < 2 {
		panic("noc: Encode requires at least two flits")
	}
	var raw uint64
	parts := a.partsBuf(len(flits))
	for _, f := range flits {
		if f.Encoded {
			panic("noc: Encode of an already-encoded flit")
		}
		if f.MultiFlit() {
			panic("noc: Encode of a multi-flit packet (router must abort)")
		}
		raw ^= f.Raw
		parts = append(parts, f)
	}
	e := a.alloc()
	e.Raw, e.Encoded, e.Parts = raw, true, parts
	return e
}

// partsOf returns the constituent set of a wire flit: itself when unencoded,
// viewed through the caller's stack buffer so no allocation happens.
func partsOf(f *Flit, buf *[1]*Flit) []*Flit {
	if f.Encoded {
		return f.Parts
	}
	buf[0] = f
	return buf[:]
}

// containsID reports whether set holds a flit of the given owning packet.
// Chain members are single-flit packets, so packet ID is a sufficient key —
// and it must be the key rather than object identity: an input port
// re-presents a fresh decode copy of the same packet each cycle, and the
// stale copy absorbed into an earlier superposition cancels against the copy
// that eventually traversed.
func containsID(set []*Flit, id uint64) bool {
	for _, f := range set {
		if f.Packet.ID == id {
			return true
		}
	}
	return false
}

// Decode XORs two contiguously received wire flits and returns the original
// flit their difference encodes (paper property: (A^B^C) ^ (B^C) = A). The
// constituent sets must differ by exactly one flit, and the XOR of the raw
// images must equal that flit's payload word; any violation indicates a
// protocol bug and is returned as an error. The sets are tiny (bounded by
// the router radix), so the symmetric difference is two membership scans —
// no map, no allocation.
func Decode(reg, next *Flit) (*Flit, error) {
	var rbuf, nbuf [1]*Flit
	rp := partsOf(reg, &rbuf)
	np := partsOf(next, &nbuf)
	var orig *Flit
	diff := 0
	for _, f := range rp {
		if !containsID(np, f.Packet.ID) {
			orig = f
			diff++
		}
	}
	for _, f := range np {
		if !containsID(rp, f.Packet.ID) {
			orig = f
			diff++
		}
	}
	if diff != 1 {
		return nil, fmt.Errorf("noc: decode difference has %d flits (want 1): reg=%v next=%v", diff, reg, next)
	}
	if got := reg.Raw ^ next.Raw; got != orig.Raw {
		return nil, fmt.Errorf("noc: decode mismatch: XOR image %#x != payload %#x of %v", got, orig.Raw, orig)
	}
	return orig, nil
}
