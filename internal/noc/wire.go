package noc

import "fmt"

// This file implements the XOR wire algebra of the NoX coding scheme
// (paper §2.2): if inputs A, B, C collide the switch emits A^B^C; after one
// of them (say A) wins arbitration and stops driving, the next cycle emits
// B^C, and the receiver recovers A = (A^B^C) ^ (B^C). The simulator carries
// both the honest 64-bit XOR image and the constituent sets, and checks at
// every decode that the image matches the recovered flit's payload —
// a bit-exact, end-to-end verification of the coding protocol.

// Encode superimposes the given flits into one encoded wire flit. All inputs
// must be unencoded single-flit heads (the router aborts instead of encoding
// when a multi-flit packet is involved) or previously decoded originals; at
// least two flits are required.
func Encode(flits []*Flit) *Flit {
	if len(flits) < 2 {
		panic("noc: Encode requires at least two flits")
	}
	var raw uint64
	parts := make([]*Flit, 0, len(flits))
	for _, f := range flits {
		if f.Encoded {
			panic("noc: Encode of an already-encoded flit")
		}
		if f.MultiFlit() {
			panic("noc: Encode of a multi-flit packet (router must abort)")
		}
		raw ^= f.Raw
		parts = append(parts, f)
	}
	return &Flit{Raw: raw, Encoded: true, Parts: parts}
}

// parts returns the constituent set of a wire flit: itself when unencoded.
func parts(f *Flit) []*Flit {
	if f.Encoded {
		return f.Parts
	}
	return []*Flit{f}
}

// Decode XORs two contiguously received wire flits and returns the original
// flit their difference encodes (paper property: (A^B^C) ^ (B^C) = A). The
// constituent sets must differ by exactly one flit, and the XOR of the raw
// images must equal that flit's payload word; any violation indicates a
// protocol bug and is returned as an error.
func Decode(reg, next *Flit) (*Flit, error) {
	diff := symmetricDifference(parts(reg), parts(next))
	if len(diff) != 1 {
		return nil, fmt.Errorf("noc: decode difference has %d flits (want 1): reg=%v next=%v", len(diff), reg, next)
	}
	orig := diff[0]
	if got := reg.Raw ^ next.Raw; got != orig.Raw {
		return nil, fmt.Errorf("noc: decode mismatch: XOR image %#x != payload %#x of %v", got, orig.Raw, orig)
	}
	return orig, nil
}

// symmetricDifference returns the flits present in exactly one of a and b,
// keyed by owning packet identity. Chain members are single-flit packets, so
// packet ID is a sufficient key.
func symmetricDifference(a, b []*Flit) []*Flit {
	seen := make(map[uint64]*Flit, len(a)+len(b))
	for _, f := range a {
		seen[f.Packet.ID] = f
	}
	for _, f := range b {
		if _, dup := seen[f.Packet.ID]; dup {
			delete(seen, f.Packet.ID)
		} else {
			seen[f.Packet.ID] = f
		}
	}
	out := make([]*Flit, 0, len(seen))
	for _, f := range seen {
		out = append(out, f)
	}
	return out
}
