package noc

import (
	"testing"
	"testing/quick"
)

func TestPortOpposite(t *testing.T) {
	for _, p := range []Port{North, East, South, West} {
		if p.Opposite().Opposite() != p {
			t.Errorf("Opposite not involutive for %v", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Opposite(Local) should panic")
		}
	}()
	Local.Opposite()
}

func TestTopologyRoundTrip(t *testing.T) {
	topo := Topology{Width: 8, Height: 8}
	for id := 0; id < topo.Nodes(); id++ {
		if got := topo.ID(topo.Coord(NodeID(id))); got != NodeID(id) {
			t.Fatalf("round trip %d -> %d", id, got)
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	topo := Topology{Width: 5, Height: 3}
	for id := 0; id < topo.Nodes(); id++ {
		for _, p := range []Port{North, East, South, West} {
			nb, ok := topo.Neighbor(NodeID(id), p)
			if !ok {
				continue
			}
			back, ok2 := topo.Neighbor(nb, p.Opposite())
			if !ok2 || back != NodeID(id) {
				t.Errorf("neighbor symmetry broken at %d via %v", id, p)
			}
		}
	}
}

func TestNeighborEdges(t *testing.T) {
	topo := Topology{Width: 4, Height: 4}
	if _, ok := topo.Neighbor(0, North); ok {
		t.Error("node 0 should have no north neighbor")
	}
	if _, ok := topo.Neighbor(0, West); ok {
		t.Error("node 0 should have no west neighbor")
	}
	if _, ok := topo.Neighbor(15, South); ok {
		t.Error("node 15 should have no south neighbor")
	}
	if _, ok := topo.Neighbor(15, East); ok {
		t.Error("node 15 should have no east neighbor")
	}
	if nb, ok := topo.Neighbor(5, East); !ok || nb != 6 {
		t.Errorf("Neighbor(5,E) = %d,%v; want 6", nb, ok)
	}
}

// TestHopsMetricProperties checks Manhattan distance is a metric on the
// mesh: symmetric, zero iff equal, and within grid bounds.
func TestHopsMetricProperties(t *testing.T) {
	topo := Topology{Width: 8, Height: 8}
	f := func(a, b uint8) bool {
		na := NodeID(int(a) % topo.Nodes())
		nb := NodeID(int(b) % topo.Nodes())
		h := topo.Hops(na, nb)
		if h != topo.Hops(nb, na) {
			return false
		}
		if (h == 0) != (na == nb) {
			return false
		}
		return h <= (topo.Width-1)+(topo.Height-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
