package noc

import "testing"

// FuzzChainDecode fuzzes the coding scheme end to end: an arbitrary
// collision set (sized by the seed bytes) serviced in an arbitrary order
// must decode, pairwise-contiguously, to the winners in that order. The
// seed corpus runs as part of `go test`; `go test -fuzz=FuzzChainDecode`
// explores further.
func FuzzChainDecode(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint16(0))
	f.Add(uint64(42), uint8(5), uint16(0x1234))
	f.Add(uint64(7), uint8(3), uint16(0xFFFF))
	f.Fuzz(func(t *testing.T, seed uint64, sizeRaw uint8, orderRaw uint16) {
		size := int(sizeRaw%4) + 2 // 2..5 colliders
		flits := make([]*Flit, size)
		for i := range flits {
			p := NewPacket(seed+uint64(i)+1, 0, 1, 1, 0, 0)
			flits[i] = NewFlit(p, 0)
		}
		// Service order from orderRaw (Fisher-Yates with a tiny LCG).
		order := make([]int, size)
		for i := range order {
			order[i] = i
		}
		s := uint64(orderRaw) + 1
		for i := size - 1; i > 0; i-- {
			s = s*6364136223846793005 + 1442695040888963407
			j := int(s % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}

		remaining := append([]*Flit(nil), flits...)
		var wire []*Flit
		for _, w := range order {
			var cur []*Flit
			for _, fl := range remaining {
				if fl != nil {
					cur = append(cur, fl)
				}
			}
			if len(cur) == 1 {
				wire = append(wire, cur[0])
			} else {
				wire = append(wire, Encode(cur))
			}
			remaining[w] = nil
		}
		for k := 0; k+1 < len(wire); k++ {
			got, err := Decode(wire[k], wire[k+1])
			if err != nil {
				t.Fatalf("decode failed at %d: %v", k, err)
			}
			if got != flits[order[k]] {
				t.Fatalf("decode order wrong at %d", k)
			}
		}
		if last := wire[len(wire)-1]; last.Encoded || last != flits[order[size-1]] {
			t.Fatal("final wire flit should be the last winner, raw")
		}
	})
}
