// Package stats gathers the performance measurements the paper reports:
// average packet latency, accepted throughput, and the windowed event
// counts that the power model converts into energy. Measurement follows the
// standard warmup / measure / drain discipline: only packets created inside
// the measurement window contribute to latency, and only deliveries inside
// the window contribute to throughput.
package stats

import (
	"math"
	"sort"

	"repro/internal/noc"
)

// Collector accumulates packet statistics over a measurement window
// [MeasureStart, MeasureEnd) in cycles.
type Collector struct {
	MeasureStart int64
	MeasureEnd   int64

	created   int64
	delivered int64

	latencySum int64
	latencyMax int64
	latencies  []int64
	// sorted records whether latencies is currently in ascending order, so
	// repeated percentile queries sort in place at most once per batch of
	// deliveries instead of copying the whole record every call.
	sorted bool

	windowFlits   int64
	windowPackets int64
	createdFlits  int64
}

// NewCollector returns a collector for the given window.
func NewCollector(measureStart, measureEnd int64) *Collector {
	if measureEnd <= measureStart {
		panic("stats: empty measurement window")
	}
	return &Collector{MeasureStart: measureStart, MeasureEnd: measureEnd}
}

// Reserve sizes the latency record for an expected number of measured
// packets, so steady-state delivery does not regrow it. It is a hint;
// exceeding it is fine.
func (c *Collector) Reserve(n int) {
	if n > cap(c.latencies) {
		s := make([]int64, len(c.latencies), n)
		copy(s, c.latencies)
		c.latencies = s
	}
}

// OnCreate registers a packet at creation time and marks it measured when
// it falls inside the window.
func (c *Collector) OnCreate(p *noc.Packet, cycle int64) {
	if cycle >= c.MeasureStart && cycle < c.MeasureEnd {
		p.Measured = true
		c.created++
		c.createdFlits += int64(p.Length)
	}
}

// OnDeliver registers a delivery: window throughput for any packet
// delivered inside the window, latency for measured packets whenever they
// complete (including during drain).
func (c *Collector) OnDeliver(p *noc.Packet, cycle int64) {
	if cycle >= c.MeasureStart && cycle < c.MeasureEnd {
		c.windowFlits += int64(p.Length)
		c.windowPackets++
	}
	if p.Measured {
		c.delivered++
		l := p.Latency()
		c.latencySum += l
		if l > c.latencyMax {
			c.latencyMax = l
		}
		c.latencies = append(c.latencies, l)
		c.sorted = false
	}
}

// Created returns the number of measured packets created.
func (c *Collector) Created() int64 { return c.created }

// Delivered returns the number of measured packets delivered so far.
func (c *Collector) Delivered() int64 { return c.delivered }

// Complete reports whether every measured packet has been delivered.
func (c *Collector) Complete() bool { return c.delivered == c.created }

// MeanLatencyCycles returns the average latency of delivered measured
// packets, or NaN when none completed.
func (c *Collector) MeanLatencyCycles() float64 {
	if c.delivered == 0 {
		return math.NaN()
	}
	return float64(c.latencySum) / float64(c.delivered)
}

// MaxLatencyCycles returns the worst measured latency.
func (c *Collector) MaxLatencyCycles() int64 { return c.latencyMax }

// PercentileLatencyCycles returns the q-quantile (0 < q <= 1) of measured
// latencies. Queries on an empty record or with q outside (0, 1] return
// NaN rather than panicking — saturated runs legitimately finish with no
// completed measured packets.
func (c *Collector) PercentileLatencyCycles(q float64) float64 {
	if len(c.latencies) == 0 || math.IsNaN(q) || q <= 0 || q > 1 {
		return math.NaN()
	}
	if !c.sorted {
		sort.Slice(c.latencies, func(i, j int) bool { return c.latencies[i] < c.latencies[j] })
		c.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(c.latencies)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.latencies) {
		idx = len(c.latencies) - 1
	}
	return float64(c.latencies[idx])
}

// LatencyPercentilesNs returns the P50/P95/P99 measured latencies scaled by
// the clock period — the tail summary every result emitter (synthetic runs,
// app replays, future-study points) reports. Centralized here so the NaN
// guard for empty records lives in exactly one place
// (PercentileLatencyCycles already yields NaN when nothing completed).
func (c *Collector) LatencyPercentilesNs(periodNs float64) (p50, p95, p99 float64) {
	return c.PercentileLatencyCycles(0.50) * periodNs,
		c.PercentileLatencyCycles(0.95) * periodNs,
		c.PercentileLatencyCycles(0.99) * periodNs
}

// AcceptedFlitsPerNodeCycle returns delivered throughput inside the window
// normalized per node per cycle.
func (c *Collector) AcceptedFlitsPerNodeCycle(nodes int) float64 {
	window := c.MeasureEnd - c.MeasureStart
	return float64(c.windowFlits) / (float64(nodes) * float64(window))
}

// WindowPackets returns the packets delivered inside the window.
func (c *Collector) WindowPackets() int64 { return c.windowPackets }

// WindowFlits returns the flits delivered inside the window.
func (c *Collector) WindowFlits() int64 { return c.windowFlits }

// CreatedFlits returns the flits offered (created) inside the window. Under
// stable load delivered and created flits balance; a shortfall signals
// saturation regardless of how many nodes actually inject (permutation
// patterns have non-injecting fixed points).
func (c *Collector) CreatedFlits() int64 { return c.createdFlits }
