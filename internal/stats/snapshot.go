package stats

import (
	"fmt"

	"repro/internal/snapshot/codec"
)

// SaveState serializes the collector's accumulated measurements. The latency
// record is written in its current storage order along with the sorted flag,
// so a restored collector re-saves byte-identically and answers percentile
// queries exactly as the original would.
func (c *Collector) SaveState(e *codec.Encoder) {
	e.I64(c.MeasureStart)
	e.I64(c.MeasureEnd)
	e.I64(c.created)
	e.I64(c.delivered)
	e.I64(c.latencySum)
	e.I64(c.latencyMax)
	e.Int(len(c.latencies))
	for _, l := range c.latencies {
		e.I64(l)
	}
	e.Bool(c.sorted)
	e.I64(c.windowFlits)
	e.I64(c.windowPackets)
	e.I64(c.createdFlits)
}

// RestoreState loads state saved by SaveState, replacing the collector's
// measurements (the measurement window is restored too).
func (c *Collector) RestoreState(d *codec.Decoder) error {
	start := d.I64()
	end := d.I64()
	created := d.I64()
	delivered := d.I64()
	sum := d.I64()
	max := d.I64()
	n := d.Len(1 << 26)
	if err := d.Err(); err != nil {
		return err
	}
	if end <= start {
		return fmt.Errorf("%w: empty measurement window [%d,%d)", codec.ErrCorrupt, start, end)
	}
	lats := c.latencies[:0]
	for i := 0; i < n; i++ {
		lats = append(lats, d.I64())
	}
	sorted := d.Bool()
	wf := d.I64()
	wp := d.I64()
	cf := d.I64()
	if err := d.Err(); err != nil {
		return err
	}
	c.MeasureStart, c.MeasureEnd = start, end
	c.created, c.delivered = created, delivered
	c.latencySum, c.latencyMax = sum, max
	c.latencies, c.sorted = lats, sorted
	c.windowFlits, c.windowPackets, c.createdFlits = wf, wp, cf
	return nil
}
