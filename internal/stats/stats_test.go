package stats

import (
	"math"
	"testing"

	"repro/internal/noc"
)

func pkt(id uint64, created int64, length int) *noc.Packet {
	return noc.NewPacket(id, 0, 1, length, 0, created)
}

func TestWindowMembership(t *testing.T) {
	c := NewCollector(100, 200)
	inside := pkt(1, 150, 1)
	before := pkt(2, 99, 1)
	after := pkt(3, 200, 1)
	c.OnCreate(inside, 150)
	c.OnCreate(before, 99)
	c.OnCreate(after, 200)
	if !inside.Measured || before.Measured || after.Measured {
		t.Fatal("window membership wrong")
	}
	if c.Created() != 1 {
		t.Fatalf("Created = %d", c.Created())
	}
}

func TestLatencyAccounting(t *testing.T) {
	c := NewCollector(0, 100)
	for i, lat := range []int64{10, 20, 30} {
		p := pkt(uint64(i), 10, 1)
		c.OnCreate(p, 10)
		p.DeliverCycle = 10 + lat
		c.OnDeliver(p, p.DeliverCycle)
	}
	if got := c.MeanLatencyCycles(); got != 20 {
		t.Errorf("mean latency = %v, want 20", got)
	}
	if got := c.MaxLatencyCycles(); got != 30 {
		t.Errorf("max latency = %v, want 30", got)
	}
	if !c.Complete() {
		t.Error("Complete should hold")
	}
}

// TestDrainLatencyCounted verifies measured packets delivered after the
// window still contribute latency but not throughput.
func TestDrainLatencyCounted(t *testing.T) {
	c := NewCollector(0, 100)
	p := pkt(1, 50, 1)
	c.OnCreate(p, 50)
	p.DeliverCycle = 500 // far beyond window
	c.OnDeliver(p, 500)
	if c.WindowFlits() != 0 {
		t.Error("post-window delivery counted toward throughput")
	}
	if c.MeanLatencyCycles() != 450 {
		t.Errorf("drain latency = %v, want 450", c.MeanLatencyCycles())
	}
}

// TestThroughputCountsUnmeasured verifies warmup-created packets delivered
// inside the window count toward accepted throughput.
func TestThroughputCountsUnmeasured(t *testing.T) {
	c := NewCollector(100, 200)
	p := pkt(1, 10, 9) // created pre-window
	c.OnCreate(p, 10)
	p.DeliverCycle = 150
	c.OnDeliver(p, 150)
	if c.WindowFlits() != 9 || c.WindowPackets() != 1 {
		t.Errorf("window flits/packets = %d/%d, want 9/1", c.WindowFlits(), c.WindowPackets())
	}
	if c.Delivered() != 0 {
		t.Error("unmeasured packet counted as measured delivery")
	}
}

func TestAcceptedThroughput(t *testing.T) {
	c := NewCollector(0, 100)
	for i := 0; i < 50; i++ {
		p := pkt(uint64(i), 0, 2)
		c.OnCreate(p, 0)
		p.DeliverCycle = 50
		c.OnDeliver(p, 50)
	}
	// 100 flits / (4 nodes * 100 cycles) = 0.25
	if got := c.AcceptedFlitsPerNodeCycle(4); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("accepted = %v, want 0.25", got)
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector(0, 1000)
	for i := int64(1); i <= 100; i++ {
		p := pkt(uint64(i), 0, 1)
		c.OnCreate(p, 0)
		p.DeliverCycle = i
		c.OnDeliver(p, i)
	}
	if got := c.PercentileLatencyCycles(0.5); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := c.PercentileLatencyCycles(0.99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := c.PercentileLatencyCycles(1.0); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector(0, 10)
	if !math.IsNaN(c.MeanLatencyCycles()) {
		t.Error("mean of no packets should be NaN")
	}
	if !math.IsNaN(c.PercentileLatencyCycles(0.5)) {
		t.Error("percentile of no packets should be NaN")
	}
	if !c.Complete() {
		t.Error("empty collector is trivially complete")
	}
}

func TestBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty window accepted")
		}
	}()
	NewCollector(10, 10)
}
