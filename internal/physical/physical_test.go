package physical

import (
	"math"
	"testing"

	"repro/internal/router"
)

// TestTable2ClockPeriods checks the model reproduces Table 2 exactly.
func TestTable2ClockPeriods(t *testing.T) {
	want := map[router.Arch]float64{
		router.NonSpec:      0.92,
		router.SpecFast:     0.69,
		router.SpecAccurate: 0.72,
		router.NoX:          0.76,
	}
	for arch, ns := range want {
		if got := ClockPeriodNs(arch); math.Abs(got-ns) > 1e-9 {
			t.Errorf("%v clock period = %.3f ns, want %.2f ns (Table 2)", arch, got, ns)
		}
	}
}

// TestSection61Speedups checks the relative clock speedups quoted in §6.1:
// Spec-Fast 33.3 %, Spec-Accurate 27.8 %, NoX 21.1 % faster than the
// non-speculative router.
func TestSection61Speedups(t *testing.T) {
	want := map[router.Arch]float64{
		router.SpecFast:     0.333,
		router.SpecAccurate: 0.278,
		router.NoX:          0.211,
	}
	for arch, s := range want {
		if got := SpeedupVsNonSpec(arch); math.Abs(got-s) > 0.001 {
			t.Errorf("%v speedup = %.3f, want %.3f (§6.1)", arch, got, s)
		}
	}
}

// TestDecodeOverhead checks the NoX-vs-Spec-Accurate clock gap matches the
// ~40 ps decode overhead stated in §6.1.
func TestDecodeOverhead(t *testing.T) {
	gap := ClockPeriodPs(router.NoX) - ClockPeriodPs(router.SpecAccurate)
	if math.Abs(gap-40) > 10.001 {
		t.Errorf("NoX decode overhead = %.0f ps, want ~40 ps", gap)
	}
}

// TestFigure13Floorplan checks the area model reproduces §6.2: 28.2 um of
// extra width and a 17.2 % tile area penalty for NoX.
func TestFigure13Floorplan(t *testing.T) {
	conv := Floorplan(router.NonSpec)
	nox := Floorplan(router.NoX)
	if got := nox.WidthUm - conv.WidthUm; math.Abs(got-28.2) > 1e-9 {
		t.Errorf("NoX extra width = %.1f um, want 28.2 um", got)
	}
	if conv.HeightUm != nox.HeightUm {
		t.Error("floorplans should share height")
	}
	if got := AreaOverheadVsConventional(); math.Abs(got-0.172) > 0.001 {
		t.Errorf("NoX area overhead = %.3f, want 0.172 (§6.2)", got)
	}
	// Speculative routers share the conventional plan.
	for _, a := range []router.Arch{router.SpecFast, router.SpecAccurate} {
		if Floorplan(a).AreaUm2() != conv.AreaUm2() {
			t.Errorf("%v floorplan differs from conventional", a)
		}
	}
}

// TestFrequencyConsistency checks GHz and period invert each other.
func TestFrequencyConsistency(t *testing.T) {
	for _, a := range router.Archs {
		if got := FrequencyGHz(a) * ClockPeriodNs(a); math.Abs(got-1) > 1e-12 {
			t.Errorf("%v: f*T = %v, want 1", a, got)
		}
	}
}

// TestClockOrdering checks the architectural ordering the evaluation
// depends on: SpecFast < SpecAccurate < NoX < NonSpec.
func TestClockOrdering(t *testing.T) {
	if !(ClockPeriodPs(router.SpecFast) < ClockPeriodPs(router.SpecAccurate) &&
		ClockPeriodPs(router.SpecAccurate) < ClockPeriodPs(router.NoX) &&
		ClockPeriodPs(router.NoX) < ClockPeriodPs(router.NonSpec)) {
		t.Error("clock period ordering violated")
	}
}

// TestMeshDatapathMatchesBaseline checks the parameterized datapath
// reproduces Table 2 exactly.
func TestMeshDatapathMatchesBaseline(t *testing.T) {
	d := MeshDatapath()
	for _, a := range router.Archs {
		if got, want := d.ClockPeriodPs(a), ClockPeriodPs(a); math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: datapath period %v != baseline %v", a, got, want)
		}
	}
}

// TestCMeshShrinksNoXPenalty checks §8's hypothesis as modeled: on the
// radix-8 concentrated mesh the fixed decode cost is a smaller fraction of
// the (longer) critical path, so NoX's clock handicap against
// Spec-Accurate shrinks.
func TestCMeshShrinksNoXPenalty(t *testing.T) {
	mesh := MeshDatapath().NoXPenaltyVsSpecAccurate()
	cmesh := CMeshDatapath().NoXPenaltyVsSpecAccurate()
	if cmesh >= mesh {
		t.Errorf("CMesh NoX penalty %.3f should be below mesh %.3f", cmesh, mesh)
	}
	if mesh < 0.05 || mesh > 0.06 {
		t.Errorf("mesh penalty %.4f, want ~0.056 (40 ps + 30 ps over 720 ps)", mesh)
	}
}

// TestCMeshScaling sanity-checks the scaling directions.
func TestCMeshScaling(t *testing.T) {
	m, c := MeshDatapath(), CMeshDatapath()
	if c.LinkPs != 2*m.LinkPs {
		t.Error("CMesh channels should be twice as long")
	}
	if c.DecodePs != m.DecodePs {
		t.Error("decode cost must be radix-independent (§8's 'fixed cost')")
	}
	if c.SwitchArbPs <= m.SwitchArbPs || c.XbarMuxPs <= m.XbarMuxPs {
		t.Error("radix-8 control structures should be slower")
	}
	for _, a := range router.Archs {
		if c.ClockPeriodPs(a) <= m.ClockPeriodPs(a) {
			t.Errorf("%v: CMesh period should exceed mesh period", a)
		}
	}
}
